// gA campaign: the paper's physics program end to end.
//
// Part 1 runs the Fig. 2 workflow FOR REAL on small quenched lattices:
// gauge generation -> 12+12 propagator solves (point + Feynman-Hellmann)
// -> propagator I/O -> nucleon contractions -> correlator I/O, printing
// the stage budget the sustained-performance accounting uses.
//
// Part 2 runs the Fig. 1 analysis at PAPER scale on the calibrated
// statistical model: bootstrap + excited-state fits for the FH method vs
// the traditional method with 10x the statistics.

#include <cstdio>

#include "core/ga_analysis.hpp"
#include "core/workflow.hpp"

int main() {
  using namespace femto;

  std::printf("=== Part 1: the Fig. 2 workflow on a real lattice ===\n\n");
  core::WorkflowOptions opts;
  opts.extents = {4, 4, 4, 8};
  opts.mobius = {6, -1.8, 1.5, 0.5, 0.2};
  opts.n_configs = 2;
  opts.thermalization = 8;
  opts.solver_tol = 1e-8;
  opts.scratch_dir = "/tmp";
  opts.seed = 90210;

  const auto rep = core::run_workflow(opts);
  std::printf("%s\n\n", rep.summary().c_str());
  std::printf("stage budget: gauge %.2fs, propagators %.2fs, "
              "contractions %.2fs, I/O %.2fs\n",
              rep.seconds_gauge, rep.seconds_propagators,
              rep.seconds_contractions, rep.seconds_io);
  std::printf("(paper split at production scale: 96.5%% / 3%% / 0.5%%)\n\n");

  std::printf("nucleon correlator (config 0):  t : C(t)\n");
  for (std::size_t t = 0; t < rep.c2pt[0].size(); ++t)
    std::printf("  %zu : %+.6e\n", t, rep.c2pt[0][t]);
  std::printf("\nFH effective coupling series (config 0, raw, tiny "
              "lattice):\n");
  for (std::size_t t = 0; t < rep.geff[0].size(); ++t)
    std::printf("  %zu : %+.4f\n", t, rep.geff[0][t]);

  std::printf("\n=== Part 2: the Fig. 1 analysis at paper scale ===\n\n");
  const core::GaEnsembleParams p;  // a09m310-like
  const auto fh_data = core::generate_fh_dataset(p, 784, 7);
  const auto fh = core::analyze_fh(fh_data, 2, 10, 200, 8);
  const auto tr_data =
      core::generate_traditional_dataset(p, {8, 10, 12}, 7840, 9);
  const auto tr = core::analyze_traditional(tr_data, 200, 10);

  std::printf("FH method   (784 samples):  gA = %.4f +- %.4f (%.2f%%)\n",
              fh.ga, fh.err, 100 * fh.err / fh.ga);
  std::printf("traditional (7840 samples): gA = %.4f +- %.4f (%.2f%%)\n",
              tr.ga, tr.err, 100 * tr.err / tr.ga);
  std::printf("fit quality: chi^2/dof = %.2f, excited-state gap dE = "
              "%.2f\n",
              fh.fit.chisq_per_dof(), fh.fit.params[3]);
  std::printf("\nthe FH determination is %.1fx more precise despite 10x "
              "fewer samples.\n",
              tr.err / fh.err);

  return rep.all_converged && fh.err < tr.err ? 0 : 1;
}
