// Campaign planner: the whole reproduction stack in one pipeline.
//
//   1. run ONE real mixed-precision Mobius solve to calibrate the
//      iteration count of the target quark mass,
//   2. project the per-solve wall time at production scale (48^3 x 64 on
//      16 Sierra GPUs) with the machine performance model,
//   3. generate the full gA campaign task list (propagators +
//      contractions) and schedule it through naive bundling, METAQ, and
//      mpi_jm on a simulated Sierra partition,
//   4. report the projected campaign wall time and GPU-hour bill under
//      each job manager.

#include <cstdio>

#include "jobmgr/schedulers.hpp"
#include "jobmgr/workload.hpp"
#include "lattice/gauge.hpp"
#include "machine/perf_model.hpp"
#include "solver/dwf_solve.hpp"

int main() {
  using namespace femto;

  // --- 1. calibrate with a real solve -----------------------------------
  std::printf("calibrating: one real solve on 4^3x8 (L5=8, mf=0.05)...\n");
  auto g = std::make_shared<Geometry>(4, 4, 4, 8);
  auto u = std::make_shared<GaugeField<double>>(
      quenched_config(g, 6.0, 10, 777));
  SolverParams sp;
  sp.tol = 1e-10;
  DwfSolver solver(u, MobiusParams{8, -1.8, 1.5, 0.5, 0.05}, sp);
  SpinorField<double> b(g, 8, Subset::Full), x(g, 8, Subset::Full);
  b.gaussian(778);
  const auto res = solver.solve(x, b);
  std::printf("  %s\n\n", res.summary().c_str());

  // --- 2. project to production scale ------------------------------------
  machine::LatticeProblem prob;
  prob.extents = {48, 48, 48, 64};
  prob.l5 = 12;
  machine::SolverPerfModel model(machine::sierra(), prob);
  const auto pt = model.strong_scaling_point(16);
  // One propagator = 12 solves x iterations x 2 Schur applies / solve.
  const double flops_per_prop = 12.0 * res.iterations * 2.0 *
                                static_cast<double>(prob.volume5()) *
                                prob.flops_per_site5;
  const double seconds_per_prop =
      flops_per_prop / (pt.tflops * 1e12);
  std::printf("production projection (Sierra, 16 GPUs/job): %.2f TFLOPS "
              "per group, ~%.0f s per propagator (%d-iteration solves)\n\n",
              pt.tflops, seconds_per_prop, res.iterations);

  // --- 3. schedule the campaign ------------------------------------------
  cluster::ClusterSpec spec;
  spec.n_nodes = 512;
  spec.nodes_per_block = 4;
  spec.node.gpus = 4;
  spec.perf_jitter_sigma = 0.03;
  spec.seed = 779;
  cluster::Cluster cl(spec);

  jm::WorkloadOptions w;
  w.n_propagators = 2000;  // one ensemble's worth
  w.nodes_per_solve = 4;
  w.solve_seconds = seconds_per_prop;
  w.contraction_seconds = seconds_per_prop * 0.03 / 0.965;
  w.duration_jitter = 0.15;
  w.seed = 780;
  const auto tasks = jm::make_campaign(w);

  const auto naive = jm::run_naive_bundling(cl, tasks);
  const auto metaq = jm::run_metaq(cl, tasks);
  const auto mjm = jm::run_mpi_jm(cl, tasks, {.lump_nodes = 64});

  std::printf("campaign of %d propagators on %d simulated Sierra "
              "nodes:\n\n",
              w.n_propagators, spec.n_nodes);
  std::printf("%-16s %12s %14s %12s\n", "scheduler", "wall (h)",
              "node-hours", "idle");
  for (const auto& r : {naive, metaq, mjm})
    std::printf("%-16s %12.2f %14.0f %11.1f%%\n", r.scheduler.c_str(),
                r.makespan / 3600.0,
                r.alloc_node_seconds / 3600.0,
                100.0 * r.idle_fraction());

  // --- 4. the punchline ----------------------------------------------------
  const double saved = (naive.alloc_node_seconds - mjm.alloc_node_seconds) /
                       3600.0;
  std::printf("\nmpi_jm vs naive bundling saves %.0f node-hours on this "
              "single-ensemble campaign (%.1fx speed-up) — multiplied "
              "across the paper's many ensembles, this is the difference "
              "that made the 1%% gA determination affordable.\n",
              saved, naive.makespan / mjm.makespan);
  return res.converged ? 0 : 1;
}
