// femtoscope end-to-end: run a tiny but REAL slice of the paper's
// campaign -- the Fig. 2 workflow (gauge -> propagators -> contractions),
// an autotune warm-up, the mpi_jm wire protocol, a multi-rank halo-style
// exchange, and batched SolveService solves -- with tracing, the sampling
// profiler, and the crash flight recorder all armed, then export and
// self-validate the femtoscope artifacts:
//
//   observed_trace.json     merged multi-rank Chrome trace_event JSON
//                           (one process row per rank, s/f flow arrows;
//                           open in Perfetto or chrome://tracing)
//   observed_report.json    schema-versioned run report with the measured
//                           sustained-performance block (S VI-VII)
//   observed_flame.txt      collapsed span stacks (flamegraph.pl /
//                           speedscope input) from the sampling profiler
//   observed_blackbox.json  flight-recorder state dump (the same document
//                           a FEMTO_CHECK failure or fatal signal writes)
//
// Exit status is the smoke test: non-zero if any artifact fails to parse,
// the flow arrows are missing, the critical path is empty, or the derived
// block is missing its measured inputs.
//
//   ./observed_run [output_dir]       (default: current directory)

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "autotune/blas_tunable.hpp"
#include "comm/communicator.hpp"
#include "core/workflow.hpp"
#include "jobmgr/mpi_jm_protocol.hpp"
#include "lattice/gauge.hpp"
#include "obs/blackbox.hpp"
#include "obs/flow.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "service/solve_service.hpp"

namespace {

bool check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "observed_run: FAILED: %s\n", what);
  return ok;
}

std::string slurp(const std::string& path) {
  std::string body;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return body;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  return body;
}

bool has(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  femto::obs::set_trace_enabled(true);
  if (std::getenv("FEMTO_LOG") == nullptr)
    femto::obs::set_log_level(femto::obs::LogLevel::Info);

  // Arm the flight recorder and the sampling profiler for the whole run:
  // a FEMTO_CHECK failure or fatal signal anywhere below dumps the
  // blackbox, and every sweep of the sampler attributes a sample to the
  // live span stack.
  const std::string blackbox_path = out_dir + "/observed_blackbox.json";
  femto::obs::blackbox_install(blackbox_path);
  femto::obs::sampler_start();

  // --- 1. the Fig. 2 workflow on a tiny lattice: real solves feed the
  // solver.* metrics, per-solve residual histories, and workflow spans.
  femto::core::WorkflowOptions wopts;
  wopts.extents = {4, 4, 4, 8};
  wopts.n_configs = 1;
  wopts.thermalization = 2;
  wopts.with_fh = false;
  wopts.solver_tol = 1e-7;
  wopts.scratch_dir = out_dir;
  const auto wrep = femto::core::run_workflow(wopts);

  // --- 2. autotune warm-up: the second identical request is a cache hit,
  // so the report's hit rate comes from real lookups.
  const auto geom = std::make_shared<femto::Geometry>(4, 4, 4, 8);
  (void)femto::tune::tuned_blas_grain<float>(geom, wopts.mobius.l5,
                                             femto::Subset::Odd);
  (void)femto::tune::tuned_blas_grain<float>(geom, wopts.mobius.l5,
                                             femto::Subset::Odd);

  // --- 3. the mpi_jm protocol with real message passing: lump managers
  // measure their own busy/idle split (jm.lump_busy_us / jm.lump_idle_us).
  std::vector<femto::jm::Task> tasks;
  for (int i = 0; i < 12; ++i) {
    femto::jm::Task t;
    t.id = i;
    t.nodes = 4;
    t.duration = 400.0;  // 2 ms each at 5 us per simulated second
    tasks.push_back(t);
  }
  femto::jm::ProtocolOptions popts;
  popts.n_lumps = 3;
  popts.nodes_per_lump = 4;
  popts.us_per_sim_second = 5.0;
  const auto prep = femto::jm::run_mpi_jm_protocol(tasks, popts);

  // --- 4. a multi-rank halo-style ring exchange: every femtocomm
  // send/recv carries a flow id, so the merged trace draws a causal arrow
  // from each rank's send to the neighbour's recv and the critical-path
  // reducer can chain the waits.
  femto::comm::run_ranks(3, [](femto::comm::RankHandle& h) {
    FEMTO_TRACE_SCOPE("comm", "halo_ring");
    const int n = h.size();
    const int right = (h.rank() + 1) % n;
    const int left = (h.rank() + n - 1) % n;
    std::vector<double> face(64, static_cast<double>(h.rank()));
    for (int round = 0; round < 4; ++round) {
      h.send_vec<double>(right, 100 + round, face);
      const auto got = h.recv_vec<double>(left, 100 + round);
      face[0] += got[0];  // consume so the exchange is load-bearing
    }
  });

  // --- 5. batched solves through the async SolveService: submit/claim
  // pairs trace as service flows, and the service's queue state is a
  // registered blackbox provider while it is alive.
  {
    const auto sgeom = std::make_shared<femto::Geometry>(4, 4, 4, 4);
    const femto::MobiusParams sparams{4, -1.8, 1.5, 0.5, 0.1};
    auto su = std::make_shared<femto::GaugeField<double>>(sgeom);
    femto::weak_gauge(*su, 2026, 0.25);
    femto::SolveServiceConfig scfg;
    scfg.max_batch = 2;
    scfg.solver.tol = 1e-7;
    femto::SolveService svc(scfg);
    std::vector<std::future<femto::SolveOutcome>> futs;
    for (std::uint64_t r = 0; r < 3; ++r) {
      auto b = std::make_shared<femto::SpinorField<double>>(
          sgeom, sparams.l5, femto::Subset::Full);
      b->gaussian(7000 + r);
      futs.push_back(svc.submit(femto::SolveRequest{su, sparams, b}));
    }
    svc.drain();
    for (auto& f : futs)
      if (!f.get().stats.converged)
        std::fprintf(stderr, "observed_run: service solve not converged\n");
  }

  // --- export + self-validate.
  const std::string trace_path = out_dir + "/observed_trace.json";
  const std::string report_path = out_dir + "/observed_report.json";
  bool ok = true;
  ok &= check(femto::obs::write_chrome_trace(trace_path),
              "writing chrome trace");
  ok &= check(femto::obs::write_report(report_path, "observed_run"),
              "writing run report");

  std::string err;
  const std::string trace = slurp(trace_path);
  ok &= check(femto::obs::json_validate(trace, &err),
              ("trace JSON invalid: " + err).c_str());
  ok &= check(has(trace, "\"traceEvents\""), "trace has traceEvents");
  ok &= check(has(trace, "dslash") || has(trace, "fifth_dim_op"),
              "trace contains dirac spans");
  ok &= check(has(trace, "lump_job"), "trace contains jobmgr spans");
  // Merged multi-rank layout: the ring exchange ran 3 ranks, so the
  // export must name per-rank process rows and draw s/f flow arrows for
  // the matched send/recv (and submit/claim) pairs.
  ok &= check(has(trace, "\"name\":\"rank 1\""),
              "trace has per-rank process rows");
  ok &= check(has(trace, "\"ph\":\"s\""), "trace has flow start events");
  ok &= check(has(trace, "\"ph\":\"f\""), "trace has flow finish events");

  // Critical path: the longest chain of waits across the whole run.
  const auto cp = femto::obs::critical_path(femto::obs::trace_snapshot());
  std::printf("%s", femto::obs::critical_path_summary(cp).c_str());
  ok &= check(cp.edges_matched > 0, "flow edges matched");
  ok &= check(!cp.chain.empty(), "critical path non-empty");

  // Sampling profiler: stop, then export the collapsed stacks.
  femto::obs::sampler_stop();
  const auto samp = femto::obs::sampler_snapshot();
  const std::string flame_path = out_dir + "/observed_flame.txt";
  ok &= check(femto::obs::write_collapsed_stacks(flame_path),
              "writing collapsed stacks");
  ok &= check(samp.samples > 0, "sampler attributed samples");
  ok &= check(!slurp(flame_path).empty(), "collapsed stacks non-empty");

  // Flight recorder: an operator-style mid-run dump must be the same
  // valid document a crash would produce.
  ok &= check(femto::obs::blackbox_write_now("operator_dump"),
              "writing blackbox dump");
  const std::string box = slurp(blackbox_path);
  ok &= check(femto::obs::json_validate(box, &err),
              ("blackbox JSON invalid: " + err).c_str());
  ok &= check(has(box, femto::obs::kBlackboxSchema), "blackbox schema tag");
  femto::obs::blackbox_uninstall();

  const std::string report = slurp(report_path);
  ok &= check(femto::obs::json_validate(report, &err),
              ("report JSON invalid: " + err).c_str());
  ok &= check(has(report, femto::obs::kReportSchema), "report schema tag");
  ok &= check(has(report, "\"sustained_gflops\""), "derived block");
  ok &= check(!has(report, "\"sustained_gflops\":0,"),
              "sustained GFLOP/s measured (non-zero)");
  ok &= check(has(report, "\"jm_source\":\"mpi_jm_lump_timeline\""),
              "jm efficiency from measured lump timeline");
  ok &= check(has(report, "\"solver\":\"mixed_cg\""),
              "per-solve records present");
  ok &= check(prep.jobs_completed == static_cast<int>(tasks.size()),
              "all protocol jobs completed");
  ok &= check(wrep.all_converged, "workflow solves converged");

  std::printf("%s", femto::obs::report_summary().c_str());
  std::printf("trace    -> %s\nreport   -> %s\nflame    -> %s\n"
              "blackbox -> %s\n",
              trace_path.c_str(), report_path.c_str(), flame_path.c_str(),
              blackbox_path.c_str());
  std::printf("observed_run: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
