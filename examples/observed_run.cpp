// femtoscope end-to-end: run a tiny but REAL slice of the paper's
// campaign -- the Fig. 2 workflow (gauge -> propagators -> contractions),
// an autotune warm-up, and the mpi_jm wire protocol -- with tracing on,
// then export and self-validate the two femtoscope artifacts:
//
//   observed_trace.json   Chrome trace_event JSON (open in Perfetto or
//                         chrome://tracing)
//   observed_report.json  schema-versioned run report with the measured
//                         sustained-performance block (S VI-VII)
//
// Exit status is the smoke test: non-zero if either artifact fails to
// parse or the derived block is missing its measured inputs.
//
//   ./observed_run [output_dir]       (default: current directory)

#include <cstdio>
#include <string>
#include <vector>

#include "autotune/blas_tunable.hpp"
#include "core/workflow.hpp"
#include "jobmgr/mpi_jm_protocol.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace {

bool check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "observed_run: FAILED: %s\n", what);
  return ok;
}

std::string slurp(const std::string& path) {
  std::string body;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return body;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  return body;
}

bool has(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  femto::obs::set_trace_enabled(true);
  if (std::getenv("FEMTO_LOG") == nullptr)
    femto::obs::set_log_level(femto::obs::LogLevel::Info);

  // --- 1. the Fig. 2 workflow on a tiny lattice: real solves feed the
  // solver.* metrics, per-solve residual histories, and workflow spans.
  femto::core::WorkflowOptions wopts;
  wopts.extents = {4, 4, 4, 8};
  wopts.n_configs = 1;
  wopts.thermalization = 2;
  wopts.with_fh = false;
  wopts.solver_tol = 1e-7;
  wopts.scratch_dir = out_dir;
  const auto wrep = femto::core::run_workflow(wopts);

  // --- 2. autotune warm-up: the second identical request is a cache hit,
  // so the report's hit rate comes from real lookups.
  const auto geom = std::make_shared<femto::Geometry>(4, 4, 4, 8);
  (void)femto::tune::tuned_blas_grain<float>(geom, wopts.mobius.l5,
                                             femto::Subset::Odd);
  (void)femto::tune::tuned_blas_grain<float>(geom, wopts.mobius.l5,
                                             femto::Subset::Odd);

  // --- 3. the mpi_jm protocol with real message passing: lump managers
  // measure their own busy/idle split (jm.lump_busy_us / jm.lump_idle_us).
  std::vector<femto::jm::Task> tasks;
  for (int i = 0; i < 12; ++i) {
    femto::jm::Task t;
    t.id = i;
    t.nodes = 4;
    t.duration = 400.0;  // 2 ms each at 5 us per simulated second
    tasks.push_back(t);
  }
  femto::jm::ProtocolOptions popts;
  popts.n_lumps = 3;
  popts.nodes_per_lump = 4;
  popts.us_per_sim_second = 5.0;
  const auto prep = femto::jm::run_mpi_jm_protocol(tasks, popts);

  // --- export + self-validate.
  const std::string trace_path = out_dir + "/observed_trace.json";
  const std::string report_path = out_dir + "/observed_report.json";
  bool ok = true;
  ok &= check(femto::obs::write_chrome_trace(trace_path),
              "writing chrome trace");
  ok &= check(femto::obs::write_report(report_path, "observed_run"),
              "writing run report");

  std::string err;
  const std::string trace = slurp(trace_path);
  ok &= check(femto::obs::json_validate(trace, &err),
              ("trace JSON invalid: " + err).c_str());
  ok &= check(has(trace, "\"traceEvents\""), "trace has traceEvents");
  ok &= check(has(trace, "dslash") || has(trace, "fifth_dim_op"),
              "trace contains dirac spans");
  ok &= check(has(trace, "lump_job"), "trace contains jobmgr spans");

  const std::string report = slurp(report_path);
  ok &= check(femto::obs::json_validate(report, &err),
              ("report JSON invalid: " + err).c_str());
  ok &= check(has(report, femto::obs::kReportSchema), "report schema tag");
  ok &= check(has(report, "\"sustained_gflops\""), "derived block");
  ok &= check(!has(report, "\"sustained_gflops\":0,"),
              "sustained GFLOP/s measured (non-zero)");
  ok &= check(has(report, "\"jm_source\":\"mpi_jm_lump_timeline\""),
              "jm efficiency from measured lump timeline");
  ok &= check(has(report, "\"solver\":\"mixed_cg\""),
              "per-solve records present");
  ok &= check(prep.jobs_completed == static_cast<int>(tasks.size()),
              "all protocol jobs completed");
  ok &= check(wrep.all_converged, "workflow solves converged");

  std::printf("%s", femto::obs::report_summary().c_str());
  std::printf("trace  -> %s\nreport -> %s\n", trace_path.c_str(),
              report_path.c_str());
  std::printf("observed_run: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
