// femtoqcd: an input-file-driven campaign executable, in the spirit of the
// Chroma/lalibe production binaries the paper's workflow is built from.
//
//   femtoqcd run <input-file>        generate ensemble + measure + archive
//   femtoqcd analyze <archive> <ens> jackknife analysis of an archive
//   femtoqcd info <archive>          list archive contents
//
// Input file (key = value, # comments):
//
//   name          = demo
//   lattice       = 4 4 4 8
//   beta          = 6.0
//   l5            = 4
//   m5            = -1.8
//   b5            = 1.5
//   c5            = 0.5
//   mf            = 0.3
//   configs       = 3
//   thermalization = 8
//   decorrelation = 3
//   tol           = 1e-7
//   seed          = 2018
//   archive       = /tmp/demo.femto

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/ensemble.hpp"

namespace {

struct Input {
  femto::core::EnsembleSpec spec;
  double tol = 1e-7;
  std::string archive = "campaign.femto";
};

Input parse_input(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open input file: " + path);
  Input inp;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream is(line);
    std::string key, eq;
    if (!(is >> key)) continue;
    if (!(is >> eq) || eq != "=")
      throw std::runtime_error("input line " + std::to_string(line_no) +
                               ": expected 'key = value'");
    if (key == "name") {
      is >> inp.spec.name;
    } else if (key == "lattice") {
      for (auto& e : inp.spec.extents) is >> e;
    } else if (key == "beta") {
      is >> inp.spec.beta;
    } else if (key == "l5") {
      is >> inp.spec.mobius.l5;
    } else if (key == "m5") {
      is >> inp.spec.mobius.m5;
    } else if (key == "b5") {
      is >> inp.spec.mobius.b5;
    } else if (key == "c5") {
      is >> inp.spec.mobius.c5;
    } else if (key == "mf") {
      is >> inp.spec.mobius.mf;
    } else if (key == "configs") {
      is >> inp.spec.n_configs;
    } else if (key == "thermalization") {
      is >> inp.spec.thermalization;
    } else if (key == "decorrelation") {
      is >> inp.spec.decorrelation;
    } else if (key == "tol") {
      is >> inp.tol;
    } else if (key == "seed") {
      is >> inp.spec.seed;
    } else if (key == "archive") {
      is >> inp.archive;
    } else {
      throw std::runtime_error("input line " + std::to_string(line_no) +
                               ": unknown key '" + key + "'");
    }
    if (is.fail())
      throw std::runtime_error("input line " + std::to_string(line_no) +
                               ": bad value for '" + key + "'");
  }
  return inp;
}

void print_result(const femto::core::EnsembleResult& res) {
  std::printf("ensemble %s: %d configurations, plaquette %.4f +- %.4f%s\n",
              res.name.c_str(), res.n_configs, res.plaquette_mean,
              res.plaquette_err,
              res.all_converged ? "" : "  [UNCONVERGED SOLVES]");
  std::printf("\nnucleon effective mass (jackknife):\n%4s %12s %12s\n",
              "t", "m_eff", "err");
  for (std::size_t t = 0; t < res.meff_mean.size(); ++t)
    std::printf("%4zu %12.5f %12.5f\n", t, res.meff_mean[t],
                res.meff_err[t]);
  std::printf("\nFH effective coupling series (config averages):\n");
  for (std::size_t t = 0; t < res.geff.front().size(); ++t) {
    double mean = 0;
    for (const auto& cfg : res.geff) mean += cfg[t];
    std::printf("%4zu %12.5f\n", t, mean / res.geff.size());
  }
}

int cmd_run(const std::string& input_path) {
  const Input inp = parse_input(input_path);
  std::printf("running campaign '%s' on %dx%dx%dx%d, beta=%.2f, %d "
              "configs...\n",
              inp.spec.name.c_str(), inp.spec.extents[0],
              inp.spec.extents[1], inp.spec.extents[2], inp.spec.extents[3],
              inp.spec.beta, inp.spec.n_configs);
  femto::SolverParams sp;
  sp.tol = inp.tol;
  sp.max_iter = 20000;
  femto::fio::File archive;
  const auto res = femto::core::run_ensemble(inp.spec, sp, &archive);
  archive.save(inp.archive);
  print_result(res);
  std::printf("\narchive written to %s\n", inp.archive.c_str());
  return res.all_converged ? 0 : 1;
}

int cmd_analyze(const std::string& archive_path, const std::string& name) {
  const auto archive = femto::fio::File::load(archive_path);
  const auto res = femto::core::load_ensemble(archive, name);
  print_result(res);
  return 0;
}

int cmd_info(const std::string& archive_path) {
  const auto archive = femto::fio::File::load(archive_path);
  std::printf("%zu datasets:\n", archive.n_datasets());
  for (const auto& path : archive.list()) {
    const auto& ds = archive.dataset(path);
    std::printf("  %-40s %s[%lld]\n", path.c_str(),
                femto::fio::to_string(ds.dtype),
                static_cast<long long>(ds.elements()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 3 && std::string(argv[1]) == "run")
      return cmd_run(argv[2]);
    if (argc >= 4 && std::string(argv[1]) == "analyze")
      return cmd_analyze(argv[2], argv[3]);
    if (argc >= 3 && std::string(argv[1]) == "info")
      return cmd_info(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "femtoqcd: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage:\n  femtoqcd run <input>\n  femtoqcd analyze "
               "<archive> <ensemble>\n  femtoqcd info <archive>\n");
  return 2;
}
