// Job management demo: a production-shaped campaign (4-node propagator
// solves feeding CPU-only contractions) scheduled three ways on a
// simulated 512-node Sierra slice, plus the paper's Summit placement
// trick: three 16-GPU jobs sharing eight 6-GPU nodes.

#include <cstdio>

#include "jobmgr/schedulers.hpp"
#include "jobmgr/workload.hpp"

int main() {
  using namespace femto;

  cluster::ClusterSpec spec;
  spec.n_nodes = 512;
  spec.nodes_per_block = 4;
  spec.node.gpus = 4;
  spec.node.cpu_slots = 40;
  spec.perf_jitter_sigma = 0.03;
  spec.bad_node_prob = 0.004;  // a couple of flaky nodes
  spec.seed = 4224;
  cluster::Cluster cl(spec);

  jm::WorkloadOptions w;
  w.n_propagators = 1024;
  w.nodes_per_solve = 4;
  w.solve_seconds = 600;
  w.duration_jitter = 0.15;
  w.with_contractions = true;
  w.seed = 1;
  const auto tasks = jm::make_campaign(w);

  std::printf("campaign: %zu tasks on %d nodes (%.1f%% healthy)\n\n",
              tasks.size(), spec.n_nodes, 100 * cl.healthy_fraction());

  const auto naive = jm::run_naive_bundling(cl, tasks);
  const auto metaq = jm::run_metaq(cl, tasks);
  const auto mjm = jm::run_mpi_jm(cl, tasks, {.lump_nodes = 64});

  std::printf("%-16s %10s %12s %8s %10s %12s\n", "scheduler", "makespan",
              "utilization", "idle", "fragmented", "co-scheduled");
  for (const auto& r : {naive, metaq, mjm})
    std::printf("%-16s %9.0fs %11.1f%% %7.1f%% %10d %12d\n",
                r.scheduler.c_str(), r.makespan, 100 * r.utilization(),
                100 * r.idle_fraction(), r.fragmented_placements,
                r.cpu_tasks_coscheduled);

  std::printf("\nmpi_jm is %.2fx faster than naive bundling; METAQ "
              "recovers %.0f%% of the gap.\n",
              naive.makespan / mjm.makespan,
              100.0 * (naive.makespan - metaq.makespan) /
                  (naive.makespan - mjm.makespan));

  // --- the Summit 6-GPU placement example (paper S VII) ----------------
  std::printf("\n-- Summit placement: three 16-GPU jobs on eight 6-GPU "
              "nodes --\n");
  cluster::ClusterSpec sspec;
  sspec.n_nodes = 8;
  sspec.nodes_per_block = 8;
  sspec.node.gpus = 6;
  sspec.seed = 6;
  cluster::Cluster summit(sspec);
  std::vector<jm::Task> three;
  for (int j = 0; j < 3; ++j) {
    jm::Task t;
    t.id = j;
    t.nodes = 8;
    t.gpus_per_node = 2;  // 16 GPUs as 2 per node across all 8 nodes
    t.cpu_slots_per_node = 2;
    t.duration = 600;
    three.push_back(t);
  }
  const auto srep = jm::run_mpi_jm(summit, three, {.lump_nodes = 8});
  double start_max = 0, end_min = 1e30;
  for (const auto& r : srep.records) {
    start_max = std::max(start_max, r.start);
    end_min = std::min(end_min, r.end);
  }
  std::printf("all three jobs ran concurrently: %s (48 of 48 GPUs "
              "occupied)\n",
              start_max < end_min ? "YES" : "NO");

  return srep.tasks_completed == 3 && start_max < end_min ? 0 : 1;
}
