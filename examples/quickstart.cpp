// Quickstart: the minimal end-to-end use of the library.
//
//   1. build a lattice geometry and generate a quenched SU(3) gauge
//      configuration with the heatbath,
//   2. autotune the dslash launch parameters for this volume,
//   3. solve the Mobius domain-wall Dirac equation for one right-hand
//      side with the production mixed-precision (double-half) CG,
//   4. verify the residual against the full unpreconditioned operator.
//
// Build: cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "autotune/dslash_tunable.hpp"
#include "lattice/blas.hpp"
#include "lattice/gauge.hpp"
#include "solver/dwf_solve.hpp"

int main() {
  using namespace femto;

  // 1. An 8^3 x 16 lattice, quenched Wilson gauge action at beta = 6.0.
  auto geom = std::make_shared<Geometry>(8, 8, 8, 16);
  std::printf("generating a quenched configuration (8^3 x 16, beta=6.0, "
              "20 heatbath sweeps)...\n");
  auto u = std::make_shared<GaugeField<double>>(
      quenched_config(geom, 6.0, 20, /*seed=*/2018));
  std::printf("average plaquette: %.4f (literature value ~0.59)\n\n",
              plaquette(*u));

  // 2. Autotune the stencil for this volume (cached for later solves).
  const MobiusParams params{8, -1.8, 1.5, 0.5, 0.05};
  const auto tuned = tune::tuned_dslash_grain<double>(u, params.l5, 0);
  std::printf("autotuned dslash: %s kernel, %zu sites/chunk\n\n",
              to_string(tuned.variant), tuned.grain);

  // 3. Solve D x = b with mixed-precision CGNE (16-bit sloppy storage,
  //    reliable updates to double).
  SolverParams sp;
  sp.tol = 1e-10;
  sp.sloppy = Precision::Half;
  DwfSolver solver(u, params, sp);
  solver.op().geom_ptr();  // (operators share the geometry)

  SpinorField<double> b(geom, params.l5, Subset::Full),
      x(geom, params.l5, Subset::Full);
  b.gaussian(42);
  std::printf("solving Mobius DWF (L5=%d, b5=%.1f, c5=%.1f, mf=%.3f) "
              "with double-half CG...\n",
              params.l5, params.b5, params.c5, params.mf);
  const auto res = solver.solve(x, b);
  std::printf("%s\n", res.summary().c_str());

  // 4. Independent verification against the full operator.
  SpinorField<double> check(geom, params.l5, Subset::Full);
  solver.op().apply_full(check, x);
  blas::axpy(-1.0, b, check);
  const double true_res = std::sqrt(blas::norm2(check) / blas::norm2(b));
  std::printf("true residual |Dx - b| / |b| = %.2e\n", true_res);

  return res.converged && true_res < 1e-7 ? 0 : 1;
}
