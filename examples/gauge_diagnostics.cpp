// Gauge-ensemble diagnostics: the battery of checks run on every new
// ensemble before fermion measurements are trusted — plaquette
// thermalisation, Wilson loops / Creutz ratio (confinement), Polyakov
// loop (center symmetry), and the Wilson-flow t^2<E> curve (scale
// setting), plus APE smearing as a cross-check that the UV roughness is
// where it should be.

#include <cstdio>

#include "lattice/flow.hpp"
#include "lattice/gauge.hpp"
#include "lattice/observables.hpp"
#include "lattice/smear.hpp"

int main() {
  using namespace femto;
  auto geom = std::make_shared<Geometry>(6, 6, 6, 8);

  std::printf("thermalising a quenched ensemble member (6^3 x 8, "
              "beta = 6.0)...\n\n");
  GaugeField<double> u(geom);
  hot_gauge(u, 1234);
  std::printf("%8s %12s\n", "sweep", "plaquette");
  for (int sweep = 0; sweep < 24; ++sweep) {
    heatbath_sweep(u, 6.0, 1235, sweep);
    if (sweep % 4 == 3)
      std::printf("%8d %12.5f\n", sweep + 1, plaquette(u));
  }

  std::printf("\n-- confinement diagnostics --\n");
  std::printf("Wilson loops: W(1,1)=%.4f  W(1,2)=%.4f  W(2,2)=%.4f  "
              "W(2,3)=%.4f\n",
              wilson_loop(u, 1, 1), wilson_loop(u, 1, 2),
              wilson_loop(u, 2, 2), wilson_loop(u, 2, 3));
  std::printf("Creutz ratio chi(2,2) = %.4f (string tension estimate; "
              "positive = confined)\n",
              creutz_ratio(u, 2, 2));
  const auto poly = polyakov_loop(u);
  std::printf("Polyakov loop = (%.4f, %.4f), |P| = %.4f "
              "(near zero = center symmetry intact)\n",
              poly.re, poly.im, abs(poly));

  std::printf("\n-- Wilson flow (scale setting) --\n");
  GaugeField<double> flowed = u;
  FlowParams fp;
  fp.epsilon = 0.02;
  fp.steps = 12;
  const auto t2e = wilson_flow(flowed, fp);
  std::printf("%8s %14s %12s\n", "t", "t^2 <E(t)>", "plaquette");
  for (std::size_t k = 0; k < t2e.size(); k += 2)
    std::printf("%8.2f %14.5f %12.5f\n",
                fp.epsilon * static_cast<double>(k + 1), t2e[k],
                k + 1 == t2e.size() ? plaquette(flowed) : 0.0);
  std::printf("(t0 is defined by t^2<E> = 0.3; on this coarse toy "
              "lattice the curve's monotone rise is the check)\n");

  std::printf("\n-- smearing cross-check --\n");
  const double rough = action_density(u);
  const auto smeared = ape_smear(u, {0.5, 3});
  std::printf("action density: %.4f raw -> %.4f after 3 APE sweeps "
              "(UV roughness removed)\n",
              rough, action_density(smeared));

  const bool ok = plaquette(u) > 0.5 && creutz_ratio(u, 2, 2) > 0 &&
                  abs(poly) < 0.5;
  std::printf("\nensemble passes the standard sanity battery: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
