// Scaling explorer: a small CLI over the machine performance model.
//
//   scaling_explorer [machine] [Lx Ly Lz Lt L5] [gpu counts...]
//
// With no arguments, prints the Sierra 48^3 x 64 strong-scaling table.
// Example:
//   ./build/examples/scaling_explorer summit 96 96 96 144 12 768 3072

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "machine/perf_model.hpp"

namespace {

femto::machine::MachineSpec pick_machine(const char* name) {
  for (const auto& m : femto::machine::all_machines()) {
    std::string lower = m.name;
    for (auto& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name) return m;
  }
  std::fprintf(stderr, "unknown machine '%s' (use titan/ray/sierra/summit)\n",
               name);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace femto::machine;

  MachineSpec machine = sierra();
  LatticeProblem prob;
  prob.extents = {48, 48, 48, 64};
  prob.l5 = 12;
  std::vector<int> counts{4, 16, 64, 256, 1024};

  int arg = 1;
  if (arg < argc && !std::isdigit(static_cast<unsigned char>(*argv[arg])))
    machine = pick_machine(argv[arg++]);
  if (arg + 4 < argc) {
    for (int i = 0; i < 4; ++i)
      prob.extents[static_cast<std::size_t>(i)] = std::atoi(argv[arg++]);
    prob.l5 = std::atoi(argv[arg++]);
  }
  if (arg < argc) {
    counts.clear();
    while (arg < argc) counts.push_back(std::atoi(argv[arg++]));
  }

  std::printf("machine: %s (%d nodes x %d %s)\n", machine.name.c_str(),
              machine.nodes, machine.gpus_per_node, machine.gpu.c_str());
  std::printf("lattice: %d x %d x %d x %d, L5 = %d (%lld 5D sites)\n\n",
              prob.extents[0], prob.extents[1], prob.extents[2],
              prob.extents[3], prob.l5,
              static_cast<long long>(prob.volume5()));

  SolverPerfModel model(machine, prob);
  std::printf("%8s %12s %10s %14s %10s %16s\n", "GPUs", "TFLOPS",
              "pct peak", "GB/s per GPU", "surface", "tuned policy");
  for (int n : counts) {
    const auto pt = model.strong_scaling_point(n);
    std::printf("%8d %12.2f %10.2f %14.1f %9.1f%% %16s\n", n, pt.tflops,
                pt.pct_peak, pt.bw_per_gpu_gbs,
                100.0 * pt.surface_fraction, pt.policy.c_str());
  }
  return 0;
}
