#pragma once
// femtoclust: a simulated GPU cluster — the substitution for Sierra/Summit
// hardware (DESIGN.md).  Nodes carry CPU slots, GPUs, a per-node
// performance factor (real machines are heterogeneous: "nodes can differ
// in performance", paper S V), block/topology structure for locality, and
// failure flags (mpi_jm "ignores lumps that fail to start", S V).

#include <cstdint>
#include <vector>

#include "lattice/rng.hpp"

namespace femto::cluster {

struct NodeSpec {
  int cpu_slots = 40;  ///< schedulable CPU slots (POWER9-ish)
  int gpus = 4;
  double mem_gb = 256.0;
};

struct ClusterSpec {
  int n_nodes = 128;
  NodeSpec node;
  int nodes_per_block = 4;      ///< high-bandwidth locality unit
  double perf_jitter_sigma = 0.03;  ///< lognormal-ish node speed spread
  double bad_node_prob = 0.0;   ///< nodes that fail to start
  std::uint64_t seed = 1;
};

struct Node {
  int id = 0;
  int block = 0;
  int cpu_free = 0;
  int gpu_free = 0;
  double mem_free = 0.0;
  /// Relative speed (1.0 nominal).  Collective work runs at the MIN factor
  /// of the participating nodes.
  double perf_factor = 1.0;
  bool failed = false;
};

class Cluster {
 public:
  explicit Cluster(const ClusterSpec& spec);

  const ClusterSpec& spec() const { return spec_; }
  int size() const { return static_cast<int>(nodes_.size()); }
  Node& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  const Node& node(int id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  const std::vector<Node>& nodes() const { return nodes_; }

  int n_blocks() const;
  /// Node ids of one block.
  std::vector<int> block_nodes(int block) const;

  /// Count of healthy nodes with at least the given free resources.
  int count_available(int gpus, int cpus) const;

  /// Slowest performance factor among a node set (collective work rate).
  double min_perf(const std::vector<int>& ids) const;

  /// True when every node in the set belongs to the same block (the
  /// locality condition mpi_jm's block boundaries enforce).
  bool same_block(const std::vector<int>& ids) const;

  /// Fraction of healthy nodes.
  double healthy_fraction() const;

 private:
  ClusterSpec spec_;
  std::vector<Node> nodes_;
};

}  // namespace femto::cluster
