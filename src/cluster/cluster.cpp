#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>

namespace femto::cluster {

Cluster::Cluster(const ClusterSpec& spec) : spec_(spec) {
  nodes_.resize(static_cast<std::size_t>(spec.n_nodes));
  for (int i = 0; i < spec.n_nodes; ++i) {
    Node& n = nodes_[static_cast<std::size_t>(i)];
    n.id = i;
    n.block = i / spec.nodes_per_block;
    n.cpu_free = spec.node.cpu_slots;
    n.gpu_free = spec.node.gpus;
    n.mem_free = spec.node.mem_gb;
    Xoshiro256 rng(spec.seed, static_cast<std::uint64_t>(i), 0xC1);
    // Slowdowns only: a node is at best nominal speed.
    n.perf_factor =
        1.0 / (1.0 + std::abs(rng.gaussian()) * spec.perf_jitter_sigma);
    n.failed = rng.uniform() < spec.bad_node_prob;
  }
}

int Cluster::n_blocks() const {
  return (spec_.n_nodes + spec_.nodes_per_block - 1) /
         spec_.nodes_per_block;
}

std::vector<int> Cluster::block_nodes(int block) const {
  std::vector<int> out;
  for (const auto& n : nodes_)
    if (n.block == block) out.push_back(n.id);
  return out;
}

int Cluster::count_available(int gpus, int cpus) const {
  int c = 0;
  for (const auto& n : nodes_)
    if (!n.failed && n.gpu_free >= gpus && n.cpu_free >= cpus) ++c;
  return c;
}

double Cluster::min_perf(const std::vector<int>& ids) const {
  double m = 1.0;
  for (int id : ids)
    m = std::min(m, nodes_[static_cast<std::size_t>(id)].perf_factor);
  return m;
}

bool Cluster::same_block(const std::vector<int>& ids) const {
  if (ids.empty()) return true;
  const int b = nodes_[static_cast<std::size_t>(ids.front())].block;
  return std::all_of(ids.begin(), ids.end(), [&](int id) {
    return nodes_[static_cast<std::size_t>(id)].block == b;
  });
}

double Cluster::healthy_fraction() const {
  int ok = 0;
  for (const auto& n : nodes_)
    if (!n.failed) ++ok;
  return static_cast<double>(ok) / static_cast<double>(nodes_.size());
}

}  // namespace femto::cluster
