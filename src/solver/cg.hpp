#pragma once
// Krylov solvers: conjugate gradient on the normal equations (CGNE), in
// uniform precision and in the paper's mixed-precision form — a
// "red-black preconditioned double-half CG solver, where most of the work
// is done using 16-bit precision fixed-point storage (utilizing single-
// precision computation) with occasional reliable updates to full double
// precision".

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lattice/blas.hpp"
#include "lattice/compressed_gauge.hpp"
#include "lattice/field.hpp"

namespace femto {

/// Precision of the sloppy (inner) solver.
enum class Precision { Double, Single, Half };

const char* to_string(Precision p);

/// Precision tag of an arithmetic type (the half path stores 16-bit but
/// computes in float, so half samples are tagged by the caller).
template <typename T>
constexpr Precision precision_of() {
  return sizeof(T) == sizeof(double) ? Precision::Double
                                     : Precision::Single;
}

/// y = A x application in precision T.  A must be Hermitian positive
/// definite for CG (use the normal operator Mhat^dag Mhat).
template <typename T>
using ApplyFn = std::function<void(SpinorField<T>&, const SpinorField<T>&)>;

struct SolverParams {
  double tol = 1e-10;         ///< target ||r|| / ||b||
  int max_iter = 10000;
  Precision sloppy = Precision::Half;  ///< inner precision for mixed CG
  double delta = 0.1;         ///< reliable-update trigger: inner residual
                              ///< shrinks by this factor vs last update
  int min_inner_iter = 5;     ///< avoid thrashing updates
  std::size_t blas_grain = 0;  ///< chunk grain for the solver's BLAS
                               ///< kernels (0 = blas::kGrain); autotuned
                               ///< via tune::tuned_blas_grain
  /// Gauge storage tier for the sloppy (inner) operator (DESIGN.md §16).
  /// The approximate tiers (recon8/fixed12) are allowed exactly where
  /// half-precision spinors already are — inner iterations — while
  /// reliable updates always run on full-18 double links.  Autotuned via
  /// tune::tuned_dslash_grain(..., FormatSet::kAll) in DwfSolver.
  GaugeFormat gauge_format = GaugeFormat::kFull18;
};

/// One per-iteration point of a solve's convergence trajectory.
struct ResidualSample {
  int iteration = 0;
  double rel_residual = 0.0;  ///< |r|/|b| as seen by the iteration
  Precision precision = Precision::Double;  ///< precision of that residual
  bool reliable_update = false;  ///< sample taken at a reliable update
};

struct SolveResult {
  bool converged = false;
  int iterations = 0;         ///< total matvec count (normal-op applies)
  int reliable_updates = 0;   ///< double-precision residual recomputations
  double final_rel_residual = 0.0;
  double seconds = 0.0;
  std::int64_t flop_count = 0;
  std::int64_t byte_count = 0;  ///< compulsory traffic (flops::bytes delta)

  /// Full residual history (one sample per iteration plus one per reliable
  /// update), recorded by cg / mixed_cg / bicgstab so convergence
  /// regressions are diagnosable from run artifacts.  The femtoscope
  /// report stores a downsampled copy (solver_obs::record).
  std::vector<ResidualSample> history;

  double gflops() const {
    return seconds > 0 ? static_cast<double>(flop_count) / seconds / 1e9
                       : 0.0;
  }
  double arithmetic_intensity() const {
    return byte_count > 0 ? static_cast<double>(flop_count) /
                                static_cast<double>(byte_count)
                          : 0.0;
  }
  std::string summary() const;
};

/// Plain CG in precision T: solves A x = b, x is both the initial guess
/// (typically zero) and the result.  The iteration body uses the fused
/// single-pass kernels (axpy_norm2, axpy_zpbx), so each iteration makes 3
/// full-field BLAS sweeps beyond the matvec instead of the naive 5.
/// @p blas_grain: chunk grain for those kernels (0 = blas::kGrain).
template <typename T>
SolveResult cg(const ApplyFn<T>& a, SpinorField<T>& x,
               const SpinorField<T>& b, double tol, int max_iter,
               std::size_t blas_grain = 0);

/// Mixed-precision CG with reliable updates: the outer residual is held in
/// double and recomputed with @p a_double; inner CG iterations run in
/// single precision via @p a_single, optionally with every inner vector
/// round-tripped through 16-bit fixed-point storage (Precision::Half),
/// which is the paper's production configuration.
SolveResult mixed_cg(const ApplyFn<double>& a_double,
                     const ApplyFn<float>& a_single,
                     SpinorField<double>& x, const SpinorField<double>& b,
                     const SolverParams& params);

extern template SolveResult cg<double>(const ApplyFn<double>&,
                                       SpinorField<double>&,
                                       const SpinorField<double>&, double,
                                       int, std::size_t);
extern template SolveResult cg<float>(const ApplyFn<float>&,
                                      SpinorField<float>&,
                                      const SpinorField<float>&, double, int,
                                      std::size_t);

}  // namespace femto
