#include "solver/cg.hpp"

#include <cmath>
#include <sstream>

#include "core/check.hpp"
#include "lattice/flops.hpp"
#include "obs/trace.hpp"
#include "obs/wallclock.hpp"
#include "solver/half.hpp"
#include "solver/solver_obs.hpp"

namespace femto {

const char* to_string(Precision p) {
  switch (p) {
    case Precision::Double: return "double";
    case Precision::Single: return "single";
    default: return "half";
  }
}

std::string SolveResult::summary() const {
  std::ostringstream os;
  os << (converged ? "converged" : "NOT converged") << " in " << iterations
     << " iterations (" << reliable_updates << " reliable updates), |r|/|b|="
     << final_rel_residual << ", " << gflops() << " GFLOP/s";
  return os.str();
}

namespace {

std::size_t resolve_grain(std::size_t blas_grain) {
  return blas_grain == 0 ? blas::kGrain : blas_grain;
}

// The half kernels chunk over 24-real blocks, not reals; derive their grain
// from the BLAS grain so one tunable covers both.
std::size_t half_grain(std::size_t blas_grain) {
  if (blas_grain == 0) return HalfSpinorField::kHalfGrain;
  return std::max<std::size_t>(1, blas_grain / kSpinorReals);
}

}  // namespace

template <typename T>
SolveResult cg(const ApplyFn<T>& a, SpinorField<T>& x,
               const SpinorField<T>& b, double tol, int max_iter,
               std::size_t blas_grain) {
  FEMTO_TRACE_SCOPE("solver", "cg");
  SolveResult res;
  const obs::Stopwatch sw;
  const std::int64_t flops0 = flops::get();
  const std::int64_t bytes0 = flops::bytes();
  const std::size_t g = resolve_grain(blas_grain);

  SpinorField<T> r = b;
  SpinorField<T> ap(b.geom_ptr(), b.l5(), b.subset());
  const double b2 = blas::norm2(b, g);
  // r = b - A x (skip the matvec if x is zero — caller convention is a
  // zero initial guess, but handle a warm start correctly anyway; when
  // r = b its norm is b2 already).
  double rsq = b2;
  const double xnorm = blas::norm2(x, g);
  if (xnorm > 0.0) {
    a(ap, x);
    rsq = blas::axpy_norm2<T>(-1.0, ap, r, g);
  }
  SpinorField<T> p = r;

  const double target = tol * tol * b2;

  while (res.iterations < max_iter && rsq > target) {
    a(ap, p);
    ++res.iterations;
    const double pap = blas::redot(p, ap, g);
    const double alpha = rsq / pap;
    // QUDA-style fused update: r and ||r||^2 in one pass, then the x and p
    // updates share a single pass over p (axpyZpbx).
    const double rsq_new = blas::axpy_norm2<T>(-alpha, ap, r, g);
    FEMTO_CHECK(std::isfinite(rsq_new),
                "cg: residual norm went NaN/Inf (diverging operator or "
                "corrupt field data)");
    const double beta = rsq_new / rsq;
    rsq = rsq_new;
    blas::axpy_zpbx<T>(alpha, p, x, r, beta, g);
    res.history.push_back({res.iterations,
                           b2 > 0.0 ? std::sqrt(rsq / b2) : 0.0,
                           precision_of<T>(), false});
  }

  res.converged = rsq <= target;
  res.final_rel_residual = std::sqrt(rsq / b2);
  res.seconds = sw.seconds();
  res.flop_count = flops::get() - flops0;
  res.byte_count = flops::bytes() - bytes0;
  solver_obs::record("cg", res);
  return res;
}

SolveResult mixed_cg(const ApplyFn<double>& a_double,
                     const ApplyFn<float>& a_single,
                     SpinorField<double>& x, const SpinorField<double>& b,
                     const SolverParams& params) {
  FEMTO_TRACE_SCOPE("solver", "mixed_cg");
  SolveResult res;
  const obs::Stopwatch sw;
  const std::int64_t flops0 = flops::get();
  const std::int64_t bytes0 = flops::bytes();
  const std::size_t g = resolve_grain(params.blas_grain);
  const std::size_t hg = half_grain(params.blas_grain);

  const auto geom = b.geom_ptr();
  const int l5 = b.l5();
  const Subset sub = b.subset();
  const bool half = params.sloppy == Precision::Half;
  const Precision inner_prec =
      half ? Precision::Half : Precision::Single;

  // Outer (double) state.
  SpinorField<double> r_d = b;
  SpinorField<double> tmp_d(geom, l5, sub);
  const double b2 = blas::norm2(b, g);
  double r2_d = b2;
  const double xnorm = blas::norm2(x, g);
  if (xnorm > 0.0) {
    a_double(tmp_d, x);
    r2_d = blas::axpy_norm2<double>(-1.0, tmp_d, r_d, g);
  }
  const double target = params.tol * params.tol * b2;

  // Sloppy state.
  SpinorField<float> r_s(geom, l5, sub), p_s(geom, l5, sub),
      ap_s(geom, l5, sub), xs(geom, l5, sub);
  HalfSpinorField hstore(geom, l5, sub);

  while (r2_d > target && res.iterations < params.max_iter) {
    // (Re)start the inner solve from the true residual.  In half mode the
    // demoted residual is round-tripped through 16-bit storage and its
    // norm taken in the same pass.
    blas::copy(r_s, r_d, g);
    double rsq = half ? hstore.roundtrip_norm2(r_s, hg)
                      : blas::norm2(r_s, g);
    blas::copy(p_s, r_s, g);
    xs.zero();
    const double update_target = rsq * params.delta * params.delta;
    int inner = 0;

    while (res.iterations < params.max_iter &&
           (rsq > update_target || inner < params.min_inner_iter) &&
           rsq > 0.25 * target) {
      a_single(ap_s, p_s);
      ++res.iterations;
      ++inner;
      const double pap = blas::redot(p_s, ap_s, g);
      if (!(pap > 0.0)) break;  // sloppy breakdown: force reliable update
      const double alpha = rsq / pap;
      double rsq_new;
      if (half) {
        // Each vector update fuses with its 16-bit quantisation (and, for
        // r, with the norm): one pass per field instead of the naive
        // update + 4-sweep quantize().
        hstore.axpy_roundtrip(alpha, p_s, xs, hg);
        rsq_new = hstore.axpy_roundtrip_norm2(-alpha, ap_s, r_s, hg);
      } else {
        // QUDA tripleCGUpdate: x += alpha p; r -= alpha ap; ||r||^2.
        rsq_new = blas::triple_cg_update<float>(alpha, p_s, ap_s, xs, r_s, g);
      }
      FEMTO_CHECK(std::isfinite(rsq_new),
                  "mixed_cg: sloppy residual norm went NaN/Inf");
      const double beta = rsq_new / rsq;
      rsq = rsq_new;
      if (half) {
        hstore.xpay_roundtrip(r_s, beta, p_s, hg);
      } else {
        blas::xpay<float>(r_s, beta, p_s, g);
      }
      res.history.push_back({res.iterations,
                             b2 > 0.0 ? std::sqrt(rsq / b2) : 0.0,
                             inner_prec, false});
    }

    // Reliable update: fold the sloppy solution into x, recompute the true
    // residual in double with its norm fused into the subtraction.
    blas::copy(tmp_d, xs, g);  // promote
    blas::axpy<double>(1.0, tmp_d, x, g);
    a_double(tmp_d, x);
    blas::copy(r_d, b, g);
    r2_d = blas::axpy_norm2<double>(-1.0, tmp_d, r_d, g);
    FEMTO_CHECK(std::isfinite(r2_d),
                "mixed_cg: true residual norm went NaN/Inf at a reliable "
                "update");
    ++res.reliable_updates;
    res.history.push_back({res.iterations,
                           b2 > 0.0 ? std::sqrt(r2_d / b2) : 0.0,
                           Precision::Double, true});

    // If the sloppy solver could not take a single step the target is
    // below the sloppy precision floor; stop rather than spin.
    if (inner == 0) break;
  }

  res.converged = r2_d <= target;
  res.final_rel_residual = std::sqrt(r2_d / b2);
  res.seconds = sw.seconds();
  res.flop_count = flops::get() - flops0;
  res.byte_count = flops::bytes() - bytes0;
  solver_obs::record("mixed_cg", res);
  return res;
}

template SolveResult cg<double>(const ApplyFn<double>&, SpinorField<double>&,
                                const SpinorField<double>&, double, int,
                                std::size_t);
template SolveResult cg<float>(const ApplyFn<float>&, SpinorField<float>&,
                               const SpinorField<float>&, double, int,
                               std::size_t);

}  // namespace femto
