#include "solver/cg.hpp"

#include <cmath>
#include <sstream>

#include "lattice/flops.hpp"
#include "solver/half.hpp"

namespace femto {

const char* to_string(Precision p) {
  switch (p) {
    case Precision::Double: return "double";
    case Precision::Single: return "single";
    default: return "half";
  }
}

std::string SolveResult::summary() const {
  std::ostringstream os;
  os << (converged ? "converged" : "NOT converged") << " in " << iterations
     << " iterations (" << reliable_updates << " reliable updates), |r|/|b|="
     << final_rel_residual << ", " << gflops() << " GFLOP/s";
  return os.str();
}

template <typename T>
SolveResult cg(const ApplyFn<T>& a, SpinorField<T>& x,
               const SpinorField<T>& b, double tol, int max_iter) {
  SolveResult res;
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t flops0 = flops::get();

  SpinorField<T> r = b;
  SpinorField<T> ap(b.geom_ptr(), b.l5(), b.subset());
  // r = b - A x (skip the matvec if x is zero — caller convention is a
  // zero initial guess, but handle a warm start correctly anyway).
  const double xnorm = blas::norm2(x);
  if (xnorm > 0.0) {
    a(ap, x);
    blas::axpy<T>(-1.0, ap, r);
  }
  SpinorField<T> p = r;

  const double b2 = blas::norm2(b);
  double rsq = blas::norm2(r);
  const double target = tol * tol * b2;

  while (res.iterations < max_iter && rsq > target) {
    a(ap, p);
    ++res.iterations;
    const double pap = blas::redot(p, ap);
    const double alpha = rsq / pap;
    blas::axpy<T>(alpha, p, x);
    blas::axpy<T>(-alpha, ap, r);
    const double rsq_new = blas::norm2(r);
    const double beta = rsq_new / rsq;
    rsq = rsq_new;
    blas::xpay<T>(r, beta, p);
  }

  res.converged = rsq <= target;
  res.final_rel_residual = std::sqrt(rsq / b2);
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  res.flop_count = flops::get() - flops0;
  return res;
}

namespace {

/// Round-trip a float field through 16-bit fixed-point storage: the
/// precision loss a half-storage solver incurs on every vector it touches.
void quantize(SpinorField<float>& f, HalfSpinorField& store) {
  store.encode(f);
  store.decode(f);
}

}  // namespace

SolveResult mixed_cg(const ApplyFn<double>& a_double,
                     const ApplyFn<float>& a_single,
                     SpinorField<double>& x, const SpinorField<double>& b,
                     const SolverParams& params) {
  SolveResult res;
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t flops0 = flops::get();

  const auto geom = b.geom_ptr();
  const int l5 = b.l5();
  const Subset sub = b.subset();
  const bool half = params.sloppy == Precision::Half;

  // Outer (double) state.
  SpinorField<double> r_d = b;
  SpinorField<double> tmp_d(geom, l5, sub);
  const double xnorm = blas::norm2(x);
  if (xnorm > 0.0) {
    a_double(tmp_d, x);
    blas::axpy<double>(-1.0, tmp_d, r_d);
  }
  const double b2 = blas::norm2(b);
  double r2_d = blas::norm2(r_d);
  const double target = params.tol * params.tol * b2;

  // Sloppy state.
  SpinorField<float> r_s(geom, l5, sub), p_s(geom, l5, sub),
      ap_s(geom, l5, sub), xs(geom, l5, sub);
  HalfSpinorField hstore(geom, l5, sub);

  while (r2_d > target && res.iterations < params.max_iter) {
    // (Re)start the inner solve from the true residual.
    blas::copy(r_s, r_d);
    if (half) quantize(r_s, hstore);
    blas::copy(p_s, r_s);
    xs.zero();
    double rsq = blas::norm2(r_s);
    const double update_target = rsq * params.delta * params.delta;
    int inner = 0;

    while (res.iterations < params.max_iter &&
           (rsq > update_target || inner < params.min_inner_iter) &&
           rsq > 0.25 * target) {
      a_single(ap_s, p_s);
      ++res.iterations;
      ++inner;
      const double pap = blas::redot(p_s, ap_s);
      if (!(pap > 0.0)) break;  // sloppy breakdown: force reliable update
      const double alpha = rsq / pap;
      blas::axpy<float>(alpha, p_s, xs);
      blas::axpy<float>(-alpha, ap_s, r_s);
      if (half) {
        quantize(xs, hstore);
        quantize(r_s, hstore);
      }
      const double rsq_new = blas::norm2(r_s);
      const double beta = rsq_new / rsq;
      rsq = rsq_new;
      blas::xpay<float>(r_s, beta, p_s);
      if (half) quantize(p_s, hstore);
    }

    // Reliable update: fold the sloppy solution into x, recompute the true
    // residual in double.
    blas::copy(tmp_d, xs);  // promote
    blas::axpy<double>(1.0, tmp_d, x);
    a_double(tmp_d, x);
    blas::copy(r_d, b);
    blas::axpy<double>(-1.0, tmp_d, r_d);
    r2_d = blas::norm2(r_d);
    ++res.reliable_updates;

    // If the sloppy solver could not take a single step the target is
    // below the sloppy precision floor; stop rather than spin.
    if (inner == 0) break;
  }

  res.converged = r2_d <= target;
  res.final_rel_residual = std::sqrt(r2_d / b2);
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  res.flop_count = flops::get() - flops0;
  return res;
}

template SolveResult cg<double>(const ApplyFn<double>&, SpinorField<double>&,
                                const SpinorField<double>&, double, int);
template SolveResult cg<float>(const ApplyFn<float>&, SpinorField<float>&,
                               const SpinorField<float>&, double, int);

}  // namespace femto
