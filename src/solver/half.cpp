#include "solver/half.hpp"

#include "parallel/thread_pool.hpp"

namespace femto {

void HalfSpinorField::encode(const SpinorField<float>& src) {
  assert(src.l5() == l5_ && src.subset() == subset_);
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(blocks()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b)
          encode_block(static_cast<std::int64_t>(b),
                       src.data() + b * kSpinorReals);
      },
      512);
}

void HalfSpinorField::decode(SpinorField<float>& dst) const {
  assert(dst.l5() == l5_ && dst.subset() == subset_);
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(blocks()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b)
          decode_block(static_cast<std::int64_t>(b),
                       dst.data() + b * kSpinorReals);
      },
      512);
}

}  // namespace femto
