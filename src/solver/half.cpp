#include "solver/half.hpp"

#include "lattice/flops.hpp"
#include "parallel/thread_pool.hpp"

namespace femto {

namespace {
// Traffic charged per block for a one-pass quantise round-trip over the
// float field: read + write the 24 floats, write the 24 int16 and the
// float scale (the int16 staging is read back while still cache resident,
// so it is charged once).
constexpr std::int64_t kRoundtripBytesPerBlock =
    kSpinorReals * (2 * sizeof(float) + sizeof(std::int16_t)) + sizeof(float);
// One extra float-field read for kernels that also stream an x input.
constexpr std::int64_t kXReadBytesPerBlock = kSpinorReals * sizeof(float);
}  // namespace

void HalfSpinorField::encode(const SpinorField<float>& src,
                             std::size_t grain) {
  assert(src.l5() == l5_ && src.subset() == subset_);
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(blocks()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b)
          encode_block(static_cast<std::int64_t>(b),
                       src.data() + b * kSpinorReals);
      },
      grain);
  flops::add_bytes(blocks() *
                   static_cast<std::int64_t>(
                       kSpinorReals * (sizeof(float) + sizeof(std::int16_t)) +
                       sizeof(float)));
}

void HalfSpinorField::decode(SpinorField<float>& dst,
                             std::size_t grain) const {
  assert(dst.l5() == l5_ && dst.subset() == subset_);
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(blocks()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b)
          decode_block(static_cast<std::int64_t>(b),
                       dst.data() + b * kSpinorReals);
      },
      grain);
  flops::add_bytes(blocks() *
                   static_cast<std::int64_t>(
                       kSpinorReals * (sizeof(float) + sizeof(std::int16_t)) +
                       sizeof(float)));
}

double HalfSpinorField::roundtrip_norm2(SpinorField<float>& f,
                                        std::size_t grain) {
  assert(f.l5() == l5_ && f.subset() == subset_);
  float* fd = f.data();
  double n2 = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(blocks()), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        double s = 0.0;
        for (std::size_t b = lo; b < hi; ++b) {
          float* vals = fd + b * kSpinorReals;
          encode_block(static_cast<std::int64_t>(b), vals);
          decode_block(static_cast<std::int64_t>(b), vals);
          for (int k = 0; k < kSpinorReals; ++k) {
            const double v = static_cast<double>(vals[k]);
            s += v * v;
          }
        }
        acc[0] = s;
      },
      &n2, grain);
  flops::add(2 * f.reals());
  flops::add_bytes(blocks() * kRoundtripBytesPerBlock);
  return n2;
}

void HalfSpinorField::axpy_roundtrip(double a, const SpinorField<float>& x,
                                     SpinorField<float>& y,
                                     std::size_t grain) {
  assert(y.compatible(x));
  assert(y.l5() == l5_ && y.subset() == subset_);
  const float aa = static_cast<float>(a);
  const float* xd = x.data();
  float* yd = y.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(blocks()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b) {
          float* vals = yd + b * kSpinorReals;
          const float* xb = xd + b * kSpinorReals;
          for (int k = 0; k < kSpinorReals; ++k) vals[k] += aa * xb[k];
          encode_block(static_cast<std::int64_t>(b), vals);
          decode_block(static_cast<std::int64_t>(b), vals);
        }
      },
      grain);
  flops::add(2 * y.reals());
  flops::add_bytes(blocks() *
                   (kRoundtripBytesPerBlock + kXReadBytesPerBlock));
}

double HalfSpinorField::axpy_roundtrip_norm2(double a,
                                             const SpinorField<float>& x,
                                             SpinorField<float>& y,
                                             std::size_t grain) {
  assert(y.compatible(x));
  assert(y.l5() == l5_ && y.subset() == subset_);
  const float aa = static_cast<float>(a);
  const float* xd = x.data();
  float* yd = y.data();
  double n2 = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(blocks()), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        double s = 0.0;
        for (std::size_t b = lo; b < hi; ++b) {
          float* vals = yd + b * kSpinorReals;
          const float* xb = xd + b * kSpinorReals;
          for (int k = 0; k < kSpinorReals; ++k) vals[k] += aa * xb[k];
          encode_block(static_cast<std::int64_t>(b), vals);
          decode_block(static_cast<std::int64_t>(b), vals);
          for (int k = 0; k < kSpinorReals; ++k) {
            const double v = static_cast<double>(vals[k]);
            s += v * v;
          }
        }
        acc[0] = s;
      },
      &n2, grain);
  flops::add(4 * y.reals());
  flops::add_bytes(blocks() *
                   (kRoundtripBytesPerBlock + kXReadBytesPerBlock));
  return n2;
}

void HalfSpinorField::xpay_roundtrip(const SpinorField<float>& x, double b,
                                     SpinorField<float>& y,
                                     std::size_t grain) {
  assert(y.compatible(x));
  assert(y.l5() == l5_ && y.subset() == subset_);
  const float bb = static_cast<float>(b);
  const float* xd = x.data();
  float* yd = y.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(blocks()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t blk = lo; blk < hi; ++blk) {
          float* vals = yd + blk * kSpinorReals;
          const float* xb = xd + blk * kSpinorReals;
          for (int k = 0; k < kSpinorReals; ++k)
            vals[k] = xb[k] + bb * vals[k];
          encode_block(static_cast<std::int64_t>(blk), vals);
          decode_block(static_cast<std::int64_t>(blk), vals);
        }
      },
      grain);
  flops::add(2 * y.reals());
  flops::add_bytes(blocks() *
                   (kRoundtripBytesPerBlock + kXReadBytesPerBlock));
}

}  // namespace femto
