#include "solver/half.hpp"

#include "lattice/flops.hpp"

namespace femto {

void HalfSpinorField::encode(const SpinorField<float>& src,
                             std::size_t grain) {
  assert(src.l5() == l5_ && src.subset() == subset_);
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(blocks()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b)
          encode_block(static_cast<std::int64_t>(b),
                       src.data() + b * kSpinorReals);
      },
      grain);
  flops::add_bytes(blocks() *
                   static_cast<std::int64_t>(
                       kSpinorReals * (sizeof(float) + sizeof(std::int16_t)) +
                       sizeof(float)));
}

void HalfSpinorField::decode(SpinorField<float>& dst,
                             std::size_t grain) const {
  assert(dst.l5() == l5_ && dst.subset() == subset_);
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(blocks()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b)
          decode_block(static_cast<std::int64_t>(b),
                       dst.data() + b * kSpinorReals);
      },
      grain);
  flops::add_bytes(blocks() *
                   static_cast<std::int64_t>(
                       kSpinorReals * (sizeof(float) + sizeof(std::int16_t)) +
                       sizeof(float)));
}

}  // namespace femto
