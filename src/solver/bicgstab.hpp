#pragma once
// BiCGStab: a Krylov solver for the NON-Hermitian Schur operator directly.
// CGNE (what the paper's production solver uses) squares the condition
// number; BiCGStab trades that for a less robust iteration.  Both live in
// the library so the trade-off is measurable (see the solver microbench).

#include "solver/cg.hpp"

namespace femto {

/// Solve A x = b for a general (non-Hermitian) operator A.
/// x carries the initial guess (typically zero) and the result.
/// Residual updates use the fused caxpy_norm2 / cdot_norm2 kernels.
/// @p blas_grain: chunk grain for the BLAS kernels (0 = blas::kGrain).
template <typename T>
SolveResult bicgstab(const ApplyFn<T>& a, SpinorField<T>& x,
                     const SpinorField<T>& b, double tol, int max_iter,
                     std::size_t blas_grain = 0);

extern template SolveResult bicgstab<double>(const ApplyFn<double>&,
                                             SpinorField<double>&,
                                             const SpinorField<double>&,
                                             double, int, std::size_t);
extern template SolveResult bicgstab<float>(const ApplyFn<float>&,
                                            SpinorField<float>&,
                                            const SpinorField<float>&,
                                            double, int, std::size_t);

}  // namespace femto
