#include "solver/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace femto {

void symmetric_eigen(std::vector<double> a, std::size_t n,
                     std::vector<double>* evals,
                     std::vector<double>* evecs) {
  // Cyclic Jacobi: adequate for the small (<= max_basis) matrices here.
  std::vector<double>& v = *evecs;
  v.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a[p * n + q] * a[p * n + q];
    if (off < 1e-26 * static_cast<double>(n * n)) break;

    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (a[q * n + q] - a[p * n + p]) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p and q of a.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        // Accumulate the rotation into the eigenvector columns.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
  }

  // Extract and sort ascending (reordering the eigenvector columns).
  evals->resize(n);
  for (std::size_t i = 0; i < n; ++i) (*evals)[i] = a[i * n + i];
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return (*evals)[x] < (*evals)[y];
  });
  std::vector<double> sorted_vals(n);
  std::vector<double> sorted_vecs(n * n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_vals[j] = (*evals)[order[j]];
    for (std::size_t i = 0; i < n; ++i)
      sorted_vecs[i * n + j] = v[i * n + order[j]];
  }
  *evals = std::move(sorted_vals);
  *evecs = std::move(sorted_vecs);
}

LanczosResult lanczos_lowest(const ApplyFn<double>& op,
                             const SpinorField<double>& prototype,
                             const LanczosParams& params) {
  FEMTO_TRACE_SCOPE("solver", "lanczos_lowest");
  LanczosResult res;
  const auto geom = prototype.geom_ptr();
  const int l5 = prototype.l5();
  const Subset sub = prototype.subset();

  std::vector<SpinorField<double>> basis;
  std::vector<double> alpha, beta;  // tridiagonal entries

  SpinorField<double> v(geom, l5, sub);
  v.gaussian(params.seed);
  blas::scal(1.0 / std::sqrt(blas::norm2(v)), v);
  basis.push_back(v);

  SpinorField<double> w(geom, l5, sub);
  for (int j = 0; j < params.max_basis; ++j) {
    op(w, basis.back());
    ++res.iterations;
    const double a = blas::redot(basis.back(), w);
    alpha.push_back(a);
    blas::axpy(-a, basis.back(), w);
    if (basis.size() > 1)
      blas::axpy(-beta.back(), basis[basis.size() - 2], w);
    // Full reorthogonalisation (the basis is small; robustness first).
    for (const auto& u : basis) {
      const auto c = blas::cdot(u, w);
      blas::caxpy(-c, u, w);
    }
    const double b = std::sqrt(blas::norm2(w));

    // Check convergence of the lowest n_eigen Ritz pairs.  The residual
    // bound is |beta_m s_{m,k}|, compared against tol times the SPECTRAL
    // SCALE (Gershgorin bound on the tridiagonal) — a per-eigenvalue
    // relative criterion would demand absurd accuracy of the tiny modes
    // deflation targets.  The O(m^3) dense solve runs every 10 steps.
    const std::size_t m = alpha.size();
    const bool do_check = static_cast<int>(m) >= params.n_eigen + 2 &&
                          (m % 10 == 0 || b < 1e-14 ||
                           j + 1 == params.max_basis);
    if (do_check) {
      std::vector<double> t(m * m, 0.0);
      for (std::size_t i = 0; i < m; ++i) {
        t[i * m + i] = alpha[i];
        if (i + 1 < m) {
          t[i * m + i + 1] = beta[i];
          t[(i + 1) * m + i] = beta[i];
        }
      }
      std::vector<double> evals, evecs;
      symmetric_eigen(t, m, &evals, &evecs);
      double scale = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        double row = std::abs(alpha[i]);
        if (i < beta.size()) row += std::abs(beta[i]);
        if (i > 0) row += std::abs(beta[i - 1]);
        scale = std::max(scale, row);
      }
      bool all_ok = true;
      for (int k = 0; k < params.n_eigen; ++k) {
        const double resid =
            b * std::abs(evecs[(m - 1) * m + static_cast<std::size_t>(k)]);
        if (resid > params.tol * scale) all_ok = false;
      }
      if (all_ok || b < 1e-14 || j + 1 == params.max_basis) {
        // Assemble the Ritz vectors.
        for (int k = 0; k < params.n_eigen; ++k) {
          res.values.push_back(evals[static_cast<std::size_t>(k)]);
          SpinorField<double> rv(geom, l5, sub);
          rv.zero();
          for (std::size_t i = 0; i < m; ++i)
            blas::axpy(evecs[i * m + static_cast<std::size_t>(k)],
                       basis[i], rv);
          blas::scal(1.0 / std::sqrt(blas::norm2(rv)), rv);
          res.vectors.push_back(std::move(rv));
        }
        res.converged = all_ok;
        FEMTO_LOG_INFO("solver",
                       "lanczos: " << res.values.size() << " Ritz pairs in "
                                   << res.iterations
                                   << " matvecs, lowest = "
                                   << (res.values.empty() ? 0.0
                                                          : res.values[0])
                                   << (all_ok ? "" : " (NOT converged)"));
        return res;
      }
    }
    if (b < 1e-14) break;  // invariant subspace before enough pairs
    beta.push_back(b);
    blas::scal(1.0 / b, w);
    basis.push_back(w);
  }
  throw std::runtime_error("lanczos_lowest: basis exhausted");
}

SolveResult deflated_cg(const ApplyFn<double>& op,
                        const std::vector<double>& evals,
                        const std::vector<SpinorField<double>>& evecs,
                        SpinorField<double>& x, const SpinorField<double>& b,
                        double tol, int max_iter) {
  // Exact solution component in the eigenspace: x += sum (v^dag b / l) v.
  SpinorField<double> b_deflated = b;
  for (std::size_t k = 0; k < evecs.size(); ++k) {
    const auto c = blas::cdot(evecs[k], b);
    blas::caxpy(Cplx<double>{c.re / evals[k], c.im / evals[k]}, evecs[k],
                x);
    blas::caxpy(-c, evecs[k], b_deflated);
  }
  // CG on the deflated right-hand side, warm-started from the eigenspace
  // part (its residual is exactly b_deflated).
  return cg<double>(op, x, b, tol, max_iter);
}

}  // namespace femto
