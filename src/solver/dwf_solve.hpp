#pragma once
// End-to-end Mobius domain-wall solve: the "propagator" computation that
// consumes ~97% of the paper's application time.
//
// Pipeline (per right-hand side):
//   1. bhat = red-black preconditioned source (odd checkerboard)
//   2. CGNE: solve Mhat^dag Mhat y = Mhat^dag bhat with mixed-precision CG
//   3. reconstruct the even checkerboard, giving the full 5D solution
//
// The solver pairs a double-precision operator with a single-precision
// "sloppy" operator built from the converted gauge field (QUDA builds the
// same pair on the GPU).

#include <memory>
#include <span>
#include <vector>

#include "dirac/mobius.hpp"
#include "solver/block_cg.hpp"
#include "solver/cg.hpp"

namespace femto {

/// Owns the operator pair and scratch needed to solve many right-hand
/// sides against one gauge configuration.
class DwfSolver {
 public:
  DwfSolver(std::shared_ptr<const GaugeField<double>> u, MobiusParams params,
            SolverParams solver_params = {});

  /// Autotune the dslash launch parameters for this volume (both
  /// precisions) and use them for every subsequent solve — the way
  /// Chroma+QUDA tune on first encounter.  Cached process-wide.
  void autotune();

  /// Autotune for BATCHED solves: sweeps the multi-RHS dslash's
  /// nrhs x grain x variant grid (batch bound bmax), installs the winning
  /// launch parameters for both precisions, and returns the sweet-spot
  /// batch size the sweep found (from the single-precision winner, which
  /// dominates mixed-precision solve time).  Callers — the SolveService —
  /// can feed that back into their batching bound.
  std::size_t autotune_multi(std::size_t bmax);

  const MobiusOperator<double>& op() const { return op_d_; }
  const MobiusParams& params() const { return mobius_; }
  SolverParams& solver_params() { return sparams_; }

  /// Solve D x = b on full 5D fields.  Returns solver statistics.
  SolveResult solve(SpinorField<double>& x, const SpinorField<double>& b);

  /// Solve in pure double precision (reference / correctness baseline).
  SolveResult solve_double(SpinorField<double>& x,
                           const SpinorField<double>& b);

  /// Solve D x_r = b_r for a block of right-hand sides against the shared
  /// gauge field: source prep and CGNE run batched (dslash_multi streams
  /// the links once per block), each RHS converging independently with
  /// per-RHS results bitwise matching solve() (see block_cg.hpp).
  std::vector<SolveResult> solve_multi(
      std::span<SpinorField<double>* const> x,
      std::span<const SpinorField<double>* const> b);

  /// Pure-double block solve (reference / correctness baseline).
  std::vector<SolveResult> solve_multi_double(
      std::span<SpinorField<double>* const> x,
      std::span<const SpinorField<double>* const> b);

 private:
  MobiusParams mobius_;
  SolverParams sparams_;
  std::shared_ptr<const GaugeField<double>> u_d_;
  std::shared_ptr<const GaugeField<float>> u_f_;
  MobiusOperator<double> op_d_;
  MobiusOperator<float> op_f_;
};

}  // namespace femto
