#include "solver/dwf_solve.hpp"

#include <cmath>

#include "autotune/blas_tunable.hpp"
#include "autotune/dslash_tunable.hpp"
#include "core/check.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace femto {

void DwfSolver::autotune() {
  FEMTO_TRACE_SCOPE("autotune", "dwf_solver_autotune");
  // Reliable updates are pinned to full-18 double links (accuracy
  // contract, DESIGN.md §16): the double operator only sweeps exact
  // storage, while the sloppy float operator sweeps every tier and may
  // pick an approximate one.
  op_d_.tuning() = tune::tuned_dslash_grain<double>(
      u_d_, mobius_.l5, 0, tune::FormatSet::kFullOnly);
  op_f_.tuning() = tune::tuned_dslash_grain<float>(u_f_, mobius_.l5, 0,
                                                   tune::FormatSet::kAll);
  sparams_.gauge_format = op_f_.tuning().format;
  // Sloppy iterations dominate the BLAS phase, so the single-precision
  // winner sets the solver grain.
  sparams_.blas_grain = tune::tuned_blas_grain<float>(u_f_->geom_ptr(),
                                                     mobius_.l5, Subset::Odd);
  FEMTO_LOG_DEBUG("autotune",
                  "dwf_solver: dslash d=" << to_string(op_d_.tuning().variant)
                                          << "/" << op_d_.tuning().grain
                                          << " f="
                                          << to_string(op_f_.tuning().variant)
                                          << "/" << op_f_.tuning().grain
                                          << "/"
                                          << gauge_format_name(
                                                 op_f_.tuning().format)
                                          << ", blas grain "
                                          << sparams_.blas_grain);
}

std::size_t DwfSolver::autotune_multi(std::size_t bmax) {
  FEMTO_TRACE_SCOPE("autotune", "dwf_solver_autotune_multi");
  const tune::MultiRhsTuning td = tune::tuned_multi_rhs<double>(
      u_d_, mobius_.l5, bmax, 0, tune::FormatSet::kFullOnly);
  const tune::MultiRhsTuning tf = tune::tuned_multi_rhs<float>(
      u_f_, mobius_.l5, bmax, 0, tune::FormatSet::kAll);
  op_d_.tuning() = td.dslash;
  op_f_.tuning() = tf.dslash;
  sparams_.gauge_format = tf.dslash.format;
  sparams_.blas_grain = tune::tuned_blas_grain<float>(u_f_->geom_ptr(),
                                                     mobius_.l5, Subset::Odd);
  FEMTO_LOG_DEBUG("autotune",
                  "dwf_solver multi: d=" << to_string(td.dslash.variant)
                                         << "/" << td.dslash.grain << "/B"
                                         << td.nrhs << " f="
                                         << to_string(tf.dslash.variant)
                                         << "/" << tf.dslash.grain << "/B"
                                         << tf.nrhs << "/"
                                         << gauge_format_name(tf.dslash.format)
                                         << ", blas grain "
                                         << sparams_.blas_grain);
  return tf.nrhs;
}

DwfSolver::DwfSolver(std::shared_ptr<const GaugeField<double>> u,
                     MobiusParams params, SolverParams solver_params)
    : mobius_(params),
      sparams_(solver_params),
      u_d_(std::move(u)),
      u_f_(std::make_shared<GaugeField<float>>(u_d_->convert<float>())),
      op_d_(u_d_, mobius_),
      op_f_(u_f_, mobius_) {
  // Honour a caller-selected storage tier for the sloppy operator even
  // when autotune() is never called (the double operator stays full18).
  op_f_.tuning().format = sparams_.gauge_format;
}

SolveResult DwfSolver::solve(SpinorField<double>& x,
                             const SpinorField<double>& b) {
  FEMTO_TRACE_SCOPE("solver", "dwf_solve");
  assert(x.subset() == Subset::Full && b.subset() == Subset::Full);
  // solver_params() is mutable: pick up a caller-set gauge_format.
  op_f_.tuning().format = sparams_.gauge_format;
  const auto geom = b.geom_ptr();
  const int l5 = b.l5();

  SpinorField<double> bhat(geom, l5, Subset::Odd);
  op_d_.prepare_source(bhat, b);

  // CGNE right-hand side: Mhat^dag bhat.
  SpinorField<double> rhs(geom, l5, Subset::Odd);
  op_d_.apply_schur(rhs, bhat, /*dagger=*/true);

  ApplyFn<double> a_d = [this](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    op_d_.apply_normal(out, in);
  };
  ApplyFn<float> a_f = [this](SpinorField<float>& out,
                              const SpinorField<float>& in) {
    op_f_.apply_normal(out, in);
  };

  SpinorField<double> y(geom, l5, Subset::Odd);
  SolveResult res = mixed_cg(a_d, a_f, y, rhs, sparams_);
  FEMTO_CHECK(std::isfinite(res.final_rel_residual),
              "DwfSolver::solve: mixed_cg returned a non-finite residual");

  op_d_.reconstruct(x, y, b);
  return res;
}

std::vector<SolveResult> DwfSolver::solve_multi(
    std::span<SpinorField<double>* const> x,
    std::span<const SpinorField<double>* const> b) {
  FEMTO_TRACE_SCOPE("solver", "dwf_solve_multi");
  op_f_.tuning().format = sparams_.gauge_format;
  const std::size_t nb = x.size();
  FEMTO_ASSERT(b.size() == nb);
  if (nb == 0) return {};
  const auto geom = b[0]->geom_ptr();
  const int l5 = b[0]->l5();
  for (std::size_t r = 0; r < nb; ++r) {
    assert(x[r]->subset() == Subset::Full && b[r]->subset() == Subset::Full);
  }

  // Source prep stays per RHS (one-time cost); the CGNE right-hand sides
  // Mhat^dag bhat_r batch through the multi Schur operator.
  std::vector<SpinorField<double>> bhat, rhs;
  bhat.reserve(nb);
  rhs.reserve(nb);
  std::vector<SpinorField<double>*> rhsp;
  std::vector<const SpinorField<double>*> cbhatp;
  for (std::size_t r = 0; r < nb; ++r) {
    bhat.emplace_back(geom, l5, Subset::Odd);
    rhs.emplace_back(geom, l5, Subset::Odd);
    op_d_.prepare_source(bhat.back(), *b[r]);
  }
  for (std::size_t r = 0; r < nb; ++r) {
    rhsp.push_back(&rhs[r]);
    cbhatp.push_back(&bhat[r]);
  }
  op_d_.apply_schur_multi(rhsp, cbhatp, /*dagger=*/true);

  MultiApplyFn<double> a_d = [this](
                                 std::span<SpinorField<double>* const> out,
                                 std::span<const SpinorField<double>* const>
                                     in) { op_d_.apply_normal_multi(out, in); };
  MultiApplyFn<float> a_f = [this](
                                std::span<SpinorField<float>* const> out,
                                std::span<const SpinorField<float>* const>
                                    in) { op_f_.apply_normal_multi(out, in); };

  std::vector<SpinorField<double>> y;
  y.reserve(nb);
  std::vector<SpinorField<double>*> yp;
  std::vector<const SpinorField<double>*> crhsp;
  for (std::size_t r = 0; r < nb; ++r) {
    y.emplace_back(geom, l5, Subset::Odd);
    crhsp.push_back(&rhs[r]);
  }
  for (std::size_t r = 0; r < nb; ++r) yp.push_back(&y[r]);
  std::vector<SolveResult> res = block_mixed_cg(a_d, a_f, yp, crhsp, sparams_);
  for (std::size_t r = 0; r < nb; ++r) {
    FEMTO_CHECK(std::isfinite(res[r].final_rel_residual),
                "DwfSolver::solve_multi: block_mixed_cg returned a "
                "non-finite residual");
    op_d_.reconstruct(*x[r], y[r], *b[r]);
  }
  return res;
}

std::vector<SolveResult> DwfSolver::solve_multi_double(
    std::span<SpinorField<double>* const> x,
    std::span<const SpinorField<double>* const> b) {
  FEMTO_TRACE_SCOPE("solver", "dwf_solve_multi_double");
  const std::size_t nb = x.size();
  FEMTO_ASSERT(b.size() == nb);
  if (nb == 0) return {};
  const auto geom = b[0]->geom_ptr();
  const int l5 = b[0]->l5();

  std::vector<SpinorField<double>> bhat, rhs, y;
  bhat.reserve(nb);
  rhs.reserve(nb);
  y.reserve(nb);
  std::vector<SpinorField<double>*> rhsp, yp;
  std::vector<const SpinorField<double>*> cbhatp, crhsp;
  for (std::size_t r = 0; r < nb; ++r) {
    assert(x[r]->subset() == Subset::Full && b[r]->subset() == Subset::Full);
    bhat.emplace_back(geom, l5, Subset::Odd);
    rhs.emplace_back(geom, l5, Subset::Odd);
    y.emplace_back(geom, l5, Subset::Odd);
    op_d_.prepare_source(bhat.back(), *b[r]);
  }
  for (std::size_t r = 0; r < nb; ++r) {
    rhsp.push_back(&rhs[r]);
    cbhatp.push_back(&bhat[r]);
    crhsp.push_back(&rhs[r]);
    yp.push_back(&y[r]);
  }
  op_d_.apply_schur_multi(rhsp, cbhatp, /*dagger=*/true);

  MultiApplyFn<double> a_d = [this](
                                 std::span<SpinorField<double>* const> out,
                                 std::span<const SpinorField<double>* const>
                                     in) { op_d_.apply_normal_multi(out, in); };
  std::vector<SolveResult> res = block_cg<double>(
      a_d, yp, crhsp, sparams_.tol, sparams_.max_iter, sparams_.blas_grain);
  for (std::size_t r = 0; r < nb; ++r) {
    FEMTO_CHECK(std::isfinite(res[r].final_rel_residual),
                "DwfSolver::solve_multi_double: block_cg returned a "
                "non-finite residual");
    op_d_.reconstruct(*x[r], y[r], *b[r]);
  }
  return res;
}

SolveResult DwfSolver::solve_double(SpinorField<double>& x,
                                    const SpinorField<double>& b) {
  FEMTO_TRACE_SCOPE("solver", "dwf_solve_double");
  assert(x.subset() == Subset::Full && b.subset() == Subset::Full);
  const auto geom = b.geom_ptr();
  const int l5 = b.l5();

  SpinorField<double> bhat(geom, l5, Subset::Odd);
  op_d_.prepare_source(bhat, b);
  SpinorField<double> rhs(geom, l5, Subset::Odd);
  op_d_.apply_schur(rhs, bhat, /*dagger=*/true);

  ApplyFn<double> a_d = [this](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    op_d_.apply_normal(out, in);
  };
  SpinorField<double> y(geom, l5, Subset::Odd);
  SolveResult res = cg<double>(a_d, y, rhs, sparams_.tol, sparams_.max_iter,
                               sparams_.blas_grain);
  FEMTO_CHECK(std::isfinite(res.final_rel_residual),
              "DwfSolver::solve_double: cg returned a non-finite residual");
  op_d_.reconstruct(x, y, b);
  return res;
}

}  // namespace femto
