#include "solver/dwf_solve.hpp"

#include <cmath>

#include "autotune/blas_tunable.hpp"
#include "autotune/dslash_tunable.hpp"
#include "core/check.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace femto {

void DwfSolver::autotune() {
  FEMTO_TRACE_SCOPE("autotune", "dwf_solver_autotune");
  op_d_.tuning() = tune::tuned_dslash_grain<double>(u_d_, mobius_.l5, 0);
  op_f_.tuning() = tune::tuned_dslash_grain<float>(u_f_, mobius_.l5, 0);
  // Sloppy iterations dominate the BLAS phase, so the single-precision
  // winner sets the solver grain.
  sparams_.blas_grain = tune::tuned_blas_grain<float>(u_f_->geom_ptr(),
                                                     mobius_.l5, Subset::Odd);
  FEMTO_LOG_DEBUG("autotune",
                  "dwf_solver: dslash d=" << to_string(op_d_.tuning().variant)
                                          << "/" << op_d_.tuning().grain
                                          << " f="
                                          << to_string(op_f_.tuning().variant)
                                          << "/" << op_f_.tuning().grain
                                          << ", blas grain "
                                          << sparams_.blas_grain);
}

DwfSolver::DwfSolver(std::shared_ptr<const GaugeField<double>> u,
                     MobiusParams params, SolverParams solver_params)
    : mobius_(params),
      sparams_(solver_params),
      u_d_(std::move(u)),
      u_f_(std::make_shared<GaugeField<float>>(u_d_->convert<float>())),
      op_d_(u_d_, mobius_),
      op_f_(u_f_, mobius_) {}

SolveResult DwfSolver::solve(SpinorField<double>& x,
                             const SpinorField<double>& b) {
  FEMTO_TRACE_SCOPE("solver", "dwf_solve");
  assert(x.subset() == Subset::Full && b.subset() == Subset::Full);
  const auto geom = b.geom_ptr();
  const int l5 = b.l5();

  SpinorField<double> bhat(geom, l5, Subset::Odd);
  op_d_.prepare_source(bhat, b);

  // CGNE right-hand side: Mhat^dag bhat.
  SpinorField<double> rhs(geom, l5, Subset::Odd);
  op_d_.apply_schur(rhs, bhat, /*dagger=*/true);

  ApplyFn<double> a_d = [this](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    op_d_.apply_normal(out, in);
  };
  ApplyFn<float> a_f = [this](SpinorField<float>& out,
                              const SpinorField<float>& in) {
    op_f_.apply_normal(out, in);
  };

  SpinorField<double> y(geom, l5, Subset::Odd);
  SolveResult res = mixed_cg(a_d, a_f, y, rhs, sparams_);
  FEMTO_CHECK(std::isfinite(res.final_rel_residual),
              "DwfSolver::solve: mixed_cg returned a non-finite residual");

  op_d_.reconstruct(x, y, b);
  return res;
}

SolveResult DwfSolver::solve_double(SpinorField<double>& x,
                                    const SpinorField<double>& b) {
  FEMTO_TRACE_SCOPE("solver", "dwf_solve_double");
  assert(x.subset() == Subset::Full && b.subset() == Subset::Full);
  const auto geom = b.geom_ptr();
  const int l5 = b.l5();

  SpinorField<double> bhat(geom, l5, Subset::Odd);
  op_d_.prepare_source(bhat, b);
  SpinorField<double> rhs(geom, l5, Subset::Odd);
  op_d_.apply_schur(rhs, bhat, /*dagger=*/true);

  ApplyFn<double> a_d = [this](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    op_d_.apply_normal(out, in);
  };
  SpinorField<double> y(geom, l5, Subset::Odd);
  SolveResult res = cg<double>(a_d, y, rhs, sparams_.tol, sparams_.max_iter,
                               sparams_.blas_grain);
  FEMTO_CHECK(std::isfinite(res.final_rel_residual),
              "DwfSolver::solve_double: cg returned a non-finite residual");
  op_d_.reconstruct(x, y, b);
  return res;
}

}  // namespace femto
