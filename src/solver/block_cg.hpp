#pragma once
// Block Krylov solvers over a batch of right-hand sides (DESIGN.md §12).
//
// These are NOT "true" block-CG methods (no shared Krylov space, no
// cross-RHS orthogonalisation): each RHS runs its OWN conjugate-gradient
// recurrence — its own alpha/beta, its own stopping test, its own reliable
// updates — and the batching is purely an execution-layer fusion: the B
// matvecs share one dslash_multi pass (links loaded once per block) and
// the B vector updates share one BLAS launch (blas::*_multi).  The payoff
// is the per-RHS convergence contract:
//
//   Every RHS produces bitwise the SAME iterates, iteration count, and
//   residual history it would produce in a solo cg / mixed_cg call at the
//   same grain — independent of which other RHSs share the batch.
//
// That contract is what lets the SolveService batch greedily: adding or
// removing a request from a batch can never change another request's
// answer, so results stay deterministic under any queue timing.  As RHSs
// converge they leave the active block (per-RHS stopping, shrinking
// batch), so a straggler never pays for its finished neighbours beyond
// the (smaller) batch it still shares.
//
// Reported per-RHS flop/byte/seconds are the RHS's share of the block
// totals (total / B): the counters are process-global, and a block's work
// is genuinely joint — attributing the full total to every RHS would
// count it B times.

#include <functional>
#include <span>
#include <vector>

#include "lattice/field.hpp"
#include "solver/cg.hpp"

namespace femto {

/// Batched y_r = A x_r application in precision T, r = 0..B-1.  Must be
/// per-RHS bitwise identical to the corresponding ApplyFn for the
/// convergence contract to hold (MobiusOperator::apply_normal_multi is).
template <typename T>
using MultiApplyFn = std::function<void(
    std::span<SpinorField<T>* const>, std::span<const SpinorField<T>* const>)>;

/// Plain CG over a block: solves A x_r = b_r for every r with per-RHS
/// stopping.  x_r is the initial guess and the result.  Returns one
/// SolveResult per RHS, bitwise matching cg() per RHS at the same grain.
template <typename T>
std::vector<SolveResult> block_cg(const MultiApplyFn<T>& a,
                                  std::span<SpinorField<T>* const> x,
                                  std::span<const SpinorField<T>* const> b,
                                  double tol, int max_iter,
                                  std::size_t blas_grain = 0);

/// Mixed-precision CG with reliable updates over a block: per-RHS bitwise
/// matching mixed_cg().  Each RHS triggers its own reliable updates (a
/// batch-of-one double matvec); the sloppy inner iterations batch across
/// every RHS currently mid-inner-solve.
std::vector<SolveResult> block_mixed_cg(
    const MultiApplyFn<double>& a_double, const MultiApplyFn<float>& a_single,
    std::span<SpinorField<double>* const> x,
    std::span<const SpinorField<double>* const> b, const SolverParams& params);

extern template std::vector<SolveResult> block_cg<double>(
    const MultiApplyFn<double>&, std::span<SpinorField<double>* const>,
    std::span<const SpinorField<double>* const>, double, int, std::size_t);
extern template std::vector<SolveResult> block_cg<float>(
    const MultiApplyFn<float>&, std::span<SpinorField<float>* const>,
    std::span<const SpinorField<float>* const>, double, int, std::size_t);

}  // namespace femto
