#pragma once
// Femtoscope hooks shared by the Krylov solvers: fold a finished
// SolveResult into the global metrics registry (counters, histograms, and
// a structured per-solve record with a downsampled residual history) and
// emit the leveled log line that replaced the old ostream prints.

#include <cstddef>
#include <cstdint>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "solver/cg.hpp"

namespace femto::solver_obs {

inline char precision_char(Precision p) {
  switch (p) {
    case Precision::Double: return 'd';
    case Precision::Single: return 's';
    default: return 'h';
  }
}

// Downsample an N-point residual history to at most kMaxHistory points for
// the report (stride-decimated; reliable-update samples and the final
// point always survive -- they are the diagnostically interesting ones).
inline constexpr std::size_t kMaxHistory = 128;

inline std::vector<obs::ResidualPoint> downsample_history(
    const std::vector<ResidualSample>& history) {
  std::vector<obs::ResidualPoint> out;
  if (history.empty()) return out;
  const std::size_t stride =
      history.size() <= kMaxHistory ? 1
                                    : (history.size() + kMaxHistory - 1) /
                                          kMaxHistory;
  out.reserve(history.size() / stride + 2);
  for (std::size_t i = 0; i < history.size(); ++i) {
    const ResidualSample& s = history[i];
    const bool keep = s.reliable_update || i % stride == 0 ||
                      i + 1 == history.size();
    if (!keep) continue;
    obs::ResidualPoint p;
    p.iteration = s.iteration;
    p.rel_residual = s.rel_residual;
    p.precision = precision_char(s.precision);
    p.reliable_update = s.reliable_update;
    out.push_back(p);
  }
  return out;
}

// Called once per completed solve, AFTER SolveResult is fully populated.
inline void record(const char* solver, const SolveResult& res) {
  obs::counter("solver.solves").add();
  if (!res.converged) obs::counter("solver.failures").add();
  obs::counter("solver.flops").add(res.flop_count);
  obs::counter("solver.bytes").add(res.byte_count);
  obs::counter("solver.reliable_updates").add(res.reliable_updates);
  obs::gauge("solver.seconds").add(res.seconds);
  obs::histogram("solver.iterations").observe(res.iterations);

  obs::SolveRecord rec;
  rec.solver = solver;
  rec.converged = res.converged;
  rec.iterations = res.iterations;
  rec.reliable_updates = res.reliable_updates;
  rec.final_rel_residual = res.final_rel_residual;
  rec.seconds = res.seconds;
  rec.flops = res.flop_count;
  rec.bytes = res.byte_count;
  rec.history = downsample_history(res.history);
  obs::record_solve(std::move(rec));

  if (res.converged) {
    FEMTO_LOG_INFO("solver", solver << ": " << res.summary());
  } else {
    FEMTO_LOG_WARN("solver", solver << ": " << res.summary());
  }
}

}  // namespace femto::solver_obs
