#include "solver/block_cg.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "lattice/flops.hpp"
#include "obs/trace.hpp"
#include "obs/wallclock.hpp"
#include "solver/half.hpp"
#include "solver/solver_obs.hpp"

namespace femto {

namespace {

std::size_t resolve_grain(std::size_t blas_grain) {
  return blas_grain == 0 ? blas::kGrain : blas_grain;
}

std::size_t half_grain(std::size_t blas_grain) {
  if (blas_grain == 0) return HalfSpinorField::kHalfGrain;
  return std::max<std::size_t>(1, blas_grain / kSpinorReals);
}

/// Pointer subsets for shrinking-block kernel calls.
template <typename T>
std::vector<SpinorField<T>*> select(std::vector<SpinorField<T>>& fs,
                                    const std::vector<std::size_t>& idx) {
  std::vector<SpinorField<T>*> out;
  out.reserve(idx.size());
  for (std::size_t i : idx) out.push_back(&fs[i]);
  return out;
}

template <typename T>
std::vector<const SpinorField<T>*> cselect(std::vector<SpinorField<T>>& fs,
                                           const std::vector<std::size_t>& idx) {
  std::vector<const SpinorField<T>*> out;
  out.reserve(idx.size());
  for (std::size_t i : idx) out.push_back(&fs[i]);
  return out;
}

/// Split the joint flop/byte/wall totals equally across the block and
/// record each RHS (see header: block work is joint, counters global).
void finalize_block(std::vector<SolveResult>& results, const char* name,
                    double seconds, std::int64_t flops_total,
                    std::int64_t bytes_total) {
  const auto nb = static_cast<std::int64_t>(results.size());
  for (auto& res : results) {
    res.seconds = seconds;
    res.flop_count = flops_total / nb;
    res.byte_count = bytes_total / nb;
    solver_obs::record(name, res);
  }
}

}  // namespace

template <typename T>
std::vector<SolveResult> block_cg(const MultiApplyFn<T>& a,
                                  std::span<SpinorField<T>* const> x,
                                  std::span<const SpinorField<T>* const> b,
                                  double tol, int max_iter,
                                  std::size_t blas_grain) {
  FEMTO_TRACE_SCOPE("solver", "block_cg");
  const std::size_t nb = x.size();
  FEMTO_ASSERT(b.size() == nb);
  std::vector<SolveResult> results(nb);
  if (nb == 0) return results;
  const obs::Stopwatch sw;
  const std::int64_t flops0 = flops::get();
  const std::int64_t bytes0 = flops::bytes();
  const std::size_t g = resolve_grain(blas_grain);

  // Per-RHS state: residual, search direction, matvec result.
  std::vector<SpinorField<T>> r, p, ap;
  r.reserve(nb);
  p.reserve(nb);
  ap.reserve(nb);
  for (std::size_t i = 0; i < nb; ++i) {
    r.push_back(*b[i]);
    ap.emplace_back(b[i]->geom_ptr(), b[i]->l5(), b[i]->subset());
  }

  std::vector<double> b2(nb), rsq(nb), target(nb), xn(nb);
  {
    std::vector<const SpinorField<T>*> bp(b.begin(), b.end());
    blas::norm2_multi<T>(bp, b2, g);
  }
  {
    std::vector<const SpinorField<T>*> xp(x.begin(), x.end());
    blas::norm2_multi<T>(xp, xn, g);
  }
  // Warm starts: r = b - A x for the RHSs with a nonzero guess (the same
  // skip-if-zero convention as cg(), batched over the warm subset).
  std::vector<std::size_t> warm;
  for (std::size_t i = 0; i < nb; ++i) {
    rsq[i] = b2[i];
    target[i] = tol * tol * b2[i];
    if (xn[i] > 0.0) warm.push_back(i);
  }
  if (!warm.empty()) {
    std::vector<SpinorField<T>*> wx;
    std::vector<const SpinorField<T>*> cwx;
    for (std::size_t i : warm) {
      wx.push_back(x[i]);
      cwx.push_back(x[i]);
    }
    auto wap = select(ap, warm);
    a(wap, cwx);
    std::vector<double> mone(warm.size(), -1.0), wrsq(warm.size());
    auto wr = select(r, warm);
    blas::axpy_norm2_multi<T>(mone, cselect(ap, warm), wr, wrsq, g);
    for (std::size_t k = 0; k < warm.size(); ++k) rsq[warm[k]] = wrsq[k];
  }
  for (std::size_t i = 0; i < nb; ++i) p.push_back(r[i]);

  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < nb; ++i)
    if (results[i].iterations < max_iter && rsq[i] > target[i])
      active.push_back(i);

  while (!active.empty()) {
    // Batched matvec over the surviving block, then the per-RHS CG
    // recurrences through one multi-kernel launch per fused operation.
    const auto na = active.size();
    auto pap_in = cselect(p, active);
    auto ap_out = select(ap, active);
    a(ap_out, pap_in);
    std::vector<double> pap(na), alpha(na), malpha(na), rsq_new(na), beta(na);
    blas::redot_multi<T>(pap_in, cselect(ap, active), pap, g);
    for (std::size_t k = 0; k < na; ++k) {
      ++results[active[k]].iterations;
      alpha[k] = rsq[active[k]] / pap[k];
      malpha[k] = -alpha[k];
    }
    auto ra = select(r, active);
    blas::axpy_norm2_multi<T>(malpha, cselect(ap, active), ra, rsq_new, g);
    for (std::size_t k = 0; k < na; ++k) {
      FEMTO_CHECK(std::isfinite(rsq_new[k]),
                  "block_cg: residual norm went NaN/Inf (diverging operator "
                  "or corrupt field data)");
      beta[k] = rsq_new[k] / rsq[active[k]];
      rsq[active[k]] = rsq_new[k];
    }
    std::vector<SpinorField<T>*> xa;
    for (std::size_t i : active) xa.push_back(x[i]);
    auto pa = select(p, active);
    blas::axpy_zpbx_multi<T>(alpha, pa, xa, cselect(r, active), beta, g);
    std::vector<std::size_t> still;
    for (std::size_t k = 0; k < na; ++k) {
      const std::size_t i = active[k];
      results[i].history.push_back(
          {results[i].iterations,
           b2[i] > 0.0 ? std::sqrt(rsq[i] / b2[i]) : 0.0, precision_of<T>(),
           false});
      if (results[i].iterations < max_iter && rsq[i] > target[i])
        still.push_back(i);
    }
    active.swap(still);
  }

  for (std::size_t i = 0; i < nb; ++i) {
    results[i].converged = rsq[i] <= target[i];
    results[i].final_rel_residual = std::sqrt(rsq[i] / b2[i]);
  }
  finalize_block(results, "block_cg",
                 sw.seconds(),
                 flops::get() - flops0, flops::bytes() - bytes0);
  return results;
}

namespace {

/// Per-RHS state of the block mixed-precision solve: the outer double
/// residual, the sloppy vectors, the 16-bit store, and the scalar
/// recurrence — everything a solo mixed_cg would keep on its stack.
struct MixedRhs {
  SpinorField<double> r_d, tmp_d;
  SpinorField<float> r_s, p_s, ap_s, xs;
  HalfSpinorField hstore;
  double b2 = 0.0, r2_d = 0.0, target = 0.0;
  double rsq = 0.0, update_target = 0.0;
  int inner = 0;
  bool breakdown = false;  ///< sloppy pAp <= 0: force a reliable update
  bool done = false;

  explicit MixedRhs(const SpinorField<double>& b)
      : r_d(b),
        tmp_d(b.geom_ptr(), b.l5(), b.subset()),
        r_s(b.geom_ptr(), b.l5(), b.subset()),
        p_s(b.geom_ptr(), b.l5(), b.subset()),
        ap_s(b.geom_ptr(), b.l5(), b.subset()),
        xs(b.geom_ptr(), b.l5(), b.subset()),
        hstore(b.geom_ptr(), b.l5(), b.subset()) {}
};

}  // namespace

std::vector<SolveResult> block_mixed_cg(
    const MultiApplyFn<double>& a_double, const MultiApplyFn<float>& a_single,
    std::span<SpinorField<double>* const> x,
    std::span<const SpinorField<double>* const> b,
    const SolverParams& params) {
  FEMTO_TRACE_SCOPE("solver", "block_mixed_cg");
  const std::size_t nb = x.size();
  FEMTO_ASSERT(b.size() == nb);
  std::vector<SolveResult> results(nb);
  if (nb == 0) return results;
  const obs::Stopwatch sw;
  const std::int64_t flops0 = flops::get();
  const std::int64_t bytes0 = flops::bytes();
  const std::size_t g = resolve_grain(params.blas_grain);
  const std::size_t hg = half_grain(params.blas_grain);
  const bool half = params.sloppy == Precision::Half;
  const Precision inner_prec = half ? Precision::Half : Precision::Single;

  std::vector<MixedRhs> st;
  st.reserve(nb);
  for (std::size_t i = 0; i < nb; ++i) st.emplace_back(*b[i]);

  {
    std::vector<double> b2(nb), xn(nb);
    std::vector<const SpinorField<double>*> bp(b.begin(), b.end());
    blas::norm2_multi<double>(bp, b2, g);
    std::vector<const SpinorField<double>*> xp(x.begin(), x.end());
    blas::norm2_multi<double>(xp, xn, g);
    std::vector<std::size_t> warm;
    for (std::size_t i = 0; i < nb; ++i) {
      st[i].b2 = b2[i];
      st[i].r2_d = b2[i];
      st[i].target = params.tol * params.tol * b2[i];
      if (xn[i] > 0.0) warm.push_back(i);
    }
    if (!warm.empty()) {
      std::vector<SpinorField<double>*> wtmp;
      std::vector<const SpinorField<double>*> cwx, cwtmp;
      std::vector<SpinorField<double>*> wr;
      for (std::size_t i : warm) {
        wtmp.push_back(&st[i].tmp_d);
        cwtmp.push_back(&st[i].tmp_d);
        cwx.push_back(x[i]);
        wr.push_back(&st[i].r_d);
      }
      a_double(wtmp, cwx);
      std::vector<double> mone(warm.size(), -1.0), wr2(warm.size());
      blas::axpy_norm2_multi<double>(mone, cwtmp, wr, wr2, g);
      for (std::size_t k = 0; k < warm.size(); ++k)
        st[warm[k]].r2_d = wr2[k];
    }
  }

  // (Re)start one RHS's inner solve from its true residual — identical to
  // the restart block at the top of mixed_cg's outer loop.
  auto start_inner = [&](MixedRhs& s) {
    blas::copy(s.r_s, s.r_d, g);
    s.rsq = half ? s.hstore.roundtrip_norm2(s.r_s, hg)
                 : blas::norm2(s.r_s, g);
    blas::copy(s.p_s, s.r_s, g);
    s.xs.zero();
    s.update_target = s.rsq * params.delta * params.delta;
    s.inner = 0;
  };

  // Reliable update for one RHS: fold the sloppy solution into x,
  // recompute the true residual in double (a batch-of-one double matvec).
  auto reliable_update = [&](std::size_t i) {
    MixedRhs& s = st[i];
    SolveResult& res = results[i];
    blas::copy(s.tmp_d, s.xs, g);  // promote
    blas::axpy<double>(1.0, s.tmp_d, *x[i], g);
    SpinorField<double>* outp[1] = {&s.tmp_d};
    const SpinorField<double>* inp[1] = {x[i]};
    a_double(outp, inp);
    blas::copy(s.r_d, *b[i], g);
    s.r2_d = blas::axpy_norm2<double>(-1.0, s.tmp_d, s.r_d, g);
    FEMTO_CHECK(std::isfinite(s.r2_d),
                "block_mixed_cg: true residual norm went NaN/Inf at a "
                "reliable update");
    ++res.reliable_updates;
    res.history.push_back({res.iterations,
                           s.b2 > 0.0 ? std::sqrt(s.r2_d / s.b2) : 0.0,
                           Precision::Double, true});
  };

  // Advance one RHS's control flow until it either joins the next sloppy
  // batch (returns true) or finishes.  This replays mixed_cg's loop nest
  // exactly: inner-continue test, reliable update on inner exit, outer
  // convergence test, restart.
  auto ready = [&](std::size_t i) -> bool {
    MixedRhs& s = st[i];
    SolveResult& res = results[i];
    while (!s.done) {
      if (!s.breakdown) {
        const bool cont =
            res.iterations < params.max_iter &&
            (s.rsq > s.update_target || s.inner < params.min_inner_iter) &&
            s.rsq > 0.25 * s.target;
        if (cont) return true;
      }
      s.breakdown = false;
      reliable_update(i);
      // A zero-length inner solve means the target sits below the sloppy
      // precision floor; stop rather than spin (mixed_cg's `inner == 0`
      // break).
      if (s.inner == 0 || s.r2_d <= s.target ||
          res.iterations >= params.max_iter) {
        s.done = true;
        break;
      }
      start_inner(s);
    }
    return false;
  };

  for (std::size_t i = 0; i < nb; ++i) {
    if (st[i].r2_d <= st[i].target || results[i].iterations >= params.max_iter)
      st[i].done = true;
    else
      start_inner(st[i]);
  }

  while (true) {
    std::vector<std::size_t> batch;
    for (std::size_t i = 0; i < nb; ++i)
      if (ready(i)) batch.push_back(i);
    if (batch.empty()) break;

    // One batched sloppy matvec for every RHS mid-inner-solve.
    const auto na = batch.size();
    std::vector<SpinorField<float>*> bap;
    std::vector<const SpinorField<float>*> cbp, cbap;
    for (std::size_t i : batch) {
      bap.push_back(&st[i].ap_s);
      cbap.push_back(&st[i].ap_s);
      cbp.push_back(&st[i].p_s);
    }
    a_single(bap, cbp);
    std::vector<double> pap(na);
    blas::redot_multi<float>(cbp, cbap, pap, g);

    // Sloppy breakdowns leave the stepping subset (mixed_cg's inner
    // `break`); everyone else takes the fused vector updates.
    std::vector<std::size_t> step;
    for (std::size_t k = 0; k < na; ++k) {
      const std::size_t i = batch[k];
      ++results[i].iterations;
      ++st[i].inner;
      if (pap[k] > 0.0)
        step.push_back(k);
      else
        st[i].breakdown = true;
    }
    if (step.empty()) continue;

    std::vector<double> alpha(step.size()), rsq_new(step.size());
    for (std::size_t m = 0; m < step.size(); ++m)
      alpha[m] = st[batch[step[m]]].rsq / pap[step[m]];
    if (half) {
      // The 16-bit round-trip kernels fuse each update with its
      // quantisation per field; they stay per-RHS (their traffic is
      // per-RHS regardless — no cross-RHS reuse to fuse).
      for (std::size_t m = 0; m < step.size(); ++m) {
        MixedRhs& s = st[batch[step[m]]];
        s.hstore.axpy_roundtrip(alpha[m], s.p_s, s.xs, hg);
        rsq_new[m] =
            s.hstore.axpy_roundtrip_norm2(-alpha[m], s.ap_s, s.r_s, hg);
      }
    } else {
      std::vector<SpinorField<float>*> sx, sr;
      std::vector<const SpinorField<float>*> sp, sap;
      for (std::size_t m : step) {
        MixedRhs& s = st[batch[m]];
        sp.push_back(&s.p_s);
        sap.push_back(&s.ap_s);
        sx.push_back(&s.xs);
        sr.push_back(&s.r_s);
      }
      blas::triple_cg_update_multi<float>(alpha, sp, sap, sx, sr, rsq_new, g);
    }
    std::vector<double> beta(step.size());
    for (std::size_t m = 0; m < step.size(); ++m) {
      MixedRhs& s = st[batch[step[m]]];
      FEMTO_CHECK(std::isfinite(rsq_new[m]),
                  "block_mixed_cg: sloppy residual norm went NaN/Inf");
      beta[m] = rsq_new[m] / s.rsq;
      s.rsq = rsq_new[m];
    }
    if (half) {
      for (std::size_t m = 0; m < step.size(); ++m) {
        MixedRhs& s = st[batch[step[m]]];
        s.hstore.xpay_roundtrip(s.r_s, beta[m], s.p_s, hg);
      }
    } else {
      std::vector<SpinorField<float>*> sps;
      std::vector<const SpinorField<float>*> srs;
      for (std::size_t m : step) {
        sps.push_back(&st[batch[m]].p_s);
        srs.push_back(&st[batch[m]].r_s);
      }
      blas::xpay_multi<float>(srs, beta, sps, g);
    }
    for (std::size_t m = 0; m < step.size(); ++m) {
      const std::size_t i = batch[step[m]];
      results[i].history.push_back(
          {results[i].iterations,
           st[i].b2 > 0.0 ? std::sqrt(st[i].rsq / st[i].b2) : 0.0, inner_prec,
           false});
    }
  }

  for (std::size_t i = 0; i < nb; ++i) {
    results[i].converged = st[i].r2_d <= st[i].target;
    results[i].final_rel_residual = std::sqrt(st[i].r2_d / st[i].b2);
  }
  finalize_block(results, "block_mixed_cg",
                 sw.seconds(),
                 flops::get() - flops0, flops::bytes() - bytes0);
  return results;
}

template std::vector<SolveResult> block_cg<double>(
    const MultiApplyFn<double>&, std::span<SpinorField<double>* const>,
    std::span<const SpinorField<double>* const>, double, int, std::size_t);
template std::vector<SolveResult> block_cg<float>(
    const MultiApplyFn<float>&, std::span<SpinorField<float>* const>,
    std::span<const SpinorField<float>* const>, double, int, std::size_t);

}  // namespace femto
