#pragma once
// Lanczos eigensolver + deflated CG.
//
// At the physical quark masses the paper's campaign targets, the Dirac
// normal operator develops tiny eigenvalues that dominate the CG
// iteration count; production workflows (QUDA's eigensolvers, the
// CalLat campaign at light masses) compute the lowest modes once per
// configuration and DEFLATE them from every subsequent solve.  This
// module implements:
//
//   * Lanczos with full reorthogonalisation for the lowest eigenpairs of
//     a Hermitian positive-definite operator (the CGNE normal operator),
//   * the dense symmetric tridiagonal eigensolver it needs (cyclic
//     Jacobi; the basis is small),
//   * deflated CG: project the right-hand side onto the computed
//     eigenspace analytically, iterate only on the complement.

#include <vector>

#include "solver/cg.hpp"

namespace femto {

struct LanczosParams {
  int n_eigen = 8;       ///< eigenpairs wanted (lowest)
  int max_basis = 300;   ///< Krylov basis size cap
  double tol = 1e-8;     ///< residual bound |beta * s| / |lambda|
  std::uint64_t seed = 1;
};

struct LanczosResult {
  std::vector<double> values;                 ///< ascending
  std::vector<SpinorField<double>> vectors;   ///< orthonormal
  int iterations = 0;                         ///< basis vectors built
  bool converged = false;
};

/// Jacobi eigen-decomposition of a dense symmetric matrix (row-major
/// n x n).  Returns eigenvalues ascending; @p evecs (n x n, row-major)
/// holds the eigenvectors in its COLUMNS.
void symmetric_eigen(std::vector<double> a, std::size_t n,
                     std::vector<double>* evals,
                     std::vector<double>* evecs);

/// Lowest eigenpairs of the Hermitian positive-definite @p op acting on
/// fields shaped like @p prototype.
LanczosResult lanczos_lowest(const ApplyFn<double>& op,
                             const SpinorField<double>& prototype,
                             const LanczosParams& params);

/// CG with exact deflation of the supplied eigenpairs: the component of
/// the solution in their span is written analytically, and CG runs on
/// the deflated residual (the effective condition number drops by
/// lambda_max / lambda_{n+1}).
SolveResult deflated_cg(const ApplyFn<double>& op,
                        const std::vector<double>& evals,
                        const std::vector<SpinorField<double>>& evecs,
                        SpinorField<double>& x, const SpinorField<double>& b,
                        double tol, int max_iter);

}  // namespace femto
