#pragma once
// QUDA-style "half" precision: 16-bit fixed-point spinor storage.
//
// The paper's fastest solver does "most of the work using 16-bit precision
// fixed-point storage (utilizing single-precision computation) with
// occasional reliable updates to full double precision".  We reproduce the
// storage scheme faithfully: each (site, s5) spinor block stores its 24
// real components as int16 scaled by the block's max-norm, plus one float
// norm per block.  Arithmetic happens in float after expansion.

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "lattice/field.hpp"

namespace femto {

/// A spinor field stored in 16-bit fixed point with a per-site scale.
class HalfSpinorField {
 public:
  HalfSpinorField(std::shared_ptr<const Geometry> geom, int l5, Subset subset)
      : geom_(std::move(geom)), l5_(l5), subset_(subset) {
    const std::int64_t blocks = sites() * l5_;
    q_.resize(static_cast<size_t>(blocks) * kSpinorReals);
    scale_.resize(static_cast<size_t>(blocks));
  }

  const Geometry& geom() const { return *geom_; }
  int l5() const { return l5_; }
  Subset subset() const { return subset_; }
  std::int64_t sites() const {
    return subset_ == Subset::Full ? geom_->volume() : geom_->half_volume();
  }
  std::int64_t blocks() const { return sites() * l5_; }
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(q_.size() * sizeof(std::int16_t) +
                                     scale_.size() * sizeof(float));
  }

  /// Quantise one block of 24 floats.
  void encode_block(std::int64_t block, const float* vals) {
    float amax = 0.0f;
    for (int k = 0; k < kSpinorReals; ++k)
      amax = std::max(amax, std::fabs(vals[k]));
    const float scale = amax > 0.0f ? amax : 1.0f;
    scale_[static_cast<size_t>(block)] = scale;
    const float inv = 32767.0f / scale;
    std::int16_t* q = q_.data() + block * kSpinorReals;
    for (int k = 0; k < kSpinorReals; ++k)
      q[k] = static_cast<std::int16_t>(std::lrintf(vals[k] * inv));
  }

  /// Expand one block back to floats.
  void decode_block(std::int64_t block, float* vals) const {
    const float s = scale_[static_cast<size_t>(block)] / 32767.0f;
    const std::int16_t* q = q_.data() + block * kSpinorReals;
    for (int k = 0; k < kSpinorReals; ++k)
      vals[k] = static_cast<float>(q[k]) * s;
  }

  /// Default block-grain for the whole-field kernels below (blocks per
  /// worker chunk); swept by the autotuner like the BLAS grains.
  static constexpr std::size_t kHalfGrain = 512;

  /// Quantise an entire float field into this storage.
  void encode(const SpinorField<float>& src, std::size_t grain = kHalfGrain);

  /// Expand into a float field.
  void decode(SpinorField<float>& dst, std::size_t grain = kHalfGrain) const;

  // Fused round-trip kernels.  mixed_cg's reliable-update bookkeeping needs
  // the working vectors to hold exactly what half storage holds ("quantise":
  // f = decode(encode(f))).  Done naively that is four full-field sweeps
  // (encode read+write, decode read+write); fused per block it is one, with
  // the int16 staging cache-resident.  Each also folds in the BLAS update
  // and/or norm the solver wants next, so the update, the quantisation and
  // the reduction share a single pass.  All reductions accumulate in double
  // per chunk and combine in fixed chunk order (deterministic for a given
  // thread count), like lattice/blas.hpp.

  /// f = decode(encode(f)); returns ||f||^2 of the quantised field.
  double roundtrip_norm2(SpinorField<float>& f,
                         std::size_t grain = kHalfGrain);

  /// y += a*x, then y = decode(encode(y)).
  void axpy_roundtrip(double a, const SpinorField<float>& x,
                      SpinorField<float>& y, std::size_t grain = kHalfGrain);

  /// y += a*x, then y = decode(encode(y)); returns ||y||^2 of the
  /// quantised y.
  double axpy_roundtrip_norm2(double a, const SpinorField<float>& x,
                              SpinorField<float>& y,
                              std::size_t grain = kHalfGrain);

  /// y = x + b*y, then y = decode(encode(y)).
  void xpay_roundtrip(const SpinorField<float>& x, double b,
                      SpinorField<float>& y, std::size_t grain = kHalfGrain);

 private:
  std::shared_ptr<const Geometry> geom_;
  int l5_;
  Subset subset_;
  std::vector<std::int16_t> q_;
  std::vector<float> scale_;
};

}  // namespace femto
