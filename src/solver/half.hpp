#pragma once
// QUDA-style "half" precision: 16-bit fixed-point spinor storage.
//
// The paper's fastest solver does "most of the work using 16-bit precision
// fixed-point storage (utilizing single-precision computation) with
// occasional reliable updates to full double precision".  We reproduce the
// storage scheme faithfully: each (site, s5) spinor block stores its 24
// real components as int16 scaled by the block's max-norm, plus one float
// norm per block.  Arithmetic happens in float after expansion.
//
// SIMD: the whole-field kernels are width-templated like lattice/blas.hpp
// (default = the build's native float width).  The max-abs scan, the BLAS
// update, the int16 expansion and the norm accumulation vectorize; the
// quantise store stays a scalar std::lrintf loop so the fixed-point
// rounding is identical at every width.  Since max is exact, the block
// scale — and therefore the quantised field contents — are bitwise
// width-independent; only the lane-striped norm reductions differ across
// widths within rounding.

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "lattice/blas.hpp"
#include "lattice/field.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/vec.hpp"

namespace femto {

/// A spinor field stored in 16-bit fixed point with a per-site scale.
class HalfSpinorField {
 public:
  HalfSpinorField(std::shared_ptr<const Geometry> geom, int l5, Subset subset)
      : geom_(std::move(geom)), l5_(l5), subset_(subset) {
    const std::int64_t blocks = sites() * l5_;
    q_.resize(static_cast<size_t>(blocks) * kSpinorReals);
    scale_.resize(static_cast<size_t>(blocks));
  }

  const Geometry& geom() const { return *geom_; }
  int l5() const { return l5_; }
  Subset subset() const { return subset_; }
  std::int64_t sites() const {
    return subset_ == Subset::Full ? geom_->volume() : geom_->half_volume();
  }
  std::int64_t blocks() const { return sites() * l5_; }
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(q_.size() * sizeof(std::int16_t) +
                                     scale_.size() * sizeof(float));
  }

  /// Quantise one block of 24 floats.
  template <int W = simd::kWidth<float>>
  void encode_block(std::int64_t block, const float* vals) {
    float amax = 0.0f;
    int k = 0;
    if constexpr (W > 1) {
      simd::Vec<float, W> m;
      for (; k + W <= kSpinorReals; k += W) {
        const auto v = simd::Vec<float, W>::load(vals + k);
        m = simd::max(m, simd::max(v, -v));
      }
      if (k < kSpinorReals) {
        // Zero tail lanes are harmless under max-abs.
        const auto v =
            simd::Vec<float, W>::load_partial(vals + k, kSpinorReals - k);
        m = simd::max(m, simd::max(v, -v));
        k = kSpinorReals;
      }
      amax = simd::max_lanes(m);
    }
    for (; k < kSpinorReals; ++k) amax = std::max(amax, std::fabs(vals[k]));
    const float scale = amax > 0.0f ? amax : 1.0f;
    scale_[static_cast<size_t>(block)] = scale;
    const float inv = 32767.0f / scale;
    std::int16_t* q = q_.data() + block * kSpinorReals;
    // Scalar on purpose: lrintf's round-to-nearest-even must be identical
    // at every width, so the stored int16 never depend on the build.
    for (int j = 0; j < kSpinorReals; ++j)
      q[j] = static_cast<std::int16_t>(std::lrintf(vals[j] * inv));
  }

  /// Expand one block back to floats.
  template <int W = simd::kWidth<float>>
  void decode_block(std::int64_t block, float* vals) const {
    const float s = scale_[static_cast<size_t>(block)] / 32767.0f;
    const std::int16_t* q = q_.data() + block * kSpinorReals;
    int k = 0;
    if constexpr (W > 1) {
      const simd::Vec<float, W> sv(s);
      for (; k + W <= kSpinorReals; k += W) {
        const auto qv = simd::Vec<std::int16_t, W>::load(q + k);
        (simd::convert<float>(qv) * sv).store(vals + k);
      }
    }
    for (; k < kSpinorReals; ++k) vals[k] = static_cast<float>(q[k]) * s;
  }

  /// Default block-grain for the whole-field kernels below (blocks per
  /// worker chunk); swept by the autotuner like the BLAS grains.
  static constexpr std::size_t kHalfGrain = 512;

  /// Quantise an entire float field into this storage.
  void encode(const SpinorField<float>& src, std::size_t grain = kHalfGrain);

  /// Expand into a float field.
  void decode(SpinorField<float>& dst, std::size_t grain = kHalfGrain) const;

  // Fused round-trip kernels.  mixed_cg's reliable-update bookkeeping needs
  // the working vectors to hold exactly what half storage holds ("quantise":
  // f = decode(encode(f))).  Done naively that is four full-field sweeps
  // (encode read+write, decode read+write); fused per block it is one, with
  // the int16 staging cache-resident.  Each also folds in the BLAS update
  // and/or norm the solver wants next, so the update, the quantisation and
  // the reduction share a single pass.  All reductions accumulate in double
  // per chunk and combine in fixed chunk order (deterministic for a given
  // thread count), like lattice/blas.hpp.

  /// f = decode(encode(f)); returns ||f||^2 of the quantised field.
  template <int W = simd::kWidth<float>>
  double roundtrip_norm2(SpinorField<float>& f,
                         std::size_t grain = kHalfGrain) {
    assert(f.l5() == l5_ && f.subset() == subset_);
    float* fd = f.data();
    double n2 = 0.0;
    par::ThreadPool::global().parallel_reduce_n(
        0, static_cast<std::size_t>(blocks()), 1,
        [&](std::size_t lo, std::size_t hi, double* acc) {
          double s = 0.0;
          for (std::size_t b = lo; b < hi; ++b) {
            float* vals = fd + b * kSpinorReals;
            encode_block<W>(static_cast<std::int64_t>(b), vals);
            decode_block<W>(static_cast<std::int64_t>(b), vals);
            s += blas::detail::norm2_chunk<W>(vals, 0, kSpinorReals);
          }
          acc[0] = s;
        },
        &n2, grain);
    flops::add(2 * f.reals());
    flops::add_bytes(blocks() * kRoundtripBytesPerBlock);
    return n2;
  }

  /// y += a*x, then y = decode(encode(y)).
  template <int W = simd::kWidth<float>>
  void axpy_roundtrip(double a, const SpinorField<float>& x,
                      SpinorField<float>& y, std::size_t grain = kHalfGrain) {
    assert(y.compatible(x));
    assert(y.l5() == l5_ && y.subset() == subset_);
    const float aa = static_cast<float>(a);
    const float* xd = x.data();
    float* yd = y.data();
    par::parallel_for_chunked(
        0, static_cast<std::size_t>(blocks()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t b = lo; b < hi; ++b) {
            float* vals = yd + b * kSpinorReals;
            blas::detail::axpy_chunk<W>(aa, xd + b * kSpinorReals, vals, 0,
                                        kSpinorReals);
            encode_block<W>(static_cast<std::int64_t>(b), vals);
            decode_block<W>(static_cast<std::int64_t>(b), vals);
          }
        },
        grain);
    flops::add(2 * y.reals());
    flops::add_bytes(blocks() *
                     (kRoundtripBytesPerBlock + kXReadBytesPerBlock));
  }

  /// y += a*x, then y = decode(encode(y)); returns ||y||^2 of the
  /// quantised y.
  template <int W = simd::kWidth<float>>
  double axpy_roundtrip_norm2(double a, const SpinorField<float>& x,
                              SpinorField<float>& y,
                              std::size_t grain = kHalfGrain) {
    assert(y.compatible(x));
    assert(y.l5() == l5_ && y.subset() == subset_);
    const float aa = static_cast<float>(a);
    const float* xd = x.data();
    float* yd = y.data();
    double n2 = 0.0;
    par::ThreadPool::global().parallel_reduce_n(
        0, static_cast<std::size_t>(blocks()), 1,
        [&](std::size_t lo, std::size_t hi, double* acc) {
          double s = 0.0;
          for (std::size_t b = lo; b < hi; ++b) {
            float* vals = yd + b * kSpinorReals;
            blas::detail::axpy_chunk<W>(aa, xd + b * kSpinorReals, vals, 0,
                                        kSpinorReals);
            encode_block<W>(static_cast<std::int64_t>(b), vals);
            decode_block<W>(static_cast<std::int64_t>(b), vals);
            s += blas::detail::norm2_chunk<W>(vals, 0, kSpinorReals);
          }
          acc[0] = s;
        },
        &n2, grain);
    flops::add(4 * y.reals());
    flops::add_bytes(blocks() *
                     (kRoundtripBytesPerBlock + kXReadBytesPerBlock));
    return n2;
  }

  /// y = x + b*y, then y = decode(encode(y)).
  template <int W = simd::kWidth<float>>
  void xpay_roundtrip(const SpinorField<float>& x, double b,
                      SpinorField<float>& y, std::size_t grain = kHalfGrain) {
    assert(y.compatible(x));
    assert(y.l5() == l5_ && y.subset() == subset_);
    const float bb = static_cast<float>(b);
    const float* xd = x.data();
    float* yd = y.data();
    par::parallel_for_chunked(
        0, static_cast<std::size_t>(blocks()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t blk = lo; blk < hi; ++blk) {
            float* vals = yd + blk * kSpinorReals;
            blas::detail::xpay_chunk<W>(xd + blk * kSpinorReals, bb, vals, 0,
                                        kSpinorReals);
            encode_block<W>(static_cast<std::int64_t>(blk), vals);
            decode_block<W>(static_cast<std::int64_t>(blk), vals);
          }
        },
        grain);
    flops::add(2 * y.reals());
    flops::add_bytes(blocks() *
                     (kRoundtripBytesPerBlock + kXReadBytesPerBlock));
  }

 private:
  // Traffic charged per block for a one-pass quantise round-trip over the
  // float field: read + write the 24 floats, write the 24 int16 and the
  // float scale (the int16 staging is read back while still cache resident,
  // so it is charged once).
  static constexpr std::int64_t kRoundtripBytesPerBlock =
      kSpinorReals * (2 * sizeof(float) + sizeof(std::int16_t)) +
      sizeof(float);
  // One extra float-field read for kernels that also stream an x input.
  static constexpr std::int64_t kXReadBytesPerBlock =
      kSpinorReals * sizeof(float);

  std::shared_ptr<const Geometry> geom_;
  int l5_;
  Subset subset_;
  std::vector<std::int16_t> q_;
  std::vector<float> scale_;
};

}  // namespace femto
