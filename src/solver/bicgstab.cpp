#include "solver/bicgstab.hpp"

#include <cmath>

#include "core/check.hpp"
#include "lattice/flops.hpp"
#include "obs/trace.hpp"
#include "obs/wallclock.hpp"
#include "solver/solver_obs.hpp"

namespace femto {

template <typename T>
SolveResult bicgstab(const ApplyFn<T>& a, SpinorField<T>& x,
                     const SpinorField<T>& b, double tol, int max_iter,
                     std::size_t blas_grain) {
  FEMTO_TRACE_SCOPE("solver", "bicgstab");
  SolveResult res;
  const obs::Stopwatch sw;
  const std::int64_t flops0 = flops::get();
  const std::int64_t bytes0 = flops::bytes();
  const std::size_t g = blas_grain == 0 ? blas::kGrain : blas_grain;

  const auto geom = b.geom_ptr();
  const int l5 = b.l5();
  const Subset sub = b.subset();

  SpinorField<T> r = b;
  SpinorField<T> tmp(geom, l5, sub);
  if (blas::norm2(x, g) > 0.0) {
    a(tmp, x);
    blas::axpy<T>(-1.0, tmp, r, g);
  }
  const SpinorField<T> rhat = r;  // shadow residual
  SpinorField<T> p = r;
  SpinorField<T> v(geom, l5, sub), s(geom, l5, sub), t(geom, l5, sub);

  const double b2 = blas::norm2(b, g);
  const double target = tol * tol * b2;
  Cplx<double> rho = blas::cdot(rhat, r, g);
  double r2 = blas::norm2(r, g);

  while (res.iterations < max_iter && r2 > target) {
    a(v, p);
    ++res.iterations;
    const Cplx<double> rhat_v = blas::cdot(rhat, v, g);
    if (std::abs(rhat_v.re) + std::abs(rhat_v.im) < 1e-300) break;
    const Cplx<double> alpha = rho / rhat_v;

    // s = r - alpha v, with ||s||^2 folded into the update pass.
    s = r;
    const double s2 = blas::caxpy_norm2<T>(-alpha, v, s, g);
    // BiCGStab legitimately diverges on non-normal operators (the
    // domain-wall Schur system; see test_bicgstab) — a non-finite
    // residual is a breakdown to report, not a corruption to abort on.
    if (!std::isfinite(s2)) break;
    if (s2 <= target) {
      blas::caxpy<T>(alpha, p, x, g);
      r2 = s2;
      res.history.push_back({res.iterations,
                             b2 > 0.0 ? std::sqrt(r2 / b2) : 0.0,
                             precision_of<T>(), false});
      break;
    }

    a(t, s);
    ++res.iterations;
    // One pass over t and s gives both <t, s> and ||t||^2 for omega.
    const auto [ts, t2] = blas::cdot_norm2<T>(t, s, g);
    if (t2 < 1e-300) break;
    const Cplx<double> omega = ts * Cplx<double>(1.0 / t2);

    // x += alpha p + omega s
    blas::caxpy<T>(alpha, p, x, g);
    blas::caxpy<T>(omega, s, x, g);
    // r = s - omega t, with ||r||^2 folded in.
    r = s;
    r2 = blas::caxpy_norm2<T>(-omega, t, r, g);
    if (!std::isfinite(r2)) break;  // breakdown, as above
    res.history.push_back({res.iterations,
                           b2 > 0.0 ? std::sqrt(r2 / b2) : 0.0,
                           precision_of<T>(), false});

    const Cplx<double> rho_new = blas::cdot(rhat, r, g);
    if (std::abs(rho.re) + std::abs(rho.im) < 1e-300) break;
    const Cplx<double> beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    // p = r + beta (p - omega v)
    blas::caxpy<T>(-omega, v, p, g);
    blas::cxpay<T>(r, beta, p, g);
  }

  res.converged = r2 <= target;
  res.final_rel_residual = std::sqrt(r2 / b2);
  res.seconds = sw.seconds();
  res.flop_count = flops::get() - flops0;
  res.byte_count = flops::bytes() - bytes0;
  solver_obs::record("bicgstab", res);
  return res;
}

template SolveResult bicgstab<double>(const ApplyFn<double>&,
                                      SpinorField<double>&,
                                      const SpinorField<double>&, double,
                                      int, std::size_t);
template SolveResult bicgstab<float>(const ApplyFn<float>&,
                                     SpinorField<float>&,
                                     const SpinorField<float>&, double, int,
                                     std::size_t);

}  // namespace femto
