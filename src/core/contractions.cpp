#include "core/contractions.hpp"

#include <cmath>
#include <numbers>

#include "lattice/flops.hpp"
#include "parallel/thread_pool.hpp"

namespace femto::core {

namespace {

/// Bytes of one propagator's data at a single site: 12 source components,
/// each a 24-real double spinor.
constexpr std::int64_t kPropSiteBytes =
    12 * kSpinorReals * static_cast<std::int64_t>(sizeof(double));

/// Coarse flop model for one Levi-Civita pair in the nucleon contraction:
/// ~5 SpinMat (4x4 complex) multiplies at 4*4*(4*3+2*2) = 384+ flops plus
/// block extraction and traces.
constexpr std::int64_t kEpsPairFlops = 2500;

/// The nonzero entries of the 3D Levi-Civita tensor.
struct Eps {
  int a, b, c;
  double sign;
};
constexpr Eps kEps[6] = {{0, 1, 2, +1.0}, {1, 2, 0, +1.0}, {2, 0, 1, +1.0},
                         {0, 2, 1, -1.0}, {2, 1, 0, -1.0}, {1, 0, 2, -1.0}};

/// Spin matrix view of a propagator's (snk_color, src_color) block.
SpinMat color_block(const Propagator::SiteMatrix& m, int snk_c, int src_c) {
  SpinMat s;
  for (int r = 0; r < kNs; ++r)
    for (int c = 0; c < kNs; ++c)
      s(r, c) = m[static_cast<std::size_t>(r)][static_cast<std::size_t>(
          snk_c)][static_cast<std::size_t>(c)][static_cast<std::size_t>(
          src_c)];
  return s;
}

/// Nucleon contraction from the Wick theorem.  With the interpolator
/// chi = eps_abc (u_a^T G d_b) u_c, G = C g5, the projected correlator is
///
///   C = sum_{eps, eps'} s(eps) s(eps') [ T2 - T1 ],
///   T1 = tr(P U^{cc'}) tr( A (U^{aa'})^T ),
///   T2 = tr( A (U^{ca'})^T P^T (U^{ac'})^T ),
///   A  = G D^{bb'} G,
///
/// where the TRANSPOSES on the u blocks come from the diquark index
/// structure (u^T G d).  The FH correlator is the derivative of C with
/// respect to replacing each u-propagator contraction by the FH
/// propagator F, one contraction at a time:
///   C_FH = sum over the two u-contractions in each term of U -> F.
Correlator contract(const Propagator& u, const Propagator* fh,
                    const Propagator& down, const SpinMat& projector,
                    int t_src, std::array<int, 3> momentum = {0, 0, 0}) {
  const auto& geom = u.geom();
  const int nt = geom.extent(3);
  const SpinMat cg5 = cgamma5();
  const SpinMat proj_t = projector.transpose();
  const bool has_p =
      momentum[0] != 0 || momentum[1] != 0 || momentum[2] != 0;

  std::vector<cdouble> corr(static_cast<std::size_t>(nt), cdouble{});
  std::mutex mu;

  par::parallel_for_chunked(
      0, static_cast<std::size_t>(geom.volume()),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<cdouble> local(static_cast<std::size_t>(nt), cdouble{});
        for (std::size_t ss = lo; ss < hi; ++ss) {
          const auto site = static_cast<std::int64_t>(ss);
          const auto x = geom.coord(site);
          const int t = (x[3] - t_src + nt) % nt;

          const auto m_u = u.site_matrix(site);
          const auto md = down.site_matrix(site);
          Propagator::SiteMatrix m_f{};
          if (fh) m_f = fh->site_matrix(site);

          // T2 - T1 with the u blocks X (at aa' / ca') and Y (at cc'/ac').
          auto terms = [&](const Propagator::SiteMatrix& mx,
                           const Propagator::SiteMatrix& my) {
            cdouble sum{};
            for (const auto& e1 : kEps)
              for (const auto& e2 : kEps) {
                const double sgn = e1.sign * e2.sign;
                const SpinMat a =
                    cg5 * color_block(md, e1.b, e2.b) * cg5;
                const SpinMat x_aa =
                    color_block(mx, e1.a, e2.a).transpose();
                const SpinMat y_cc = color_block(my, e1.c, e2.c);
                const cdouble t1 =
                    (projector * y_cc).trace() * (a * x_aa).trace();
                const SpinMat x_ca =
                    color_block(mx, e1.c, e2.a).transpose();
                const SpinMat y_ac =
                    color_block(my, e1.a, e2.c).transpose();
                const cdouble t2 =
                    (a * x_ca * proj_t * y_ac).trace();
                sum += sgn * (t2 - t1);
              }
            return sum;
          };

          cdouble acc{};
          if (!fh) {
            acc = terms(m_u, m_u);
          } else {
            // Single substitution on each u contraction, summed.
            acc = terms(m_f, m_u) + terms(m_u, m_f);
          }
          if (has_p) {
            double phase = 0.0;
            for (int i = 0; i < 3; ++i)
              phase -= 2.0 * std::numbers::pi * momentum[i] * x[i] /
                       geom.extent(i);
            acc = acc * cdouble{std::cos(phase), std::sin(phase)};
          }
          local[static_cast<std::size_t>(t)] += acc;
        }
        std::lock_guard<std::mutex> lk(mu);
        for (int t = 0; t < nt; ++t)
          corr[static_cast<std::size_t>(t)] +=
              local[static_cast<std::size_t>(t)];
      },
      64);

  // 36 Levi-Civita pairs per site, twice when the FH substitution doubles
  // the Wick terms; traffic is one read pass per propagator streamed.
  flops::add(geom.volume() * 36 * kEpsPairFlops * (fh != nullptr ? 2 : 1));
  flops::add_bytes(geom.volume() * kPropSiteBytes *
                   (fh != nullptr ? 3 : 2));
  return corr;
}

}  // namespace

Correlator nucleon_two_point(const Propagator& up, const Propagator& down,
                             const SpinMat& projector, int t_src) {
  return contract(up, nullptr, down, projector, t_src);
}

Correlator nucleon_two_point_momentum(const Propagator& up,
                                      const Propagator& down,
                                      const SpinMat& projector, int t_src,
                                      std::array<int, 3> momentum) {
  return contract(up, nullptr, down, projector, t_src, momentum);
}

Correlator pion_two_point(const Propagator& quark, int t_src,
                          std::array<int, 3> momentum) {
  const auto& geom = quark.geom();
  const int nt = geom.extent(3);
  std::vector<cdouble> corr(static_cast<std::size_t>(nt), cdouble{});
  std::mutex mu;
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(geom.volume()),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<cdouble> local(static_cast<std::size_t>(nt), cdouble{});
        for (std::size_t ss = lo; ss < hi; ++ss) {
          const auto site = static_cast<std::int64_t>(ss);
          const auto x = geom.coord(site);
          const int t = (x[3] - t_src + nt) % nt;
          double a2 = 0.0;
          for (int sp = 0; sp < kNs; ++sp)
            for (int c = 0; c < kNc; ++c) {
              const auto col = quark.column(sp, c).load(0, site);
              for (int s2 = 0; s2 < kNs; ++s2) a2 += norm2(col[s2]);
            }
          double phase = 0.0;
          for (int i = 0; i < 3; ++i)
            phase -= 2.0 * std::numbers::pi * momentum[i] * x[i] /
                     geom.extent(i);
          local[static_cast<std::size_t>(t)] +=
              cdouble{a2 * std::cos(phase), a2 * std::sin(phase)};
        }
        std::lock_guard<std::mutex> lk(mu);
        for (int t = 0; t < nt; ++t)
          corr[static_cast<std::size_t>(t)] +=
              local[static_cast<std::size_t>(t)];
      },
      64);
  // Per site: |column|^2 over 12 sources x 4 sink spins (3 flops per
  // complex norm) plus the momentum phase; one propagator read pass.
  flops::add(geom.volume() * (12 * 4 * kNc + 24));
  flops::add_bytes(geom.volume() * kPropSiteBytes);
  return corr;
}

Correlator nucleon_fh_three_point(const Propagator& up,
                                  const Propagator& fh_up,
                                  const Propagator& down,
                                  const SpinMat& projector, int t_src) {
  return contract(up, &fh_up, down, projector, t_src);
}

std::vector<double> fh_effective_coupling_series(const Correlator& c2,
                                                 const Correlator& cfh) {
  std::vector<double> g;
  for (std::size_t t = 0; t + 1 < c2.size(); ++t) {
    const double r0 = (cfh[t] / c2[t]).re;
    const double r1 = (cfh[t + 1] / c2[t + 1]).re;
    g.push_back(r1 - r0);
  }
  return g;
}

std::vector<double> effective_mass(const Correlator& c2) {
  std::vector<double> m;
  for (std::size_t t = 0; t + 1 < c2.size(); ++t) {
    const double r = c2[t].re / c2[t + 1].re;
    m.push_back(r > 0 ? std::log(r) : 0.0);
  }
  return m;
}

}  // namespace femto::core
