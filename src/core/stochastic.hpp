#pragma once
// Stochastic trace estimation with Z2 noise: the workhorse for
// disconnected / all-to-all quantities in lattice QCD,
//
//   tr(Gamma D^{-1}) ~ (1/N) sum_n eta_n^dag Gamma D^{-1} eta_n,
//
// with eta components drawn iid from {+1, -1} (Z2), so E[eta eta^dag] = 1
// and the estimator is unbiased with variance falling like 1/N.  The
// tests validate unbiasedness against an EXACT trace computed by probing
// the operator with every unit vector on a tiny lattice.

#include <cstdint>
#include <vector>

#include "core/spin_matrix.hpp"
#include "solver/dwf_solve.hpp"

namespace femto::core {

/// Fill a 4D field with Z2 noise (+1/-1 per real component pair: each
/// complex component gets an independent +-1 real value, zero imaginary
/// — the standard real Z2 choice).
void fill_z2_noise(SpinorField<double>& eta, std::uint64_t seed, int hit);

/// One stochastic sample of tr(Gamma D^{-1}) on the 4D-projected
/// domain-wall propagator: solves D psi = embed(eta) and returns
/// eta^dag Gamma q(psi).
Cplx<double> stochastic_trace_sample(DwfSolver& solver, const SpinMat& gamma,
                                     const SpinorField<double>& eta);

struct StochasticTraceResult {
  Cplx<double> estimate{};
  double error = 0.0;  ///< standard error of the real part
  int samples = 0;
};

/// Average @p n_hits independent Z2 samples.
StochasticTraceResult estimate_trace(DwfSolver& solver, const SpinMat& gamma,
                                     int n_hits, std::uint64_t seed);

/// EXACT tr(Gamma D^{-1}) by probing with every (site, spin, color) unit
/// vector — O(12 V) solves, tractable only on tiny lattices; the ground
/// truth for the stochastic estimator tests.
Cplx<double> exact_trace(DwfSolver& solver, const SpinMat& gamma);

}  // namespace femto::core
