#include "core/ga_analysis.hpp"

#include <cmath>

#include "lattice/rng.hpp"

namespace femto::core {

GaDataset generate_fh_dataset(const GaEnsembleParams& p, int n_samples,
                              std::uint64_t seed) {
  GaDataset d;
  for (int t = 1; t < p.nt; ++t)
    d.t_values.push_back(static_cast<double>(t));
  d.samples.resize(static_cast<std::size_t>(n_samples));
  for (int s = 0; s < n_samples; ++s) {
    Xoshiro256 rng(seed, static_cast<std::uint64_t>(s), 0xF4);
    auto& row = d.samples[static_cast<std::size_t>(s)];
    row.reserve(d.t_values.size());
    for (double t : d.t_values) {
      const double truth =
          stats::fh_effective_coupling({p.ga, p.b_excited, p.c_excited,
                                        p.delta_e},
                                       t);
      const double sigma = p.noise0 * std::exp(p.noise_rate * t);
      row.push_back(truth + sigma * rng.gaussian());
    }
  }
  return d;
}

GaDataset generate_traditional_dataset(const GaEnsembleParams& p,
                                       const std::vector<int>& tseps,
                                       int n_samples, std::uint64_t seed) {
  GaDataset d;
  for (int t : tseps) d.t_values.push_back(static_cast<double>(t));
  d.samples.resize(static_cast<std::size_t>(n_samples));
  for (int s = 0; s < n_samples; ++s) {
    Xoshiro256 rng(seed, static_cast<std::uint64_t>(s), 0x7D);
    auto& row = d.samples[static_cast<std::size_t>(s)];
    row.reserve(d.t_values.size());
    for (double t : d.t_values) {
      // The ratio at one separation approaches gA from below with one
      // decaying exponential; the 3pt/2pt ratio noise at separation t
      // carries the same Parisi-Lepage growth.
      const double truth =
          stats::traditional_ratio({p.ga, p.b_excited, p.delta_e}, t);
      const double sigma = p.noise0 * std::exp(p.noise_rate * t);
      row.push_back(truth + sigma * rng.gaussian());
    }
  }
  return d;
}

namespace {

void fill_mean_err(const GaDataset& d, GaFitOutcome* out) {
  const std::size_t nt = d.t_values.size();
  out->data_mean.assign(nt, 0.0);
  out->data_err.assign(nt, 0.0);
  std::vector<double> col(d.samples.size());
  for (std::size_t t = 0; t < nt; ++t) {
    for (std::size_t s = 0; s < d.samples.size(); ++s)
      col[s] = d.samples[s][t];
    out->data_mean[t] = stats::mean(col);
    out->data_err[t] = stats::std_error(col);
  }
}

}  // namespace

GaFitOutcome analyze_fh(const GaDataset& d, int t_min, int t_max,
                        int n_boot, std::uint64_t seed) {
  GaFitOutcome out;
  fill_mean_err(d, &out);

  // Fit window.
  std::vector<double> x, y, sg;
  for (std::size_t i = 0; i < d.t_values.size(); ++i) {
    if (d.t_values[i] < t_min || d.t_values[i] > t_max) continue;
    x.push_back(d.t_values[i]);
    y.push_back(out.data_mean[i]);
    sg.push_back(out.data_err[i]);
  }

  const std::vector<double> p0{1.2, -0.2, 0.05, 0.5};
  out.fit = stats::levmar(stats::fh_effective_coupling, x, y, sg, p0);

  // Bootstrap the gA parameter.
  stats::Bootstrap boot(static_cast<int>(d.samples.size()), n_boot, seed);
  std::vector<double> ga_dist;
  ga_dist.reserve(static_cast<std::size_t>(n_boot));
  for (int b = 0; b < n_boot; ++b) {
    const auto m = boot.resample_mean(d.samples, b);
    std::vector<double> yb;
    for (std::size_t i = 0; i < d.t_values.size(); ++i) {
      if (d.t_values[i] < t_min || d.t_values[i] > t_max) continue;
      yb.push_back(m[i]);
    }
    const auto fit =
        stats::levmar(stats::fh_effective_coupling, x, yb, sg, p0);
    ga_dist.push_back(fit.params[0]);
  }
  out.ga = out.fit.params[0];
  out.err = stats::stddev(ga_dist);
  return out;
}

GaFitOutcome analyze_fh_correlated(const GaDataset& d, int t_min,
                                   int t_max, int n_boot,
                                   std::uint64_t seed, double shrinkage) {
  GaFitOutcome out;
  fill_mean_err(d, &out);

  // Window the per-sample data.
  std::vector<double> x;
  std::vector<std::size_t> cols;
  for (std::size_t i = 0; i < d.t_values.size(); ++i) {
    if (d.t_values[i] < t_min || d.t_values[i] > t_max) continue;
    x.push_back(d.t_values[i]);
    cols.push_back(i);
  }
  std::vector<std::vector<double>> windowed;
  windowed.reserve(d.samples.size());
  for (const auto& row : d.samples) {
    std::vector<double> w;
    for (auto c : cols) w.push_back(row[c]);
    windowed.push_back(std::move(w));
  }

  const std::vector<double> p0{1.2, -0.2, 0.05, 0.5};
  out.fit = stats::levmar_correlated(stats::fh_effective_coupling, x,
                                     windowed, p0, shrinkage);

  // Bootstrap gA: resample rows, refit with the SAME covariance window
  // (standard practice: the covariance is held fixed across resamples).
  stats::Bootstrap boot(static_cast<int>(d.samples.size()), n_boot, seed);
  std::vector<double> ga_dist;
  ga_dist.reserve(static_cast<std::size_t>(n_boot));
  for (int b = 0; b < n_boot; ++b) {
    std::vector<std::vector<double>> resampled;
    resampled.reserve(windowed.size());
    for (int idx : boot.indices(b))
      resampled.push_back(windowed[static_cast<std::size_t>(idx)]);
    const auto fit = stats::levmar_correlated(
        stats::fh_effective_coupling, x, resampled, p0, shrinkage);
    ga_dist.push_back(fit.params[0]);
  }
  out.ga = out.fit.params[0];
  out.err = stats::stddev(ga_dist);
  return out;
}

GaFitOutcome analyze_traditional(const GaDataset& d, int n_boot,
                                 std::uint64_t seed) {
  GaFitOutcome out;
  fill_mean_err(d, &out);

  const std::vector<double>& x = d.t_values;
  const std::vector<double>& y = out.data_mean;
  const std::vector<double>& sg = out.data_err;
  const std::vector<double> p0{1.2, -0.2, 0.5};
  out.fit = stats::levmar(stats::traditional_ratio, x, y, sg, p0);

  stats::Bootstrap boot(static_cast<int>(d.samples.size()), n_boot, seed);
  std::vector<double> ga_dist;
  for (int b = 0; b < n_boot; ++b) {
    const auto m = boot.resample_mean(d.samples, b);
    const auto fit = stats::levmar(stats::traditional_ratio, x, m, sg, p0);
    ga_dist.push_back(fit.params[0]);
  }
  out.ga = out.fit.params[0];
  out.err = stats::stddev(ga_dist);
  return out;
}

}  // namespace femto::core
