#include "core/workflow.hpp"

#include <sstream>

#include "fio/propagator_io.hpp"
#include "lattice/gauge.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "obs/wallclock.hpp"

namespace femto::core {

namespace {

// The workflow stages pass locals across stage boundaries, so the RAII
// trace scope does not fit; stages push their spans explicitly off the
// same timer that feeds the report.
std::int64_t stage_begin() {
  return obs::trace_enabled() ? obs::uptime_ns() : -1;
}

void stage_end(const char* name, std::int64_t s0) {
  if (s0 >= 0) obs::trace_push("workflow", name, s0, obs::uptime_ns() - s0);
}

}  // namespace

std::string WorkflowReport::summary() const {
  std::ostringstream os;
  os << "workflow: " << propagator_solves << " solves ("
     << solver_iterations << " CG iterations), stage split "
     << fraction_propagators() * 100 << "% propagators / "
     << fraction_contractions() * 100 << "% contractions / "
     << fraction_io() * 100 << "% I/O"
     << (all_converged ? "" : " [UNCONVERGED SOLVES]");
  return os.str();
}

WorkflowReport run_workflow(const WorkflowOptions& opts) {
  WorkflowReport rep;
  const auto geom = std::make_shared<Geometry>(
      opts.extents[0], opts.extents[1], opts.extents[2], opts.extents[3]);

  for (int cfg = 0; cfg < opts.n_configs; ++cfg) {
    FEMTO_LOG_DEBUG("workflow",
                    "config " << cfg + 1 << "/" << opts.n_configs
                              << " starting");
    // --- stage 1: gluonic field ------------------------------------------
    obs::Stopwatch sw;
    auto s0 = stage_begin();
    auto u = std::make_shared<GaugeField<double>>(quenched_config(
        geom, opts.beta, opts.thermalization,
        opts.seed + static_cast<std::uint64_t>(cfg) * 1000));
    rep.seconds_gauge += sw.seconds();
    stage_end("gauge", s0);

    // --- stage 2: propagator solves ---------------------------------------
    sw.restart();
    s0 = stage_begin();
    SolverParams sp;
    sp.tol = opts.solver_tol;
    sp.max_iter = 20000;
    DwfSolver solver(u, opts.mobius, sp);
    PropagatorSolveStats pstats;
    const Coord origin{0, 0, 0, 0};
    Propagator up = compute_point_propagator(solver, origin, &pstats);
    rep.propagator_solves += kNs * kNc;
    rep.solver_iterations += pstats.total_iterations;
    rep.all_converged = rep.all_converged && pstats.all_converged;

    Propagator fh(geom);
    if (opts.with_fh) {
      PropagatorSolveStats fstats;
      fh = compute_fh_propagator(solver, up, &fstats);
      rep.propagator_solves += kNs * kNc;
      rep.solver_iterations += fstats.total_iterations;
      rep.all_converged = rep.all_converged && fstats.all_converged;
    }
    rep.seconds_propagators += sw.seconds();
    stage_end("propagators", s0);

    // --- stage 3: write propagators (I/O) ---------------------------------
    sw.restart();
    s0 = stage_begin();
    const std::string fname = opts.scratch_dir + "/prop_cfg" +
                              std::to_string(cfg) + ".femto";
    {
      fio::File f;
      fio::PropagatorMeta meta;
      meta.ensemble = "quenched-b" + std::to_string(opts.beta);
      meta.config_id = cfg;
      meta.mf = opts.mobius.mf;
      meta.residual = pstats.worst_residual;
      for (int s = 0; s < kNs; ++s)
        for (int c = 0; c < kNc; ++c)
          fio::write_propagator(
              f, "up_s" + std::to_string(s) + "c" + std::to_string(c),
              up.column(s, c), meta);
      f.save(fname);
    }
    // ... and read them back (the contraction job is a separate task in
    // production; Fig. 2's "Load propagator" box).
    Propagator up_loaded(geom);
    {
      const fio::File f = fio::File::load(fname);
      for (int s = 0; s < kNs; ++s)
        for (int c = 0; c < kNc; ++c)
          fio::read_propagator(
              f, "up_s" + std::to_string(s) + "c" + std::to_string(c),
              up_loaded.column(s, c));
    }
    rep.seconds_io += sw.seconds();
    stage_end("propagator_io", s0);

    // --- stage 4: contractions (CPU) --------------------------------------
    sw.restart();
    s0 = stage_begin();
    const SpinMat pol = polarized_projector();
    const auto c2 = nucleon_two_point(up_loaded, up_loaded, pol, 0);
    std::vector<double> c2_re;
    for (const auto& v : c2) c2_re.push_back(v.re);
    rep.c2pt.push_back(c2_re);
    if (opts.with_fh) {
      const auto cfh = nucleon_fh_three_point(up_loaded, fh, up_loaded,
                                              pol, 0);
      rep.geff.push_back(fh_effective_coupling_series(c2, cfh));
    }
    rep.seconds_contractions += sw.seconds();
    stage_end("contractions", s0);

    // --- stage 5: write results (I/O) --------------------------------------
    sw.restart();
    s0 = stage_begin();
    {
      fio::File f;
      fio::write_correlator(f, "nucleon_2pt_cfg" + std::to_string(cfg),
                            c2_re, "zero-momentum polarised nucleon");
      f.save(opts.scratch_dir + "/corr_cfg" + std::to_string(cfg) +
             ".femto");
    }
    rep.seconds_io += sw.seconds();
    stage_end("result_io", s0);
  }
  if (rep.all_converged)
    FEMTO_LOG_INFO("workflow", rep.summary());
  else
    FEMTO_LOG_WARN("workflow", rep.summary());
  return rep;
}

}  // namespace femto::core
