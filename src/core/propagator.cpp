#include "core/propagator.hpp"

#include <cmath>

namespace femto::core {

Propagator::Propagator(std::shared_ptr<const Geometry> geom)
    : geom_(std::move(geom)) {
  cols_.reserve(kNs * kNc);
  for (int i = 0; i < kNs * kNc; ++i)
    cols_.emplace_back(geom_, 1, Subset::Full);
}

Propagator::SiteMatrix Propagator::site_matrix(std::int64_t site) const {
  SiteMatrix m{};
  for (int ss = 0; ss < kNs; ++ss)
    for (int sc = 0; sc < kNc; ++sc) {
      const auto spinor = column(ss, sc).load(0, site);
      for (int s = 0; s < kNs; ++s)
        for (int c = 0; c < kNc; ++c)
          m[static_cast<std::size_t>(s)][static_cast<std::size_t>(c)]
           [static_cast<std::size_t>(ss)][static_cast<std::size_t>(sc)] =
               spinor[s][c];
    }
  return m;
}

namespace {

/// Embed a 4D source into the 5D chiral boundaries:
/// b(s=0) = P_+ eta, b(s=L5-1) = P_- eta.
void embed_source(const SpinorField<double>& eta4,
                  SpinorField<double>& b5) {
  b5.zero();
  const int l5 = b5.l5();
  for (std::int64_t i = 0; i < eta4.sites(); ++i) {
    const auto src = eta4.load(0, i);
    b5.store(0, i, chiral_plus(src));
    b5.store(l5 - 1, i, chiral_minus(src));
  }
}

}  // namespace

SpinorField<double> make_dwf_point_source(std::shared_ptr<const Geometry> g,
                                          int l5, const Coord& origin,
                                          int spin, int color) {
  SpinorField<double> eta(g, 1, Subset::Full);
  eta.zero();
  Spinor<double> unit;
  unit[spin][color] = {1.0, 0.0};
  eta.store(0, g->index(origin), unit);

  SpinorField<double> b5(g, l5, Subset::Full);
  embed_source(eta, b5);
  return b5;
}

void project_4d(const SpinorField<double>& psi5, SpinorField<double>& q4) {
  const int l5 = psi5.l5();
  for (std::int64_t i = 0; i < psi5.sites(); ++i) {
    auto q = chiral_minus(psi5.load(0, i));
    q += chiral_plus(psi5.load(l5 - 1, i));
    q4.store(0, i, q);
  }
}

Propagator compute_point_propagator(DwfSolver& solver, const Coord& origin,
                                    PropagatorSolveStats* stats) {
  const auto g = solver.op().geom_ptr();
  const int l5 = solver.params().l5;
  Propagator prop(g);
  PropagatorSolveStats st;
  SpinorField<double> x5(g, l5, Subset::Full);
  for (int spin = 0; spin < kNs; ++spin)
    for (int color = 0; color < kNc; ++color) {
      const auto b5 = make_dwf_point_source(g, l5, origin, spin, color);
      x5.zero();
      const auto res = solver.solve(x5, b5);
      st.total_iterations += res.iterations;
      st.total_seconds += res.seconds;
      st.worst_residual = std::max(st.worst_residual,
                                   res.final_rel_residual);
      st.all_converged = st.all_converged && res.converged;
      project_4d(x5, prop.column(spin, color));
    }
  if (stats) *stats = st;
  return prop;
}

namespace {

/// Shared body of the FH and fixed-insertion sequential solves: source =
/// Gamma_axial * q, restricted to timeslice @p tau (tau < 0: every
/// timeslice, the FH method).
Propagator solve_sequential(DwfSolver& solver, const Propagator& base,
                            int tau, PropagatorSolveStats* stats) {
  const auto g = solver.op().geom_ptr();
  const int l5 = solver.params().l5;
  const SpinMat gamma_a = axial_gamma();
  Propagator out(g);
  PropagatorSolveStats st;
  SpinorField<double> eta(g, 1, Subset::Full);
  SpinorField<double> b5(g, l5, Subset::Full);
  SpinorField<double> x5(g, l5, Subset::Full);
  for (int spin = 0; spin < kNs; ++spin)
    for (int color = 0; color < kNc; ++color) {
      const auto& q = base.column(spin, color);
      eta.zero();
      for (std::int64_t i = 0; i < q.sites(); ++i) {
        if (tau >= 0 && g->coord(i)[3] != tau) continue;
        const auto v = q.load(0, i);
        Spinor<double> gv;
        for (int r = 0; r < kNs; ++r)
          for (int c = 0; c < kNc; ++c) {
            cdouble acc{};
            for (int k = 0; k < kNs; ++k) acc += gamma_a(r, k) * v[k][c];
            gv[r][c] = acc;
          }
        eta.store(0, i, gv);
      }
      embed_source(eta, b5);
      x5.zero();
      const auto res = solver.solve(x5, b5);
      st.total_iterations += res.iterations;
      st.total_seconds += res.seconds;
      st.worst_residual = std::max(st.worst_residual,
                                   res.final_rel_residual);
      st.all_converged = st.all_converged && res.converged;
      project_4d(x5, out.column(spin, color));
    }
  if (stats) *stats = st;
  return out;
}

}  // namespace

Propagator compute_fh_propagator(DwfSolver& solver, const Propagator& base,
                                 PropagatorSolveStats* stats) {
  return solve_sequential(solver, base, /*tau=*/-1, stats);
}

Propagator compute_fixed_insertion_propagator(DwfSolver& solver,
                                              const Propagator& base,
                                              int tau,
                                              PropagatorSolveStats* stats) {
  return solve_sequential(solver, base, tau, stats);
}

}  // namespace femto::core
