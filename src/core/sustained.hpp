#pragma once
// Sustained whole-application performance accounting (paper S VI-VII):
// propagators take ~96.5% of the computation, contractions ~3%, I/O
// ~0.5%; contractions are interleaved on the CPUs of nodes whose GPUs run
// solves (cost amortised to zero) and I/O is negligible, so the sustained
// number is the solver number times the job-management efficiency —
// "20% on the minimal number of nodes" and "15% at scale" (MVAPICH2 not
// yet fully tuned; 20% anticipated).

#include <string>

#include "machine/perf_model.hpp"

namespace femto::core {

struct ApplicationSplit {
  double propagators = 0.965;
  double contractions = 0.03;
  double io = 0.005;
  bool contractions_coscheduled = true;  ///< mpi_jm overlays them on CPUs
  bool io_counted = false;               ///< paper excludes the 0.5%
};

struct SustainedPerf {
  double solver_pct_peak = 0.0;      ///< solver-only percent of peak
  double application_pct_peak = 0.0; ///< whole-application number
  double pflops = 0.0;               ///< sustained PFLOPS at this scale
  double jm_efficiency = 1.0;        ///< job-manager scheduling efficiency
  std::string description;
};

/// Sustained performance of the full application at a given GPU count,
/// combining the solver model with the workload split and the job-manager
/// efficiency (1.0 = perfect backfilling).
SustainedPerf sustained_performance(const machine::MachineSpec& m,
                                    const machine::LatticeProblem& prob,
                                    int n_gpus, double jm_efficiency,
                                    double mpi_rate_factor = 1.0,
                                    const ApplicationSplit& split = {});

/// Measured arithmetic intensity (flop/byte) of everything the kernels
/// have run since the last flops::reset(): flops::get() / flops::bytes().
/// This is the measured counterpart of the a-priori intensity in the
/// perf-model roofline — the paper quotes 1.8-1.9 for the full solver —
/// and is how the fused-BLAS byte accounting feeds the sustained-
/// performance estimate (DESIGN.md "Fused BLAS & memory-traffic
/// accounting").  Returns 0 when no bytes have been recorded.
double measured_arithmetic_intensity();

/// Machine-to-machine application speed-up for the paper's research
/// program (S VII: Sierra ~12x and Summit ~15x over Titan).  Evaluated at
/// the per-job scale the campaign uses (groups of n_gpus_per_job).
double machine_speedup(const machine::MachineSpec& from,
                       const machine::MachineSpec& to,
                       const machine::LatticeProblem& prob,
                       int gpus_per_job_from, int gpus_per_job_to);

}  // namespace femto::core
