#pragma once
// Quark propagators: 12 domain-wall solves (one per source spin-color)
// collapsed to the physical 4D propagator via the domain-wall boundary
// projection q(x) = P_- psi(x, 0) + P_+ psi(x, L5-1).
//
// A Propagator is the S(x)^{alpha beta}_{ab} object the tensor
// contractions consume: for each sink site, a 12x12 complex matrix
// (sink spin-color x source spin-color).

#include <memory>
#include <vector>

#include "core/spin_matrix.hpp"
#include "lattice/field.hpp"
#include "solver/dwf_solve.hpp"

namespace femto::core {

/// 4D point-to-all propagator from one source site.
class Propagator {
 public:
  Propagator(std::shared_ptr<const Geometry> geom);

  const Geometry& geom() const { return *geom_; }
  std::shared_ptr<const Geometry> geom_ptr() const { return geom_; }

  /// The 4D solution field for source (spin, color).
  SpinorField<double>& column(int src_spin, int src_color) {
    return cols_[static_cast<std::size_t>(src_spin * kNc + src_color)];
  }
  const SpinorField<double>& column(int src_spin, int src_color) const {
    return cols_[static_cast<std::size_t>(src_spin * kNc + src_color)];
  }

  /// S(x): the full 12x12 matrix at a sink site, indexed
  /// [snk_spin][snk_col][src_spin][src_col].
  using SiteMatrix = std::array<
      std::array<std::array<std::array<cdouble, kNc>, kNs>, kNc>, kNs>;
  SiteMatrix site_matrix(std::int64_t site) const;

 private:
  std::shared_ptr<const Geometry> geom_;
  std::vector<SpinorField<double>> cols_;
};

/// Statistics of the 12 solves that built a propagator.
struct PropagatorSolveStats {
  int total_iterations = 0;
  double total_seconds = 0.0;
  double worst_residual = 0.0;
  bool all_converged = true;
};

/// Make a point source at @p origin with unit strength for (spin, color),
/// embedded at the domain-wall boundaries with the chiral projection that
/// makes the 4D propagator come out right:
///   psi(s=0)     += P_+ source,   psi(s=L5-1) += P_- source.
SpinorField<double> make_dwf_point_source(std::shared_ptr<const Geometry> g,
                                          int l5, const Coord& origin,
                                          int spin, int color);

/// Project a 5D solution to the physical 4D quark field:
///   q(x) = P_- psi(x, 0) + P_+ psi(x, L5-1).
void project_4d(const SpinorField<double>& psi5, SpinorField<double>& q4);

/// Solve the 12 columns of a point-source propagator.
Propagator compute_point_propagator(DwfSolver& solver, const Coord& origin,
                                    PropagatorSolveStats* stats = nullptr);

/// Solve the Feynman-Hellmann partner propagator: for each column q of
/// @p base, solve D psi' = Gamma_src(q) where the source is the axial
/// current Gamma = gamma_z gamma_5 applied to the 4D-projected base
/// propagator at EVERY site (this is what yields every current-insertion
/// time for the price of one solve — the paper's exponential improvement).
Propagator compute_fh_propagator(DwfSolver& solver, const Propagator& base,
                                 PropagatorSolveStats* stats = nullptr);

/// The TRADITIONAL sequential method: the axial current inserted at ONE
/// fixed timeslice tau.  Solving this for every tau costs T solves where
/// the FH method costs one; by linearity
///     sum_tau fixed_insertion(tau) == fh_propagator
/// exactly — the identity the paper's algorithm exploits (verified by the
/// integration tests).
Propagator compute_fixed_insertion_propagator(
    DwfSolver& solver, const Propagator& base, int tau,
    PropagatorSolveStats* stats = nullptr);

}  // namespace femto::core
