#include "core/sustained.hpp"

#include <sstream>

#include "lattice/flops.hpp"

namespace femto::core {

SustainedPerf sustained_performance(const machine::MachineSpec& m,
                                    const machine::LatticeProblem& prob,
                                    int n_gpus, double jm_efficiency,
                                    double mpi_rate_factor,
                                    const ApplicationSplit& split) {
  machine::SolverPerfModel model(m, prob);
  const auto pt = model.strong_scaling_point(n_gpus);

  SustainedPerf s;
  s.solver_pct_peak = pt.pct_peak;
  s.jm_efficiency = jm_efficiency;

  // Application time budget: propagators dominate.  Co-scheduled
  // contractions cost nothing extra; otherwise they dilute the GPU number
  // by their serial fraction.  I/O is excluded when io_counted is false
  // (the paper's accounting) or added as dead time when true.
  double dilution = split.propagators;
  if (!split.contractions_coscheduled) dilution += split.contractions;
  if (split.io_counted) dilution += split.io;
  const double solver_share = split.propagators / dilution;

  s.application_pct_peak =
      pt.pct_peak * solver_share * jm_efficiency * mpi_rate_factor;
  s.pflops = pt.tflops / 1000.0 * solver_share * jm_efficiency *
             mpi_rate_factor;

  std::ostringstream os;
  os << m.name << " @ " << n_gpus << " GPUs: solver " << pt.pct_peak
     << "% of peak, application " << s.application_pct_peak
     << "% (jm eff " << jm_efficiency * 100 << "%, mpi factor "
     << mpi_rate_factor << ")";
  s.description = os.str();
  return s;
}

double measured_arithmetic_intensity() {
  const std::int64_t f = flops::get();
  const std::int64_t b = flops::bytes();
  return b > 0 ? static_cast<double>(f) / static_cast<double>(b) : 0.0;
}

double machine_speedup(const machine::MachineSpec& from,
                       const machine::MachineSpec& to,
                       const machine::LatticeProblem& prob,
                       int gpus_per_job_from, int gpus_per_job_to) {
  machine::SolverPerfModel mf(from, prob);
  machine::SolverPerfModel mt(to, prob);
  const auto pf = mf.strong_scaling_point(gpus_per_job_from);
  const auto pt = mt.strong_scaling_point(gpus_per_job_to);
  // Campaign throughput scales with whole-machine sustained rate:
  // per-job rate x number of concurrent jobs the machine can hold.
  const double jobs_from =
      static_cast<double>(from.nodes * from.gpus_per_node) /
      gpus_per_job_from;
  const double jobs_to =
      static_cast<double>(to.nodes * to.gpus_per_node) / gpus_per_job_to;
  return (pt.tflops * jobs_to) / (pf.tflops * jobs_from);
}

}  // namespace femto::core
