#pragma once
// Multi-configuration ensemble campaigns: "Because LQCD is a Monte Carlo
// method, for each lattice size we have a large ensemble of gluonic field
// configurations ... To control our systematic effects ... we use many
// ensembles, varying the lattice sizes and other parameters" (S VI).
//
// An EnsembleSpec names one ensemble (extents, coupling, quark mass); the
// campaign driver generates its Markov chain, runs the Fig. 2 pipeline on
// every configuration, and hands per-configuration correlators to the
// resampling analysis.  Results can be archived to a femtoio container.

#include <string>
#include <vector>

#include "core/contractions.hpp"
#include "fio/fio.hpp"
#include "solver/cg.hpp"

namespace femto::core {

struct EnsembleSpec {
  std::string name = "a09-like";
  std::array<int, 4> extents{4, 4, 4, 8};
  double beta = 6.0;
  MobiusParams mobius{4, -1.8, 1.5, 0.5, 0.3};
  int n_configs = 4;
  int thermalization = 12;
  int decorrelation = 4;  ///< heatbath sweeps between saved configs
  std::uint64_t seed = 1;
};

struct EnsembleResult {
  std::string name;
  int n_configs = 0;
  std::vector<double> plaquettes;          ///< per configuration
  std::vector<std::vector<double>> c2pt;   ///< [config][t], Re C(t)
  std::vector<std::vector<double>> geff;   ///< [config][t], FH series

  // Jackknife analysis over configurations.
  std::vector<double> meff_mean, meff_err;  ///< effective mass per t
  double plaquette_mean = 0.0;
  double plaquette_err = 0.0;
  bool all_converged = true;
};

/// Run the full pipeline over one ensemble.  If @p archive is non-null,
/// correlators land under /ensemble/<name>/.
EnsembleResult run_ensemble(const EnsembleSpec& spec,
                            const SolverParams& solver_params,
                            fio::File* archive = nullptr);

/// Load an archived ensemble's correlators back (inverse of the archive
/// side of run_ensemble; analysis fields are recomputed).
EnsembleResult load_ensemble(const fio::File& archive,
                             const std::string& name);

}  // namespace femto::core
