#include "core/ensemble.hpp"

#include <cmath>

#include "core/propagator.hpp"
#include "lattice/gauge.hpp"
#include "solver/dwf_solve.hpp"
#include "stats/stats.hpp"

namespace femto::core {

namespace {

/// Jackknife the effective mass per timeslice from per-config correlators.
void analyze_meff(EnsembleResult* res) {
  if (res->c2pt.empty()) return;
  const std::size_t nt = res->c2pt.front().size();
  if (nt < 2 || res->c2pt.size() < 2) return;
  stats::Jackknife jk(static_cast<int>(res->c2pt.size()));
  res->meff_mean.clear();
  res->meff_err.clear();
  for (std::size_t t = 0; t + 1 < nt; ++t) {
    auto est = [t](const std::vector<double>& m) {
      return m[t + 1] > 0 && m[t] > 0 ? std::log(m[t] / m[t + 1]) : 0.0;
    };
    const auto [center, err] = jk.estimate(res->c2pt, est);
    res->meff_mean.push_back(center);
    res->meff_err.push_back(err);
  }
}

}  // namespace

EnsembleResult run_ensemble(const EnsembleSpec& spec,
                            const SolverParams& solver_params,
                            fio::File* archive) {
  EnsembleResult res;
  res.name = spec.name;

  const auto geom = std::make_shared<Geometry>(
      spec.extents[0], spec.extents[1], spec.extents[2], spec.extents[3]);
  auto configs =
      quenched_ensemble(geom, spec.beta, spec.n_configs,
                        spec.thermalization, spec.decorrelation, spec.seed);

  const SpinMat pol = polarized_projector();
  for (std::size_t cfg = 0; cfg < configs.size(); ++cfg) {
    res.plaquettes.push_back(plaquette(configs[cfg]));
    auto u = std::make_shared<GaugeField<double>>(std::move(configs[cfg]));
    DwfSolver solver(u, spec.mobius, solver_params);

    PropagatorSolveStats pstats;
    const auto up = compute_point_propagator(solver, {0, 0, 0, 0}, &pstats);
    PropagatorSolveStats fstats;
    const auto fh = compute_fh_propagator(solver, up, &fstats);
    res.all_converged =
        res.all_converged && pstats.all_converged && fstats.all_converged;

    const auto c2 = nucleon_two_point(up, up, pol, 0);
    const auto c3 = nucleon_fh_three_point(up, fh, up, pol, 0);
    std::vector<double> c2_re;
    for (const auto& v : c2) c2_re.push_back(v.re);
    res.c2pt.push_back(c2_re);
    res.geff.push_back(fh_effective_coupling_series(c2, c3));
  }
  res.n_configs = static_cast<int>(res.c2pt.size());
  analyze_meff(&res);
  {
    std::vector<double> p = res.plaquettes;
    res.plaquette_mean = stats::mean(p);
    res.plaquette_err = p.size() > 1 ? stats::std_error(p) : 0.0;
  }

  if (archive) {
    const std::string base = "/ensemble/" + spec.name;
    archive->write_f64(base + "/plaquettes", res.plaquettes);
    for (int cfg = 0; cfg < res.n_configs; ++cfg) {
      archive->write_f64(base + "/c2pt/" + std::to_string(cfg),
                         res.c2pt[static_cast<std::size_t>(cfg)]);
      archive->write_f64(base + "/geff/" + std::to_string(cfg),
                         res.geff[static_cast<std::size_t>(cfg)]);
    }
    archive->set_attr(base, "name", spec.name);
    archive->set_attr_f64(base, "beta", spec.beta);
    archive->set_attr_f64(base, "mf", spec.mobius.mf);
    archive->set_attr_f64(base, "n_configs",
                          static_cast<double>(res.n_configs));
  }
  return res;
}

EnsembleResult load_ensemble(const fio::File& archive,
                             const std::string& name) {
  EnsembleResult res;
  res.name = name;
  const std::string base = "/ensemble/" + name;
  res.plaquettes = archive.read_f64(base + "/plaquettes");
  res.n_configs =
      static_cast<int>(archive.attr_f64(base, "n_configs"));
  for (int cfg = 0; cfg < res.n_configs; ++cfg) {
    res.c2pt.push_back(
        archive.read_f64(base + "/c2pt/" + std::to_string(cfg)));
    res.geff.push_back(
        archive.read_f64(base + "/geff/" + std::to_string(cfg)));
  }
  analyze_meff(&res);
  std::vector<double> p = res.plaquettes;
  res.plaquette_mean = stats::mean(p);
  res.plaquette_err = p.size() > 1 ? stats::std_error(p) : 0.0;
  return res;
}

}  // namespace femto::core
