#pragma once
// The gA extraction pipeline behind Fig. 1: Feynman-Hellmann effective
// coupling analysed at SHORT time separations (where the signal-to-noise
// is exponentially better) versus the traditional fixed source-sink
// separation method marooned at LARGE separations.
//
// Lattice QCD signal-to-noise obeys the Parisi-Lepage bound: for nucleon
// correlators the noise-to-signal grows like exp[(m_N - 3/2 m_pi) t].
// The generative model below reproduces exactly that structure with the
// a09m310-like scales of the paper's Fig. 1; the ANALYSIS (bootstrap +
// Levenberg-Marquardt two-state fits) is the same code one would run on
// real correlator data from the contraction module.

#include <cstdint>
#include <vector>

#include "stats/fit.hpp"
#include "stats/stats.hpp"

namespace femto::core {

/// Ground truth and noise scales of the synthetic ensemble (lattice
/// units of the a09m310-like ensemble).
struct GaEnsembleParams {
  double ga = 1.271;        ///< the axial coupling
  double b_excited = -0.34; ///< leading excited-state contamination
  double c_excited = 0.08;  ///< FH-specific t * exp(-dE t) contamination
  double delta_e = 0.50;    ///< excited-state gap (lattice units)
  double noise0 = 0.004;    ///< noise at t = 0 for one sample
  double noise_rate = 0.28; ///< Parisi-Lepage growth m_N - 3/2 m_pi
  int nt = 15;              ///< usable source-sink range
};

/// Per-sample effective-coupling data: data[sample][t].
struct GaDataset {
  std::vector<double> t_values;
  std::vector<std::vector<double>> samples;
};

/// Generate an FH-method dataset: g_eff(t) for every t in [1, nt).
GaDataset generate_fh_dataset(const GaEnsembleParams& p, int n_samples,
                              std::uint64_t seed);

/// Generate a traditional-method dataset: the plateau estimate at a few
/// large source-sink separations only (the paper's triangles/circles/
/// squares), with Parisi-Lepage noise at those separations.
GaDataset generate_traditional_dataset(const GaEnsembleParams& p,
                                       const std::vector<int>& tseps,
                                       int n_samples, std::uint64_t seed);

struct GaFitOutcome {
  double ga = 0.0;
  double err = 0.0;
  stats::FitResult fit;           ///< central-value fit
  std::vector<double> data_mean;  ///< per-t mean of the dataset
  std::vector<double> data_err;   ///< per-t standard error
};

/// FH analysis: bootstrap the dataset, fit
/// g(t) = gA + (b + c t) exp(-dE t) over t in [t_min, t_max].
GaFitOutcome analyze_fh(const GaDataset& d, int t_min, int t_max,
                        int n_boot, std::uint64_t seed);

/// Same analysis with the CORRELATED chi^2 (full covariance of the mean,
/// shrunk by @p shrinkage) — what production extractions publish; the
/// synthetic data here has independent noise per t, so central values and
/// errors must agree with the diagonal analysis (a consistency check the
/// tests enforce).
GaFitOutcome analyze_fh_correlated(const GaDataset& d, int t_min, int t_max,
                                   int n_boot, std::uint64_t seed,
                                   double shrinkage = 0.1);

/// Traditional analysis: bootstrap + fit the plateau-from-one-exponential
/// model through the few large-t points.
GaFitOutcome analyze_traditional(const GaDataset& d, int n_boot,
                                 std::uint64_t seed);

}  // namespace femto::core
