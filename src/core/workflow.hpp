#pragma once
// The application workflow of Fig. 2, driven end to end on real (small)
// lattices:
//
//   load gluonic field -> solve propagators (GPU-class work, ~97%)
//        -> write propagators (I/O)
//   load propagators -> tensor contractions (CPU work, ~3%) -> write
//        results (I/O, ~0.5% total)
//
// The driver measures wall time per stage so the sustained-performance
// accounting (paper S VI/VII) can be reproduced with our own numbers.

#include <string>
#include <vector>

#include "core/contractions.hpp"
#include "core/propagator.hpp"
#include "fio/fio.hpp"
#include "solver/dwf_solve.hpp"

namespace femto::core {

struct WorkflowOptions {
  std::array<int, 4> extents{4, 4, 4, 8};
  MobiusParams mobius{6, -1.8, 1.5, 0.5, 0.1};
  double solver_tol = 1e-8;
  int n_configs = 2;           ///< gauge configurations to process
  double beta = 6.0;           ///< quenched coupling
  int thermalization = 10;     ///< heatbath sweeps per config
  bool with_fh = true;         ///< also compute the FH propagator
  std::string scratch_dir = ".";  ///< where propagator files are written
  std::uint64_t seed = 2024;
};

struct WorkflowReport {
  double seconds_gauge = 0.0;
  double seconds_propagators = 0.0;
  double seconds_contractions = 0.0;
  double seconds_io = 0.0;
  int propagator_solves = 0;
  int solver_iterations = 0;
  bool all_converged = true;

  /// Per-configuration correlators (averaged copies also kept).
  std::vector<std::vector<double>> c2pt;  ///< [config][t], real part
  std::vector<std::vector<double>> geff;  ///< [config][t] FH g_eff

  double total_seconds() const {
    return seconds_gauge + seconds_propagators + seconds_contractions +
           seconds_io;
  }
  double fraction_propagators() const {
    return seconds_propagators / total_seconds();
  }
  double fraction_contractions() const {
    return seconds_contractions / total_seconds();
  }
  double fraction_io() const { return seconds_io / total_seconds(); }

  std::string summary() const;
};

/// Run the Fig. 2 workflow: returns stage timings and physics output.
WorkflowReport run_workflow(const WorkflowOptions& opts);

}  // namespace femto::core
