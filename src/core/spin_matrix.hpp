#pragma once
// Dense 4x4 spin matrices: the algebra needed by the baryon tensor
// contractions (charge conjugation, polarisation projectors, gamma
// insertions).  Built numerically from the same apply_gamma() the dslash
// uses, so contraction conventions can never drift from the operator
// conventions.

#include <array>

#include "lattice/complex.hpp"
#include "lattice/spinor.hpp"

namespace femto {

struct SpinMat {
  // m[row][col]
  std::array<std::array<cdouble, kNs>, kNs> m{};

  cdouble& operator()(int r, int c) {
    return m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  }
  const cdouble& operator()(int r, int c) const {
    return m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  }

  static SpinMat identity() {
    SpinMat s;
    for (int i = 0; i < kNs; ++i) s(i, i) = {1.0, 0.0};
    return s;
  }

  static SpinMat zero() { return {}; }

  /// gamma_mu (mu in 0..3) or gamma_5 (mu == 4), derived column-by-column
  /// from apply_gamma so it matches the kernel basis exactly.
  static SpinMat gamma(int mu);

  SpinMat operator*(const SpinMat& o) const {
    SpinMat r;
    for (int i = 0; i < kNs; ++i)
      for (int j = 0; j < kNs; ++j) {
        cdouble s{};
        for (int k = 0; k < kNs; ++k) s += (*this)(i, k) * o(k, j);
        r(i, j) = s;
      }
    return r;
  }

  SpinMat operator+(const SpinMat& o) const {
    SpinMat r;
    for (int i = 0; i < kNs; ++i)
      for (int j = 0; j < kNs; ++j) r(i, j) = (*this)(i, j) + o(i, j);
    return r;
  }

  SpinMat operator-(const SpinMat& o) const {
    SpinMat r;
    for (int i = 0; i < kNs; ++i)
      for (int j = 0; j < kNs; ++j) r(i, j) = (*this)(i, j) - o(i, j);
    return r;
  }

  SpinMat scaled(cdouble a) const {
    SpinMat r;
    for (int i = 0; i < kNs; ++i)
      for (int j = 0; j < kNs; ++j) r(i, j) = a * (*this)(i, j);
    return r;
  }

  SpinMat transpose() const {
    SpinMat r;
    for (int i = 0; i < kNs; ++i)
      for (int j = 0; j < kNs; ++j) r(i, j) = (*this)(j, i);
    return r;
  }

  cdouble trace() const {
    cdouble s{};
    for (int i = 0; i < kNs; ++i) s += (*this)(i, i);
    return s;
  }
};

inline SpinMat SpinMat::gamma(int mu) {
  SpinMat g;
  for (int col = 0; col < kNs; ++col) {
    Spinor<double> e;
    e[col][0] = {1.0, 0.0};
    const auto ge = apply_gamma(mu, e);
    for (int row = 0; row < kNs; ++row) g(row, col) = ge[row][0];
  }
  return g;
}

/// Charge conjugation C = gamma_y gamma_t in the DeGrand-Rossi basis
/// (satisfies C gamma_mu C^-1 = -gamma_mu^T; verified by tests).
inline SpinMat charge_conjugation() {
  return SpinMat::gamma(kDirY) * SpinMat::gamma(kDirT);
}

/// C gamma_5: the diquark coupling matrix in the nucleon interpolator.
inline SpinMat cgamma5() { return charge_conjugation() * SpinMat::gamma(4); }

/// Positive-parity projector (1 + gamma_t)/2.
inline SpinMat parity_projector() {
  return (SpinMat::identity() + SpinMat::gamma(kDirT)).scaled({0.5, 0.0});
}

/// Spin-z polarised positive-parity projector:
/// P = (1+gamma_t)/2 (1 - i gamma_x gamma_y)/2.
inline SpinMat polarized_projector() {
  const SpinMat gxgy = SpinMat::gamma(kDirX) * SpinMat::gamma(kDirY);
  const SpinMat spin =
      (SpinMat::identity() - gxgy.scaled({0.0, 1.0})).scaled({0.5, 0.0});
  return parity_projector() * spin;
}

/// The axial current insertion gamma_z gamma_5 used for gA.
inline SpinMat axial_gamma() {
  return SpinMat::gamma(kDirZ) * SpinMat::gamma(4);
}

}  // namespace femto
