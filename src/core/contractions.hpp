#pragma once
// Baryon tensor contractions — the CPU-only workflow stage (~3% of
// application time) that mpi_jm co-schedules onto nodes whose GPUs are
// busy with solves.
//
// Nucleon interpolator N = eps_abc (u_a^T C g5 d_b) u_c.  The two-point
// function with sink projector P is the standard two-term epsilon
// contraction
//
//   C2(t) = sum_x eps_abc eps_a'b'c' [  Tr(P U^{cc'}) Tr(D~^{bb'} U^{aa'})
//                                     + Tr(P U^{aa'} D~^{bb'} U^{cc'}) ]
//
// with D~ = (C g5) D (C g5) and spin traces; U, D the up/down quark
// propagators.  For the Feynman-Hellmann three-point data one U is
// replaced by the FH propagator (axial current summed over all insertion
// times).

#include <vector>

#include "core/propagator.hpp"
#include "core/spin_matrix.hpp"

namespace femto::core {

/// Per-timeslice complex correlator.
using Correlator = std::vector<cdouble>;

/// Nucleon two-point function, zero sink momentum, projector P.
/// @p up and @p down are the quark propagators from a common source at
/// time t_src; the result is indexed by (t - t_src + T) % T.
Correlator nucleon_two_point(const Propagator& up, const Propagator& down,
                             const SpinMat& projector, int t_src);

/// Same contraction with one up-quark line replaced by the FH propagator:
/// yields sum_tau <N(t) A(tau) N(0)> — the FH "three-point" tower.
Correlator nucleon_fh_three_point(const Propagator& up,
                                  const Propagator& fh_up,
                                  const Propagator& down,
                                  const SpinMat& projector, int t_src);

/// Pion two-point function at spatial momentum p (units of 2*pi/L):
///   C_pi(t) = sum_x e^{-i p.x} tr |S(x)|^2
/// (gamma_5 hermiticity collapses the pseudoscalar contraction to the
/// propagator's absolute square, so C_pi(t=0 momentum) is STRICTLY
/// positive on every configuration — the sharpest property test in the
/// suite).
Correlator pion_two_point(const Propagator& quark, int t_src,
                          std::array<int, 3> momentum = {0, 0, 0});

/// Nucleon two-point function at spatial momentum p.
Correlator nucleon_two_point_momentum(const Propagator& up,
                                      const Propagator& down,
                                      const SpinMat& projector, int t_src,
                                      std::array<int, 3> momentum);

/// The FH effective coupling: finite difference of the ratio,
///   g_eff(t) = R(t+1) - R(t),  R(t) = C_FH(t) / C_2pt(t).
std::vector<double> fh_effective_coupling_series(const Correlator& c2,
                                                 const Correlator& cfh);

/// Effective mass  m_eff(t) = log(C(t) / C(t+1)).
std::vector<double> effective_mass(const Correlator& c2);

}  // namespace femto::core
