#include "core/stochastic.hpp"

#include <cmath>

#include "core/propagator.hpp"
#include "lattice/rng.hpp"

namespace femto::core {

namespace {

/// Embed a 4D source at the chiral walls, solve, and project back to 4D.
SpinorField<double> solve_4d(DwfSolver& solver,
                             const SpinorField<double>& eta) {
  const auto g = solver.op().geom_ptr();
  const int l5 = solver.params().l5;
  SpinorField<double> b5(g, l5, Subset::Full);
  b5.zero();
  for (std::int64_t i = 0; i < eta.sites(); ++i) {
    const auto src = eta.load(0, i);
    b5.store(0, i, chiral_plus(src));
    b5.store(l5 - 1, i, chiral_minus(src));
  }
  SpinorField<double> x5(g, l5, Subset::Full);
  solver.solve(x5, b5);
  SpinorField<double> q(g, 1, Subset::Full);
  project_4d(x5, q);
  return q;
}

/// eta^dag (Gamma q), summed over sites/spin/color.
Cplx<double> gamma_inner(const SpinorField<double>& eta, const SpinMat& gamma,
                         const SpinorField<double>& q) {
  Cplx<double> acc{};
  for (std::int64_t i = 0; i < eta.sites(); ++i) {
    const auto e = eta.load(0, i);
    const auto v = q.load(0, i);
    for (int r = 0; r < kNs; ++r)
      for (int c = 0; c < kNc; ++c) {
        Cplx<double> gv{};
        for (int k = 0; k < kNs; ++k) gv += gamma(r, k) * v[k][c];
        acc += conj_mul(e[r][c], gv);
      }
  }
  return acc;
}

}  // namespace

void fill_z2_noise(SpinorField<double>& eta, std::uint64_t seed, int hit) {
  for (std::int64_t i = 0; i < eta.sites(); ++i) {
    Xoshiro256 rng(seed, static_cast<std::uint64_t>(i),
                   static_cast<std::uint64_t>(hit) + 0x22);
    Spinor<double> s;
    for (int r = 0; r < kNs; ++r)
      for (int c = 0; c < kNc; ++c)
        s[r][c] = {rng.uniform() < 0.5 ? -1.0 : 1.0, 0.0};
    eta.store(0, i, s);
  }
}

Cplx<double> stochastic_trace_sample(DwfSolver& solver, const SpinMat& gamma,
                                     const SpinorField<double>& eta) {
  const auto q = solve_4d(solver, eta);
  return gamma_inner(eta, gamma, q);
}

StochasticTraceResult estimate_trace(DwfSolver& solver, const SpinMat& gamma,
                                     int n_hits, std::uint64_t seed) {
  StochasticTraceResult res;
  const auto g = solver.op().geom_ptr();
  SpinorField<double> eta(g, 1, Subset::Full);
  std::vector<double> re_samples;
  Cplx<double> sum{};
  for (int hit = 0; hit < n_hits; ++hit) {
    fill_z2_noise(eta, seed, hit);
    const auto s = stochastic_trace_sample(solver, gamma, eta);
    sum += s;
    re_samples.push_back(s.re);
  }
  res.samples = n_hits;
  res.estimate = Cplx<double>(1.0 / n_hits) * sum;
  if (n_hits > 1) {
    double var = 0;
    for (double v : re_samples)
      var += (v - res.estimate.re) * (v - res.estimate.re);
    var /= static_cast<double>(n_hits - 1);
    res.error = std::sqrt(var / n_hits);
  }
  return res;
}

Cplx<double> exact_trace(DwfSolver& solver, const SpinMat& gamma) {
  const auto g = solver.op().geom_ptr();
  SpinorField<double> unit(g, 1, Subset::Full);
  Cplx<double> acc{};
  for (std::int64_t i = 0; i < g->volume(); ++i)
    for (int r = 0; r < kNs; ++r)
      for (int c = 0; c < kNc; ++c) {
        unit.zero();
        Spinor<double> s;
        s[r][c] = {1.0, 0.0};
        unit.store(0, i, s);
        const auto q = solve_4d(solver, unit);
        // Diagonal element of Gamma D^{-1} at (i, r, c).
        const auto col = q.load(0, i);
        for (int k = 0; k < kNs; ++k) acc += gamma(r, k) * col[k][c];
      }
  return acc;
}

}  // namespace femto::core
