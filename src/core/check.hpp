#pragma once
// femtocheck invariant layer: checked-build assertions.
//
// FEMTO_ASSERT / FEMTO_CHECK compile to real tests only when the build
// defines FEMTO_CHECKED (the `checked` CMake preset / -DFEMTO_CHECKED=ON).
// In normal builds the condition is parsed but never evaluated, so checks
// can sit on hot paths (field accessors, neighbour lookups) at zero cost.
//
//   FEMTO_ASSERT(cond)       -- hot-path invariant, expression-only message
//   FEMTO_CHECK(cond, msg)   -- invariant with an explanatory message
//
// A failed check prints file:line, the expression, and the message, then
// aborts: checked builds fail fast and loudly instead of feeding corrupt
// indices or non-finite residuals into a fit.  See DESIGN.md §8.
//
// FEMTO_GUARDED_BY(mu) is the lock-discipline annotation: it expands to
// nothing at compile time, but femtolint's guarded-by pass verifies that an
// annotated member is only touched inside methods that visibly take `mu`,
// and its mutex-annotate pass requires every mutex-owning class to annotate
// (or const/atomic-qualify) its shared mutable members.  See DESIGN.md §9.
//
// FEMTO_NONDET_OK(reason) is the determinism annotation (DESIGN.md §13):
// placed inside a function body it declares that the nondeterminism sources
// in THAT function (clock reads, env reads, thread ids, pointer hashing)
// are observational only and can never reach numerics.  femtolint's
// nondet-in-kernel pass treats the function as determinism-clean; without
// the blessing, any such source reachable from a kernel-launching call
// chain is a finding.
//
// FEMTO_BLOCKING_OK(reason) and FEMTO_PROTOCOL_OK(reason) are the
// concurrency annotations (DESIGN.md §14).  BLOCKING_OK, placed inside a
// function body, declares that the blocking operations in THAT function
// (condition-variable waits, joins, future gets, pool launches, femtocomm
// calls) are safe to reach while a lockset is non-empty — femtolint's
// blocking-call-under-lock pass then skips the function.  PROTOCOL_OK
// declares that the function's send/recv ordering is a deliberately
// asymmetric protocol step (e.g. the gather side of a gather-scatter
// allreduce) and exempts it from the comm-protocol ordering rules.  Both
// reasons are audit trail: say WHY the hang the rule guards against cannot
// happen here.

#include <atomic>
#include <cstdio>
#include <cstdlib>

// Lock-discipline annotation, enforced statically by femtolint (it never
// reaches the compiler as anything but whitespace).  Placed after the
// member name: `int count_ FEMTO_GUARDED_BY(mu_) = 0;`
#define FEMTO_GUARDED_BY(mu)

// Determinism blessing, enforced statically by femtolint (expands to
// nothing).  The reason is part of the audit trail the same way a
// `femtolint: allow` comment is: say WHY the nondeterminism cannot alter
// any number a run produces.  First statement of the function it blesses:
//   FEMTO_NONDET_OK("telemetry-only wall clock; feeds timers, never data");
#define FEMTO_NONDET_OK(reason)

// Concurrency blessings, enforced statically by femtolint (both expand to
// nothing).  First statement of the function they bless:
//   FEMTO_BLOCKING_OK("lockset is a leaf mutex no other thread's wait
//                      chain can hold");
//   FEMTO_PROTOCOL_OK("root gathers before scattering; non-roots send
//                      unconditionally first, so the recv always completes");
#define FEMTO_BLOCKING_OK(reason)
#define FEMTO_PROTOCOL_OK(reason)

namespace femto::check {

// Last-gasp observer for failed checks: runs after the diagnostic prints
// and before abort().  The femtoscope flight recorder (obs/blackbox.hpp)
// registers here to dump spans/metrics/queue state -- check sits at the
// bottom of the layer DAG, so the hook is how upper layers observe a
// failure without check depending on them.  The hook must not return
// control flow to the caller's invariants: fail() still aborts whatever
// it does.
using FailHook = void (*)(const char* file, int line, const char* expr,
                          const char* msg);

namespace detail {
inline std::atomic<FailHook>& fail_hook() {
  static std::atomic<FailHook> hook{nullptr};
  return hook;
}
}  // namespace detail

inline void set_fail_hook(FailHook hook) {
  detail::fail_hook().store(hook, std::memory_order_release);
}

[[noreturn]] inline void fail(const char* file, int line, const char* expr,
                              const char* msg) {
  std::fprintf(stderr, "FEMTO_CHECK failed: %s:%d: (%s)%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::fflush(stderr);
  // The diagnostic is already out: a hook that itself crashes can only
  // lose the dump, never the message.
  if (FailHook hook = detail::fail_hook().load(std::memory_order_acquire))
    hook(file, line, expr, msg);
  std::abort();
}

}  // namespace femto::check

#if defined(FEMTO_CHECKED)
#define FEMTO_CHECKED_ENABLED 1
#define FEMTO_ASSERT(cond)                                       \
  do {                                                           \
    if (!(cond)) ::femto::check::fail(__FILE__, __LINE__, #cond, ""); \
  } while (0)
#define FEMTO_CHECK(cond, msg)                                     \
  do {                                                             \
    if (!(cond)) ::femto::check::fail(__FILE__, __LINE__, #cond, msg); \
  } while (0)
#else
#define FEMTO_CHECKED_ENABLED 0
// The condition still has to parse (catching bit-rot in the checks
// themselves) but is never evaluated at run time.
#define FEMTO_ASSERT(cond) \
  do {                     \
    if (false) {           \
      (void)(cond);        \
    }                      \
  } while (0)
#define FEMTO_CHECK(cond, msg) \
  do {                         \
    if (false) {               \
      (void)(cond);            \
      (void)(msg);             \
    }                          \
  } while (0)
#endif
