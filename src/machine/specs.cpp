#include "machine/specs.hpp"

#include <iomanip>
#include <sstream>

namespace femto::machine {

MachineSpec titan() {
  MachineSpec m;
  m.name = "Titan";
  m.nodes = 18688;
  m.gpus_per_node = 1;
  m.cpu = "AMD Opteron";
  m.gpu = "NVIDIA K20X";
  m.fp32_tflops_node = 4.0;
  m.gpu_bw_node_gbs = 250.0;
  m.cpu_gpu_bw_gbs = 6.0;
  m.interconnect = "Cray Gemini (~8 GB/s)";
  m.nic_gbs = 8.0;
  m.nic_latency_us = 2.5;
  m.nvlink_gbs = 0.0;  // pre-NVLink: peer traffic crosses the host
  m.eff_bw_per_gpu_gbs = 139.0;  // paper S VII calibration point
  m.bw_sat_sites5 = 2e5;         // small GPU saturates early
  m.allreduce_alpha_us = 35.0;   // Gemini collectives
  m.mpi = "Cray MPICH 7.6.3";
  m.cuda = "7.5.18";
  m.gcc = "4.9.3";
  return m;
}

MachineSpec ray() {
  MachineSpec m;
  m.name = "Ray";
  m.nodes = 54;
  m.gpus_per_node = 4;
  m.cpu = "IBM POWER8";
  m.gpu = "NVIDIA P100";
  m.fp32_tflops_node = 44.0;
  m.gpu_bw_node_gbs = 2880.0;
  m.cpu_gpu_bw_gbs = 20.0;
  m.interconnect = "Mellanox IB 2xEDR";
  m.nic_gbs = 23.0;
  m.nic_latency_us = 1.5;
  m.nvlink_gbs = 40.0;
  m.eff_bw_per_gpu_gbs = 516.0;  // paper S VII calibration point
  m.bw_sat_sites5 = 8e5;
  m.allreduce_alpha_us = 20.0;
  m.mpi = "Spectrum 2017.04.03";
  m.cuda = "9.0.176";
  m.gcc = "4.9.3";
  return m;
}

MachineSpec sierra() {
  MachineSpec m;
  m.name = "Sierra";
  m.nodes = 4200;
  m.gpus_per_node = 4;
  m.cpu = "IBM POWER9";
  m.gpu = "NVIDIA V100";
  m.fp32_tflops_node = 60.0;
  m.gpu_bw_node_gbs = 3600.0;
  m.cpu_gpu_bw_gbs = 75.0;
  m.interconnect = "Mellanox IB 2xEDR";
  m.nic_gbs = 23.0;
  m.nic_latency_us = 1.3;
  m.nvlink_gbs = 75.0;
  m.eff_bw_per_gpu_gbs = 975.0;  // paper S VII calibration point
  m.bw_sat_sites5 = 1.2e6;       // V100 needs a large local volume
  m.allreduce_alpha_us = 20.0;
  m.mpi = "MVAPICH2 2.3";
  m.cuda = "9.2.148";
  m.gcc = "4.9.3";
  return m;
}

MachineSpec summit() {
  MachineSpec m;
  m.name = "Summit";
  m.nodes = 4600;
  m.gpus_per_node = 6;
  m.cpu = "IBM POWER9";
  m.gpu = "NVIDIA V100";
  m.fp32_tflops_node = 90.0;
  m.gpu_bw_node_gbs = 5400.0;
  m.cpu_gpu_bw_gbs = 50.0;
  m.interconnect = "Mellanox IB 2xEDR";
  m.nic_gbs = 23.0;
  m.nic_latency_us = 1.3;
  m.nvlink_gbs = 50.0;
  // Same V100 silicon as Sierra: same per-GPU effective bandwidth.
  m.eff_bw_per_gpu_gbs = 975.0;
  m.bw_sat_sites5 = 1.2e6;
  m.allreduce_alpha_us = 20.0;
  m.mpi = "Spectrum 2018.01.10";
  m.cuda = "9.1.85";
  m.gcc = "4.8.5";
  return m;
}

std::vector<MachineSpec> all_machines() {
  return {titan(), ray(), sierra(), summit()};
}

std::string format_table2() {
  const auto machines = all_machines();
  std::ostringstream os;
  auto row = [&](const std::string& label, auto getter) {
    os << std::left << std::setw(22) << label;
    for (const auto& m : machines)
      os << std::setw(16) << getter(m);
    os << "\n";
  };
  row("Attribute", [](const MachineSpec& m) { return m.name; });
  row("nodes", [](const MachineSpec& m) { return std::to_string(m.nodes); });
  row("GPUs / node",
      [](const MachineSpec& m) { return std::to_string(m.gpus_per_node); });
  row("CPU", [](const MachineSpec& m) { return m.cpu; });
  row("GPU", [](const MachineSpec& m) { return m.gpu; });
  row("FP32 TFLOPS / node", [](const MachineSpec& m) {
    std::ostringstream v;
    v << m.fp32_tflops_node;
    return v.str();
  });
  row("GPU bw / node GB/s", [](const MachineSpec& m) {
    std::ostringstream v;
    v << m.gpu_bw_node_gbs;
    return v.str();
  });
  row("CPU-GPU bw GB/s", [](const MachineSpec& m) {
    std::ostringstream v;
    v << m.cpu_gpu_bw_gbs;
    return v.str();
  });
  row("Interconnect", [](const MachineSpec& m) { return m.interconnect; });
  row("MPI", [](const MachineSpec& m) { return m.mpi; });
  row("CUDA toolkit", [](const MachineSpec& m) { return m.cuda; });
  row("GCC", [](const MachineSpec& m) { return m.gcc; });
  row("eff GB/s per GPU", [](const MachineSpec& m) {
    std::ostringstream v;
    v << m.eff_bw_per_gpu_gbs;
    return v.str();
  });
  return os.str();
}

}  // namespace femto::machine
