#pragma once
// Analytic performance model of the mixed-precision CG solver on the
// Table II machines.  This is the substitution for CORAL-scale hardware
// (DESIGN.md): the kernel characteristics (flops per 5D site, arithmetic
// intensity, halo volume) are taken from the real implementation, and the
// machine side uses spec-sheet + paper-calibrated constants.
//
// Structure per "GPU":
//   compute time  = local bytes / effective bandwidth            (roofline)
//   comm time     = halo bytes / policy-weighted link bandwidth
//                   + per-message latency                        (alpha-beta)
//   iteration     = max(interior compute, comm) + surface compute (overlap)
//
// Shapes this reproduces: strong-scaling rollover as the surface-to-volume
// ratio grows (Fig. 3/4), the efficiency cliff past ~2000 GPUs on the
// 96^3x144 problem (Fig. 4), and the policy/latency sensitivity that the
// communication autotuner exploits.

#include <array>
#include <string>
#include <vector>

#include "machine/specs.hpp"

namespace femto::machine {

/// The lattice problem being solved.
struct LatticeProblem {
  std::array<int, 4> extents{48, 48, 48, 64};
  int l5 = 12;
  /// Conventional flops per 5D site per operator application (paper S VI:
  /// 10,000-12,000 for the red-black Domain-Wall stencil).
  double flops_per_site5 = 11000.0;
  /// Arithmetic intensity of the 16-bit-storage CG (paper: 1.8-1.9).
  double arithmetic_intensity = 1.9;
  /// Bytes exchanged per 4D halo site per slice: a projected half spinor
  /// (12 reals) in 16-bit storage, both directions.
  double halo_bytes_per_site5 = 12 * 2 * 2;

  std::int64_t volume4() const {
    return std::int64_t(extents[0]) * extents[1] * extents[2] * extents[3];
  }
  std::int64_t volume5() const { return volume4() * l5; }
};

/// Communication-policy efficiency factors applied to the link bandwidth
/// (the machine-model counterpart of comm::CommPolicy; the autotuner picks
/// the best available on a machine).
struct CommPolicyModel {
  std::string name;
  double bandwidth_efficiency = 1.0;  ///< fraction of link bw achieved
  double latency_factor = 1.0;        ///< multiplier on per-message latency
  /// Fraction of the communication that can hide behind the interior
  /// stencil.  Host-staged transfers force CPU-GPU synchronisation, so a
  /// large serial remainder survives; direct RDMA overlaps almost fully
  /// (this is exactly why the paper removes the CPU from the path).
  double overlap_efficiency = 1.0;
  bool needs_gdr = false;             ///< requires GPU Direct RDMA support
};

std::vector<CommPolicyModel> comm_policies();

/// One point of a scaling curve.
struct PerfPoint {
  int gpus = 0;
  double tflops = 0.0;        ///< sustained solver TFLOPS (all GPUs)
  double pct_peak = 0.0;      ///< paper's %-of-SP-peak metric (1.675x)
  double bw_per_gpu_gbs = 0.0;
  double time_per_apply_s = 0.0;
  double surface_fraction = 0.0;
  std::string policy;         ///< tuned communication policy
  std::array<int, 4> grid{1, 1, 1, 1};
};

class SolverPerfModel {
 public:
  /// @p gdr_available: whether GPU Direct RDMA works (the paper notes
  /// Sierra/Summit did NOT support it at submission time).
  SolverPerfModel(MachineSpec machine, LatticeProblem problem,
                  bool gdr_available = false);

  const MachineSpec& machine() const { return machine_; }
  const LatticeProblem& problem() const { return problem_; }

  /// Best 4D process-grid decomposition of n_gpus (minimum halo surface).
  std::array<int, 4> best_grid(int n_gpus) const;

  /// Model one strong-scaling point, autotuning the communication policy
  /// (evaluates every available policy, keeps the fastest — the model
  /// counterpart of the paper's communication autotuner).
  PerfPoint strong_scaling_point(int n_gpus) const;

  /// Same point with a FIXED policy (for the policy-ablation bench).
  PerfPoint point_with_policy(int n_gpus, const CommPolicyModel& p) const;

  /// The paper's conversion from solver flops to percent of peak:
  /// non-FMA mix and double-precision reductions scale raw flops by 1.675
  /// and the result is quoted against single-precision peak.
  static constexpr double kPeakScale = 1.675;

 private:
  double apply_time_seconds(int n_gpus, const std::array<int, 4>& grid,
                            const CommPolicyModel& p,
                            double* surface_fraction) const;

  MachineSpec machine_;
  LatticeProblem problem_;
  bool gdr_available_;
};

}  // namespace femto::machine
