#include "machine/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace femto::machine {

std::vector<CommPolicyModel> comm_policies() {
  return {
      // Staged through host memory: DMA to CPU, MPI on the CPU.  Pays the
      // CPU-GPU hop, extra synchronisation latency, and poor overlap.
      {"host-staged", 0.55, 2.0, 0.40, false},
      // Zero-copy reads/writes over PCIe for the MPI buffers.
      {"zero-copy", 0.75, 1.3, 0.75, false},
      // Direct GPU<->NIC transfers: full link efficiency, lowest latency,
      // near-perfect overlap with the interior kernel.
      {"gpu-direct-rdma", 0.95, 1.0, 0.95, true},
  };
}

SolverPerfModel::SolverPerfModel(MachineSpec machine, LatticeProblem problem,
                                 bool gdr_available)
    : machine_(std::move(machine)),
      problem_(problem),
      gdr_available_(gdr_available) {}

std::array<int, 4> SolverPerfModel::best_grid(int n_gpus) const {
  // Enumerate factorizations px*py*pz*pt = n_gpus, keeping the one that
  // minimises halo sites.  Exactly-dividing decompositions are preferred;
  // if none exists (e.g. 160 ranks on 48^3x64), fall back to an uneven
  // decomposition the way production codes pad local volumes.
  std::array<int, 4> best{1, 1, 1, n_gpus};
  double best_surface = std::numeric_limits<double>::infinity();
  const auto& e = problem_.extents;

  for (int pass = 0; pass < 2 && !std::isfinite(best_surface); ++pass) {
    const bool exact = pass == 0;
    auto divisible = [&](int extent, int p) {
      if (extent / p < 2) return false;
      return !exact || extent % p == 0;
    };
    for (int px = 1; px <= n_gpus; ++px) {
      if (n_gpus % px || !divisible(e[0], px)) continue;
      const int nyzt = n_gpus / px;
      for (int py = 1; py <= nyzt; ++py) {
        if (nyzt % py || !divisible(e[1], py)) continue;
        const int nzt = nyzt / py;
        for (int pz = 1; pz <= nzt; ++pz) {
          if (nzt % pz || !divisible(e[2], pz)) continue;
          const int pt = nzt / pz;
          if (!divisible(e[3], pt)) continue;
          const std::array<int, 4> grid{px, py, pz, pt};
          const double lv =
              static_cast<double>(problem_.volume4()) / n_gpus;
          double surface = 0.0;
          for (int mu = 0; mu < 4; ++mu) {
            const double local =
                static_cast<double>(e[static_cast<std::size_t>(mu)]) /
                grid[static_cast<std::size_t>(mu)];
            if (grid[static_cast<std::size_t>(mu)] > 1)
              surface += 2.0 * lv / local;
          }
          if (surface < best_surface) {
            best_surface = surface;
            best = grid;
          }
        }
      }
    }
  }
  return best;
}

double SolverPerfModel::apply_time_seconds(
    int n_gpus, const std::array<int, 4>& grid, const CommPolicyModel& p,
    double* surface_fraction) const {
  const auto& e = problem_.extents;
  const double local_sites5 =
      static_cast<double>(problem_.volume5()) / n_gpus;

  // Roofline compute time: the stencil is bandwidth bound.  The GPU only
  // reaches its effective bandwidth given enough parallel work; a shrinking
  // local volume starves it (the strong-scaling efficiency cliff).
  const double occupancy =
      local_sites5 / (local_sites5 + machine_.bw_sat_sites5);
  const double local_bytes =
      local_sites5 * problem_.flops_per_site5 / problem_.arithmetic_intensity;
  const double t_compute =
      local_bytes / (machine_.eff_bw_per_gpu_gbs * 1e9 * occupancy);

  // Halo traffic per split dimension, weighted by where the neighbour
  // lives: ranks are laid out x-fastest and packed gpn-per-node, so a
  // neighbour at rank stride s is on the same node with probability
  // ~max(0, 1 - s/gpn).  On-node traffic rides NVLink (or the host link
  // on pre-NVLink machines); off-node traffic shares the NIC among the
  // node's GPUs.
  const int gpn = machine_.gpus_per_node;
  const double intra_bw =
      (machine_.nvlink_gbs > 0 ? machine_.nvlink_gbs
                               : machine_.cpu_gpu_bw_gbs) *
      1e9;
  const double inter_bw =
      machine_.nic_gbs / gpn * 1e9 * p.bandwidth_efficiency;

  const double local_sites4 = static_cast<double>(problem_.volume4()) /
                              n_gpus;
  double halo_sites5 = 0.0;
  double intra_bytes = 0.0, inter_bytes = 0.0;
  int n_messages = 0;
  int stride = 1;
  for (int mu = 0; mu < 4; ++mu) {
    const int pmu = grid[static_cast<std::size_t>(mu)];
    if (pmu > 1) {
      const double local =
          static_cast<double>(e[static_cast<std::size_t>(mu)]) / pmu;
      const double face5 = 2.0 * (local_sites4 / local) * problem_.l5;
      halo_sites5 += face5;
      const double bytes = face5 * problem_.halo_bytes_per_site5;
      const double intra_frac =
          std::max(0.0, 1.0 - static_cast<double>(stride) / gpn);
      intra_bytes += bytes * intra_frac;
      inter_bytes += bytes * (1.0 - intra_frac);
      n_messages += 2;
    }
    stride *= pmu;
  }

  double t_comm = 0.0;
  if (halo_sites5 > 0.0) {
    t_comm = inter_bytes / inter_bw + intra_bytes / intra_bw +
             n_messages * machine_.nic_latency_us * 1e-6 * p.latency_factor;
  }

  // Surface fraction of the local volume (the part that cannot start
  // until halos arrive).
  double sfrac = std::min(1.0, halo_sites5 / (2.0 * local_sites5));
  if (surface_fraction) *surface_fraction = sfrac;

  // Global reductions (CG alpha/beta): an allreduce whose latency grows
  // with the tree depth; cannot be overlapped with the stencil.
  double t_reduce = 0.0;
  if (n_gpus > 1)
    t_reduce = machine_.allreduce_alpha_us * 1e-6 *
               std::log2(static_cast<double>(n_gpus));

  // Overlap interior compute with the overlappable share of the
  // communication; the rest (CPU synchronisation, staging) is serial.
  const double t_interior = t_compute * (1.0 - sfrac);
  const double t_exterior = t_compute * sfrac;
  const double t_comm_hidden = t_comm * p.overlap_efficiency;
  const double t_comm_serial = t_comm * (1.0 - p.overlap_efficiency);
  return std::max(t_interior, t_comm_hidden) + t_comm_serial + t_exterior +
         t_reduce;
}

PerfPoint SolverPerfModel::point_with_policy(
    int n_gpus, const CommPolicyModel& p) const {
  PerfPoint pt;
  pt.gpus = n_gpus;
  pt.grid = best_grid(n_gpus);
  pt.policy = p.name;
  double sfrac = 0.0;
  pt.time_per_apply_s = apply_time_seconds(n_gpus, pt.grid, p, &sfrac);
  pt.surface_fraction = sfrac;
  const double flops =
      static_cast<double>(problem_.volume5()) * problem_.flops_per_site5;
  pt.tflops = flops / pt.time_per_apply_s / 1e12;
  const double sp_peak_tflops =
      machine_.fp32_tflops_gpu() * static_cast<double>(n_gpus);
  pt.pct_peak = pt.tflops * kPeakScale / sp_peak_tflops * 100.0;
  pt.bw_per_gpu_gbs =
      pt.tflops * 1e12 / n_gpus / problem_.arithmetic_intensity / 1e9;
  return pt;
}

PerfPoint SolverPerfModel::strong_scaling_point(int n_gpus) const {
  PerfPoint best;
  best.time_per_apply_s = std::numeric_limits<double>::infinity();
  for (const auto& p : comm_policies()) {
    if (p.needs_gdr && !gdr_available_) continue;
    const PerfPoint pt = point_with_policy(n_gpus, p);
    if (pt.time_per_apply_s < best.time_per_apply_s) best = pt;
  }
  return best;
}

}  // namespace femto::machine
