#pragma once
// Machine descriptions from Table II of the paper (Titan, Ray, Sierra,
// Summit), plus the calibrated effective-bandwidth figures the paper
// reports in S VII: converting the sustained solver performance at the
// most efficient point to bandwidth per GPU gives 139, 516 and 975 GB/s
// for Titan, Ray and Sierra — above spec sheet bandwidth for Sierra
// because of the V100's larger caches ("amplifying the effective
// bandwidth").

#include <string>
#include <vector>

namespace femto::machine {

struct MachineSpec {
  std::string name;
  int nodes = 0;
  int gpus_per_node = 1;
  std::string cpu;
  std::string gpu;
  double fp32_tflops_node = 0.0;  ///< Table II "FP32 TFLOPS / node"
  double gpu_bw_node_gbs = 0.0;   ///< Table II "GPU bw / node GB/s"
  double cpu_gpu_bw_gbs = 0.0;    ///< Table II "CPU-GPU bw GB/s"
  std::string interconnect;
  double nic_gbs = 0.0;           ///< injection bandwidth per node
  double nic_latency_us = 1.5;
  double nvlink_gbs = 0.0;        ///< peer GPU-GPU bandwidth (0: via host)
  /// Calibrated sustained effective bandwidth per GPU at the most
  /// efficient point (paper S VII); the cache amplification is this value
  /// relative to the per-GPU spec bandwidth.
  double eff_bw_per_gpu_gbs = 0.0;
  /// Local 5D sites at which the GPU reaches half its effective
  /// bandwidth: below this the device starves for parallelism (the cause
  /// of the strong-scaling efficiency cliff; larger GPUs need more work).
  double bw_sat_sites5 = 1e6;
  /// Per-log2(n) cost of the CG's global reductions (allreduce), per
  /// operator application.
  double allreduce_alpha_us = 20.0;
  std::string mpi;
  std::string cuda;
  std::string gcc;

  double fp32_tflops_gpu() const { return fp32_tflops_node / gpus_per_node; }
  double spec_bw_per_gpu_gbs() const {
    return gpu_bw_node_gbs / gpus_per_node;
  }
  /// Cache amplification factor (>1 when caches beat the spec sheet).
  double bw_amplification() const {
    return eff_bw_per_gpu_gbs / spec_bw_per_gpu_gbs();
  }
};

MachineSpec titan();
MachineSpec ray();
MachineSpec sierra();
MachineSpec summit();

std::vector<MachineSpec> all_machines();

/// Table II as formatted text (the bench for Table II prints this).
std::string format_table2();

}  // namespace femto::machine
