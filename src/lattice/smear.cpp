#include "lattice/smear.hpp"

#include <cmath>

#include "lattice/flops.hpp"
#include "lattice/gauge.hpp"
#include "parallel/thread_pool.hpp"

namespace femto {

void ape_smear_step(GaugeField<double>& u, double alpha) {
  // Staples read the OLD field; write into a fresh one.
  GaugeField<double> out(u.geom_ptr());
  const auto& geom = u.geom();
  par::parallel_for(0, static_cast<std::size_t>(geom.volume()),
                    [&](std::size_t s) {
                      const auto site = static_cast<std::int64_t>(s);
                      for (int mu = 0; mu < 4; ++mu) {
                        ColorMat<double> m = u.load(mu, site);
                        m *= 1.0 - alpha;
                        ColorMat<double> st = staple(u, mu, site);
                        // staple() returns the sum oriented so that
                        // U * staple closes plaquettes; the APE sum wants
                        // the hermitian partner going the same way as U.
                        st *= alpha / 6.0;
                        m += adj(st);
                        out.store(mu, site, project_su3(m));
                      }
                    });
  // Matmul-dominated cost model: staple sum + ~3 matmuls-worth of scale /
  // add / SU(3) projection per link.  Traffic: read u, write out.
  flops::add(geom.volume() * 4 *
             (flops::kStapleFlops + 3 * flops::kSu3MatmulFlops));
  flops::add_bytes(2 * u.bytes());
  u = std::move(out);
}

GaugeField<double> ape_smear(const GaugeField<double>& u,
                             const ApeParams& params) {
  GaugeField<double> s = u;
  for (int it = 0; it < params.iterations; ++it)
    ape_smear_step(s, params.alpha);
  return s;
}

void spatial_hop(SpinorField<double>& out, const GaugeField<double>& u,
                 const SpinorField<double>& in) {
  assert(in.subset() == Subset::Full && out.subset() == Subset::Full);
  assert(in.l5() == 1 && out.l5() == 1);
  const auto& geom = u.geom();
  par::parallel_for(0, static_cast<std::size_t>(geom.volume()),
                    [&](std::size_t s) {
                      const auto site = static_cast<std::int64_t>(s);
                      Spinor<double> acc;
                      for (int i = 0; i < 3; ++i) {  // spatial dirs only
                        const auto fwd = geom.site_fwd(site, i);
                        const auto link_f = u.load(i, site);
                        const auto pf = in.load(0, fwd);
                        for (int sp = 0; sp < kNs; ++sp)
                          acc[sp] += link_f * pf[sp];
                        const auto bwd = geom.site_bwd(site, i);
                        const auto link_b = u.load(i, bwd);
                        const auto pb = in.load(0, bwd);
                        for (int sp = 0; sp < kNs; ++sp)
                          acc[sp] += adj_mul(link_b, pb[sp]);
                      }
                      out.store(0, site, acc);
                    });
  // 3 spatial dirs x 2 sides x 4 spins of SU(3) mat-vec plus the spinor
  // accumulates.  Traffic: read in + u, write out.
  flops::add(geom.volume() *
             (3 * 2 * (4 * flops::kSu3MatvecFlops + kSpinorReals)));
  flops::add_bytes(in.bytes() + u.bytes() + out.bytes());
}

void wuppertal_smear(SpinorField<double>& psi, const GaugeField<double>& u,
                     const WuppertalParams& params) {
  SpinorField<double> hop(psi.geom_ptr(), 1, Subset::Full);
  const double norm = 1.0 / (1.0 + 6.0 * params.alpha);
  for (int it = 0; it < params.iterations; ++it) {
    spatial_hop(hop, u, psi);
    // psi = (psi + alpha * hop) / (1 + 6 alpha): normalised so a constant
    // field on a unit gauge background is a fixed point.
    double* pd = psi.data();
    const double* hd = hop.data();
    for (std::int64_t k = 0; k < psi.reals(); ++k)
      pd[k] = norm * (pd[k] + params.alpha * hd[k]);
  }
}

double smearing_radius(const SpinorField<double>& psi, const Coord& center) {
  const auto& geom = psi.geom();
  double w = 0, wr2 = 0;
  for (std::int64_t s = 0; s < geom.volume(); ++s) {
    const auto x = geom.coord(s);
    if (x[3] != center[3]) continue;
    double r2 = 0;
    for (int i = 0; i < 3; ++i) {
      int d = std::abs(x[i] - center[i]);
      d = std::min(d, geom.extent(i) - d);  // periodic distance
      r2 += static_cast<double>(d) * d;
    }
    const auto p = psi.load(0, s);
    double a2 = 0;
    for (int sp = 0; sp < kNs; ++sp) a2 += norm2(p[sp]);
    w += a2;
    wr2 += a2 * r2;
  }
  return w > 0 ? std::sqrt(wr2 / w) : 0.0;
}

}  // namespace femto
