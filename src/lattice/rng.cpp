#include "lattice/rng.hpp"

#include <cmath>

namespace femto {

double Xoshiro256::gaussian() {
  // Box-Muller; uses two uniforms per normal.
  const double u1 = uniform_pos();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace femto
