#pragma once
// Field containers: 5D (domain-wall) spinor fields and 4D gauge fields.
//
// Storage is a flat array of reals in site-major order,
//     [s5][site][spin][color][re/im]
// where `site` is the parity-ordered 4D index from Geometry.  A field can
// cover the full lattice or a single parity (the working set of the
// red-black preconditioned solver).  4D fields are the L5 == 1 case.

#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/check.hpp"
#include "lattice/geometry.hpp"
#include "lattice/rng.hpp"
#include "lattice/spinor.hpp"
#include "lattice/su3.hpp"
#include "simd/aligned.hpp"

namespace femto {

/// Which 4D sites a field covers.
enum class Subset { Full, Even, Odd };

inline const char* to_string(Subset s) {
  switch (s) {
    case Subset::Full: return "full";
    case Subset::Even: return "even";
    default: return "odd";
  }
}

/// Number of real degrees of freedom per (site, s5): 4 spins x 3 colors x 2.
inline constexpr int kSpinorReals = kNs * kNc * 2;

/// A spinor field over (a parity subset of) the 4D lattice, replicated L5
/// times in the fifth dimension.  L5 == 1 gives an ordinary 4D field.
template <typename T>
class SpinorField {
 public:
  SpinorField(std::shared_ptr<const Geometry> geom, int l5,
              Subset subset = Subset::Full)
      : geom_(std::move(geom)), l5_(l5), subset_(subset) {
    assert(l5 >= 1);
    data_.resize(static_cast<size_t>(reals()));
  }

  const Geometry& geom() const { return *geom_; }
  std::shared_ptr<const Geometry> geom_ptr() const { return geom_; }
  int l5() const { return l5_; }
  Subset subset() const { return subset_; }

  /// Number of 4D sites covered.
  std::int64_t sites() const {
    return subset_ == Subset::Full ? geom_->volume() : geom_->half_volume();
  }
  /// Total 5D sites.
  std::int64_t sites5() const { return sites() * l5_; }
  /// Total real degrees of freedom.
  std::int64_t reals() const { return sites5() * kSpinorReals; }
  /// Bytes of field data.
  std::int64_t bytes() const {
    return reals() * static_cast<std::int64_t>(sizeof(T));
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Offset (in reals) of the spinor at 5th-dim slice @p s and 4D site
  /// index @p i (index within this field's subset).
  std::int64_t offset(int s, std::int64_t i) const {
    FEMTO_ASSERT(s >= 0 && s < l5_);
    FEMTO_ASSERT(i >= 0 && i < sites());
    return (std::int64_t(s) * sites() + i) * kSpinorReals;
  }

  Spinor<T> load(int s, std::int64_t i) const {
    Spinor<T> p;
    const T* q = data_.data() + offset(s, i);
    for (int sp = 0; sp < kNs; ++sp)
      for (int c = 0; c < kNc; ++c) {
        p[sp][c] = {q[0], q[1]};
        q += 2;
      }
    return p;
  }

  void store(int s, std::int64_t i, const Spinor<T>& p) {
    T* q = data_.data() + offset(s, i);
    for (int sp = 0; sp < kNs; ++sp)
      for (int c = 0; c < kNc; ++c) {
        q[0] = p[sp][c].re;
        q[1] = p[sp][c].im;
        q += 2;
      }
  }

  void zero() { std::fill(data_.begin(), data_.end(), T(0)); }

  /// Fill every component with unit Gaussians, reproducibly per global 5D
  /// site (independent of decomposition and thread count).
  void gaussian(std::uint64_t seed) {
    const std::int64_t base =
        subset_ == Subset::Odd ? geom_->half_volume() : 0;
    for (int s = 0; s < l5_; ++s)
      for (std::int64_t i = 0; i < sites(); ++i) {
        Xoshiro256 rng(seed, static_cast<std::uint64_t>(base + i),
                       static_cast<std::uint64_t>(s));
        T* q = data_.data() + offset(s, i);
        for (int k = 0; k < kSpinorReals; ++k)
          q[k] = static_cast<T>(rng.gaussian());
      }
  }

  /// Checks geometric compatibility with another field.
  template <typename U>
  bool compatible(const SpinorField<U>& o) const {
    return l5_ == o.l5() && subset_ == o.subset() &&
           geom_->volume() == o.geom().volume();
  }

 private:
  std::shared_ptr<const Geometry> geom_;
  int l5_;
  Subset subset_;
  // 64-byte aligned so vector loads never straddle a cache line.
  simd::aligned_vector<T> data_;
};

/// A non-owning view of a spinor field (or of one parity of a full field):
/// the spinor at (s5, i) lives at data + (s5 * stride + i) * kSpinorReals.
/// Kernels operate on views so that parity slices of full fields and
/// whole single-parity fields go through one code path.
template <typename T>
struct SpinorView {
  using value_type = std::remove_const_t<T>;

  T* data = nullptr;
  std::int64_t stride = 0;  ///< 4D sites between consecutive s5 slices
  std::int64_t sites = 0;   ///< 4D sites covered
  int l5 = 1;

  SpinorView() = default;
  SpinorView(T* d, std::int64_t st, std::int64_t si, int l)
      : data(d), stride(st), sites(si), l5(l) {}

  /// A mutable view converts implicitly to a const view.
  template <typename U = T,
            typename = std::enable_if_t<std::is_const_v<U>>>
  SpinorView(const SpinorView<value_type>& o)  // NOLINT(runtime/explicit)
      : data(o.data), stride(o.stride), sites(o.sites), l5(o.l5) {}

  std::int64_t offset(int s, std::int64_t i) const {
    FEMTO_ASSERT(s >= 0 && s < l5);
    FEMTO_ASSERT(i >= 0 && i < sites);
    return (std::int64_t(s) * stride + i) * kSpinorReals;
  }

  Spinor<value_type> load(int s, std::int64_t i) const {
    Spinor<value_type> p;
    const T* q = data + offset(s, i);
    for (int sp = 0; sp < kNs; ++sp)
      for (int c = 0; c < kNc; ++c) {
        p[sp][c] = {q[0], q[1]};
        q += 2;
      }
    return p;
  }

  void store(int s, std::int64_t i, const Spinor<value_type>& p) const {
    T* q = data + offset(s, i);
    for (int sp = 0; sp < kNs; ++sp)
      for (int c = 0; c < kNc; ++c) {
        q[0] = p[sp][c].re;
        q[1] = p[sp][c].im;
        q += 2;
      }
  }
};

template <typename T>
using ConstSpinorView = SpinorView<const T>;

/// View of a whole field.
template <typename T>
SpinorView<T> view(SpinorField<T>& f) {
  return {f.data(), f.sites(), f.sites(), f.l5()};
}
template <typename T>
ConstSpinorView<T> view(const SpinorField<T>& f) {
  return {f.data(), f.sites(), f.sites(), f.l5()};
}

/// Const view of a field (useful to pass a mutable workspace as an input).
template <typename T>
SpinorView<const T> cview(const SpinorField<T>& f) {
  return view(f);
}

/// View of one parity of a FULL field (par 0 = even, 1 = odd).
template <typename T>
SpinorView<T> parity_view(SpinorField<T>& f, int par) {
  assert(f.subset() == Subset::Full);
  return {f.data() + std::int64_t(par) * f.geom().half_volume() *
                         kSpinorReals,
          f.geom().volume(), f.geom().half_volume(), f.l5()};
}
template <typename T>
ConstSpinorView<T> parity_view(const SpinorField<T>& f, int par) {
  assert(f.subset() == Subset::Full);
  return {f.data() + std::int64_t(par) * f.geom().half_volume() *
                         kSpinorReals,
          f.geom().volume(), f.geom().half_volume(), f.l5()};
}

/// Number of reals per gauge link: 3x3 complex.
inline constexpr int kLinkReals = kNc * kNc * 2;

/// A gauge field: one SU(3) link per site and direction, over the full
/// lattice (both parities), parity-ordered like spinor fields.
template <typename T>
class GaugeField {
 public:
  explicit GaugeField(std::shared_ptr<const Geometry> geom)
      : geom_(std::move(geom)) {
    data_.resize(static_cast<size_t>(4 * geom_->volume() * kLinkReals));
  }

  const Geometry& geom() const { return *geom_; }
  std::shared_ptr<const Geometry> geom_ptr() const { return geom_; }

  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(T));
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::int64_t offset(int mu, std::int64_t site) const {
    FEMTO_ASSERT(mu >= 0 && mu < 4);
    FEMTO_ASSERT(site >= 0 && site < geom_->volume());
    return (std::int64_t(mu) * geom_->volume() + site) * kLinkReals;
  }

  ColorMat<T> load(int mu, std::int64_t site) const {
    ColorMat<T> u;
    const T* q = data_.data() + offset(mu, site);
    for (int i = 0; i < kNc * kNc; ++i) {
      u.m[static_cast<size_t>(i)] = {q[0], q[1]};
      q += 2;
    }
    return u;
  }

  void store(int mu, std::int64_t site, const ColorMat<T>& u) {
    T* q = data_.data() + offset(mu, site);
    for (int i = 0; i < kNc * kNc; ++i) {
      q[0] = u.m[static_cast<size_t>(i)].re;
      q[1] = u.m[static_cast<size_t>(i)].im;
      q += 2;
    }
  }

  /// Convert (e.g. double -> float) for mixed-precision operators.
  template <typename U>
  GaugeField<U> convert() const {
    GaugeField<U> out(geom_);
    for (size_t k = 0; k < data_.size(); ++k)
      out.data()[k] = static_cast<U>(data_[k]);
    return out;
  }

 private:
  std::shared_ptr<const Geometry> geom_;
  simd::aligned_vector<T> data_;
};

}  // namespace femto
