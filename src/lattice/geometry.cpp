#include "lattice/geometry.hpp"

#include <cassert>
#include <stdexcept>

namespace femto {

Geometry::Geometry(int lx, int ly, int lz, int lt)
    : dims_{lx, ly, lz, lt} {
  for (int mu = 0; mu < 4; ++mu) {
    if (dims_[static_cast<size_t>(mu)] < 2 ||
        dims_[static_cast<size_t>(mu)] % 2 != 0) {
      throw std::invalid_argument(
          "Geometry: every lattice extent must be even and >= 2");
    }
  }
  vol_ = std::int64_t(lx) * ly * lz * lt;
  volh_ = vol_ / 2;

  for (int par = 0; par < 2; ++par) {
    for (int mu = 0; mu < 4; ++mu) {
      fwd_[par][static_cast<size_t>(mu)].resize(static_cast<size_t>(volh_));
      bwd_[par][static_cast<size_t>(mu)].resize(static_cast<size_t>(volh_));
      sgn_fwd_[par][static_cast<size_t>(mu)].resize(
          static_cast<size_t>(volh_));
      sgn_bwd_[par][static_cast<size_t>(mu)].resize(
          static_cast<size_t>(volh_));
    }
  }

  // Walk all sites and fill tables.
  Coord x;
  for (x[3] = 0; x[3] < lt; ++x[3])
    for (x[2] = 0; x[2] < lz; ++x[2])
      for (x[1] = 0; x[1] < ly; ++x[1])
        for (x[0] = 0; x[0] < lx; ++x[0]) {
          const int par = parity(x);
          const std::int64_t cb = cb_index(x);
          for (int mu = 0; mu < 4; ++mu) {
            Coord xf = x;
            xf[static_cast<size_t>(mu)] =
                (x[static_cast<size_t>(mu)] + 1) % extent(mu);
            Coord xb = x;
            xb[static_cast<size_t>(mu)] =
                (x[static_cast<size_t>(mu)] - 1 + extent(mu)) % extent(mu);
            fwd_[par][static_cast<size_t>(mu)][static_cast<size_t>(cb)] =
                cb_index(xf);
            bwd_[par][static_cast<size_t>(mu)][static_cast<size_t>(cb)] =
                cb_index(xb);
            // Antiperiodic time boundary for fermions.
            const bool wrap_f =
                mu == 3 && x[static_cast<size_t>(mu)] == extent(mu) - 1;
            const bool wrap_b = mu == 3 && x[static_cast<size_t>(mu)] == 0;
            sgn_fwd_[par][static_cast<size_t>(mu)][static_cast<size_t>(cb)] =
                wrap_f ? -1.0f : 1.0f;
            sgn_bwd_[par][static_cast<size_t>(mu)][static_cast<size_t>(cb)] =
                wrap_b ? -1.0f : 1.0f;
          }
        }
}

std::int64_t Geometry::cb_index(const Coord& x) const {
  // Lexicographic rank among sites of the same parity: within each
  // (y,z,t) row of length Lx there are Lx/2 sites of each parity and the
  // x coordinate of a given parity advances by 2.
  const std::int64_t row =
      (std::int64_t(x[3]) * dims_[2] + x[2]) * dims_[1] + x[1];
  return row * (dims_[0] / 2) + x[0] / 2;
}

std::int64_t Geometry::index(const Coord& x) const {
  return std::int64_t(parity(x)) * volh_ + cb_index(x);
}

Coord Geometry::coord(std::int64_t site) const {
  const int par = site >= volh_ ? 1 : 0;
  std::int64_t cb = site - std::int64_t(par) * volh_;
  const int lxh = dims_[0] / 2;
  Coord x;
  const std::int64_t xh = cb % lxh;
  std::int64_t row = cb / lxh;
  x[1] = static_cast<int>(row % dims_[1]);
  row /= dims_[1];
  x[2] = static_cast<int>(row % dims_[2]);
  x[3] = static_cast<int>(row / dims_[2]);
  // Recover x from the half-index plus parity: x = 2*xh + ((y+z+t+par)&1).
  const int off = (x[1] + x[2] + x[3] + par) & 1;
  x[0] = static_cast<int>(2 * xh + off);
  assert(parity(x) == par);
  return x;
}

std::int64_t Geometry::site_fwd(std::int64_t site, int mu) const {
  FEMTO_ASSERT(site >= 0 && site < vol_);
  const int par = site >= volh_ ? 1 : 0;
  const std::int64_t cb = site - std::int64_t(par) * volh_;
  return std::int64_t(1 - par) * volh_ + neighbor_fwd(par, cb, mu);
}

std::int64_t Geometry::site_bwd(std::int64_t site, int mu) const {
  FEMTO_ASSERT(site >= 0 && site < vol_);
  const int par = site >= volh_ ? 1 : 0;
  const std::int64_t cb = site - std::int64_t(par) * volh_;
  return std::int64_t(1 - par) * volh_ + neighbor_bwd(par, cb, mu);
}

}  // namespace femto
