#include "lattice/flow.hpp"

#include <cmath>

#include "lattice/flops.hpp"
#include "lattice/gauge.hpp"
#include "lattice/observables.hpp"
#include "parallel/thread_pool.hpp"

namespace femto {

ColorMat<double> project_antihermitian_traceless(const ColorMat<double>& m) {
  ColorMat<double> a = m - adj(m);
  a *= 0.5;
  const auto tr = trace(a);
  const Cplx<double> third{tr.re / 3.0, tr.im / 3.0};
  for (int i = 0; i < kNc; ++i) a(i, i) -= third;
  return a;
}

ColorMat<double> su3_exp(const ColorMat<double>& m) {
  // Taylor series: for flow steps |eps * Z| << 1 this converges in a
  // handful of terms to machine precision; a final SU(3) projection
  // removes residual truncation non-unitarity.
  ColorMat<double> result = ColorMat<double>::identity();
  ColorMat<double> term = ColorMat<double>::identity();
  for (int k = 1; k <= 16; ++k) {
    term = term * m;
    term *= 1.0 / static_cast<double>(k);
    result += term;
    if (norm2(term) < 1e-30) break;
  }
  return project_su3(result);
}

void wilson_flow_step(GaugeField<double>& u, double epsilon) {
  // Staples read the pre-step field; write into a fresh copy.
  GaugeField<double> out(u.geom_ptr());
  const auto& geom = u.geom();
  par::parallel_for(0, static_cast<std::size_t>(geom.volume()),
                    [&](std::size_t s) {
                      const auto site = static_cast<std::int64_t>(s);
                      for (int mu = 0; mu < 4; ++mu) {
                        const auto link = u.load(mu, site);
                        const auto omega = link * staple(u, mu, site);
                        // Gradient direction: descending the Wilson
                        // action means rotating U toward the staple sum;
                        // the antihermitian projection of Omega with a
                        // MINUS sign does it (the action-decrease test
                        // pins the convention).
                        auto z = project_antihermitian_traceless(omega);
                        z *= -epsilon;
                        out.store(mu, site, su3_exp(z) * link);
                      }
                    });
  // Per link: staple sum, omega matmul, ~16-term Taylor exponential plus
  // projection (~20 matmuls-worth).  Traffic: read u, write out.
  flops::add(geom.volume() * 4 *
             (flops::kStapleFlops + 20 * flops::kSu3MatmulFlops));
  flops::add_bytes(2 * u.bytes());
  u = std::move(out);
}

std::vector<double> wilson_flow(GaugeField<double>& u,
                                const FlowParams& params) {
  std::vector<double> t2e;
  for (int k = 1; k <= params.steps; ++k) {
    wilson_flow_step(u, params.epsilon);
    const double t = params.epsilon * k;
    // E = (1/2) sum tr[F F^dag] per site = action_density / 2 with our
    // normalisation.
    t2e.push_back(t * t * 0.5 * action_density(u));
  }
  return t2e;
}

}  // namespace femto
