#pragma once
// BLAS-1 kernels over spinor fields: the "auxiliary operations required in
// the CG linear solver" whose flops the paper counts alongside the stencil
// (50-100 flop per lattice site; extremely bandwidth bound).
//
// All reductions accumulate in double regardless of the field precision and
// sum per-chunk partials in a fixed order, matching the paper's note that
// "all reductions are done in double precision" (and keeping results
// deterministic).
//
// Because these kernels are bandwidth bound, the library follows QUDA in
// FUSING vector updates with the reductions that consume them: axpy_norm2,
// triple_cg_update, axpy_zpbx and friends touch each field once per
// iteration instead of once per operation.  Every kernel charges the global
// byte counter (flops::add_bytes) with its compulsory memory traffic — one
// field-pass per input read, two per in-place update (read + write-back) —
// so flops::bytes() tracks the solver's BLAS-phase traffic the same way
// flops::get() tracks its arithmetic.
//
// Every kernel takes a trailing chunk-grain argument (minimum elements per
// worker); the autotuner sweeps it via tune::BlasTunable exactly as it
// sweeps the dslash launch grain.
//
// SIMD (DESIGN.md §11): every kernel is width-templated on a lane count W
// defaulting to the build's native width (1 when FEMTO_SIMD=OFF).  The
// vector bodies process W reals per step with a peeled scalar tail, and
// reductions accumulate a W-lane double vector per chunk whose lanes are
// summed in lane order before the tail — a fixed, index-determined order,
// so the determinism guarantee (bitwise-stable per thread count and grain)
// is unchanged.  Fused and unfused kernels share the same per-element
// expressions and the same chunk-relative lane pattern, so at equal grain
// and width the fusion stays bitwise identical to the separate operations.
// Results DO differ across widths (lane-striped summation) within normal
// rounding: cross-width agreement is a tolerance, not bitwise, property.

#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>

#include "lattice/complex.hpp"
#include "lattice/field.hpp"
#include "lattice/flops.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/vec.hpp"

namespace femto::blas {

inline constexpr std::size_t kGrain = 4096;

namespace detail {

// Chunk bodies shared by the fused and unfused kernels.  Keeping each
// expression in exactly one place is what makes the bitwise
// fused-== -unfused contract robust: both sides inline the same code.

/// sum v^2 over [lo, hi) with double accumulation, W-lane striped over TWO
/// independent accumulator chains.  One chain is latency-bound: every
/// iteration's vector add waits on the previous one, which caps the
/// reduction at one W-block per add latency.  Two chains overlap, roughly
/// doubling throughput (measured in bench/micro_simd.cpp).  The
/// combination order -- even-stripe chain (plus any trailing W-block),
/// then odd-stripe chain, then scalar tail -- is fixed, so the result is
/// still deterministic per width.
template <int W, typename T>
inline double norm2_chunk(const T* xd, std::size_t lo, std::size_t hi) {
  double s = 0.0;
  std::size_t k = lo;
  if constexpr (W > 1) {
    simd::Vec<double, W> acc0, acc1;
    for (; k + 2 * W <= hi; k += 2 * W) {
      const auto v0 = simd::convert<double>(simd::Vec<T, W>::load(xd + k));
      const auto v1 = simd::convert<double>(simd::Vec<T, W>::load(xd + k + W));
      acc0 += v0 * v0;
      acc1 += v1 * v1;
    }
    for (; k + W <= hi; k += W) {
      const auto v = simd::convert<double>(simd::Vec<T, W>::load(xd + k));
      acc0 += v * v;
    }
    s = simd::sum_ordered(acc0) + simd::sum_ordered(acc1);
  }
  for (; k < hi; ++k) {
    const double v = static_cast<double>(xd[k]);
    s += v * v;
  }
  return s;
}

/// sum x*y over [lo, hi) with double accumulation, two-chain striped like
/// norm2_chunk.
template <int W, typename T>
inline double redot_chunk(const T* xd, const T* yd, std::size_t lo,
                          std::size_t hi) {
  double s = 0.0;
  std::size_t k = lo;
  if constexpr (W > 1) {
    simd::Vec<double, W> acc0, acc1;
    for (; k + 2 * W <= hi; k += 2 * W) {
      acc0 += simd::convert<double>(simd::Vec<T, W>::load(xd + k)) *
              simd::convert<double>(simd::Vec<T, W>::load(yd + k));
      acc1 += simd::convert<double>(simd::Vec<T, W>::load(xd + k + W)) *
              simd::convert<double>(simd::Vec<T, W>::load(yd + k + W));
    }
    for (; k + W <= hi; k += W)
      acc0 += simd::convert<double>(simd::Vec<T, W>::load(xd + k)) *
              simd::convert<double>(simd::Vec<T, W>::load(yd + k));
    s = simd::sum_ordered(acc0) + simd::sum_ordered(acc1);
  }
  for (; k < hi; ++k)
    s += static_cast<double>(xd[k]) * static_cast<double>(yd[k]);
  return s;
}

/// y += a*x over [lo, hi).
template <int W, typename T>
inline void axpy_chunk(T aa, const T* xd, T* yd, std::size_t lo,
                       std::size_t hi) {
  std::size_t k = lo;
  if constexpr (W > 1) {
    const simd::Vec<T, W> av(aa);
    for (; k + W <= hi; k += W) {
      auto y = simd::Vec<T, W>::load(yd + k);
      y += av * simd::Vec<T, W>::load(xd + k);
      y.store(yd + k);
    }
  }
  for (; k < hi; ++k) yd[k] += aa * xd[k];
}

/// y = x + a*y over [lo, hi).
template <int W, typename T>
inline void xpay_chunk(const T* xd, T aa, T* yd, std::size_t lo,
                       std::size_t hi) {
  std::size_t k = lo;
  if constexpr (W > 1) {
    const simd::Vec<T, W> av(aa);
    for (; k + W <= hi; k += W) {
      const auto y = simd::Vec<T, W>::load(xd + k) +
                     av * simd::Vec<T, W>::load(yd + k);
      y.store(yd + k);
    }
  }
  for (; k < hi; ++k) yd[k] = xd[k] + aa * yd[k];
}

/// y = a*x + b*y over [lo, hi).
template <int W, typename T>
inline void axpby_chunk(T aa, const T* xd, T bb, T* yd, std::size_t lo,
                        std::size_t hi) {
  std::size_t k = lo;
  if constexpr (W > 1) {
    const simd::Vec<T, W> av(aa), bv(bb);
    for (; k + W <= hi; k += W) {
      const auto y = av * simd::Vec<T, W>::load(xd + k) +
                     bv * simd::Vec<T, W>::load(yd + k);
      y.store(yd + k);
    }
  }
  for (; k < hi; ++k) yd[k] = aa * xd[k] + bb * yd[k];
}

/// y += (ar + i ai)*x over complex-pair range [lo, hi) (pair indices).
/// Vector trick: on the interleaved (re, im) stream, a complex axpy is
///     y += ar*x + [-ai, +ai, ...] * swap_pairs(x)
/// which keeps everything W reals wide with no shuffles beyond the pair
/// swap.  Association differs from the scalar form by one regrouping, so
/// pair kernels agree with scalar arithmetic to rounding (the fused and
/// unfused pair kernels still match bitwise — both inline this body).
template <int W, typename T>
inline void caxpy_chunk(T ar, T ai, const T* xd, T* yd, std::size_t lo,
                        std::size_t hi) {
  std::size_t k = lo;
  if constexpr (W > 1) {
    const simd::Vec<T, W> arv(ar);
    const auto aiv = simd::interleave<T, W>(-ai, ai);
    for (; k + W / 2 <= hi; k += W / 2) {
      const auto x = simd::Vec<T, W>::load(xd + 2 * k);
      auto y = simd::Vec<T, W>::load(yd + 2 * k);
      y += arv * x + aiv * simd::swap_pairs(x);
      y.store(yd + 2 * k);
    }
  }
  for (; k < hi; ++k) {
    const T xr = xd[2 * k], xi = xd[2 * k + 1];
    yd[2 * k] += ar * xr - ai * xi;
    yd[2 * k + 1] += ar * xi + ai * xr;
  }
}

}  // namespace detail

/// y = x
template <typename T, typename U>
void copy(SpinorField<T>& y, const SpinorField<U>& x,
          std::size_t grain = kGrain) {
  assert(y.compatible(x));
  T* yd = y.data();
  const U* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) yd[k] = static_cast<T>(xd[k]);
      },
      grain);
  flops::add_bytes(y.reals() * static_cast<std::int64_t>(sizeof(T) +
                                                         sizeof(U)));
}

/// y += a*x
template <typename T, int W = simd::kWidth<T>>
void axpy(double a, const SpinorField<T>& x, SpinorField<T>& y,
          std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T aa = static_cast<T>(a);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        detail::axpy_chunk<W>(aa, xd, yd, lo, hi);
      },
      grain);
  flops::add(2 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// y = x + a*y
template <typename T, int W = simd::kWidth<T>>
void xpay(const SpinorField<T>& x, double a, SpinorField<T>& y,
          std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T aa = static_cast<T>(a);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        detail::xpay_chunk<W>(xd, aa, yd, lo, hi);
      },
      grain);
  flops::add(2 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// y = a*x + b*y
template <typename T, int W = simd::kWidth<T>>
void axpby(double a, const SpinorField<T>& x, double b, SpinorField<T>& y,
           std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T aa = static_cast<T>(a), bb = static_cast<T>(b);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        detail::axpby_chunk<W>(aa, xd, bb, yd, lo, hi);
      },
      grain);
  flops::add(3 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// y += (a.re + i a.im) * x, treating consecutive real pairs as complex.
template <typename T, int W = simd::kWidth<T>>
void caxpy(Cplx<double> a, const SpinorField<T>& x, SpinorField<T>& y,
           std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T ar = static_cast<T>(a.re), ai = static_cast<T>(a.im);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals() / 2),
      [&](std::size_t lo, std::size_t hi) {
        detail::caxpy_chunk<W>(ar, ai, xd, yd, lo, hi);
      },
      grain);
  flops::add(4 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// y = x + (a.re + i a.im) * y, complex pairs.
template <typename T, int W = simd::kWidth<T>>
void cxpay(const SpinorField<T>& x, Cplx<double> a, SpinorField<T>& y,
           std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T ar = static_cast<T>(a.re), ai = static_cast<T>(a.im);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals() / 2),
      [&](std::size_t lo, std::size_t hi) {
        std::size_t k = lo;
        if constexpr (W > 1) {
          const simd::Vec<T, W> arv(ar);
          const auto aiv = simd::interleave<T, W>(-ai, ai);
          for (; k + W / 2 <= hi; k += W / 2) {
            const auto y0 = simd::Vec<T, W>::load(yd + 2 * k);
            const auto y1 = simd::Vec<T, W>::load(xd + 2 * k) + arv * y0 +
                            aiv * simd::swap_pairs(y0);
            y1.store(yd + 2 * k);
          }
        }
        for (; k < hi; ++k) {
          const T yr = yd[2 * k], yi = yd[2 * k + 1];
          yd[2 * k] = xd[2 * k] + ar * yr - ai * yi;
          yd[2 * k + 1] = xd[2 * k + 1] + ar * yi + ai * yr;
        }
      },
      grain);
  flops::add(4 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// scale: x *= a
template <typename T, int W = simd::kWidth<T>>
void scal(double a, SpinorField<T>& x, std::size_t grain = kGrain) {
  const T aa = static_cast<T>(a);
  T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(x.reals()),
      [&](std::size_t lo, std::size_t hi) {
        std::size_t k = lo;
        if constexpr (W > 1) {
          const simd::Vec<T, W> av(aa);
          for (; k + W <= hi; k += W) {
            (av * simd::Vec<T, W>::load(xd + k)).store(xd + k);
          }
        }
        for (; k < hi; ++k) xd[k] *= aa;
      },
      grain);
  flops::add(x.reals());
  flops::add_bytes(2 * x.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// ||x||^2 with double accumulation.
template <typename T, int W = simd::kWidth<T>>
double norm2(const SpinorField<T>& x, std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "norm2");
  const T* xd = x.data();
  const double r = par::ThreadPool::global().parallel_reduce(
      0, static_cast<std::size_t>(x.reals()),
      [&](std::size_t lo, std::size_t hi) {
        return detail::norm2_chunk<W>(xd, lo, hi);
      },
      grain);
  flops::add(2 * x.reals());
  flops::add_bytes(x.reals() * static_cast<std::int64_t>(sizeof(T)));
  return r;
}

/// <x, y> = sum conj(x) y with double accumulation.  On the interleaved
/// pair stream the real part is a plain elementwise product sum (xr*yr and
/// xi*yi both land there) and the imaginary part pairs each lane with its
/// partner via swap_pairs and an alternating sign.
template <typename T, int W = simd::kWidth<T>>
Cplx<double> cdot(const SpinorField<T>& x, const SpinorField<T>& y,
                  std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T* xd = x.data();
  const T* yd = y.data();
  auto [re, im] = par::ThreadPool::global().parallel_reduce2(
      0, static_cast<std::size_t>(x.reals() / 2),
      [&](std::size_t lo, std::size_t hi) {
        double sr = 0.0, si = 0.0;
        std::size_t k = lo;
        if constexpr (W > 1) {
          simd::Vec<double, W> racc, iacc;
          const auto sign = simd::interleave<double, W>(1.0, -1.0);
          for (; k + W / 2 <= hi; k += W / 2) {
            const auto xv =
                simd::convert<double>(simd::Vec<T, W>::load(xd + 2 * k));
            const auto yv =
                simd::convert<double>(simd::Vec<T, W>::load(yd + 2 * k));
            racc += xv * yv;
            iacc += sign * (xv * simd::swap_pairs(yv));
          }
          sr = simd::sum_ordered(racc);
          si = simd::sum_ordered(iacc);
        }
        for (; k < hi; ++k) {
          const double xr = xd[2 * k], xi = xd[2 * k + 1];
          const double yr = yd[2 * k], yi = yd[2 * k + 1];
          sr += xr * yr + xi * yi;
          si += xr * yi - xi * yr;
        }
        return std::make_pair(sr, si);
      },
      grain);
  flops::add(4 * x.reals());
  flops::add_bytes(2 * x.reals() * static_cast<std::int64_t>(sizeof(T)));
  return {re, im};
}

/// Real part of <x, y> (the CG beta/alpha kernel for Hermitian operators).
template <typename T, int W = simd::kWidth<T>>
double redot(const SpinorField<T>& x, const SpinorField<T>& y,
             std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T* xd = x.data();
  const T* yd = y.data();
  const double r = par::ThreadPool::global().parallel_reduce(
      0, static_cast<std::size_t>(x.reals()),
      [&](std::size_t lo, std::size_t hi) {
        return detail::redot_chunk<W>(xd, yd, lo, hi);
      },
      grain);
  flops::add(2 * x.reals());
  flops::add_bytes(2 * x.reals() * static_cast<std::int64_t>(sizeof(T)));
  return r;
}

// ---------------------------------------------------------------------------
// Fused update+reduce kernels (QUDA's blas_quda fusions).  Each touches its
// fields exactly once; the reduction rides the update pass for free.  The
// per-element arithmetic and the chunk partition match the unfused kernels,
// so with the same grain (and width) the results are bitwise identical to
// running the separate operations.
// ---------------------------------------------------------------------------

/// y += a*x, returning ||y||^2 of the updated y (QUDA axpyNorm).
template <typename T, int W = simd::kWidth<T>>
double axpy_norm2(double a, const SpinorField<T>& x, SpinorField<T>& y,
                  std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "axpy_norm2");
  assert(y.compatible(x));
  const T aa = static_cast<T>(a);
  T* yd = y.data();
  const T* xd = x.data();
  double n2 = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(y.reals()), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        detail::axpy_chunk<W>(aa, xd, yd, lo, hi);
        acc[0] = detail::norm2_chunk<W>(yd, lo, hi);
      },
      &n2, grain);
  flops::add(4 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
  return n2;
}

/// y = x + a*y, returning <x, y_new> (real part) of the updated y.
template <typename T, int W = simd::kWidth<T>>
double xpay_redot(const SpinorField<T>& x, double a, SpinorField<T>& y,
                  std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "xpay_redot");
  assert(y.compatible(x));
  const T aa = static_cast<T>(a);
  T* yd = y.data();
  const T* xd = x.data();
  double dot = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(y.reals()), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        detail::xpay_chunk<W>(xd, aa, yd, lo, hi);
        acc[0] = detail::redot_chunk<W>(xd, yd, lo, hi);
      },
      &dot, grain);
  flops::add(4 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
  return dot;
}

/// y = a*x + b*y, returning ||y||^2 of the updated y.
template <typename T, int W = simd::kWidth<T>>
double axpby_norm2(double a, const SpinorField<T>& x, double b,
                   SpinorField<T>& y, std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "axpby_norm2");
  assert(y.compatible(x));
  const T aa = static_cast<T>(a), bb = static_cast<T>(b);
  T* yd = y.data();
  const T* xd = x.data();
  double n2 = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(y.reals()), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        detail::axpby_chunk<W>(aa, xd, bb, yd, lo, hi);
        acc[0] = detail::norm2_chunk<W>(yd, lo, hi);
      },
      &n2, grain);
  flops::add(5 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
  return n2;
}

/// The QUDA tripleCGUpdate: x += alpha*p; r -= alpha*ap; return ||r||^2 —
/// the whole CG vector update in one pass over the four fields.
template <typename T, int W = simd::kWidth<T>>
double triple_cg_update(double alpha, const SpinorField<T>& p,
                        const SpinorField<T>& ap, SpinorField<T>& x,
                        SpinorField<T>& r, std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "triple_cg_update");
  assert(x.compatible(p) && r.compatible(ap) && x.compatible(r));
  const T al = static_cast<T>(alpha);
  const T mal = static_cast<T>(-alpha);
  T* xd = x.data();
  T* rd = r.data();
  const T* pd = p.data();
  const T* apd = ap.data();
  double n2 = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(r.reals()), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        detail::axpy_chunk<W>(al, pd, xd, lo, hi);
        detail::axpy_chunk<W>(mal, apd, rd, lo, hi);
        acc[0] = detail::norm2_chunk<W>(rd, lo, hi);
      },
      &n2, grain);
  flops::add(6 * r.reals());
  flops::add_bytes(6 * r.reals() * static_cast<std::int64_t>(sizeof(T)));
  return n2;
}

/// The QUDA axpyZpbx: x += a*p; p = z + b*p.  Fuses CG's solution update
/// with its search-direction update so p is read once for both.
template <typename T, int W = simd::kWidth<T>>
void axpy_zpbx(double a, SpinorField<T>& p, SpinorField<T>& x,
               const SpinorField<T>& z, double b, std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "axpy_zpbx");
  assert(x.compatible(p) && z.compatible(p));
  const T aa = static_cast<T>(a), bb = static_cast<T>(b);
  T* pd = p.data();
  T* xd = x.data();
  const T* zd = z.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(p.reals()),
      [&](std::size_t lo, std::size_t hi) {
        detail::axpy_chunk<W>(aa, pd, xd, lo, hi);
        detail::xpay_chunk<W>(zd, bb, pd, lo, hi);
      },
      grain);
  flops::add(4 * p.reals());
  flops::add_bytes(5 * p.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// y += a*x (complex pairs), returning ||y||^2 of the updated y — the
/// BiCGStab s- and r-update kernel.
template <typename T, int W = simd::kWidth<T>>
double caxpy_norm2(Cplx<double> a, const SpinorField<T>& x, SpinorField<T>& y,
                   std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "caxpy_norm2");
  assert(y.compatible(x));
  const T ar = static_cast<T>(a.re), ai = static_cast<T>(a.im);
  T* yd = y.data();
  const T* xd = x.data();
  double n2 = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(y.reals() / 2), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        detail::caxpy_chunk<W>(ar, ai, xd, yd, lo, hi);
        acc[0] = detail::norm2_chunk<W>(yd, 2 * lo, 2 * hi);
      },
      &n2, grain);
  flops::add(6 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
  return n2;
}

/// One pass computing both <x, y> and ||x||^2 — BiCGStab's omega kernel
/// (omega = <t, s> / ||t||^2 via cdot_norm2(t, s)).
template <typename T, int W = simd::kWidth<T>>
std::pair<Cplx<double>, double> cdot_norm2(const SpinorField<T>& x,
                                           const SpinorField<T>& y,
                                           std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "cdot_norm2");
  assert(y.compatible(x));
  const T* xd = x.data();
  const T* yd = y.data();
  double sums[3] = {0.0, 0.0, 0.0};
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(x.reals() / 2), 3,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        double sr = 0.0, si = 0.0, sn = 0.0;
        std::size_t k = lo;
        if constexpr (W > 1) {
          simd::Vec<double, W> racc, iacc, nacc;
          const auto sign = simd::interleave<double, W>(1.0, -1.0);
          for (; k + W / 2 <= hi; k += W / 2) {
            const auto xv =
                simd::convert<double>(simd::Vec<T, W>::load(xd + 2 * k));
            const auto yv =
                simd::convert<double>(simd::Vec<T, W>::load(yd + 2 * k));
            racc += xv * yv;
            iacc += sign * (xv * simd::swap_pairs(yv));
            nacc += xv * xv;
          }
          sr = simd::sum_ordered(racc);
          si = simd::sum_ordered(iacc);
          sn = simd::sum_ordered(nacc);
        }
        for (; k < hi; ++k) {
          const double xr = xd[2 * k], xi = xd[2 * k + 1];
          const double yr = yd[2 * k], yi = yd[2 * k + 1];
          sr += xr * yr + xi * yi;
          si += xr * yi - xi * yr;
          sn += xr * xr + xi * xi;
        }
        acc[0] = sr;
        acc[1] = si;
        acc[2] = sn;
      },
      sums, grain);
  flops::add(6 * x.reals());
  flops::add_bytes(2 * x.reals() * static_cast<std::int64_t>(sizeof(T)));
  return {Cplx<double>{sums[0], sums[1]}, sums[2]};
}

// ---------------------------------------------------------------------------
// Multi-RHS kernels (DESIGN.md §12).  Each batched kernel makes ONE
// parallel launch whose chunk body loops over the B right-hand sides,
// reusing the detail:: chunk bodies above.  Because the chunk partition
// depends only on (range, grain, thread count) — never on the component
// count — and partials combine in the same fixed chunk order per
// component, every RHS's result is bitwise identical to the single-RHS
// kernel at the same grain, independent of which other RHSs share the
// batch.  That is the per-RHS bitwise contract the block solvers and the
// solve service rely on: batch composition can never change an answer.
//
// Traffic scales with B (every field pass happens per RHS); the batching
// win here is launch amortization, not byte amortization — the byte win
// lives in dslash_multi, where the gauge field is charged once per block.
// ---------------------------------------------------------------------------

/// ||x_r||^2 for each RHS.
template <typename T, int W = simd::kWidth<T>>
void norm2_multi(std::span<const SpinorField<T>* const> x,
                 std::span<double> n2, std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "norm2_multi");
  const std::size_t nb = x.size();
  FEMTO_ASSERT(n2.size() == nb);
  if (nb == 0) return;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(x[0]->reals()), nb,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        for (std::size_t r = 0; r < nb; ++r)
          acc[r] = detail::norm2_chunk<W>(x[r]->data(), lo, hi);
      },
      n2.data(), grain);
  const std::int64_t reals = static_cast<std::int64_t>(nb) * x[0]->reals();
  flops::add(2 * reals);
  flops::add_bytes(reals * static_cast<std::int64_t>(sizeof(T)));
}

/// Re<x_r, y_r> for each RHS (the CG pAp kernel, batched).
template <typename T, int W = simd::kWidth<T>>
void redot_multi(std::span<const SpinorField<T>* const> x,
                 std::span<const SpinorField<T>* const> y,
                 std::span<double> dot, std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "redot_multi");
  const std::size_t nb = x.size();
  FEMTO_ASSERT(y.size() == nb && dot.size() == nb);
  if (nb == 0) return;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(x[0]->reals()), nb,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        for (std::size_t r = 0; r < nb; ++r)
          acc[r] = detail::redot_chunk<W>(x[r]->data(), y[r]->data(), lo, hi);
      },
      dot.data(), grain);
  const std::int64_t reals = static_cast<std::int64_t>(nb) * x[0]->reals();
  flops::add(2 * reals);
  flops::add_bytes(2 * reals * static_cast<std::int64_t>(sizeof(T)));
}

/// y_r = x_r + a_r*y_r for each RHS.
template <typename T, int W = simd::kWidth<T>>
void xpay_multi(std::span<const SpinorField<T>* const> x,
                std::span<const double> a,
                std::span<SpinorField<T>* const> y,
                std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "xpay_multi");
  const std::size_t nb = y.size();
  FEMTO_ASSERT(x.size() == nb && a.size() == nb);
  if (nb == 0) return;
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y[0]->reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = 0; r < nb; ++r)
          detail::xpay_chunk<W>(x[r]->data(), static_cast<T>(a[r]),
                                y[r]->data(), lo, hi);
      },
      grain);
  const std::int64_t reals = static_cast<std::int64_t>(nb) * y[0]->reals();
  flops::add(2 * reals);
  flops::add_bytes(3 * reals * static_cast<std::int64_t>(sizeof(T)));
}

/// y_r += a_r*x_r, returning ||y_r||^2 of each updated y_r.
template <typename T, int W = simd::kWidth<T>>
void axpy_norm2_multi(std::span<const double> a,
                      std::span<const SpinorField<T>* const> x,
                      std::span<SpinorField<T>* const> y,
                      std::span<double> n2, std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "axpy_norm2_multi");
  const std::size_t nb = y.size();
  FEMTO_ASSERT(x.size() == nb && a.size() == nb && n2.size() == nb);
  if (nb == 0) return;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(y[0]->reals()), nb,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        for (std::size_t r = 0; r < nb; ++r) {
          detail::axpy_chunk<W>(static_cast<T>(a[r]), x[r]->data(),
                                y[r]->data(), lo, hi);
          acc[r] = detail::norm2_chunk<W>(y[r]->data(), lo, hi);
        }
      },
      n2.data(), grain);
  const std::int64_t reals = static_cast<std::int64_t>(nb) * y[0]->reals();
  flops::add(4 * reals);
  flops::add_bytes(3 * reals * static_cast<std::int64_t>(sizeof(T)));
}

/// The tripleCGUpdate, batched: x_r += alpha_r*p_r; r_r -= alpha_r*ap_r;
/// returning each ||r_r||^2.
template <typename T, int W = simd::kWidth<T>>
void triple_cg_update_multi(std::span<const double> alpha,
                            std::span<const SpinorField<T>* const> p,
                            std::span<const SpinorField<T>* const> ap,
                            std::span<SpinorField<T>* const> x,
                            std::span<SpinorField<T>* const> r,
                            std::span<double> n2,
                            std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "triple_cg_update_multi");
  const std::size_t nb = r.size();
  FEMTO_ASSERT(p.size() == nb && ap.size() == nb && x.size() == nb &&
               alpha.size() == nb && n2.size() == nb);
  if (nb == 0) return;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(r[0]->reals()), nb,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        for (std::size_t rr = 0; rr < nb; ++rr) {
          detail::axpy_chunk<W>(static_cast<T>(alpha[rr]), p[rr]->data(),
                                x[rr]->data(), lo, hi);
          detail::axpy_chunk<W>(static_cast<T>(-alpha[rr]), ap[rr]->data(),
                                r[rr]->data(), lo, hi);
          acc[rr] = detail::norm2_chunk<W>(r[rr]->data(), lo, hi);
        }
      },
      n2.data(), grain);
  const std::int64_t reals = static_cast<std::int64_t>(nb) * r[0]->reals();
  flops::add(6 * reals);
  flops::add_bytes(6 * reals * static_cast<std::int64_t>(sizeof(T)));
}

/// The axpyZpbx, batched: x_r += a_r*p_r; p_r = z_r + b_r*p_r.
template <typename T, int W = simd::kWidth<T>>
void axpy_zpbx_multi(std::span<const double> a,
                     std::span<SpinorField<T>* const> p,
                     std::span<SpinorField<T>* const> x,
                     std::span<const SpinorField<T>* const> z,
                     std::span<const double> b,
                     std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "axpy_zpbx_multi");
  const std::size_t nb = p.size();
  FEMTO_ASSERT(x.size() == nb && z.size() == nb && a.size() == nb &&
               b.size() == nb);
  if (nb == 0) return;
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(p[0]->reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = 0; r < nb; ++r) {
          detail::axpy_chunk<W>(static_cast<T>(a[r]), p[r]->data(),
                                x[r]->data(), lo, hi);
          detail::xpay_chunk<W>(z[r]->data(), static_cast<T>(b[r]),
                                p[r]->data(), lo, hi);
        }
      },
      grain);
  const std::int64_t reals = static_cast<std::int64_t>(nb) * p[0]->reals();
  flops::add(4 * reals);
  flops::add_bytes(5 * reals * static_cast<std::int64_t>(sizeof(T)));
}

}  // namespace femto::blas
