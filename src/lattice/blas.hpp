#pragma once
// BLAS-1 kernels over spinor fields: the "auxiliary operations required in
// the CG linear solver" whose flops the paper counts alongside the stencil
// (50-100 flop per lattice site; extremely bandwidth bound).
//
// All reductions accumulate in double regardless of the field precision and
// sum per-chunk partials in a fixed order, matching the paper's note that
// "all reductions are done in double precision" (and keeping results
// deterministic).
//
// Because these kernels are bandwidth bound, the library follows QUDA in
// FUSING vector updates with the reductions that consume them: axpy_norm2,
// triple_cg_update, axpy_zpbx and friends touch each field once per
// iteration instead of once per operation.  Every kernel charges the global
// byte counter (flops::add_bytes) with its compulsory memory traffic — one
// field-pass per input read, two per in-place update (read + write-back) —
// so flops::bytes() tracks the solver's BLAS-phase traffic the same way
// flops::get() tracks its arithmetic.
//
// Every kernel takes a trailing chunk-grain argument (minimum elements per
// worker); the autotuner sweeps it via tune::BlasTunable exactly as it
// sweeps the dslash launch grain.

#include <cstdint>
#include <utility>

#include "lattice/complex.hpp"
#include "lattice/field.hpp"
#include "lattice/flops.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace femto::blas {

inline constexpr std::size_t kGrain = 4096;

/// y = x
template <typename T, typename U>
void copy(SpinorField<T>& y, const SpinorField<U>& x,
          std::size_t grain = kGrain) {
  assert(y.compatible(x));
  T* yd = y.data();
  const U* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) yd[k] = static_cast<T>(xd[k]);
      },
      grain);
  flops::add_bytes(y.reals() * static_cast<std::int64_t>(sizeof(T) +
                                                         sizeof(U)));
}

/// y += a*x
template <typename T>
void axpy(double a, const SpinorField<T>& x, SpinorField<T>& y,
          std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T aa = static_cast<T>(a);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) yd[k] += aa * xd[k];
      },
      grain);
  flops::add(2 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// y = x + a*y
template <typename T>
void xpay(const SpinorField<T>& x, double a, SpinorField<T>& y,
          std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T aa = static_cast<T>(a);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) yd[k] = xd[k] + aa * yd[k];
      },
      grain);
  flops::add(2 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// y = a*x + b*y
template <typename T>
void axpby(double a, const SpinorField<T>& x, double b, SpinorField<T>& y,
           std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T aa = static_cast<T>(a), bb = static_cast<T>(b);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) yd[k] = aa * xd[k] + bb * yd[k];
      },
      grain);
  flops::add(3 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// y += (a.re + i a.im) * x, treating consecutive real pairs as complex.
template <typename T>
void caxpy(Cplx<double> a, const SpinorField<T>& x, SpinorField<T>& y,
           std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T ar = static_cast<T>(a.re), ai = static_cast<T>(a.im);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals() / 2),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const T xr = xd[2 * k], xi = xd[2 * k + 1];
          yd[2 * k] += ar * xr - ai * xi;
          yd[2 * k + 1] += ar * xi + ai * xr;
        }
      },
      grain);
  flops::add(4 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// y = x + (a.re + i a.im) * y, complex pairs.
template <typename T>
void cxpay(const SpinorField<T>& x, Cplx<double> a, SpinorField<T>& y,
           std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T ar = static_cast<T>(a.re), ai = static_cast<T>(a.im);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals() / 2),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const T yr = yd[2 * k], yi = yd[2 * k + 1];
          yd[2 * k] = xd[2 * k] + ar * yr - ai * yi;
          yd[2 * k + 1] = xd[2 * k + 1] + ar * yi + ai * yr;
        }
      },
      grain);
  flops::add(4 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// scale: x *= a
template <typename T>
void scal(double a, SpinorField<T>& x, std::size_t grain = kGrain) {
  const T aa = static_cast<T>(a);
  T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(x.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) xd[k] *= aa;
      },
      grain);
  flops::add(x.reals());
  flops::add_bytes(2 * x.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// ||x||^2 with double accumulation.
template <typename T>
double norm2(const SpinorField<T>& x, std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "norm2");
  const T* xd = x.data();
  const double r = par::ThreadPool::global().parallel_reduce(
      0, static_cast<std::size_t>(x.reals()),
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t k = lo; k < hi; ++k) {
          const double v = static_cast<double>(xd[k]);
          s += v * v;
        }
        return s;
      },
      grain);
  flops::add(2 * x.reals());
  flops::add_bytes(x.reals() * static_cast<std::int64_t>(sizeof(T)));
  return r;
}

/// <x, y> = sum conj(x) y with double accumulation.
template <typename T>
Cplx<double> cdot(const SpinorField<T>& x, const SpinorField<T>& y,
                  std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T* xd = x.data();
  const T* yd = y.data();
  auto [re, im] = par::ThreadPool::global().parallel_reduce2(
      0, static_cast<std::size_t>(x.reals() / 2),
      [&](std::size_t lo, std::size_t hi) {
        double sr = 0.0, si = 0.0;
        for (std::size_t k = lo; k < hi; ++k) {
          const double xr = xd[2 * k], xi = xd[2 * k + 1];
          const double yr = yd[2 * k], yi = yd[2 * k + 1];
          sr += xr * yr + xi * yi;
          si += xr * yi - xi * yr;
        }
        return std::make_pair(sr, si);
      },
      grain);
  flops::add(4 * x.reals());
  flops::add_bytes(2 * x.reals() * static_cast<std::int64_t>(sizeof(T)));
  return {re, im};
}

/// Real part of <x, y> (the CG beta/alpha kernel for Hermitian operators).
template <typename T>
double redot(const SpinorField<T>& x, const SpinorField<T>& y,
             std::size_t grain = kGrain) {
  assert(y.compatible(x));
  const T* xd = x.data();
  const T* yd = y.data();
  const double r = par::ThreadPool::global().parallel_reduce(
      0, static_cast<std::size_t>(x.reals()),
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t k = lo; k < hi; ++k)
          s += static_cast<double>(xd[k]) * static_cast<double>(yd[k]);
        return s;
      },
      grain);
  flops::add(2 * x.reals());
  flops::add_bytes(2 * x.reals() * static_cast<std::int64_t>(sizeof(T)));
  return r;
}

// ---------------------------------------------------------------------------
// Fused update+reduce kernels (QUDA's blas_quda fusions).  Each touches its
// fields exactly once; the reduction rides the update pass for free.  The
// per-element arithmetic and the chunk partition match the unfused kernels,
// so with the same grain the results are bitwise identical to running the
// separate operations.
// ---------------------------------------------------------------------------

/// y += a*x, returning ||y||^2 of the updated y (QUDA axpyNorm).
template <typename T>
double axpy_norm2(double a, const SpinorField<T>& x, SpinorField<T>& y,
                  std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "axpy_norm2");
  assert(y.compatible(x));
  const T aa = static_cast<T>(a);
  T* yd = y.data();
  const T* xd = x.data();
  double n2 = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(y.reals()), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        double s = 0.0;
        for (std::size_t k = lo; k < hi; ++k) {
          yd[k] += aa * xd[k];
          const double v = static_cast<double>(yd[k]);
          s += v * v;
        }
        acc[0] = s;
      },
      &n2, grain);
  flops::add(4 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
  return n2;
}

/// y = x + a*y, returning <x, y_new> (real part) of the updated y.
template <typename T>
double xpay_redot(const SpinorField<T>& x, double a, SpinorField<T>& y,
                  std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "xpay_redot");
  assert(y.compatible(x));
  const T aa = static_cast<T>(a);
  T* yd = y.data();
  const T* xd = x.data();
  double dot = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(y.reals()), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        double s = 0.0;
        for (std::size_t k = lo; k < hi; ++k) {
          yd[k] = xd[k] + aa * yd[k];
          s += static_cast<double>(xd[k]) * static_cast<double>(yd[k]);
        }
        acc[0] = s;
      },
      &dot, grain);
  flops::add(4 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
  return dot;
}

/// y = a*x + b*y, returning ||y||^2 of the updated y.
template <typename T>
double axpby_norm2(double a, const SpinorField<T>& x, double b,
                   SpinorField<T>& y, std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "axpby_norm2");
  assert(y.compatible(x));
  const T aa = static_cast<T>(a), bb = static_cast<T>(b);
  T* yd = y.data();
  const T* xd = x.data();
  double n2 = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(y.reals()), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        double s = 0.0;
        for (std::size_t k = lo; k < hi; ++k) {
          yd[k] = aa * xd[k] + bb * yd[k];
          const double v = static_cast<double>(yd[k]);
          s += v * v;
        }
        acc[0] = s;
      },
      &n2, grain);
  flops::add(5 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
  return n2;
}

/// The QUDA tripleCGUpdate: x += alpha*p; r -= alpha*ap; return ||r||^2 —
/// the whole CG vector update in one pass over the four fields.
template <typename T>
double triple_cg_update(double alpha, const SpinorField<T>& p,
                        const SpinorField<T>& ap, SpinorField<T>& x,
                        SpinorField<T>& r, std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "triple_cg_update");
  assert(x.compatible(p) && r.compatible(ap) && x.compatible(r));
  const T al = static_cast<T>(alpha);
  const T mal = static_cast<T>(-alpha);
  T* xd = x.data();
  T* rd = r.data();
  const T* pd = p.data();
  const T* apd = ap.data();
  double n2 = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(r.reals()), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        double s = 0.0;
        for (std::size_t k = lo; k < hi; ++k) {
          xd[k] += al * pd[k];
          rd[k] += mal * apd[k];
          const double v = static_cast<double>(rd[k]);
          s += v * v;
        }
        acc[0] = s;
      },
      &n2, grain);
  flops::add(6 * r.reals());
  flops::add_bytes(6 * r.reals() * static_cast<std::int64_t>(sizeof(T)));
  return n2;
}

/// The QUDA axpyZpbx: x += a*p; p = z + b*p.  Fuses CG's solution update
/// with its search-direction update so p is read once for both.
template <typename T>
void axpy_zpbx(double a, SpinorField<T>& p, SpinorField<T>& x,
               const SpinorField<T>& z, double b, std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "axpy_zpbx");
  assert(x.compatible(p) && z.compatible(p));
  const T aa = static_cast<T>(a), bb = static_cast<T>(b);
  T* pd = p.data();
  T* xd = x.data();
  const T* zd = z.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(p.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const T pk = pd[k];
          xd[k] += aa * pk;
          pd[k] = zd[k] + bb * pk;
        }
      },
      grain);
  flops::add(4 * p.reals());
  flops::add_bytes(5 * p.reals() * static_cast<std::int64_t>(sizeof(T)));
}

/// y += a*x (complex pairs), returning ||y||^2 of the updated y — the
/// BiCGStab s- and r-update kernel.
template <typename T>
double caxpy_norm2(Cplx<double> a, const SpinorField<T>& x, SpinorField<T>& y,
                   std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "caxpy_norm2");
  assert(y.compatible(x));
  const T ar = static_cast<T>(a.re), ai = static_cast<T>(a.im);
  T* yd = y.data();
  const T* xd = x.data();
  double n2 = 0.0;
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(y.reals() / 2), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        double s = 0.0;
        for (std::size_t k = lo; k < hi; ++k) {
          const T xr = xd[2 * k], xi = xd[2 * k + 1];
          const T yr = static_cast<T>(yd[2 * k] + (ar * xr - ai * xi));
          const T yi = static_cast<T>(yd[2 * k + 1] + (ar * xi + ai * xr));
          yd[2 * k] = yr;
          yd[2 * k + 1] = yi;
          s += static_cast<double>(yr) * static_cast<double>(yr) +
               static_cast<double>(yi) * static_cast<double>(yi);
        }
        acc[0] = s;
      },
      &n2, grain);
  flops::add(6 * y.reals());
  flops::add_bytes(3 * y.reals() * static_cast<std::int64_t>(sizeof(T)));
  return n2;
}

/// One pass computing both <x, y> and ||x||^2 — BiCGStab's omega kernel
/// (omega = <t, s> / ||t||^2 via cdot_norm2(t, s)).
template <typename T>
std::pair<Cplx<double>, double> cdot_norm2(const SpinorField<T>& x,
                                           const SpinorField<T>& y,
                                           std::size_t grain = kGrain) {
  FEMTO_TRACE_SCOPE("blas", "cdot_norm2");
  assert(y.compatible(x));
  const T* xd = x.data();
  const T* yd = y.data();
  double sums[3] = {0.0, 0.0, 0.0};
  par::ThreadPool::global().parallel_reduce_n(
      0, static_cast<std::size_t>(x.reals() / 2), 3,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        double sr = 0.0, si = 0.0, sn = 0.0;
        for (std::size_t k = lo; k < hi; ++k) {
          const double xr = xd[2 * k], xi = xd[2 * k + 1];
          const double yr = yd[2 * k], yi = yd[2 * k + 1];
          sr += xr * yr + xi * yi;
          si += xr * yi - xi * yr;
          sn += xr * xr + xi * xi;
        }
        acc[0] = sr;
        acc[1] = si;
        acc[2] = sn;
      },
      sums, grain);
  flops::add(6 * x.reals());
  flops::add_bytes(2 * x.reals() * static_cast<std::int64_t>(sizeof(T)));
  return {Cplx<double>{sums[0], sums[1]}, sums[2]};
}

}  // namespace femto::blas
