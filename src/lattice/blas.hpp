#pragma once
// BLAS-1 kernels over spinor fields: the "auxiliary operations required in
// the CG linear solver" whose flops the paper counts alongside the stencil
// (50-100 flop per lattice site; extremely bandwidth bound).
//
// All reductions accumulate in double regardless of the field precision and
// sum per-chunk partials in a fixed order, matching the paper's note that
// "all reductions are done in double precision" (and keeping results
// deterministic).

#include <cstdint>
#include <utility>

#include "lattice/complex.hpp"
#include "lattice/field.hpp"
#include "lattice/flops.hpp"
#include "parallel/thread_pool.hpp"

namespace femto::blas {

inline constexpr std::size_t kGrain = 4096;

/// y = x
template <typename T, typename U>
void copy(SpinorField<T>& y, const SpinorField<U>& x) {
  assert(y.compatible(x));
  T* yd = y.data();
  const U* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) yd[k] = static_cast<T>(xd[k]);
      },
      kGrain);
}

/// y += a*x
template <typename T>
void axpy(double a, const SpinorField<T>& x, SpinorField<T>& y) {
  assert(y.compatible(x));
  const T aa = static_cast<T>(a);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) yd[k] += aa * xd[k];
      },
      kGrain);
  flops::add(2 * y.reals());
}

/// y = x + a*y
template <typename T>
void xpay(const SpinorField<T>& x, double a, SpinorField<T>& y) {
  assert(y.compatible(x));
  const T aa = static_cast<T>(a);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) yd[k] = xd[k] + aa * yd[k];
      },
      kGrain);
  flops::add(2 * y.reals());
}

/// y = a*x + b*y
template <typename T>
void axpby(double a, const SpinorField<T>& x, double b, SpinorField<T>& y) {
  assert(y.compatible(x));
  const T aa = static_cast<T>(a), bb = static_cast<T>(b);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) yd[k] = aa * xd[k] + bb * yd[k];
      },
      kGrain);
  flops::add(3 * y.reals());
}

/// y += (a.re + i a.im) * x, treating consecutive real pairs as complex.
template <typename T>
void caxpy(Cplx<double> a, const SpinorField<T>& x, SpinorField<T>& y) {
  assert(y.compatible(x));
  const T ar = static_cast<T>(a.re), ai = static_cast<T>(a.im);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals() / 2),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const T xr = xd[2 * k], xi = xd[2 * k + 1];
          yd[2 * k] += ar * xr - ai * xi;
          yd[2 * k + 1] += ar * xi + ai * xr;
        }
      },
      kGrain);
  flops::add(4 * y.reals());
}

/// y = x + (a.re + i a.im) * y, complex pairs.
template <typename T>
void cxpay(const SpinorField<T>& x, Cplx<double> a, SpinorField<T>& y) {
  assert(y.compatible(x));
  const T ar = static_cast<T>(a.re), ai = static_cast<T>(a.im);
  T* yd = y.data();
  const T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(y.reals() / 2),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const T yr = yd[2 * k], yi = yd[2 * k + 1];
          yd[2 * k] = xd[2 * k] + ar * yr - ai * yi;
          yd[2 * k + 1] = xd[2 * k + 1] + ar * yi + ai * yr;
        }
      },
      kGrain);
  flops::add(4 * y.reals());
}

/// scale: x *= a
template <typename T>
void scal(double a, SpinorField<T>& x) {
  const T aa = static_cast<T>(a);
  T* xd = x.data();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(x.reals()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) xd[k] *= aa;
      },
      kGrain);
  flops::add(x.reals());
}

/// ||x||^2 with double accumulation.
template <typename T>
double norm2(const SpinorField<T>& x) {
  const T* xd = x.data();
  const double r = par::ThreadPool::global().parallel_reduce(
      0, static_cast<std::size_t>(x.reals()),
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t k = lo; k < hi; ++k) {
          const double v = static_cast<double>(xd[k]);
          s += v * v;
        }
        return s;
      },
      kGrain);
  flops::add(2 * x.reals());
  return r;
}

/// <x, y> = sum conj(x) y with double accumulation.
template <typename T>
Cplx<double> cdot(const SpinorField<T>& x, const SpinorField<T>& y) {
  assert(y.compatible(x));
  const T* xd = x.data();
  const T* yd = y.data();
  auto [re, im] = par::ThreadPool::global().parallel_reduce2(
      0, static_cast<std::size_t>(x.reals() / 2),
      [&](std::size_t lo, std::size_t hi) {
        double sr = 0.0, si = 0.0;
        for (std::size_t k = lo; k < hi; ++k) {
          const double xr = xd[2 * k], xi = xd[2 * k + 1];
          const double yr = yd[2 * k], yi = yd[2 * k + 1];
          sr += xr * yr + xi * yi;
          si += xr * yi - xi * yr;
        }
        return std::make_pair(sr, si);
      },
      kGrain);
  flops::add(4 * x.reals());
  return {re, im};
}

/// Real part of <x, y> (the CG beta/alpha kernel for Hermitian operators).
template <typename T>
double redot(const SpinorField<T>& x, const SpinorField<T>& y) {
  assert(y.compatible(x));
  const T* xd = x.data();
  const T* yd = y.data();
  const double r = par::ThreadPool::global().parallel_reduce(
      0, static_cast<std::size_t>(x.reals()),
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t k = lo; k < hi; ++k)
          s += static_cast<double>(xd[k]) * static_cast<double>(yd[k]);
        return s;
      },
      kGrain);
  flops::add(2 * x.reals());
  return r;
}

}  // namespace femto::blas
