#pragma once
// A block of right-hand-side spinor fields solved together.
//
// The multi-RHS stack (DESIGN.md §12) amortizes the gauge-field stream of
// the dslash across B spinors: every batched kernel takes a span of
// per-RHS fields or views, and this header is the small amount of glue
// that owns B identically-shaped SpinorFields and converts between the
// three currencies the stack trades in —
//   SpinorField<T>        owning storage (one per RHS; layouts unchanged,
//                         so every single-RHS kernel still works on a
//                         block member)
//   SpinorField<T>*       what the block solvers take (std::span of
//                         pointers: the active set shrinks as RHSs
//                         converge, and a span of pointers re-batches
//                         without copying field data)
//   SpinorView<T>         what dslash_multi takes (parity slices share a
//                         code path with whole single-parity fields)
//
// Keeping each RHS in its own field (rather than interleaving RHSs in
// memory) is what makes the per-RHS bitwise contract cheap: a block member
// IS an ordinary field, so "batched result == B single results" can be
// asserted with memcmp and the lane-blocked transpose stays an internal
// detail of the blocked kernel variant (BlockedMultiSpinor).

#include <memory>
#include <span>
#include <vector>

#include "lattice/field.hpp"

namespace femto {

template <typename T>
class BlockSpinorField {
 public:
  BlockSpinorField(std::shared_ptr<const Geometry> geom, int l5,
                   Subset subset, std::size_t nrhs) {
    fields_.reserve(nrhs);
    for (std::size_t r = 0; r < nrhs; ++r)
      fields_.emplace_back(geom, l5, subset);
  }

  std::size_t size() const { return fields_.size(); }
  SpinorField<T>& operator[](std::size_t r) { return fields_[r]; }
  const SpinorField<T>& operator[](std::size_t r) const { return fields_[r]; }

  auto begin() { return fields_.begin(); }
  auto end() { return fields_.end(); }
  auto begin() const { return fields_.begin(); }
  auto end() const { return fields_.end(); }

  /// Pointer sets for the block-solver APIs.
  std::vector<SpinorField<T>*> ptrs() {
    std::vector<SpinorField<T>*> v;
    v.reserve(fields_.size());
    for (auto& f : fields_) v.push_back(&f);
    return v;
  }
  std::vector<const SpinorField<T>*> cptrs() const {
    std::vector<const SpinorField<T>*> v;
    v.reserve(fields_.size());
    for (const auto& f : fields_) v.push_back(&f);
    return v;
  }

 private:
  std::vector<SpinorField<T>> fields_;
};

/// Whole-field views of a span of per-RHS fields (the dslash_multi input
/// currency).
template <typename T>
std::vector<SpinorView<T>> views_of(std::span<SpinorField<T>* const> fs) {
  std::vector<SpinorView<T>> v;
  v.reserve(fs.size());
  for (auto* f : fs) v.push_back(view(*f));
  return v;
}

template <typename T>
std::vector<SpinorView<const T>> cviews_of(
    std::span<const SpinorField<T>* const> fs) {
  std::vector<SpinorView<const T>> v;
  v.reserve(fs.size());
  for (const auto* f : fs) v.push_back(view(*f));
  return v;
}

}  // namespace femto
