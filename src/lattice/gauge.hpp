#pragma once
// Gauge-field generation and gluonic measurements.
//
// The paper consumes pre-generated "gluonic field configurations" (Fig. 2,
// first workflow box).  We generate our own ensembles from scratch:
//   * unit ("free field") configurations for analytic checks,
//   * hot (uniformly random SU(3)) starts,
//   * weak-field configurations U = exp(i eps H) near the identity,
//   * a quenched Wilson-action ensemble via Cabibbo-Marinari pseudo-heatbath
//     sweeps, which is how real (quenched) ensembles are produced.
//
// Measurements: average plaquette and per-direction staples (the heatbath
// input).

#include <cstdint>

#include "lattice/field.hpp"

namespace femto {

/// Set every link to the identity (free field).
void unit_gauge(GaugeField<double>& u);

/// Uniformly random SU(3) links ("hot start"), reproducible per (seed,
/// site, mu).
void hot_gauge(GaugeField<double>& u, std::uint64_t seed);

/// Weak field: U = projection to SU(3) of (1 + eps * G) with Gaussian G.
/// eps ~ 0.1-0.3 gives configurations close enough to free field for the
/// solver to converge quickly but non-trivial enough to exercise all terms.
void weak_gauge(GaugeField<double>& u, std::uint64_t seed, double eps);

/// Average plaquette: Re tr P / 3 averaged over all 6 planes and all sites.
/// 1.0 for a unit gauge field; ~0.59 for quenched Wilson beta = 6.0.
double plaquette(const GaugeField<double>& u);

/// Sum of the 6 staples around link (mu, site) — the environment a heatbath
/// update equilibrates against.
ColorMat<double> staple(const GaugeField<double>& u, int mu,
                        std::int64_t site);

/// One Cabibbo-Marinari pseudo-heatbath sweep (3 SU(2) subgroup updates per
/// link) of the quenched Wilson action at coupling beta.  Updates links
/// checkerboard-by-checkerboard so the sweep is parallel and reproducible.
void heatbath_sweep(GaugeField<double>& u, double beta, std::uint64_t seed,
                    int sweep_id);

/// Generate an equilibrated quenched ensemble member: hot start + n_thermal
/// heatbath sweeps.
GaugeField<double> quenched_config(std::shared_ptr<const Geometry> geom,
                                   double beta, int n_thermal,
                                   std::uint64_t seed);

/// Generate a quenched ENSEMBLE as a Markov chain: thermalise once, then
/// save a configuration every @p decorrelation sweeps (how production
/// ensembles are actually made — consecutive saves share the chain).
std::vector<GaugeField<double>> quenched_ensemble(
    std::shared_ptr<const Geometry> geom, double beta, int n_configs,
    int n_thermal, int decorrelation, std::uint64_t seed);

}  // namespace femto
