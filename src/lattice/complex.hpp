#pragma once
// Lightweight complex arithmetic for lattice kernels.
//
// We deliberately avoid std::complex in the hot kernels: its operator* is
// specified with NaN/Inf fix-ups that inhibit vectorisation, and we need a
// layout-compatible type for reinterpreting packed field storage.  Cplx<T>
// is a trivially-copyable (re, im) pair with the obvious algebra.

#include <cmath>
#include <type_traits>

namespace femto {

template <typename T>
struct Cplx {
  T re{};
  T im{};

  constexpr Cplx() = default;
  constexpr Cplx(T r, T i) : re(r), im(i) {}
  constexpr explicit Cplx(T r) : re(r), im(0) {}

  template <typename U>
  constexpr explicit Cplx(const Cplx<U>& o)
      : re(static_cast<T>(o.re)), im(static_cast<T>(o.im)) {}

  constexpr Cplx& operator+=(const Cplx& o) {
    re += o.re;
    im += o.im;
    return *this;
  }
  constexpr Cplx& operator-=(const Cplx& o) {
    re -= o.re;
    im -= o.im;
    return *this;
  }
  constexpr Cplx& operator*=(const Cplx& o) {
    const T r = re * o.re - im * o.im;
    im = re * o.im + im * o.re;
    re = r;
    return *this;
  }
  constexpr Cplx& operator*=(T s) {
    re *= s;
    im *= s;
    return *this;
  }
};

static_assert(std::is_trivially_copyable_v<Cplx<double>>);

template <typename T>
constexpr Cplx<T> operator+(Cplx<T> a, Cplx<T> b) {
  return {a.re + b.re, a.im + b.im};
}
template <typename T>
constexpr Cplx<T> operator-(Cplx<T> a, Cplx<T> b) {
  return {a.re - b.re, a.im - b.im};
}
template <typename T>
constexpr Cplx<T> operator-(Cplx<T> a) {
  return {-a.re, -a.im};
}
template <typename T>
constexpr Cplx<T> operator*(Cplx<T> a, Cplx<T> b) {
  return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}
template <typename T>
constexpr Cplx<T> operator*(T s, Cplx<T> a) {
  return {s * a.re, s * a.im};
}
template <typename T>
constexpr Cplx<T> operator*(Cplx<T> a, T s) {
  return {s * a.re, s * a.im};
}

/// Complex conjugate.
template <typename T>
constexpr Cplx<T> conj(Cplx<T> a) {
  return {a.re, -a.im};
}

/// conj(a) * b  (the inner-product kernel primitive).
template <typename T>
constexpr Cplx<T> conj_mul(Cplx<T> a, Cplx<T> b) {
  return {a.re * b.re + a.im * b.im, a.re * b.im - a.im * b.re};
}

/// i * a
template <typename T>
constexpr Cplx<T> imul(Cplx<T> a) {
  return {-a.im, a.re};
}

/// -i * a
template <typename T>
constexpr Cplx<T> mimul(Cplx<T> a) {
  return {a.im, -a.re};
}

template <typename T>
constexpr T norm2(Cplx<T> a) {
  return a.re * a.re + a.im * a.im;
}

template <typename T>
T abs(Cplx<T> a) {
  return std::sqrt(norm2(a));
}

template <typename T>
constexpr Cplx<T> operator/(Cplx<T> a, Cplx<T> b) {
  const T d = norm2(b);
  return {(a.re * b.re + a.im * b.im) / d, (a.im * b.re - a.re * b.im) / d};
}

using cdouble = Cplx<double>;
using cfloat = Cplx<float>;

}  // namespace femto
