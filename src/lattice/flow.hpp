#pragma once
// Wilson (gradient) flow: the modern scale-setting tool of the gA
// campaign's analysis chain (the CalLat ensembles are calibrated with
// gradient-flow scales).  The flow evolves the gauge field along the
// steepest descent of the Wilson action,
//
//   dU_mu/dt = Z_mu(U) U_mu,   Z = -projection_{su(3)}(U_mu staple_mu),
//
// smoothing ultraviolet fluctuations; t^2 <E(t)> defines the reference
// scales t0 / w0.  Integrated here with explicit Euler steps (epsilon
// small); the action decreases monotonically along the flow, which the
// tests enforce.

#include <vector>

#include "lattice/field.hpp"

namespace femto {

struct FlowParams {
  double epsilon = 0.02;  ///< integration step in flow time
  int steps = 10;
};

/// su(3) projection: antihermitian traceless part of a matrix.
ColorMat<double> project_antihermitian_traceless(const ColorMat<double>& m);

/// exp(M) for an antihermitian traceless M via a Taylor series (converges
/// fast for the small flow steps used here); the result is unitarised.
ColorMat<double> su3_exp(const ColorMat<double>& m);

/// One explicit Euler flow step: U <- exp(-eps * P_ah(U A)) U.
void wilson_flow_step(GaugeField<double>& u, double epsilon);

/// Integrate the flow; returns t^2 <E(t)> after every step (E from the
/// clover action density), the curve whose crossing of 0.3 defines t0.
std::vector<double> wilson_flow(GaugeField<double>& u,
                                const FlowParams& params);

}  // namespace femto
