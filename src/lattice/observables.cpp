#include "lattice/observables.hpp"

#include <cmath>

#include "lattice/flops.hpp"
#include "parallel/thread_pool.hpp"

namespace femto {

namespace {

/// Ordered product of links along a straight segment of @p len steps in
/// direction mu starting at @p site; returns the product and the end site.
ColorMat<double> line_product(const GaugeField<double>& u,
                              std::int64_t& site, int mu, int len) {
  ColorMat<double> p = ColorMat<double>::identity();
  for (int k = 0; k < len; ++k) {
    p = p * u.load(mu, site);
    site = u.geom().site_fwd(site, mu);
  }
  return p;
}

}  // namespace

double wilson_loop(const GaugeField<double>& u, int r, int t) {
  const auto& geom = u.geom();
  const double sum = par::parallel_reduce(
      0, static_cast<std::size_t>(geom.volume()),
      [&](std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t s = lo; s < hi; ++s) {
          for (int mu = 0; mu < 4; ++mu)
            for (int nu = mu + 1; nu < 4; ++nu) {
              // Go r in mu, t in nu, then back (daggered returns).
              std::int64_t x = static_cast<std::int64_t>(s);
              const ColorMat<double> bottom = line_product(u, x, mu, r);
              const ColorMat<double> right = line_product(u, x, nu, t);
              std::int64_t y = static_cast<std::int64_t>(s);
              const ColorMat<double> left = line_product(u, y, nu, t);
              const ColorMat<double> top = line_product(u, y, mu, r);
              // W = tr[ bottom * right * (left * top)^dag ]
              acc += trace(bottom * right * adj(left * top)).re;
            }
        }
        return acc;
      });
  // Per site and plane: two line products of r and t links plus the 3
  // matmuls combining the four sides.  One read pass over the gauge field
  // (repeated loads of the same links are cache traffic, not compulsory).
  flops::add(geom.volume() * 6 * (2 * std::int64_t(r + t) + 3) *
             flops::kSu3MatmulFlops);
  flops::add_bytes(u.bytes());
  return sum / (3.0 * 6.0 * static_cast<double>(geom.volume()));
}

double creutz_ratio(const GaugeField<double>& u, int r, int t) {
  const double w_rt = wilson_loop(u, r, t);
  const double w_r1t1 = wilson_loop(u, r - 1, t - 1);
  const double w_rt1 = wilson_loop(u, r, t - 1);
  const double w_r1t = wilson_loop(u, r - 1, t);
  return -std::log((w_rt * w_r1t1) / (w_rt1 * w_r1t));
}

Cplx<double> polyakov_loop(const GaugeField<double>& u) {
  const auto& geom = u.geom();
  const int nt = geom.extent(3);
  Cplx<double> sum{};
  std::int64_t count = 0;
  // Walk every spatial site on the t = 0 slice and wind around time.
  for (std::int64_t s = 0; s < geom.volume(); ++s) {
    if (geom.coord(s)[3] != 0) continue;
    std::int64_t x = s;
    const ColorMat<double> line = line_product(u, x, 3, nt);
    sum += trace(line);
    ++count;
  }
  return Cplx<double>(1.0 / (3.0 * static_cast<double>(count))) * sum;
}

ColorMat<double> clover_field_strength(const GaugeField<double>& u,
                                       std::int64_t site, int mu, int nu) {
  const auto& g = u.geom();
  // The four plaquette leaves around `site` in the (mu, nu) plane.
  const auto xpm = g.site_fwd(site, mu);
  const auto xpn = g.site_fwd(site, nu);
  const auto xmm = g.site_bwd(site, mu);
  const auto xmn = g.site_bwd(site, nu);
  const auto xpm_mn = g.site_bwd(xpm, nu);
  const auto xmm_pn = g.site_fwd(xmm, nu);
  const auto xmm_mn = g.site_bwd(xmm, nu);

  // The four plaquette leaves, all traversed counter-clockwise in the
  // (mu, nu) plane and all based at `site`.
  // leaf 1 (+mu, +nu): U_mu(x) U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag
  ColorMat<double> clover = u.load(mu, site) * u.load(nu, xpm) *
                            adj(u.load(nu, site) * u.load(mu, xpn));
  // leaf 2 (+nu, -mu): U_nu(x) U_mu(x-mu+nu)^dag U_nu(x-mu)^dag U_mu(x-mu)
  clover += u.load(nu, site) * adj(u.load(mu, xmm_pn)) *
            adj(u.load(nu, xmm)) * u.load(mu, xmm);
  // leaf 3 (-mu, -nu): U_mu(x-mu)^dag U_nu(x-mu-nu)^dag U_mu(x-mu-nu)
  //                    U_nu(x-nu)
  clover += adj(u.load(mu, xmm)) * adj(u.load(nu, xmm_mn)) *
            u.load(mu, xmm_mn) * u.load(nu, xmn);
  // leaf 4 (-nu, +mu): U_nu(x-nu)^dag U_mu(x-nu) U_nu(x+mu-nu) U_mu(x)^dag
  clover += adj(u.load(nu, xmn)) * u.load(mu, xmn) * u.load(nu, xpm_mn) *
            adj(u.load(mu, site));

  // F = (Q - Q^dag)/8 minus the trace part (antihermitian traceless).
  ColorMat<double> f = clover - adj(clover);
  f *= 1.0 / 8.0;
  const Cplx<double> tr = trace(f);
  const Cplx<double> third{tr.re / 3.0, tr.im / 3.0};
  for (int i = 0; i < kNc; ++i) f(i, i) -= third;
  return f;
}

double action_density(const GaugeField<double>& u) {
  const auto& geom = u.geom();
  const double sum = par::parallel_reduce(
      0, static_cast<std::size_t>(geom.volume()),
      [&](std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t s = lo; s < hi; ++s)
          for (int mu = 0; mu < 4; ++mu)
            for (int nu = mu + 1; nu < 4; ++nu) {
              const auto f = clover_field_strength(
                  u, static_cast<std::int64_t>(s), mu, nu);
              acc += norm2(f);  // tr[F^dag F]
            }
        return acc;
      });
  // Per site and plane: the 4-leaf clover (12 matmuls plus adds and the
  // antihermitian projection, ~13 matmuls-worth) and its norm.
  flops::add(geom.volume() * 6 * 13 * flops::kSu3MatmulFlops);
  flops::add_bytes(u.bytes());
  return sum / static_cast<double>(geom.volume());
}

}  // namespace femto
