#pragma once
// Wilson spinors (Ns=4 x Nc=3 complex components per site) and the
// DeGrand–Rossi gamma-matrix basis used by QUDA/Chroma.
//
// The dslash kernels use the standard half-spinor trick: (1 -+ gamma_mu) has
// rank 2, so a neighbour spinor is first *projected* to two spin components,
// the two SU(3) mat-vecs are applied, and the result is *reconstructed* to
// four components with a +-1 or +-i coefficient.  This halves the matrix
// work per direction and is what gives the Wilson dslash its canonical
// 1320 flop/site count at Nc=3.

#include <array>

#include "lattice/complex.hpp"
#include "lattice/su3.hpp"

namespace femto {

/// A full Wilson spinor: 4 spins x 3 colors.
template <typename T>
struct Spinor {
  std::array<ColorVec<T>, kNs> s{};

  constexpr ColorVec<T>& operator[](int spin) {
    return s[static_cast<size_t>(spin)];
  }
  constexpr const ColorVec<T>& operator[](int spin) const {
    return s[static_cast<size_t>(spin)];
  }

  constexpr Spinor& operator+=(const Spinor& o) {
    for (int i = 0; i < kNs; ++i) s[i] += o.s[i];
    return *this;
  }
  constexpr Spinor& operator-=(const Spinor& o) {
    for (int i = 0; i < kNs; ++i) s[i] -= o.s[i];
    return *this;
  }
  constexpr Spinor& operator*=(T a) {
    for (int i = 0; i < kNs; ++i) s[i] *= a;
    return *this;
  }
};

template <typename T>
constexpr Spinor<T> operator+(Spinor<T> a, const Spinor<T>& b) {
  a += b;
  return a;
}
template <typename T>
constexpr Spinor<T> operator-(Spinor<T> a, const Spinor<T>& b) {
  a -= b;
  return a;
}
template <typename T>
constexpr Spinor<T> operator*(T x, Spinor<T> a) {
  a *= x;
  return a;
}

template <typename T>
constexpr T norm2(const Spinor<T>& a) {
  T r{};
  for (int i = 0; i < kNs; ++i) r += norm2(a.s[i]);
  return r;
}

template <typename T>
constexpr Cplx<T> dot(const Spinor<T>& a, const Spinor<T>& b) {
  Cplx<T> r{};
  for (int i = 0; i < kNs; ++i) r += dot(a.s[i], b.s[i]);
  return r;
}

/// A half spinor: the 2-spin projection used inside the stencil.
template <typename T>
struct HalfSpinor {
  std::array<ColorVec<T>, 2> h{};
  constexpr ColorVec<T>& operator[](int i) {
    return h[static_cast<size_t>(i)];
  }
  constexpr const ColorVec<T>& operator[](int i) const {
    return h[static_cast<size_t>(i)];
  }
};

// ---------------------------------------------------------------------------
// DeGrand–Rossi gamma basis.
//
//   gx = [[0,0,0,i],[0,0,i,0],[0,-i,0,0],[-i,0,0,0]]
//   gy = [[0,0,0,-1],[0,0,1,0],[0,1,0,0],[-1,0,0,0]]
//   gz = [[0,0,i,0],[0,0,0,-i],[-i,0,0,0],[0,i,0,0]]
//   gt = [[0,0,1,0],[0,0,0,1],[1,0,0,0],[0,1,0,0]]
//   g5 = gx gy gz gt = diag(+1,+1,-1,-1)
//
// apply_gamma() below implements (gamma_mu psi) explicitly; project /
// reconstruct implement the rank-2 structure of (1 -+ gamma_mu).
// ---------------------------------------------------------------------------

enum Dir : int { kDirX = 0, kDirY = 1, kDirZ = 2, kDirT = 3 };
inline constexpr int kNDim = 4;

/// gamma_mu * psi for mu in {0,1,2,3}; mu == 4 applies gamma_5.
template <typename T>
constexpr Spinor<T> apply_gamma(int mu, const Spinor<T>& p) {
  Spinor<T> r;
  switch (mu) {
    case kDirX:  // (i p3, i p2, -i p1, -i p0)
      for (int c = 0; c < kNc; ++c) {
        r[0][c] = imul(p[3][c]);
        r[1][c] = imul(p[2][c]);
        r[2][c] = mimul(p[1][c]);
        r[3][c] = mimul(p[0][c]);
      }
      break;
    case kDirY:  // (-p3, p2, p1, -p0)
      for (int c = 0; c < kNc; ++c) {
        r[0][c] = -p[3][c];
        r[1][c] = p[2][c];
        r[2][c] = p[1][c];
        r[3][c] = -p[0][c];
      }
      break;
    case kDirZ:  // (i p2, -i p3, -i p0, i p1)
      for (int c = 0; c < kNc; ++c) {
        r[0][c] = imul(p[2][c]);
        r[1][c] = mimul(p[3][c]);
        r[2][c] = mimul(p[0][c]);
        r[3][c] = imul(p[1][c]);
      }
      break;
    case kDirT:  // (p2, p3, p0, p1)
      for (int c = 0; c < kNc; ++c) {
        r[0][c] = p[2][c];
        r[1][c] = p[3][c];
        r[2][c] = p[0][c];
        r[3][c] = p[1][c];
      }
      break;
    default:  // gamma_5 = diag(1,1,-1,-1)
      for (int c = 0; c < kNc; ++c) {
        r[0][c] = p[0][c];
        r[1][c] = p[1][c];
        r[2][c] = -p[2][c];
        r[3][c] = -p[3][c];
      }
      break;
  }
  return r;
}

/// gamma_5 * psi.
template <typename T>
constexpr Spinor<T> apply_gamma5(const Spinor<T>& p) {
  return apply_gamma(4, p);
}

/// Chiral projector P+ = (1+g5)/2: keeps spins {0,1}.
template <typename T>
constexpr Spinor<T> chiral_plus(const Spinor<T>& p) {
  Spinor<T> r;
  r[0] = p[0];
  r[1] = p[1];
  return r;
}

/// Chiral projector P- = (1-g5)/2: keeps spins {2,3}.
template <typename T>
constexpr Spinor<T> chiral_minus(const Spinor<T>& p) {
  Spinor<T> r;
  r[2] = p[2];
  r[3] = p[3];
  return r;
}

/// Project psi with (1 - sign*gamma_mu) onto its two independent spin rows.
/// sign = +1 corresponds to (1 - gamma_mu) (forward hop), -1 to
/// (1 + gamma_mu) (backward hop).
template <typename T>
constexpr HalfSpinor<T> project(int mu, int sign, const Spinor<T>& p) {
  HalfSpinor<T> h;
  const bool fwd = sign > 0;  // (1 - gamma_mu)
  switch (mu) {
    case kDirX:
      // (1-gx): h0 = p0 - i p3, h1 = p1 - i p2
      // (1+gx): h0 = p0 + i p3, h1 = p1 + i p2
      for (int c = 0; c < kNc; ++c) {
        h[0][c] = fwd ? p[0][c] - imul(p[3][c]) : p[0][c] + imul(p[3][c]);
        h[1][c] = fwd ? p[1][c] - imul(p[2][c]) : p[1][c] + imul(p[2][c]);
      }
      break;
    case kDirY:
      // (1-gy): h0 = p0 + p3, h1 = p1 - p2
      // (1+gy): h0 = p0 - p3, h1 = p1 + p2
      for (int c = 0; c < kNc; ++c) {
        h[0][c] = fwd ? p[0][c] + p[3][c] : p[0][c] - p[3][c];
        h[1][c] = fwd ? p[1][c] - p[2][c] : p[1][c] + p[2][c];
      }
      break;
    case kDirZ:
      // (1-gz): h0 = p0 - i p2, h1 = p1 + i p3
      // (1+gz): h0 = p0 + i p2, h1 = p1 - i p3
      for (int c = 0; c < kNc; ++c) {
        h[0][c] = fwd ? p[0][c] - imul(p[2][c]) : p[0][c] + imul(p[2][c]);
        h[1][c] = fwd ? p[1][c] + imul(p[3][c]) : p[1][c] - imul(p[3][c]);
      }
      break;
    default:
      // (1-gt): h0 = p0 - p2, h1 = p1 - p3
      // (1+gt): h0 = p0 + p2, h1 = p1 + p3
      for (int c = 0; c < kNc; ++c) {
        h[0][c] = fwd ? p[0][c] - p[2][c] : p[0][c] + p[2][c];
        h[1][c] = fwd ? p[1][c] - p[3][c] : p[1][c] + p[3][c];
      }
      break;
  }
  return h;
}

/// Reconstruct the 4-spinor (1 - sign*gamma_mu) psi from its projection and
/// accumulate into @p acc.  The lower spin rows are +-1/+-i multiples of the
/// upper ones (see derivation in the header comment).
template <typename T>
constexpr void reconstruct_add(int mu, int sign, const HalfSpinor<T>& h,
                               Spinor<T>& acc) {
  const bool fwd = sign > 0;  // (1 - gamma_mu)
  for (int c = 0; c < kNc; ++c) {
    acc[0][c] += h[0][c];
    acc[1][c] += h[1][c];
  }
  switch (mu) {
    case kDirX:
      // (1-gx): r2 = i h1, r3 = i h0 ; (1+gx): r2 = -i h1, r3 = -i h0
      for (int c = 0; c < kNc; ++c) {
        acc[2][c] += fwd ? imul(h[1][c]) : mimul(h[1][c]);
        acc[3][c] += fwd ? imul(h[0][c]) : mimul(h[0][c]);
      }
      break;
    case kDirY:
      // (1-gy): r2 = -h1, r3 = h0 ; (1+gy): r2 = h1, r3 = -h0
      for (int c = 0; c < kNc; ++c) {
        acc[2][c] += fwd ? -h[1][c] : h[1][c];
        acc[3][c] += fwd ? h[0][c] : -h[0][c];
      }
      break;
    case kDirZ:
      // (1-gz): r2 = i h0, r3 = -i h1 ; (1+gz): r2 = -i h0, r3 = i h1
      for (int c = 0; c < kNc; ++c) {
        acc[2][c] += fwd ? imul(h[0][c]) : mimul(h[0][c]);
        acc[3][c] += fwd ? mimul(h[1][c]) : imul(h[1][c]);
      }
      break;
    default:
      // (1-gt): r2 = -h0, r3 = -h1 ; (1+gt): r2 = h0, r3 = h1
      for (int c = 0; c < kNc; ++c) {
        acc[2][c] += fwd ? -h[0][c] : h[0][c];
        acc[3][c] += fwd ? -h[1][c] : h[1][c];
      }
      break;
  }
}

/// U * h applied to both half-spinor rows (two SU(3) mat-vecs).
template <typename T>
constexpr HalfSpinor<T> mul(const ColorMat<T>& u, const HalfSpinor<T>& h) {
  HalfSpinor<T> r;
  r[0] = u * h[0];
  r[1] = u * h[1];
  return r;
}

/// U^dag * h applied to both half-spinor rows.
template <typename T>
constexpr HalfSpinor<T> adj_mul(const ColorMat<T>& u, const HalfSpinor<T>& h) {
  HalfSpinor<T> r;
  r[0] = adj_mul(u, h[0]);
  r[1] = adj_mul(u, h[1]);
  return r;
}

}  // namespace femto
