#include "lattice/gauge.hpp"

#include <cmath>

#include "lattice/flops.hpp"
#include "parallel/thread_pool.hpp"

namespace femto {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Uniformly random SU(3) matrix: Gaussian complex entries projected by
/// Gram-Schmidt (Haar up to the measure of the projection; fully adequate
/// for hot starts, which are immediately thermalised anyway).
ColorMat<double> random_su3(Xoshiro256& rng) {
  ColorMat<double> g;
  for (auto& e : g.m) e = {rng.gaussian(), rng.gaussian()};
  return project_su3(g);
}

}  // namespace

void unit_gauge(GaugeField<double>& u) {
  const auto& geom = u.geom();
  const auto id = ColorMat<double>::identity();
  for (int mu = 0; mu < 4; ++mu)
    for (std::int64_t s = 0; s < geom.volume(); ++s) u.store(mu, s, id);
}

void hot_gauge(GaugeField<double>& u, std::uint64_t seed) {
  const auto& geom = u.geom();
  // femtolint: allow(kernel-traffic): RNG-bound initialisation, not a
  // measured stencil/BLAS path; charging it would skew solver AI numbers.
  par::parallel_for(0, static_cast<size_t>(geom.volume()), [&](size_t s) {
    for (int mu = 0; mu < 4; ++mu) {
      Xoshiro256 rng(seed, s, static_cast<std::uint64_t>(mu));
      u.store(mu, static_cast<std::int64_t>(s), random_su3(rng));
    }
  });
}

void weak_gauge(GaugeField<double>& u, std::uint64_t seed, double eps) {
  const auto& geom = u.geom();
  // femtolint: allow(kernel-traffic): RNG-bound initialisation, as above.
  par::parallel_for(0, static_cast<size_t>(geom.volume()), [&](size_t s) {
    for (int mu = 0; mu < 4; ++mu) {
      Xoshiro256 rng(seed, s, static_cast<std::uint64_t>(mu));
      ColorMat<double> g = ColorMat<double>::identity();
      for (auto& e : g.m)
        e += Cplx<double>(eps * rng.gaussian(), eps * rng.gaussian());
      u.store(mu, static_cast<std::int64_t>(s), project_su3(g));
    }
  });
}

double plaquette(const GaugeField<double>& u) {
  const auto& geom = u.geom();
  const double sum = par::parallel_reduce(
      0, static_cast<size_t>(geom.volume()), [&](size_t lo, size_t hi) {
        double acc = 0.0;
        for (size_t s = lo; s < hi; ++s) {
          const auto site = static_cast<std::int64_t>(s);
          for (int mu = 0; mu < 4; ++mu)
            for (int nu = mu + 1; nu < 4; ++nu) {
              const auto xpm = geom.site_fwd(site, mu);
              const auto xpn = geom.site_fwd(site, nu);
              const ColorMat<double> p = u.load(mu, site) * u.load(nu, xpm) *
                                         adj(u.load(nu, site) *
                                             u.load(mu, xpn));
              acc += trace(p).re;
            }
        }
        return acc;
      });
  // 6 planes x 3 matmuls per site; one read pass over the gauge field.
  flops::add(geom.volume() * 6 * 3 * flops::kSu3MatmulFlops);
  flops::add_bytes(u.bytes());
  return sum / (3.0 * 6.0 * static_cast<double>(geom.volume()));
}

ColorMat<double> staple(const GaugeField<double>& u, int mu,
                        std::int64_t site) {
  const auto& geom = u.geom();
  ColorMat<double> a;  // zero
  const auto xpm = geom.site_fwd(site, mu);
  for (int nu = 0; nu < 4; ++nu) {
    if (nu == mu) continue;
    // Upper staple: U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag
    const auto xpn = geom.site_fwd(site, nu);
    a += u.load(nu, xpm) * adj(u.load(nu, site) * u.load(mu, xpn));
    // Lower staple: U_nu(x+mu-nu)^dag U_mu(x-nu)^dag U_nu(x-nu)
    const auto xmn = geom.site_bwd(site, nu);
    const auto xpm_mn = geom.site_bwd(xpm, nu);
    a += adj(u.load(mu, xmn) * u.load(nu, xpm_mn)) * u.load(nu, xmn);
  }
  return a;
}

namespace {

/// One SU(2) element as a unit quaternion (a0, a1, a2, a3).
struct Quat {
  double a0, a1, a2, a3;
};

/// Kennedy-Pendleton sampling of a0 with weight sqrt(1-a0^2) exp(alpha a0).
double kp_sample_a0(double alpha, Xoshiro256& rng) {
  for (int tries = 0; tries < 10000; ++tries) {
    const double r1 = rng.uniform_pos();
    const double r2 = rng.uniform();
    const double r3 = rng.uniform_pos();
    const double c = std::cos(kTwoPi * r2);
    const double lam2 = -(std::log(r1) + c * c * std::log(r3)) / (2.0 * alpha);
    const double r4 = rng.uniform();
    if (r4 * r4 <= 1.0 - lam2) return 1.0 - 2.0 * lam2;
  }
  return 1.0;  // pathological alpha; accept the cold value
}

/// Sample g with P(g) ~ exp(alpha * g0) d(Haar) for SU(2).
Quat su2_heatbath(double alpha, Xoshiro256& rng) {
  const double a0 = kp_sample_a0(alpha, rng);
  const double r = std::sqrt(std::max(0.0, 1.0 - a0 * a0));
  // Random direction on the 2-sphere.
  const double ct = 2.0 * rng.uniform() - 1.0;
  const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
  const double phi = kTwoPi * rng.uniform();
  return {a0, r * st * std::cos(phi), r * st * std::sin(phi), r * ct};
}

/// Quaternion product c = a * b (SU(2) group law).
Quat qmul(const Quat& a, const Quat& b) {
  return {a.a0 * b.a0 - a.a1 * b.a1 - a.a2 * b.a2 - a.a3 * b.a3,
          a.a0 * b.a1 + a.a1 * b.a0 + a.a2 * b.a3 - a.a3 * b.a2,
          a.a0 * b.a2 - a.a1 * b.a3 + a.a2 * b.a0 + a.a3 * b.a1,
          a.a0 * b.a3 + a.a1 * b.a2 - a.a2 * b.a1 + a.a3 * b.a0};
}

/// The three SU(2) subgroups of SU(3) (index pairs).
constexpr int kSub[3][2] = {{0, 1}, {0, 2}, {1, 2}};

/// Update link w = U*A restricted to subgroup k, returning the embedded
/// SU(3) rotation g (identity outside the 2x2 block).
ColorMat<double> cm_subgroup_update(const ColorMat<double>& w, int k,
                                    double beta, Xoshiro256& rng) {
  const int i = kSub[k][0];
  const int j = kSub[k][1];
  // Project the 2x2 block onto the quaternion basis {1, i sigma}.
  const Quat wq{(w(i, i).re + w(j, j).re) / 2.0,
                (w(i, j).im + w(j, i).im) / 2.0,
                (w(i, j).re - w(j, i).re) / 2.0,
                (w(i, i).im - w(j, j).im) / 2.0};
  const double kn = std::sqrt(wq.a0 * wq.a0 + wq.a1 * wq.a1 +
                              wq.a2 * wq.a2 + wq.a3 * wq.a3);
  Quat g;
  if (kn < 1e-14) {
    // Degenerate environment: any SU(2) element is equally likely.
    const Quat h = su2_heatbath(1e-8, rng);
    g = h;
  } else {
    const Quat v{wq.a0 / kn, wq.a1 / kn, wq.a2 / kn, wq.a3 / kn};
    // P(h) ~ exp(2 beta k / Nc * h0); new block g = h * v^{-1}.
    const double alpha = 2.0 * beta * kn / 3.0;
    const Quat h = su2_heatbath(alpha, rng);
    const Quat vinv{v.a0, -v.a1, -v.a2, -v.a3};
    g = qmul(h, vinv);
  }
  // Embed g into SU(3).
  ColorMat<double> r = ColorMat<double>::identity();
  r(i, i) = {g.a0, g.a3};
  r(i, j) = {g.a2, g.a1};
  r(j, i) = {-g.a2, g.a1};
  r(j, j) = {g.a0, -g.a3};
  return r;
}

}  // namespace

void heatbath_sweep(GaugeField<double>& u, double beta, std::uint64_t seed,
                    int sweep_id) {
  const auto& geom = u.geom();
  const std::int64_t volh = geom.half_volume();
  // (parity, mu) classes update independently: the staple of a link at
  // parity p in direction mu reads mu-links only at the opposite parity and
  // nu != mu links everywhere, none of which are written in this class.
  for (int par = 0; par < 2; ++par) {
    for (int mu = 0; mu < 4; ++mu) {
      par::parallel_for(0, static_cast<size_t>(volh), [&](size_t cb) {
        const std::int64_t site = std::int64_t(par) * volh +
                                  static_cast<std::int64_t>(cb);
        Xoshiro256 rng(seed,
                       static_cast<std::uint64_t>(site),
                       static_cast<std::uint64_t>(
                           (std::uint64_t(sweep_id) * 8 + std::uint64_t(mu)) *
                               2 +
                           std::uint64_t(par)));
        ColorMat<double> link = u.load(mu, site);
        const ColorMat<double> a = staple(u, mu, site);
        for (int k = 0; k < 3; ++k) {
          const ColorMat<double> g =
              cm_subgroup_update(link * a, k, beta, rng);
          link = g * link;
        }
        u.store(mu, site, project_su3(link));
      });
    }
  }
  // 8 (parity, mu) classes of volh links: staple sum + 3 SU(2) subgroup
  // updates + projection (~4 matmuls-worth) each.  Traffic: the sweep
  // reads the staple environment and rewrites every link once.
  flops::add(8 * geom.half_volume() *
             (flops::kStapleFlops + 4 * flops::kSu3MatmulFlops));
  flops::add_bytes(2 * u.bytes());
}

GaugeField<double> quenched_config(std::shared_ptr<const Geometry> geom,
                                   double beta, int n_thermal,
                                   std::uint64_t seed) {
  GaugeField<double> u(std::move(geom));
  hot_gauge(u, seed);
  for (int sweep = 0; sweep < n_thermal; ++sweep)
    heatbath_sweep(u, beta, seed + 1, sweep);
  return u;
}

std::vector<GaugeField<double>> quenched_ensemble(
    std::shared_ptr<const Geometry> geom, double beta, int n_configs,
    int n_thermal, int decorrelation, std::uint64_t seed) {
  std::vector<GaugeField<double>> configs;
  configs.reserve(static_cast<std::size_t>(n_configs));
  GaugeField<double> u(std::move(geom));
  hot_gauge(u, seed);
  int sweep = 0;
  for (; sweep < n_thermal; ++sweep) heatbath_sweep(u, beta, seed + 1, sweep);
  for (int cfg = 0; cfg < n_configs; ++cfg) {
    for (int d = 0; d < decorrelation; ++d, ++sweep)
      heatbath_sweep(u, beta, seed + 1, sweep);
    configs.push_back(u);
  }
  return configs;
}

}  // namespace femto
