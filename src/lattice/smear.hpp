#pragma once
// Smearing: the standard signal-improvement tools of production nucleon
// calculations (the paper's campaign uses smeared sources to suppress the
// excited-state contamination its fits then remove).
//
//   * APE link smearing: U' = Project_SU3[(1 - alpha) U + alpha/6 * staples],
//     iterated; smooths ultraviolet noise out of the gauge field.
//   * Wuppertal (Gaussian) source smearing: psi' = (1 + alpha H)^N psi
//     with H the gauge-covariant SPATIAL hopping operator; turns point
//     sources into extended ones with better ground-state overlap.

#include <cstdint>

#include "lattice/field.hpp"

namespace femto {

struct ApeParams {
  double alpha = 0.5;  ///< staple weight
  int iterations = 4;
};

/// One APE smearing step (all links, all directions), SU(3)-projected.
void ape_smear_step(GaugeField<double>& u, double alpha);

/// Full APE smearing; returns the smeared copy.
GaugeField<double> ape_smear(const GaugeField<double>& u,
                             const ApeParams& params);

struct WuppertalParams {
  double alpha = 0.25;  ///< hopping weight per step
  int iterations = 10;
};

/// Gauge-covariant spatial hopping: out(x) = sum_{i in x,y,z}
/// [U_i(x) psi(x+i) + U_i(x-i)^dag psi(x-i)].  Time slices never mix.
void spatial_hop(SpinorField<double>& out, const GaugeField<double>& u,
                 const SpinorField<double>& in);

/// Wuppertal smearing of a 4D (l5 == 1) full field, in place.
void wuppertal_smear(SpinorField<double>& psi, const GaugeField<double>& u,
                     const WuppertalParams& params);

/// RMS spatial radius of |psi|^2 on one timeslice around a centre point
/// (diagnostic for smearing width; respects the periodic wrap).
double smearing_radius(const SpinorField<double>& psi, const Coord& center);

}  // namespace femto
