#pragma once
// Flop accounting, following the paper's "Performance Measurement Method":
// "we simply add up the necessary number of operations required in the
// stencil application and the auxiliary BLAS-1 operations", using counts
// conventional in the LQCD domain.

#include <atomic>
#include <cstdint>

namespace femto::flops {

/// Canonical Wilson dslash cost at Nc = 3: 8 directions x (SU(3) mat-vec on
/// two half-spinor rows + project/reconstruct) = 1320 flops per 4D site.
inline constexpr std::int64_t kWilsonDslashPerSite = 1320;

/// Fifth-dimension block matvec: two L5 x L5 real matrices applied to 6
/// complex components each => 4 flops per (real coeff x complex) element.
inline constexpr std::int64_t fifth_dim_per_site(int l5) {
  return std::int64_t(l5) * l5 * 12 * 4;
}

/// SU(3) matrix-matrix multiply: 9 entries x (3 cmul + 2 cadd) = 198 flops.
inline constexpr std::int64_t kSu3MatmulFlops = 198;

/// SU(3) matrix-vector multiply: 3 rows x (3 cmul + 2 cadd) = 66 flops.
inline constexpr std::int64_t kSu3MatvecFlops = 66;

/// Sum of the six staples around one link: 4 matmuls per orthogonal
/// direction (upper + lower staple, 2 each) plus 6 matrix adds.
inline constexpr std::int64_t kStapleFlops = 12 * kSu3MatmulFlops + 6 * 18;

/// Thread-safe global flop AND byte counters.  Kernels add to them;
/// benchmarks and the sustained-performance accounting read and reset them.
///
/// The byte counter models compulsory DRAM traffic of the BLAS-1 phase the
/// same way the flop counter models arithmetic: each kernel charges one
/// read per input field pass, one read + one write for a field it updates
/// in place (write-allocate), and nothing for data that stays within a
/// cache-resident block of a single fused pass.  The ratio
/// flops::get() / flops::bytes() is the measured arithmetic intensity the
/// paper quotes as 1.8-1.9 for the full solver.
class Counter {
 public:
  static Counter& global() {
    static Counter c;
    return c;
  }
  void add(std::int64_t n) { count_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t get() const { return count_.load(std::memory_order_relaxed); }
  void add_bytes(std::int64_t n) {
    bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> bytes_{0};
};

inline void add(std::int64_t n) { Counter::global().add(n); }
inline std::int64_t get() { return Counter::global().get(); }
inline void add_bytes(std::int64_t n) { Counter::global().add_bytes(n); }
inline std::int64_t bytes() { return Counter::global().bytes(); }
inline void reset() { Counter::global().reset(); }

}  // namespace femto::flops
