#pragma once
// SU(3) color algebra: 3-component color vectors and 3x3 color matrices.
// These are the dense "submatrices along the diagonal" of the Dirac stencil
// described in the paper (Nc = 3 fundamental representation of SU(3)).

#include <array>
#include <cmath>

#include "lattice/complex.hpp"

namespace femto {

inline constexpr int kNc = 3;  ///< colors (fundamental rep of SU(3))
inline constexpr int kNs = 4;  ///< quark spin components

/// A color vector: 3 complex components.
template <typename T>
struct ColorVec {
  std::array<Cplx<T>, kNc> c{};

  constexpr Cplx<T>& operator[](int i) { return c[static_cast<size_t>(i)]; }
  constexpr const Cplx<T>& operator[](int i) const {
    return c[static_cast<size_t>(i)];
  }

  constexpr ColorVec& operator+=(const ColorVec& o) {
    for (int i = 0; i < kNc; ++i) c[i] += o.c[i];
    return *this;
  }
  constexpr ColorVec& operator-=(const ColorVec& o) {
    for (int i = 0; i < kNc; ++i) c[i] -= o.c[i];
    return *this;
  }
  constexpr ColorVec& operator*=(T s) {
    for (int i = 0; i < kNc; ++i) c[i] *= s;
    return *this;
  }
};

template <typename T>
constexpr ColorVec<T> operator+(ColorVec<T> a, const ColorVec<T>& b) {
  a += b;
  return a;
}
template <typename T>
constexpr ColorVec<T> operator-(ColorVec<T> a, const ColorVec<T>& b) {
  a -= b;
  return a;
}
template <typename T>
constexpr ColorVec<T> operator*(Cplx<T> s, const ColorVec<T>& v) {
  ColorVec<T> r;
  for (int i = 0; i < kNc; ++i) r[i] = s * v[i];
  return r;
}
template <typename T>
constexpr ColorVec<T> operator*(T s, ColorVec<T> v) {
  v *= s;
  return v;
}

template <typename T>
constexpr Cplx<T> dot(const ColorVec<T>& a, const ColorVec<T>& b) {
  Cplx<T> s{};
  for (int i = 0; i < kNc; ++i) s += conj_mul(a[i], b[i]);
  return s;
}

template <typename T>
constexpr T norm2(const ColorVec<T>& a) {
  T s{};
  for (int i = 0; i < kNc; ++i) s += norm2(a[i]);
  return s;
}

/// A 3x3 complex color matrix (a gauge link when unitary).
template <typename T>
struct ColorMat {
  // Row-major: m[row*3 + col].
  std::array<Cplx<T>, kNc * kNc> m{};

  constexpr Cplx<T>& operator()(int r, int c) {
    return m[static_cast<size_t>(r * kNc + c)];
  }
  constexpr const Cplx<T>& operator()(int r, int c) const {
    return m[static_cast<size_t>(r * kNc + c)];
  }

  static constexpr ColorMat identity() {
    ColorMat u;
    for (int i = 0; i < kNc; ++i) u(i, i) = Cplx<T>(T(1), T(0));
    return u;
  }

  constexpr ColorMat& operator+=(const ColorMat& o) {
    for (size_t i = 0; i < m.size(); ++i) m[i] += o.m[i];
    return *this;
  }
  constexpr ColorMat& operator-=(const ColorMat& o) {
    for (size_t i = 0; i < m.size(); ++i) m[i] -= o.m[i];
    return *this;
  }
  constexpr ColorMat& operator*=(T s) {
    for (auto& e : m) e *= s;
    return *this;
  }
  constexpr ColorMat& operator*=(Cplx<T> s) {
    for (auto& e : m) e *= s;
    return *this;
  }
};

template <typename T>
constexpr ColorMat<T> operator+(ColorMat<T> a, const ColorMat<T>& b) {
  a += b;
  return a;
}
template <typename T>
constexpr ColorMat<T> operator-(ColorMat<T> a, const ColorMat<T>& b) {
  a -= b;
  return a;
}
template <typename T>
constexpr ColorMat<T> operator*(T s, ColorMat<T> a) {
  a *= s;
  return a;
}
template <typename T>
constexpr ColorMat<T> operator*(Cplx<T> s, ColorMat<T> a) {
  a *= s;
  return a;
}

/// Matrix product a*b.
template <typename T>
constexpr ColorMat<T> operator*(const ColorMat<T>& a, const ColorMat<T>& b) {
  ColorMat<T> r;
  for (int i = 0; i < kNc; ++i)
    for (int j = 0; j < kNc; ++j) {
      Cplx<T> s{};
      for (int k = 0; k < kNc; ++k) s += a(i, k) * b(k, j);
      r(i, j) = s;
    }
  return r;
}

/// Matrix–vector product u*v (the 66-flop kernel at the core of the stencil).
template <typename T>
constexpr ColorVec<T> operator*(const ColorMat<T>& u, const ColorVec<T>& v) {
  ColorVec<T> r;
  for (int i = 0; i < kNc; ++i) {
    Cplx<T> s{};
    for (int k = 0; k < kNc; ++k) s += u(i, k) * v[k];
    r[i] = s;
  }
  return r;
}

/// Hermitian-conjugate matrix–vector product u^dag * v.
template <typename T>
constexpr ColorVec<T> adj_mul(const ColorMat<T>& u, const ColorVec<T>& v) {
  ColorVec<T> r;
  for (int i = 0; i < kNc; ++i) {
    Cplx<T> s{};
    for (int k = 0; k < kNc; ++k) s += conj_mul(u(k, i), v[k]);
    r[i] = s;
  }
  return r;
}

/// Hermitian conjugate (adjoint).
template <typename T>
constexpr ColorMat<T> adj(const ColorMat<T>& u) {
  ColorMat<T> r;
  for (int i = 0; i < kNc; ++i)
    for (int j = 0; j < kNc; ++j) r(i, j) = conj(u(j, i));
  return r;
}

template <typename T>
constexpr Cplx<T> trace(const ColorMat<T>& u) {
  Cplx<T> s{};
  for (int i = 0; i < kNc; ++i) s += u(i, i);
  return s;
}

template <typename T>
constexpr T norm2(const ColorMat<T>& u) {
  T s{};
  for (const auto& e : u.m) s += norm2(e);
  return s;
}

/// Frobenius distance^2 between two matrices (used by unitarity tests).
template <typename T>
constexpr T dist2(const ColorMat<T>& a, const ColorMat<T>& b) {
  T s{};
  for (size_t i = 0; i < a.m.size(); ++i) s += norm2(a.m[i] - b.m[i]);
  return s;
}

template <typename T>
constexpr Cplx<T> det(const ColorMat<T>& u) {
  return u(0, 0) * (u(1, 1) * u(2, 2) - u(1, 2) * u(2, 1)) -
         u(0, 1) * (u(1, 0) * u(2, 2) - u(1, 2) * u(2, 0)) +
         u(0, 2) * (u(1, 0) * u(2, 1) - u(1, 1) * u(2, 0));
}

/// Project a matrix to SU(3) by Gram–Schmidt on the first two rows and
/// completing the third as the conjugate cross product, then removing the
/// residual U(1) phase.  Used by the gauge generator and by "reunitarise"
/// steps after accumulating link products.
template <typename T>
ColorMat<T> project_su3(ColorMat<T> u) {
  // Normalise row 0.
  T n0 = std::sqrt(norm2(ColorVec<T>{{u(0, 0), u(0, 1), u(0, 2)}}));
  for (int j = 0; j < kNc; ++j) u(0, j) *= T(1) / n0;
  // Row 1 -= (row0 . row1) row0, then normalise.
  Cplx<T> d{};
  for (int j = 0; j < kNc; ++j) d += conj_mul(u(0, j), u(1, j));
  for (int j = 0; j < kNc; ++j) u(1, j) -= d * u(0, j);
  T n1 = std::sqrt(norm2(ColorVec<T>{{u(1, 0), u(1, 1), u(1, 2)}}));
  for (int j = 0; j < kNc; ++j) u(1, j) *= T(1) / n1;
  // Row 2 = conj(row0 x row1): unitary completion with det = +1.
  u(2, 0) = conj(u(0, 1) * u(1, 2) - u(0, 2) * u(1, 1));
  u(2, 1) = conj(u(0, 2) * u(1, 0) - u(0, 0) * u(1, 2));
  u(2, 2) = conj(u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0));
  return u;
}

}  // namespace femto
