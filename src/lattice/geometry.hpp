#pragma once
// 4D lattice geometry with even-odd (red-black) checkerboarding and
// precomputed neighbour tables for the radius-1 stencil.
//
// Site ordering: global index = parity * (volume/2) + checkerboard index,
// where checkerboard index enumerates sites of one parity in lexicographic
// (x fastest) order.  The Dirac stencil only ever couples opposite
// parities, which is what makes the red-black Schur preconditioning of the
// paper's solver possible.
//
// Fermion fields use antiperiodic boundary conditions in time (standard for
// lattice QCD at finite temporal extent); the sign is carried by the
// neighbour table so kernels stay branch-free.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/check.hpp"

namespace femto {

/// Coordinates of a 4D site.
using Coord = std::array<int, 4>;

class Geometry {
 public:
  /// Build a geometry for an X*Y*Z*T lattice.  Each extent must be even
  /// (required for a consistent checkerboarding) and >= 2.
  Geometry(int lx, int ly, int lz, int lt);

  int extent(int mu) const { return dims_[static_cast<size_t>(mu)]; }
  const std::array<int, 4>& extents() const { return dims_; }
  std::int64_t volume() const { return vol_; }
  std::int64_t half_volume() const { return volh_; }

  /// Parity (0 = even, 1 = odd) of a coordinate: (x+y+z+t) mod 2.
  static int parity(const Coord& x) {
    return (x[0] + x[1] + x[2] + x[3]) & 1;
  }

  /// Global (parity-ordered) site index of a coordinate.
  std::int64_t index(const Coord& x) const;

  /// Checkerboard index (within its parity) of a coordinate.
  std::int64_t cb_index(const Coord& x) const;

  /// Inverse of index(): coordinate of a global site index.
  Coord coord(std::int64_t site) const;

  /// Neighbour in +mu direction of the site with checkerboard index @p cb
  /// and parity @p par.  Returns the checkerboard index in parity 1-par.
  std::int64_t neighbor_fwd(int par, std::int64_t cb, int mu) const {
    FEMTO_ASSERT(par == 0 || par == 1);
    FEMTO_ASSERT(mu >= 0 && mu < 4);
    FEMTO_ASSERT(cb >= 0 && cb < volh_);
    return fwd_[static_cast<size_t>(par)][static_cast<size_t>(mu)]
               [static_cast<size_t>(cb)];
  }
  std::int64_t neighbor_bwd(int par, std::int64_t cb, int mu) const {
    FEMTO_ASSERT(par == 0 || par == 1);
    FEMTO_ASSERT(mu >= 0 && mu < 4);
    FEMTO_ASSERT(cb >= 0 && cb < volh_);
    return bwd_[static_cast<size_t>(par)][static_cast<size_t>(mu)]
               [static_cast<size_t>(cb)];
  }

  /// Fermion boundary phase (+1 or -1) picked up crossing the forward /
  /// backward boundary in direction mu from this site.  Only the time
  /// direction is antiperiodic.
  float phase_fwd(int par, std::int64_t cb, int mu) const {
    FEMTO_ASSERT(par == 0 || par == 1);
    FEMTO_ASSERT(mu >= 0 && mu < 4);
    FEMTO_ASSERT(cb >= 0 && cb < volh_);
    return sgn_fwd_[static_cast<size_t>(par)][static_cast<size_t>(mu)]
                   [static_cast<size_t>(cb)];
  }
  float phase_bwd(int par, std::int64_t cb, int mu) const {
    FEMTO_ASSERT(par == 0 || par == 1);
    FEMTO_ASSERT(mu >= 0 && mu < 4);
    FEMTO_ASSERT(cb >= 0 && cb < volh_);
    return sgn_bwd_[static_cast<size_t>(par)][static_cast<size_t>(mu)]
                   [static_cast<size_t>(cb)];
  }

  /// Global site index of the forward/backward neighbour (both parities).
  std::int64_t site_fwd(std::int64_t site, int mu) const;
  std::int64_t site_bwd(std::int64_t site, int mu) const;

 private:
  std::array<int, 4> dims_;
  std::int64_t vol_;
  std::int64_t volh_;
  // [parity][mu][cb] -> neighbour cb index (opposite parity).
  std::array<std::array<std::vector<std::int64_t>, 4>, 2> fwd_, bwd_;
  // [parity][mu][cb] -> boundary sign.
  std::array<std::array<std::vector<float>, 4>, 2> sgn_fwd_, sgn_bwd_;
};

}  // namespace femto
