#pragma once
// Lane-blocked spinor storage for the fifth-dimension-vectorized dslash.
//
// The standard field layout [s5][site][real] makes the natural DWF
// vectorization — lane j = fifth-dim slice s0+j, so the same 8 gauge links
// broadcast across all lanes — load each lane from a different s5 slice:
// a W-lane gather with stride sites*kSpinorReals reals.  BlockedSpinorView
// transposes a view into
//     [s5_block][site][real][lane]      (lane = s5 within the block)
// so the blocked kernel's loads and stores are contiguous W-real vectors.
// Tail lanes of the last block (l5 % W != 0) are zero; the kernel computes
// garbage-free zeros in them and unpack() ignores them.
//
// pack()/unpack() cost one read + one write pass per field; the autotuner
// decides per geometry whether the contiguous kernel pays for them (the
// `variant` knob in DslashTunable).

#include <cstdint>
#include <span>

#include "lattice/field.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/aligned.hpp"

namespace femto {

template <typename T, int W>
class BlockedSpinorView {
 public:
  static_assert(W >= 1, "lane count must be positive");

  BlockedSpinorView(std::int64_t sites, int l5)
      : sites_(sites),
        l5_(l5),
        nblocks_((l5 + W - 1) / W),
        data_(static_cast<std::size_t>(nblocks_ * sites * kSpinorReals * W)) {}

  std::int64_t sites() const { return sites_; }
  int l5() const { return l5_; }
  int blocks() const { return nblocks_; }

  /// Re-point at a (sites, l5) shape, reusing the allocation when the
  /// shape is unchanged.  The blocked dslash keeps its buffers in
  /// thread-local scratch and reshapes per call: a fresh multi-hundred-KB
  /// allocation every call is an mmap + zero + page-fault pass that rivals
  /// the pack itself.  Same shape is a no-op, which also preserves the
  /// tail-lane-zero invariant (pack never writes tail lanes, and with
  /// zeroed inputs the kernel writes zeros back to them); any shape change
  /// zero-fills the whole buffer again.
  void reshape(std::int64_t sites, int l5) {
    if (sites == sites_ && l5 == l5_) return;
    sites_ = sites;
    l5_ = l5;
    nblocks_ = (l5 + W - 1) / W;
    data_.assign(static_cast<std::size_t>(nblocks_ * sites * kSpinorReals * W),
                 T());
  }

  /// Pointer to the kSpinorReals x W reals of (block, site).
  T* block(int b, std::int64_t i) {
    return data_.data() +
           (std::int64_t(b) * sites_ + i) * (kSpinorReals * W);
  }
  const T* block(int b, std::int64_t i) const {
    return data_.data() +
           (std::int64_t(b) * sites_ + i) * (kSpinorReals * W);
  }

  /// Transpose a standard view in (lanes innermost).  Parallel over sites;
  /// @p grain is in 4D sites, like the dslash launch grain.
  void pack(const SpinorView<const T>& v, std::size_t grain) {
    FEMTO_ASSERT(v.sites == sites_ && v.l5 == l5_);
    par::parallel_for_chunked(
        0, static_cast<std::size_t>(sites_),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            for (int b = 0; b < nblocks_; ++b) {
              T* dst = block(b, static_cast<std::int64_t>(i));
              const int nl = b * W + W <= l5_ ? W : l5_ - b * W;
              for (int j = 0; j < nl; ++j) {
                const T* src =
                    v.data + v.offset(b * W + j, static_cast<std::int64_t>(i));
                for (int k = 0; k < kSpinorReals; ++k) dst[k * W + j] = src[k];
              }
            }
          }
        },
        grain);
  }

  /// Transpose back out to a standard view (tail lanes dropped).
  void unpack(const SpinorView<T>& v, std::size_t grain) const {
    FEMTO_ASSERT(v.sites == sites_ && v.l5 == l5_);
    par::parallel_for_chunked(
        0, static_cast<std::size_t>(sites_),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            for (int b = 0; b < nblocks_; ++b) {
              const T* src = block(b, static_cast<std::int64_t>(i));
              const int nl = b * W + W <= l5_ ? W : l5_ - b * W;
              for (int j = 0; j < nl; ++j) {
                T* dst =
                    v.data + v.offset(b * W + j, static_cast<std::int64_t>(i));
                for (int k = 0; k < kSpinorReals; ++k) dst[k] = src[k * W + j];
              }
            }
          }
        },
        grain);
  }

  /// Bytes of blocked storage (includes tail-lane padding) — what one
  /// pack/unpack pass writes/reads on the blocked side.
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(T));
  }

 private:
  std::int64_t sites_;
  int l5_;
  int nblocks_;
  simd::aligned_vector<T> data_;
};

/// Lane-blocked storage for the MULTI-RHS dslash: lane j = right-hand side
/// r0+j, so one broadcast of the site's 8 links feeds W different spinors.
///     [s5][rhs_block][site][real][lane]      (lane = RHS within the block)
/// This is the RHS-axis analogue of BlockedSpinorView's fifth-dim blocking:
/// the fifth dimension stays outermost (scalar per lane) because the RHS
/// axis, unlike s5, is guaranteed uniform — every lane runs the identical
/// stencil, so per-RHS results stay bitwise equal to the scalar reference.
/// Tail lanes of the last block (B % W != 0) are zero; pack() never writes
/// them and unpack() ignores them, exactly like the s5-blocked transpose.
template <typename T, int W>
class BlockedMultiSpinor {
 public:
  static_assert(W >= 1, "lane count must be positive");

  BlockedMultiSpinor(std::int64_t sites, int l5, int nrhs)
      : sites_(sites),
        l5_(l5),
        nrhs_(nrhs),
        nblocks_((nrhs + W - 1) / W),
        data_(static_cast<std::size_t>(std::int64_t(l5) * nblocks_ * sites *
                                       kSpinorReals * W)) {}

  std::int64_t sites() const { return sites_; }
  int l5() const { return l5_; }
  int nrhs() const { return nrhs_; }
  int blocks() const { return nblocks_; }

  /// Re-point at a (sites, l5, nrhs) shape, reusing the allocation when
  /// unchanged — same thread-local-scratch rationale as
  /// BlockedSpinorView::reshape, and the same tail-lane-zero invariant.
  void reshape(std::int64_t sites, int l5, int nrhs) {
    if (sites == sites_ && l5 == l5_ && nrhs == nrhs_) return;
    sites_ = sites;
    l5_ = l5;
    nrhs_ = nrhs;
    nblocks_ = (nrhs + W - 1) / W;
    data_.assign(static_cast<std::size_t>(std::int64_t(l5) * nblocks_ *
                                          sites * kSpinorReals * W),
                 T());
  }

  /// Pointer to the kSpinorReals x W reals of (s5, rhs_block, site).
  T* block(int s, int b, std::int64_t i) {
    return data_.data() + ((std::int64_t(s) * nblocks_ + b) * sites_ + i) *
                              (kSpinorReals * W);
  }
  const T* block(int s, int b, std::int64_t i) const {
    return data_.data() + ((std::int64_t(s) * nblocks_ + b) * sites_ + i) *
                              (kSpinorReals * W);
  }

  /// Transpose B standard views in (RHS lanes innermost).  All views must
  /// share (sites, l5); @p grain is in 4D sites like the dslash grain.
  void pack(std::span<const SpinorView<const T>> in, std::size_t grain) {
    FEMTO_ASSERT(static_cast<int>(in.size()) == nrhs_);
    par::parallel_for_chunked(
        0, static_cast<std::size_t>(sites_),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            for (int s = 0; s < l5_; ++s) {
              for (int b = 0; b < nblocks_; ++b) {
                T* dst = block(s, b, static_cast<std::int64_t>(i));
                const int nl = b * W + W <= nrhs_ ? W : nrhs_ - b * W;
                for (int j = 0; j < nl; ++j) {
                  const SpinorView<const T>& v = in[std::size_t(b) * W + j];
                  const T* src =
                      v.data + v.offset(s, static_cast<std::int64_t>(i));
                  for (int k = 0; k < kSpinorReals; ++k)
                    dst[k * W + j] = src[k];
                }
              }
            }
          }
        },
        grain);
  }

  /// Transpose back out to B standard views (tail lanes dropped).
  void unpack(std::span<const SpinorView<T>> out, std::size_t grain) const {
    FEMTO_ASSERT(static_cast<int>(out.size()) == nrhs_);
    par::parallel_for_chunked(
        0, static_cast<std::size_t>(sites_),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            for (int s = 0; s < l5_; ++s) {
              for (int b = 0; b < nblocks_; ++b) {
                const T* src = block(s, b, static_cast<std::int64_t>(i));
                const int nl = b * W + W <= nrhs_ ? W : nrhs_ - b * W;
                for (int j = 0; j < nl; ++j) {
                  const SpinorView<T>& v = out[std::size_t(b) * W + j];
                  T* dst = v.data + v.offset(s, static_cast<std::int64_t>(i));
                  for (int k = 0; k < kSpinorReals; ++k)
                    dst[k] = src[k * W + j];
                }
              }
            }
          }
        },
        grain);
  }

  /// Bytes of blocked storage (includes tail-lane padding).
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(T));
  }

 private:
  std::int64_t sites_;
  int l5_;
  int nrhs_;
  int nblocks_;
  simd::aligned_vector<T> data_;
};

}  // namespace femto
