#pragma once
// Pure-gauge observables: the standard diagnostics run on every ensemble
// before fermion measurements are trusted.
//
//   * Wilson loops W(R, T) and Creutz ratios (static quark potential /
//     string tension),
//   * the Polyakov loop (confinement order parameter),
//   * the clover-leaf field strength F_munu and the average action
//     density.

#include <cstdint>

#include "lattice/field.hpp"

namespace femto {

/// Average R x T rectangular Wilson loop, Re tr / 3, over all sites and
/// all (spatial, temporal)... all plane orientations mu < nu.
double wilson_loop(const GaugeField<double>& u, int r, int t);

/// Creutz ratio chi(R, T) = -log[ W(R,T) W(R-1,T-1) / (W(R,T-1) W(R-1,T)) ]:
/// approaches the string tension for large loops; positive in the
/// confined phase.
double creutz_ratio(const GaugeField<double>& u, int r, int t);

/// Volume-averaged Polyakov loop (complex): the trace of the product of
/// time links winding the temporal boundary.  |<P>| ~ 0 in the confined
/// phase, O(1) when deconfined (e.g. very large beta / smooth fields).
Cplx<double> polyakov_loop(const GaugeField<double>& u);

/// Clover-leaf (4-plaquette average) field strength F_munu(x): the
/// antihermitian traceless part of the clover sum.  Returned as the
/// matrix; used for action density and (on smooth fields) small-field
/// checks.
ColorMat<double> clover_field_strength(const GaugeField<double>& u,
                                       std::int64_t site, int mu, int nu);

/// Average action density  sum_{mu<nu} tr[F_munu^dag F_munu] / volume:
/// zero on the free field, positive otherwise, decreasing under smearing.
double action_density(const GaugeField<double>& u);

}  // namespace femto
