#pragma once
// Compressed gauge storage: QUDA's "reconstruct-12" trick.  An SU(3) link
// is determined by its first two rows (the third is the conjugate cross
// product), so storing 12 reals instead of 18 cuts gauge-field bandwidth
// by a third — pure gain for a bandwidth-bound stencil.  The kernels
// reconstruct the third row on load.

#include <memory>
#include <vector>

#include "lattice/field.hpp"

namespace femto {

/// Reconstruct the third row of an SU(3) matrix from the first two:
/// row2 = conj(row0 x row1).
template <typename T>
constexpr void reconstruct_third_row(ColorMat<T>& u) {
  u(2, 0) = conj(u(0, 1) * u(1, 2) - u(0, 2) * u(1, 1));
  u(2, 1) = conj(u(0, 2) * u(1, 0) - u(0, 0) * u(1, 2));
  u(2, 2) = conj(u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0));
}

/// Number of stored reals per link in reconstruct-12 format.
inline constexpr int kCompressedLinkReals = 12;

/// A gauge field stored in reconstruct-12 format.  Drop-in for the dslash
/// via load() (which reconstructs); storage is 2/3 of the full field.
template <typename T>
class CompressedGaugeField {
 public:
  explicit CompressedGaugeField(const GaugeField<T>& full)
      : geom_(full.geom_ptr()) {
    data_.resize(static_cast<std::size_t>(4 * geom_->volume() *
                                          kCompressedLinkReals));
    for (int mu = 0; mu < 4; ++mu)
      for (std::int64_t s = 0; s < geom_->volume(); ++s)
        store(mu, s, full.load(mu, s));
  }

  const Geometry& geom() const { return *geom_; }
  std::shared_ptr<const Geometry> geom_ptr() const { return geom_; }

  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(T));
  }

  /// Store the first two rows only.
  void store(int mu, std::int64_t site, const ColorMat<T>& u) {
    T* q = data_.data() + offset(mu, site);
    for (int r = 0; r < 2; ++r)
      for (int c = 0; c < kNc; ++c) {
        q[0] = u(r, c).re;
        q[1] = u(r, c).im;
        q += 2;
      }
  }

  /// Load with third-row reconstruction.
  ColorMat<T> load(int mu, std::int64_t site) const {
    ColorMat<T> u;
    const T* q = data_.data() + offset(mu, site);
    for (int r = 0; r < 2; ++r)
      for (int c = 0; c < kNc; ++c) {
        u(r, c) = {q[0], q[1]};
        q += 2;
      }
    reconstruct_third_row(u);
    return u;
  }

  /// Expand back to full 18-real storage.
  GaugeField<T> decompress() const {
    GaugeField<T> out(geom_);
    for (int mu = 0; mu < 4; ++mu)
      for (std::int64_t s = 0; s < geom_->volume(); ++s)
        out.store(mu, s, load(mu, s));
    return out;
  }

 private:
  std::int64_t offset(int mu, std::int64_t site) const {
    return (std::int64_t(mu) * geom_->volume() + site) *
           kCompressedLinkReals;
  }

  std::shared_ptr<const Geometry> geom_;
  std::vector<T> data_;
};

}  // namespace femto
