#pragma once
// Tiered gauge-link storage: QUDA's reconstruct family plus 16-bit
// fixed-point links (PAPER.md §1.2).  The dslash is bandwidth-bound, so
// every byte not stored is a byte not streamed:
//
//   format    stored/link          exact?   scheme
//   full18    18 reals             yes      plain GaugeField<T>
//   recon12   12 reals             yes*     rows 0-1; third row is the
//                                           conjugate cross product
//   recon8    8 reals              yes*     rows 0-1 minus the redundant
//                                           unitarity dof: two phases +
//                                           three complex entries
//   fixed12   12 int16 + 1 float   no       recon12 quantised to 16-bit
//                                           fixed point with a per-link
//                                           max-abs scale (the spinor
//                                           scheme of solver/half.hpp)
//
// (* exact up to reconstruction rounding on unitary input.)
//
// recon12/recon8 are only valid on SU(3) links — under FEMTO_CHECKED,
// store() rejects non-unitary input loudly, and recon8 additionally
// rejects links whose first row is dominated by its leading entry
// (|a2|²+|a3|² ≈ 0), where the phase parameterisation degenerates.
// recon8 and fixed12 are approximate storage tiers: solvers use them only
// where half-precision spinors are already allowed (the float inner
// iterations of mixed CG), never in the double reliable updates.
//
// The per-link codecs are free functions shared by the containers below
// and by the distributed gauge-halo wire packer (dirac/distributed.cpp),
// so wire format and storage format cannot drift apart.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "lattice/field.hpp"
#include "lattice/flops.hpp"
#include "parallel/thread_pool.hpp"

namespace femto {

/// Gauge-link storage tier, threaded from field to solver to tuner.  The
/// ordinals are stable: they appear in femtotune cache keys, in the
/// `dslash.format_{f,d}` gauges (decoded by the femtoscope report), and in
/// SolverParams.
enum class GaugeFormat : int {
  kFull18 = 0,
  kRecon12 = 1,
  kRecon8 = 2,
  kFixed12 = 3,
};

inline constexpr int kNumGaugeFormats = 4;

constexpr const char* gauge_format_name(GaugeFormat f) {
  switch (f) {
    case GaugeFormat::kFull18: return "full18";
    case GaugeFormat::kRecon12: return "recon12";
    case GaugeFormat::kRecon8: return "recon8";
    case GaugeFormat::kFixed12: return "fixed12";
  }
  return "?";
}

/// True for the tiers that reproduce unitary links exactly (up to
/// reconstruction rounding); false for the quantised tier.
constexpr bool gauge_format_exact(GaugeFormat f) {
  return f != GaugeFormat::kFixed12;
}

/// Stored bytes per link for scalar type T (full18/recon12/recon8 store
/// reals of T; fixed12 stores int16 + a float scale regardless of T).
template <typename T>
constexpr std::int64_t gauge_link_bytes(GaugeFormat f) {
  switch (f) {
    case GaugeFormat::kFull18: return 18 * sizeof(T);
    case GaugeFormat::kRecon12: return 12 * sizeof(T);
    case GaugeFormat::kRecon8: return 8 * sizeof(T);
    case GaugeFormat::kFixed12:
      return 12 * static_cast<std::int64_t>(sizeof(std::int16_t)) +
             sizeof(float);
  }
  return 0;
}

/// Reconstruct the third row of an SU(3) matrix from the first two:
/// row2 = conj(row0 x row1).
template <typename T>
constexpr void reconstruct_third_row(ColorMat<T>& u) {
  u(2, 0) = conj(u(0, 1) * u(1, 2) - u(0, 2) * u(1, 1));
  u(2, 1) = conj(u(0, 2) * u(1, 0) - u(0, 0) * u(1, 2));
  u(2, 2) = conj(u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0));
}

/// Number of stored reals per link in reconstruct-12 format.
inline constexpr int kCompressedLinkReals = 12;
/// Number of stored reals per link in reconstruct-8 format.
inline constexpr int kRecon8LinkReals = 8;
/// Number of stored int16 per link in fixed12 format (plus a float scale):
/// one per recon12 real.
inline constexpr int kFixed12LinkInts = kCompressedLinkReals;

namespace detail {
/// |z|^2 under a codec-private name: the femtolint name-based call graph
/// would fuse a call to `norm2` here with blas::norm2 (a kernel
/// launcher), dragging every `store`/`load` caller onto a kernel chain.
template <typename T>
constexpr T cnorm2(const Cplx<T>& z) {
  return z.re * z.re + z.im * z.im;
}
}  // namespace detail

/// ||u adj(u) - 1||_F^2: zero for unitary links.  The reconstruction
/// formulas assume unitarity, so this is the residual the FEMTO_CHECKED
/// store() guards test.
template <typename T>
constexpr T unitarity_residual2(const ColorMat<T>& u) {
  T s{};
  for (int i = 0; i < kNc; ++i)
    for (int j = 0; j < kNc; ++j) {
      Cplx<T> d{};
      for (int k = 0; k < kNc; ++k) d += u(i, k) * conj(u(j, k));
      if (i == j) d.re -= T(1);
      s += detail::cnorm2(d);
    }
  return s;
}

namespace detail {
template <typename T>
constexpr T unitarity_tol2() {
  // norm2-based residual: rounding of an SU(3) product is ~eps per entry.
  return std::is_same_v<T, float> ? T(1e-8) : T(1e-20);
}
#if FEMTO_CHECKED_ENABLED
template <typename T>
inline void check_unitary_link(const ColorMat<T>& u) {
  FEMTO_CHECK(unitarity_residual2(u) < unitarity_tol2<T>(),
              "gauge compression requires SU(3) input links");
}
#else
template <typename T>
inline void check_unitary_link(const ColorMat<T>&) {}
#endif
}  // namespace detail

// ---------------------------------------------------------------------------
// Per-link codecs (shared with the halo wire packer).
// ---------------------------------------------------------------------------

/// recon12: store rows 0-1 as 12 reals.
template <typename T>
constexpr void encode_recon12(const ColorMat<T>& u, T* q) {
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < kNc; ++c) {
      q[0] = u(r, c).re;
      q[1] = u(r, c).im;
      q += 2;
    }
}

template <typename T>
constexpr ColorMat<T> decode_recon12(const T* q) {
  ColorMat<T> u;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < kNc; ++c) {
      u(r, c) = {q[0], q[1]};
      q += 2;
    }
  reconstruct_third_row(u);
  return u;
}

/// recon8: rows 0-1 carry two redundant unitarity dof, so 8 reals suffice:
/// arg(a1), arg(c1), and the complex entries a2, a3, b1 (QUDA's
/// reconstruct-8).  |a1| and |c1| follow from column normalisation, b2/b3
/// from orthogonality, row 2 from the cross product.
template <typename T>
inline void encode_recon8(const ColorMat<T>& u, T* q) {
  q[0] = std::atan2(u(0, 0).im, u(0, 0).re);
  q[1] = std::atan2(u(2, 0).im, u(2, 0).re);
  q[2] = u(0, 1).re;
  q[3] = u(0, 1).im;
  q[4] = u(0, 2).re;
  q[5] = u(0, 2).im;
  q[6] = u(1, 0).re;
  q[7] = u(1, 0).im;
}

template <typename T>
inline ColorMat<T> decode_recon8(const T* q) {
  ColorMat<T> u;
  const Cplx<T> a2{q[2], q[3]}, a3{q[4], q[5]}, b1{q[6], q[7]};
  // |a2|^2 + |a3|^2 = 1 - |a1|^2; clamped so degenerate input yields a
  // finite (if wrong) matrix instead of NaN in unchecked builds.
  const T n = std::max(detail::cnorm2(a2) + detail::cnorm2(a3), T(1e-30));
  const T abs_a1 = std::sqrt(std::max(T(1) - n, T(0)));
  const Cplx<T> a1{abs_a1 * std::cos(q[0]), abs_a1 * std::sin(q[0])};
  const T abs_c1 =
      std::sqrt(std::max(T(1) - abs_a1 * abs_a1 - detail::cnorm2(b1), T(0)));
  const Cplx<T> c1{abs_c1 * std::cos(q[1]), abs_c1 * std::sin(q[1])};
  const T inv_n = T(1) / n;
  // Column 1 _|_ column 2 and c = conj(a x b) pin b2, b3 (2x2 solve with
  // determinant n):
  const Cplx<T> b2 = -inv_n * (conj(a1) * a2 * b1 + conj(a3) * conj(c1));
  const Cplx<T> b3 = inv_n * (conj(a2) * conj(c1) - conj(a1) * a3 * b1);
  u(0, 0) = a1;
  u(0, 1) = a2;
  u(0, 2) = a3;
  u(1, 0) = b1;
  u(1, 1) = b2;
  u(1, 2) = b3;
  reconstruct_third_row(u);
  return u;
}

/// fixed12: recon12 reals quantised to int16 with a per-link max-abs float
/// scale, mirroring solver/half.hpp.  Max is exact and the quantise loop
/// is scalar lrintf on purpose, so the stored contents are bitwise
/// SIMD-width-independent.
template <typename T>
inline void encode_fixed12(const ColorMat<T>& u, std::int16_t* q,
                           float* scale) {
  float vals[kFixed12LinkInts];
  int k = 0;
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < kNc; ++c) {
      vals[k++] = static_cast<float>(u(r, c).re);
      vals[k++] = static_cast<float>(u(r, c).im);
    }
  float amax = 0.0f;
  for (int j = 0; j < kFixed12LinkInts; ++j)
    amax = std::max(amax, std::fabs(vals[j]));
  const float s = amax > 0.0f ? amax : 1.0f;
  *scale = s;
  const float inv = 32767.0f / s;
  // Scalar on purpose: lrintf's rounding must be identical at every SIMD
  // width, so the stored int16 never depend on the build.
  for (int j = 0; j < kFixed12LinkInts; ++j)
    q[j] = static_cast<std::int16_t>(std::lrintf(vals[j] * inv));
}

template <typename T>
inline ColorMat<T> decode_fixed12(const std::int16_t* q, float scale) {
  const float s = scale / 32767.0f;
  T vals[kCompressedLinkReals];
  for (int j = 0; j < kFixed12LinkInts; ++j)
    vals[j] = static_cast<T>(static_cast<float>(q[j]) * s);
  return decode_recon12(vals);
}

namespace detail {
/// Links per worker chunk for the parallel compression constructors.
inline constexpr std::size_t kCompressGrain = 1024;

/// Run @p body(link_index) over all 4*volume links on the pool.  Each
/// link writes disjoint storage, so the sweep is deterministic regardless
/// of chunking.  Callers charge the traffic (full read + stored write).
template <typename Body>
inline void compress_sweep(const Geometry& geom, const Body& body) {
  const auto n = static_cast<std::size_t>(4 * geom.volume());
  par::parallel_for_chunked(
      std::size_t{0}, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          body(static_cast<std::int64_t>(i));
      },
      kCompressGrain);
}
}  // namespace detail

// ---------------------------------------------------------------------------
// Containers.  All expose the GaugeField surface the dslash kernels use --
// geom()/geom_ptr()/load()/bytes() -- so the container-generic stencil
// bodies in dirac/wilson.cpp read any tier.  bytes() reports true stored
// bytes, keeping flops::add_bytes charges and the femtoscope AI/GB/s
// derivations honest.
// ---------------------------------------------------------------------------

/// A gauge field stored in reconstruct-12 format.  Drop-in for the dslash
/// via load() (which reconstructs); storage is 2/3 of the full field.
template <typename T>
class CompressedGaugeField {
 public:
  static constexpr GaugeFormat kFormat = GaugeFormat::kRecon12;

  explicit CompressedGaugeField(const GaugeField<T>& full)
      : geom_(full.geom_ptr()) {
    data_.resize(static_cast<std::size_t>(4 * geom_->volume() *
                                          kCompressedLinkReals));
    detail::compress_sweep(*geom_, [&](std::int64_t i) {
      const int mu = static_cast<int>(i / geom_->volume());
      const std::int64_t s = i % geom_->volume();
      store(mu, s, full.load(mu, s));
    });
    flops::add_bytes(full.bytes() + bytes());
  }

  const Geometry& geom() const { return *geom_; }
  std::shared_ptr<const Geometry> geom_ptr() const { return geom_; }

  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(T));
  }

  /// Store the first two rows only.
  void store(int mu, std::int64_t site, const ColorMat<T>& u) {
    detail::check_unitary_link(u);
    encode_recon12(u, data_.data() + offset(mu, site));
  }

  /// Load with third-row reconstruction.
  ColorMat<T> load(int mu, std::int64_t site) const {
    return decode_recon12(data_.data() + offset(mu, site));
  }

  /// Expand back to full 18-real storage.
  GaugeField<T> decompress() const {
    GaugeField<T> out(geom_);
    for (int mu = 0; mu < 4; ++mu)
      for (std::int64_t s = 0; s < geom_->volume(); ++s)
        out.store(mu, s, load(mu, s));
    return out;
  }

 private:
  std::int64_t offset(int mu, std::int64_t site) const {
    return (std::int64_t(mu) * geom_->volume() + site) *
           kCompressedLinkReals;
  }

  std::shared_ptr<const Geometry> geom_;
  std::vector<T> data_;
};

/// A gauge field stored in reconstruct-8 format: 8 reals per link, the
/// minimal parameterisation (modulo two discrete phases folded into
/// arg(a1)/arg(c1)).  Valid on generic SU(3) links; degenerates when
/// |a2|^2+|a3|^2 ~ 0 (e.g. unit gauge), which FEMTO_CHECKED rejects.
template <typename T>
class Recon8GaugeField {
 public:
  static constexpr GaugeFormat kFormat = GaugeFormat::kRecon8;

  explicit Recon8GaugeField(const GaugeField<T>& full)
      : geom_(full.geom_ptr()) {
    data_.resize(
        static_cast<std::size_t>(4 * geom_->volume() * kRecon8LinkReals));
    detail::compress_sweep(*geom_, [&](std::int64_t i) {
      const int mu = static_cast<int>(i / geom_->volume());
      const std::int64_t s = i % geom_->volume();
      store(mu, s, full.load(mu, s));
    });
    flops::add_bytes(full.bytes() + bytes());
  }

  const Geometry& geom() const { return *geom_; }
  std::shared_ptr<const Geometry> geom_ptr() const { return geom_; }

  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(T));
  }

  void store(int mu, std::int64_t site, const ColorMat<T>& u) {
    detail::check_unitary_link(u);
    FEMTO_CHECK(detail::cnorm2(u(0, 1)) + detail::cnorm2(u(0, 2)) > T(1e-12),
                "recon8 phase parameterisation degenerates on links with "
                "|a2|^2+|a3|^2 ~ 0 (unit-like gauge)");
    encode_recon8(u, data_.data() + offset(mu, site));
  }

  ColorMat<T> load(int mu, std::int64_t site) const {
    return decode_recon8(data_.data() + offset(mu, site));
  }

  GaugeField<T> decompress() const {
    GaugeField<T> out(geom_);
    for (int mu = 0; mu < 4; ++mu)
      for (std::int64_t s = 0; s < geom_->volume(); ++s)
        out.store(mu, s, load(mu, s));
    return out;
  }

 private:
  std::int64_t offset(int mu, std::int64_t site) const {
    return (std::int64_t(mu) * geom_->volume() + site) * kRecon8LinkReals;
  }

  std::shared_ptr<const Geometry> geom_;
  std::vector<T> data_;
};

/// A gauge field stored in fixed12 format: 12 int16 + one float scale per
/// link (28 bytes).  Approximate (~4.5 decimal digits per real); allowed
/// only where half-precision spinors already are.
template <typename T>
class Fixed12GaugeField {
 public:
  static constexpr GaugeFormat kFormat = GaugeFormat::kFixed12;

  explicit Fixed12GaugeField(const GaugeField<T>& full)
      : geom_(full.geom_ptr()) {
    q_.resize(
        static_cast<std::size_t>(4 * geom_->volume() * kFixed12LinkInts));
    scale_.resize(static_cast<std::size_t>(4 * geom_->volume()));
    detail::compress_sweep(*geom_, [&](std::int64_t i) {
      const int mu = static_cast<int>(i / geom_->volume());
      const std::int64_t s = i % geom_->volume();
      store(mu, s, full.load(mu, s));
    });
    flops::add_bytes(full.bytes() + bytes());
  }

  const Geometry& geom() const { return *geom_; }
  std::shared_ptr<const Geometry> geom_ptr() const { return geom_; }

  std::int64_t bytes() const {
    return static_cast<std::int64_t>(q_.size() * sizeof(std::int16_t) +
                                     scale_.size() * sizeof(float));
  }

  void store(int mu, std::int64_t site, const ColorMat<T>& u) {
    detail::check_unitary_link(u);
    const std::int64_t l = link(mu, site);
    encode_fixed12(u, q_.data() + l * kFixed12LinkInts,
                   scale_.data() + l);
  }

  ColorMat<T> load(int mu, std::int64_t site) const {
    const std::int64_t l = link(mu, site);
    return decode_fixed12<T>(q_.data() + l * kFixed12LinkInts,
                             scale_[static_cast<std::size_t>(l)]);
  }

  GaugeField<T> decompress() const {
    GaugeField<T> out(geom_);
    for (int mu = 0; mu < 4; ++mu)
      for (std::int64_t s = 0; s < geom_->volume(); ++s)
        out.store(mu, s, load(mu, s));
    return out;
  }

  /// Raw quantised storage (the width-independence tests compare these
  /// bitwise across builds).
  const std::vector<std::int16_t>& quantised() const { return q_; }
  const std::vector<float>& scales() const { return scale_; }

 private:
  std::int64_t link(int mu, std::int64_t site) const {
    return std::int64_t(mu) * geom_->volume() + site;
  }

  std::shared_ptr<const Geometry> geom_;
  std::vector<std::int16_t> q_;
  std::vector<float> scale_;
};

}  // namespace femto
