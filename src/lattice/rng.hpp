#pragma once
// Random number generation for field initialisation and Monte Carlo.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64.  Each lattice
// site can derive its own independent stream from (seed, site, slot), so
// random fields are reproducible independent of thread count and of how the
// lattice is decomposed across ranks — the same property production QCD
// codes need so that a run is checkable across machine partitions.

#include <cstdint>

namespace femto {

/// SplitMix64: used to expand a single seed into xoshiro state.
struct SplitMix64 {
  std::uint64_t state;
  explicit SplitMix64(std::uint64_t s) : state(s) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& si : s_) si = sm.next();
  }

  /// Derive a per-site stream: mixes seed, site index and a slot id so
  /// different uses (gauge dir, spin/color, noise id) never collide.
  Xoshiro256(std::uint64_t seed, std::uint64_t site, std::uint64_t slot)
      : Xoshiro256(mix(seed, site, slot)) {}

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] (safe for log()).
  double uniform_pos() {
    return (static_cast<double>(next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Standard normal via Box–Muller (no cached second value: keeps the
  /// stream position deterministic per call count).
  double gaussian();

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  static std::uint64_t mix(std::uint64_t seed, std::uint64_t a,
                           std::uint64_t b) {
    SplitMix64 sm(seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                  (b * 0xd1b54a32d192ed03ULL));
    sm.next();
    return sm.next();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace femto
