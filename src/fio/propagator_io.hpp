#pragma once
// Workflow schemas on top of femtoio: the propagator write/read step from
// Fig. 2 ("Write 1 propagator" / "Load propagator") and the correlator
// result write.  Each schema records enough metadata for a later job to
// validate that it loaded what it expects — the same discipline the
// production HDF5 layout enforces.

#include <string>

#include "fio/fio.hpp"
#include "lattice/field.hpp"

namespace femto::fio {

/// Metadata identifying a propagator solve.
struct PropagatorMeta {
  std::string ensemble;     ///< e.g. "a09m310-like"
  std::int64_t config_id = 0;
  int l5 = 0;
  double mf = 0.0;
  double residual = 0.0;    ///< solver's final relative residual
};

/// Write a full 5D solution field plus metadata under /prop/<name>/.
void write_propagator(File& f, const std::string& name,
                      const SpinorField<double>& prop,
                      const PropagatorMeta& meta);

/// Read back; throws IoError on missing data or geometry mismatch with the
/// supplied destination field.
PropagatorMeta read_propagator(const File& f, const std::string& name,
                               SpinorField<double>& prop);

/// Write a gauge configuration under /gauge/<name>/ with its plaquette
/// stored as metadata (the standard sanity stamp on stored ensembles).
void write_gauge(File& f, const std::string& name,
                 const GaugeField<double>& u, double plaquette_value);

/// Read back; validates geometry against the destination field and, when
/// check_plaquette is true, that the recorded plaquette matches the
/// stored attribute (guards against lattice-ordering bugs between
/// writers and readers).
double read_gauge(const File& f, const std::string& name,
                  GaugeField<double>& u);

/// Write a correlator time series under /corr/<name>/.
void write_correlator(File& f, const std::string& name,
                      const std::vector<double>& c_t,
                      const std::string& description);

std::vector<double> read_correlator(const File& f, const std::string& name);

}  // namespace femto::fio
