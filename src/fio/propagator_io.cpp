#include "fio/propagator_io.hpp"

namespace femto::fio {

void write_propagator(File& f, const std::string& name,
                      const SpinorField<double>& prop,
                      const PropagatorMeta& meta) {
  const std::string base = "/prop/" + name;
  std::vector<double> data(prop.data(), prop.data() + prop.reals());
  const auto& g = prop.geom();
  f.write_f64(base + "/field", data,
              {prop.l5(), prop.sites(), kNs, kNc, 2});
  f.write_i64(base + "/extents",
              {g.extent(0), g.extent(1), g.extent(2), g.extent(3),
               prop.l5(), static_cast<std::int64_t>(prop.subset())});
  f.set_attr(base, "ensemble", meta.ensemble);
  f.set_attr_f64(base, "config_id", static_cast<double>(meta.config_id));
  f.set_attr_f64(base, "mf", meta.mf);
  f.set_attr_f64(base, "residual", meta.residual);
}

PropagatorMeta read_propagator(const File& f, const std::string& name,
                               SpinorField<double>& prop) {
  const std::string base = "/prop/" + name;
  const auto ext = f.read_i64(base + "/extents");
  const auto& g = prop.geom();
  if (ext.size() != 6 || ext[0] != g.extent(0) || ext[1] != g.extent(1) ||
      ext[2] != g.extent(2) || ext[3] != g.extent(3) ||
      ext[4] != prop.l5() ||
      ext[5] != static_cast<std::int64_t>(prop.subset()))
    throw IoError("propagator geometry mismatch for " + name);
  const auto data = f.read_f64(base + "/field");
  if (static_cast<std::int64_t>(data.size()) != prop.reals())
    throw IoError("propagator size mismatch for " + name);
  std::copy(data.begin(), data.end(), prop.data());

  PropagatorMeta meta;
  meta.ensemble = f.attr(base, "ensemble").value_or("");
  meta.config_id = static_cast<std::int64_t>(f.attr_f64(base, "config_id"));
  meta.l5 = prop.l5();
  meta.mf = f.attr_f64(base, "mf");
  meta.residual = f.attr_f64(base, "residual");
  return meta;
}

void write_gauge(File& f, const std::string& name,
                 const GaugeField<double>& u, double plaquette_value) {
  const std::string base = "/gauge/" + name;
  std::vector<double> data(u.data(), u.data() + u.bytes() / 8);
  const auto& g = u.geom();
  f.write_f64(base + "/links", data,
              {4, g.volume(), kNc, kNc, 2});
  f.write_i64(base + "/extents",
              {g.extent(0), g.extent(1), g.extent(2), g.extent(3)});
  f.set_attr_f64(base, "plaquette", plaquette_value);
}

double read_gauge(const File& f, const std::string& name,
                  GaugeField<double>& u) {
  const std::string base = "/gauge/" + name;
  const auto ext = f.read_i64(base + "/extents");
  const auto& g = u.geom();
  if (ext.size() != 4 || ext[0] != g.extent(0) || ext[1] != g.extent(1) ||
      ext[2] != g.extent(2) || ext[3] != g.extent(3))
    throw IoError("gauge geometry mismatch for " + name);
  const auto data = f.read_f64(base + "/links");
  if (static_cast<std::int64_t>(data.size()) != u.bytes() / 8)
    throw IoError("gauge size mismatch for " + name);
  std::copy(data.begin(), data.end(), u.data());
  return f.attr_f64(base, "plaquette");
}

void write_correlator(File& f, const std::string& name,
                      const std::vector<double>& c_t,
                      const std::string& description) {
  const std::string base = "/corr/" + name;
  f.write_f64(base + "/data", c_t);
  f.set_attr(base, "description", description);
}

std::vector<double> read_correlator(const File& f, const std::string& name) {
  return f.read_f64("/corr/" + name + "/data");
}

}  // namespace femto::fio
