#pragma once
// femtoio: a small hierarchical binary container standing in for parallel
// HDF5 (the paper writes propagators and contraction results via HDF5,
// ref. [19]; I/O is ~0.5% of the application budget).
//
// The container models the parts of HDF5 the workflow needs:
//   * groups: "/" separated paths
//   * typed n-dimensional datasets (f64, f32, i64, u8)
//   * string attributes attached to any path
//   * per-dataset CRC-32 integrity, verified on load
//
// A File is an in-memory tree with save()/load() to a single binary blob;
// propagator and correlator schemas sit on top (propagator_io.hpp).

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace femto::fio {

enum class DType : std::uint8_t { F64 = 0, F32 = 1, I64 = 2, U8 = 3 };

std::size_t dtype_size(DType t);
const char* to_string(DType t);

/// CRC-32 (IEEE 802.3 polynomial, table-driven).
std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t seed = 0);

/// A typed n-dimensional array.
struct Dataset {
  DType dtype = DType::U8;
  std::vector<std::int64_t> shape;
  std::vector<std::byte> raw;

  std::int64_t elements() const {
    std::int64_t n = 1;
    for (auto d : shape) n *= d;
    return n;
  }
};

/// Error thrown on malformed files or checksum mismatches.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class File {
 public:
  // -- writing ------------------------------------------------------------
  void write_f64(const std::string& path, const std::vector<double>& data,
                 std::vector<std::int64_t> shape = {});
  void write_f32(const std::string& path, const std::vector<float>& data,
                 std::vector<std::int64_t> shape = {});
  void write_i64(const std::string& path,
                 const std::vector<std::int64_t>& data,
                 std::vector<std::int64_t> shape = {});
  void write_bytes(const std::string& path,
                   const std::vector<std::byte>& data);

  void set_attr(const std::string& path, const std::string& key,
                const std::string& value);
  void set_attr_f64(const std::string& path, const std::string& key,
                    double value);

  // -- reading ------------------------------------------------------------
  bool contains(const std::string& path) const;
  const Dataset& dataset(const std::string& path) const;
  std::vector<double> read_f64(const std::string& path) const;
  std::vector<float> read_f32(const std::string& path) const;
  std::vector<std::int64_t> read_i64(const std::string& path) const;

  std::optional<std::string> attr(const std::string& path,
                                  const std::string& key) const;
  double attr_f64(const std::string& path, const std::string& key) const;

  /// All dataset paths under a prefix ("" = all), sorted.
  std::vector<std::string> list(const std::string& prefix = "") const;

  std::size_t n_datasets() const { return datasets_.size(); }

  // -- persistence ----------------------------------------------------------
  /// Serialise to disk; every dataset gets a CRC-32 trailer.
  void save(const std::string& filename) const;
  /// Load and verify; throws IoError on corruption or version mismatch.
  static File load(const std::string& filename);

 private:
  template <typename T>
  void write_typed(const std::string& path, DType dtype,
                   const std::vector<T>& data,
                   std::vector<std::int64_t> shape);
  template <typename T>
  std::vector<T> read_typed(const std::string& path, DType dtype) const;

  std::map<std::string, Dataset> datasets_;
  std::map<std::string, std::map<std::string, std::string>> attrs_;
};

}  // namespace femto::fio
