#include "fio/fio.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>

namespace femto::fio {

std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::F64: return 8;
    case DType::F32: return 4;
    case DType::I64: return 8;
    default: return 1;
  }
}

const char* to_string(DType t) {
  switch (t) {
    case DType::F64: return "f64";
    case DType::F32: return "f32";
    case DType::I64: return "i64";
    default: return "u8";
  }
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const auto table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

template <typename T>
void File::write_typed(const std::string& path, DType dtype,
                       const std::vector<T>& data,
                       std::vector<std::int64_t> shape) {
  Dataset ds;
  ds.dtype = dtype;
  ds.shape = shape.empty()
                 ? std::vector<std::int64_t>{
                       static_cast<std::int64_t>(data.size())}
                 : std::move(shape);
  std::int64_t n = 1;
  for (auto d : ds.shape) n *= d;
  if (n != static_cast<std::int64_t>(data.size()))
    throw IoError("fio: shape does not match data size for " + path);
  ds.raw.resize(data.size() * sizeof(T));
  std::memcpy(ds.raw.data(), data.data(), ds.raw.size());
  datasets_[path] = std::move(ds);
}

void File::write_f64(const std::string& path, const std::vector<double>& d,
                     std::vector<std::int64_t> shape) {
  write_typed(path, DType::F64, d, std::move(shape));
}
void File::write_f32(const std::string& path, const std::vector<float>& d,
                     std::vector<std::int64_t> shape) {
  write_typed(path, DType::F32, d, std::move(shape));
}
void File::write_i64(const std::string& path,
                     const std::vector<std::int64_t>& d,
                     std::vector<std::int64_t> shape) {
  write_typed(path, DType::I64, d, std::move(shape));
}
void File::write_bytes(const std::string& path,
                       const std::vector<std::byte>& data) {
  Dataset ds;
  ds.dtype = DType::U8;
  ds.shape = {static_cast<std::int64_t>(data.size())};
  ds.raw = data;
  datasets_[path] = std::move(ds);
}

void File::set_attr(const std::string& path, const std::string& key,
                    const std::string& value) {
  attrs_[path][key] = value;
}
void File::set_attr_f64(const std::string& path, const std::string& key,
                        double value) {
  // std::to_string truncates to 6 decimals; keep full precision.
  std::ostringstream os;
  os.precision(17);
  os << value;
  set_attr(path, key, os.str());
}

bool File::contains(const std::string& path) const {
  return datasets_.count(path) > 0;
}

const Dataset& File::dataset(const std::string& path) const {
  auto it = datasets_.find(path);
  if (it == datasets_.end()) throw IoError("fio: no dataset " + path);
  return it->second;
}

template <typename T>
std::vector<T> File::read_typed(const std::string& path, DType dtype) const {
  const Dataset& ds = dataset(path);
  if (ds.dtype != dtype)
    throw IoError("fio: dtype mismatch reading " + path + " (stored " +
                  to_string(ds.dtype) + ", requested " + to_string(dtype) +
                  ")");
  std::vector<T> out(ds.raw.size() / sizeof(T));
  std::memcpy(out.data(), ds.raw.data(), ds.raw.size());
  return out;
}

std::vector<double> File::read_f64(const std::string& path) const {
  return read_typed<double>(path, DType::F64);
}
std::vector<float> File::read_f32(const std::string& path) const {
  return read_typed<float>(path, DType::F32);
}
std::vector<std::int64_t> File::read_i64(const std::string& path) const {
  return read_typed<std::int64_t>(path, DType::I64);
}

std::optional<std::string> File::attr(const std::string& path,
                                      const std::string& key) const {
  auto it = attrs_.find(path);
  if (it == attrs_.end()) return std::nullopt;
  auto jt = it->second.find(key);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

double File::attr_f64(const std::string& path, const std::string& key) const {
  auto v = attr(path, key);
  if (!v) throw IoError("fio: no attribute " + path + ":" + key);
  return std::stod(*v);
}

std::vector<std::string> File::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, ds] : datasets_) {
    (void)ds;
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

namespace {

constexpr std::uint64_t kMagic = 0xFE3370F17E000001ull;  // "femtofile" v1

void put_u64(std::ofstream& out, std::uint64_t v) {
  // femtolint: allow(cast): iostream byte I/O; char* may alias anything.
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_u32(std::ofstream& out, std::uint32_t v) {
  // femtolint: allow(cast): iostream byte I/O; char* may alias anything.
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_str(std::ofstream& out, const std::string& s) {
  put_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint64_t get_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  // femtolint: allow(cast): iostream byte I/O; char* may alias anything.
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw IoError("fio: truncated file");
  return v;
}
std::uint32_t get_u32(std::ifstream& in) {
  std::uint32_t v = 0;
  // femtolint: allow(cast): iostream byte I/O; char* may alias anything.
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw IoError("fio: truncated file");
  return v;
}
std::string get_str(std::ifstream& in) {
  const auto n = get_u64(in);
  if (n > (1ull << 32)) throw IoError("fio: implausible string length");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw IoError("fio: truncated file");
  return s;
}

}  // namespace

void File::save(const std::string& filename) const {
  std::ofstream out(filename, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("fio: cannot open " + filename + " for writing");
  put_u64(out, kMagic);
  put_u64(out, datasets_.size());
  for (const auto& [path, ds] : datasets_) {
    put_str(out, path);
    put_u32(out, static_cast<std::uint32_t>(ds.dtype));
    put_u64(out, ds.shape.size());
    for (auto d : ds.shape) put_u64(out, static_cast<std::uint64_t>(d));
    put_u64(out, ds.raw.size());
    // femtolint: allow(cast): iostream byte I/O; char* may alias anything.
    out.write(reinterpret_cast<const char*>(ds.raw.data()),
              static_cast<std::streamsize>(ds.raw.size()));
    put_u32(out, crc32(ds.raw.data(), ds.raw.size()));
  }
  put_u64(out, attrs_.size());
  for (const auto& [path, kv] : attrs_) {
    put_str(out, path);
    put_u64(out, kv.size());
    for (const auto& [k, v] : kv) {
      put_str(out, k);
      put_str(out, v);
    }
  }
  if (!out) throw IoError("fio: write failure on " + filename);
}

File File::load(const std::string& filename) {
  std::ifstream in(filename, std::ios::binary);
  if (!in) throw IoError("fio: cannot open " + filename);
  if (get_u64(in) != kMagic)
    throw IoError("fio: bad magic in " + filename);
  File f;
  const auto n_ds = get_u64(in);
  for (std::uint64_t i = 0; i < n_ds; ++i) {
    const std::string path = get_str(in);
    Dataset ds;
    ds.dtype = static_cast<DType>(get_u32(in));
    const auto rank = get_u64(in);
    if (rank > 16) throw IoError("fio: implausible rank");
    for (std::uint64_t r = 0; r < rank; ++r)
      ds.shape.push_back(static_cast<std::int64_t>(get_u64(in)));
    const auto bytes = get_u64(in);
    ds.raw.resize(bytes);
    // femtolint: allow(cast): iostream byte I/O; char* may alias anything.
    in.read(reinterpret_cast<char*>(ds.raw.data()),
            static_cast<std::streamsize>(bytes));
    if (!in) throw IoError("fio: truncated dataset " + path);
    const auto stored_crc = get_u32(in);
    if (crc32(ds.raw.data(), ds.raw.size()) != stored_crc)
      throw IoError("fio: checksum mismatch in " + path);
    f.datasets_[path] = std::move(ds);
  }
  const auto n_attr = get_u64(in);
  for (std::uint64_t i = 0; i < n_attr; ++i) {
    const std::string path = get_str(in);
    const auto n_kv = get_u64(in);
    for (std::uint64_t k = 0; k < n_kv; ++k) {
      const std::string key = get_str(in);
      f.attrs_[path][key] = get_str(in);
    }
  }
  return f;
}

}  // namespace femto::fio
