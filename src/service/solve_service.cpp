#include "service/solve_service.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/blackbox.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/wallclock.hpp"

namespace femto {

SolveService::SolveService(SolveServiceConfig cfg) : cfg_(std::move(cfg)) {
  FEMTO_CHECK(cfg_.max_batch >= 1,
              "SolveService: max_batch must be at least 1");
  const std::size_t n = cfg_.workers > 0 ? cfg_.workers : 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  // Flight-recorder hookup: if the process dies mid-campaign, the dump
  // shows what this queue held.  Registration is unconditional (cheap);
  // the callback only runs when a dump is actually written.
  blackbox_handle_ = obs::blackbox_register_provider(
      "solve_service", [this] { return queue_state_json(); });
}

SolveService::~SolveService() {
  // The provider captures `this`: deregister before any member dies.
  obs::blackbox_unregister_provider(blackbox_handle_.load());
  // Drain FIRST, stop second.  The wait releases mu_ while blocked, so
  // workers can take mu_ at end-of-batch to fulfil promises and decrement
  // in_flight_ while the destructor sleeps.  Only once every submitted
  // future has resolved is stopping_ raised, so no worker can ever observe
  // a stop flag with work it silently abandons.
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<SolveOutcome> SolveService::submit(SolveRequest req) {
  FEMTO_CHECK(req.u != nullptr && req.b != nullptr,
              "SolveService::submit: request needs a gauge field and a "
              "source");
  FEMTO_CHECK(req.b->l5() == req.params.l5,
              "SolveService::submit: source l5 does not match the operator "
              "params");
  std::promise<SolveOutcome> promise;
  std::future<SolveOutcome> fut = promise.get_future();
  std::uint64_t flow = 0;
  std::int64_t t0 = -1;
  if (obs::trace_enabled()) {
    t0 = obs::uptime_ns();
    flow = obs::next_flow_id();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    FEMTO_CHECK(!stopping_, "SolveService::submit: service is shutting down");
    queue_.push_back(Item{std::move(req), std::move(promise), flow, t0});
    ++submitted_;
    obs::counter("solve_service.submitted").add(1);
    obs::gauge("solve_service.queue_depth")
        .set(static_cast<double>(queue_.size()));
  }
  cv_work_.notify_one();
  if (flow != 0) obs::trace_flow_out("service", "submit", t0, flow);
  return fut;
}

void SolveService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t SolveService::effective_max_batch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return effective_max_batch_;
}

std::size_t SolveService::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::string SolveService::queue_state_json() const {
  // Crash path: the dump may run on a thread that died while holding mu_
  // (or while another worker holds it mid-batch); degrade instead of
  // deadlocking the abort.
  std::unique_lock<std::mutex> lk(mu_, std::try_to_lock);
  if (!lk.owns_lock()) return "{\"locked\":true}";
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "{\"pending\":%zu,\"in_flight\":%zu,\"submitted\":%llu,"
      "\"completed\":%llu,\"stopping\":%s,\"effective_max_batch\":%zu,"
      "\"solvers\":%zu,\"pending_flows\":[",
      queue_.size(), in_flight_,
      static_cast<unsigned long long>(submitted_),
      static_cast<unsigned long long>(completed_),
      stopping_ ? "true" : "false", effective_max_batch_, solvers_.size());
  std::string out = buf;
  bool first = true;
  for (const Item& item : queue_) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(item.flow_id));
    out += buf;
  }
  out += "]}";
  return out;
}

void SolveService::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::vector<Item> batch = take_batch_locked();
    in_flight_ += batch.size();
    obs::gauge("solve_service.queue_depth")
        .set(static_cast<double>(queue_.size()));
    lk.unlock();
    run_batch(std::move(batch));
    lk.lock();
  }
}

std::vector<SolveService::Item> SolveService::take_batch_locked() {
  // femtolint: allow(guarded-by): private helper; every caller holds mu_.
  const std::size_t cap = effective_max_batch_;
  std::vector<Item> batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const SolveRequest& head = batch.front().req;
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < cap;) {
    if (it->req.u.get() == head.u.get() && it->req.params == head.params) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

DwfSolver& SolveService::solver_for(const SolveRequest& req) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (SolverEntry& e : solvers_) {
      if (!e.busy && e.key_u == req.u.get() && e.key_params == req.params) {
        e.busy = true;
        return *e.solver;
      }
    }
  }
  // First batch against this configuration (or the matching entry is mid
  // solve on another worker): build a fresh operator pair.  The build is
  // heavy — the float gauge conversion walks the whole field — so it runs
  // OUTSIDE mu_: submit(), pending() and every worker's end-of-batch
  // bookkeeping keep flowing while this worker constructs.  Two workers
  // racing here build two entries, exactly as the old in-lock path did
  // when the only matching entry was busy; both are reused later.
  auto fresh =
      std::make_unique<DwfSolver>(req.u, req.params, cfg_.solver);
  DwfSolver* solver = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    solvers_.push_back(SolverEntry{req.u.get(), req.params,
                                   std::move(fresh), /*busy=*/true});
    solver = solvers_.back().solver.get();
  }
  // Batched solves want the multi-RHS sweep: batch size is an autotune
  // dimension alongside grain and variant (see DslashMultiTunable), and
  // the sweet spot it measures becomes the live batching bound.
  if (cfg_.autotune) {
    const std::size_t best = solver->autotune_multi(cfg_.max_batch);
    std::lock_guard<std::mutex> tuned_lk(mu_);
    effective_max_batch_ =
        std::min(cfg_.max_batch, std::max<std::size_t>(best, 1));
    obs::gauge("solve_service.effective_max_batch")
        .set(static_cast<double>(effective_max_batch_));
  }
  return *solver;
}

void SolveService::release_solver(const DwfSolver& s) {
  std::lock_guard<std::mutex> lk(mu_);
  for (SolverEntry& e : solvers_) {
    if (e.solver.get() == &s) {
      e.busy = false;
      return;
    }
  }
}

void SolveService::run_batch(std::vector<Item> batch) {
  FEMTO_TRACE_SCOPE("service", "solve_batch");
  // Close each request's causal link: the flow-in span [submitted, claimed]
  // on this worker's timeline is the queue latency the critical-path
  // reducer charges to the submit->claim edge.
  for (const Item& item : batch)
    if (item.flow_id != 0)
      obs::trace_flow_in("service", "queue_wait", item.submit_ns,
                         item.flow_id);
  const std::size_t nb = batch.size();
  DwfSolver& solver = solver_for(batch.front().req);
  const obs::Stopwatch sw;

  std::vector<std::shared_ptr<SpinorField<double>>> xs;
  std::vector<SolveResult> stats;
  bool ok = true;
  std::exception_ptr error;
  try {
    std::vector<SpinorField<double>*> xp;
    std::vector<const SpinorField<double>*> bp;
    xs.reserve(nb);
    for (const Item& item : batch) {
      const SpinorField<double>& b = *item.req.b;
      xs.push_back(std::make_shared<SpinorField<double>>(b.geom_ptr(),
                                                         b.l5(), b.subset()));
      xp.push_back(xs.back().get());
      bp.push_back(item.req.b.get());
    }
    stats = solver.solve_multi(xp, bp);
  } catch (...) {
    ok = false;
    error = std::current_exception();
  }
  release_solver(solver);
  const double secs = sw.seconds();

  for (std::size_t r = 0; r < nb; ++r) {
    if (ok)
      batch[r].promise.set_value(SolveOutcome{xs[r], stats[r]});
    else
      batch[r].promise.set_exception(error);
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    in_flight_ -= nb;
    completed_ += nb;
    busy_seconds_ += secs;
    obs::counter("solve_service.completed")
        .add(static_cast<std::int64_t>(nb));
    obs::counter("solve_service.batches").add(1);
    obs::histogram("solve_service.batch_size")
        .observe(static_cast<std::int64_t>(nb));
    if (busy_seconds_ > 0.0)
      obs::gauge("solve_service.throughput")
          .set(static_cast<double>(completed_) / busy_seconds_);
  }
  cv_idle_.notify_all();
}

}  // namespace femto
