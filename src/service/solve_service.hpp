#pragma once
// SolveService: the async propagator-solve front end (DESIGN.md §12).
//
// The paper's Feynman-Hellmann workflow needs dozens of solves per gauge
// configuration (sources x spins x flavors), and the stochastic FH method
// multiplies that further — the ROADMAP's "heavy traffic" story.  Instead
// of calling DwfSolver::solve one RHS at a time, producers submit
// SolveRequests to a thread-safe FIFO queue and get a std::future back;
// worker threads drain the queue, greedily batching COMPATIBLE requests
// (same gauge field, same operator params — i.e. the same preconditioned
// system) up to a tunable max batch B, and run them through
// DwfSolver::solve_multi so the B solves share every gauge-link load.
// With autotune on, the first solver build sweeps the multi-RHS grid and
// the measured sweet-spot batch size becomes the live bound (clamped to
// [1, max_batch]) — the queue stops growing batches past the point the
// sweep found counter-productive.
//
// Batching policy: a worker pops the oldest pending request, then scans
// the rest of the queue in FIFO order pulling every compatible request
// until the batch holds B.  Incompatible requests are left in place (no
// reordering among themselves), so a config change drains in submission
// order and a single stream of same-config requests batches maximally.
// METAQ (src/jobmgr) models the same claim-from-queue shape at the
// cluster level; this is its in-process, solver-granularity analogue.
//
// Because block solvers keep per-RHS trajectories bitwise independent of
// batch composition (block_cg.hpp), results are DETERMINISTIC under any
// queue timing: however requests interleave into batches, each solution
// equals the one a solo DwfSolver::solve would produce.
//
// Telemetry (femtoscope): per-request SolveRecords via the block solvers,
// plus
//   solve_service.queue_depth   gauge, sampled at every queue transition
//   solve_service.batch_size    histogram, one observation per batch
//   solve_service.throughput    gauge, completed solves / busy second
//   solve_service.submitted / .completed / .batches   counters
//   solve_service.effective_max_batch   gauge, the live batching bound

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/check.hpp"
#include "dirac/mobius.hpp"
#include "lattice/field.hpp"
#include "solver/cg.hpp"
#include "solver/dwf_solve.hpp"

namespace femto {

/// One propagator solve: D x = b on the given configuration.  Requests
/// sharing (u, params) are batchable.  Shared ownership keeps the fields
/// alive however long the queue holds them.
struct SolveRequest {
  std::shared_ptr<const GaugeField<double>> u;
  MobiusParams params;
  std::shared_ptr<const SpinorField<double>> b;
};

/// What the future resolves to: the full 5D solution plus solver stats.
struct SolveOutcome {
  std::shared_ptr<SpinorField<double>> x;
  SolveResult stats;
};

struct SolveServiceConfig {
  std::size_t max_batch = 4;  ///< greedy batch bound B (autotunable)
  std::size_t workers = 1;    ///< drain threads
  bool autotune = false;      ///< autotune each solver on first build
  SolverParams solver;        ///< per-solve tolerances / precisions
};

class SolveService {
 public:
  explicit SolveService(SolveServiceConfig cfg = {});
  /// Drains outstanding work, then joins the workers (every submitted
  /// future is resolved before the destructor returns).  The drain waits
  /// on cv_idle_ with mu_ released for the duration of the block, so
  /// workers fulfilling promises can always reach the lock; only after the
  /// queue and in-flight count hit zero is the stop flag raised.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Enqueue a solve; the future resolves when a worker completes it.
  /// Requests are never dropped and complete exactly once.
  std::future<SolveOutcome> submit(SolveRequest req);

  /// Block until every request submitted so far has completed.
  void drain();

  /// Pending (not yet claimed) requests.
  std::size_t pending() const;

  /// The live greedy batching bound: config().max_batch until the first
  /// autotuned solver build replaces it with the multi-RHS sweep's
  /// measured sweet spot (always within [1, config().max_batch]).
  std::size_t effective_max_batch() const;

  const SolveServiceConfig& config() const { return cfg_; }

 private:
  struct Item {
    SolveRequest req;
    std::promise<SolveOutcome> promise;
    // Femtoscope causal link (DESIGN.md §15): submit() records a flow-out
    // span under this id; the claiming worker records the matching
    // flow-in whose duration is the request's queue latency.  0 when
    // tracing was off at submission.
    std::uint64_t flow_id = 0;
    std::int64_t submit_ns = -1;
  };

  /// One operator pair per (gauge field, operator params) seen; workers
  /// reuse it across batches so the float gauge conversion and autotune
  /// happen once per configuration.
  struct SolverEntry {
    const GaugeField<double>* key_u;
    MobiusParams key_params;
    std::unique_ptr<DwfSolver> solver;
    /// Checked out by a worker for the duration of one batch; a second
    /// worker hitting the same (u, params) builds its own entry rather
    /// than sharing solver scratch mid-solve.
    bool busy = false;
  };

  void worker_loop();
  /// Crash-tolerant in-flight state for the flight recorder: one JSON
  /// object, degrading to {"locked":true} when mu_ is unavailable.
  std::string queue_state_json() const;
  /// Pop the head plus every queue-order-compatible follower, up to
  /// max_batch.  Caller holds mu_.
  std::vector<Item> take_batch_locked();
  /// Check out (creating on first use) the solver for this request's
  /// (gauge field, operator params); pair with release_solver().
  DwfSolver& solver_for(const SolveRequest& req);
  void release_solver(const DwfSolver& s);
  void run_batch(std::vector<Item> batch);

  const SolveServiceConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< queue gained work / stopping
  std::condition_variable cv_idle_;   ///< a request finished (drain waits)
  std::deque<Item> queue_ FEMTO_GUARDED_BY(mu_);
  std::size_t in_flight_ FEMTO_GUARDED_BY(mu_) = 0;
  std::uint64_t submitted_ FEMTO_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ FEMTO_GUARDED_BY(mu_) = 0;
  double busy_seconds_ FEMTO_GUARDED_BY(mu_) = 0.0;
  bool stopping_ FEMTO_GUARDED_BY(mu_) = false;
  std::vector<SolverEntry> solvers_ FEMTO_GUARDED_BY(mu_);
  std::size_t effective_max_batch_ FEMTO_GUARDED_BY(mu_) = cfg_.max_batch;

  std::vector<std::thread> workers_;
  /// Flight-recorder provider registration (obs/blackbox.hpp); atomic so
  /// the write in the constructor body and the read in the destructor
  /// need no lock.
  std::atomic<int> blackbox_handle_{0};
};

}  // namespace femto
