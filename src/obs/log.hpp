#pragma once
// Leveled structured logger for the femtoscope observability layer.
//
// Replaces the ad-hoc ostream prints that used to live in the solvers and
// job managers: every line carries [elapsed][LEVEL][rank][category] and is
// filtered by a global level, so quiet runs are actually quiet and MPI-style
// multi-rank output stays attributable.  The FEMTO_LOG macros build their
// message only when the level is enabled -- a disabled log line costs one
// relaxed atomic load and a branch.
//
// Level resolution order: set_log_level() > FEMTO_LOG env var
// (trace|debug|info|warn|error|off) > default Warn.

#include <cstdint>
#include <sstream>
#include <string>

namespace femto::obs {

enum class LogLevel : int {
  Trace = 0,
  Debug = 1,
  Info = 2,
  Warn = 3,
  Error = 4,
  Off = 5,
};

// Monotonic nanoseconds since the first femtoscope use in this process.
// Shared timebase for log timestamps and trace spans.
std::int64_t uptime_ns();

void set_log_level(LogLevel level);
LogLevel log_level();
bool log_enabled(LogLevel level);
const char* log_level_name(LogLevel level);

// Rank prefix for multi-rank runs; -1 (default) omits the field.
void set_log_rank(int rank);
int log_rank();

// Redirect formatted lines (tests capture output this way); nullptr
// restores the default stderr sink.  The sink receives the fully
// formatted line without a trailing newline.
using LogSink = void (*)(LogLevel level, const char* category,
                         const std::string& line);
void set_log_sink(LogSink sink);

// Format and emit one line (already level-checked by the macros; calling
// directly also re-checks, so it is safe on its own).
void log_line(LogLevel level, const char* category,
              const std::string& message);

}  // namespace femto::obs

// Streaming log macros: FEMTO_LOG(level, "category", "x = " << x).
// The ostringstream is only constructed when the level is enabled.
#define FEMTO_LOG(lvl, category, expr)                       \
  do {                                                       \
    if (::femto::obs::log_enabled(lvl)) {                    \
      std::ostringstream femto_log_os_;                      \
      femto_log_os_ << expr;                                 \
      ::femto::obs::log_line(lvl, category,                  \
                             femto_log_os_.str());           \
    }                                                        \
  } while (0)

#define FEMTO_LOG_TRACE(category, expr) \
  FEMTO_LOG(::femto::obs::LogLevel::Trace, category, expr)
#define FEMTO_LOG_DEBUG(category, expr) \
  FEMTO_LOG(::femto::obs::LogLevel::Debug, category, expr)
#define FEMTO_LOG_INFO(category, expr) \
  FEMTO_LOG(::femto::obs::LogLevel::Info, category, expr)
#define FEMTO_LOG_WARN(category, expr) \
  FEMTO_LOG(::femto::obs::LogLevel::Warn, category, expr)
#define FEMTO_LOG_ERROR(category, expr) \
  FEMTO_LOG(::femto::obs::LogLevel::Error, category, expr)
