#include "obs/flow.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace femto::obs {

namespace {

// Timeline key for chaining: spans recorded under a rank chain by rank
// (the Chrome merge mode's process row); unranked spans chain by thread.
// Ranks and tids never collide because ranks are non-negative and tids
// are offset into the negative range.
std::int64_t track_of(const TraceEvent& e) {
  if (e.rank >= 0) return e.rank;
  return -1 - static_cast<std::int64_t>(e.tid);
}

std::int64_t end_of(const TraceEvent& e) { return e.t0_ns + e.dur_ns; }

std::string describe(const FlowEdge& e) {
  char buf[192];
  char src[24], dst[24];
  if (e.out.rank >= 0)
    std::snprintf(src, sizeof(src), "rank%d", e.out.rank);
  else
    std::snprintf(src, sizeof(src), "tid%u", e.out.tid);
  if (e.in.rank >= 0)
    std::snprintf(dst, sizeof(dst), "rank%d", e.in.rank);
  else
    std::snprintf(dst, sizeof(dst), "tid%u", e.in.tid);
  std::snprintf(buf, sizeof(buf), "%s/%s %s<-%s %.3f ms (flow %llu)",
                e.in.category != nullptr ? e.in.category : "?",
                e.in.name != nullptr ? e.in.name : "?", dst, src,
                static_cast<double>(e.wait_ns) * 1e-6,
                static_cast<unsigned long long>(e.in.flow_id));
  return buf;
}

}  // namespace

std::vector<FlowEdge> flow_edges(const TraceSnapshot& snap) {
  std::map<std::uint64_t, const TraceEvent*> outs;
  std::map<std::uint64_t, const TraceEvent*> ins;
  for (const TraceEvent& e : snap.events) {
    if (e.flow_id == 0 || e.flow == FlowDir::None) continue;
    if (e.flow == FlowDir::Out)
      outs.emplace(e.flow_id, &e);
    else
      ins.emplace(e.flow_id, &e);
  }
  std::vector<FlowEdge> edges;
  edges.reserve(outs.size());
  for (const auto& [id, out] : outs) {
    auto it = ins.find(id);
    if (it == ins.end()) continue;
    FlowEdge edge;
    edge.out = *out;
    edge.in = *it->second;
    edge.wait_ns = edge.in.dur_ns;
    edges.push_back(edge);
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const FlowEdge& a, const FlowEdge& b) {
                     if (a.out.t0_ns != b.out.t0_ns)
                       return a.out.t0_ns < b.out.t0_ns;
                     return a.out.flow_id < b.out.flow_id;
                   });
  return edges;
}

CriticalPathReport critical_path(const TraceSnapshot& snap) {
  CriticalPathReport report;
  const std::vector<FlowEdge> edges = flow_edges(snap);
  report.edges_matched = static_cast<int>(edges.size());
  int flow_spans = 0;
  for (const TraceEvent& e : snap.events)
    if (e.flow_id != 0 && e.flow != FlowDir::None) ++flow_spans;
  report.edges_unmatched =
      flow_spans - 2 * report.edges_matched;

  const std::size_t n = edges.size();
  if (n == 0) return report;

  // chain[i]: largest total wait of any chain ending at edge i; pred[i]
  // reconstructs it.  Edge j can precede edge i when j's consumer lives on
  // the timeline that produced i and j's wait resolved before i's handoff
  // completed.  O(n^2) over matched pairs -- flow spans are per-message,
  // not per-site, so n stays small.
  std::vector<std::int64_t> chain(n);
  std::vector<std::ptrdiff_t> pred(n, -1);
  std::size_t best = 0;
  for (std::size_t i = 0; i < n; ++i) {
    chain[i] = edges[i].wait_ns;
    for (std::size_t j = 0; j < i; ++j) {
      if (track_of(edges[j].in) != track_of(edges[i].out)) continue;
      if (end_of(edges[j].in) > end_of(edges[i].out)) continue;
      if (chain[j] + edges[i].wait_ns > chain[i]) {
        chain[i] = chain[j] + edges[i].wait_ns;
        pred[i] = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (chain[i] > chain[best]) best = i;
  }

  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(best); i >= 0;
       i = pred[static_cast<std::size_t>(i)])
    report.chain.push_back(edges[static_cast<std::size_t>(i)]);
  std::reverse(report.chain.begin(), report.chain.end());
  report.total_wait_ns = chain[best];
  return report;
}

std::string critical_path_summary(const CriticalPathReport& report) {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "critical path: %.3f ms total wait over %zu of %d matched "
                "flow edges (%d unmatched)\n",
                static_cast<double>(report.total_wait_ns) * 1e-6,
                report.chain.size(), report.edges_matched,
                report.edges_unmatched);
  out += buf;
  const FlowEdge* longest = nullptr;
  int idx = 0;
  for (const FlowEdge& e : report.chain) {
    ++idx;
    std::snprintf(buf, sizeof(buf), "  %2d. ", idx);
    out += buf;
    out += describe(e);
    out += '\n';
    if (longest == nullptr || e.wait_ns > longest->wait_ns) longest = &e;
  }
  if (longest != nullptr) {
    out += "longest wait: ";
    out += describe(*longest);
    out += '\n';
  }
  return out;
}

}  // namespace femto::obs
