#pragma once
// Minimal JSON utilities for the femtoscope observability layer: string
// escaping and number formatting for the writers (trace export, run
// report), plus a strict recursive-descent validator used by tests and
// the trace-export smoke binary.  This is NOT a general JSON parser --
// validate() answers "is this byte string well-formed JSON?" and nothing
// else, which is exactly what schema smoke tests need.

#include <cstdint>
#include <string>

namespace femto::obs {

// Escape a raw byte string for inclusion inside a JSON string literal
// (quotes are NOT added).  Control characters are \u00XX-escaped.
std::string json_escape(const std::string& raw);

// Format a double as a JSON number.  Non-finite values (NaN/inf) have no
// JSON representation; they are emitted as `null` so a report containing
// a degenerate measurement still parses.
std::string json_number(double v);

// Format an integer as a JSON number.
std::string json_number(std::int64_t v);

// Strict well-formedness check over the complete input (trailing garbage
// rejected; duplicate keys within one object rejected -- a femtoscope
// writer emitting a key twice is an upstream bug, not a parse choice).
// On failure, *err (if non-null) gets a one-line diagnostic with the
// byte offset.
bool json_validate(const std::string& text, std::string* err = nullptr);

}  // namespace femto::obs
