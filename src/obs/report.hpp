#pragma once
// Femtoscope end-of-run report: one schema-versioned JSON document plus a
// human-readable summary, both derived from the global metrics Registry
// and the trace registry.  The derived block reproduces the paper's
// S VI-VII sustained-performance accounting from MEASURED data:
//
//   sustained_gflops      solver.flops / solver.seconds / 1e9
//   arithmetic_intensity  solver.flops / solver.bytes      (flop/byte)
//   autotune_hit_rate     hits / (hits + misses)
//   jm_efficiency         busy / (busy + idle)  -- measured mpi_jm lump
//                         timelines when present, else the schedule-model
//                         gauges jm.busy_node_seconds/jm.alloc_node_seconds
//   application_gflops    sustained_gflops * jm_efficiency
//
// Well-known metric names feeding the derived block (instrumentation
// sites register these; anything else shows up verbatim in the metric
// dumps):
//
//   counters   solver.flops, solver.bytes, solver.solves, solver.failures,
//              autotune.cache_hits, autotune.cache_misses,
//              comm.halo_bytes, comm.halo_messages, comm.staging_copies,
//              pool.launches, pool.inline_runs,
//              jm.lump_busy_us, jm.lump_idle_us, jm.jobs_completed
//   gauges     solver.seconds, pool.threads,
//              jm.busy_node_seconds, jm.alloc_node_seconds
//   histograms solver.iterations, autotune.search_us, pool.queue_depth,
//              comm.halo_message_bytes

#include <string>

namespace femto::obs {

// Bumped whenever a field is renamed/removed; additions are compatible.
inline constexpr const char* kReportSchema = "femtoscope-report-v1";

// The full report as a JSON document (always parses; use
// json_validate() to double-check in smoke tests).
std::string report_json(const std::string& title = "femtoscope");

// Human summary: the measured sustained-performance table plus solver /
// autotune / job-manager roll-ups.
std::string report_summary();

// Write report_json(title) to a file.  Returns false on I/O failure.
bool write_report(const std::string& path,
                  const std::string& title = "femtoscope");

// Consumer-side check for a report document: strict JSON well-formedness
// (truncation, raw NaN/Inf tokens, and duplicate keys all reject) plus
// the kReportSchema marker -- a file from a different schema generation
// fails loudly instead of half-parsing.
bool report_validate(const std::string& text, std::string* err = nullptr);

}  // namespace femto::obs
