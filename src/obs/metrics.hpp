#pragma once
// Femtoscope metrics registry: named counters, gauges, and log2-bucketed
// histograms, plus structured per-solve records.  This is the single sink
// that unifies the tree's previously ad-hoc telemetry (flops::Counter
// traffic, autotune hit/miss, halo bytes, thread-pool launches, job-manager
// busy/idle) so the end-of-run report can compute sustained performance
// from MEASURED data.
//
// Concurrency contract: metric objects are lock-free atomics, safe to
// update from kernels and pool workers.  Name lookup takes the registry
// lock; hot paths should cache the reference once:
//
//   static obs::Counter& bytes = obs::counter("comm.halo_bytes");
//   bytes.add(n);
//
// Cached references stay valid forever: the registry never erases a
// metric -- reset() zeroes values but keeps the objects.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/check.hpp"

namespace femto::obs {

class Counter {
 public:
  void add(std::int64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed log2 buckets: bucket 0 holds v <= 0, bucket b (1..63) holds values
// with bit_width b, i.e. [2^(b-1), 2^b - 1].  Fixed bounds mean two
// histograms (or two runs) are always mergeable/comparable.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  static int bucket_of(std::int64_t v) {
    if (v <= 0) return 0;
    const int w = std::bit_width(static_cast<std::uint64_t>(v));
    return w < kBuckets ? w : kBuckets - 1;
  }

  // Inclusive lower bound of bucket b (0 for the <=0 bucket).
  static std::int64_t bucket_lower_bound(int b) {
    if (b <= 0) return 0;
    return std::int64_t{1} << (b - 1);
  }

  void observe(std::int64_t v) {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

// One residual-history point of an iterative solve.
struct ResidualPoint {
  int iteration = 0;
  double rel_residual = 0.0;
  char precision = 'd';        // 'd' double, 's' single, 'h' half
  bool reliable_update = false;
};

// Structured record of one linear solve, pushed by the solvers and
// surfaced verbatim in the run report.
struct SolveRecord {
  std::string solver;
  bool converged = false;
  int iterations = 0;
  int reliable_updates = 0;
  double final_rel_residual = 0.0;
  double seconds = 0.0;
  std::int64_t flops = 0;
  std::int64_t bytes = 0;
  std::vector<ResidualPoint> history;
};

struct HistogramSnapshot {
  std::string name;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::array<std::int64_t, Histogram::kBuckets> buckets{};
};

// Process-global metric registry.  Lookup is locked; returned references
// are stable for the life of the process.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  void record_solve(SolveRecord rec);

  // Sorted snapshots for the report writer.
  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<HistogramSnapshot> histograms() const;
  std::vector<SolveRecord> solves() const;
  std::int64_t total_solves() const;

  // Crash-tolerant snapshot for the flight recorder (obs/blackbox.hpp):
  // try_lock, so a dump taken while some thread died holding mu_ degrades
  // to an empty snapshot instead of deadlocking the abort path.  Returns
  // false (outputs untouched) when the lock is unavailable.
  bool try_crash_snapshot(
      std::vector<std::pair<std::string, std::int64_t>>* counters,
      std::vector<std::pair<std::string, double>>* gauges) const;

  // Does NOT erase metric objects (cached references stay valid); zeroes
  // every value and clears the solve log.
  void reset();

  // Caps the retained solve records (oldest evicted); total_solves()
  // keeps counting.
  static constexpr std::size_t kMaxSolveRecords = 256;

 private:
  Registry() = default;

  // Lock order (DESIGN.md §14): mu_ is a LEAF — Autotuner::mu_ and
  // SolveService::mu_ are both legitimately held while counters update
  // under it, so no code path may acquire another tracked mutex (or
  // block) while holding mu_.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      FEMTO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      FEMTO_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      FEMTO_GUARDED_BY(mu_);
  std::vector<SolveRecord> solves_ FEMTO_GUARDED_BY(mu_);
  std::int64_t total_solves_ FEMTO_GUARDED_BY(mu_) = 0;
};

// Convenience lookups against the global registry.
inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}
inline Histogram& histogram(const std::string& name) {
  return Registry::global().histogram(name);
}
inline void record_solve(SolveRecord rec) {
  Registry::global().record_solve(std::move(rec));
}

}  // namespace femto::obs
