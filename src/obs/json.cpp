#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>

namespace femto::obs {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %g may print "1e+05"-style exponents, which are valid JSON, but it
  // never prints a bare trailing '.'; the only invalid-JSON risk would be
  // nan/inf, handled above.
  return buf;
}

std::string json_number(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

namespace {

// Recursive-descent validator.  Depth-limited so a hostile/corrupt file
// cannot overflow the stack.
class Validator {
 public:
  Validator(const std::string& text, std::string* err)
      : s_(text.data()), n_(text.size()), err_(err) {}

  bool run() {
    skip_ws();
    if (!value(0)) return false;
    skip_ws();
    if (pos_ != n_) return fail("trailing bytes after JSON value");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* msg) {
    if (err_) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "json error at byte %zu: %s", pos_,
                    msg);
      *err_ = buf;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < n_ && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                         s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (pos_ + len > n_ || std::memcmp(s_ + pos_, word, len) != 0)
      return fail("bad literal");
    pos_ += len;
    return true;
  }

  // When @p out is non-null the raw (still-escaped) bytes between the
  // quotes are captured -- enough for object() to compare keys, since two
  // byte-identical keys are duplicates whatever they decode to.
  bool string(std::string* out = nullptr) {
    if (pos_ >= n_ || s_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    const std::size_t body = pos_;
    while (pos_ < n_) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        if (out != nullptr) out->assign(s_ + body, pos_ - body);
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= n_) return fail("truncated escape");
        const char e = s_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= n_) return fail("truncated \\u escape");
          for (int i = 1; i <= 4; ++i) {
            const char h = s_[pos_ + static_cast<std::size_t>(i)];
            const bool hex = (h >= '0' && h <= '9') ||
                             (h >= 'a' && h <= 'f') || (h >= 'A' && h <= 'F');
            if (!hex) return fail("bad \\u escape");
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
        ++pos_;
      } else if (c < 0x20) {
        return fail("raw control character in string");
      } else {
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < n_ && s_[pos_] == '-') ++pos_;
    if (pos_ >= n_) return fail("truncated number");
    if (s_[pos_] == '0') {
      ++pos_;
    } else if (s_[pos_] >= '1' && s_[pos_] <= '9') {
      while (pos_ < n_ && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    } else {
      return fail("bad number");
    }
    if (pos_ < n_ && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= n_ || s_[pos_] < '0' || s_[pos_] > '9')
        return fail("bad fraction");
      while (pos_ < n_ && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < n_ && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < n_ && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= n_ || s_[pos_] < '0' || s_[pos_] > '9')
        return fail("bad exponent");
      while (pos_ < n_ && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    return pos_ > start;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= n_) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // consume '{'
    skip_ws();
    if (pos_ < n_ && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    std::set<std::string> keys;
    std::string key;
    for (;;) {
      skip_ws();
      if (!string(&key)) return false;
      // A report/baseline writer emitting one key twice is a bug upstream
      // (last-wins parsing would silently mask half the data) -- reject.
      if (!keys.insert(key).second) return fail("duplicate object key");
      skip_ws();
      if (pos_ >= n_ || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (pos_ < n_ && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < n_ && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth) {
    ++pos_;  // consume '['
    skip_ws();
    if (pos_ < n_ && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (pos_ < n_ && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < n_ && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const char* s_;
  std::size_t n_;
  std::size_t pos_ = 0;
  std::string* err_;
};

}  // namespace

bool json_validate(const std::string& text, std::string* err) {
  return Validator(text, err).run();
}

}  // namespace femto::obs
