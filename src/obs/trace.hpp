#pragma once
// Femtoscope span tracer: FEMTO_TRACE_SCOPE("category", "name") records a
// complete span into a per-thread lock-free ring buffer; a quiescent-point
// export emits Chrome trace_event JSON loadable in Perfetto or
// chrome://tracing.
//
// v2 adds the cross-rank causal layer (DESIGN.md §15): every span carries
// the recording thread's RANK (set_trace_rank, stamped by femtocomm's
// World::run) and an optional FLOW ID linking a producer span (send,
// submit, METAQ drop-off) to the consumer span that waited on it (recv,
// batch claim).  The Chrome export's merge mode lays every rank out as its
// own process row and draws the links as `s`/`f` flow arrows, so a halo
// exchange or a batched solve renders as one causal arc across rank
// timelines.  src/obs/flow.hpp reduces the same pairs to a critical path.
//
// Cost model (the reason hot kernels can afford a scope):
//   disabled  -- one relaxed atomic load + branch in the constructor; the
//                destructor sees t0 < 0 and does nothing.  No clock reads.
//                The load covers tracing AND the sampler's span stack: both
//                enable bits live in one fused state word, so femtoscope v2
//                keeps the v1 disabled contract.
//   enabled   -- two steady_clock reads plus one single-writer ring store;
//                no locks, no allocation after a thread's first span.  With
//                the sampler (or the crash flight recorder) armed, also two
//                plain stores maintaining the per-thread span stack.
// Compiling with -DFEMTO_OBS_NO_TRACE removes the scopes entirely.
//
// Buffers are bounded: when a thread outruns its ring the OLDEST spans are
// overwritten and the export reports the drop count -- tracing never
// stalls the traced code.  Export (trace_snapshot / chrome_trace_json) is
// meant for quiescent points (end of run, between phases); it reads rings
// that other threads may still append to, and concurrently appended spans
// may or may not be included.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/log.hpp"

namespace femto::obs {

// Which side of a causal link a span is, if any.
enum class FlowDir : std::uint8_t {
  None = 0,
  Out = 1,  ///< producer: send / submit / drop-off
  In = 2,   ///< consumer: recv / claim; dur_ns is the time spent waiting
};

// One completed span.  Category/name must be string literals (or otherwise
// outlive the export) -- the ring stores pointers, not copies, which is
// what keeps the record path allocation-free.
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  std::int64_t t0_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::int32_t rank = -1;      ///< -1 = thread never ran under a rank
  std::uint64_t flow_id = 0;   ///< 0 = not part of a flow
  FlowDir flow = FlowDir::None;
};

// Fixed-capacity single-writer ring.  The owning thread pushes; any thread
// may snapshot.  head_ is the count of spans EVER pushed (monotonic), so
// readers derive both the live window and the overwrite count from it.
class TraceRing {
 public:
  TraceRing(std::size_t capacity, std::uint32_t tid);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Owner thread only.
  void push(const char* category, const char* name, std::int64_t t0_ns,
            std::int64_t dur_ns, std::int32_t rank,
            std::uint64_t flow_id = 0, FlowDir flow = FlowDir::None);

  std::size_t capacity() const { return slots_.size(); }
  std::uint32_t tid() const { return tid_; }

  // Total spans ever pushed (>= capacity means the ring has wrapped).
  std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }

  // Spans overwritten so far.
  std::uint64_t dropped() const {
    const std::uint64_t h = pushed();
    return h > slots_.size() ? h - slots_.size() : 0;
  }

  // Copy out the surviving window, oldest first.  Exact at quiescent
  // points; best-effort if the owner is still pushing.
  std::vector<TraceEvent> events() const;

  // Forget all recorded spans (owner quiescent only).
  void clear() { head_.store(0, std::memory_order_release); }

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::uint32_t tid_;
};

namespace detail {
// Fused enable word: -1 = not yet initialised (consult FEMTO_TRACE env);
// otherwise a bitmask.  One relaxed load of this word is the whole cost of
// a disabled TraceScope, whatever combination of subsystems is off.
inline constexpr int kTraceBit = 1;  ///< span recording into the rings
inline constexpr int kStackBit = 2;  ///< span-stack upkeep (sampler/blackbox)
extern std::atomic<int> g_span_mode;
// Slow path: resolves the FEMTO_TRACE env var once, then returns the
// settled mode word.
int span_mode_slow();

// Per-thread live TraceScope stack upkeep, defined in sampler.cpp.  push
// returns the prior depth, which pop restores (overflow-tolerant).
int span_stack_push(const char* category, const char* name);
void span_stack_pop(int prev_depth);
// Rank tag on the calling thread's span stack (registering the thread on
// first use); defined in sampler.cpp.
void span_stack_set_rank(int rank);

// Refcounted kStackBit ownership: the sampler and the flight recorder each
// retain the span stack independently; defined in trace.cpp.
void span_stack_retain();
void span_stack_release();
}  // namespace detail

// Settled enable mask (kTraceBit | kStackBit).
inline int span_mode() {
  const int m = detail::g_span_mode.load(std::memory_order_relaxed);
  if (m >= 0) return m;
  return detail::span_mode_slow();
}

// Fast global switch read by every scope constructor.
inline bool trace_enabled() {
  return (span_mode() & detail::kTraceBit) != 0;
}

void set_trace_enabled(bool on);

// Rank tag for every span the CALLING thread records from now on; -1
// clears it.  femtocomm's World::run brackets each rank function with
// this, so multi-rank traces merge into per-rank Chrome process rows.
void set_trace_rank(int rank);
int trace_rank();

// A fresh process-unique flow id for the calling thread (never 0; encodes
// the thread's trace tid, so no cross-thread coordination is needed).
std::uint64_t next_flow_id();

// Ring capacity (spans) for threads that register AFTER the call; existing
// rings keep their size.  Default 1<<16 spans/thread (~2.5 MiB).
void set_trace_capacity(std::size_t spans);
std::size_t trace_capacity();

// Append one completed span to the calling thread's ring (registering the
// thread on first use).  Normally reached via FEMTO_TRACE_SCOPE.
void trace_push(const char* category, const char* name, std::int64_t t0_ns,
                std::int64_t dur_ns);

// Producer side of a causal link: record the completed span [t0_ns, now]
// that handed work off (send / submit).  Callers take t0_ns = uptime_ns()
// before the handoff and pass the id they stamped on the message.
void trace_flow_out(const char* category, const char* name,
                    std::int64_t t0_ns, std::uint64_t flow_id);

// Consumer side: record the completed span [t0_ns, now] spent WAITING for
// the handoff (recv / claim).  dur_ns of the recorded span is the wait the
// critical-path reducer charges to this edge.
void trace_flow_in(const char* category, const char* name,
                   std::int64_t t0_ns, std::uint64_t flow_id);

struct TraceSnapshot {
  std::vector<TraceEvent> events;  // merged, sorted by (t0_ns, tid)
  std::uint64_t dropped = 0;       // spans lost to ring wrap, all threads
  int threads = 0;                 // rings registered
};

// Merge every thread's ring, sorted by start time then tid -- the order is
// deterministic for a fixed set of recorded spans regardless of which
// thread exports.
TraceSnapshot trace_snapshot();

// Reset all rings (quiescent points only: no concurrent FEMTO_TRACE_SCOPE
// may be live while clearing).
void trace_clear();

struct ChromeTraceOptions {
  // Lay rank-tagged spans out as pid = rank (one Chrome process row per
  // rank, named "rank N"); unranked spans stay on pid 0.
  bool merge_ranks = true;
  // Emit "s"/"f" flow events for matched trace_flow_out/in pairs.
  bool flow_events = true;
};

// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds,
// plus flow arrows per the options).
std::string chrome_trace_json(const ChromeTraceOptions& opt = {});
bool write_chrome_trace(const std::string& path,
                        const ChromeTraceOptions& opt = {});

// RAII span: start time is taken at construction iff tracing is enabled;
// the destructor records the span.  When the sampler (or flight recorder)
// is armed, construction/destruction also maintain the thread's span stack.
class TraceScope {
 public:
  TraceScope(const char* category, const char* name)
      : category_(category), name_(name) {
    const int m = span_mode();
    t0_ns_ = (m & detail::kTraceBit) != 0 ? uptime_ns() : -1;
    depth_ = (m & detail::kStackBit) != 0
                 ? detail::span_stack_push(category, name)
                 : -1;
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (depth_ >= 0) detail::span_stack_pop(depth_);
    if (t0_ns_ >= 0)
      trace_push(category_, name_, t0_ns_, uptime_ns() - t0_ns_);
  }

 private:
  const char* category_;
  const char* name_;
  std::int64_t t0_ns_;
  int depth_;
};

}  // namespace femto::obs

#if defined(FEMTO_OBS_NO_TRACE)
#define FEMTO_TRACE_SCOPE(category, name) \
  do {                                    \
  } while (0)
#else
#define FEMTO_TRACE_CONCAT2(a, b) a##b
#define FEMTO_TRACE_CONCAT(a, b) FEMTO_TRACE_CONCAT2(a, b)
// The scope's lifetime is the enclosing block; __LINE__ keeps two scopes
// in one block from colliding.
#define FEMTO_TRACE_SCOPE(category, name)                             \
  ::femto::obs::TraceScope FEMTO_TRACE_CONCAT(femto_trace_scope_,     \
                                              __LINE__)(category, name)
#endif
