#pragma once
// Femtoscope span tracer: FEMTO_TRACE_SCOPE("category", "name") records a
// complete span into a per-thread lock-free ring buffer; a quiescent-point
// export emits Chrome trace_event JSON loadable in Perfetto or
// chrome://tracing.
//
// Cost model (the reason hot kernels can afford a scope):
//   disabled  -- one relaxed atomic load + branch in the constructor; the
//                destructor sees t0 < 0 and does nothing.  No clock reads.
//   enabled   -- two steady_clock reads plus one single-writer ring store;
//                no locks, no allocation after a thread's first span.
// Compiling with -DFEMTO_OBS_NO_TRACE removes the scopes entirely.
//
// Buffers are bounded: when a thread outruns its ring the OLDEST spans are
// overwritten and the export reports the drop count -- tracing never
// stalls the traced code.  Export (trace_snapshot / chrome_trace_json) is
// meant for quiescent points (end of run, between phases); it reads rings
// that other threads may still append to, and concurrently appended spans
// may or may not be included.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/log.hpp"

namespace femto::obs {

// One completed span.  Category/name must be string literals (or otherwise
// outlive the export) -- the ring stores pointers, not copies, which is
// what keeps the record path allocation-free.
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  std::int64_t t0_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;
};

// Fixed-capacity single-writer ring.  The owning thread pushes; any thread
// may snapshot.  head_ is the count of spans EVER pushed (monotonic), so
// readers derive both the live window and the overwrite count from it.
class TraceRing {
 public:
  TraceRing(std::size_t capacity, std::uint32_t tid);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Owner thread only.
  void push(const char* category, const char* name, std::int64_t t0_ns,
            std::int64_t dur_ns);

  std::size_t capacity() const { return slots_.size(); }
  std::uint32_t tid() const { return tid_; }

  // Total spans ever pushed (>= capacity means the ring has wrapped).
  std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }

  // Spans overwritten so far.
  std::uint64_t dropped() const {
    const std::uint64_t h = pushed();
    return h > slots_.size() ? h - slots_.size() : 0;
  }

  // Copy out the surviving window, oldest first.  Exact at quiescent
  // points; best-effort if the owner is still pushing.
  std::vector<TraceEvent> events() const;

  // Forget all recorded spans (owner quiescent only).
  void clear() { head_.store(0, std::memory_order_release); }

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::uint32_t tid_;
};

namespace detail {
// -1 = not yet initialised (consult FEMTO_TRACE env), 0 = off, 1 = on.
extern std::atomic<int> g_trace_state;
// Slow path: resolves the env var once, then returns the settled state.
bool trace_enabled_slow();
}  // namespace detail

// Fast global switch read by every scope constructor.
inline bool trace_enabled() {
  const int s = detail::g_trace_state.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return detail::trace_enabled_slow();
}

void set_trace_enabled(bool on);

// Ring capacity (spans) for threads that register AFTER the call; existing
// rings keep their size.  Default 1<<16 spans/thread (~2.5 MiB).
void set_trace_capacity(std::size_t spans);
std::size_t trace_capacity();

// Append one completed span to the calling thread's ring (registering the
// thread on first use).  Normally reached via FEMTO_TRACE_SCOPE.
void trace_push(const char* category, const char* name, std::int64_t t0_ns,
                std::int64_t dur_ns);

struct TraceSnapshot {
  std::vector<TraceEvent> events;  // merged, sorted by (t0_ns, tid)
  std::uint64_t dropped = 0;       // spans lost to ring wrap, all threads
  int threads = 0;                 // rings registered
};

// Merge every thread's ring, sorted by start time then tid -- the order is
// deterministic for a fixed set of recorded spans regardless of which
// thread exports.
TraceSnapshot trace_snapshot();

// Reset all rings (quiescent points only: no concurrent FEMTO_TRACE_SCOPE
// may be live while clearing).
void trace_clear();

// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds).
std::string chrome_trace_json();
bool write_chrome_trace(const std::string& path);

// RAII span: start time is taken at construction iff tracing is enabled;
// the destructor records the span.
class TraceScope {
 public:
  TraceScope(const char* category, const char* name)
      : category_(category),
        name_(name),
        t0_ns_(trace_enabled() ? uptime_ns() : -1) {}

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (t0_ns_ >= 0)
      trace_push(category_, name_, t0_ns_, uptime_ns() - t0_ns_);
  }

 private:
  const char* category_;
  const char* name_;
  std::int64_t t0_ns_;
};

}  // namespace femto::obs

#if defined(FEMTO_OBS_NO_TRACE)
#define FEMTO_TRACE_SCOPE(category, name) \
  do {                                    \
  } while (0)
#else
#define FEMTO_TRACE_CONCAT2(a, b) a##b
#define FEMTO_TRACE_CONCAT(a, b) FEMTO_TRACE_CONCAT2(a, b)
// The scope's lifetime is the enclosing block; __LINE__ keeps two scopes
// in one block from colliding.
#define FEMTO_TRACE_SCOPE(category, name)                             \
  ::femto::obs::TraceScope FEMTO_TRACE_CONCAT(femto_trace_scope_,     \
                                              __LINE__)(category, name)
#endif
