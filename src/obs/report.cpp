#include "obs/report.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/vec.hpp"

namespace femto::obs {

namespace {

/// Decodes the dslash.variant_{f,d} gauge ordinal.  Mirrors the
/// femto::DslashVariant encoding (obs sits below dirac in the layer DAG,
/// so it cannot include the enum itself).
const char* dslash_variant_name(double v) {
  const int k = static_cast<int>(v);
  if (k == 1) return "vector";
  if (k == 2) return "vector_blocked";
  return "scalar";
}

/// Decodes the dslash.format_{f,d} gauge ordinal.  Mirrors the
/// femto::GaugeFormat encoding in lattice/compressed_gauge.hpp (same
/// layering reason as above).
const char* dslash_format_name(double v) {
  const int k = static_cast<int>(v);
  if (k == 1) return "recon12";
  if (k == 2) return "recon8";
  if (k == 3) return "fixed12";
  return "full18";
}

// Ratios whose denominator never accumulated are UNDEFINED, not zero: an
// empty run did not sustain 0 GFLOP/s, it sustained nothing.  They start
// as quiet NaN, which json_number renders as an explicit null and the
// text summary as "n/a" -- downstream consumers (benchdiff, dashboards)
// can tell "measured zero" from "no data" (DESIGN.md §15).
constexpr double kUndefined = std::numeric_limits<double>::quiet_NaN();

struct Derived {
  double solver_seconds = 0.0;
  std::int64_t solver_flops = 0;
  std::int64_t solver_bytes = 0;
  double sustained_gflops = kUndefined;
  double arithmetic_intensity = kUndefined;
  std::int64_t autotune_hits = 0;
  std::int64_t autotune_misses = 0;
  double autotune_hit_rate = kUndefined;
  double jm_busy_s = 0.0;
  double jm_idle_s = 0.0;
  double jm_efficiency = kUndefined;
  const char* jm_source = "none";
  double application_gflops = kUndefined;
  double dslash_variant_f = 0.0;
  double dslash_variant_d = 0.0;
  double dslash_format_f = 0.0;
  double dslash_format_d = 0.0;
  double dslash_gbytes_f = 0.0;
  double dslash_gbytes_d = 0.0;
  std::int64_t svc_completed = 0;
  std::int64_t svc_batches = 0;
  double svc_queue_depth = 0.0;
  double svc_batch_mean = kUndefined;
  double svc_throughput = kUndefined;
};

Derived derive() {
  Registry& reg = Registry::global();
  Derived d;
  d.solver_seconds = reg.gauge("solver.seconds").get();
  d.solver_flops = reg.counter("solver.flops").get();
  d.solver_bytes = reg.counter("solver.bytes").get();
  if (d.solver_seconds > 0.0)
    d.sustained_gflops =
        static_cast<double>(d.solver_flops) / d.solver_seconds * 1e-9;
  if (d.solver_bytes > 0)
    d.arithmetic_intensity = static_cast<double>(d.solver_flops) /
                             static_cast<double>(d.solver_bytes);
  d.autotune_hits = reg.counter("autotune.cache_hits").get();
  d.autotune_misses = reg.counter("autotune.cache_misses").get();
  if (d.autotune_hits + d.autotune_misses > 0)
    d.autotune_hit_rate =
        static_cast<double>(d.autotune_hits) /
        static_cast<double>(d.autotune_hits + d.autotune_misses);
  // jm efficiency: prefer the measured per-lump busy/idle timelines from
  // the mpi_jm protocol; fall back to the schedule-model node-seconds.
  const double lump_busy =
      static_cast<double>(reg.counter("jm.lump_busy_us").get()) * 1e-6;
  const double lump_idle =
      static_cast<double>(reg.counter("jm.lump_idle_us").get()) * 1e-6;
  const double busy_node_s = reg.gauge("jm.busy_node_seconds").get();
  const double alloc_node_s = reg.gauge("jm.alloc_node_seconds").get();
  if (lump_busy + lump_idle > 0.0) {
    d.jm_busy_s = lump_busy;
    d.jm_idle_s = lump_idle;
    d.jm_efficiency = lump_busy / (lump_busy + lump_idle);
    d.jm_source = "mpi_jm_lump_timeline";
  } else if (alloc_node_s > 0.0) {
    d.jm_busy_s = busy_node_s;
    d.jm_idle_s = alloc_node_s - busy_node_s;
    d.jm_efficiency = busy_node_s / alloc_node_s;
    d.jm_source = "schedule_report";
  }
  // NaN-aware propagation: an undefined efficiency leaves the sustained
  // figure as-is (NaN > 0.0 is false); an undefined sustained figure makes
  // the application figure undefined too.
  d.application_gflops =
      d.jm_efficiency > 0.0 ? d.sustained_gflops * d.jm_efficiency
                            : d.sustained_gflops;
  d.dslash_variant_f = reg.gauge("dslash.variant_f").get();
  d.dslash_variant_d = reg.gauge("dslash.variant_d").get();
  d.dslash_format_f = reg.gauge("dslash.format_f").get();
  d.dslash_format_d = reg.gauge("dslash.format_d").get();
  d.dslash_gbytes_f = reg.gauge("dslash.gbytes_f").get();
  d.dslash_gbytes_d = reg.gauge("dslash.gbytes_d").get();
  // Async solve service (src/service): batch-occupancy mean comes from the
  // batch_size histogram, throughput from completed / busy seconds.
  d.svc_completed = reg.counter("solve_service.completed").get();
  d.svc_batches = reg.counter("solve_service.batches").get();
  d.svc_queue_depth = reg.gauge("solve_service.queue_depth").get();
  const Histogram& bh = reg.histogram("solve_service.batch_size");
  if (bh.count() > 0)
    d.svc_batch_mean =
        static_cast<double>(bh.sum()) / static_cast<double>(bh.count());
  if (d.svc_completed > 0)
    d.svc_throughput = reg.gauge("solve_service.throughput").get();
  return d;
}

void append_kv(std::string* out, const char* key, const std::string& val,
               bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += key;  // well-known keys, no escaping needed
  *out += "\":";
  *out += val;
}

std::string quoted(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

// Summary-table rendering of a possibly-undefined ratio: printf format
// @p fmt when defined, "n/a" when the run never fed the denominator.
std::string ratio_str(double v, const char* fmt) {
  if (std::isnan(v)) return "n/a";
  char buf[48];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

std::string report_json(const std::string& title) {
  Registry& reg = Registry::global();
  const Derived d = derive();
  const TraceSnapshot trace = trace_snapshot();

  std::string out;
  out.reserve(1 << 14);
  out += '{';
  bool first = true;
  append_kv(&out, "schema", quoted(kReportSchema), &first);
  append_kv(&out, "title", quoted(title), &first);

  // counters
  out += ",\"counters\":{";
  {
    bool f = true;
    for (const auto& [name, v] : reg.counters()) {
      if (!f) out += ',';
      f = false;
      out += quoted(name);
      out += ':';
      out += json_number(v);
    }
  }
  out += '}';

  // gauges
  out += ",\"gauges\":{";
  {
    bool f = true;
    for (const auto& [name, v] : reg.gauges()) {
      if (!f) out += ',';
      f = false;
      out += quoted(name);
      out += ':';
      out += json_number(v);
    }
  }
  out += '}';

  // histograms: only non-empty buckets, as [bucket_lower_bound, count]
  // pairs -- 64 mostly-zero buckets per histogram would dominate the file.
  out += ",\"histograms\":{";
  {
    bool f = true;
    for (const auto& h : reg.histograms()) {
      if (!f) out += ',';
      f = false;
      out += quoted(h.name);
      out += ":{\"count\":";
      out += json_number(h.count);
      out += ",\"sum\":";
      out += json_number(h.sum);
      out += ",\"buckets\":[";
      bool fb = true;
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        const std::int64_t n = h.buckets[static_cast<std::size_t>(b)];
        if (n == 0) continue;
        if (!fb) out += ',';
        fb = false;
        out += '[';
        out += json_number(Histogram::bucket_lower_bound(b));
        out += ',';
        out += json_number(n);
        out += ']';
      }
      out += "]}";
    }
  }
  out += '}';

  // per-solve records with (downsampled) residual histories
  out += ",\"solves\":[";
  {
    bool f = true;
    for (const auto& s : reg.solves()) {
      if (!f) out += ',';
      f = false;
      out += "{\"solver\":";
      out += quoted(s.solver);
      out += ",\"converged\":";
      out += s.converged ? "true" : "false";
      out += ",\"iterations\":";
      out += json_number(static_cast<std::int64_t>(s.iterations));
      out += ",\"reliable_updates\":";
      out += json_number(static_cast<std::int64_t>(s.reliable_updates));
      out += ",\"final_rel_residual\":";
      out += json_number(s.final_rel_residual);
      out += ",\"seconds\":";
      out += json_number(s.seconds);
      out += ",\"flops\":";
      out += json_number(s.flops);
      out += ",\"bytes\":";
      out += json_number(s.bytes);
      out += ",\"history\":[";
      bool fh = true;
      for (const auto& p : s.history) {
        if (!fh) out += ',';
        fh = false;
        char prec[2] = {p.precision, '\0'};
        out += "{\"iter\":";
        out += json_number(static_cast<std::int64_t>(p.iteration));
        out += ",\"rel_residual\":";
        out += json_number(p.rel_residual);
        out += ",\"precision\":";
        out += quoted(prec);
        out += ",\"reliable_update\":";
        out += p.reliable_update ? "true" : "false";
        out += '}';
      }
      out += "]}";
    }
  }
  out += "],\"total_solves\":";
  out += json_number(reg.total_solves());

  // trace meta (the spans themselves live in the Chrome trace file)
  out += ",\"trace\":{\"enabled\":";
  out += trace_enabled() ? "true" : "false";
  out += ",\"events\":";
  out += json_number(static_cast<std::int64_t>(trace.events.size()));
  out += ",\"dropped\":";
  out += json_number(static_cast<std::int64_t>(trace.dropped));
  out += ",\"threads\":";
  out += json_number(static_cast<std::int64_t>(trace.threads));
  out += '}';

  // simd build + tuned-kernel block: what the build vectorizes with and
  // which dslash variant the autotuner picked at which bandwidth
  out += ",\"simd\":{";
  {
    bool f = true;
    append_kv(&out, "isa", quoted(simd::kIsaName), &f);
    append_kv(&out, "width_float",
              json_number(std::int64_t{simd::kWidth<float>}), &f);
    append_kv(&out, "width_double",
              json_number(std::int64_t{simd::kWidth<double>}), &f);
    append_kv(&out, "dslash_variant_f",
              quoted(dslash_variant_name(d.dslash_variant_f)), &f);
    append_kv(&out, "dslash_variant_d",
              quoted(dslash_variant_name(d.dslash_variant_d)), &f);
    append_kv(&out, "dslash_format_f",
              quoted(dslash_format_name(d.dslash_format_f)), &f);
    append_kv(&out, "dslash_format_d",
              quoted(dslash_format_name(d.dslash_format_d)), &f);
    append_kv(&out, "dslash_gbytes_f", json_number(d.dslash_gbytes_f), &f);
    append_kv(&out, "dslash_gbytes_d", json_number(d.dslash_gbytes_d), &f);
  }
  out += '}';

  // derived sustained-performance block (paper S VI-VII, measured)
  out += ",\"derived\":{";
  {
    bool f = true;
    append_kv(&out, "solver_seconds", json_number(d.solver_seconds), &f);
    append_kv(&out, "solver_flops", json_number(d.solver_flops), &f);
    append_kv(&out, "solver_bytes", json_number(d.solver_bytes), &f);
    append_kv(&out, "sustained_gflops", json_number(d.sustained_gflops),
              &f);
    append_kv(&out, "arithmetic_intensity",
              json_number(d.arithmetic_intensity), &f);
    append_kv(&out, "autotune_hit_rate", json_number(d.autotune_hit_rate),
              &f);
    append_kv(&out, "jm_busy_seconds", json_number(d.jm_busy_s), &f);
    append_kv(&out, "jm_idle_seconds", json_number(d.jm_idle_s), &f);
    append_kv(&out, "jm_efficiency", json_number(d.jm_efficiency), &f);
    append_kv(&out, "jm_source", quoted(d.jm_source), &f);
    append_kv(&out, "application_gflops",
              json_number(d.application_gflops), &f);
    append_kv(&out, "solve_service_completed", json_number(d.svc_completed),
              &f);
    append_kv(&out, "solve_service_batches", json_number(d.svc_batches), &f);
    append_kv(&out, "solve_service_queue_depth",
              json_number(d.svc_queue_depth), &f);
    append_kv(&out, "solve_service_batch_mean",
              json_number(d.svc_batch_mean), &f);
    append_kv(&out, "solve_service_throughput",
              json_number(d.svc_throughput), &f);
  }
  out += "}}";
  return out;
}

std::string report_summary() {
  Registry& reg = Registry::global();
  const Derived d = derive();
  const TraceSnapshot trace = trace_snapshot();
  char buf[256];
  std::string out;
  out += "femtoscope run report\n";
  out += "  sustained performance (measured)\n";
  std::snprintf(buf, sizeof(buf),
                "    solver time           %12.3f s\n"
                "    solver flops          %14" PRId64 "\n"
                "    solver bytes          %14" PRId64 "\n"
                "    sustained             %12s GFLOP/s\n"
                "    arithmetic intensity  %12s flop/byte\n",
                d.solver_seconds, d.solver_flops, d.solver_bytes,
                ratio_str(d.sustained_gflops, "%.3f").c_str(),
                ratio_str(d.arithmetic_intensity, "%.3f").c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  autotune: %" PRId64 " hits / %" PRId64
                " misses (hit rate %s)\n",
                d.autotune_hits, d.autotune_misses,
                ratio_str(d.autotune_hit_rate * 100.0, "%.1f%%").c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  simd [%s]: float x%d, double x%d; dslash "
                "f=%s/%s (%.2f GB/s), d=%s/%s (%.2f GB/s)\n",
                simd::kIsaName, simd::kWidth<float>, simd::kWidth<double>,
                dslash_variant_name(d.dslash_variant_f),
                dslash_format_name(d.dslash_format_f), d.dslash_gbytes_f,
                dslash_variant_name(d.dslash_variant_d),
                dslash_format_name(d.dslash_format_d), d.dslash_gbytes_d);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  job manager [%s]: busy %.3f s, idle %.3f s, "
                "efficiency %s\n",
                d.jm_source, d.jm_busy_s, d.jm_idle_s,
                ratio_str(d.jm_efficiency * 100.0, "%.1f%%").c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  application-level sustained: %s GFLOP/s\n",
                ratio_str(d.application_gflops, "%.3f").c_str());
  out += buf;
  if (d.svc_completed > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  solve service: %" PRId64 " solves in %" PRId64
                  " batches (mean batch %s), queue depth %.0f, "
                  "%s solves/s\n",
                  d.svc_completed, d.svc_batches,
                  ratio_str(d.svc_batch_mean, "%.2f").c_str(),
                  d.svc_queue_depth,
                  ratio_str(d.svc_throughput, "%.3f").c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  solves: %lld recorded (%lld retained)\n",
                static_cast<long long>(reg.total_solves()),
                static_cast<long long>(reg.solves().size()));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  trace: %s, %zu spans across %d threads (%llu dropped)\n",
      trace_enabled() ? "enabled" : "disabled", trace.events.size(),
      trace.threads, static_cast<unsigned long long>(trace.dropped));
  out += buf;
  return out;
}

bool report_validate(const std::string& text, std::string* err) {
  if (!json_validate(text, err)) return false;
  const std::string marker =
      std::string("\"schema\":\"") + kReportSchema + "\"";
  if (text.find(marker) == std::string::npos) {
    if (err != nullptr)
      *err = std::string("report schema marker ") + kReportSchema +
             " missing (wrong schema version or not a femtoscope report)";
    return false;
  }
  return true;
}

bool write_report(const std::string& path, const std::string& title) {
  const std::string body = report_json(title);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = (n == body.size()) && (std::fclose(f) == 0);
  if (n != body.size()) std::fclose(f);
  return ok;
}

}  // namespace femto::obs
