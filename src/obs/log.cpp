#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "core/check.hpp"

namespace femto::obs {

namespace {

std::int64_t clock_base_ns() {
  FEMTO_NONDET_OK(
      "process timebase for log/trace timestamps: the value only offsets "
      "telemetry output and never reaches numerics or control flow");
  // First call pins the process timebase; steady_clock so spans and log
  // timestamps never go backwards.
  static const std::int64_t base =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return base;
}

LogLevel level_from_env() {
  const char* e = std::getenv("FEMTO_LOG");
  if (e == nullptr) return LogLevel::Warn;
  if (std::strcmp(e, "trace") == 0) return LogLevel::Trace;
  if (std::strcmp(e, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(e, "info") == 0) return LogLevel::Info;
  if (std::strcmp(e, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(e, "error") == 0) return LogLevel::Error;
  if (std::strcmp(e, "off") == 0) return LogLevel::Off;
  return LogLevel::Warn;
}

std::atomic<int>& level_state() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

std::atomic<int>& rank_state() {
  static std::atomic<int> rank{-1};
  return rank;
}

std::atomic<LogSink>& sink_state() {
  static std::atomic<LogSink> sink{nullptr};
  return sink;
}

std::mutex& stderr_mutex() {
  static std::mutex mu;
  return mu;
}

void stderr_sink(LogLevel /*level*/, const char* /*category*/,
                 const std::string& line) {
  // One lock per line keeps concurrent ranks/threads from interleaving
  // mid-line; stderr itself is unbuffered enough for crash visibility.
  std::lock_guard<std::mutex> lk(stderr_mutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace

std::int64_t uptime_ns() {
  FEMTO_NONDET_OK(
      "monotone span clock for FEMTO_LOG_* timestamps and trace spans: "
      "consumed only by femtoscope output, never by numerics");
  // Pin the base BEFORE reading the clock: on the very first call the
  // other order would produce a (slightly) negative uptime, which
  // TraceScope interprets as "tracing was disabled at construction".
  const std::int64_t base = clock_base_ns();
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return now - base;
}

void set_log_level(LogLevel level) {
  level_state().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(
      level_state().load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         level_state().load(std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void set_log_rank(int rank) {
  rank_state().store(rank, std::memory_order_relaxed);
}

int log_rank() { return rank_state().load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  sink_state().store(sink, std::memory_order_relaxed);
}

void log_line(LogLevel level, const char* category,
              const std::string& message) {
  if (!log_enabled(level)) return;
  const double elapsed_s = static_cast<double>(uptime_ns()) * 1e-9;
  char prefix[96];
  const int rank = log_rank();
  if (rank >= 0) {
    std::snprintf(prefix, sizeof(prefix), "[%10.6f][%-5s][rank %d][%s] ",
                  elapsed_s, log_level_name(level), rank, category);
  } else {
    std::snprintf(prefix, sizeof(prefix), "[%10.6f][%-5s][%s] ", elapsed_s,
                  log_level_name(level), category);
  }
  std::string line = prefix;
  line += message;
  LogSink sink = sink_state().load(std::memory_order_relaxed);
  if (sink == nullptr) sink = &stderr_sink;
  sink(level, category, line);
}

}  // namespace femto::obs
