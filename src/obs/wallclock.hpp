#pragma once
// The ONE audited wall-clock chokepoint for telemetry timing.
//
// The bitwise-reproducibility contract (DESIGN.md §13) says a replayed run
// must produce identical numbers, so clock reads may never sit on a path
// that feeds numerics.  femtolint's nondet-in-kernel pass enforces that
// statically: any raw std::chrono::*::now() reachable from a
// kernel-launching call chain is a finding.  Timing that kernels
// legitimately need — solver wall time, autotune candidate timing, service
// busy-seconds — therefore flows through wall_seconds()/Stopwatch, whose
// single FEMTO_NONDET_OK blessing is the whole tree's audit trail for
// "values are observational only".
//
// Stopwatch is duration-only by design: it never exposes the underlying
// time_point, so a caller cannot accidentally turn telemetry into a key,
// a seed, or an iteration bound without writing a fresh now() (which the
// linter then catches).

#include <chrono>

#include "core/check.hpp"

namespace femto::obs {

/// Monotonic wall-clock seconds (steady_clock; arbitrary epoch).  Only
/// meaningful as a difference between two reads.
inline double wall_seconds() {
  FEMTO_NONDET_OK(
      "telemetry-only wall clock: differences feed SolveResult.seconds, "
      "autotune candidate timing, and femtoscope metrics -- never numerics, "
      "keys, or control flow of a kernel");
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Elapsed-seconds timer over wall_seconds().  Starts at construction.
class Stopwatch {
 public:
  /// Seconds since construction or the last restart().
  double seconds() const { return wall_seconds() - t0_; }
  void restart() { t0_ = wall_seconds(); }

 private:
  double t0_ = wall_seconds();
};

}  // namespace femto::obs
