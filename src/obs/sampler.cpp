#include "obs/sampler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/check.hpp"
#include "obs/trace.hpp"

namespace femto::obs {

namespace {

// One thread's live TraceScope stack.  The owner writes the frame BEFORE
// publishing the new depth (release); the sampler acquires depth and then
// reads frames.  A frame being rewritten concurrently can only yield a
// stale category/name pointer -- both are string literals, so every
// readable value is a valid NUL-terminated string, never garbage memory.
struct SpanStack {
  static constexpr int kMaxDepth = 64;
  detail::SpanFrame frames[kMaxDepth];
  std::atomic<int> depth{0};
  std::atomic<int> rank{-1};
  std::uint32_t tid = 0;
};

// Registry of every thread's span stack, mirroring trace.cpp's ring
// registry: shared_ptrs keep stacks alive after their threads exit so a
// late sweep never reads freed memory.
class StackRegistry {
 public:
  static StackRegistry& instance() {
    static StackRegistry reg;
    return reg;
  }

  std::shared_ptr<SpanStack> register_thread(int rank) {
    std::lock_guard<std::mutex> lk(mu_);
    auto stack = std::make_shared<SpanStack>();
    stack->tid = next_tid_++;
    stack->rank.store(rank, std::memory_order_relaxed);
    stacks_.push_back(stack);
    return stack;
  }

  std::vector<std::shared_ptr<SpanStack>> stacks() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stacks_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<SpanStack>> stacks_ FEMTO_GUARDED_BY(mu_);
  std::uint32_t next_tid_ FEMTO_GUARDED_BY(mu_) = 0;
};

SpanStack* thread_stack() {
  thread_local std::shared_ptr<SpanStack> stack =
      StackRegistry::instance().register_thread(trace_rank());
  return stack.get();
}

// The sampler proper: a timer thread sweeping every registered stack at a
// fixed period, folding each observation into the collapsed-stack map.
class Sampler {
 public:
  static Sampler& instance() {
    static Sampler s;
    return s;
  }

  void start(const SamplerOptions& opt) {
    // Claim under the lock, spawn outside it: the timer thread's first
    // timed wait takes mu_, so constructing it lock-free keeps the lock
    // graph acyclic (and femtolint's blocking-call-under-lock happy).
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (running_) return;
      period_us_ = opt.period_us > 0 ? opt.period_us : 1009;
      stop_ = false;
      running_ = true;
    }
    detail::span_stack_retain();
    thread_ = std::thread([this] { loop(); });
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!running_) return;
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_ = false;
    }
    detail::span_stack_release();
  }

  bool running() const {
    std::lock_guard<std::mutex> lk(mu_);
    return running_;
  }

  SamplerSnapshot snapshot() const {
    std::lock_guard<std::mutex> lk(data_mu_);
    SamplerSnapshot snap;
    snap.stacks = stacks_;
    snap.samples = samples_;
    snap.idle = idle_;
    snap.truncated = truncated_;
    snap.threads =
        static_cast<int>(StackRegistry::instance().stacks().size());
    return snap;
  }

  void clear() {
    std::lock_guard<std::mutex> lk(data_mu_);
    stacks_.clear();
    samples_ = idle_ = truncated_ = 0;
  }

 private:
  void loop() {
    FEMTO_BLOCKING_OK(
        "sampler timer thread: the timed wait holds only the sampler's own "
        "control mutex, which the wait releases; no caller's wait chain can "
        "hold it while blocking on this thread");
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        if (cv_.wait_for(lk, std::chrono::microseconds(period_us_),
                         [this] { return stop_; }))
          return;
      }
      sweep();
    }
  }

  void sweep() {
    const auto stacks = StackRegistry::instance().stacks();
    std::lock_guard<std::mutex> lk(data_mu_);
    for (const auto& s : stacks) {
      const int raw_depth = s->depth.load(std::memory_order_acquire);
      if (raw_depth <= 0) {
        ++idle_;
        continue;
      }
      const int d = std::min(raw_depth, SpanStack::kMaxDepth);
      if (raw_depth > SpanStack::kMaxDepth) ++truncated_;
      std::string key;
      key.reserve(static_cast<std::size_t>(d) * 24 + 12);
      const int rank = s->rank.load(std::memory_order_relaxed);
      char root[32];
      if (rank >= 0)
        std::snprintf(root, sizeof(root), "rank%d", rank);
      else
        std::snprintf(root, sizeof(root), "thread%u", s->tid);
      key += root;
      for (int i = 0; i < d; ++i) {
        const detail::SpanFrame f = s->frames[i];
        key += ';';
        key += f.category != nullptr ? f.category : "?";
        key += ':';
        key += f.name != nullptr ? f.name : "?";
      }
      ++stacks_[key];
      ++samples_;
    }
  }

  mutable std::mutex mu_;  ///< control plane: start/stop + timed wait
  std::condition_variable cv_;
  bool stop_ FEMTO_GUARDED_BY(mu_) = false;
  bool running_ FEMTO_GUARDED_BY(mu_) = false;
  std::int64_t period_us_ FEMTO_GUARDED_BY(mu_) = 1009;
  std::thread thread_;

  mutable std::mutex data_mu_;  ///< sample accumulation + snapshots
  std::map<std::string, std::int64_t> stacks_ FEMTO_GUARDED_BY(data_mu_);
  std::int64_t samples_ FEMTO_GUARDED_BY(data_mu_) = 0;
  std::int64_t idle_ FEMTO_GUARDED_BY(data_mu_) = 0;
  std::int64_t truncated_ FEMTO_GUARDED_BY(data_mu_) = 0;
};

}  // namespace

namespace detail {

int span_stack_push(const char* category, const char* name) {
  SpanStack* s = thread_stack();
  const int d = s->depth.load(std::memory_order_relaxed);
  if (d < SpanStack::kMaxDepth) {
    s->frames[d].category = category;
    s->frames[d].name = name;
  }
  s->depth.store(d + 1, std::memory_order_release);
  return d;
}

void span_stack_pop(int prev_depth) {
  thread_stack()->depth.store(prev_depth, std::memory_order_release);
}

void span_stack_set_rank(int rank) {
  thread_stack()->rank.store(rank, std::memory_order_relaxed);
}

int current_span_stack(SpanFrame* out, int max_frames) {
  SpanStack* s = thread_stack();
  const int d = std::min({s->depth.load(std::memory_order_relaxed),
                          SpanStack::kMaxDepth, max_frames});
  for (int i = 0; i < d; ++i) out[i] = s->frames[i];
  return d > 0 ? d : 0;
}

}  // namespace detail

void sampler_start(const SamplerOptions& opt) {
  Sampler::instance().start(opt);
}

void sampler_stop() { Sampler::instance().stop(); }

bool sampler_running() { return Sampler::instance().running(); }

SamplerSnapshot sampler_snapshot() { return Sampler::instance().snapshot(); }

void sampler_clear() { Sampler::instance().clear(); }

std::string collapsed_stacks() {
  const SamplerSnapshot snap = sampler_snapshot();
  std::string out;
  char buf[32];
  for (const auto& [stack, count] : snap.stacks) {
    out += stack;
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(count));
    out += buf;
  }
  return out;
}

bool write_collapsed_stacks(const std::string& path) {
  const std::string body = collapsed_stacks();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = (n == body.size()) && (std::fclose(f) == 0);
  if (n != body.size()) std::fclose(f);
  return ok;
}

}  // namespace femto::obs
