#pragma once
// Femtoscope crash flight recorder (DESIGN.md §15).
//
// blackbox_install(path) arms a FEMTO_CHECK fail hook plus fatal-signal
// handlers (SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT).  When the process is
// about to die, the recorder dumps one `femtoscope-blackbox-v1` JSON
// document to the configured path: the failing check, the failing
// thread's live TraceScope stack, the last-N recorded spans across all
// threads, a metrics snapshot, and every registered subsystem provider's
// state (SolveService registers its in-flight queue) -- then lets the
// abort proceed.  Installing also retains span-stack upkeep (the same
// kStackBit the sampler uses), so the failing thread's stack is known
// even when the sampler never ran.
//
// The dump path is best-effort by design: a fatal-signal context is not
// async-signal-safe and a check can fire with arbitrary locks held, so
// providers must be written crash-tolerant (try_lock, degrade to a
// "locked" marker) and the recorder itself touches no femtoscope lock it
// cannot skip.  A lost dump loses telemetry; the abort and the stderr
// diagnostic always survive.

#include <functional>
#include <string>

namespace femto::obs {

// Bumped whenever a field is renamed/removed; additions are compatible.
inline constexpr const char* kBlackboxSchema = "femtoscope-blackbox-v1";

// Arm the recorder, writing dumps to @p path.  Idempotent; re-installing
// with a new path just redirects the dump.
void blackbox_install(const std::string& path);

// Disarm: restores the default fail behaviour and signal handlers.
void blackbox_uninstall();

bool blackbox_installed();
std::string blackbox_path();

// Subsystem state providers: fn() must return one JSON VALUE (object,
// array, or scalar) describing the subsystem's in-flight state, and must
// be crash-tolerant (no unconditional lock acquisition).  Returns a
// handle for blackbox_unregister_provider.
int blackbox_register_provider(const std::string& key,
                               std::function<std::string()> fn);
void blackbox_unregister_provider(int handle);

// The dump body (exposed so tests can check the schema without dying).
std::string blackbox_json(const char* reason, const char* file, int line,
                          const char* expr, const char* msg);

// Write blackbox_json(reason, ...) to the installed path now; false when
// not installed or on I/O failure.  Used by the hook/handlers and by
// operators wanting a mid-run state dump.
bool blackbox_write_now(const char* reason);

}  // namespace femto::obs
