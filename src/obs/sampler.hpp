#pragma once
// Femtoscope span-attributed sampling profiler (DESIGN.md §15).
//
// A timer thread periodically reads every registered thread's live
// TraceScope stack and attributes the sample to that stack -- the span
// stack IS the attribution, so no frame pointers, unwinders, or debug
// info are involved, and a "frame" is the same category:name pair the
// tracer records.  The output is the collapsed-stack format flamegraph
// tooling consumes directly: one `frame;frame;frame count` line per
// distinct stack.
//
// Cost contract: the stack is maintained by TraceScope only while the
// kStackBit of the fused enable word is set (sampler running or flight
// recorder armed), so a disabled build path still pays exactly one
// relaxed load per scope.  While armed, upkeep is two plain stores per
// scope; sampling itself never blocks the sampled threads (the reader
// tolerates torn frames: category/name are string literals, so a stale
// pointer is still a valid string).
//
// The sampler does not read any clock: it sleeps a fixed period between
// sweeps and counts samples, which is all a flamegraph needs.

#include <cstdint>
#include <map>
#include <string>

namespace femto::obs {

struct SamplerOptions {
  // Sweep period in microseconds (default ~1 kHz; prime-ish to avoid
  // phase-locking with periodic workloads).
  std::int64_t period_us = 1009;
};

// Start the timer thread (idempotent: a second start is a no-op while
// running).  Arms span-stack upkeep for every TraceScope.
void sampler_start(const SamplerOptions& opt = {});

// Stop and join the timer thread; accumulated samples are kept until
// sampler_clear().
void sampler_stop();

bool sampler_running();

struct SamplerSnapshot {
  // Collapsed stack -> sample count, e.g. "rank0;solver:cg;blas:axpy" -> 42.
  std::map<std::string, std::int64_t> stacks;
  std::int64_t samples = 0;    ///< attributed samples (sum of stacks)
  std::int64_t idle = 0;       ///< sweeps of a thread with no live span
  std::int64_t truncated = 0;  ///< samples whose stack overflowed kMaxDepth
  int threads = 0;             ///< span stacks registered
};

SamplerSnapshot sampler_snapshot();
void sampler_clear();

// One `stack count\n` line per distinct stack, sorted (deterministic for
// a fixed sample set) -- feed straight to flamegraph.pl / speedscope.
std::string collapsed_stacks();
bool write_collapsed_stacks(const std::string& path);

namespace detail {
struct SpanFrame {
  const char* category = nullptr;
  const char* name = nullptr;
};
// Best-effort copy of the CALLING thread's live span stack (newest last);
// used by the crash flight recorder to dump the failing thread's stack.
// Returns the number of frames written (<= max_frames).
int current_span_stack(SpanFrame* out, int max_frames);
}  // namespace detail

}  // namespace femto::obs
