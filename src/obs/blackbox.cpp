#include "obs/blackbox.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <utility>
#include <vector>

#include "core/check.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace femto::obs {

namespace {

constexpr std::size_t kRecentSpans = 128;

struct Provider {
  int handle = 0;
  std::string key;
  std::function<std::string()> fn;
};

constexpr int kSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

// Dump destination, readable LOCK-FREE from the crash path (a mutex-read
// here could deadlock the abort of a thread that died holding it).  The
// string is leaked on re-install; installs are rare control-plane events.
std::atomic<const std::string*> g_path{nullptr};

bool write_dump(const char* reason, const char* file, int line,
                const char* expr, const char* msg) {
  const std::string* path = g_path.load(std::memory_order_acquire);
  if (path == nullptr) return false;
  const std::string body = blackbox_json(reason, file, line, expr, msg);
  std::FILE* f = std::fopen(path->c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = (n == body.size()) && (std::fclose(f) == 0);
  if (n != body.size()) std::fclose(f);
  return ok;
}

// Control-plane state: install/uninstall/register run under mu_; the dump
// path itself only try_locks it, because a crash can strike while any
// thread holds it.
class Recorder {
 public:
  static Recorder& instance() {
    static Recorder r;
    return r;
  }

  void install(const std::string& path);
  void uninstall();

  bool installed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return installed_;
  }

  std::string path() const {
    const std::string* p = g_path.load(std::memory_order_acquire);
    return p != nullptr ? *p : std::string();
  }

  int register_provider(const std::string& key,
                        std::function<std::string()> fn) {
    std::lock_guard<std::mutex> lk(mu_);
    const int handle = next_handle_++;
    providers_.push_back(Provider{handle, key, std::move(fn)});
    return handle;
  }

  void unregister_provider(int handle) {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = providers_.begin(); it != providers_.end(); ++it) {
      if (it->handle == handle) {
        providers_.erase(it);
        return;
      }
    }
  }

  // Append the providers object to @p out; crash-tolerant (try_lock).
  // The provider list is COPIED out under the try_lock and the callbacks
  // run lock-free: a provider that itself takes locks (SolveService's
  // queue_state_json does) must never nest inside the recorder's mutex.
  void append_providers(std::string* out) {
    std::vector<Provider> providers;
    bool have = false;
    {
      std::unique_lock<std::mutex> lk(mu_, std::try_to_lock);
      if (lk.owns_lock()) {
        providers = providers_;
        have = true;
      }
    }
    *out += "\"providers\":{";
    if (!have) {
      *out += "\"_unavailable\":true}";
      return;
    }
    bool first = true;
    for (const Provider& p : providers) {
      if (!first) *out += ',';
      first = false;
      *out += '"';
      *out += json_escape(p.key);
      *out += "\":";
      std::string body;
      try {
        body = p.fn();
      } catch (...) {
        body.clear();
      }
      // A provider returning malformed JSON would poison the whole dump;
      // quarantine anything that does not validate.
      if (body.empty() || !json_validate(body))
        *out += "{\"_invalid\":true}";
      else
        *out += body;
    }
    *out += '}';
  }

 private:
  mutable std::mutex mu_;
  bool installed_ FEMTO_GUARDED_BY(mu_) = false;
  std::vector<Provider> providers_ FEMTO_GUARDED_BY(mu_);
  int next_handle_ FEMTO_GUARDED_BY(mu_) = 1;
  using SignalHandler = void (*)(int);
  SignalHandler previous_[std::size(kSignals)] FEMTO_GUARDED_BY(mu_) = {};
};

// One dump per process: the first failing thread wins; a crash inside the
// dump (or a second thread failing concurrently) must not recurse.
std::atomic_flag g_dumping = ATOMIC_FLAG_INIT;

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    default: return "signal";
  }
}

void check_fail_hook(const char* file, int line, const char* expr,
                     const char* msg) {
  if (g_dumping.test_and_set()) return;
  write_dump("check_failure", file, line, expr, msg);
}

void fatal_signal_handler(int sig) {
  // NOT async-signal-safe (allocation, locks) -- deliberately best-effort:
  // the alternative is no post-mortem at all, and the re-raise below runs
  // whatever happens to the dump.
  if (!g_dumping.test_and_set()) write_dump(signal_name(sig), "", 0, "", "");
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void Recorder::install(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  // femtolint: allow(no-naked-new): deliberately leaked — the crash path
  // reads g_path lock-free and a freed-on-reinstall string could be read
  // mid-teardown; installs are rare control-plane events.
  g_path.store(new std::string(path), std::memory_order_release);
  if (installed_) return;
  installed_ = true;
  detail::span_stack_retain();
  check::set_fail_hook(&check_fail_hook);
  for (std::size_t i = 0; i < std::size(kSignals); ++i)
    previous_[i] = std::signal(kSignals[i], &fatal_signal_handler);
}

void Recorder::uninstall() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!installed_) return;
  installed_ = false;
  g_path.store(nullptr, std::memory_order_release);
  check::set_fail_hook(nullptr);
  for (std::size_t i = 0; i < std::size(kSignals); ++i)
    std::signal(kSignals[i],
                previous_[i] != SIG_ERR ? previous_[i] : SIG_DFL);
  detail::span_stack_release();
}

}  // namespace

std::string blackbox_json(const char* reason, const char* file, int line,
                          const char* expr, const char* msg) {
  std::string out;
  out.reserve(1 << 14);
  out += "{\"schema\":\"";
  out += kBlackboxSchema;
  out += "\",\"reason\":\"";
  out += json_escape(reason != nullptr ? reason : "?");
  out += "\",\"uptime_ns\":";
  out += json_number(uptime_ns());

  // The failing check (empty strings for signal dumps).
  out += ",\"check\":{\"file\":\"";
  out += json_escape(file != nullptr ? file : "");
  out += "\",\"line\":";
  out += json_number(static_cast<std::int64_t>(line));
  out += ",\"expr\":\"";
  out += json_escape(expr != nullptr ? expr : "");
  out += "\",\"message\":\"";
  out += json_escape(msg != nullptr ? msg : "");
  out += "\"}";

  // The failing thread: rank + live TraceScope stack, outermost first.
  out += ",\"thread\":{\"rank\":";
  out += json_number(static_cast<std::int64_t>(trace_rank()));
  out += ",\"span_stack\":[";
  detail::SpanFrame frames[64];
  const int depth = detail::current_span_stack(frames, 64);
  for (int i = 0; i < depth; ++i) {
    if (i > 0) out += ',';
    out += "{\"category\":\"";
    out += json_escape(frames[i].category != nullptr ? frames[i].category
                                                     : "?");
    out += "\",\"name\":\"";
    out += json_escape(frames[i].name != nullptr ? frames[i].name : "?");
    out += "\"}";
  }
  out += "]}";

  // Last-N completed spans across all threads (the "what was everyone
  // doing" window).
  const TraceSnapshot snap = trace_snapshot();
  const std::size_t n = snap.events.size();
  const std::size_t from = n > kRecentSpans ? n - kRecentSpans : 0;
  out += ",\"recent_spans\":[";
  for (std::size_t i = from; i < n; ++i) {
    const TraceEvent& e = snap.events[i];
    if (i > from) out += ',';
    out += "{\"category\":\"";
    out += json_escape(e.category != nullptr ? e.category : "?");
    out += "\",\"name\":\"";
    out += json_escape(e.name != nullptr ? e.name : "?");
    out += "\",\"t0_ns\":";
    out += json_number(e.t0_ns);
    out += ",\"dur_ns\":";
    out += json_number(e.dur_ns);
    out += ",\"tid\":";
    out += json_number(static_cast<std::int64_t>(e.tid));
    out += ",\"rank\":";
    out += json_number(static_cast<std::int64_t>(e.rank));
    if (e.flow_id != 0) {
      out += ",\"flow\":";
      out += json_number(static_cast<std::int64_t>(e.flow_id));
      out += ",\"flow_dir\":\"";
      out += e.flow == FlowDir::Out ? "out" : "in";
      out += '"';
    }
    out += '}';
  }
  out += "],\"spans_dropped\":";
  out += json_number(static_cast<std::int64_t>(snap.dropped));

  // Metrics (crash-tolerant snapshot).
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  const bool metrics_ok =
      Registry::global().try_crash_snapshot(&counters, &gauges);
  out += ",\"metrics_complete\":";
  out += metrics_ok ? "true" : "false";
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    out += json_number(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    out += json_number(v);
  }
  out += "},";

  Recorder::instance().append_providers(&out);
  out += '}';
  return out;
}

bool blackbox_write_now(const char* reason) {
  return write_dump(reason, "", 0, "", "");
}

void blackbox_install(const std::string& path) {
  Recorder::instance().install(path);
}

void blackbox_uninstall() { Recorder::instance().uninstall(); }

bool blackbox_installed() { return Recorder::instance().installed(); }

std::string blackbox_path() { return Recorder::instance().path(); }

int blackbox_register_provider(const std::string& key,
                               std::function<std::string()> fn) {
  return Recorder::instance().register_provider(key, std::move(fn));
}

void blackbox_unregister_provider(int handle) {
  Recorder::instance().unregister_provider(handle);
}

}  // namespace femto::obs
