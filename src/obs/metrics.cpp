#include "obs/metrics.hpp"

#include <algorithm>
#include <utility>

namespace femto::obs {

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::record_solve(SolveRecord rec) {
  std::lock_guard<std::mutex> lk(mu_);
  ++total_solves_;
  if (solves_.size() >= kMaxSolveRecords)
    solves_.erase(solves_.begin());
  solves_.push_back(std::move(rec));
}

std::vector<std::pair<std::string, std::int64_t>> Registry::counters()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->get());
  return out;  // std::map iteration is already name-sorted
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->get());
  return out;
}

std::vector<HistogramSnapshot> Registry::histograms() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = h->count();
    snap.sum = h->sum();
    for (int b = 0; b < Histogram::kBuckets; ++b)
      snap.buckets[static_cast<std::size_t>(b)] = h->bucket(b);
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<SolveRecord> Registry::solves() const {
  std::lock_guard<std::mutex> lk(mu_);
  return solves_;
}

std::int64_t Registry::total_solves() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_solves_;
}

bool Registry::try_crash_snapshot(
    std::vector<std::pair<std::string, std::int64_t>>* counters,
    std::vector<std::pair<std::string, double>>* gauges) const {
  std::unique_lock<std::mutex> lk(mu_, std::try_to_lock);
  if (!lk.owns_lock()) return false;
  counters->reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    counters->emplace_back(name, c->get());
  gauges->reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) gauges->emplace_back(name, g->get());
  return true;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
  solves_.clear();
  total_solves_ = 0;
}

}  // namespace femto::obs
