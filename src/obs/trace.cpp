#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>

#include "core/check.hpp"
#include "obs/json.hpp"

namespace femto::obs {

TraceRing::TraceRing(std::size_t capacity, std::uint32_t tid)
    : slots_(capacity == 0 ? 1 : capacity), tid_(tid) {}

void TraceRing::push(const char* category, const char* name,
                     std::int64_t t0_ns, std::int64_t dur_ns,
                     std::int32_t rank, std::uint64_t flow_id,
                     FlowDir flow) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  TraceEvent& slot = slots_[static_cast<std::size_t>(h % slots_.size())];
  slot.category = category;
  slot.name = name;
  slot.t0_ns = t0_ns;
  slot.dur_ns = dur_ns;
  slot.tid = tid_;
  slot.rank = rank;
  slot.flow_id = flow_id;
  slot.flow = flow;
  // Release so a reader that acquires head_ sees the slot contents.
  head_.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::events() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t n = h < cap ? h : cap;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i)
    out.push_back(slots_[static_cast<std::size_t>((h - n + i) % cap)]);
  return out;
}

namespace detail {
std::atomic<int> g_span_mode{-1};

namespace {
// kStackBit users (sampler running, flight recorder armed), counted so
// either can retain the span stack independently.  Guarded by the
// compare-exchange discipline below rather than a mutex: retain/release
// are rare control-plane calls.
std::atomic<int> g_stack_users{0};

void apply_bit(int bit, bool on) {
  int cur = g_span_mode.load(std::memory_order_relaxed);
  for (;;) {
    // Resolve the env first so the -1 sentinel never survives a toggle.
    if (cur < 0) {
      span_mode_slow();
      cur = g_span_mode.load(std::memory_order_relaxed);
      continue;
    }
    const int next = on ? (cur | bit) : (cur & ~bit);
    if (g_span_mode.compare_exchange_weak(cur, next,
                                          std::memory_order_relaxed))
      return;
  }
}
}  // namespace

int span_mode_slow() {
  FEMTO_NONDET_OK(
      "one-shot FEMTO_TRACE toggle: decides only whether trace spans are "
      "recorded; kernels compute identical results either way");
  int expected = -1;
  const char* e = std::getenv("FEMTO_TRACE");
  const int from_env =
      (e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0)
          ? kTraceBit
          : 0;
  // First thread to get here settles the state; losers read the winner's.
  g_span_mode.compare_exchange_strong(expected, from_env,
                                      std::memory_order_relaxed);
  return g_span_mode.load(std::memory_order_relaxed);
}

void span_stack_retain() {
  if (g_stack_users.fetch_add(1, std::memory_order_relaxed) == 0)
    apply_bit(kStackBit, true);
}

void span_stack_release() {
  if (g_stack_users.fetch_sub(1, std::memory_order_relaxed) == 1)
    apply_bit(kStackBit, false);
}
}  // namespace detail

namespace {

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

// Owns every thread's ring (shared_ptr so rings outlive their threads and
// exports see spans from joined workers).
class TraceRegistry {
 public:
  static TraceRegistry& instance() {
    static TraceRegistry reg;
    return reg;
  }

  std::shared_ptr<TraceRing> register_thread() {
    std::lock_guard<std::mutex> lk(mu_);
    auto ring = std::make_shared<TraceRing>(
        capacity_.load(std::memory_order_relaxed), next_tid_);
    ++next_tid_;
    rings_.push_back(ring);
    return ring;
  }

  std::vector<std::shared_ptr<TraceRing>> rings() const {
    std::lock_guard<std::mutex> lk(mu_);
    return rings_;
  }

  void set_capacity(std::size_t spans) {
    capacity_.store(spans == 0 ? 1 : spans, std::memory_order_relaxed);
  }

  std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<TraceRing>> rings_ FEMTO_GUARDED_BY(mu_);
  std::uint32_t next_tid_ FEMTO_GUARDED_BY(mu_) = 0;
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
};

TraceRing* thread_ring() {
  // The shared_ptr keeps the ring alive in the registry after thread exit;
  // the raw cached pointer keeps the hot path to one thread_local read.
  thread_local std::shared_ptr<TraceRing> ring =
      TraceRegistry::instance().register_thread();
  return ring.get();
}

// Per-thread causal-tracing context: the rank stamped on every span this
// thread records, and the sequence half of its flow ids.
struct TraceContext {
  int rank = -1;
  std::uint64_t next_seq = 0;
};

TraceContext& thread_context() {
  thread_local TraceContext ctx;
  return ctx;
}

}  // namespace

void set_trace_enabled(bool on) {
  detail::apply_bit(detail::kTraceBit, on);
}

void set_trace_rank(int rank) {
  thread_context().rank = rank;
  detail::span_stack_set_rank(rank);
}

int trace_rank() { return thread_context().rank; }

std::uint64_t next_flow_id() {
  TraceContext& ctx = thread_context();
  const std::uint64_t tid = thread_ring()->tid();
  return ((tid + 1) << 32) | (++ctx.next_seq & 0xffffffffu);
}

void set_trace_capacity(std::size_t spans) {
  TraceRegistry::instance().set_capacity(spans);
}

std::size_t trace_capacity() {
  return TraceRegistry::instance().capacity();
}

void trace_push(const char* category, const char* name, std::int64_t t0_ns,
                std::int64_t dur_ns) {
  thread_ring()->push(category, name, t0_ns, dur_ns,
                      thread_context().rank);
}

void trace_flow_out(const char* category, const char* name,
                    std::int64_t t0_ns, std::uint64_t flow_id) {
  thread_ring()->push(category, name, t0_ns, uptime_ns() - t0_ns,
                      thread_context().rank, flow_id, FlowDir::Out);
}

void trace_flow_in(const char* category, const char* name,
                   std::int64_t t0_ns, std::uint64_t flow_id) {
  thread_ring()->push(category, name, t0_ns, uptime_ns() - t0_ns,
                      thread_context().rank, flow_id, FlowDir::In);
}

TraceSnapshot trace_snapshot() {
  TraceSnapshot snap;
  const auto rings = TraceRegistry::instance().rings();
  snap.threads = static_cast<int>(rings.size());
  for (const auto& ring : rings) {
    snap.dropped += ring->dropped();
    auto evs = ring->events();
    snap.events.insert(snap.events.end(), evs.begin(), evs.end());
  }
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
                     return a.tid < b.tid;
                   });
  return snap;
}

void trace_clear() {
  for (const auto& ring : TraceRegistry::instance().rings()) ring->clear();
}

std::string chrome_trace_json(const ChromeTraceOptions& opt) {
  const TraceSnapshot snap = trace_snapshot();
  std::string out;
  out.reserve(snap.events.size() * 128 + 256);
  out += "{\"traceEvents\":[";
  char buf[192];
  bool first = true;

  // Name the per-rank process rows so the merged view reads as a rank
  // timeline, not anonymous pids.
  if (opt.merge_ranks) {
    std::set<int> ranks;
    for (const TraceEvent& e : snap.events)
      if (e.rank >= 0) ranks.insert(e.rank);
    for (int r : ranks) {
      if (!first) out += ',';
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                    "\"args\":{\"name\":\"rank %d\"}}",
                    r, r);
      out += buf;
    }
  }

  for (const TraceEvent& e : snap.events) {
    const int pid = (opt.merge_ranks && e.rank >= 0) ? e.rank : 0;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += json_escape(e.name != nullptr ? e.name : "?");
    out += "\",\"cat\":\"";
    out += json_escape(e.category != nullptr ? e.category : "?");
    // ts/dur are microseconds; %.3f keeps exact nanosecond resolution.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,"
                  "\"tid\":%u",
                  static_cast<double>(e.t0_ns) * 1e-3,
                  static_cast<double>(e.dur_ns) * 1e-3, pid, e.tid);
    out += buf;
    if (e.flow_id != 0) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"flow\":%llu}",
                    static_cast<unsigned long long>(e.flow_id));
      out += buf;
    }
    out += '}';
    if (opt.flow_events && e.flow_id != 0 && e.flow != FlowDir::None) {
      // The arrow leaves the producer span (s) at its end and lands on the
      // consumer's wait span (f) at the moment the wait resolved; both
      // timestamps sit inside their X span so viewers bind the arc to it.
      const char* ph = e.flow == FlowDir::Out ? "s" : "f";
      const char* bind = e.flow == FlowDir::Out ? "" : ",\"bp\":\"e\"";
      std::snprintf(buf, sizeof(buf),
                    ",{\"name\":\"flow\",\"cat\":\"%s\",\"ph\":\"%s\","
                    "\"id\":%llu,\"ts\":%.3f,\"pid\":%d,\"tid\":%u%s}",
                    e.category != nullptr ? e.category : "?", ph,
                    static_cast<unsigned long long>(e.flow_id),
                    static_cast<double>(e.t0_ns + e.dur_ns) * 1e-3, pid,
                    e.tid, bind);
      out += buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
                "\"dropped\":%llu,\"threads\":%d}}",
                static_cast<unsigned long long>(snap.dropped),
                snap.threads);
  out += buf;
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const ChromeTraceOptions& opt) {
  const std::string body = chrome_trace_json(opt);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = (n == body.size()) && (std::fclose(f) == 0);
  if (n != body.size()) std::fclose(f);
  return ok;
}

}  // namespace femto::obs
