#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "core/check.hpp"
#include "obs/json.hpp"

namespace femto::obs {

TraceRing::TraceRing(std::size_t capacity, std::uint32_t tid)
    : slots_(capacity == 0 ? 1 : capacity), tid_(tid) {}

void TraceRing::push(const char* category, const char* name,
                     std::int64_t t0_ns, std::int64_t dur_ns) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  TraceEvent& slot = slots_[static_cast<std::size_t>(h % slots_.size())];
  slot.category = category;
  slot.name = name;
  slot.t0_ns = t0_ns;
  slot.dur_ns = dur_ns;
  slot.tid = tid_;
  // Release so a reader that acquires head_ sees the slot contents.
  head_.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::events() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t n = h < cap ? h : cap;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i)
    out.push_back(slots_[static_cast<std::size_t>((h - n + i) % cap)]);
  return out;
}

namespace detail {
std::atomic<int> g_trace_state{-1};

bool trace_enabled_slow() {
  FEMTO_NONDET_OK(
      "one-shot FEMTO_TRACE toggle: decides only whether trace spans are "
      "recorded; kernels compute identical results either way");
  int expected = -1;
  const char* e = std::getenv("FEMTO_TRACE");
  const int from_env =
      (e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0) ? 1 : 0;
  // First thread to get here settles the state; losers read the winner's.
  g_trace_state.compare_exchange_strong(expected, from_env,
                                        std::memory_order_relaxed);
  return g_trace_state.load(std::memory_order_relaxed) != 0;
}
}  // namespace detail

namespace {

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

// Owns every thread's ring (shared_ptr so rings outlive their threads and
// exports see spans from joined workers).
class TraceRegistry {
 public:
  static TraceRegistry& instance() {
    static TraceRegistry reg;
    return reg;
  }

  std::shared_ptr<TraceRing> register_thread() {
    std::lock_guard<std::mutex> lk(mu_);
    auto ring = std::make_shared<TraceRing>(
        capacity_.load(std::memory_order_relaxed), next_tid_);
    ++next_tid_;
    rings_.push_back(ring);
    return ring;
  }

  std::vector<std::shared_ptr<TraceRing>> rings() const {
    std::lock_guard<std::mutex> lk(mu_);
    return rings_;
  }

  void set_capacity(std::size_t spans) {
    capacity_.store(spans == 0 ? 1 : spans, std::memory_order_relaxed);
  }

  std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<TraceRing>> rings_ FEMTO_GUARDED_BY(mu_);
  std::uint32_t next_tid_ FEMTO_GUARDED_BY(mu_) = 0;
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
};

TraceRing* thread_ring() {
  // The shared_ptr keeps the ring alive in the registry after thread exit;
  // the raw cached pointer keeps the hot path to one thread_local read.
  thread_local std::shared_ptr<TraceRing> ring =
      TraceRegistry::instance().register_thread();
  return ring.get();
}

}  // namespace

void set_trace_enabled(bool on) {
  detail::g_trace_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_trace_capacity(std::size_t spans) {
  TraceRegistry::instance().set_capacity(spans);
}

std::size_t trace_capacity() {
  return TraceRegistry::instance().capacity();
}

void trace_push(const char* category, const char* name, std::int64_t t0_ns,
                std::int64_t dur_ns) {
  thread_ring()->push(category, name, t0_ns, dur_ns);
}

TraceSnapshot trace_snapshot() {
  TraceSnapshot snap;
  const auto rings = TraceRegistry::instance().rings();
  snap.threads = static_cast<int>(rings.size());
  for (const auto& ring : rings) {
    snap.dropped += ring->dropped();
    auto evs = ring->events();
    snap.events.insert(snap.events.end(), evs.begin(), evs.end());
  }
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
                     return a.tid < b.tid;
                   });
  return snap;
}

void trace_clear() {
  for (const auto& ring : TraceRegistry::instance().rings()) ring->clear();
}

std::string chrome_trace_json() {
  const TraceSnapshot snap = trace_snapshot();
  std::string out;
  out.reserve(snap.events.size() * 96 + 256);
  out += "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const TraceEvent& e : snap.events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += json_escape(e.name != nullptr ? e.name : "?");
    out += "\",\"cat\":\"";
    out += json_escape(e.category != nullptr ? e.category : "?");
    // ts/dur are microseconds; %.3f keeps exact nanosecond resolution.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,"
                  "\"tid\":%u}",
                  static_cast<double>(e.t0_ns) * 1e-3,
                  static_cast<double>(e.dur_ns) * 1e-3, e.tid);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
                "\"dropped\":%llu,\"threads\":%d}}",
                static_cast<unsigned long long>(snap.dropped),
                snap.threads);
  out += buf;
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string body = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = (n == body.size()) && (std::fclose(f) == 0);
  if (n != body.size()) std::fclose(f);
  return ok;
}

}  // namespace femto::obs
