#pragma once
// Flow-edge analysis over a trace snapshot: pair every producer span
// (FlowDir::Out -- send, submit, METAQ drop-off) with the consumer span
// that waited on it (FlowDir::In -- recv, claim), then reduce the pairs
// to the CRITICAL PATH: the chain of waits with the largest total blocked
// time, where each link's consumer sits on the timeline that produced the
// next link.  This answers the paper's §VI-VII question -- who waited on
// whom -- from the same spans the Chrome export draws as flow arrows.
//
// The edge weight is the consumer span's duration: trace_flow_in records
// the span [asked, handed-off], so dur_ns IS the blocked time (femtocomm
// recv) or the queue latency (SolveService submit->claim, METAQ
// submit->claim), with no clock math here.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace femto::obs {

// One matched producer->consumer pair.
struct FlowEdge {
  TraceEvent out;  ///< FlowDir::Out span
  TraceEvent in;   ///< FlowDir::In span; in.dur_ns is the wait
  std::int64_t wait_ns = 0;
};

struct CriticalPathReport {
  std::vector<FlowEdge> chain;  ///< the longest wait chain, in time order
  std::int64_t total_wait_ns = 0;  ///< sum of chain waits
  int edges_matched = 0;    ///< flow pairs found in the snapshot
  int edges_unmatched = 0;  ///< flow spans whose partner never recorded
};

// All matched flow edges, ordered by producer start time.
std::vector<FlowEdge> flow_edges(const TraceSnapshot& snap);

// The longest wait chain: dynamic programming over flow_edges(), chaining
// edge B after edge A when A's consumer and B's producer share a timeline
// (rank when tagged, else tid) and A's wait resolved before B's handoff
// completed.
CriticalPathReport critical_path(const TraceSnapshot& snap);

// Human-readable rendering: the chain plus the single longest wait edge
// ("longest wait: comm/halo_recv rank1<-rank0 1.234 ms").
std::string critical_path_summary(const CriticalPathReport& report);

}  // namespace femto::obs
