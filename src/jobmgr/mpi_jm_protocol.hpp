#pragma once
// The mpi_jm wire protocol, executed with REAL message passing over
// femtocomm: "The job manager mpi_jm is started as a collection of mpirun
// launches of a single-node manager process per node on groups of nodes
// ... that we call lumps.  The first lump also starts a scheduler process
// and the remaining lumps connect to the scheduler after they initialize.
// The connection process uses the DPM features of MPI 3.1." (S V)
//
// Ranks: rank 0 is the scheduler (it lives with lump 0); every rank is
// one lump manager.  Protocol:
//
//   manager -> scheduler   CONNECT (lump id, node count)      [DPM connect]
//   scheduler -> manager   START   (job id, nodes)            [spawn]
//   manager -> scheduler   DONE    (job id)
//   scheduler -> manager   SHUTDOWN
//
// A manager that never CONNECTs (damaged lump) is ignored after a grace
// period, exactly like the paper's "lumps that fail to start ... don't
// connect and are ignored".  Jobs sized to one lump are handed to the
// least-loaded connected lump (block locality inside a lump is the
// cluster model's concern; here we exercise the distributed control
// plane itself).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "jobmgr/task.hpp"

namespace femto::jm {

struct ProtocolOptions {
  int n_lumps = 4;
  int nodes_per_lump = 8;
  /// Lump manager RANKS (1..n_lumps) that fail to start and never connect.
  std::vector<int> dead_lumps;
  /// Wall-time scale: one simulated second of task duration maps to this
  /// many microseconds of real execution in the lump manager.
  double us_per_sim_second = 2.0;
};

struct ProtocolReport {
  int lumps_connected = 0;
  int lumps_ignored = 0;
  int jobs_completed = 0;
  /// job id -> lump that executed it.
  std::map<int, int> placement;
  /// Completion order per lump, indexed by manager rank (entry 0 unused).
  std::vector<std::vector<int>> lump_logs;
  /// Measured wall time the lump managers spent executing jobs vs waiting
  /// for the scheduler, summed over all connected lumps.
  double lump_busy_seconds = 0.0;
  double lump_idle_seconds = 0.0;
  bool clean_shutdown = false;

  /// Fraction of manager wall time spent on jobs (paper S V: the
  /// utilisation mpi_jm recovers over bundled launching).
  double efficiency() const {
    const double total = lump_busy_seconds + lump_idle_seconds;
    return total > 0.0 ? lump_busy_seconds / total : 0.0;
  }
};

/// Run the full protocol for @p tasks (each task must fit in one lump:
/// task.nodes <= nodes_per_lump).  Returns the scheduler's report.
ProtocolReport run_mpi_jm_protocol(const std::vector<Task>& tasks,
                                   const ProtocolOptions& opts);

}  // namespace femto::jm
