#pragma once
// Node-description parsing for mpi_jm: the paper's scheduler "reads a
// python based description of the nodes, detailing the memory, cores,
// slots, and GPUs" and uses it to bind ranks to resources.  We accept a
// small declarative text format with the same content:
//
//   # sierra-like partition
//   nodes       = 256
//   gpus        = 4
//   cpu_slots   = 40
//   memory_gb   = 256
//   block_nodes = 4
//   lump_nodes  = 64
//   jitter      = 0.03
//   bad_node_prob = 0.004
//   seed        = 11
//
// Unknown keys are an error (catching typos beats silently ignoring a
// resource limit); '#' starts a comment; keys may appear in any order.

#include <string>

#include "cluster/cluster.hpp"
#include "jobmgr/schedulers.hpp"

namespace femto::jm {

/// Everything a deployment needs: the cluster and the manager layout.
struct NodeDescription {
  cluster::ClusterSpec cluster;
  int lump_nodes = 128;

  MpiJmOptions jm_options() const {
    MpiJmOptions o;
    o.lump_nodes = lump_nodes;
    return o;
  }
};

/// Parse the text format above.  Throws std::invalid_argument with a
/// line-numbered message on malformed input or unknown keys.
NodeDescription parse_node_description(const std::string& text);

/// Load from a file; throws on I/O failure.
NodeDescription load_node_description(const std::string& path);

/// Render a description back to the text format (round-trips through
/// parse_node_description).
std::string format_node_description(const NodeDescription& d);

}  // namespace femto::jm
