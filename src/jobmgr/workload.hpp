#pragma once
// Workload generators shaped like the paper's production campaign (Fig. 2):
// a long stream of propagator solves (GPU tasks) whose outputs feed tensor
// contractions (CPU-only tasks), with realistic run-time variation (solves
// differ in iteration count from configuration to configuration).

#include <cstdint>
#include <vector>

#include "jobmgr/task.hpp"

namespace femto::jm {

struct WorkloadOptions {
  int n_propagators = 256;
  int nodes_per_solve = 4;       ///< paper: groups of 4 nodes
  int gpus_per_node = 4;         ///< Sierra (Summit: 6)
  double solve_seconds = 600.0;  ///< nominal solve duration
  double duration_jitter = 0.20; ///< lognormal sigma of per-task duration
  bool with_contractions = true; ///< add one CPU contraction per solve
  double contraction_seconds = 110.0;  ///< ~3% of total vs 97% solves
  int contraction_cpu_slots = 16;
  std::uint64_t seed = 7;
};

/// Build the propagator + contraction task list.  Each contraction depends
/// on its propagator (it reads the written file).
std::vector<Task> make_campaign(const WorkloadOptions& opts);

}  // namespace femto::jm
