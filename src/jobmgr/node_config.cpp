#include "jobmgr/node_config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace femto::jm {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::invalid_argument("node description line " +
                              std::to_string(line) + ": " + msg);
}

}  // namespace

NodeDescription parse_node_description(const std::string& text) {
  NodeDescription d;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    const std::string line =
        trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) fail(line_no, "empty value for '" + key + "'");

    try {
      if (key == "nodes") {
        d.cluster.n_nodes = std::stoi(value);
      } else if (key == "gpus") {
        d.cluster.node.gpus = std::stoi(value);
      } else if (key == "cpu_slots") {
        d.cluster.node.cpu_slots = std::stoi(value);
      } else if (key == "memory_gb") {
        d.cluster.node.mem_gb = std::stod(value);
      } else if (key == "block_nodes") {
        d.cluster.nodes_per_block = std::stoi(value);
      } else if (key == "lump_nodes") {
        d.lump_nodes = std::stoi(value);
      } else if (key == "jitter") {
        d.cluster.perf_jitter_sigma = std::stod(value);
      } else if (key == "bad_node_prob") {
        d.cluster.bad_node_prob = std::stod(value);
      } else if (key == "seed") {
        d.cluster.seed = std::stoull(value);
      } else {
        fail(line_no, "unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      fail(line_no, "cannot parse value '" + value + "' for '" + key + "'");
    }
  }

  // Sanity constraints mpi_jm relies on.
  if (d.cluster.n_nodes < 1) fail(0, "nodes must be >= 1");
  if (d.cluster.node.gpus < 0) fail(0, "gpus must be >= 0");
  if (d.cluster.nodes_per_block < 1) fail(0, "block_nodes must be >= 1");
  if (d.lump_nodes < d.cluster.nodes_per_block)
    fail(0, "lump_nodes must be >= block_nodes (blocks subdivide lumps)");
  if (d.lump_nodes % d.cluster.nodes_per_block != 0)
    fail(0, "lump_nodes must be a multiple of block_nodes");
  return d;
}

NodeDescription load_node_description(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::invalid_argument("cannot open node description: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_node_description(ss.str());
}

std::string format_node_description(const NodeDescription& d) {
  std::ostringstream os;
  os << "nodes = " << d.cluster.n_nodes << "\n"
     << "gpus = " << d.cluster.node.gpus << "\n"
     << "cpu_slots = " << d.cluster.node.cpu_slots << "\n"
     << "memory_gb = " << d.cluster.node.mem_gb << "\n"
     << "block_nodes = " << d.cluster.nodes_per_block << "\n"
     << "lump_nodes = " << d.lump_nodes << "\n"
     << "jitter = " << d.cluster.perf_jitter_sigma << "\n"
     << "bad_node_prob = " << d.cluster.bad_node_prob << "\n"
     << "seed = " << d.cluster.seed << "\n";
  return os.str();
}

}  // namespace femto::jm
