#include "jobmgr/schedulers.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <set>
#include <sstream>

#include "lattice/rng.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace femto::jm {

std::string ScheduleReport::summary() const {
  std::ostringstream os;
  os << scheduler << ": makespan=" << makespan << "s (startup "
     << startup_time << "s), utilization=" << utilization() * 100.0
     << "%, idle=" << idle_fraction() * 100.0 << "%, completed "
     << tasks_completed << " tasks, " << fragmented_placements
     << " fragmented placements, " << cpu_tasks_coscheduled
     << " co-scheduled CPU tasks";
  return os.str();
}

namespace {

/// Per-run mutable node state.
struct NodeState {
  int gpu_free = 0;
  int cpu_free = 0;
};

std::vector<int> healthy_nodes(const cluster::Cluster& cl) {
  std::vector<int> out;
  for (const auto& n : cl.nodes())
    if (!n.failed) out.push_back(n.id);
  return out;
}

double effective_duration(const cluster::Cluster& cl, const Task& t,
                          const std::vector<int>& nodes, double penalty,
                          double rate_factor) {
  const double rate = cl.min_perf(nodes) * rate_factor;
  return t.duration * penalty / rate;
}

// Every scheduler publishes its utilisation to femtoscope: last run wins
// on the gauges (a run report describes ONE schedule), completions
// accumulate on the counter.
void publish(const ScheduleReport& rep) {
  obs::gauge("jm.busy_node_seconds").set(rep.busy_node_seconds);
  obs::gauge("jm.alloc_node_seconds").set(rep.alloc_node_seconds);
  obs::counter("jm.jobs_completed").add(rep.tasks_completed);
  FEMTO_LOG_INFO("jobmgr", rep.summary());
}

}  // namespace

// ---------------------------------------------------------------------------
// Naive bundling
// ---------------------------------------------------------------------------

ScheduleReport run_naive_bundling(cluster::Cluster& cl,
                                  const std::vector<Task>& tasks,
                                  const NaiveOptions& opts) {
  ScheduleReport rep;
  rep.scheduler = "naive-bundling";
  const auto avail = healthy_nodes(cl);
  const int total_nodes = static_cast<int>(avail.size());

  std::set<int> done;
  std::vector<bool> scheduled(tasks.size(), false);
  double clock = 0.0;

  std::size_t remaining = tasks.size();
  while (remaining > 0) {
    // Build one bundle: take ready tasks in order while nodes remain.
    clock += opts.batch_launch_seconds;
    int free = total_nodes;
    std::size_t cursor = 0;  // index into avail
    double bundle_end = 0.0;
    bool any = false;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (scheduled[i]) continue;
      const Task& t = tasks[i];
      const bool ready = std::all_of(
          t.deps.begin(), t.deps.end(),
          [&](int d) { return done.count(d) > 0; });
      if (!ready || t.nodes > free) continue;
      // Whole-node allocation, next nodes in order.
      std::vector<int> nodes(avail.begin() + static_cast<long>(cursor),
                             avail.begin() + static_cast<long>(cursor) +
                                 t.nodes);
      cursor += static_cast<std::size_t>(t.nodes);
      free -= t.nodes;
      const double dur = effective_duration(cl, t, nodes, 1.0, 1.0);
      TaskRecord rec;
      rec.task_id = t.id;
      rec.start = clock;
      rec.end = clock + dur;
      rec.node_ids = nodes;
      rec.rate = cl.min_perf(nodes);
      rec.completed = true;
      rep.records.push_back(rec);
      if (t.kind == TaskKind::GpuSolve)
        rep.busy_node_seconds += t.nodes * dur;
      bundle_end = std::max(bundle_end, rec.end);
      scheduled[i] = true;
      any = true;
      --remaining;
    }
    if (!any) break;  // only blocked tasks remain (shouldn't happen)
    // The whole allocation waits for the slowest member of the bundle.
    for (auto& rec : rep.records)
      if (rec.end <= bundle_end && rec.start >= clock - 1e-9)
        done.insert(rec.task_id);
    clock = bundle_end;
  }

  rep.makespan = clock;
  rep.startup_time = opts.batch_launch_seconds;
  rep.alloc_node_seconds = static_cast<double>(total_nodes) * rep.makespan;
  rep.tasks_completed = static_cast<int>(rep.records.size());
  publish(rep);
  return rep;
}

// ---------------------------------------------------------------------------
// METAQ
// ---------------------------------------------------------------------------

ScheduleReport run_metaq(cluster::Cluster& cl, const std::vector<Task>& tasks,
                         const MetaqOptions& opts) {
  ScheduleReport rep;
  rep.scheduler = "metaq";
  sim::Engine eng;

  const auto avail = healthy_nodes(cl);
  std::map<int, bool> node_free;
  for (int id : avail) node_free[id] = true;

  std::set<int> done;
  std::vector<bool> started(tasks.size(), false);
  std::size_t remaining = tasks.size();

  // Service-node model: a pool of launch slots; each mpirun occupies one
  // for mpirun_seconds before its task begins.
  std::priority_queue<double, std::vector<double>, std::greater<>>
      service_free;
  for (int i = 0; i < opts.service_node_capacity; ++i)
      service_free.push(0.0);

  std::function<void()> try_schedule = [&]() {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (started[i]) continue;
      const Task& t = tasks[i];
      const bool ready = std::all_of(
          t.deps.begin(), t.deps.end(),
          [&](int d) { return done.count(d) > 0; });
      if (!ready) continue;
      // First-fit over free nodes in id order (METAQ has no locality
      // knowledge — this is what fragments placements).
      std::vector<int> nodes;
      for (auto& [id, free] : node_free) {
        if (free) nodes.push_back(id);
        if (static_cast<int>(nodes.size()) == t.nodes) break;
      }
      if (static_cast<int>(nodes.size()) < t.nodes) continue;
      for (int id : nodes) node_free[id] = false;
      started[i] = true;

      const bool spans = !cl.same_block(nodes) && t.nodes > 1;
      const double penalty = (spans && t.kind == TaskKind::GpuSolve)
                                 ? opts.cross_block_penalty
                                 : 1.0;
      if (spans) ++rep.fragmented_placements;

      // Queue the mpirun through the service nodes.
      double slot = service_free.top();
      service_free.pop();
      const double launch_done =
          std::max(slot, eng.now()) + opts.mpirun_seconds;
      service_free.push(launch_done);

      const double dur = effective_duration(cl, t, nodes, penalty, 1.0);
      TaskRecord rec;
      rec.task_id = t.id;
      rec.start = launch_done;
      rec.end = launch_done + dur;
      rec.node_ids = nodes;
      rec.spans_blocks = spans;
      rec.rate = cl.min_perf(nodes) / penalty;
      rec.completed = true;
      rep.records.push_back(rec);
      if (t.kind == TaskKind::GpuSolve)
        rep.busy_node_seconds += t.nodes * dur;

      eng.schedule_at(rec.end, [&, nodes, task_id = t.id]() {
        for (int id : nodes) node_free[id] = true;
        done.insert(task_id);
        --remaining;
        try_schedule();
      });
    }
  };

  eng.schedule(0.0, [&] { try_schedule(); });
  eng.run();

  rep.makespan = eng.now();
  rep.startup_time = opts.mpirun_seconds;
  rep.alloc_node_seconds =
      static_cast<double>(avail.size()) * rep.makespan;
  rep.tasks_completed = static_cast<int>(rep.records.size());
  publish(rep);
  return rep;
}

// ---------------------------------------------------------------------------
// mpi_jm
// ---------------------------------------------------------------------------

ScheduleReport run_mpi_jm(cluster::Cluster& cl,
                          const std::vector<Task>& tasks,
                          const MpiJmOptions& opts) {
  ScheduleReport rep;
  rep.scheduler = "mpi_jm";
  sim::Engine eng;

  // --- partitioned startup: lumps start in parallel; a lump containing a
  // node with damaged connectivity fails to connect and is ignored.
  const int n_nodes = cl.size();
  const int n_lumps = (n_nodes + opts.lump_nodes - 1) / opts.lump_nodes;
  std::vector<int> usable;
  double slowest_lump = 0.0;
  for (int l = 0; l < n_lumps; ++l) {
    bool lump_ok = true;
    std::vector<int> members;
    for (int id = l * opts.lump_nodes;
         id < std::min(n_nodes, (l + 1) * opts.lump_nodes); ++id) {
      if (cl.node(id).failed) lump_ok = false;
      members.push_back(id);
    }
    if (!lump_ok) continue;
    Xoshiro256 rng(cl.spec().seed, static_cast<std::uint64_t>(l), 0x10F);
    const double start = opts.lump_start_seconds *
                         std::exp(opts.lump_start_jitter * rng.gaussian());
    slowest_lump = std::max(slowest_lump, start);
    usable.insert(usable.end(), members.begin(), members.end());
  }
  const double startup = slowest_lump + opts.connect_seconds;
  rep.startup_time = startup;

  // --- per-node resource state (GPU-granular: mpi_jm can cut nodes into
  // pieces and overlay GPU and CPU jobs).
  std::map<int, NodeState> state;
  for (int id : usable)
    state[id] = NodeState{cl.spec().node.gpus, cl.spec().node.cpu_slots};

  std::set<int> done;
  std::vector<bool> started(tasks.size(), false);

  const int block_sz = cl.spec().nodes_per_block;

  // Find t.nodes nodes inside ONE block with the required free resources.
  auto find_block_placement = [&](const Task& t) -> std::vector<int> {
    for (int b = 0; b < cl.n_blocks(); ++b) {
      std::vector<int> picked;
      for (int id = b * block_sz;
           id < std::min(n_nodes, (b + 1) * block_sz); ++id) {
        auto it = state.find(id);
        if (it == state.end()) continue;
        if (it->second.gpu_free >= t.gpus_per_node &&
            it->second.cpu_free >= t.cpu_slots_per_node)
          picked.push_back(id);
        if (static_cast<int>(picked.size()) == t.nodes) return picked;
      }
    }
    return {};
  };

  // CPU-only tasks go on ANY single node with free slots — preferentially
  // one whose GPUs are busy (the co-scheduling the paper demonstrates).
  auto find_cpu_placement = [&](const Task& t) -> std::vector<int> {
    int fallback = -1;
    for (auto& [id, st] : state) {
      if (st.cpu_free < t.cpu_slots_per_node) continue;
      if (st.gpu_free < cl.spec().node.gpus) return {id};  // busy GPUs
      if (fallback < 0) fallback = id;
    }
    return fallback >= 0 ? std::vector<int>{fallback} : std::vector<int>{};
  };

  std::function<void()> try_schedule = [&]() {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (started[i]) continue;
      const Task& t = tasks[i];
      const bool ready = std::all_of(
          t.deps.begin(), t.deps.end(),
          [&](int d) { return done.count(d) > 0; });
      if (!ready) continue;

      std::vector<int> nodes;
      bool coscheduled = false;
      if (t.kind == TaskKind::CpuContraction && opts.coschedule_cpu_tasks) {
        nodes = find_cpu_placement(t);
        if (!nodes.empty())
          coscheduled =
              state[nodes[0]].gpu_free < cl.spec().node.gpus;
      } else {
        nodes = find_block_placement(t);
      }
      if (nodes.empty()) continue;

      for (int id : nodes) {
        state[id].gpu_free -= t.gpus_per_node;
        state[id].cpu_free -= t.cpu_slots_per_node;
      }
      started[i] = true;
      if (coscheduled) ++rep.cpu_tasks_coscheduled;

      const double dur =
          effective_duration(cl, t, nodes, 1.0, opts.mpi_rate_factor);
      TaskRecord rec;
      rec.task_id = t.id;
      rec.start = eng.now() + opts.spawn_seconds;
      rec.end = rec.start + dur;
      rec.node_ids = nodes;
      rec.spans_blocks = false;
      rec.rate = cl.min_perf(nodes) * opts.mpi_rate_factor;
      rec.completed = true;
      rep.records.push_back(rec);
      if (t.kind == TaskKind::GpuSolve) {
        const double share =
            static_cast<double>(t.gpus_per_node) /
            static_cast<double>(cl.spec().node.gpus);
        rep.busy_node_seconds += t.nodes * share * dur;
      }

      eng.schedule_at(rec.end, [&, nodes, task_id = t.id,
                                gpn = t.gpus_per_node,
                                cpn = t.cpu_slots_per_node]() {
        for (int id : nodes) {
          state[id].gpu_free += gpn;
          state[id].cpu_free += cpn;
        }
        done.insert(task_id);
        try_schedule();
      });
    }
  };

  eng.schedule_at(startup, [&] { try_schedule(); });
  eng.run();

  rep.makespan = eng.now();
  rep.alloc_node_seconds =
      static_cast<double>(usable.size()) * rep.makespan;
  rep.tasks_completed = static_cast<int>(rep.records.size());
  publish(rep);
  return rep;
}

}  // namespace femto::jm
