#pragma once
// Task and schedule-report model shared by the three job-management
// strategies the paper compares:
//   * naive bundling          (launch a batch, wait for ALL: 20-25% idle)
//   * METAQ                   (shell-level backfilling, ref. [14][15])
//   * mpi_jm                  (lumps/blocks scheduler with tight binding)

#include <cstdint>
#include <string>
#include <vector>

namespace femto::jm {

enum class TaskKind {
  GpuSolve,        ///< propagator solve: owns GPUs (and a few CPU slots)
  CpuContraction,  ///< tensor contraction: CPU slots only
};

struct Task {
  int id = 0;
  TaskKind kind = TaskKind::GpuSolve;
  int nodes = 4;             ///< nodes spanned
  int gpus_per_node = 4;     ///< GPUs used on each of them
  int cpu_slots_per_node = 4;
  double duration = 600.0;   ///< seconds at nominal node speed
  std::vector<int> deps;     ///< task ids that must finish first
};

/// Where and when one task ran.
struct TaskRecord {
  int task_id = -1;
  double start = -1.0;
  double end = -1.0;
  std::vector<int> node_ids;
  bool spans_blocks = false;  ///< placement crossed a locality block
  double rate = 1.0;          ///< achieved speed factor (node jitter etc.)
  bool completed = false;
};

/// Outcome of a scheduling run.
struct ScheduleReport {
  std::string scheduler;
  double makespan = 0.0;       ///< seconds from allocation start to done
  double startup_time = 0.0;   ///< time before the first task could run
  double busy_node_seconds = 0.0;
  double alloc_node_seconds = 0.0;
  int tasks_completed = 0;
  int fragmented_placements = 0;  ///< placements spanning blocks
  int cpu_tasks_coscheduled = 0;  ///< contractions run on busy GPU nodes
  std::vector<TaskRecord> records;

  /// Fraction of allocated node time spent on GPU work.
  double utilization() const {
    return alloc_node_seconds > 0 ? busy_node_seconds / alloc_node_seconds
                                  : 0.0;
  }
  /// Idle fraction — the quantity the paper quotes as "20 to 25% idling
  /// inefficiency" for naive bundling.
  double idle_fraction() const { return 1.0 - utilization(); }

  std::string summary() const;
};

}  // namespace femto::jm
