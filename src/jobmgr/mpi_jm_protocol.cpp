#include "jobmgr/mpi_jm_protocol.hpp"

#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/check.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace femto::jm {

namespace {

// Message tags.
constexpr int kTagConnect = 10;
constexpr int kTagCommand = 11;  // START or SHUTDOWN, discriminated below
constexpr int kTagDone = 12;

// Command discriminators.
constexpr std::int64_t kCmdStart = 1;
constexpr std::int64_t kCmdShutdown = 2;

// Per-lump completion logs, written concurrently by every lump-manager
// rank as it finishes a job (each lump records its own completion order,
// as the real mpi_jm job logs are written lump-side, not scheduler-side).
class LumpLogBoard {
 public:
  explicit LumpLogBoard(int n_ranks)
      : logs_(static_cast<std::size_t>(n_ranks)) {}

  void record(int rank, int job_id) {
    std::lock_guard<std::mutex> lk(mu_);
    logs_[static_cast<std::size_t>(rank)].push_back(job_id);
  }

  /// Each manager reports its measured busy/idle split once, at shutdown.
  void account(std::int64_t busy_us, std::int64_t idle_us) {
    std::lock_guard<std::mutex> lk(mu_);
    busy_us_ += busy_us;
    idle_us_ += idle_us;
  }

  std::vector<std::vector<int>> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return logs_;
  }

  std::int64_t busy_us() const {
    std::lock_guard<std::mutex> lk(mu_);
    return busy_us_;
  }

  std::int64_t idle_us() const {
    std::lock_guard<std::mutex> lk(mu_);
    return idle_us_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<int>> logs_ FEMTO_GUARDED_BY(mu_);
  std::int64_t busy_us_ FEMTO_GUARDED_BY(mu_) = 0;
  std::int64_t idle_us_ FEMTO_GUARDED_BY(mu_) = 0;
};

void run_scheduler(comm::RankHandle& h, const std::vector<Task>& tasks,
                   const ProtocolOptions& opts, ProtocolReport* report) {
  // --- connection phase with a grace period: lumps that never connect
  // are ignored (paper: damaged lumps "don't connect and are ignored").
  std::set<int> connected;
  for (;;) {
    auto m = h.recv_for(-1, kTagConnect, std::chrono::milliseconds(100));
    if (!m) break;  // silence: everyone that will connect has connected
    std::int64_t lump_id, nodes;
    std::memcpy(&lump_id, m->payload.data(), sizeof(lump_id));
    std::memcpy(&nodes, m->payload.data() + sizeof(lump_id), sizeof(nodes));
    (void)nodes;
    connected.insert(static_cast<int>(lump_id));
    if (static_cast<int>(connected.size()) == opts.n_lumps) break;
  }
  report->lumps_connected = static_cast<int>(connected.size());
  report->lumps_ignored = opts.n_lumps - report->lumps_connected;
  if (connected.empty()) {
    report->clean_shutdown = true;
    return;
  }

  // --- dispatch phase: one job at a time per lump, least-recently-idle.
  std::deque<int> idle(connected.begin(), connected.end());
  std::size_t next_task = 0;
  int outstanding = 0;
  while (next_task < tasks.size() || outstanding > 0) {
    while (!idle.empty() && next_task < tasks.size()) {
      const Task& t = tasks[next_task];
      const int lump = idle.front();
      idle.pop_front();
      const auto dur_us = static_cast<std::int64_t>(
          t.duration * opts.us_per_sim_second);
      h.send_vec<std::int64_t>(lump, kTagCommand,
                               {kCmdStart, t.id, dur_us});
      report->placement[t.id] = lump;
      ++next_task;
      ++outstanding;
    }
    if (outstanding == 0) break;
    // Wait for any completion.
    comm::Message m = h.recv(-1, kTagDone);
    std::int64_t job_id;
    std::memcpy(&job_id, m.payload.data(), sizeof(job_id));
    (void)job_id;  // completion order is recorded lump-side (LumpLogBoard)
    ++report->jobs_completed;
    --outstanding;
    idle.push_back(m.src);
  }

  // --- shutdown phase.
  for (int lump : connected)
    h.send_vec<std::int64_t>(lump, kTagCommand, {kCmdShutdown, 0, 0});
  report->clean_shutdown = true;
}

void run_lump_manager(comm::RankHandle& h, const ProtocolOptions& opts,
                      LumpLogBoard& board) {
  // CONNECT: the DPM handshake.
  h.send_vec<std::int64_t>(0, kTagConnect,
                           {static_cast<std::int64_t>(h.rank()),
                            static_cast<std::int64_t>(opts.nodes_per_lump)});
  // Busy/idle timeline: waiting on the scheduler is idle, executing a job
  // is busy — the split the paper's utilisation numbers are made of.
  std::int64_t busy_us = 0, idle_us = 0;
  for (;;) {
    const auto w0 = std::chrono::steady_clock::now();
    comm::Message m = h.recv(0, kTagCommand);
    idle_us += std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - w0)
                   .count();
    std::int64_t cmd, job_id, dur_us;
    std::memcpy(&cmd, m.payload.data(), sizeof(cmd));
    std::memcpy(&job_id, m.payload.data() + 8, sizeof(job_id));
    std::memcpy(&dur_us, m.payload.data() + 16, sizeof(dur_us));
    if (cmd == kCmdShutdown) break;
    // "MPI_Comm_spawn_multiple to start the job on the assigned
    // resources" — here: execute the (scaled) workload.
    const auto j0 = std::chrono::steady_clock::now();
    {
      FEMTO_TRACE_SCOPE("jobmgr", "lump_job");
      if (dur_us > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(dur_us));
    }
    busy_us += std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - j0)
                   .count();
    board.record(h.rank(), static_cast<int>(job_id));
    h.send_vec<std::int64_t>(0, kTagDone, {job_id});
  }
  board.account(busy_us, idle_us);
}

}  // namespace

ProtocolReport run_mpi_jm_protocol(const std::vector<Task>& tasks,
                                   const ProtocolOptions& opts) {
  // Validate BEFORE spawning ranks: an exception thrown mid-protocol would
  // leave lump managers blocked in recv() and deadlock the join.
  for (const auto& t : tasks)
    if (t.nodes > opts.nodes_per_lump)
      throw std::invalid_argument(
          "mpi_jm protocol: task larger than a lump");

  ProtocolReport report;
  const std::set<int> dead(opts.dead_lumps.begin(), opts.dead_lumps.end());
  LumpLogBoard board(opts.n_lumps + 1);  // indexed by rank (1..n_lumps)
  {
    FEMTO_TRACE_SCOPE("jobmgr", "mpi_jm_protocol");
    // Rank 0: scheduler; ranks 1..n_lumps: lump managers.
    comm::run_ranks(opts.n_lumps + 1, [&](comm::RankHandle& h) {
      if (h.rank() == 0) {
        run_scheduler(h, tasks, opts, &report);
      } else if (!dead.count(h.rank())) {
        run_lump_manager(h, opts, board);
      }
      // Dead lumps simply never connect.
    });
  }
  report.lump_logs = board.snapshot();
  report.lump_busy_seconds = static_cast<double>(board.busy_us()) * 1e-6;
  report.lump_idle_seconds = static_cast<double>(board.idle_us()) * 1e-6;
  obs::counter("jm.lump_busy_us").add(board.busy_us());
  obs::counter("jm.lump_idle_us").add(board.idle_us());
  obs::counter("jm.jobs_completed").add(report.jobs_completed);
  FEMTO_LOG_INFO("jobmgr",
                 "mpi_jm protocol: " << report.jobs_completed << " jobs on "
                                     << report.lumps_connected << " lumps ("
                                     << report.lumps_ignored
                                     << " ignored), manager efficiency "
                                     << report.efficiency() * 100.0 << "%");
  return report;
}

}  // namespace femto::jm
