#include "jobmgr/mpi_jm_protocol.hpp"

#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/check.hpp"

namespace femto::jm {

namespace {

// Message tags.
constexpr int kTagConnect = 10;
constexpr int kTagCommand = 11;  // START or SHUTDOWN, discriminated below
constexpr int kTagDone = 12;

// Command discriminators.
constexpr std::int64_t kCmdStart = 1;
constexpr std::int64_t kCmdShutdown = 2;

// Per-lump completion logs, written concurrently by every lump-manager
// rank as it finishes a job (each lump records its own completion order,
// as the real mpi_jm job logs are written lump-side, not scheduler-side).
class LumpLogBoard {
 public:
  explicit LumpLogBoard(int n_ranks)
      : logs_(static_cast<std::size_t>(n_ranks)) {}

  void record(int rank, int job_id) {
    std::lock_guard<std::mutex> lk(mu_);
    logs_[static_cast<std::size_t>(rank)].push_back(job_id);
  }

  std::vector<std::vector<int>> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return logs_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<int>> logs_ FEMTO_GUARDED_BY(mu_);
};

void run_scheduler(comm::RankHandle& h, const std::vector<Task>& tasks,
                   const ProtocolOptions& opts, ProtocolReport* report) {
  // --- connection phase with a grace period: lumps that never connect
  // are ignored (paper: damaged lumps "don't connect and are ignored").
  std::set<int> connected;
  for (;;) {
    auto m = h.recv_for(-1, kTagConnect, std::chrono::milliseconds(100));
    if (!m) break;  // silence: everyone that will connect has connected
    std::int64_t lump_id, nodes;
    std::memcpy(&lump_id, m->payload.data(), sizeof(lump_id));
    std::memcpy(&nodes, m->payload.data() + sizeof(lump_id), sizeof(nodes));
    (void)nodes;
    connected.insert(static_cast<int>(lump_id));
    if (static_cast<int>(connected.size()) == opts.n_lumps) break;
  }
  report->lumps_connected = static_cast<int>(connected.size());
  report->lumps_ignored = opts.n_lumps - report->lumps_connected;
  if (connected.empty()) {
    report->clean_shutdown = true;
    return;
  }

  // --- dispatch phase: one job at a time per lump, least-recently-idle.
  std::deque<int> idle(connected.begin(), connected.end());
  std::size_t next_task = 0;
  int outstanding = 0;
  while (next_task < tasks.size() || outstanding > 0) {
    while (!idle.empty() && next_task < tasks.size()) {
      const Task& t = tasks[next_task];
      const int lump = idle.front();
      idle.pop_front();
      const auto dur_us = static_cast<std::int64_t>(
          t.duration * opts.us_per_sim_second);
      h.send_vec<std::int64_t>(lump, kTagCommand,
                               {kCmdStart, t.id, dur_us});
      report->placement[t.id] = lump;
      ++next_task;
      ++outstanding;
    }
    if (outstanding == 0) break;
    // Wait for any completion.
    comm::Message m = h.recv(-1, kTagDone);
    std::int64_t job_id;
    std::memcpy(&job_id, m.payload.data(), sizeof(job_id));
    (void)job_id;  // completion order is recorded lump-side (LumpLogBoard)
    ++report->jobs_completed;
    --outstanding;
    idle.push_back(m.src);
  }

  // --- shutdown phase.
  for (int lump : connected)
    h.send_vec<std::int64_t>(lump, kTagCommand, {kCmdShutdown, 0, 0});
  report->clean_shutdown = true;
}

void run_lump_manager(comm::RankHandle& h, const ProtocolOptions& opts,
                      LumpLogBoard& board) {
  // CONNECT: the DPM handshake.
  h.send_vec<std::int64_t>(0, kTagConnect,
                           {static_cast<std::int64_t>(h.rank()),
                            static_cast<std::int64_t>(opts.nodes_per_lump)});
  for (;;) {
    comm::Message m = h.recv(0, kTagCommand);
    std::int64_t cmd, job_id, dur_us;
    std::memcpy(&cmd, m.payload.data(), sizeof(cmd));
    std::memcpy(&job_id, m.payload.data() + 8, sizeof(job_id));
    std::memcpy(&dur_us, m.payload.data() + 16, sizeof(dur_us));
    if (cmd == kCmdShutdown) return;
    // "MPI_Comm_spawn_multiple to start the job on the assigned
    // resources" — here: execute the (scaled) workload.
    if (dur_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(dur_us));
    board.record(h.rank(), static_cast<int>(job_id));
    h.send_vec<std::int64_t>(0, kTagDone, {job_id});
  }
}

}  // namespace

ProtocolReport run_mpi_jm_protocol(const std::vector<Task>& tasks,
                                   const ProtocolOptions& opts) {
  // Validate BEFORE spawning ranks: an exception thrown mid-protocol would
  // leave lump managers blocked in recv() and deadlock the join.
  for (const auto& t : tasks)
    if (t.nodes > opts.nodes_per_lump)
      throw std::invalid_argument(
          "mpi_jm protocol: task larger than a lump");

  ProtocolReport report;
  const std::set<int> dead(opts.dead_lumps.begin(), opts.dead_lumps.end());
  LumpLogBoard board(opts.n_lumps + 1);  // indexed by rank (1..n_lumps)
  // Rank 0: scheduler; ranks 1..n_lumps: lump managers.
  comm::run_ranks(opts.n_lumps + 1, [&](comm::RankHandle& h) {
    if (h.rank() == 0) {
      run_scheduler(h, tasks, opts, &report);
    } else if (!dead.count(h.rank())) {
      run_lump_manager(h, opts, board);
    }
    // Dead lumps simply never connect.
  });
  report.lump_logs = board.snapshot();
  return report;
}

}  // namespace femto::jm
