#include "jobmgr/metaq_queue.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fs = std::filesystem;

namespace femto::jm {

namespace {

constexpr int kMaxPriority = 9;

std::string priority_dir(const std::string& root, int p) {
  return root + "/priority/" + std::to_string(p);
}

}  // namespace

MetaqQueue::MetaqQueue(std::string root) : root_(std::move(root)) {
  for (int p = 0; p <= kMaxPriority; ++p)
    fs::create_directories(priority_dir(root_, p));
  fs::create_directories(root_ + "/working");
  fs::create_directories(root_ + "/finished");
}

std::string MetaqQueue::format_task(const Task& t) {
  std::ostringstream os;
  os << "id = " << t.id << "\n"
     << "kind = " << (t.kind == TaskKind::GpuSolve ? "gpu" : "cpu") << "\n"
     << "nodes = " << t.nodes << "\n"
     << "gpus_per_node = " << t.gpus_per_node << "\n"
     << "cpu_slots_per_node = " << t.cpu_slots_per_node << "\n"
     << "duration = " << t.duration << "\n";
  return os.str();
}

Task MetaqQueue::parse_task(const std::string& text) {
  Task t;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, line.find(' '));
    const std::string value = line.substr(eq + 1);
    if (key == "id") t.id = std::stoi(value);
    else if (key == "kind")
      t.kind = value.find("gpu") != std::string::npos ? TaskKind::GpuSolve
                                                      : TaskKind::CpuContraction;
    else if (key == "nodes") t.nodes = std::stoi(value);
    else if (key == "gpus_per_node") t.gpus_per_node = std::stoi(value);
    else if (key == "cpu_slots_per_node")
      t.cpu_slots_per_node = std::stoi(value);
    else if (key == "duration") t.duration = std::stod(value);
  }
  return t;
}

std::string MetaqQueue::submit(const Task& t, int priority) {
  priority = std::clamp(priority, 0, kMaxPriority);
  std::uint64_t flow = 0;
  std::int64_t t0 = -1;
  if (obs::trace_enabled()) {
    t0 = obs::uptime_ns();
    flow = obs::next_flow_id();
  }
  int serial = 0;
  std::ostringstream name;
  {
    std::lock_guard<std::mutex> lk(mu_);
    serial = next_id_++;
    name << "task_" << t.id << "_" << serial;
    if (flow != 0) flows_[name.str()] = {flow, t0};
  }
  const std::string path =
      priority_dir(root_, priority) + "/" + name.str() + ".task";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    out << format_task(t);
  }
  fs::rename(tmp, path);  // publish atomically, never a half-written task
  obs::counter("metaq.submitted").add();
  if (flow != 0) obs::trace_flow_out("jobmgr", "metaq_submit", t0, flow);
  FEMTO_LOG_DEBUG("metaq", "submitted " << name.str() << " at priority "
                                        << priority);
  return name.str();
}

std::optional<QueuedTask> MetaqQueue::claim(int free_nodes) {
  for (int p = 0; p <= kMaxPriority; ++p) {
    std::vector<fs::path> candidates;
    std::error_code ec;
    for (const auto& e :
         fs::directory_iterator(priority_dir(root_, p), ec)) {
      if (e.path().extension() == ".task") candidates.push_back(e.path());
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& path : candidates) {
      // Peek the resource needs before claiming.
      std::ifstream in(path);
      if (!in) continue;  // raced away
      std::ostringstream body;
      body << in.rdbuf();
      Task t = parse_task(body.str());
      if (t.nodes > free_nodes) continue;
      // Atomic claim by rename: exactly one worker wins.
      const fs::path target =
          fs::path(root_) / "working" / path.filename();
      std::error_code rc;
      fs::rename(path, target, rc);
      if (rc) continue;  // another worker claimed it first
      QueuedTask q;
      q.name = path.stem().string();
      q.task = t;
      obs::counter("metaq.claimed").add();
      if (obs::trace_enabled()) {
        // Close the causal link when this instance saw the submission:
        // the flow-in span runs [submit, claim], i.e. time-in-queue.
        std::uint64_t flow = 0;
        std::int64_t t0 = -1;
        {
          std::lock_guard<std::mutex> lk(mu_);
          const auto it = flows_.find(q.name);
          if (it != flows_.end()) {
            flow = it->second.first;
            t0 = it->second.second;
            flows_.erase(it);
          }
        }
        if (flow != 0) obs::trace_flow_in("jobmgr", "metaq_claim", t0, flow);
      }
      FEMTO_LOG_DEBUG("metaq", "claimed " << q.name << " (" << t.nodes
                                          << " nodes) from priority " << p);
      return q;
    }
  }
  return std::nullopt;
}

void MetaqQueue::finish(const QueuedTask& t) {
  const fs::path from = fs::path(root_) / "working" / (t.name + ".task");
  const fs::path to = fs::path(root_) / "finished" / (t.name + ".task");
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec)
    throw std::runtime_error("MetaqQueue::finish: task not in working/: " +
                             t.name);
  obs::counter("metaq.finished").add();
}

void MetaqQueue::requeue(const QueuedTask& t, int priority) {
  priority = std::clamp(priority, 0, kMaxPriority);
  const fs::path from = fs::path(root_) / "working" / (t.name + ".task");
  const fs::path to =
      fs::path(priority_dir(root_, priority)) / (t.name + ".task");
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec)
    throw std::runtime_error("MetaqQueue::requeue: task not in working/: " +
                             t.name);
  obs::counter("metaq.requeued").add();
  FEMTO_LOG_DEBUG("metaq",
                  "requeued " << t.name << " at priority " << priority);
}

namespace {
std::size_t count_tasks(const fs::path& dir) {
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec))
    if (e.path().extension() == ".task") ++n;
  return n;
}
}  // namespace

std::size_t MetaqQueue::pending() const {
  std::size_t n = 0;
  for (int p = 0; p <= kMaxPriority; ++p)
    n += count_tasks(priority_dir(root_, p));
  return n;
}

std::size_t MetaqQueue::working() const {
  return count_tasks(fs::path(root_) / "working");
}

std::size_t MetaqQueue::finished() const {
  return count_tasks(fs::path(root_) / "finished");
}

}  // namespace femto::jm
