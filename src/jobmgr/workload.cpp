#include "jobmgr/workload.hpp"

#include <cmath>

#include "lattice/rng.hpp"

namespace femto::jm {

std::vector<Task> make_campaign(const WorkloadOptions& opts) {
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(
      opts.n_propagators * (opts.with_contractions ? 2 : 1)));
  int next_id = 0;
  for (int p = 0; p < opts.n_propagators; ++p) {
    Xoshiro256 rng(opts.seed, static_cast<std::uint64_t>(p), 0x30B);
    Task solve;
    solve.id = next_id++;
    solve.kind = TaskKind::GpuSolve;
    solve.nodes = opts.nodes_per_solve;
    solve.gpus_per_node = opts.gpus_per_node;
    solve.cpu_slots_per_node = 4;
    // Lognormal duration: solves vary with the gauge configuration.
    solve.duration = opts.solve_seconds *
                     std::exp(opts.duration_jitter * rng.gaussian());
    tasks.push_back(solve);

    if (opts.with_contractions) {
      Task contraction;
      contraction.id = next_id++;
      contraction.kind = TaskKind::CpuContraction;
      contraction.nodes = 1;
      contraction.gpus_per_node = 0;
      contraction.cpu_slots_per_node = opts.contraction_cpu_slots;
      contraction.duration =
          opts.contraction_seconds *
          std::exp(0.5 * opts.duration_jitter * rng.gaussian());
      contraction.deps = {solve.id};
      tasks.push_back(contraction);
    }
  }
  return tasks;
}

}  // namespace femto::jm
