#pragma once
// METAQ's actual mechanism, reproduced: "a set of shell scripts that forms
// a middle layer between the batch scheduler and the user's computational
// job scripts" [14].  Tasks are FILES in priority directories; a worker
// inside a batch allocation claims one by atomically renaming it into the
// working directory, runs it, and moves it to finished.  Because the state
// lives on the filesystem, the queue is hardware-agnostic and multiple
// allocations can drain it concurrently — both METAQ's strength and the
// source of its fragmentation weakness (no placement knowledge).
//
// Layout under the queue root:
//   priority/<p>/<name>.task    pending (lower p drains first)
//   working/<name>.task         claimed
//   finished/<name>.task        done
//
// Task files are the key=value format of the node-description parser.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/check.hpp"
#include "jobmgr/task.hpp"

namespace femto::jm {

struct QueuedTask {
  std::string name;  ///< file stem, unique per submission
  Task task;
};

class MetaqQueue {
 public:
  /// Opens (creating if needed) a queue rooted at @p root.
  explicit MetaqQueue(std::string root);

  const std::string& root() const { return root_; }

  /// Drop a task file into the queue.  Lower priority numbers drain
  /// first (METAQ's priority/ subdirectories).
  std::string submit(const Task& t, int priority = 5);

  /// Worker side: claim the first pending task (priority order, then
  /// name order) that fits within @p free_nodes, by atomic rename.
  /// Returns nullopt when nothing claimable exists.  Safe to call from
  /// many workers concurrently — rename races lose gracefully.
  std::optional<QueuedTask> claim(int free_nodes);

  /// Mark a claimed task finished.
  void finish(const QueuedTask& t);

  /// Requeue a claimed task (worker died / node reclaimed).
  void requeue(const QueuedTask& t, int priority = 5);

  std::size_t pending() const;
  std::size_t working() const;
  std::size_t finished() const;

  /// Serialise / parse one task file body.
  static std::string format_task(const Task& t);
  static Task parse_task(const std::string& text);

 private:
  const std::string root_;

  // submit() may be called from several drivers at once (the queue is
  // explicitly multi-client); the filesystem rename protocol handles
  // cross-process races, but the per-instance name counter needs a lock.
  std::mutex mu_;
  int next_id_ FEMTO_GUARDED_BY(mu_) = 0;
  // Femtoscope causal links (DESIGN.md §15): submit() records a flow-out
  // span and parks (flow id, submit time) here under the task name; the
  // claim() winner consumes the entry and records the matching flow-in
  // whose duration is the task's time-in-queue.  Only same-instance
  // submit->claim pairs link (cross-process claims see no entry and
  // trace flowless, matching the filesystem protocol's ignorance).
  std::map<std::string, std::pair<std::uint64_t, std::int64_t>> flows_
      FEMTO_GUARDED_BY(mu_);
};

}  // namespace femto::jm
