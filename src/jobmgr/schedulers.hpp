#pragma once
// The three scheduling strategies compared in the paper (S V, "Management
// and Backfilling of Tasks"), all executed on the discrete-event engine
// against the simulated cluster:
//
//  * run_naive_bundling — "simply collecting and simultaneously launching
//    HPC steps, and waiting for their completion": every batch waits for
//    its slowest member, wasting 20-25% of the allocation.
//
//  * run_metaq — METAQ-style backfilling: a greedy middle layer that
//    starts any ready task whenever enough nodes are free.  Recovers the
//    idle time, but (a) every task pays an mpirun invocation through the
//    contended service nodes and (b) node assignments fragment as
//    different-sized jobs complete, so placements cross locality blocks
//    and comm-heavy tasks slow down.
//
//  * run_mpi_jm — the paper's contribution: nodes are organised into lumps
//    (manager groups, started in parallel, so startup on thousands of
//    nodes takes minutes) subdivided into blocks sized to the jobs;
//    placements never cross block boundaries (no fragmentation), tasks
//    start via cheap in-lump MPI_Comm_spawn, lumps that fail to start are
//    simply dropped, and CPU-only contractions are co-scheduled on nodes
//    whose GPUs are busy so their cost is amortised to zero.

#include "cluster/cluster.hpp"
#include "jobmgr/task.hpp"
#include "simevent/engine.hpp"

namespace femto::jm {

struct NaiveOptions {
  /// Per-batch job submission overhead (scheduler wait, startup).
  double batch_launch_seconds = 60.0;
};

struct MetaqOptions {
  /// mpirun invocation cost per task ("taxing on the service nodes").
  double mpirun_seconds = 8.0;
  /// Max concurrent mpirun launches the service nodes can process.
  int service_node_capacity = 4;
  /// Slowdown multiplier for comm-heavy GPU tasks whose placement spans
  /// locality blocks (fragmented placements).
  double cross_block_penalty = 1.12;
};

struct MpiJmOptions {
  int lump_nodes = 128;           ///< nodes per manager lump
  double lump_start_seconds = 45.0;   ///< per-lump parallel startup
  double lump_start_jitter = 0.3;     ///< lognormal sigma
  double connect_seconds = 20.0;  ///< DPM connect of all lumps (serialised
                                  ///< but cheap; < 1 minute at scale)
  double spawn_seconds = 1.0;     ///< MPI_Comm_spawn_multiple per task
  /// Throughput factor for the MPI build (MVAPICH2 needed for DPM was not
  /// fully tuned on Sierra: paper S VII, 15% vs 20% of peak at scale).
  double mpi_rate_factor = 1.0;
  bool coschedule_cpu_tasks = true;
};

ScheduleReport run_naive_bundling(cluster::Cluster& cl,
                                  const std::vector<Task>& tasks,
                                  const NaiveOptions& opts = {});

ScheduleReport run_metaq(cluster::Cluster& cl, const std::vector<Task>& tasks,
                         const MetaqOptions& opts = {});

ScheduleReport run_mpi_jm(cluster::Cluster& cl,
                          const std::vector<Task>& tasks,
                          const MpiJmOptions& opts = {});

}  // namespace femto::jm
