#include "autotune/policy_tunable.hpp"

#include <sstream>

#include "comm/communicator.hpp"
#include "comm/process_grid.hpp"

namespace femto::tune {

namespace {
constexpr std::array<comm::CommPolicy, 3> kPolicies{
    comm::CommPolicy::HostStaged, comm::CommPolicy::ZeroCopy,
    comm::CommPolicy::DirectRdma};
constexpr std::array<comm::Granularity, 2> kGrans{
    comm::Granularity::Fused, comm::Granularity::PerDimension};
}  // namespace

std::string HaloPolicyTunable::key() const {
  std::ostringstream os;
  os << "halo-policy,grid=" << grid_dims_[0] << "x" << grid_dims_[1] << "x"
     << grid_dims_[2] << "x" << grid_dims_[3] << ",local=" << local_[0]
     << "x" << local_[1] << "x" << local_[2] << "x" << local_[3]
     << ",reals=" << n_reals_;
  return os.str();
}

std::vector<TuneParam> HaloPolicyTunable::candidates() const {
  std::vector<TuneParam> cands;
  for (std::size_t p = 0; p < kPolicies.size(); ++p)
    for (std::size_t g = 0; g < kGrans.size(); ++g) {
      TuneParam tp;
      tp.knobs["policy"] = static_cast<std::int64_t>(p);
      tp.knobs["granularity"] = static_cast<std::int64_t>(g);
      cands.push_back(tp);
    }
  return cands;
}

PolicyChoice HaloPolicyTunable::decode(const TuneParam& p) {
  PolicyChoice c;
  c.policy = kPolicies[static_cast<std::size_t>(p.get("policy", 1))];
  c.granularity = kGrans[static_cast<std::size_t>(p.get("granularity", 0))];
  return c;
}

void HaloPolicyTunable::apply(const TuneParam& p) {
  const PolicyChoice choice = decode(p);
  comm::ProcessGrid grid(grid_dims_);
  comm::run_ranks(grid.size(), [&](comm::RankHandle& h) {
    comm::HaloField field(local_, n_reals_);
    comm::HaloExchanger ex(grid, choice.policy, choice.granularity);
    ex.exchange(h, field);
  });
}

std::int64_t HaloPolicyTunable::bytes_per_call() const {
  std::int64_t vol = 1;
  for (int d : local_) vol *= d;
  std::int64_t bytes = 0;
  int ranks = 1;
  for (int d : grid_dims_) ranks *= d;
  for (int mu = 0; mu < 4; ++mu) {
    if (grid_dims_[static_cast<std::size_t>(mu)] == 1) continue;
    bytes += 2 * (vol / local_[static_cast<std::size_t>(mu)]) * n_reals_ * 8;
  }
  return bytes * ranks;
}

PolicyChoice tuned_halo_policy(std::array<int, 4> grid_dims,
                               std::array<int, 4> local_extents,
                               int n_reals) {
  HaloPolicyTunable t(grid_dims, local_extents, n_reals);
  const TuneEntry& e = Autotuner::global().tune(t);
  return HaloPolicyTunable::decode(e.param);
}

}  // namespace femto::tune
