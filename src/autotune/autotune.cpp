#include "autotune/autotune.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/wallclock.hpp"

namespace femto::tune {

std::string TuneParam::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : knobs) {
    if (!first) os << ",";
    os << name << "=" << value;
    first = false;
  }
  return os.str();
}

Autotuner& Autotuner::global() {
  static Autotuner tuner;
  return tuner;
}

const TuneEntry& Autotuner::tune(Tunable& t) {
  const std::string key = t.key();
  // The kernel name is the key up to the first ',' (the remainder encodes
  // geometry/precision); a cached sibling with the same name but a
  // different key means a geometry change invalidated that entry.
  std::string stale_key;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      ++it->second.hits;
      obs::counter("autotune.cache_hits").add();
      return it->second;
    }
    const std::string prefix = key.substr(0, key.find(',')) + ",";
    for (const auto& [other, e] : cache_) {
      if (other.size() > prefix.size() &&
          other.compare(0, prefix.size(), prefix) == 0) {
        stale_key = other;
        break;
      }
    }
  }
  if (!stale_key.empty())
    FEMTO_LOG_WARN("autotune",
                   "cache entry '" << stale_key
                                   << "' invalidated by geometry change; "
                                      "re-tuning for key '"
                                   << key << "'");
  // Miss: brute-force outside the lock (searches can be slow; concurrent
  // misses on the same key just race to insert the same answer).
  const obs::Stopwatch sw;
  TuneEntry entry = search(t);
  entry.search_seconds = sw.seconds();
  obs::counter("autotune.cache_misses").add();
  obs::histogram("autotune.search_us")
      .observe(static_cast<std::int64_t>(entry.search_seconds * 1e6));
  FEMTO_LOG_DEBUG("autotune",
                  "tuned '" << key << "' in " << entry.search_seconds
                            << " s (" << entry.candidates_tried
                            << " candidates): " << entry.param.to_string()
                            << ", " << entry.gflops << " GFLOP/s");
  std::lock_guard<std::mutex> lk(mu_);
  ++misses_;
  auto [it, inserted] = cache_.emplace(key, std::move(entry));
  (void)inserted;
  return it->second;
}

TuneEntry Autotuner::search(Tunable& t) const {
  FEMTO_TRACE_SCOPE("autotune", "search");
  t.backup();
  TuneEntry best;
  best.seconds = std::numeric_limits<double>::infinity();
  const auto cands = t.candidates();
  for (const auto& p : cands) {
    // Warm-up call, then take the min over reps_ timed calls.
    t.apply(p);
    double best_time = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps_; ++r) {
      const obs::Stopwatch sw;
      t.apply(p);
      const double dt = sw.seconds();
      best_time = std::min(best_time, dt);
    }
    if (best_time < best.seconds) {
      best.seconds = best_time;
      best.param = p;
    }
  }
  t.restore();
  best.candidates_tried = static_cast<int>(cands.size());
  if (best.seconds > 0 && best.seconds < 1e30) {
    best.gflops = static_cast<double>(t.flops_per_call()) / best.seconds / 1e9;
    best.gbytes = static_cast<double>(t.bytes_per_call()) / best.seconds / 1e9;
  }
  return best;
}

bool Autotuner::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return cache_.count(key) > 0;
}

void Autotuner::insert(const std::string& key, TuneEntry entry) {
  std::lock_guard<std::mutex> lk(mu_);
  cache_[key] = std::move(entry);
}

std::size_t Autotuner::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cache_.size();
}

std::int64_t Autotuner::cache_hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

std::int64_t Autotuner::cache_misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

void Autotuner::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  cache_.clear();
  hits_ = misses_ = 0;
}

namespace {
// v2 appends per-entry hit counts and brute-force search wall time to the
// persisted metadata; v1 files (no such columns) still load.
constexpr char kMagicV1[] = "femtotune-v1";
constexpr char kMagicV2[] = "femtotune-v2";
}

void Autotuner::save(const std::string& path) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ofstream out(path);
  out << kMagicV2 << "\n";
  for (const auto& [key, e] : cache_) {
    out << key << "\t" << e.seconds << "\t" << e.gflops << "\t" << e.gbytes
        << "\t" << e.candidates_tried << "\t" << e.hits << "\t"
        << e.search_seconds << "\t" << e.param.knobs.size();
    for (const auto& [name, value] : e.param.knobs)
      out << "\t" << name << "\t" << value;
    out << "\n";
  }
}

int Autotuner::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string magic;
  std::getline(in, magic);
  const bool v2 = magic == kMagicV2;
  if (!v2 && magic != kMagicV1) return 0;
  int loaded = 0;
  std::string line;
  std::lock_guard<std::mutex> lk(mu_);
  while (std::getline(in, line)) {
    std::istringstream is(line);
    std::string key;
    if (!std::getline(is, key, '\t')) continue;
    TuneEntry e;
    std::size_t n_knobs = 0;
    is >> e.seconds >> e.gflops >> e.gbytes >> e.candidates_tried;
    if (v2) is >> e.hits >> e.search_seconds;
    is >> n_knobs;
    for (std::size_t k = 0; k < n_knobs; ++k) {
      std::string name;
      std::int64_t value;
      is >> name >> value;
      e.param.knobs[name] = value;
    }
    if (!is.fail()) {
      cache_[key] = std::move(e);
      ++loaded;
    }
  }
  FEMTO_LOG_INFO("autotune",
                 "loaded " << loaded << " tune-cache entries from '" << path
                           << "' (" << magic << ")");
  return loaded;
}

}  // namespace femto::tune
