#include "autotune/dslash_tunable.hpp"

#include <sstream>

#include "lattice/flops.hpp"
#include "obs/metrics.hpp"
#include "simd/vec.hpp"

namespace femto::tune {

std::vector<GaugeFormat> format_set_members(FormatSet s) {
  std::vector<GaugeFormat> f = {GaugeFormat::kFull18};
  if (s == FormatSet::kExact || s == FormatSet::kAll)
    f.push_back(GaugeFormat::kRecon12);
  if (s == FormatSet::kAll) {
    f.push_back(GaugeFormat::kRecon8);
    f.push_back(GaugeFormat::kFixed12);
  }
  return f;
}

namespace {

/// Dispatch one dslash on the container matching @p fmt, building the
/// compressed copy on first use (reused across reps and candidates; the
/// one-time compression cost is amortised away by the min-of-reps timer).
template <typename T>
void apply_dslash_fmt(GaugeFormat fmt, const GaugeField<T>& u,
                      std::unique_ptr<CompressedGaugeField<T>>& r12,
                      std::unique_ptr<Recon8GaugeField<T>>& r8,
                      std::unique_ptr<Fixed12GaugeField<T>>& x12,
                      const SpinorView<T>& out, const SpinorView<const T>& in,
                      int out_parity, const DslashTuning& tune) {
  switch (fmt) {
    case GaugeFormat::kRecon12:
      if (!r12) r12 = std::make_unique<CompressedGaugeField<T>>(u);
      dslash<T>(out, *r12, in, out_parity, false, tune);
      break;
    case GaugeFormat::kRecon8:
      if (!r8) r8 = std::make_unique<Recon8GaugeField<T>>(u);
      dslash<T>(out, *r8, in, out_parity, false, tune);
      break;
    case GaugeFormat::kFixed12:
      if (!x12) x12 = std::make_unique<Fixed12GaugeField<T>>(u);
      dslash<T>(out, *x12, in, out_parity, false, tune);
      break;
    case GaugeFormat::kFull18:
      dslash<T>(out, u, in, out_parity, false, tune);
      break;
  }
}

template <typename T>
void apply_dslash_fmt_multi(GaugeFormat fmt, const GaugeField<T>& u,
                            std::unique_ptr<CompressedGaugeField<T>>& r12,
                            std::unique_ptr<Recon8GaugeField<T>>& r8,
                            std::unique_ptr<Fixed12GaugeField<T>>& x12,
                            std::span<const SpinorView<T>> out,
                            std::span<const SpinorView<const T>> in,
                            int out_parity, const DslashTuning& tune) {
  switch (fmt) {
    case GaugeFormat::kRecon12:
      if (!r12) r12 = std::make_unique<CompressedGaugeField<T>>(u);
      dslash_multi<T>(out, *r12, in, out_parity, false, tune);
      break;
    case GaugeFormat::kRecon8:
      if (!r8) r8 = std::make_unique<Recon8GaugeField<T>>(u);
      dslash_multi<T>(out, *r8, in, out_parity, false, tune);
      break;
    case GaugeFormat::kFixed12:
      if (!x12) x12 = std::make_unique<Fixed12GaugeField<T>>(u);
      dslash_multi<T>(out, *x12, in, out_parity, false, tune);
      break;
    case GaugeFormat::kFull18:
      dslash_multi<T>(out, u, in, out_parity, false, tune);
      break;
  }
}

}  // namespace

template <typename T>
std::string DslashTunable<T>::key() const {
  std::ostringstream os;
  const auto& d = u_->geom();
  // The ISA/width tag keeps femtotune cache entries from a vectorized
  // build out of a scalar (FEMTO_SIMD=OFF) build and vice versa: the
  // variant knob below only means something at the width it was tuned at.
  os << "dslash,vol=" << d.extent(0) << "x" << d.extent(1) << "x"
     << d.extent(2) << "x" << d.extent(3) << ",l5=" << l5_
     << ",parity=" << out_parity_ << ",prec=" << sizeof(T)
     << ",simd=" << simd::kIsaName << "/" << simd::kWidth<T>
     << ",fmt=" << static_cast<int>(formats_);
  return os.str();
}

template <typename T>
std::vector<TuneParam> DslashTunable<T>::candidates() const {
  // Variant is the outer loop (scalar first, so the first candidate is the
  // reference kernel at the smallest grain) and the grain sweep is inner,
  // ending with the whole half-volume in one chunk.  The vector variants
  // only enter the search when the build actually has lanes; at W == 1
  // they are the scalar arithmetic with extra gather overhead.
  std::vector<DslashVariant> variants = {DslashVariant::kScalar};
  if constexpr (simd::kWidth<T> > 1) {
    variants.push_back(DslashVariant::kVector);
    variants.push_back(DslashVariant::kVectorBlocked);
  }
  std::vector<TuneParam> cands;
  const std::int64_t volh = u_->geom().half_volume();
  // Format is the outermost axis (full18 first, so the reference kernel on
  // reference storage leads the search); every (format, variant) pair gets
  // the identical grain sweep.
  for (const GaugeFormat f : format_set_members(formats_)) {
    for (const DslashVariant v : variants) {
      std::size_t base = cands.size();
      for (std::int64_t grain = 16; grain <= volh; grain *= 4) {
        TuneParam p;
        p.knobs["format"] = static_cast<std::int64_t>(f);
        p.knobs["variant"] = static_cast<std::int64_t>(v);
        p.knobs["grain"] = grain;
        cands.push_back(p);
      }
      TuneParam whole;
      whole.knobs["format"] = static_cast<std::int64_t>(f);
      whole.knobs["variant"] = static_cast<std::int64_t>(v);
      whole.knobs["grain"] = volh;
      if (cands.size() == base || !(cands.back() == whole))
        cands.push_back(whole);
    }
  }
  return cands;
}

template <typename T>
void DslashTunable<T>::apply(const TuneParam& p) {
  DslashTuning tune;
  tune.grain = static_cast<std::size_t>(p.get("grain", 512));
  tune.variant = static_cast<DslashVariant>(p.get("variant", 0));
  tune.format = static_cast<GaugeFormat>(p.get("format", 0));
  apply_dslash_fmt<T>(tune.format, *u_, u_r12_, u_r8_, u_x12_, view(out_),
                      cview(in_), out_parity_, tune);
}

template <typename T>
std::int64_t DslashTunable<T>::flops_per_call() const {
  return flops::kWilsonDslashPerSite * u_->geom().half_volume() * l5_;
}

template <typename T>
std::int64_t DslashTunable<T>::bytes_per_call() const {
  // Read 8 neighbour spinors + 8 links, write 1 spinor, per site and slice
  // (links re-read per slice in this layout).
  const std::int64_t volh = u_->geom().half_volume();
  const std::int64_t spinor = kSpinorReals * sizeof(T);
  const std::int64_t link = kLinkReals * sizeof(T);
  return volh * l5_ * (9 * spinor + 8 * link);
}

template <typename T>
DslashTuning tuned_dslash_grain(std::shared_ptr<const GaugeField<T>> u,
                                int l5, int out_parity, FormatSet formats) {
  DslashTunable<T> tunable(std::move(u), l5, out_parity, formats);
  const TuneEntry& e = Autotuner::global().tune(tunable);
  DslashTuning t;
  t.grain = static_cast<std::size_t>(e.param.get("grain", 512));
  t.variant = static_cast<DslashVariant>(e.param.get("variant", 0));
  t.format = static_cast<GaugeFormat>(e.param.get("format", 0));
  // Surface the winners in the femtoscope registry; the run report's simd
  // block decodes the variant and format ordinals (see obs/report.cpp).
  const char* prec = sizeof(T) == 4 ? "f" : "d";
  obs::gauge(std::string("dslash.variant_") + prec)
      .set(static_cast<double>(e.param.get("variant", 0)));
  obs::gauge(std::string("dslash.format_") + prec)
      .set(static_cast<double>(e.param.get("format", 0)));
  obs::gauge(std::string("dslash.gbytes_") + prec).set(e.gbytes);
  return t;
}

template <typename T>
DslashMultiTunable<T>::DslashMultiTunable(
    std::shared_ptr<const GaugeField<T>> u, int l5, int out_parity,
    std::size_t bmax, FormatSet formats)
    : u_(std::move(u)),
      l5_(l5),
      out_parity_(out_parity),
      bmax_(bmax),
      formats_(formats) {
  FEMTO_CHECK(bmax_ >= 1, "DslashMultiTunable: bmax must be at least 1");
  const Subset in_sub = out_parity == 0 ? Subset::Odd : Subset::Even;
  const Subset out_sub = out_parity == 0 ? Subset::Even : Subset::Odd;
  in_.reserve(bmax_);
  out_.reserve(bmax_);
  for (std::size_t r = 0; r < bmax_; ++r) {
    in_.emplace_back(u_->geom_ptr(), l5, in_sub);
    out_.emplace_back(u_->geom_ptr(), l5, out_sub);
    in_.back().gaussian(0xD51A5 + static_cast<std::uint64_t>(r));
  }
}

template <typename T>
std::string DslashMultiTunable<T>::key() const {
  std::ostringstream os;
  const auto& d = u_->geom();
  os << "dslash_multi,vol=" << d.extent(0) << "x" << d.extent(1) << "x"
     << d.extent(2) << "x" << d.extent(3) << ",l5=" << l5_
     << ",parity=" << out_parity_ << ",prec=" << sizeof(T)
     << ",bmax=" << bmax_ << ",simd=" << simd::kIsaName << "/"
     << simd::kWidth<T> << ",fmt=" << static_cast<int>(formats_);
  return os.str();
}

template <typename T>
std::vector<TuneParam> DslashMultiTunable<T>::candidates() const {
  std::vector<DslashVariant> variants = {DslashVariant::kScalar};
  if constexpr (simd::kWidth<T> > 1) {
    variants.push_back(DslashVariant::kVector);
    variants.push_back(DslashVariant::kVectorBlocked);
  }
  std::vector<TuneParam> cands;
  const std::int64_t volh = u_->geom().half_volume();
  for (const GaugeFormat f : format_set_members(formats_)) {
    for (const DslashVariant v : variants) {
      for (std::size_t nrhs = 1; nrhs <= bmax_; nrhs *= 2) {
        std::size_t base = cands.size();
        for (std::int64_t grain = 16; grain <= volh; grain *= 4) {
          TuneParam p;
          p.knobs["format"] = static_cast<std::int64_t>(f);
          p.knobs["variant"] = static_cast<std::int64_t>(v);
          p.knobs["grain"] = grain;
          p.knobs["nrhs"] = static_cast<std::int64_t>(nrhs);
          cands.push_back(p);
        }
        TuneParam whole;
        whole.knobs["format"] = static_cast<std::int64_t>(f);
        whole.knobs["variant"] = static_cast<std::int64_t>(v);
        whole.knobs["grain"] = volh;
        whole.knobs["nrhs"] = static_cast<std::int64_t>(nrhs);
        if (cands.size() == base || !(cands.back() == whole))
          cands.push_back(whole);
      }
    }
  }
  return cands;
}

template <typename T>
void DslashMultiTunable<T>::apply(const TuneParam& p) {
  DslashTuning tune;
  tune.grain = static_cast<std::size_t>(p.get("grain", 512));
  tune.variant = static_cast<DslashVariant>(p.get("variant", 0));
  tune.format = static_cast<GaugeFormat>(p.get("format", 0));
  const std::size_t nrhs = static_cast<std::size_t>(p.get("nrhs", 1));
  for (std::size_t r0 = 0; r0 < bmax_; r0 += nrhs) {
    const std::size_t nb = std::min(nrhs, bmax_ - r0);
    std::vector<SpinorView<T>> outs;
    std::vector<SpinorView<const T>> ins;
    outs.reserve(nb);
    ins.reserve(nb);
    for (std::size_t i = 0; i < nb; ++i) {
      outs.push_back(view(out_[r0 + i]));
      ins.push_back(cview(in_[r0 + i]));
    }
    apply_dslash_fmt_multi<T>(tune.format, *u_, u_r12_, u_r8_, u_x12_, outs,
                              ins, out_parity_, tune);
  }
}

template <typename T>
std::int64_t DslashMultiTunable<T>::flops_per_call() const {
  return static_cast<std::int64_t>(bmax_) * flops::kWilsonDslashPerSite *
         u_->geom().half_volume() * l5_;
}

template <typename T>
std::int64_t DslashMultiTunable<T>::bytes_per_call() const {
  // Charged with the unamortised (B=1) traffic model so candidate gbytes
  // are comparable across batch sizes: a candidate that amortises link
  // loads shows up as HIGHER effective bandwidth, not lower traffic.
  const std::int64_t volh = u_->geom().half_volume();
  const std::int64_t spinor = kSpinorReals * sizeof(T);
  const std::int64_t link = kLinkReals * sizeof(T);
  return static_cast<std::int64_t>(bmax_) * volh * l5_ *
         (9 * spinor + 8 * link);
}

template <typename T>
MultiRhsTuning tuned_multi_rhs(std::shared_ptr<const GaugeField<T>> u,
                               int l5, std::size_t bmax, int out_parity,
                               FormatSet formats) {
  DslashMultiTunable<T> tunable(std::move(u), l5, out_parity, bmax, formats);
  const TuneEntry& e = Autotuner::global().tune(tunable);
  MultiRhsTuning t;
  t.dslash.grain = static_cast<std::size_t>(e.param.get("grain", 512));
  t.dslash.variant = static_cast<DslashVariant>(e.param.get("variant", 0));
  t.dslash.format = static_cast<GaugeFormat>(e.param.get("format", 0));
  t.nrhs = static_cast<std::size_t>(e.param.get("nrhs", 1));
  const char* prec = sizeof(T) == 4 ? "f" : "d";
  obs::gauge(std::string("dslash_multi.nrhs_") + prec)
      .set(static_cast<double>(t.nrhs));
  obs::gauge(std::string("dslash_multi.variant_") + prec)
      .set(static_cast<double>(e.param.get("variant", 0)));
  obs::gauge(std::string("dslash_multi.format_") + prec)
      .set(static_cast<double>(e.param.get("format", 0)));
  obs::gauge(std::string("dslash_multi.gbytes_") + prec).set(e.gbytes);
  return t;
}

template class DslashTunable<double>;
template class DslashTunable<float>;
template DslashTuning tuned_dslash_grain<double>(
    std::shared_ptr<const GaugeField<double>>, int, int, FormatSet);
template DslashTuning tuned_dslash_grain<float>(
    std::shared_ptr<const GaugeField<float>>, int, int, FormatSet);
template class DslashMultiTunable<double>;
template class DslashMultiTunable<float>;
template MultiRhsTuning tuned_multi_rhs<double>(
    std::shared_ptr<const GaugeField<double>>, int, std::size_t, int,
    FormatSet);
template MultiRhsTuning tuned_multi_rhs<float>(
    std::shared_ptr<const GaugeField<float>>, int, std::size_t, int,
    FormatSet);

}  // namespace femto::tune
