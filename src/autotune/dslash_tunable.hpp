#pragma once
// Autotuned dslash: sweeps the stencil kernel's work-partition grain (our
// analogue of a CUDA launch geometry) and, when the build has vector lanes,
// the kernel variant (scalar / fifth-dim-vectorized / lane-blocked), and
// remembers the winner per (volume, L5, precision, parity, ISA) key.  This
// is the integration point between femtotune and the production kernels:
// DwfSolver and the benches call tuned_dslash_grain() to pick launch
// parameters exactly the way Chroma+QUDA pick theirs.

#include <memory>
#include <string>

#include "autotune/autotune.hpp"
#include "dirac/wilson.hpp"
#include "lattice/field.hpp"

namespace femto::tune {

/// A Tunable wrapping one dslash application on scratch fields.
template <typename T>
class DslashTunable : public Tunable {
 public:
  DslashTunable(std::shared_ptr<const GaugeField<T>> u, int l5,
                int out_parity)
      : u_(std::move(u)),
        l5_(l5),
        out_parity_(out_parity),
        in_(u_->geom_ptr(), l5,
            out_parity == 0 ? Subset::Odd : Subset::Even),
        out_(u_->geom_ptr(), l5,
             out_parity == 0 ? Subset::Even : Subset::Odd) {
    in_.gaussian(0xD51A5);
  }

  std::string key() const override;
  std::vector<TuneParam> candidates() const override;
  void apply(const TuneParam& p) override;
  std::int64_t flops_per_call() const override;
  std::int64_t bytes_per_call() const override;

 private:
  std::shared_ptr<const GaugeField<T>> u_;
  int l5_;
  int out_parity_;
  SpinorField<T> in_, out_;
};

/// Convenience: returns the tuned grain and kernel variant for this
/// gauge/l5/parity, running the brute-force search on first call.  Also
/// publishes the winning variant and its achieved GB/s as femtoscope
/// gauges (dslash.variant_{f,d}, dslash.gbytes_{f,d}) so run reports show
/// what the tuner picked.
template <typename T>
DslashTuning tuned_dslash_grain(std::shared_ptr<const GaugeField<T>> u,
                                int l5, int out_parity = 0);

extern template class DslashTunable<double>;
extern template class DslashTunable<float>;
extern template DslashTuning tuned_dslash_grain<double>(
    std::shared_ptr<const GaugeField<double>>, int, int);
extern template DslashTuning tuned_dslash_grain<float>(
    std::shared_ptr<const GaugeField<float>>, int, int);

}  // namespace femto::tune
