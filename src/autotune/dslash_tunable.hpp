#pragma once
// Autotuned dslash: sweeps the stencil kernel's work-partition grain (our
// analogue of a CUDA launch geometry) and, when the build has vector lanes,
// the kernel variant (scalar / fifth-dim-vectorized / lane-blocked), and
// remembers the winner per (volume, L5, precision, parity, ISA) key.  This
// is the integration point between femtotune and the production kernels:
// DwfSolver and the benches call tuned_dslash_grain() to pick launch
// parameters exactly the way Chroma+QUDA pick theirs.

#include <memory>
#include <string>

#include "autotune/autotune.hpp"
#include "dirac/wilson.hpp"
#include "lattice/field.hpp"

namespace femto::tune {

/// Which gauge storage tiers a tuning sweep may race (DESIGN.md §16).
/// kFullOnly keeps the sweep on full-18 links (the double operator: its
/// reliable updates must not see reconstruction error), kExact adds
/// recon12 (exact up to rounding), kAll adds the approximate tiers
/// recon8/fixed12 (the float inner-iteration operator, where
/// half-precision spinors are already allowed).
enum class FormatSet : int { kFullOnly = 0, kExact = 1, kAll = 2 };

/// The formats a FormatSet admits, reference tier first.
std::vector<GaugeFormat> format_set_members(FormatSet s);

/// A Tunable wrapping one dslash application on scratch fields.
template <typename T>
class DslashTunable : public Tunable {
 public:
  DslashTunable(std::shared_ptr<const GaugeField<T>> u, int l5,
                int out_parity, FormatSet formats = FormatSet::kFullOnly)
      : u_(std::move(u)),
        l5_(l5),
        out_parity_(out_parity),
        formats_(formats),
        in_(u_->geom_ptr(), l5,
            out_parity == 0 ? Subset::Odd : Subset::Even),
        out_(u_->geom_ptr(), l5,
             out_parity == 0 ? Subset::Even : Subset::Odd) {
    in_.gaussian(0xD51A5);
  }

  std::string key() const override;
  std::vector<TuneParam> candidates() const override;
  void apply(const TuneParam& p) override;
  std::int64_t flops_per_call() const override;
  std::int64_t bytes_per_call() const override;

 private:
  std::shared_ptr<const GaugeField<T>> u_;
  int l5_;
  int out_parity_;
  FormatSet formats_;
  SpinorField<T> in_, out_;
  // Per-tier compressed copies of u_, built lazily by apply() when the
  // sweep first races that tier (then reused by every rep/candidate).
  std::unique_ptr<CompressedGaugeField<T>> u_r12_;
  std::unique_ptr<Recon8GaugeField<T>> u_r8_;
  std::unique_ptr<Fixed12GaugeField<T>> u_x12_;
};

/// Convenience: returns the tuned grain and kernel variant for this
/// gauge/l5/parity, running the brute-force search on first call.  Also
/// publishes the winning variant and its achieved GB/s as femtoscope
/// gauges (dslash.variant_{f,d}, dslash.gbytes_{f,d}) so run reports show
/// what the tuner picked.
template <typename T>
DslashTuning tuned_dslash_grain(std::shared_ptr<const GaugeField<T>> u,
                                int l5, int out_parity = 0,
                                FormatSet formats = FormatSet::kFullOnly);

/// Multi-RHS dslash tuning: the launch parameters PLUS the batch size the
/// sweep found fastest.  nrhs is the new autotune dimension the batched
/// solve service exposes (ISSUE: "candidates sweep B x grain x variant").
struct MultiRhsTuning {
  DslashTuning dslash;
  std::size_t nrhs = 1;
};

/// A Tunable wrapping a FIXED total of bmax dslash applications, issued as
/// ceil(bmax/nrhs) dslash_multi calls of batch nrhs.  Every candidate does
/// identical spinor arithmetic, so the timer compares per-batch launch
/// overhead and link amortisation fairly across batch sizes; the candidate
/// grid is the cross product nrhs x grain x variant and the cache key is
/// the single-RHS key extended with the batch bound.
template <typename T>
class DslashMultiTunable : public Tunable {
 public:
  DslashMultiTunable(std::shared_ptr<const GaugeField<T>> u, int l5,
                     int out_parity, std::size_t bmax,
                     FormatSet formats = FormatSet::kFullOnly);

  std::string key() const override;
  std::vector<TuneParam> candidates() const override;
  void apply(const TuneParam& p) override;
  std::int64_t flops_per_call() const override;
  std::int64_t bytes_per_call() const override;

 private:
  std::shared_ptr<const GaugeField<T>> u_;
  int l5_;
  int out_parity_;
  std::size_t bmax_;
  FormatSet formats_;
  std::vector<SpinorField<T>> in_, out_;
  std::unique_ptr<CompressedGaugeField<T>> u_r12_;
  std::unique_ptr<Recon8GaugeField<T>> u_r8_;
  std::unique_ptr<Fixed12GaugeField<T>> u_x12_;
};

/// Tuned batch size + launch parameters for dslash_multi against this
/// gauge/l5/parity with at most bmax right-hand sides per batch.  Runs the
/// brute-force sweep on first call (cached process-wide) and publishes the
/// winners as femtoscope gauges (dslash_multi.nrhs_{f,d},
/// dslash_multi.variant_{f,d}, dslash_multi.gbytes_{f,d}).
template <typename T>
MultiRhsTuning tuned_multi_rhs(std::shared_ptr<const GaugeField<T>> u,
                               int l5, std::size_t bmax, int out_parity = 0,
                               FormatSet formats = FormatSet::kFullOnly);

extern template class DslashTunable<double>;
extern template class DslashTunable<float>;
extern template DslashTuning tuned_dslash_grain<double>(
    std::shared_ptr<const GaugeField<double>>, int, int, FormatSet);
extern template DslashTuning tuned_dslash_grain<float>(
    std::shared_ptr<const GaugeField<float>>, int, int, FormatSet);
extern template class DslashMultiTunable<double>;
extern template class DslashMultiTunable<float>;
extern template MultiRhsTuning tuned_multi_rhs<double>(
    std::shared_ptr<const GaugeField<double>>, int, std::size_t, int,
    FormatSet);
extern template MultiRhsTuning tuned_multi_rhs<float>(
    std::shared_ptr<const GaugeField<float>>, int, std::size_t, int,
    FormatSet);

}  // namespace femto::tune
