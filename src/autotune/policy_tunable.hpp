#pragma once
// Communication-policy autotuning (paper S V): "applying the autotuner to
// the stencil-communication policy is very natural ... [it] enables us to
// always use the optimum communication strategy regardless of the machine
// topology and node count we are deployed on."
//
// The tunable's parameter space is the cross product
//   {host-staged, zero-copy, direct-rdma} x {fused, per-dimension};
// apply() runs a real collective halo exchange over the ranks-as-threads
// communicator (functional path), while the MACHINE-MODEL cost of each
// policy on Titan/Ray/Sierra/Summit is evaluated by femtomach (the two are
// combined in the benches).

#include <array>
#include <string>

#include "autotune/autotune.hpp"
#include "comm/halo.hpp"

namespace femto::tune {

/// Decodes the winning knobs of a policy tune into the policy pair.
struct PolicyChoice {
  comm::CommPolicy policy = comm::CommPolicy::ZeroCopy;
  comm::Granularity granularity = comm::Granularity::Fused;
};

/// Tunable over halo-exchange policies for a given local volume and
/// process grid.  Each apply() spawns the SPMD section and performs one
/// collective exchange with the candidate policy.
class HaloPolicyTunable : public Tunable {
 public:
  HaloPolicyTunable(std::array<int, 4> grid_dims,
                    std::array<int, 4> local_extents, int n_reals)
      : grid_dims_(grid_dims),
        local_(local_extents),
        n_reals_(n_reals) {}

  std::string key() const override;
  std::vector<TuneParam> candidates() const override;
  void apply(const TuneParam& p) override;

  std::int64_t bytes_per_call() const override;

  static PolicyChoice decode(const TuneParam& p);

 private:
  std::array<int, 4> grid_dims_;
  std::array<int, 4> local_;
  int n_reals_;
};

/// Tune (or look up) the best policy for this configuration.
PolicyChoice tuned_halo_policy(std::array<int, 4> grid_dims,
                               std::array<int, 4> local_extents,
                               int n_reals);

}  // namespace femto::tune
