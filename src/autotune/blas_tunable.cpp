#include "autotune/blas_tunable.hpp"

#include <sstream>

#include "lattice/blas.hpp"

namespace femto::tune {

const char* to_string(BlasKernel k) {
  switch (k) {
    case BlasKernel::AxpyNorm2: return "axpy_norm2";
    case BlasKernel::TripleCgUpdate: return "triple_cg_update";
    case BlasKernel::AxpyZpbx: return "axpy_zpbx";
    case BlasKernel::XpayRedot: return "xpay_redot";
    case BlasKernel::AxpbyNorm2: return "axpby_norm2";
    case BlasKernel::CaxpyNorm2: return "caxpy_norm2";
    default: return "cdot_norm2";
  }
}

template <typename T>
BlasTunable<T>::BlasTunable(std::shared_ptr<const Geometry> geom, int l5,
                            Subset subset, BlasKernel kernel)
    : kernel_(kernel),
      a_(geom, l5, subset),
      b_(geom, l5, subset),
      x_(geom, l5, subset),
      y_(geom, l5, subset),
      x_save_(geom, l5, subset),
      y_save_(geom, l5, subset) {
  a_.gaussian(0xB1A51);
  b_.gaussian(0xB1A52);
  x_.gaussian(0xB1A53);
  y_.gaussian(0xB1A54);
}

template <typename T>
std::string BlasTunable<T>::key() const {
  std::ostringstream os;
  const Geometry& d = a_.geom();
  os << "blas:" << to_string(kernel_) << ",vol=" << d.extent(0) << "x"
     << d.extent(1) << "x" << d.extent(2) << "x" << d.extent(3)
     << ",l5=" << a_.l5() << ",subset=" << static_cast<int>(a_.subset())
     << ",prec=" << sizeof(T);
  return os.str();
}

template <typename T>
std::vector<TuneParam> BlasTunable<T>::candidates() const {
  std::vector<TuneParam> cands;
  const std::int64_t reals = a_.reals();
  for (std::int64_t grain = 1024; grain <= reals; grain *= 4) {
    TuneParam p;
    p.knobs["grain"] = grain;
    cands.push_back(p);
  }
  TuneParam whole;
  whole.knobs["grain"] = reals;
  if (cands.empty() || !(cands.back() == whole)) cands.push_back(whole);
  return cands;
}

template <typename T>
void BlasTunable<T>::apply(const TuneParam& p) {
  const auto grain =
      static_cast<std::size_t>(p.get("grain", blas::kGrain));
  // Coefficients of magnitude 1/2 keep the repeatedly-updated scratch
  // fields bounded across the search.
  switch (kernel_) {
    case BlasKernel::AxpyNorm2:
      blas::axpy_norm2<T>(0.5, a_, x_, grain);
      break;
    case BlasKernel::TripleCgUpdate:
      blas::triple_cg_update<T>(0.5, a_, b_, x_, y_, grain);
      break;
    case BlasKernel::AxpyZpbx:
      blas::axpy_zpbx<T>(0.5, x_, y_, a_, -0.5, grain);
      break;
    case BlasKernel::XpayRedot:
      blas::xpay_redot<T>(a_, 0.5, x_, grain);
      break;
    case BlasKernel::AxpbyNorm2:
      blas::axpby_norm2<T>(0.5, a_, -0.5, x_, grain);
      break;
    case BlasKernel::CaxpyNorm2:
      blas::caxpy_norm2<T>({0.5, 0.25}, a_, x_, grain);
      break;
    case BlasKernel::CdotNorm2:
      blas::cdot_norm2<T>(a_, b_, grain);
      break;
  }
}

template <typename T>
void BlasTunable<T>::backup() {
  x_save_ = x_;
  y_save_ = y_;
}

template <typename T>
void BlasTunable<T>::restore() {
  x_ = x_save_;
  y_ = y_save_;
}

template <typename T>
std::int64_t BlasTunable<T>::flops_per_call() const {
  const std::int64_t n = a_.reals();
  switch (kernel_) {
    case BlasKernel::AxpyNorm2: return 4 * n;
    case BlasKernel::TripleCgUpdate: return 6 * n;
    case BlasKernel::AxpyZpbx: return 4 * n;
    case BlasKernel::XpayRedot: return 4 * n;
    case BlasKernel::AxpbyNorm2: return 5 * n;
    case BlasKernel::CaxpyNorm2: return 6 * n;
    default: return 6 * n;  // CdotNorm2
  }
}

template <typename T>
std::int64_t BlasTunable<T>::bytes_per_call() const {
  const std::int64_t nb = a_.reals() * static_cast<std::int64_t>(sizeof(T));
  switch (kernel_) {
    case BlasKernel::AxpyNorm2: return 3 * nb;
    case BlasKernel::TripleCgUpdate: return 6 * nb;
    case BlasKernel::AxpyZpbx: return 5 * nb;
    case BlasKernel::XpayRedot: return 3 * nb;
    case BlasKernel::AxpbyNorm2: return 3 * nb;
    case BlasKernel::CaxpyNorm2: return 3 * nb;
    default: return 2 * nb;  // CdotNorm2
  }
}

template <typename T>
std::size_t tuned_blas_grain(std::shared_ptr<const Geometry> geom, int l5,
                             Subset subset) {
  BlasTunable<T> triple(geom, l5, subset, BlasKernel::TripleCgUpdate);
  Autotuner::global().tune(triple);
  BlasTunable<T> zpbx(geom, l5, subset, BlasKernel::AxpyZpbx);
  Autotuner::global().tune(zpbx);
  BlasTunable<T> axn(std::move(geom), l5, subset, BlasKernel::AxpyNorm2);
  const TuneEntry& e = Autotuner::global().tune(axn);
  return static_cast<std::size_t>(e.param.get("grain", blas::kGrain));
}

template class BlasTunable<double>;
template class BlasTunable<float>;
template std::size_t tuned_blas_grain<double>(std::shared_ptr<const Geometry>,
                                              int, Subset);
template std::size_t tuned_blas_grain<float>(std::shared_ptr<const Geometry>,
                                             int, Subset);

}  // namespace femto::tune
