#pragma once
// femtotune: a run-time kernel autotuner modelled on QUDA's.
//
// From the paper (S IV, "GPU Kernel Autotuning"): "a brute-force search
// through launch parameter space is performed the first time an un-tuned
// kernel or algorithm is encountered.  Once the optimum launch
// configuration is known, this is stored in a std::map, and is
// subsequently looked up on demand...  Each entry in the map is given a
// unique identifier which stores the optimum launch parameters, as well as
// other metadata, such as performance metrics...  The class structure
// makes it easy to manage the backup/restore of input data in the case of
// data-destructive algorithms."
//
// We reproduce that architecture: a Tunable interface with a keyed cache,
// brute-force search, per-entry performance metadata, backup/restore
// hooks, and (de)serialisation of the cache so later runs skip tuning.
// Our "launch parameters" are the CPU kernel knobs (work-chunk grain,
// thread count) instead of CUDA block/grid shapes; the framework is
// identical.  The same machinery tunes the communication policy (S V,
// "Communication Autotuning") — see policy_tunable.hpp.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/check.hpp"

namespace femto::tune {

/// One point in a kernel's launch-parameter space: named integer knobs.
struct TuneParam {
  std::map<std::string, std::int64_t> knobs;

  std::int64_t get(const std::string& name, std::int64_t def = 0) const {
    auto it = knobs.find(name);
    return it == knobs.end() ? def : it->second;
  }

  std::string to_string() const;
  bool operator==(const TuneParam& o) const { return knobs == o.knobs; }
};

/// What a kernel must expose to be tunable.
class Tunable {
 public:
  virtual ~Tunable() = default;

  /// Unique cache key: kernel name + every parameter that changes the
  /// optimum (volume, precision, subset...).  QUDA calls this TuneKey.
  virtual std::string key() const = 0;

  /// The candidate launch-parameter space to brute-force.
  virtual std::vector<TuneParam> candidates() const = 0;

  /// Execute the kernel once with the given parameters.
  virtual void apply(const TuneParam& p) = 0;

  /// Hooks for data-destructive kernels: called before/after the search so
  /// tuning does not corrupt live fields.
  virtual void backup() {}
  virtual void restore() {}

  /// Optional metrics per apply() for the cache metadata.
  virtual std::int64_t flops_per_call() const { return 0; }
  virtual std::int64_t bytes_per_call() const { return 0; }
};

/// Cache entry: the winning parameters plus performance metadata.
struct TuneEntry {
  TuneParam param;
  double seconds = 0.0;    ///< best observed time per call
  double gflops = 0.0;
  double gbytes = 0.0;     ///< effective bandwidth
  int candidates_tried = 0;
  int hits = 0;               ///< lookups served from this entry
  double search_seconds = 0.0;  ///< wall time the brute-force search cost
};

/// The tuner: keyed cache + brute-force search.
class Autotuner {
 public:
  /// Process-wide instance (kernels share one cache, like QUDA).
  static Autotuner& global();

  Autotuner() = default;

  /// Look up the kernel's entry, running the brute-force search on a miss.
  /// Thread-safe.
  const TuneEntry& tune(Tunable& t);

  /// True if the key is already tuned.
  bool contains(const std::string& key) const;

  /// Manually insert (used by tests and by cache loading).
  void insert(const std::string& key, TuneEntry entry);

  /// Persist / restore the cache (QUDA's tunecache.tsv equivalent).
  void save(const std::string& path) const;
  /// Returns number of entries loaded; unknown files load zero entries.
  int load(const std::string& path);

  void clear();
  std::size_t size() const;

  /// Telemetry.
  std::int64_t cache_hits() const;
  std::int64_t cache_misses() const;

  /// Number of timing repetitions per candidate (min is taken).
  void set_reps(int reps) { reps_ = reps; }

 private:
  TuneEntry search(Tunable& t) const;

  // Lock order (DESIGN.md §14): mu_ may be held while obs::Registry::mu_
  // is taken (counter updates inside tune()); never take mu_ while
  // holding a Registry or thread-pool mutex.
  mutable std::mutex mu_;
  std::map<std::string, TuneEntry> cache_ FEMTO_GUARDED_BY(mu_);
  std::int64_t hits_ FEMTO_GUARDED_BY(mu_) = 0;
  std::int64_t misses_ FEMTO_GUARDED_BY(mu_) = 0;
  // Read inside search(), which deliberately runs outside mu_ (the timing
  // loop must not serialise against cache lookups), so atomic not guarded.
  std::atomic<int> reps_{3};
};

}  // namespace femto::tune
