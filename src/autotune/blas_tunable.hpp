#pragma once
// Autotuned fused BLAS kernels: sweeps the chunk grain of the fused
// update+reduce kernels in lattice/blas.hpp, exactly as dslash_tunable
// sweeps the stencil's launch grain.  The fused kernels mutate their
// fields, so this is also the first Tunable exercising the autotuner's
// backup/restore hooks for data-destructive kernels (the QUDA feature the
// framework was built around).

#include <memory>
#include <string>

#include "autotune/autotune.hpp"
#include "lattice/field.hpp"

namespace femto::tune {

/// Which fused kernel a BlasTunable drives.
enum class BlasKernel {
  AxpyNorm2,
  TripleCgUpdate,
  AxpyZpbx,
  XpayRedot,
  AxpbyNorm2,
  CaxpyNorm2,
  CdotNorm2,
};

const char* to_string(BlasKernel k);

/// A Tunable wrapping one fused BLAS kernel call on scratch fields.
template <typename T>
class BlasTunable : public Tunable {
 public:
  BlasTunable(std::shared_ptr<const Geometry> geom, int l5, Subset subset,
              BlasKernel kernel);

  std::string key() const override;
  std::vector<TuneParam> candidates() const override;
  void apply(const TuneParam& p) override;
  void backup() override;
  void restore() override;
  std::int64_t flops_per_call() const override;
  std::int64_t bytes_per_call() const override;

  /// The fields apply() mutates, exposed so tests can verify the
  /// backup/restore contract.
  const SpinorField<T>& scratch_x() const { return x_; }
  const SpinorField<T>& scratch_y() const { return y_; }

 private:
  BlasKernel kernel_;
  // Two read-only inputs and two updated fields cover every kernel shape
  // (triple_cg_update uses all four).  The updated fields are backed up
  // before the search and restored after.
  SpinorField<T> a_, b_, x_, y_;
  SpinorField<T> x_save_, y_save_;
};

/// Convenience used by DwfSolver::autotune(): tunes the CG hot-path fused
/// kernels (triple_cg_update, axpy_zpbx, axpy_norm2) for this shape and
/// returns the winning grain of axpy_norm2 — the kernel every solver path
/// shares — for SolverParams::blas_grain.
template <typename T>
std::size_t tuned_blas_grain(std::shared_ptr<const Geometry> geom, int l5,
                             Subset subset);

extern template class BlasTunable<double>;
extern template class BlasTunable<float>;
extern template std::size_t tuned_blas_grain<double>(
    std::shared_ptr<const Geometry>, int, Subset);
extern template std::size_t tuned_blas_grain<float>(
    std::shared_ptr<const Geometry>, int, Subset);

}  // namespace femto::tune
