#pragma once
// femtosim: a deterministic discrete-event simulation engine.
//
// The paper's job-management results (METAQ and mpi_jm on thousands of
// Sierra/Summit nodes) are scheduling phenomena; we reproduce them by
// running the actual scheduling policies against a simulated cluster
// clock.  Events fire in (time, insertion-order) priority, so runs are
// bit-reproducible.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace femto::sim {

/// Simulated time, in seconds.
using Time = double;

class Engine {
 public:
  Time now() const { return now_; }

  /// Schedule fn to run at now() + delay (delay >= 0).
  void schedule(Time delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule fn at an absolute time (>= now()).
  void schedule_at(Time t, std::function<void()> fn);

  /// Process events until the queue drains.  Returns the final clock.
  Time run();

  /// Process events with time <= t_end, then set the clock to t_end.
  Time run_until(Time t_end);

  std::int64_t events_processed() const { return processed_; }
  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::int64_t processed_ = 0;
};

}  // namespace femto::sim
