#include "simevent/engine.hpp"

#include <stdexcept>

namespace femto::sim {

void Engine::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_)
    throw std::invalid_argument("Engine: cannot schedule in the past");
  queue_.push(Event{t, seq_++, std::move(fn)});
}

Time Engine::run() {
  while (!queue_.empty()) {
    // Moving out of a priority_queue requires the const_cast dance; the
    // element is popped immediately after, so the heap invariant the
    // const protects is never observed in the moved-from state.
    // femtolint: allow(cast): priority_queue move-out; popped immediately.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    ev.fn();
  }
  return now_;
}

Time Engine::run_until(Time t_end) {
  while (!queue_.empty() && queue_.top().t <= t_end) {
    // femtolint: allow(cast): priority_queue move-out; popped immediately.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    ev.fn();
  }
  now_ = t_end;
  return now_;
}

}  // namespace femto::sim
