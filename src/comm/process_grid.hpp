#pragma once
// 4D process grid: how ranks tile the global lattice.  Mirrors the
// "logical topology" an MPI QCD code builds (QMP_declare_logical_topology).

#include <array>
#include <cstdint>
#include <stdexcept>

namespace femto::comm {

class ProcessGrid {
 public:
  /// @p dims: number of ranks along each of x,y,z,t.
  explicit ProcessGrid(std::array<int, 4> dims) : dims_(dims) {
    n_ranks_ = 1;
    for (int d : dims_) {
      if (d < 1) throw std::invalid_argument("ProcessGrid: dims must be >= 1");
      n_ranks_ *= d;
    }
  }

  int size() const { return n_ranks_; }
  int dim(int mu) const { return dims_[static_cast<std::size_t>(mu)]; }

  /// Rank of grid coordinate (x fastest).
  int rank_of(std::array<int, 4> c) const {
    return ((c[3] * dims_[2] + c[2]) * dims_[1] + c[1]) * dims_[0] + c[0];
  }

  std::array<int, 4> coords_of(int rank) const {
    std::array<int, 4> c{};
    c[0] = rank % dims_[0];
    rank /= dims_[0];
    c[1] = rank % dims_[1];
    rank /= dims_[1];
    c[2] = rank % dims_[2];
    c[3] = rank / dims_[2];
    return c;
  }

  /// Neighbouring rank in +-mu direction (periodic torus).
  int neighbor(int rank, int mu, int sign) const {
    auto c = coords_of(rank);
    auto& x = c[static_cast<std::size_t>(mu)];
    const int d = dims_[static_cast<std::size_t>(mu)];
    x = (x + (sign > 0 ? 1 : d - 1)) % d;
    return rank_of(c);
  }

  /// Split a global extent into this rank's local extent; requires an even
  /// split (as production QCD codes do).
  static int local_extent(int global, int procs) {
    if (global % procs != 0)
      throw std::invalid_argument(
          "ProcessGrid: global extent not divisible by process dim");
    return global / procs;
  }

 private:
  std::array<int, 4> dims_;
  int n_ranks_;
};

}  // namespace femto::comm
