#pragma once
// Halo (ghost-zone) exchange for radius-1 stencils, with the
// communication-policy choices the paper's autotuner selects among (S V,
// "Communication Autotuning"):
//
//   * HostStaged  — pack, stage through a host bounce buffer, send
//                   (models DMA-to-CPU + MPI on the CPU)
//   * ZeroCopy    — pack directly into the message payload (models
//                   zero-copy reads/writes across the PCIe bus)
//   * DirectRdma  — like ZeroCopy but flagged as device<->NIC direct
//                   (models GPU Direct RDMA; unsupported on early CORAL,
//                   see the paper, but implemented here as an extension)
//
// and, orthogonally, the granularity choice:
//
//   * Fused        — post every face, then receive every face, then unpack
//                    once (fewer "kernel launches", less overlap)
//   * PerDimension — exchange and unpack one dimension at a time (more
//                    fine-grained overlap)
//
// All policies are functionally identical (tests assert bit-equality); they
// differ in the copy/message counts recorded in HaloStats, which calibrate
// the machine model and which the policy autotuner (src/autotune) minimises.

#include <array>
#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/process_grid.hpp"
#include "simd/aligned.hpp"

namespace femto::comm {

/// Halo payload/staging storage: 64-byte aligned so the pack/unpack memcpy
/// and any vectorized ghost reads never split a cache line.
using HaloBuffer = simd::aligned_vector<double>;

enum class CommPolicy { HostStaged, ZeroCopy, DirectRdma };
enum class Granularity { Fused, PerDimension };

const char* to_string(CommPolicy p);
const char* to_string(Granularity g);

/// Instrumentation accumulated by an exchange.
struct HaloStats {
  std::int64_t bytes_sent = 0;      ///< total payload shipped
  std::int64_t messages = 0;        ///< point-to-point messages
  std::int64_t staging_copies = 0;  ///< extra host bounce-buffer copies
  std::int64_t unpack_passes = 0;   ///< halo-update "kernel launches"

  HaloStats& operator+=(const HaloStats& o) {
    bytes_sent += o.bytes_sent;
    messages += o.messages;
    staging_copies += o.staging_copies;
    unpack_passes += o.unpack_passes;
    return *this;
  }
};

/// A rank-local block of a global lattice with one ghost layer per face.
/// Sites are stored lexicographically (x fastest) with @p n_reals doubles
/// per site; ghosts live in separate per-face buffers.
class HaloField {
 public:
  HaloField(std::array<int, 4> local_extents, int n_reals);

  int extent(int mu) const { return local_[static_cast<size_t>(mu)]; }
  int n_reals() const { return n_reals_; }
  std::int64_t volume() const { return vol_; }

  /// Lexicographic local site index.
  std::int64_t site(int x, int y, int z, int t) const {
    return ((std::int64_t(t) * local_[2] + z) * local_[1] + y) * local_[0] +
           x;
  }

  double* at(std::int64_t s) { return data_.data() + s * n_reals_; }
  const double* at(std::int64_t s) const {
    return data_.data() + s * n_reals_;
  }

  /// Number of sites on the face orthogonal to mu.
  std::int64_t face_sites(int mu) const { return vol_ / extent(mu); }

  /// Index into a face buffer: rank of the site among face sites, in the
  /// lexicographic order of the remaining coordinates.
  std::int64_t face_index(int mu, std::array<int, 4> c) const;

  /// Ghost cell received from the forward (+mu) neighbour: the neighbour's
  /// x_mu = 0 face, indexed by face_index.
  double* ghost_fwd(int mu, std::int64_t f) {
    return ghost_fwd_[static_cast<size_t>(mu)].data() + f * n_reals_;
  }
  const double* ghost_fwd(int mu, std::int64_t f) const {
    return ghost_fwd_[static_cast<size_t>(mu)].data() + f * n_reals_;
  }
  /// Ghost cell received from the backward (-mu) neighbour (its x_mu = L-1
  /// face).
  double* ghost_bwd(int mu, std::int64_t f) {
    return ghost_bwd_[static_cast<size_t>(mu)].data() + f * n_reals_;
  }
  const double* ghost_bwd(int mu, std::int64_t f) const {
    return ghost_bwd_[static_cast<size_t>(mu)].data() + f * n_reals_;
  }

  HaloBuffer& raw() { return data_; }
  const HaloBuffer& raw() const { return data_; }

 private:
  friend class HaloExchanger;
  std::array<int, 4> local_;
  int n_reals_;
  std::int64_t vol_;
  HaloBuffer data_;
  std::array<HaloBuffer, 4> ghost_fwd_, ghost_bwd_;
};

/// Performs the 4-step stencil prescription from the paper (pack halos,
/// communicate, [compute interior elsewhere], unpack/complete).
class HaloExchanger {
 public:
  HaloExchanger(const ProcessGrid& grid, CommPolicy policy,
                Granularity granularity)
      : grid_(grid), policy_(policy), granularity_(granularity) {}

  CommPolicy policy() const { return policy_; }
  Granularity granularity() const { return granularity_; }

  /// Exchange all faces of @p field along every dimension where the process
  /// grid is wider than one rank.  Fills field.ghost_fwd / ghost_bwd.
  /// Collective: every rank in @p h's world must call it.
  void exchange(RankHandle& h, HaloField& field, HaloStats* stats = nullptr);

  /// Split-phase exchange, the paper's overlap structure: begin() packs
  /// and posts every face (sends are buffered and return immediately);
  /// the caller computes the INTERIOR stencil; finish() receives and
  /// unpacks the ghosts so the halo sites can be completed.  begin/finish
  /// must be strictly paired.
  void exchange_begin(RankHandle& h, HaloField& field,
                      HaloStats* stats = nullptr);
  void exchange_finish(RankHandle& h, HaloField& field,
                       HaloStats* stats = nullptr);

 private:
  void pack_face(const HaloField& f, int mu, bool fwd_face,
                 HaloBuffer& buf) const;
  void exchange_dim(RankHandle& h, HaloField& field, int mu,
                    HaloStats& stats) const;
  void wrap_dim_local(HaloField& field, int mu, HaloStats& stats) const;

  const ProcessGrid& grid_;
  CommPolicy policy_;
  Granularity granularity_;
};

}  // namespace femto::comm
