#include "comm/communicator.hpp"

#include <cstring>
#include <exception>
#include <thread>

#include "obs/trace.hpp"

namespace femto::comm {

void Mailbox::push(Message m) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
}

Message Mailbox::pop(int src, int tag) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if ((src == -1 || it->src == src) && it->tag == tag) {
        Message m = std::move(*it);
        queue_.erase(it);
        return m;
      }
    }
    cv_.wait(lk);
  }
}

std::optional<Message> Mailbox::pop_for(int src, int tag,
                                        std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if ((src == -1 || it->src == src) && it->tag == tag) {
        Message m = std::move(*it);
        queue_.erase(it);
        return m;
      }
    }
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
      // One last scan in case the notification raced the deadline.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if ((src == -1 || it->src == src) && it->tag == tag) {
          Message m = std::move(*it);
          queue_.erase(it);
          return m;
        }
      }
      return std::nullopt;
    }
  }
}

int RankHandle::size() const { return world_->size(); }

void RankHandle::send(int dest, int tag, std::vector<std::byte> payload) {
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.payload = std::move(payload);
  // Causal link: stamp a flow id and record the producer span so the
  // matching recv's wait renders as one arrow in the merged trace.  One
  // relaxed load when tracing is off.
  if (obs::trace_enabled()) {
    const std::int64_t t0 = obs::uptime_ns();
    const std::uint64_t flow = obs::next_flow_id();
    m.flow_id = flow;
    world_->mailbox(dest).push(std::move(m));
    obs::trace_flow_out("comm", "send", t0, flow);
    return;
  }
  world_->mailbox(dest).push(std::move(m));
}

Message RankHandle::recv(int src, int tag) {
  if (obs::trace_enabled()) {
    const std::int64_t t0 = obs::uptime_ns();
    Message m = world_->mailbox(rank_).pop(src, tag);
    if (m.flow_id != 0) obs::trace_flow_in("comm", "recv", t0, m.flow_id);
    return m;
  }
  return world_->mailbox(rank_).pop(src, tag);
}

std::optional<Message> RankHandle::recv_for(
    int src, int tag, std::chrono::milliseconds timeout) {
  if (obs::trace_enabled()) {
    const std::int64_t t0 = obs::uptime_ns();
    std::optional<Message> m =
        world_->mailbox(rank_).pop_for(src, tag, timeout);
    if (m && m->flow_id != 0)
      obs::trace_flow_in("comm", "recv", t0, m->flow_id);
    return m;
  }
  return world_->mailbox(rank_).pop_for(src, tag, timeout);
}

void RankHandle::barrier() { world_->barrier_wait(); }

namespace {
// Internal tags for the collective implementations; chosen high so user
// tags (small non-negative ints) never collide.
constexpr int kTagAllreduce = 1 << 28;
constexpr int kTagBroadcast = (1 << 28) + 1;
}  // namespace

double RankHandle::allreduce_sum(double x) {
  // Gather to rank 0, sum in rank order (deterministic), broadcast back.
  FEMTO_PROTOCOL_OK(
      "root-side gather receives before it scatters; non-roots send "
      "unconditionally first, so every root recv has a matching send "
      "in flight");
  if (rank_ == 0) {
    double sum = x;
    for (int r = 1; r < size(); ++r) {
      auto v = recv_vec<double>(r, kTagAllreduce);
      sum += v[0];
    }
    for (int r = 1; r < size(); ++r)
      send_vec<double>(r, kTagAllreduce, {sum});
    return sum;
  }
  send_vec<double>(0, kTagAllreduce, {x});
  auto v = recv_vec<double>(0, kTagAllreduce);
  return v[0];
}

double RankHandle::broadcast(double x, int root) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send_vec<double>(r, kTagBroadcast, {x});
    return x;
  }
  auto v = recv_vec<double>(root, kTagBroadcast);
  return v[0];
}

std::vector<std::unique_ptr<Mailbox>> World::make_mailboxes(int n) {
  std::vector<std::unique_ptr<Mailbox>> boxes;
  boxes.reserve(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) boxes.push_back(std::make_unique<Mailbox>());
  return boxes;
}

World::World(int n_ranks)
    : n_ranks_(n_ranks), mailboxes_(make_mailboxes(n_ranks)) {}

void World::barrier_wait() {
  std::unique_lock<std::mutex> lk(bar_mu_);
  const std::uint64_t gen = bar_gen_;
  if (++bar_count_ == n_ranks_) {
    bar_count_ = 0;
    ++bar_gen_;
    bar_cv_.notify_all();
    return;
  }
  bar_cv_.wait(lk, [&] { return bar_gen_ != gen; });
}

void World::run(const std::function<void(RankHandle&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(n_ranks_));
  threads.reserve(static_cast<size_t>(n_ranks_));
  for (int r = 0; r < n_ranks_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      // Every span this rank thread records (and every sampler stack
      // sweep of it) is tagged with the rank, so multi-rank traces merge
      // into per-rank Chrome process rows.
      obs::set_trace_rank(r);
      RankHandle h(this, r);
      try {
        fn(h);
      } catch (...) {
        errors[static_cast<size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

void run_ranks(int n, const std::function<void(RankHandle&)>& fn) {
  World world(n);
  world.run(fn);
}

}  // namespace femto::comm
