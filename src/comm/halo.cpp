#include "comm/halo.hpp"

#include <cstring>
#include <string>

#include "core/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace femto::comm {

const char* to_string(CommPolicy p) {
  switch (p) {
    case CommPolicy::HostStaged: return "host-staged";
    case CommPolicy::ZeroCopy: return "zero-copy";
    default: return "direct-rdma";
  }
}

const char* to_string(Granularity g) {
  return g == Granularity::Fused ? "fused" : "per-dimension";
}

HaloField::HaloField(std::array<int, 4> local_extents, int n_reals)
    : local_(local_extents), n_reals_(n_reals) {
  FEMTO_CHECK(n_reals > 0, "HaloField: n_reals must be positive");
  vol_ = 1;
  for (int d : local_) {
    FEMTO_CHECK(d >= 1, "HaloField: every local extent must be >= 1");
    vol_ *= d;
  }
  data_.resize(static_cast<size_t>(vol_ * n_reals_));
  for (int mu = 0; mu < 4; ++mu) {
    const std::int64_t fs = face_sites(mu);
    ghost_fwd_[static_cast<size_t>(mu)].resize(
        static_cast<size_t>(fs * n_reals_));
    ghost_bwd_[static_cast<size_t>(mu)].resize(
        static_cast<size_t>(fs * n_reals_));
  }
}

std::int64_t HaloField::face_index(int mu, std::array<int, 4> c) const {
  // Lexicographic rank over the coordinates != mu, lowest dim fastest.
  std::int64_t idx = 0;
  for (int nu = 3; nu >= 0; --nu) {
    if (nu == mu) continue;
    idx = idx * local_[static_cast<size_t>(nu)] +
          c[static_cast<size_t>(nu)];
  }
  return idx;
}

void HaloExchanger::pack_face(const HaloField& f, int mu, bool fwd_face,
                              HaloBuffer& buf) const {
  FEMTO_ASSERT(mu >= 0 && mu < 4);
  const int face_x = fwd_face ? f.extent(mu) - 1 : 0;
  buf.resize(static_cast<size_t>(f.face_sites(mu) * f.n_reals()));
  std::array<int, 4> c{};
  c[static_cast<size_t>(mu)] = face_x;
  // Walk the 3 orthogonal dims.
  std::array<int, 3> odims{};
  std::array<int, 3> omu{};
  int k = 0;
  for (int nu = 0; nu < 4; ++nu)
    if (nu != mu) {
      odims[static_cast<size_t>(k)] = f.extent(nu);
      omu[static_cast<size_t>(k)] = nu;
      ++k;
    }
  const int nr = f.n_reals();
  for (int a2 = 0; a2 < odims[2]; ++a2)
    for (int a1 = 0; a1 < odims[1]; ++a1)
      for (int a0 = 0; a0 < odims[0]; ++a0) {
        c[static_cast<size_t>(omu[0])] = a0;
        c[static_cast<size_t>(omu[1])] = a1;
        c[static_cast<size_t>(omu[2])] = a2;
        const std::int64_t s = f.site(c[0], c[1], c[2], c[3]);
        const std::int64_t fi = f.face_index(mu, c);
        std::memcpy(buf.data() + fi * nr, f.at(s),
                    static_cast<size_t>(nr) * sizeof(double));
      }
}

namespace {
constexpr int kTagHalo = 1 << 27;
int halo_tag(int mu, bool fwd_going) {
  return kTagHalo + mu * 2 + (fwd_going ? 0 : 1);
}

std::vector<std::byte> to_bytes(const HaloBuffer& v) {
  std::vector<std::byte> p(v.size() * sizeof(double));
  std::memcpy(p.data(), v.data(), p.size());
  return p;
}

// Unpack a wire payload into a ghost buffer of @p n_expected doubles.  A
// size mismatch means the sender's face extents disagree with ours —
// corrupt ghost zones, not a recoverable condition.
void from_bytes(const std::vector<std::byte>& p, double* out,
                std::size_t n_expected) {
  FEMTO_CHECK(p.size() == n_expected * sizeof(double),
              "halo payload size does not match the ghost buffer extent");
  std::memcpy(out, p.data(), p.size());
}

obs::Histogram& halo_msg_hist() {
  static obs::Histogram& h = obs::histogram("comm.halo_message_bytes");
  return h;
}

// Fold one exchange's stats delta into the global metrics, and count the
// policy/granularity choice so the report shows which paths actually ran.
void charge_halo(const HaloStats& s, CommPolicy p, Granularity g) {
  static obs::Counter& bytes = obs::counter("comm.halo_bytes");
  static obs::Counter& msgs = obs::counter("comm.halo_messages");
  static obs::Counter& staging = obs::counter("comm.staging_copies");
  bytes.add(s.bytes_sent);
  msgs.add(s.messages);
  staging.add(s.staging_copies);
  obs::counter(std::string("comm.policy.") + to_string(p)).add();
  obs::counter(std::string("comm.granularity.") + to_string(g)).add();
}
}  // namespace

void HaloExchanger::wrap_dim_local(HaloField& field, int mu,
                                   HaloStats& stats) const {
  // Process grid is one rank wide in mu: the ghost is our own opposite
  // face (periodic wrap), no message needed.
  HaloBuffer buf;
  pack_face(field, mu, /*fwd_face=*/true, buf);
  FEMTO_ASSERT(buf.size() == field.ghost_bwd_[static_cast<size_t>(mu)].size());
  std::memcpy(field.ghost_bwd_[static_cast<size_t>(mu)].data(), buf.data(),
              buf.size() * sizeof(double));
  pack_face(field, mu, /*fwd_face=*/false, buf);
  FEMTO_ASSERT(buf.size() == field.ghost_fwd_[static_cast<size_t>(mu)].size());
  std::memcpy(field.ghost_fwd_[static_cast<size_t>(mu)].data(), buf.data(),
              buf.size() * sizeof(double));
  stats.unpack_passes += 1;
}

void HaloExchanger::exchange_dim(RankHandle& h, HaloField& field, int mu,
                                 HaloStats& stats) const {
  const int me = h.rank();
  const int nf = grid_.neighbor(me, mu, +1);
  const int nb = grid_.neighbor(me, mu, -1);

  HaloBuffer fwd_buf, bwd_buf;
  pack_face(field, mu, /*fwd_face=*/true, fwd_buf);
  pack_face(field, mu, /*fwd_face=*/false, bwd_buf);

  auto ship = [&](const HaloBuffer& buf, int dest, int tag) {
    if (policy_ == CommPolicy::HostStaged) {
      // Bounce through a host staging buffer before the wire.
      HaloBuffer staged = buf;
      stats.staging_copies += 1;
      h.send(dest, tag, to_bytes(staged));
    } else {
      h.send(dest, tag, to_bytes(buf));
    }
    stats.messages += 1;
    stats.bytes_sent += static_cast<std::int64_t>(buf.size() * sizeof(double));
  };

  ship(fwd_buf, nf, halo_tag(mu, true));
  ship(bwd_buf, nb, halo_tag(mu, false));
  halo_msg_hist().observe(
      static_cast<std::int64_t>(fwd_buf.size() * sizeof(double)));
  halo_msg_hist().observe(
      static_cast<std::int64_t>(bwd_buf.size() * sizeof(double)));

  // Receive: ghost_bwd comes from the -mu neighbour's forward face;
  // ghost_fwd from the +mu neighbour's backward face.
  Message mb = h.recv(nb, halo_tag(mu, true));
  Message mf = h.recv(nf, halo_tag(mu, false));
  if (policy_ == CommPolicy::HostStaged) stats.staging_copies += 2;
  from_bytes(mb.payload, field.ghost_bwd_[static_cast<size_t>(mu)].data(),
             field.ghost_bwd_[static_cast<size_t>(mu)].size());
  from_bytes(mf.payload, field.ghost_fwd_[static_cast<size_t>(mu)].data(),
             field.ghost_fwd_[static_cast<size_t>(mu)].size());
}

void HaloExchanger::exchange_begin(RankHandle& h, HaloField& field,
                                   HaloStats* stats) {
  FEMTO_TRACE_SCOPE("comm", "halo_exchange_begin");
  HaloStats local;
  for (int mu = 0; mu < 4; ++mu) {
    if (grid_.dim(mu) == 1) {
      // Local wraps complete immediately (no wire).
      wrap_dim_local(field, mu, local);
      continue;
    }
    const int me = h.rank();
    const int nf = grid_.neighbor(me, mu, +1);
    const int nb = grid_.neighbor(me, mu, -1);
    HaloBuffer fwd_buf, bwd_buf;
    pack_face(field, mu, /*fwd_face=*/true, fwd_buf);
    pack_face(field, mu, /*fwd_face=*/false, bwd_buf);
    auto ship = [&](const HaloBuffer& buf, int dest, int tag) {
      if (policy_ == CommPolicy::HostStaged) {
        HaloBuffer staged = buf;
        local.staging_copies += 1;
        h.send(dest, tag, to_bytes(staged));
      } else {
        h.send(dest, tag, to_bytes(buf));
      }
      local.messages += 1;
      local.bytes_sent +=
          static_cast<std::int64_t>(buf.size() * sizeof(double));
    };
    ship(fwd_buf, nf, halo_tag(mu, true));
    ship(bwd_buf, nb, halo_tag(mu, false));
    halo_msg_hist().observe(
        static_cast<std::int64_t>(fwd_buf.size() * sizeof(double)));
    halo_msg_hist().observe(
        static_cast<std::int64_t>(bwd_buf.size() * sizeof(double)));
  }
  charge_halo(local, policy_, granularity_);
  if (stats) *stats += local;
}

void HaloExchanger::exchange_finish(RankHandle& h, HaloField& field,
                                    HaloStats* stats) {
  FEMTO_TRACE_SCOPE("comm", "halo_exchange_finish");
  HaloStats local;
  for (int mu = 0; mu < 4; ++mu) {
    if (grid_.dim(mu) == 1) continue;  // completed in begin()
    const int me = h.rank();
    const int nf = grid_.neighbor(me, mu, +1);
    const int nb = grid_.neighbor(me, mu, -1);
    Message mb = h.recv(nb, halo_tag(mu, true));
    Message mf = h.recv(nf, halo_tag(mu, false));
    if (policy_ == CommPolicy::HostStaged) local.staging_copies += 2;
    from_bytes(mb.payload, field.ghost_bwd_[static_cast<size_t>(mu)].data(),
               field.ghost_bwd_[static_cast<size_t>(mu)].size());
    from_bytes(mf.payload, field.ghost_fwd_[static_cast<size_t>(mu)].data(),
               field.ghost_fwd_[static_cast<size_t>(mu)].size());
    if (granularity_ == Granularity::PerDimension) local.unpack_passes += 1;
  }
  if (granularity_ == Granularity::Fused) local.unpack_passes += 1;
  if (stats) *stats += local;
}

void HaloExchanger::exchange(RankHandle& h, HaloField& field,
                             HaloStats* stats) {
  FEMTO_TRACE_SCOPE("comm", "halo_exchange");
  HaloStats local;
  if (granularity_ == Granularity::PerDimension) {
    for (int mu = 0; mu < 4; ++mu) {
      if (grid_.dim(mu) == 1) {
        wrap_dim_local(field, mu, local);
      } else {
        exchange_dim(h, field, mu, local);
        local.unpack_passes += 1;  // per-dim halo-update kernel
      }
    }
  } else {
    // Fused: local wraps first, then all remote dims; one combined
    // halo-update kernel at the end.
    bool any_remote = false;
    for (int mu = 0; mu < 4; ++mu) {
      if (grid_.dim(mu) == 1) {
        wrap_dim_local(field, mu, local);
      } else {
        exchange_dim(h, field, mu, local);
        any_remote = true;
      }
    }
    if (any_remote) local.unpack_passes += 1;
  }
  charge_halo(local, policy_, granularity_);
  if (stats) *stats += local;
}

}  // namespace femto::comm
