#pragma once
// femtocomm: a message-passing layer with MPI semantics, executed by
// threads within one process.
//
// The paper's application runs as MPI ranks across CORAL nodes; our
// substitution (DESIGN.md) maps each rank to a thread with a tagged
// mailbox.  The API is shaped after the dozen MPI calls a stencil code
// actually uses: point-to-point send/recv with tags, barrier, allreduce,
// broadcast.  Everything above this layer (halo exchange, process grids,
// the distributed Dirac operator, the job manager's lump connection
// protocol) is decomposition-correct in the same way an MPI code is: the
// numerics cannot tell the difference.
//
// Call sites of these primitives are statically protocol-checked by
// femtolint v4 (DESIGN.md §14): sends must pair with receives inside
// the scanned program (`unpaired-send`), untimed receives must not
// precede the matching same-tag send (`recv-before-send` — bless
// deliberate rendezvous steps with FEMTO_PROTOCOL_OK(reason)), and
// collectives must not sit under rank-dependent branches
// (`collective-divergence`).  Prefer recv_for over recv in code that
// can be reached with a mutex held.

#include <chrono>
#include <condition_variable>

#include "core/check.hpp"
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace femto::comm {

/// A message: tag + opaque payload.  flow_id is the femtoscope causal
/// link (DESIGN.md §15): send() stamps a fresh id and records the
/// producer span; recv() consumes it and records the matching wait span,
/// so the merged Chrome trace draws the pair as one arrow.  0 = untraced.
struct Message {
  int src = -1;
  int tag = 0;
  std::uint64_t flow_id = 0;
  std::vector<std::byte> payload;
};

/// Per-rank mailbox with blocking tagged receive.
class Mailbox {
 public:
  void push(Message m);
  /// Blocks until a message with matching (src, tag) is available and
  /// removes it.  src == -1 matches any source (MPI_ANY_SOURCE).
  Message pop(int src, int tag);

  /// Like pop but gives up after @p timeout; nullopt on expiry (the
  /// "grace period" primitive mpi_jm uses to ignore lumps that never
  /// connect).
  std::optional<Message> pop_for(int src, int tag,
                                 std::chrono::milliseconds timeout);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_ FEMTO_GUARDED_BY(mu_);
};

class World;

/// A rank's endpoint into the world: the object a "rank function" receives.
class RankHandle {
 public:
  RankHandle(World* world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;

  /// Point-to-point send (copies the payload; completes immediately, like
  /// a buffered MPI_Send).
  void send(int dest, int tag, std::vector<std::byte> payload);

  /// Typed convenience: send a span of trivially-copyable elements.
  template <typename T>
  void send_vec(int dest, int tag, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> p(v.size() * sizeof(T));
    std::memcpy(p.data(), v.data(), p.size());
    send(dest, tag, std::move(p));
  }

  /// Blocking receive of a message with matching source and tag.
  Message recv(int src, int tag);

  /// Timed receive; nullopt when nothing matching arrives in time.
  std::optional<Message> recv_for(int src, int tag,
                                  std::chrono::milliseconds timeout);

  template <typename T>
  std::vector<T> recv_vec(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv(src, tag);
    std::vector<T> v(m.payload.size() / sizeof(T));
    std::memcpy(v.data(), m.payload.data(), m.payload.size());
    return v;
  }

  /// Synchronise all ranks.
  void barrier();

  /// Sum-allreduce of a double across all ranks.
  double allreduce_sum(double x);

  /// Broadcast a value from root to all ranks.
  double broadcast(double x, int root);

 private:
  World* world_;
  int rank_;
};

/// The world: owns the mailboxes and the barrier. Create with the number of
/// ranks, then run a function per rank on its own thread.
class World {
 public:
  explicit World(int n_ranks);

  int size() const { return n_ranks_; }
  Mailbox& mailbox(int rank) { return *mailboxes_[static_cast<size_t>(rank)]; }

  /// Run fn(handle) on n_ranks threads; joins all before returning.
  /// Exceptions thrown by a rank are rethrown (first one wins).
  void run(const std::function<void(RankHandle&)>& fn);

  /// Barrier implementation (sense-reversing, reusable).
  void barrier_wait();

 private:
  static std::vector<std::unique_ptr<Mailbox>> make_mailboxes(int n);

  // Rank count and mailbox table are fixed at construction; each Mailbox
  // synchronises itself, so neither needs bar_mu_.
  const int n_ranks_;
  const std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_count_ FEMTO_GUARDED_BY(bar_mu_) = 0;
  std::uint64_t bar_gen_ FEMTO_GUARDED_BY(bar_mu_) = 0;
};

/// Convenience: run an SPMD section with @p n ranks.
void run_ranks(int n, const std::function<void(RankHandle&)>& fn);

}  // namespace femto::comm
