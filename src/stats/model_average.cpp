#include "stats/model_average.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace femto::stats {

const WindowFit& ModelAverage::best() const {
  return *std::max_element(windows.begin(), windows.end(),
                           [](const WindowFit& a, const WindowFit& b) {
                             return a.weight < b.weight;
                           });
}

ModelAverage model_average(const Model& model, const std::vector<double>& x,
                           const std::vector<double>& y,
                           const std::vector<double>& sigma,
                           const std::vector<double>& p0,
                           const std::vector<FitWindow>& windows,
                           const FitOptions& opts) {
  if (windows.empty())
    throw std::invalid_argument("model_average: no windows");
  ModelAverage out;
  const double n_total = static_cast<double>(x.size());

  double max_log_w = -1e300;
  std::vector<double> log_w;
  for (const auto& win : windows) {
    std::vector<double> xw, yw, sw;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] < win.t_min || x[i] > win.t_max) continue;
      xw.push_back(x[i]);
      yw.push_back(y[i]);
      sw.push_back(sigma[i]);
    }
    WindowFit wf;
    wf.window = win;
    if (xw.size() > p0.size()) {
      try {
        wf.fit = levmar(model, xw, yw, sw, p0, opts);
      } catch (const std::exception&) {
        wf.fit.converged = false;
      }
    }
    double lw = -1e300;
    if (wf.fit.converged && wf.fit.dof > 0) {
      const double n_cut = n_total - static_cast<double>(xw.size());
      lw = -0.5 * (wf.fit.chisq + 2.0 * static_cast<double>(p0.size()) +
                   2.0 * n_cut);
    }
    log_w.push_back(lw);
    max_log_w = std::max(max_log_w, lw);
    out.windows.push_back(std::move(wf));
  }
  if (max_log_w <= -1e299)
    throw std::runtime_error("model_average: every window fit failed");

  // Normalise weights in a numerically safe way.
  double norm = 0.0;
  for (std::size_t i = 0; i < out.windows.size(); ++i) {
    const double w = std::exp(log_w[i] - max_log_w);
    out.windows[i].weight = w;
    norm += w;
  }
  for (auto& wf : out.windows) wf.weight /= norm;

  // Combine: value = sum w v; error^2 = sum w s^2 + sum w (v - value)^2.
  double value = 0.0;
  for (const auto& wf : out.windows)
    if (wf.weight > 0) value += wf.weight * wf.fit.params[0];
  double var_stat = 0.0, var_model = 0.0;
  for (const auto& wf : out.windows) {
    if (wf.weight <= 0) continue;
    var_stat += wf.weight * wf.fit.errors[0] * wf.fit.errors[0];
    const double d = wf.fit.params[0] - value;
    var_model += wf.weight * d * d;
  }
  out.value = value;
  out.stat_error = std::sqrt(var_stat);
  out.model_error = std::sqrt(var_model);
  out.error = std::sqrt(var_stat + var_model);
  return out;
}

}  // namespace femto::stats
