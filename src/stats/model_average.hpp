#pragma once
// Model averaging over fit windows with Akaike weights — how the
// collaboration's published gA analysis tames the fit-window systematic:
// instead of picking one t_min by eye, fit EVERY candidate window and
// combine with weights
//
//   w_i ~ exp[-(chi^2_i + 2 k_i + 2 n_cut,i) / 2]
//
// (k = parameters, n_cut = data points excluded by the window; the n_cut
// term is the correction that makes windows comparable).  The averaged
// error combines the within-window errors and the across-window spread.

#include <vector>

#include "stats/fit.hpp"

namespace femto::stats {

struct FitWindow {
  int t_min = 0;
  int t_max = 0;
};

struct WindowFit {
  FitWindow window;
  FitResult fit;
  double weight = 0.0;  ///< normalised Akaike weight
};

struct ModelAverage {
  double value = 0.0;  ///< weighted average of parameter 0
  double error = 0.0;  ///< within-window + across-window combined
  double stat_error = 0.0;   ///< weighted within-window error only
  double model_error = 0.0;  ///< across-window spread only
  std::vector<WindowFit> windows;

  /// The single most-probable window.
  const WindowFit& best() const;
};

/// Fit @p model to (x, y, sigma) restricted to each window and combine.
/// Windows with failed fits get zero weight.  Throws if every window
/// fails or no window has positive dof.
ModelAverage model_average(const Model& model, const std::vector<double>& x,
                           const std::vector<double>& y,
                           const std::vector<double>& sigma,
                           const std::vector<double>& p0,
                           const std::vector<FitWindow>& windows,
                           const FitOptions& opts = {});

}  // namespace femto::stats
