#pragma once
// Statistical machinery for correlator analysis: means, (co)variance,
// bootstrap and jackknife resampling.  Lattice QCD observables are Monte
// Carlo averages whose uncertainties shrink only as 1/sqrt(N_sample)
// (paper S IV); everything downstream of the solves runs through these
// estimators.

#include <cstdint>
#include <functional>
#include <vector>

#include "lattice/rng.hpp"

namespace femto::stats {

double mean(const std::vector<double>& x);
/// Unbiased sample variance (n-1 normalisation).
double variance(const std::vector<double>& x);
double stddev(const std::vector<double>& x);
/// Standard error of the mean.
double std_error(const std::vector<double>& x);
double covariance(const std::vector<double>& x, const std::vector<double>& y);

/// Bootstrap resampler: draws B resamples of size N with replacement,
/// reproducibly from a seed.  Data enters as [sample][dimension]; the
/// estimator maps a resampled mean vector to a scalar (or the caller uses
/// resample_means directly).
class Bootstrap {
 public:
  Bootstrap(int n_samples, int n_boot, std::uint64_t seed);

  int n_boot() const { return n_boot_; }
  int n_samples() const { return n_samples_; }

  /// The sample indices of resample b.
  const std::vector<int>& indices(int b) const {
    return indices_[static_cast<std::size_t>(b)];
  }

  /// Mean of each dimension within resample b of the dataset
  /// data[sample][dim].
  std::vector<double> resample_mean(
      const std::vector<std::vector<double>>& data, int b) const;

  /// Apply an estimator to every resample's mean vector; returns the B
  /// estimator values (whose spread is the bootstrap error).
  std::vector<double> distribution(
      const std::vector<std::vector<double>>& data,
      const std::function<double(const std::vector<double>&)>& estimator)
      const;

  /// Central value and error of an estimator: mean and stddev of the
  /// bootstrap distribution.
  std::pair<double, double> estimate(
      const std::vector<std::vector<double>>& data,
      const std::function<double(const std::vector<double>&)>& estimator)
      const;

 private:
  int n_samples_;
  int n_boot_;
  std::vector<std::vector<int>> indices_;
};

/// Jackknife: leave-one-out means and the jackknife error formula.
class Jackknife {
 public:
  explicit Jackknife(int n_samples) : n_samples_(n_samples) {}

  /// Leave-one-out mean vectors of data[sample][dim].
  std::vector<std::vector<double>> resampled_means(
      const std::vector<std::vector<double>>& data) const;

  /// (central value, error) for a scalar estimator on the means.
  std::pair<double, double> estimate(
      const std::vector<std::vector<double>>& data,
      const std::function<double(const std::vector<double>&)>& estimator)
      const;

 private:
  int n_samples_;
};

}  // namespace femto::stats
