#pragma once
// Nonlinear least squares (Levenberg-Marquardt) for correlator fits,
// plus the spectral models used by the gA analysis:
//
//   * two_state_correlator: C(t) = A0 e^{-E0 t} (1 + r e^{-dE t})
//   * fh_effective_coupling: the Feynman-Hellmann effective coupling
//       g(t) = gA + (b + c t) e^{-dE t}
//     whose (b + c t) structure is the excited-state contamination the
//     FH method resolves and subtracts (paper Fig. 1),
//   * traditional_ratio: plateau-from-below model for fixed source-sink
//     separation three-point ratios.

#include <functional>
#include <vector>

namespace femto::stats {

/// model(params, x) -> value.
using Model =
    std::function<double(const std::vector<double>&, double)>;

struct FitOptions {
  int max_iter = 200;
  double tol = 1e-10;        ///< relative chisq improvement to stop
  double lambda0 = 1e-3;     ///< initial damping
  double lambda_up = 10.0;
  double lambda_down = 0.1;
};

struct FitResult {
  std::vector<double> params;
  std::vector<double> errors;  ///< from the diagonal of the covariance
  double chisq = 0.0;
  int dof = 0;
  int iterations = 0;
  bool converged = false;

  double chisq_per_dof() const {
    return dof > 0 ? chisq / static_cast<double>(dof) : 0.0;
  }
};

/// Weighted Levenberg-Marquardt: minimises
///   chi^2 = sum_i [ (y_i - model(p, x_i)) / sigma_i ]^2
/// with a forward-difference Jacobian.
FitResult levmar(const Model& model, const std::vector<double>& x,
                 const std::vector<double>& y,
                 const std::vector<double>& sigma, std::vector<double> p0,
                 const FitOptions& opts = {});

/// Covariance matrix OF THE MEAN of data[sample][dim] (row-major, dim x
/// dim): Cov_ij / n_samples, optionally shrunk toward its diagonal by
/// @p shrinkage (0 = raw, 1 = fully diagonal) — the standard regulator
/// when n_samples is not much larger than the number of points.
std::vector<double> covariance_of_mean(
    const std::vector<std::vector<double>>& data, double shrinkage = 0.0);

/// Correlated Levenberg-Marquardt: minimises
///   chi^2 = r^T C^{-1} r,  r_i = mean_i - model(p, x_i)
/// with C the (possibly shrunk) covariance of the mean.  Correlator
/// points at different t share fluctuations configuration by
/// configuration, so the correlated chi^2 is the statistically honest
/// one (diagonal fits misestimate both chi^2 and the errors).
FitResult levmar_correlated(const Model& model, const std::vector<double>& x,
                            const std::vector<std::vector<double>>& data,
                            std::vector<double> p0, double shrinkage = 0.1,
                            const FitOptions& opts = {});

// --- spectral models -------------------------------------------------------

/// p = {A0, E0, r, dE}: two-state Euclidean correlator.
double two_state_correlator(const std::vector<double>& p, double t);

/// p = {gA, b, c, dE}: FH effective coupling with excited contamination.
double fh_effective_coupling(const std::vector<double>& p, double t);

/// p = {gA, b, dE}: traditional ratio approaching the plateau from one
/// source-sink separation.
double traditional_ratio(const std::vector<double>& p, double tsep);

}  // namespace femto::stats
