#include "stats/stats.hpp"

#include <cassert>
#include <cmath>

namespace femto::stats {

double mean(const std::vector<double>& x) {
  double s = 0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(const std::vector<double>& x) {
  assert(x.size() > 1);
  const double m = mean(x);
  double s = 0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size() - 1);
}

double stddev(const std::vector<double>& x) { return std::sqrt(variance(x)); }

double std_error(const std::vector<double>& x) {
  return stddev(x) / std::sqrt(static_cast<double>(x.size()));
}

double covariance(const std::vector<double>& x,
                  const std::vector<double>& y) {
  assert(x.size() == y.size() && x.size() > 1);
  const double mx = mean(x), my = mean(y);
  double s = 0;
  for (std::size_t i = 0; i < x.size(); ++i)
    s += (x[i] - mx) * (y[i] - my);
  return s / static_cast<double>(x.size() - 1);
}

Bootstrap::Bootstrap(int n_samples, int n_boot, std::uint64_t seed)
    : n_samples_(n_samples), n_boot_(n_boot) {
  indices_.resize(static_cast<std::size_t>(n_boot));
  for (int b = 0; b < n_boot; ++b) {
    Xoshiro256 rng(seed, static_cast<std::uint64_t>(b), 0xB007);
    auto& idx = indices_[static_cast<std::size_t>(b)];
    idx.resize(static_cast<std::size_t>(n_samples));
    for (int i = 0; i < n_samples; ++i)
      idx[static_cast<std::size_t>(i)] = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(n_samples)));
  }
}

std::vector<double> Bootstrap::resample_mean(
    const std::vector<std::vector<double>>& data, int b) const {
  const auto& idx = indices(b);
  const std::size_t dim = data.front().size();
  std::vector<double> m(dim, 0.0);
  for (int i : idx) {
    const auto& row = data[static_cast<std::size_t>(i)];
    for (std::size_t d = 0; d < dim; ++d) m[d] += row[d];
  }
  for (auto& v : m) v /= static_cast<double>(idx.size());
  return m;
}

std::vector<double> Bootstrap::distribution(
    const std::vector<std::vector<double>>& data,
    const std::function<double(const std::vector<double>&)>& estimator)
    const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n_boot_));
  for (int b = 0; b < n_boot_; ++b)
    out.push_back(estimator(resample_mean(data, b)));
  return out;
}

std::pair<double, double> Bootstrap::estimate(
    const std::vector<std::vector<double>>& data,
    const std::function<double(const std::vector<double>&)>& estimator)
    const {
  const auto dist = distribution(data, estimator);
  return {mean(dist), stddev(dist)};
}

std::vector<std::vector<double>> Jackknife::resampled_means(
    const std::vector<std::vector<double>>& data) const {
  const std::size_t n = data.size();
  const std::size_t dim = data.front().size();
  // Total sum once, subtract each row.
  std::vector<double> total(dim, 0.0);
  for (const auto& row : data)
    for (std::size_t d = 0; d < dim; ++d) total[d] += row[d];
  std::vector<std::vector<double>> out(n, std::vector<double>(dim));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t d = 0; d < dim; ++d)
      out[i][d] = (total[d] - data[i][d]) / static_cast<double>(n - 1);
  return out;
}

std::pair<double, double> Jackknife::estimate(
    const std::vector<std::vector<double>>& data,
    const std::function<double(const std::vector<double>&)>& estimator)
    const {
  const auto means = resampled_means(data);
  const std::size_t n = means.size();
  std::vector<double> vals;
  vals.reserve(n);
  for (const auto& m : means) vals.push_back(estimator(m));
  const double center = mean(vals);
  double var = 0;
  for (double v : vals) var += (v - center) * (v - center);
  var *= static_cast<double>(n - 1) / static_cast<double>(n);
  return {center, std::sqrt(var)};
}

}  // namespace femto::stats
