#include "stats/fit.hpp"

#include <cmath>
#include <stdexcept>

namespace femto::stats {

namespace {

/// Solve (A + lambda diag(A)) dp = g via Gaussian elimination.  A is the
/// (small) approximate Hessian J^T W J.
std::vector<double> solve_damped(std::vector<std::vector<double>> a,
                                 std::vector<double> g, double lambda) {
  const std::size_t n = g.size();
  for (std::size_t i = 0; i < n; ++i) a[i][i] *= 1.0 + lambda;
  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[piv][col])) piv = r;
    if (std::abs(a[piv][col]) < 1e-300)
      throw std::runtime_error("levmar: singular normal equations");
    std::swap(a[piv], a[col]);
    std::swap(g[piv], g[col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      g[r] -= f * g[col];
    }
  }
  std::vector<double> dp(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = g[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i][c] * dp[c];
    dp[i] = s / a[i][i];
  }
  return dp;
}

double chisq_of(const Model& model, const std::vector<double>& x,
                const std::vector<double>& y,
                const std::vector<double>& sigma,
                const std::vector<double>& p) {
  double c = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = (y[i] - model(p, x[i])) / sigma[i];
    c += r * r;
  }
  return c;
}

}  // namespace

FitResult levmar(const Model& model, const std::vector<double>& x,
                 const std::vector<double>& y,
                 const std::vector<double>& sigma, std::vector<double> p0,
                 const FitOptions& opts) {
  if (x.size() != y.size() || x.size() != sigma.size())
    throw std::invalid_argument("levmar: input size mismatch");
  const std::size_t np = p0.size();
  const std::size_t nd = x.size();

  FitResult res;
  res.dof = static_cast<int>(nd) - static_cast<int>(np);

  double lambda = opts.lambda0;
  double chisq = chisq_of(model, x, y, sigma, p0);

  for (int it = 0; it < opts.max_iter; ++it) {
    res.iterations = it + 1;
    // Forward-difference Jacobian.
    std::vector<std::vector<double>> jac(nd, std::vector<double>(np));
    for (std::size_t j = 0; j < np; ++j) {
      const double h =
          1e-7 * (std::abs(p0[j]) > 1e-10 ? std::abs(p0[j]) : 1.0);
      auto pp = p0;
      pp[j] += h;
      for (std::size_t i = 0; i < nd; ++i)
        jac[i][j] = (model(pp, x[i]) - model(p0, x[i])) / h;
    }
    // Normal equations: A = J^T W J, g = J^T W r.
    std::vector<std::vector<double>> a(np, std::vector<double>(np, 0.0));
    std::vector<double> grad(np, 0.0);
    for (std::size_t i = 0; i < nd; ++i) {
      const double w = 1.0 / (sigma[i] * sigma[i]);
      const double r = y[i] - model(p0, x[i]);
      for (std::size_t j = 0; j < np; ++j) {
        grad[j] += w * jac[i][j] * r;
        for (std::size_t k = 0; k <= j; ++k)
          a[j][k] += w * jac[i][j] * jac[i][k];
      }
    }
    for (std::size_t j = 0; j < np; ++j)
      for (std::size_t k = j + 1; k < np; ++k) a[j][k] = a[k][j];

    // Try the damped step; adapt lambda.
    bool improved = false;
    for (int attempt = 0; attempt < 20 && !improved; ++attempt) {
      std::vector<double> dp;
      try {
        dp = solve_damped(a, grad, lambda);
      } catch (const std::runtime_error&) {
        lambda *= opts.lambda_up;
        continue;
      }
      auto pnew = p0;
      for (std::size_t j = 0; j < np; ++j) pnew[j] += dp[j];
      const double cnew = chisq_of(model, x, y, sigma, pnew);
      if (std::isfinite(cnew) && cnew < chisq) {
        const double rel = (chisq - cnew) / (chisq + 1e-300);
        p0 = std::move(pnew);
        chisq = cnew;
        lambda = std::max(lambda * opts.lambda_down, 1e-12);
        improved = true;
        if (rel < opts.tol) {
          res.converged = true;
        }
      } else {
        lambda *= opts.lambda_up;
      }
    }
    if (!improved) {
      res.converged = true;  // stuck at a (local) minimum
      break;
    }
    if (res.converged) break;
  }

  // Parameter errors from the undamped covariance (A^-1 diagonal), via
  // solving A e_j = unit vectors.
  res.errors.assign(np, 0.0);
  {
    std::vector<std::vector<double>> jac(nd, std::vector<double>(np));
    for (std::size_t j = 0; j < np; ++j) {
      const double h =
          1e-7 * (std::abs(p0[j]) > 1e-10 ? std::abs(p0[j]) : 1.0);
      auto pp = p0;
      pp[j] += h;
      for (std::size_t i = 0; i < nd; ++i)
        jac[i][j] = (model(pp, x[i]) - model(p0, x[i])) / h;
    }
    std::vector<std::vector<double>> a(np, std::vector<double>(np, 0.0));
    for (std::size_t i = 0; i < nd; ++i) {
      const double w = 1.0 / (sigma[i] * sigma[i]);
      for (std::size_t j = 0; j < np; ++j)
        for (std::size_t k = 0; k < np; ++k)
          a[j][k] += w * jac[i][j] * jac[i][k];
    }
    for (std::size_t j = 0; j < np; ++j) {
      std::vector<double> unit(np, 0.0);
      unit[j] = 1.0;
      try {
        const auto col = solve_damped(a, unit, 0.0);
        if (col[j] > 0) res.errors[j] = std::sqrt(col[j]);
      } catch (const std::runtime_error&) {
        res.errors[j] = 0.0;
      }
    }
  }

  res.params = std::move(p0);
  res.chisq = chisq;
  return res;
}

namespace {

/// Dense Gauss-Jordan inverse of a row-major n x n matrix.  Rejects
/// numerically singular input (pivot tiny relative to the matrix scale) —
/// a covariance estimated from fewer samples than data points is rank
/// deficient and must be shrunk, not silently inverted.
std::vector<double> invert_dense(std::vector<double> a, std::size_t n) {
  double scale = 0.0;
  for (double v : a) scale = std::max(scale, std::abs(v));
  const double tiny = scale * static_cast<double>(n) * 1e-12 + 1e-300;
  std::vector<double> inv(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) inv[i * n + i] = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r * n + col]) > std::abs(a[piv * n + col])) piv = r;
    if (std::abs(a[piv * n + col]) < tiny)
      throw std::runtime_error("levmar_correlated: singular covariance");
    if (piv != col)
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[piv * n + j], a[col * n + j]);
        std::swap(inv[piv * n + j], inv[col * n + j]);
      }
    const double d = 1.0 / a[col * n + col];
    for (std::size_t j = 0; j < n; ++j) {
      a[col * n + j] *= d;
      inv[col * n + j] *= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r * n + col];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a[r * n + j] -= f * a[col * n + j];
        inv[r * n + j] -= f * inv[col * n + j];
      }
    }
  }
  return inv;
}

}  // namespace

std::vector<double> covariance_of_mean(
    const std::vector<std::vector<double>>& data, double shrinkage) {
  const std::size_t ns = data.size();
  const std::size_t nd = data.front().size();
  std::vector<double> mean(nd, 0.0);
  for (const auto& row : data)
    for (std::size_t i = 0; i < nd; ++i) mean[i] += row[i];
  for (auto& m : mean) m /= static_cast<double>(ns);

  std::vector<double> cov(nd * nd, 0.0);
  for (const auto& row : data)
    for (std::size_t i = 0; i < nd; ++i)
      for (std::size_t j = 0; j < nd; ++j)
        cov[i * nd + j] += (row[i] - mean[i]) * (row[j] - mean[j]);
  const double norm =
      1.0 / (static_cast<double>(ns - 1) * static_cast<double>(ns));
  for (auto& c : cov) c *= norm;

  if (shrinkage > 0.0)
    for (std::size_t i = 0; i < nd; ++i)
      for (std::size_t j = 0; j < nd; ++j)
        if (i != j) cov[i * nd + j] *= 1.0 - shrinkage;
  return cov;
}

FitResult levmar_correlated(const Model& model, const std::vector<double>& x,
                            const std::vector<std::vector<double>>& data,
                            std::vector<double> p0, double shrinkage,
                            const FitOptions& opts) {
  const std::size_t nd = x.size();
  if (data.empty() || data.front().size() != nd)
    throw std::invalid_argument("levmar_correlated: data/x size mismatch");
  std::vector<double> y(nd, 0.0);
  for (const auto& row : data)
    for (std::size_t i = 0; i < nd; ++i) y[i] += row[i];
  for (auto& v : y) v /= static_cast<double>(data.size());

  const auto cov = covariance_of_mean(data, shrinkage);
  const auto cinv = invert_dense(cov, nd);
  const std::size_t np = p0.size();

  auto chisq_of = [&](const std::vector<double>& p) {
    std::vector<double> r(nd);
    for (std::size_t i = 0; i < nd; ++i) r[i] = y[i] - model(p, x[i]);
    double c = 0;
    for (std::size_t i = 0; i < nd; ++i)
      for (std::size_t j = 0; j < nd; ++j)
        c += r[i] * cinv[i * nd + j] * r[j];
    return c;
  };

  FitResult res;
  res.dof = static_cast<int>(nd) - static_cast<int>(np);
  double lambda = opts.lambda0;
  double chisq = chisq_of(p0);

  for (int it = 0; it < opts.max_iter; ++it) {
    res.iterations = it + 1;
    std::vector<std::vector<double>> jac(nd, std::vector<double>(np));
    for (std::size_t j = 0; j < np; ++j) {
      const double h =
          1e-7 * (std::abs(p0[j]) > 1e-10 ? std::abs(p0[j]) : 1.0);
      auto pp = p0;
      pp[j] += h;
      for (std::size_t i = 0; i < nd; ++i)
        jac[i][j] = (model(pp, x[i]) - model(p0, x[i])) / h;
    }
    // A = J^T Cinv J, g = J^T Cinv r.
    std::vector<double> r(nd);
    for (std::size_t i = 0; i < nd; ++i) r[i] = y[i] - model(p0, x[i]);
    std::vector<double> cr(nd, 0.0);
    for (std::size_t i = 0; i < nd; ++i)
      for (std::size_t j = 0; j < nd; ++j)
        cr[i] += cinv[i * nd + j] * r[j];
    std::vector<std::vector<double>> a(np, std::vector<double>(np, 0.0));
    std::vector<double> grad(np, 0.0);
    for (std::size_t pj = 0; pj < np; ++pj) {
      for (std::size_t i = 0; i < nd; ++i) grad[pj] += jac[i][pj] * cr[i];
      for (std::size_t pk = 0; pk <= pj; ++pk) {
        double s = 0;
        for (std::size_t i = 0; i < nd; ++i)
          for (std::size_t j = 0; j < nd; ++j)
            s += jac[i][pj] * cinv[i * nd + j] * jac[j][pk];
        a[pj][pk] = s;
        a[pk][pj] = s;
      }
    }

    bool improved = false;
    for (int attempt = 0; attempt < 20 && !improved; ++attempt) {
      std::vector<double> dp;
      try {
        dp = solve_damped(a, grad, lambda);
      } catch (const std::runtime_error&) {
        lambda *= opts.lambda_up;
        continue;
      }
      auto pnew = p0;
      for (std::size_t j = 0; j < np; ++j) pnew[j] += dp[j];
      const double cnew = chisq_of(pnew);
      if (std::isfinite(cnew) && cnew < chisq) {
        const double rel = (chisq - cnew) / (chisq + 1e-300);
        p0 = std::move(pnew);
        chisq = cnew;
        lambda = std::max(lambda * opts.lambda_down, 1e-12);
        improved = true;
        if (rel < opts.tol) res.converged = true;
      } else {
        lambda *= opts.lambda_up;
      }
    }
    if (!improved) {
      res.converged = true;
      break;
    }
    if (res.converged) break;
  }

  // Errors from (J^T Cinv J)^-1 at the minimum.
  res.errors.assign(np, 0.0);
  {
    std::vector<std::vector<double>> jac(nd, std::vector<double>(np));
    for (std::size_t j = 0; j < np; ++j) {
      const double h =
          1e-7 * (std::abs(p0[j]) > 1e-10 ? std::abs(p0[j]) : 1.0);
      auto pp = p0;
      pp[j] += h;
      for (std::size_t i = 0; i < nd; ++i)
        jac[i][j] = (model(pp, x[i]) - model(p0, x[i])) / h;
    }
    std::vector<std::vector<double>> a(np, std::vector<double>(np, 0.0));
    for (std::size_t pj = 0; pj < np; ++pj)
      for (std::size_t pk = 0; pk < np; ++pk) {
        double s = 0;
        for (std::size_t i = 0; i < nd; ++i)
          for (std::size_t j = 0; j < nd; ++j)
            s += jac[i][pj] * cinv[i * nd + j] * jac[j][pk];
        a[pj][pk] = s;
      }
    for (std::size_t j = 0; j < np; ++j) {
      std::vector<double> unit(np, 0.0);
      unit[j] = 1.0;
      try {
        const auto col = solve_damped(a, unit, 0.0);
        if (col[j] > 0) res.errors[j] = std::sqrt(col[j]);
      } catch (const std::runtime_error&) {
      }
    }
  }

  res.params = std::move(p0);
  res.chisq = chisq;
  return res;
}

double two_state_correlator(const std::vector<double>& p, double t) {
  return p[0] * std::exp(-p[1] * t) * (1.0 + p[2] * std::exp(-p[3] * t));
}

double fh_effective_coupling(const std::vector<double>& p, double t) {
  return p[0] + (p[1] + p[2] * t) * std::exp(-p[3] * t);
}

double traditional_ratio(const std::vector<double>& p, double tsep) {
  return p[0] + p[1] * std::exp(-p[2] * tsep);
}

}  // namespace femto::stats
