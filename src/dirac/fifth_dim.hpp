#pragma once
// Fifth-dimension block operators for domain-wall / Mobius fermions.
//
// In the DeGrand-Rossi basis g5 = diag(+,+,-,-), so any operator of the
// form  a*I + b*(P+ shift_down + P- shift_up)  decouples into two real
// L5 x L5 matrices: one acting on the P+ spin pair {0,1}, one on the P-
// pair {2,3}.  FifthDimOp stores those two matrices and applies them per
// 4D site as dense matvecs.  Crucially the matrices are SITE-INDEPENDENT,
// so the even-even block of the Mobius operator is inverted once (SMat)
// and applied everywhere — the red-black preconditioning trick.

#include "lattice/flops.hpp"
#include "dirac/smat.hpp"
#include "lattice/field.hpp"
#include "parallel/thread_pool.hpp"

namespace femto {

/// The hopping matrix Lambda^+ acting on the P+ spin pair:
/// (L+)_{s,s-1} = 1 with chiral boundary (L+)_{0,L5-1} = -mf.
SMat lambda_plus(int l5, double mf);

/// The hopping matrix Lambda^- acting on the P- spin pair:
/// (L-)_{s,s+1} = 1 with chiral boundary (L-)_{L5-1,0} = -mf.
SMat lambda_minus(int l5, double mf);

/// An operator diagonal in 4D space: block `plus` on spins {0,1}, block
/// `minus` on spins {2,3}.
struct FifthDimOp {
  SMat plus;
  SMat minus;

  int l5() const { return plus.n(); }

  FifthDimOp transpose() const {
    return {plus.transpose(), minus.transpose()};
  }

  FifthDimOp operator*(const FifthDimOp& o) const {
    return {plus * o.plus, minus * o.minus};
  }

  FifthDimOp inverse() const { return {plus.inverse(), minus.inverse()}; }

  /// out(s) = sum_s' M(s,s') in(s') per site, per spin pair, per color.
  /// Views must share `sites` and l5 == n.
  template <typename T>
  void apply(const SpinorView<T>& out, const SpinorView<const T>& in,
             std::size_t grain = 256) const;
};

extern template void FifthDimOp::apply<double>(
    const SpinorView<double>&, const SpinorView<const double>&,
    std::size_t) const;
extern template void FifthDimOp::apply<float>(
    const SpinorView<float>&, const SpinorView<const float>&,
    std::size_t) const;

}  // namespace femto
