#pragma once
// The Wilson dslash: the radius-one stencil at the heart of the paper's
// workload.  Couples opposite 4D parities, which enables the red-black
// (even-odd) Schur preconditioning of the Mobius solve.
//
// Convention:
//   Dslash psi(x) = sum_mu [ U_mu(x) (1 - g_mu) psi(x+mu)
//                          + U_mu(x-mu)^dag (1 + g_mu) psi(x-mu) ]
// with antiperiodic fermion boundary conditions in time (sign carried by
// the Geometry's phase tables).  The dagger variant flips the projector
// signs (g5 Dslash g5 = Dslash^dag).
//
// The Wilson operator itself is  M = (4 + m) - (1/2) Dslash ; for domain-
// wall fermions m is the (negative) domain-wall height M5.

#include <cstddef>
#include <span>

#include "lattice/compressed_gauge.hpp"
#include "lattice/field.hpp"
#include "parallel/thread_pool.hpp"

namespace femto {

/// Which stencil implementation to run (swept by the autotuner alongside
/// the grain; see DESIGN.md §11).
///   kScalar        one 5D site at a time (the W=1 reference path)
///   kVector        fifth-dim-vectorized, lane-gathering from the standard
///                  [s5][site][real] layout
///   kVectorBlocked fifth-dim-vectorized over a lane-blocked transpose
///                  (BlockedSpinorView): contiguous vector loads at the
///                  cost of a pack/unpack pass per call
enum class DslashVariant : int { kScalar = 0, kVector = 1, kVectorBlocked = 2 };

inline const char* to_string(DslashVariant v) {
  switch (v) {
    case DslashVariant::kScalar: return "scalar";
    case DslashVariant::kVector: return "vector";
    default: return "vector_blocked";
  }
}

/// Tuning knobs for the stencil kernel (swept by the autotuner the same way
/// QUDA sweeps CUDA launch geometry).
struct DslashTuning {
  std::size_t grain = 512;  ///< minimum 4D sites per thread chunk
  DslashVariant variant = DslashVariant::kScalar;
  /// Gauge storage tier the operator should read (DESIGN.md §16).  The
  /// dslash entry points below take the container explicitly; this knob is
  /// how the tuned selection travels through MobiusOperator, which owns
  /// the compressed copies and dispatches on it.
  GaugeFormat format = GaugeFormat::kFull18;
};

/// Apply the dslash from parity (1 - out_parity) sites of @p in to parity
/// @p out_parity sites written to @p out, for every 5th-dim slice.
///
/// @p out and @p in are views with the SAME l5; the gauge field is 4D and
/// shared across slices.  If @p dagger, applies Dslash^dag.
template <typename T>
void dslash(const SpinorView<T>& out, const GaugeField<T>& u,
            const SpinorView<const T>& in, int out_parity, bool dagger,
            const DslashTuning& tune = {});

/// Multi-RHS dslash (DESIGN.md §12): apply the same stencil to B spinors
/// in one pass, gathering each site's 8 phased links ONCE and reusing them
/// for every RHS — the gauge stream is charged once per block instead of
/// once per RHS, which is the solver's biggest remaining bandwidth win.
///
/// All views must share (sites, stride, l5); per-RHS output is bitwise
/// identical to B independent dslash() calls for EVERY variant, because
/// the vector variants lay the RHS axis across SIMD lanes (lane j = RHS
/// r0+j) and lane arithmetic is elementwise:
///   kScalar        loops RHSs per site, links kept in registers
///   kVector        W-lane RHS gather from the standard layouts
///   kVectorBlocked RHS-lane-blocked transpose (BlockedMultiSpinor) for
///                  contiguous vector loads, pack/unpack per call
template <typename T>
void dslash_multi(std::span<const SpinorView<T>> out, const GaugeField<T>& u,
                  std::span<const SpinorView<const T>> in, int out_parity,
                  bool dagger, const DslashTuning& tune = {});

/// The stencil reading compressed links (DESIGN.md §16): every variant —
/// scalar, vector, vector_blocked — reads every storage tier, because the
/// kernel bodies are generic over the container and only its load()
/// differs.  recon12 is bit-compatible with full storage on SU(3) links
/// up to reconstruction rounding; recon8/fixed12 are the approximate
/// tiers the mixed-precision inner iterations are allowed to use.
template <typename T>
void dslash(const SpinorView<T>& out, const CompressedGaugeField<T>& u,
            const SpinorView<const T>& in, int out_parity, bool dagger,
            const DslashTuning& tune = {});
template <typename T>
void dslash(const SpinorView<T>& out, const Recon8GaugeField<T>& u,
            const SpinorView<const T>& in, int out_parity, bool dagger,
            const DslashTuning& tune = {});
template <typename T>
void dslash(const SpinorView<T>& out, const Fixed12GaugeField<T>& u,
            const SpinorView<const T>& in, int out_parity, bool dagger,
            const DslashTuning& tune = {});

/// Multi-RHS over compressed links: reconstruction cost amortizes across
/// the batch exactly like the gauge stream does (links are gathered once
/// per site for the whole block), so compression and multi-RHS multiply.
template <typename T>
void dslash_multi(std::span<const SpinorView<T>> out,
                  const CompressedGaugeField<T>& u,
                  std::span<const SpinorView<const T>> in, int out_parity,
                  bool dagger, const DslashTuning& tune = {});
template <typename T>
void dslash_multi(std::span<const SpinorView<T>> out,
                  const Recon8GaugeField<T>& u,
                  std::span<const SpinorView<const T>> in, int out_parity,
                  bool dagger, const DslashTuning& tune = {});
template <typename T>
void dslash_multi(std::span<const SpinorView<T>> out,
                  const Fixed12GaugeField<T>& u,
                  std::span<const SpinorView<const T>> in, int out_parity,
                  bool dagger, const DslashTuning& tune = {});

/// Back-compat alias for the recon12 stencil (pre-tier API).
template <typename T>
void dslash_compressed(const SpinorView<T>& out,
                       const CompressedGaugeField<T>& u,
                       const SpinorView<const T>& in, int out_parity,
                       bool dagger, const DslashTuning& tune = {});

/// Full-lattice Wilson operator: out = (4 + mass) in - 1/2 Dslash in.
/// Fields must be Subset::Full with matching l5.
template <typename T>
void wilson_op(SpinorField<T>& out, const GaugeField<T>& u,
               const SpinorField<T>& in, double mass, bool dagger = false,
               const DslashTuning& tune = {});
template <typename T>
void wilson_op(SpinorField<T>& out, const CompressedGaugeField<T>& u,
               const SpinorField<T>& in, double mass, bool dagger = false,
               const DslashTuning& tune = {});
template <typename T>
void wilson_op(SpinorField<T>& out, const Recon8GaugeField<T>& u,
               const SpinorField<T>& in, double mass, bool dagger = false,
               const DslashTuning& tune = {});
template <typename T>
void wilson_op(SpinorField<T>& out, const Fixed12GaugeField<T>& u,
               const SpinorField<T>& in, double mass, bool dagger = false,
               const DslashTuning& tune = {});

extern template void dslash<double>(const SpinorView<double>&,
                                    const GaugeField<double>&,
                                    const ConstSpinorView<const double>&, int,
                                    bool, const DslashTuning&);
extern template void dslash<float>(const SpinorView<float>&,
                                   const GaugeField<float>&,
                                   const ConstSpinorView<const float>&, int,
                                   bool, const DslashTuning&);
extern template void dslash_multi<double>(
    std::span<const SpinorView<double>>, const GaugeField<double>&,
    std::span<const SpinorView<const double>>, int, bool,
    const DslashTuning&);
extern template void dslash_multi<float>(
    std::span<const SpinorView<float>>, const GaugeField<float>&,
    std::span<const SpinorView<const float>>, int, bool, const DslashTuning&);
extern template void wilson_op<double>(SpinorField<double>&,
                                       const GaugeField<double>&,
                                       const SpinorField<double>&, double,
                                       bool, const DslashTuning&);
extern template void wilson_op<float>(SpinorField<float>&,
                                      const GaugeField<float>&,
                                      const SpinorField<float>&, double, bool,
                                      const DslashTuning&);

// Compressed-container overloads, both precisions x all three tiers.
#define FEMTO_EXTERN_DSLASH_FMT(T, GaugeT)                                   \
  extern template void dslash<T>(const SpinorView<T>&, const GaugeT<T>&,     \
                                 const SpinorView<const T>&, int, bool,      \
                                 const DslashTuning&);                       \
  extern template void dslash_multi<T>(std::span<const SpinorView<T>>,       \
                                       const GaugeT<T>&,                     \
                                       std::span<const SpinorView<const T>>, \
                                       int, bool, const DslashTuning&);      \
  extern template void wilson_op<T>(SpinorField<T>&, const GaugeT<T>&,       \
                                    const SpinorField<T>&, double, bool,     \
                                    const DslashTuning&);
FEMTO_EXTERN_DSLASH_FMT(double, CompressedGaugeField)
FEMTO_EXTERN_DSLASH_FMT(float, CompressedGaugeField)
FEMTO_EXTERN_DSLASH_FMT(double, Recon8GaugeField)
FEMTO_EXTERN_DSLASH_FMT(float, Recon8GaugeField)
FEMTO_EXTERN_DSLASH_FMT(double, Fixed12GaugeField)
FEMTO_EXTERN_DSLASH_FMT(float, Fixed12GaugeField)
#undef FEMTO_EXTERN_DSLASH_FMT

}  // namespace femto
