#include "dirac/wilson.hpp"

#include <type_traits>

#include "lattice/blas.hpp"
#include "lattice/blocked_spinor.hpp"
#include "lattice/flops.hpp"
#include "obs/trace.hpp"
#include "simd/vec.hpp"

namespace femto {

namespace {

// All three stencil variants share the arithmetic: Spinor<E>, project(),
// mul()/adj_mul(), reconstruct_add() are element-type generic, so the
// vector kernels instantiate them with E = simd::Vec<T, W> where lane j
// carries fifth-dim slice s0+j.  The gauge links are constant across the
// fifth dimension, so they broadcast to all lanes — the natural DWF
// vectorization (QUDA does the same with its fifth-dim-blocked kernels).
//
// The time-boundary phases (+-1) are folded into the per-site link copies
// once, outside the s5 loop: multiplying a link by -1 is exact and
// distributes exactly over the mat-vec, so this is bitwise identical to
// the seed kernel's per-s5 `h *= phase` branch while removing the branch
// from the inner loop entirely.

template <typename T, int W>
using V = simd::Vec<T, W>;

/// Deducible width tag: lets dslash_kernel select a width without explicit
/// template brackets at the call site (which would also hide the call from
/// femtolint's name-based kernel-traffic graph).
template <int W>
using WidthTag = std::integral_constant<int, W>;

/// Broadcast a scalar link into every lane.
template <int W, typename T>
ColorMat<V<T, W>> broadcast_mat(const ColorMat<T>& u) {
  ColorMat<V<T, W>> r;
  for (int i = 0; i < kNc * kNc; ++i) {
    r.m[static_cast<std::size_t>(i)] = {
        V<T, W>(u.m[static_cast<std::size_t>(i)].re),
        V<T, W>(u.m[static_cast<std::size_t>(i)].im)};
  }
  return r;
}

/// Gather a W-lane spinor from the standard layout: lane j reads the
/// spinor at fifth-dim slice s0+j (stride v.stride * kSpinorReals reals).
/// Lanes >= nl stay zero.
template <int W, typename T>
Spinor<V<T, W>> gather_spinor(const SpinorView<const T>& v, int s0,
                              std::int64_t i, int nl) {
  const T* base = v.data + v.offset(s0, i);
  const std::int64_t sstride = v.stride * kSpinorReals;
  Spinor<V<T, W>> p;
  for (int sp = 0; sp < kNs; ++sp)
    for (int c = 0; c < kNc; ++c) {
      const int k = (sp * kNc + c) * 2;
      V<T, W> re, im;
      for (int j = 0; j < nl; ++j) {
        const T* q = base + j * sstride;
        re.set(j, q[k]);
        im.set(j, q[k + 1]);
      }
      p[sp][c] = {re, im};
    }
  return p;
}

/// Scatter lanes [0, nl) back to the standard layout.
template <int W, typename T>
void scatter_spinor(const SpinorView<T>& v, int s0, std::int64_t i, int nl,
                    const Spinor<V<T, W>>& p) {
  T* base = v.data + v.offset(s0, i);
  const std::int64_t sstride = v.stride * kSpinorReals;
  for (int sp = 0; sp < kNs; ++sp)
    for (int c = 0; c < kNc; ++c) {
      const int k = (sp * kNc + c) * 2;
      for (int j = 0; j < nl; ++j) {
        T* q = base + j * sstride;
        q[k] = p[sp][c].re[j];
        q[k + 1] = p[sp][c].im[j];
      }
    }
}

/// Contiguous W-lane load from a lane-blocked site record ([real][lane]).
template <int W, typename T>
Spinor<V<T, W>> load_blocked(const T* q) {
  Spinor<V<T, W>> p;
  for (int sp = 0; sp < kNs; ++sp)
    for (int c = 0; c < kNc; ++c) {
      const int k = (sp * kNc + c) * 2;
      p[sp][c] = {V<T, W>::load(q + k * W), V<T, W>::load(q + (k + 1) * W)};
    }
  return p;
}

template <int W, typename T>
void store_blocked(T* q, const Spinor<V<T, W>>& p) {
  for (int sp = 0; sp < kNs; ++sp)
    for (int c = 0; c < kNc; ++c) {
      const int k = (sp * kNc + c) * 2;
      p[sp][c].re.store(q + k * W);
      p[sp][c].im.store(q + (k + 1) * W);
    }
}

/// Per-site stencil context: the 8 phased links and neighbour indices,
/// gathered once and reused across the whole fifth dimension.
template <typename T, typename GaugeT>
struct SiteLinks {
  ColorMat<T> ufwd[4], ubwd[4];
  std::int64_t nf[4], nb[4];

  SiteLinks(const Geometry& geom, const GaugeT& u, int out_parity,
            std::int64_t cb) {
    const std::int64_t volh = geom.half_volume();
    const int in_parity = 1 - out_parity;
    const std::int64_t gsite = std::int64_t(out_parity) * volh + cb;
    for (int mu = 0; mu < 4; ++mu) {
      nf[mu] = geom.neighbor_fwd(out_parity, cb, mu);
      nb[mu] = geom.neighbor_bwd(out_parity, cb, mu);
      ufwd[mu] = u.load(mu, gsite);
      ubwd[mu] = u.load(mu, std::int64_t(in_parity) * volh + nb[mu]);
      const T pf = static_cast<T>(geom.phase_fwd(out_parity, cb, mu));
      const T pb = static_cast<T>(geom.phase_bwd(out_parity, cb, mu));
      if (pf != T(1)) ufwd[mu] *= pf;
      if (pb != T(1)) ubwd[mu] *= pb;
    }
  }
};

/// The reference path: one 5D site at a time (phases pre-folded into the
/// links; otherwise the seed kernel).
template <typename T, typename GaugeT>
void dslash_body_scalar(const SpinorView<T>& out, const GaugeT& u,
                        const SpinorView<const T>& in, int out_parity,
                        bool dagger, std::size_t grain) {
  const Geometry& geom = u.geom();
  const int l5 = out.l5;
  const int fsign = dagger ? -1 : +1;
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(geom.half_volume()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t cbs = lo; cbs < hi; ++cbs) {
          const auto cb = static_cast<std::int64_t>(cbs);
          const SiteLinks<T, GaugeT> lk(geom, u, out_parity, cb);
          for (int s = 0; s < l5; ++s) {
            Spinor<T> acc;  // zero
            for (int mu = 0; mu < 4; ++mu) {
              // Forward: U_mu(x) (1 -+ g_mu) psi(x+mu)
              reconstruct_add(
                  mu, fsign,
                  mul(lk.ufwd[mu], project(mu, fsign, in.load(s, lk.nf[mu]))),
                  acc);
              // Backward: U_mu(x-mu)^dag (1 +- g_mu) psi(x-mu)
              reconstruct_add(mu, -fsign,
                              adj_mul(lk.ubwd[mu],
                                      project(mu, -fsign,
                                              in.load(s, lk.nb[mu]))),
                              acc);
            }
            out.store(s, cb, acc);
          }
        }
      },
      grain);
}

/// Fifth-dim-vectorized over the standard layout: lane loads are W-way
/// gathers, the 1320 flops/site run W lanes wide.
template <int W, typename T, typename GaugeT>
void dslash_body_vector(WidthTag<W>, const SpinorView<T>& out, const GaugeT& u,
                        const SpinorView<const T>& in, int out_parity,
                        bool dagger, std::size_t grain) {
  const Geometry& geom = u.geom();
  const int l5 = out.l5;
  const int fsign = dagger ? -1 : +1;
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(geom.half_volume()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t cbs = lo; cbs < hi; ++cbs) {
          const auto cb = static_cast<std::int64_t>(cbs);
          const SiteLinks<T, GaugeT> lk(geom, u, out_parity, cb);
          ColorMat<V<T, W>> vfwd[4], vbwd[4];
          for (int mu = 0; mu < 4; ++mu) {
            vfwd[mu] = broadcast_mat<W>(lk.ufwd[mu]);
            vbwd[mu] = broadcast_mat<W>(lk.ubwd[mu]);
          }
          for (int s0 = 0; s0 < l5; s0 += W) {
            const int nl = s0 + W <= l5 ? W : l5 - s0;
            Spinor<V<T, W>> acc;  // zero
            for (int mu = 0; mu < 4; ++mu) {
              reconstruct_add(
                  mu, fsign,
                  mul(vfwd[mu],
                      project(mu, fsign,
                              gather_spinor<W>(in, s0, lk.nf[mu], nl))),
                  acc);
              reconstruct_add(
                  mu, -fsign,
                  adj_mul(vbwd[mu],
                          project(mu, -fsign,
                                  gather_spinor<W>(in, s0, lk.nb[mu], nl))),
                  acc);
            }
            scatter_spinor<W>(out, s0, cb, nl, acc);
          }
        }
      },
      grain);
}

/// Fifth-dim-vectorized over the lane-blocked transpose: pack the input
/// parity, run the stencil with contiguous vector loads/stores, unpack the
/// output.  Charges the pack/unpack traffic on top of the compulsory
/// stencil traffic (see dslash_kernel).
template <int W, typename T, typename GaugeT>
void dslash_body_blocked(WidthTag<W>, const SpinorView<T>& out,
                         const GaugeT& u, const SpinorView<const T>& in,
                         int out_parity, bool dagger, std::size_t grain) {
  const Geometry& geom = u.geom();
  const int l5 = out.l5;
  const int fsign = dagger ? -1 : +1;

  // Thread-local scratch reused across calls (one pair per calling
  // thread); see BlockedSpinorView::reshape for why allocating fresh
  // buffers here would eat most of the blocked variant's win.
  thread_local BlockedSpinorView<T, W> bin(0, 0), bout(0, 0);
  bin.reshape(in.sites, l5);
  bout.reshape(out.sites, l5);
  bin.pack(in, grain);

  par::parallel_for_chunked(
      0, static_cast<std::size_t>(geom.half_volume()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t cbs = lo; cbs < hi; ++cbs) {
          const auto cb = static_cast<std::int64_t>(cbs);
          const SiteLinks<T, GaugeT> lk(geom, u, out_parity, cb);
          ColorMat<V<T, W>> vfwd[4], vbwd[4];
          for (int mu = 0; mu < 4; ++mu) {
            vfwd[mu] = broadcast_mat<W>(lk.ufwd[mu]);
            vbwd[mu] = broadcast_mat<W>(lk.ubwd[mu]);
          }
          for (int b = 0; b < bin.blocks(); ++b) {
            Spinor<V<T, W>> acc;  // zero
            for (int mu = 0; mu < 4; ++mu) {
              reconstruct_add(
                  mu, fsign,
                  mul(vfwd[mu],
                      project(mu, fsign,
                              load_blocked<W>(bin.block(b, lk.nf[mu])))),
                  acc);
              reconstruct_add(
                  mu, -fsign,
                  adj_mul(vbwd[mu],
                          project(mu, -fsign,
                                  load_blocked<W>(bin.block(b, lk.nb[mu])))),
                  acc);
            }
            store_blocked<W>(bout.block(b, cb), acc);
          }
        }
      },
      grain);

  bout.unpack(out, grain);
  // Pack reads the input parity and writes the blocked copy; unpack does
  // the reverse for the output.  Extra traffic the autotuner must see.
  const std::int64_t plain_bytes =
      in.sites * l5 * kSpinorReals * static_cast<std::int64_t>(sizeof(T));
  flops::add_bytes(2 * plain_bytes + bin.bytes() + bout.bytes());
}

// ---------------------------------------------------------------------------
// Multi-RHS bodies (DESIGN.md §12).  All of them hoist the SiteLinks
// gather outside the RHS loop so the 8 phased links are loaded once per
// site for the whole block; the vector bodies additionally lay the RHS
// axis across SIMD lanes (lane j = RHS r0+j), broadcasting each link to
// all lanes — the fifth dimension stays outermost because the RHS axis is
// uniform by construction, so every lane runs the identical stencil and
// per-RHS output stays bitwise equal to the scalar reference.
// ---------------------------------------------------------------------------

/// Gather a W-lane spinor whose lane j reads RHS j's spinor at @p bases[j]
/// (one common offset, per-RHS base pointers).  Lanes >= nl stay zero.
template <int W, typename T>
Spinor<V<T, W>> gather_rhs(const T* const* bases, int nl) {
  Spinor<V<T, W>> p;
  for (int sp = 0; sp < kNs; ++sp)
    for (int c = 0; c < kNc; ++c) {
      const int k = (sp * kNc + c) * 2;
      V<T, W> re, im;
      for (int j = 0; j < nl; ++j) {
        re.set(j, bases[j][k]);
        im.set(j, bases[j][k + 1]);
      }
      p[sp][c] = {re, im};
    }
  return p;
}

/// Scatter lanes [0, nl) back to per-RHS spinors.
template <int W, typename T>
void scatter_rhs(T* const* bases, int nl, const Spinor<V<T, W>>& p) {
  for (int sp = 0; sp < kNs; ++sp)
    for (int c = 0; c < kNc; ++c) {
      const int k = (sp * kNc + c) * 2;
      for (int j = 0; j < nl; ++j) {
        bases[j][k] = p[sp][c].re[j];
        bases[j][k + 1] = p[sp][c].im[j];
      }
    }
}

/// Reference multi path: per site, gather links once, then loop RHS x s5.
/// Per-RHS arithmetic is exactly dslash_body_scalar's.
template <typename T, typename GaugeT>
void dslash_multi_body_scalar(std::span<const SpinorView<T>> out,
                              const GaugeT& u,
                              std::span<const SpinorView<const T>> in,
                              int out_parity, bool dagger,
                              std::size_t grain) {
  const Geometry& geom = u.geom();
  const int l5 = out[0].l5;
  const int fsign = dagger ? -1 : +1;
  const std::size_t nb = out.size();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(geom.half_volume()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t cbs = lo; cbs < hi; ++cbs) {
          const auto cb = static_cast<std::int64_t>(cbs);
          const SiteLinks<T, GaugeT> lk(geom, u, out_parity, cb);
          for (std::size_t r = 0; r < nb; ++r) {
            for (int s = 0; s < l5; ++s) {
              Spinor<T> acc;  // zero
              for (int mu = 0; mu < 4; ++mu) {
                reconstruct_add(
                    mu, fsign,
                    mul(lk.ufwd[mu],
                        project(mu, fsign, in[r].load(s, lk.nf[mu]))),
                    acc);
                reconstruct_add(
                    mu, -fsign,
                    adj_mul(lk.ubwd[mu],
                            project(mu, -fsign, in[r].load(s, lk.nb[mu]))),
                    acc);
              }
              out[r].store(s, cb, acc);
            }
          }
        }
      },
      grain);
}

/// RHS-vectorized over the standard layouts: lane loads are W-way gathers
/// across the B input fields, links broadcast once per site.
template <int W, typename T, typename GaugeT>
void dslash_multi_body_vector(WidthTag<W>, std::span<const SpinorView<T>> out,
                              const GaugeT& u,
                              std::span<const SpinorView<const T>> in,
                              int out_parity, bool dagger,
                              std::size_t grain) {
  const Geometry& geom = u.geom();
  const int l5 = out[0].l5;
  const int fsign = dagger ? -1 : +1;
  const std::size_t nb = out.size();
  par::parallel_for_chunked(
      0, static_cast<std::size_t>(geom.half_volume()),
      [&](std::size_t lo, std::size_t hi) {
        const T* bases[W];
        T* obases[W];
        for (std::size_t cbs = lo; cbs < hi; ++cbs) {
          const auto cb = static_cast<std::int64_t>(cbs);
          const SiteLinks<T, GaugeT> lk(geom, u, out_parity, cb);
          ColorMat<V<T, W>> vfwd[4], vbwd[4];
          for (int mu = 0; mu < 4; ++mu) {
            vfwd[mu] = broadcast_mat<W>(lk.ufwd[mu]);
            vbwd[mu] = broadcast_mat<W>(lk.ubwd[mu]);
          }
          for (std::size_t r0 = 0; r0 < nb; r0 += W) {
            const int nl = r0 + W <= nb ? W : static_cast<int>(nb - r0);
            for (int s = 0; s < l5; ++s) {
              Spinor<V<T, W>> acc;  // zero
              for (int mu = 0; mu < 4; ++mu) {
                const std::int64_t offf = in[r0].offset(s, lk.nf[mu]);
                for (int j = 0; j < nl; ++j)
                  bases[j] = in[r0 + std::size_t(j)].data + offf;
                reconstruct_add(
                    mu, fsign,
                    mul(vfwd[mu],
                        project(mu, fsign, gather_rhs<W>(bases, nl))),
                    acc);
                const std::int64_t offb = in[r0].offset(s, lk.nb[mu]);
                for (int j = 0; j < nl; ++j)
                  bases[j] = in[r0 + std::size_t(j)].data + offb;
                reconstruct_add(
                    mu, -fsign,
                    adj_mul(vbwd[mu],
                            project(mu, -fsign, gather_rhs<W>(bases, nl))),
                    acc);
              }
              const std::int64_t offo = out[r0].offset(s, cb);
              for (int j = 0; j < nl; ++j)
                obases[j] = out[r0 + std::size_t(j)].data + offo;
              scatter_rhs<W>(obases, nl, acc);
            }
          }
        }
      },
      grain);
}

/// RHS-vectorized over the lane-blocked transpose: pack the B inputs into
/// [s5][rhs_block][site][real][lane] scratch, run the stencil with
/// contiguous vector loads/stores, unpack the B outputs.  Charges the
/// pack/unpack traffic on top of the compulsory stencil traffic.
template <int W, typename T, typename GaugeT>
void dslash_multi_body_blocked(WidthTag<W>, std::span<const SpinorView<T>> out,
                               const GaugeT& u,
                               std::span<const SpinorView<const T>> in,
                               int out_parity, bool dagger,
                               std::size_t grain) {
  const Geometry& geom = u.geom();
  const int l5 = out[0].l5;
  const int fsign = dagger ? -1 : +1;
  const int nb = static_cast<int>(out.size());

  thread_local BlockedMultiSpinor<T, W> bin(0, 0, 0), bout(0, 0, 0);
  bin.reshape(in[0].sites, l5, nb);
  bout.reshape(out[0].sites, l5, nb);
  bin.pack(in, grain);

  par::parallel_for_chunked(
      0, static_cast<std::size_t>(geom.half_volume()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t cbs = lo; cbs < hi; ++cbs) {
          const auto cb = static_cast<std::int64_t>(cbs);
          const SiteLinks<T, GaugeT> lk(geom, u, out_parity, cb);
          ColorMat<V<T, W>> vfwd[4], vbwd[4];
          for (int mu = 0; mu < 4; ++mu) {
            vfwd[mu] = broadcast_mat<W>(lk.ufwd[mu]);
            vbwd[mu] = broadcast_mat<W>(lk.ubwd[mu]);
          }
          for (int s = 0; s < l5; ++s) {
            for (int b = 0; b < bin.blocks(); ++b) {
              Spinor<V<T, W>> acc;  // zero
              for (int mu = 0; mu < 4; ++mu) {
                reconstruct_add(
                    mu, fsign,
                    mul(vfwd[mu],
                        project(mu, fsign,
                                load_blocked<W>(bin.block(s, b, lk.nf[mu])))),
                    acc);
                reconstruct_add(
                    mu, -fsign,
                    adj_mul(vbwd[mu],
                            project(mu, -fsign,
                                    load_blocked<W>(
                                        bin.block(s, b, lk.nb[mu])))),
                    acc);
              }
              store_blocked<W>(bout.block(s, b, cb), acc);
            }
          }
        }
      },
      grain);

  bout.unpack(out, grain);
  const std::int64_t plain_bytes =
      static_cast<std::int64_t>(nb) * in[0].sites * l5 * kSpinorReals *
      static_cast<std::int64_t>(sizeof(T));
  flops::add_bytes(2 * plain_bytes + bin.bytes() + bout.bytes());
}

/// Batched dispatch + traffic model.  The flop charge scales with B; the
/// compulsory byte charge streams each per-RHS spinor pair but the gauge
/// field ONCE per block — the amortization the femtoscope AI derivation
/// sees (bytes/site(B) in DESIGN.md §12).
template <typename T, typename GaugeT>
void dslash_kernel_multi(std::span<const SpinorView<T>> out, const GaugeT& u,
                         std::span<const SpinorView<const T>> in,
                         int out_parity, bool dagger,
                         const DslashTuning& tune) {
  FEMTO_TRACE_SCOPE("dirac", "dslash_multi");
  const std::size_t nb = out.size();
  if (nb == 0) return;
  FEMTO_ASSERT(in.size() == nb);
  for (std::size_t r = 0; r < nb; ++r) {
    FEMTO_ASSERT(out[r].l5 == out[0].l5 && in[r].l5 == out[0].l5);
    FEMTO_ASSERT(out[r].sites == out[0].sites && in[r].sites == in[0].sites);
    FEMTO_ASSERT(out[r].stride == out[0].stride &&
                 in[r].stride == in[0].stride);
  }
  constexpr int W = simd::kWidth<T>;
  switch (tune.variant) {
    case DslashVariant::kVector:
      dslash_multi_body_vector(WidthTag<W>{}, out, u, in, out_parity, dagger,
                               tune.grain);
      break;
    case DslashVariant::kVectorBlocked:
      dslash_multi_body_blocked(WidthTag<W>{}, out, u, in, out_parity,
                                dagger, tune.grain);
      break;
    default:
      dslash_multi_body_scalar(out, u, in, out_parity, dagger, tune.grain);
      break;
  }

  const std::int64_t volh = u.geom().half_volume();
  const int l5 = out[0].l5;
  flops::add(static_cast<std::int64_t>(nb) * flops::kWilsonDslashPerSite *
             volh * l5);
  // Compulsory traffic: each RHS streams its input parity in and output
  // parity out, but the gauge field is gathered once per SITE for the
  // whole block (SiteLinks hoisted above the RHS loop) — links cost
  // u.bytes() per batched call, not per RHS.
  const std::int64_t spinor_bytes =
      volh * l5 * kSpinorReals * static_cast<std::int64_t>(sizeof(T));
  flops::add_bytes(static_cast<std::int64_t>(nb) * 2 * spinor_bytes +
                   u.bytes());
}

/// The stencil body, generic over the gauge container (full 18-real
/// storage or reconstruct-12 compressed) — the container's load() is the
/// only thing that differs.  Dispatches on the tuned variant; the vector
/// paths run at the build's native width (Vec<T, 1> when FEMTO_SIMD=OFF).
template <typename T, typename GaugeT>
void dslash_kernel(const SpinorView<T>& out, const GaugeT& u,
                   const SpinorView<const T>& in, int out_parity,
                   bool dagger, const DslashTuning& tune) {
  FEMTO_TRACE_SCOPE("dirac", "dslash");
  constexpr int W = simd::kWidth<T>;
  switch (tune.variant) {
    case DslashVariant::kVector:
      dslash_body_vector(WidthTag<W>{}, out, u, in, out_parity, dagger,
                         tune.grain);
      break;
    case DslashVariant::kVectorBlocked:
      dslash_body_blocked(WidthTag<W>{}, out, u, in, out_parity, dagger,
                          tune.grain);
      break;
    default:
      dslash_body_scalar(out, u, in, out_parity, dagger, tune.grain);
      break;
  }

  const std::int64_t volh = u.geom().half_volume();
  const int l5 = out.l5;
  flops::add(flops::kWilsonDslashPerSite * volh * l5);
  // Compulsory traffic: stream the input parity once, the gauge field once
  // (8 links per output site = one pass over all 4 volh * 2 links; s5
  // re-reads are cache hits), and write the output parity.
  const std::int64_t spinor_bytes =
      volh * l5 * kSpinorReals * static_cast<std::int64_t>(sizeof(T));
  flops::add_bytes(2 * spinor_bytes + u.bytes());
}

}  // namespace

template <typename T>
void dslash(const SpinorView<T>& out, const GaugeField<T>& u,
            const SpinorView<const T>& in, int out_parity, bool dagger,
            const DslashTuning& tune) {
  dslash_kernel<T>(out, u, in, out_parity, dagger, tune);
}

template <typename T>
void dslash_multi(std::span<const SpinorView<T>> out, const GaugeField<T>& u,
                  std::span<const SpinorView<const T>> in, int out_parity,
                  bool dagger, const DslashTuning& tune) {
  dslash_kernel_multi<T>(out, u, in, out_parity, dagger, tune);
}

template <typename T>
void dslash(const SpinorView<T>& out, const CompressedGaugeField<T>& u,
            const SpinorView<const T>& in, int out_parity, bool dagger,
            const DslashTuning& tune) {
  dslash_kernel<T>(out, u, in, out_parity, dagger, tune);
}

template <typename T>
void dslash(const SpinorView<T>& out, const Recon8GaugeField<T>& u,
            const SpinorView<const T>& in, int out_parity, bool dagger,
            const DslashTuning& tune) {
  dslash_kernel<T>(out, u, in, out_parity, dagger, tune);
}

template <typename T>
void dslash(const SpinorView<T>& out, const Fixed12GaugeField<T>& u,
            const SpinorView<const T>& in, int out_parity, bool dagger,
            const DslashTuning& tune) {
  dslash_kernel<T>(out, u, in, out_parity, dagger, tune);
}

template <typename T>
void dslash_multi(std::span<const SpinorView<T>> out,
                  const CompressedGaugeField<T>& u,
                  std::span<const SpinorView<const T>> in, int out_parity,
                  bool dagger, const DslashTuning& tune) {
  dslash_kernel_multi<T>(out, u, in, out_parity, dagger, tune);
}

template <typename T>
void dslash_multi(std::span<const SpinorView<T>> out,
                  const Recon8GaugeField<T>& u,
                  std::span<const SpinorView<const T>> in, int out_parity,
                  bool dagger, const DslashTuning& tune) {
  dslash_kernel_multi<T>(out, u, in, out_parity, dagger, tune);
}

template <typename T>
void dslash_multi(std::span<const SpinorView<T>> out,
                  const Fixed12GaugeField<T>& u,
                  std::span<const SpinorView<const T>> in, int out_parity,
                  bool dagger, const DslashTuning& tune) {
  dslash_kernel_multi<T>(out, u, in, out_parity, dagger, tune);
}

template <typename T>
void dslash_compressed(const SpinorView<T>& out,
                       const CompressedGaugeField<T>& u,
                       const SpinorView<const T>& in, int out_parity,
                       bool dagger, const DslashTuning& tune) {
  dslash_kernel<T>(out, u, in, out_parity, dagger, tune);
}

namespace {

template <typename T, typename GaugeT>
void wilson_op_kernel(SpinorField<T>& out, const GaugeT& u,
                      const SpinorField<T>& in, double mass, bool dagger,
                      const DslashTuning& tune) {
  assert(out.subset() == Subset::Full && in.subset() == Subset::Full);
  assert(out.l5() == in.l5());
  // Hopping term parity by parity.
  for (int par = 0; par < 2; ++par) {
    dslash_kernel<T>(parity_view(out, par), u, parity_view(in, 1 - par), par,
                     dagger, tune);
  }
  // out = (4+mass) in - 1/2 out, honoring the tuned dslash grain (given in
  // 4D sites; the BLAS kernel chunks over reals).
  const std::size_t grain_reals =
      tune.grain * static_cast<std::size_t>(kSpinorReals) *
      static_cast<std::size_t>(out.l5());
  blas::axpby<T>(4.0 + mass, in, -0.5, out, grain_reals);
}

}  // namespace

template <typename T>
void wilson_op(SpinorField<T>& out, const GaugeField<T>& u,
               const SpinorField<T>& in, double mass, bool dagger,
               const DslashTuning& tune) {
  wilson_op_kernel<T>(out, u, in, mass, dagger, tune);
}

template <typename T>
void wilson_op(SpinorField<T>& out, const CompressedGaugeField<T>& u,
               const SpinorField<T>& in, double mass, bool dagger,
               const DslashTuning& tune) {
  wilson_op_kernel<T>(out, u, in, mass, dagger, tune);
}

template <typename T>
void wilson_op(SpinorField<T>& out, const Recon8GaugeField<T>& u,
               const SpinorField<T>& in, double mass, bool dagger,
               const DslashTuning& tune) {
  wilson_op_kernel<T>(out, u, in, mass, dagger, tune);
}

template <typename T>
void wilson_op(SpinorField<T>& out, const Fixed12GaugeField<T>& u,
               const SpinorField<T>& in, double mass, bool dagger,
               const DslashTuning& tune) {
  wilson_op_kernel<T>(out, u, in, mass, dagger, tune);
}

template void dslash<double>(const SpinorView<double>&,
                             const GaugeField<double>&,
                             const SpinorView<const double>&, int, bool,
                             const DslashTuning&);
template void dslash<float>(const SpinorView<float>&, const GaugeField<float>&,
                            const SpinorView<const float>&, int, bool,
                            const DslashTuning&);
template void dslash_multi<double>(std::span<const SpinorView<double>>,
                                   const GaugeField<double>&,
                                   std::span<const SpinorView<const double>>,
                                   int, bool, const DslashTuning&);
template void dslash_multi<float>(std::span<const SpinorView<float>>,
                                  const GaugeField<float>&,
                                  std::span<const SpinorView<const float>>,
                                  int, bool, const DslashTuning&);
template void dslash_compressed<double>(const SpinorView<double>&,
                                        const CompressedGaugeField<double>&,
                                        const SpinorView<const double>&, int,
                                        bool, const DslashTuning&);
template void dslash_compressed<float>(const SpinorView<float>&,
                                       const CompressedGaugeField<float>&,
                                       const SpinorView<const float>&, int,
                                       bool, const DslashTuning&);
template void wilson_op<double>(SpinorField<double>&, const GaugeField<double>&,
                                const SpinorField<double>&, double, bool,
                                const DslashTuning&);
template void wilson_op<float>(SpinorField<float>&, const GaugeField<float>&,
                               const SpinorField<float>&, double, bool,
                               const DslashTuning&);

#define FEMTO_INSTANTIATE_DSLASH_FMT(T, GaugeT)                              \
  template void dslash<T>(const SpinorView<T>&, const GaugeT<T>&,            \
                          const SpinorView<const T>&, int, bool,             \
                          const DslashTuning&);                              \
  template void dslash_multi<T>(std::span<const SpinorView<T>>,              \
                                const GaugeT<T>&,                            \
                                std::span<const SpinorView<const T>>, int,   \
                                bool, const DslashTuning&);                  \
  template void wilson_op<T>(SpinorField<T>&, const GaugeT<T>&,              \
                             const SpinorField<T>&, double, bool,            \
                             const DslashTuning&);
FEMTO_INSTANTIATE_DSLASH_FMT(double, CompressedGaugeField)
FEMTO_INSTANTIATE_DSLASH_FMT(float, CompressedGaugeField)
FEMTO_INSTANTIATE_DSLASH_FMT(double, Recon8GaugeField)
FEMTO_INSTANTIATE_DSLASH_FMT(float, Recon8GaugeField)
FEMTO_INSTANTIATE_DSLASH_FMT(double, Fixed12GaugeField)
FEMTO_INSTANTIATE_DSLASH_FMT(float, Fixed12GaugeField)
#undef FEMTO_INSTANTIATE_DSLASH_FMT

}  // namespace femto
