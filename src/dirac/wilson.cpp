#include "dirac/wilson.hpp"

#include "lattice/blas.hpp"
#include "lattice/flops.hpp"
#include "obs/trace.hpp"

namespace femto {

namespace {

/// The stencil body, generic over the gauge container (full 18-real
/// storage or reconstruct-12 compressed) — the container's load() is the
/// only thing that differs.
template <typename T, typename GaugeT>
void dslash_kernel(const SpinorView<T>& out, const GaugeT& u,
                   const SpinorView<const T>& in, int out_parity,
                   bool dagger, const DslashTuning& tune) {
  FEMTO_TRACE_SCOPE("dirac", "dslash");
  const Geometry& geom = u.geom();
  const std::int64_t volh = geom.half_volume();
  const int in_parity = 1 - out_parity;
  const int l5 = out.l5;
  // Projector sign: forward hop uses (1 - g_mu) (sign +1); dagger flips it.
  const int fsign = dagger ? -1 : +1;

  par::parallel_for_chunked(
      0, static_cast<std::size_t>(volh),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t cbs = lo; cbs < hi; ++cbs) {
          const auto cb = static_cast<std::int64_t>(cbs);
          const std::int64_t gsite = std::int64_t(out_parity) * volh + cb;
          // Gather the 8 gauge links once per 4D site; reuse across s5.
          ColorMat<T> ufwd[4], ubwd[4];
          std::int64_t nf[4], nb[4];
          T pf[4], pb[4];
          for (int mu = 0; mu < 4; ++mu) {
            nf[mu] = geom.neighbor_fwd(out_parity, cb, mu);
            nb[mu] = geom.neighbor_bwd(out_parity, cb, mu);
            ufwd[mu] = u.load(mu, gsite);
            const std::int64_t bw_site = std::int64_t(in_parity) * volh +
                                         nb[mu];
            ubwd[mu] = u.load(mu, bw_site);
            pf[mu] = static_cast<T>(geom.phase_fwd(out_parity, cb, mu));
            pb[mu] = static_cast<T>(geom.phase_bwd(out_parity, cb, mu));
          }
          for (int s = 0; s < l5; ++s) {
            Spinor<T> acc;  // zero
            for (int mu = 0; mu < 4; ++mu) {
              // Forward: U_mu(x) (1 -+ g_mu) psi(x+mu)
              {
                const Spinor<T> nb_sp = in.load(s, nf[mu]);
                HalfSpinor<T> h = project(mu, fsign, nb_sp);
                h = mul(ufwd[mu], h);
                if (pf[mu] != T(1)) {
                  h[0] *= pf[mu];
                  h[1] *= pf[mu];
                }
                reconstruct_add(mu, fsign, h, acc);
              }
              // Backward: U_mu(x-mu)^dag (1 +- g_mu) psi(x-mu)
              {
                const Spinor<T> nb_sp = in.load(s, nb[mu]);
                HalfSpinor<T> h = project(mu, -fsign, nb_sp);
                h = adj_mul(ubwd[mu], h);
                if (pb[mu] != T(1)) {
                  h[0] *= pb[mu];
                  h[1] *= pb[mu];
                }
                reconstruct_add(mu, -fsign, h, acc);
              }
            }
            out.store(s, cb, acc);
          }
        }
      },
      tune.grain);

  flops::add(flops::kWilsonDslashPerSite * volh * l5);
  // Compulsory traffic: stream the input parity once, the gauge field once
  // (8 links per output site = one pass over all 4 volh * 2 links; s5
  // re-reads are cache hits), and write the output parity.
  const std::int64_t spinor_bytes =
      volh * l5 * kSpinorReals * static_cast<std::int64_t>(sizeof(T));
  flops::add_bytes(2 * spinor_bytes + u.bytes());
}

}  // namespace

template <typename T>
void dslash(const SpinorView<T>& out, const GaugeField<T>& u,
            const SpinorView<const T>& in, int out_parity, bool dagger,
            const DslashTuning& tune) {
  dslash_kernel<T>(out, u, in, out_parity, dagger, tune);
}

template <typename T>
void dslash_compressed(const SpinorView<T>& out,
                       const CompressedGaugeField<T>& u,
                       const SpinorView<const T>& in, int out_parity,
                       bool dagger, const DslashTuning& tune) {
  dslash_kernel<T>(out, u, in, out_parity, dagger, tune);
}

template <typename T>
void wilson_op(SpinorField<T>& out, const GaugeField<T>& u,
               const SpinorField<T>& in, double mass, bool dagger,
               const DslashTuning& tune) {
  assert(out.subset() == Subset::Full && in.subset() == Subset::Full);
  assert(out.l5() == in.l5());
  // Hopping term parity by parity.
  for (int par = 0; par < 2; ++par) {
    dslash<T>(parity_view(out, par), u, parity_view(in, 1 - par), par, dagger,
              tune);
  }
  // out = (4+mass) in - 1/2 out, honoring the tuned dslash grain (given in
  // 4D sites; the BLAS kernel chunks over reals).
  const std::size_t grain_reals =
      tune.grain * static_cast<std::size_t>(kSpinorReals) *
      static_cast<std::size_t>(out.l5());
  blas::axpby<T>(4.0 + mass, in, -0.5, out, grain_reals);
}

template void dslash<double>(const SpinorView<double>&,
                             const GaugeField<double>&,
                             const SpinorView<const double>&, int, bool,
                             const DslashTuning&);
template void dslash<float>(const SpinorView<float>&, const GaugeField<float>&,
                            const SpinorView<const float>&, int, bool,
                            const DslashTuning&);
template void dslash_compressed<double>(const SpinorView<double>&,
                                        const CompressedGaugeField<double>&,
                                        const SpinorView<const double>&, int,
                                        bool, const DslashTuning&);
template void dslash_compressed<float>(const SpinorView<float>&,
                                       const CompressedGaugeField<float>&,
                                       const SpinorView<const float>&, int,
                                       bool, const DslashTuning&);
template void wilson_op<double>(SpinorField<double>&, const GaugeField<double>&,
                                const SpinorField<double>&, double, bool,
                                const DslashTuning&);
template void wilson_op<float>(SpinorField<float>&, const GaugeField<float>&,
                               const SpinorField<float>&, double, bool,
                               const DslashTuning&);

}  // namespace femto
