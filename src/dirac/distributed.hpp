#pragma once
// A distributed Wilson dslash over the femtocomm halo machinery: the
// paper's four-step stencil prescription executed for real across ranks —
//
//   1) pack the halo into contiguous buffers
//   2) communicate halos to neighbours
//   3) compute the interior stencil
//   4) complete the halo stencil once faces arrive
//
// Each rank owns a lexicographic local block of the global lattice (its
// spinor and gauge fields) with one ghost layer per face.  The spinor
// halo is exchanged per application; the gauge halo (backward hops read
// U_mu(x - mu), which lives on the -mu neighbour for boundary sites) is
// exchanged once at setup.  Any process grid and any communication
// policy must reproduce the single-rank kernel bit-for-bit up to
// summation order — the decomposition-independence test of the whole
// comm stack.

#include <array>

#include "comm/halo.hpp"
#include "lattice/compressed_gauge.hpp"
#include "lattice/field.hpp"
#include "lattice/spinor.hpp"

namespace femto {

/// Geometry of one rank's share of a distributed lattice.
struct DistributedLattice {
  std::array<int, 4> global{8, 8, 8, 8};
  comm::ProcessGrid grid{{1, 1, 1, 1}};

  std::array<int, 4> local_extents() const {
    std::array<int, 4> l{};
    for (int mu = 0; mu < 4; ++mu)
      l[static_cast<std::size_t>(mu)] = comm::ProcessGrid::local_extent(
          global[static_cast<std::size_t>(mu)], grid.dim(mu));
    return l;
  }

  /// Global coordinate of this rank's origin.
  std::array<int, 4> origin(int rank) const {
    const auto pc = grid.coords_of(rank);
    const auto l = local_extents();
    return {pc[0] * l[0], pc[1] * l[1], pc[2] * l[2], pc[3] * l[3]};
  }
};

/// Reals per site in the distributed containers.
inline constexpr int kDistSpinorReals = kSpinorReals;        // 24
inline constexpr int kDistGaugeReals = 4 * kLinkReals;       // 72

/// Extract this rank's local spinor block (with ghost buffers allocated)
/// from a full-lattice field.
comm::HaloField scatter_spinor(const DistributedLattice& dl, int rank,
                               const SpinorField<double>& full);

/// Extract this rank's local gauge block (all four directions per site).
comm::HaloField scatter_gauge(const DistributedLattice& dl, int rank,
                              const GaugeField<double>& full);

/// Write a rank's local block of @p local back into the full field.
void gather_spinor(const DistributedLattice& dl, int rank,
                   const comm::HaloField& local, SpinorField<double>& full);

/// Doubles per site on the wire for the gauge-halo exchange in format
/// @p f: full18 72, recon12 48, recon8 32, fixed12 16 (per link, 12 int16
/// + a float scale packed into 4 doubles via memcpy).
std::int64_t gauge_wire_reals(GaugeFormat f);

/// Exchange the one-time gauge halo in storage tier @p fmt.  full18
/// delegates to the plain exchange (bitwise-identical to the pre-tier
/// path); the compressed tiers encode each site's four links with the
/// per-link codecs from lattice/compressed_gauge.hpp into a reduced-width
/// wire field, exchange THAT (so @p stats accounts the compressed payload
/// — wire bytes drop 33-66%), and decode the received faces back into
/// @p gauge's full-precision ghost buffers.  Interior links are untouched.
/// Collective, like the exchange it wraps.
void exchange_gauge_halo(comm::RankHandle& h, const DistributedLattice& dl,
                         comm::HaloExchanger& ex, comm::HaloField& gauge,
                         GaugeFormat fmt = GaugeFormat::kFull18,
                         comm::HaloStats* stats = nullptr);

/// Apply the Wilson dslash on this rank's block.  Collective: every rank
/// must call it with the same exchanger; the spinor halo exchange happens
/// inside, the gauge halo must have been exchanged beforehand (once).
///
/// Uses the same conventions as the single-rank kernel (antiperiodic time
/// boundary applied at the GLOBAL boundary, dagger flag flips the
/// projectors).
void distributed_dslash(comm::RankHandle& h, const DistributedLattice& dl,
                        comm::HaloExchanger& ex, comm::HaloField& psi,
                        const comm::HaloField& gauge,
                        comm::HaloField& out, bool dagger = false,
                        comm::HaloStats* stats = nullptr);

/// The same operator with the paper's 4-step overlap structure executed
/// literally: (1) pack + post halos, (2) [communication in flight],
/// (3) compute the INTERIOR stencil, (4) receive ghosts and complete the
/// halo sites.  Bit-identical to distributed_dslash (tests enforce it);
/// the split is what lets the communication hide behind the interior
/// kernel on a real machine.
void distributed_dslash_overlapped(comm::RankHandle& h,
                                   const DistributedLattice& dl,
                                   comm::HaloExchanger& ex,
                                   comm::HaloField& psi,
                                   const comm::HaloField& gauge,
                                   comm::HaloField& out,
                                   bool dagger = false,
                                   comm::HaloStats* stats = nullptr);

}  // namespace femto
