#include "dirac/wilson_eo.hpp"

#include "lattice/blas.hpp"

namespace femto {

template <typename T>
WilsonEoOperator<T>::WilsonEoOperator(std::shared_ptr<const GaugeField<T>> u,
                                      double mass, DslashTuning tune)
    : u_(std::move(u)),
      mass_(mass),
      tune_(tune),
      tmp_e_(u_->geom_ptr(), 1, Subset::Even),
      tmp_o_(u_->geom_ptr(), 1, Subset::Odd) {}

template <typename T>
void WilsonEoOperator<T>::apply_full(SpinorField<T>& out,
                                     const SpinorField<T>& in,
                                     bool dagger) const {
  wilson_op<T>(out, *u_, in, mass_, dagger, tune_);
}

template <typename T>
void WilsonEoOperator<T>::apply_schur(SpinorField<T>& out,
                                      const SpinorField<T>& in,
                                      bool dagger) const {
  assert(out.subset() == Subset::Odd && in.subset() == Subset::Odd);
  const double a = 4.0 + mass_;
  dslash<T>(view(tmp_e_), *u_, view(in), /*out_parity=*/0, dagger, tune_);
  dslash<T>(view(out), *u_, cview(tmp_e_), /*out_parity=*/1, dagger, tune_);
  // out = a * in - 1/(4a) * out
  blas::scal(-1.0 / (4.0 * a), out);
  blas::axpy(a, in, out);
}

template <typename T>
void WilsonEoOperator<T>::apply_normal(SpinorField<T>& out,
                                       const SpinorField<T>& in) const {
  SpinorField<T> mid(u_->geom_ptr(), 1, Subset::Odd);
  apply_schur(mid, in, false);
  apply_schur(out, mid, true);
}

template <typename T>
void WilsonEoOperator<T>::prepare_source(SpinorField<T>& bhat_odd,
                                         const SpinorField<T>& b_full) const {
  assert(bhat_odd.subset() == Subset::Odd);
  const double a = 4.0 + mass_;
  // tmp_e = b_e (copy the even half), then bhat = b_o + 1/(2a) Dsl_oe b_e.
  const auto be = parity_view(b_full, 0);
  const auto te = view(tmp_e_);
  for (std::int64_t i = 0; i < te.sites; ++i) te.store(0, i, be.load(0, i));
  dslash<T>(view(bhat_odd), *u_, cview(tmp_e_), /*out_parity=*/1, false,
            tune_);
  blas::scal(1.0 / (2.0 * a), bhat_odd);
  const auto bo = parity_view(b_full, 1);
  const auto to = view(tmp_o_);
  for (std::int64_t i = 0; i < to.sites; ++i) to.store(0, i, bo.load(0, i));
  blas::axpy(1.0, tmp_o_, bhat_odd);
}

template <typename T>
void WilsonEoOperator<T>::reconstruct(SpinorField<T>& x_full,
                                      const SpinorField<T>& x_odd,
                                      const SpinorField<T>& b_full) const {
  const double a = 4.0 + mass_;
  // x_e = (b_e + 1/2 Dsl_eo x_o) / a
  dslash<T>(view(tmp_e_), *u_, view(x_odd), /*out_parity=*/0, false, tune_);
  blas::scal(0.5 / a, tmp_e_);
  const auto be = parity_view(b_full, 0);
  const auto xe = parity_view(x_full, 0);
  const auto te = cview(tmp_e_);
  for (std::int64_t i = 0; i < te.sites; ++i) {
    auto v = be.load(0, i);
    v *= 1.0 / a;
    v += te.load(0, i);
    xe.store(0, i, v);
  }
  const auto xo = parity_view(x_full, 1);
  const auto xi = view(x_odd);
  for (std::int64_t i = 0; i < xo.sites; ++i) xo.store(0, i, xi.load(0, i));
}

template class WilsonEoOperator<double>;
template class WilsonEoOperator<float>;

}  // namespace femto
