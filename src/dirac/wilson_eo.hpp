#pragma once
// Even-odd preconditioned WILSON operator: the simplest red-black Schur
// system (the even-even block is the scalar 4+m, so the preconditioning
// machinery is transparent).  Included alongside Mobius both as a second
// fully-tested operator path and because Wilson solves are the standard
// cheap probe in production QCD test suites.
//
//   M      = (4+m) - 1/2 Dslash
//   M_ee   = (4+m) I                   (trivially invertible)
//   Mhat   = (4+m) - 1/(4(4+m)) Dslash_oe Dslash_eo     (odd sites)
//   bhat_o = b_o + 1/(2(4+m)) Dslash_oe b_e
//   x_e    = (b_e + 1/2 Dslash_eo x_o) / (4+m)

#include <memory>

#include "dirac/wilson.hpp"
#include "lattice/field.hpp"

namespace femto {

template <typename T>
class WilsonEoOperator {
 public:
  WilsonEoOperator(std::shared_ptr<const GaugeField<T>> u, double mass,
                   DslashTuning tune = {});

  double mass() const { return mass_; }
  std::shared_ptr<const Geometry> geom_ptr() const { return u_->geom_ptr(); }

  /// Full operator on Subset::Full 4D fields (l5 == 1).
  void apply_full(SpinorField<T>& out, const SpinorField<T>& in,
                  bool dagger = false) const;

  /// Schur operator on Subset::Odd fields.
  void apply_schur(SpinorField<T>& out, const SpinorField<T>& in,
                   bool dagger = false) const;

  /// Mhat^dag Mhat (for CGNE).
  void apply_normal(SpinorField<T>& out, const SpinorField<T>& in) const;

  void prepare_source(SpinorField<T>& bhat_odd,
                      const SpinorField<T>& b_full) const;
  void reconstruct(SpinorField<T>& x_full, const SpinorField<T>& x_odd,
                   const SpinorField<T>& b_full) const;

 private:
  std::shared_ptr<const GaugeField<T>> u_;
  double mass_;
  DslashTuning tune_;
  mutable SpinorField<T> tmp_e_, tmp_o_;
};

extern template class WilsonEoOperator<double>;
extern template class WilsonEoOperator<float>;

}  // namespace femto
