#include "dirac/fifth_dim.hpp"

#include "obs/trace.hpp"

namespace femto {

SMat lambda_plus(int l5, double mf) {
  SMat m(l5);
  for (int s = 1; s < l5; ++s) m(s, s - 1) = 1.0;
  m(0, l5 - 1) = -mf;
  return m;
}

SMat lambda_minus(int l5, double mf) {
  SMat m(l5);
  for (int s = 0; s < l5 - 1; ++s) m(s, s + 1) = 1.0;
  m(l5 - 1, 0) = -mf;
  return m;
}

template <typename T>
void FifthDimOp::apply(const SpinorView<T>& out,
                       const SpinorView<const T>& in,
                       std::size_t grain) const {
  FEMTO_TRACE_SCOPE("dirac", "fifth_dim_op");
  const int n = l5();
  assert(n <= kMaxL5);
  assert(out.l5 == n && in.l5 == n);
  assert(out.sites == in.sites);

  par::parallel_for_chunked(
      0, static_cast<std::size_t>(out.sites),
      [&](std::size_t lo, std::size_t hi) {
        Spinor<T> buf[kMaxL5];
        for (std::size_t i = lo; i < hi; ++i) {
          const auto site = static_cast<std::int64_t>(i);
          for (int s = 0; s < n; ++s) buf[s] = in.load(s, site);
          for (int s = 0; s < n; ++s) {
            Spinor<T> acc;
            const double* rp = plus.row(s);
            const double* rm = minus.row(s);
            for (int sp = 0; sp < n; ++sp) {
              const T cp = static_cast<T>(rp[sp]);
              const T cm = static_cast<T>(rm[sp]);
              if (cp != T(0)) {
                for (int c = 0; c < kNc; ++c) {
                  acc[0][c] += cp * buf[sp][0][c];
                  acc[1][c] += cp * buf[sp][1][c];
                }
              }
              if (cm != T(0)) {
                for (int c = 0; c < kNc; ++c) {
                  acc[2][c] += cm * buf[sp][2][c];
                  acc[3][c] += cm * buf[sp][3][c];
                }
              }
            }
            out.store(s, site, acc);
          }
        }
      },
      grain);

  flops::add(flops::fifth_dim_per_site(n) * out.sites);
  // Compulsory traffic: the hopping matrices are L5 x L5 constants held in
  // cache; the field traffic is one read of in and one write of out.
  flops::add_bytes(2 * out.sites * n * kSpinorReals *
                   static_cast<std::int64_t>(sizeof(T)));
}

template void FifthDimOp::apply<double>(const SpinorView<double>&,
                                        const SpinorView<const double>&,
                                        std::size_t) const;
template void FifthDimOp::apply<float>(const SpinorView<float>&,
                                       const SpinorView<const float>&,
                                       std::size_t) const;

}  // namespace femto
