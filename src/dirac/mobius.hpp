#pragma once
// The Mobius domain-wall Dirac operator — the paper's discretization — and
// its red-black (even-odd) Schur preconditioning, "the state-of-the-art
// technique ... conjugate gradient on the normal equations".
//
// Operator convention (reduces to Shamir at b5 = 1, c5 = 0):
//
//   D(x,s; y,s') = (b5 D_W + 1)(x,y) delta_{ss'}
//                + (c5 D_W - 1)(x,y) Lambda_{ss'}
//
//   Lambda = P+ delta_{s',s-1} + P- delta_{s',s+1},  chiral boundary
//   terms multiplied by -mf;  D_W = (4 + m5) - 1/2 Dslash  (m5 < 0 is the
//   domain-wall height).
//
// Writing D_W = A - Dslash/2 with A = 4 + m5 and grouping by 4D parity:
//
//   M_ee = M_oo = C := (b5 A + 1) I + (c5 A - 1) Lambda    (site-diagonal!)
//   M_eo / M_oe  = -1/2 Dslash (x) B,   B := b5 I + c5 Lambda
//
// Because C and B are site-independent L5 x L5 blocks per chirality
// (FifthDimOp), C is inverted once, giving the Schur complement
//
//   Mhat = C - 1/4 Dslash_oe (B C^-1) Dslash_eo B
//
// (operator order matters: the gamma_mu inside Dslash anticommute with
// gamma_5, so Dslash does NOT commute with the chirality-blocked fifth-dim
// operators).  Everything is applied with dslash kernels and dense
// fifth-dim matvecs.  The solver runs CGNE on Mhat^dag Mhat; the even half
// is reconstructed as x_e = C^-1 (b_e + 1/2 Dslash_eo B x_o).

#include <memory>
#include <span>
#include <vector>

#include "dirac/fifth_dim.hpp"
#include "dirac/wilson.hpp"
#include "lattice/field.hpp"

namespace femto {

struct MobiusParams {
  int l5 = 8;        ///< fifth-dimension extent
  double m5 = -1.8;  ///< domain-wall height (negative by convention)
  double b5 = 1.5;   ///< Mobius scale (b5=1, c5=0 is Shamir)
  double c5 = 0.5;
  double mf = 0.01;  ///< input quark mass

  /// Shamir kernel with the same l5/m5/mf.
  static MobiusParams shamir(int l5, double m5, double mf) {
    return {l5, m5, 1.0, 0.0, mf};
  }

  /// Memberwise equality: the SolveService batches requests whose operator
  /// params match exactly (same preconditioned system).
  bool operator==(const MobiusParams&) const = default;
};

template <typename T>
class MobiusOperator {
 public:
  MobiusOperator(std::shared_ptr<const GaugeField<T>> u, MobiusParams params,
                 DslashTuning tune = {});

  const MobiusParams& params() const { return params_; }
  const GaugeField<T>& gauge() const { return *u_; }
  std::shared_ptr<const Geometry> geom_ptr() const { return u_->geom_ptr(); }
  DslashTuning& tuning() { return tune_; }

  /// Full (unpreconditioned) operator on Subset::Full fields.
  void apply_full(SpinorField<T>& out, const SpinorField<T>& in,
                  bool dagger = false) const;

  /// Schur-complement operator Mhat on Subset::Odd fields.
  void apply_schur(SpinorField<T>& out, const SpinorField<T>& in,
                   bool dagger = false) const;

  /// Normal operator Mhat^dag Mhat on Subset::Odd fields (what CGNE
  /// inverts).
  void apply_normal(SpinorField<T>& out, const SpinorField<T>& in) const;

  /// Batched Schur operator over B right-hand sides: the two dslash
  /// stages run through dslash_multi (links loaded once per block), the
  /// site-diagonal fifth-dim stages per RHS.  Per-RHS output is bitwise
  /// identical to apply_schur on the same field, whatever the batch.
  void apply_schur_multi(std::span<SpinorField<T>* const> out,
                         std::span<const SpinorField<T>* const> in,
                         bool dagger = false) const;

  /// Batched normal operator (what the block-CG solvers apply).
  void apply_normal_multi(std::span<SpinorField<T>* const> out,
                          std::span<const SpinorField<T>* const> in) const;

  /// Build the preconditioned right-hand side:
  ///   bhat_o = b_o - M_oe M_ee^-1 b_e = b_o + 1/2 Dslash_oe (B C^-1) b_e.
  void prepare_source(SpinorField<T>& bhat_odd,
                      const SpinorField<T>& b_full) const;

  /// Reconstruct the even half given the odd solution:
  ///   x_e = C^-1 (b_e + 1/2 Dslash_eo B x_o);  copies x_o to the odd half.
  void reconstruct(SpinorField<T>& x_full, const SpinorField<T>& x_odd,
                   const SpinorField<T>& b_full) const;

  /// Conventional flop count of one apply_schur (used for GFLOPS
  /// reporting, paper S VI: 10,000-12,000 flops per 5D site).
  std::int64_t flops_per_schur() const;
  std::int64_t flops_per_normal() const { return 2 * flops_per_schur(); }

 private:
  // Format dispatch (DESIGN.md §16): every dslash/wilson_op call site
  // below routes through these, which read tune_.format and hand the
  // kernel the matching container.  The compressed copies are built
  // lazily on first use and cached for the operator's lifetime (the
  // gauge field is immutable here), under the same documented
  // non-thread-safe contract as the workspaces.
  void ensure_format() const;
  void dslash_fmt(const SpinorView<T>& out, const SpinorView<const T>& in,
                  int out_parity, bool dagger) const;
  void dslash_fmt_multi(std::span<const SpinorView<T>> out,
                        std::span<const SpinorView<const T>> in,
                        int out_parity, bool dagger) const;
  void wilson_op_fmt(SpinorField<T>& out, const SpinorField<T>& in,
                     bool dagger) const;

  std::shared_ptr<const GaugeField<T>> u_;
  MobiusParams params_;
  DslashTuning tune_;
  mutable std::unique_ptr<CompressedGaugeField<T>> u_r12_;
  mutable std::unique_ptr<Recon8GaugeField<T>> u_r8_;
  mutable std::unique_ptr<Fixed12GaugeField<T>> u_x12_;
  FifthDimOp lambda_, b_, c_, cinv_, bcinv_;
  FifthDimOp bt_, ct_, bcinvt_;  // transposes for the dagger application
  // Workspaces (documented non-thread-safe: one solve per operator).
  mutable SpinorField<T> tmp_e_, tmp_e2_, tmp_o_;
  mutable SpinorField<T> tmp_f_, tmp_f2_;
  // Per-RHS workspaces for the batched applications, grown on demand to
  // the largest batch seen (same non-thread-safe contract).
  void ensure_multi(std::size_t n) const;
  mutable std::vector<SpinorField<T>> mtmp_e_, mtmp_e2_, mtmp_o_, mtmp_mid_;
};

extern template class MobiusOperator<double>;
extern template class MobiusOperator<float>;

}  // namespace femto
