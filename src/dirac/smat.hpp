#pragma once
// Small dense real matrices over the fifth dimension (size L5 x L5, with
// L5 <= 32).  The Mobius operator's even-even block is site-independent,
// so its inverse is computed ONCE here and applied per site as a dense
// matvec — this is the CPU analogue of QUDA's m5inv kernels.

#include <cassert>
#include <cmath>
#include <cstddef>
#include <utility>
#include <stdexcept>
#include <vector>

namespace femto {

/// Maximum supported fifth-dimension extent (stack buffers in kernels).
inline constexpr int kMaxL5 = 32;

/// Dense n x n real matrix (row-major).
class SMat {
 public:
  SMat() : n_(0) {}
  explicit SMat(int n) : n_(n), a_(static_cast<size_t>(n) * n, 0.0) {}

  int n() const { return n_; }
  double& operator()(int r, int c) {
    return a_[static_cast<size_t>(r) * n_ + c];
  }
  double operator()(int r, int c) const {
    return a_[static_cast<size_t>(r) * n_ + c];
  }
  const double* row(int r) const { return a_.data() + size_t(r) * n_; }

  static SMat identity(int n) {
    SMat m(n);
    for (int i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  SMat operator*(const SMat& o) const {
    assert(n_ == o.n_);
    SMat r(n_);
    for (int i = 0; i < n_; ++i)
      for (int k = 0; k < n_; ++k) {
        const double aik = (*this)(i, k);
        for (int j = 0; j < n_; ++j) r(i, j) += aik * o(k, j);
      }
    return r;
  }

  SMat operator+(const SMat& o) const {
    assert(n_ == o.n_);
    SMat r(n_);
    for (size_t i = 0; i < a_.size(); ++i) r.a_[i] = a_[i] + o.a_[i];
    return r;
  }

  SMat scaled(double s) const {
    SMat r(n_);
    for (size_t i = 0; i < a_.size(); ++i) r.a_[i] = s * a_[i];
    return r;
  }

  SMat transpose() const {
    SMat r(n_);
    for (int i = 0; i < n_; ++i)
      for (int j = 0; j < n_; ++j) r(j, i) = (*this)(i, j);
    return r;
  }

  /// Gauss-Jordan inverse with partial pivoting.  Throws if singular.
  SMat inverse() const {
    const int n = n_;
    SMat a = *this;
    SMat inv = identity(n);
    for (int col = 0; col < n; ++col) {
      int piv = col;
      for (int r = col + 1; r < n; ++r)
        if (std::abs(a(r, col)) > std::abs(a(piv, col))) piv = r;
      if (std::abs(a(piv, col)) < 1e-300)
        throw std::runtime_error("SMat::inverse: singular matrix");
      if (piv != col) {
        for (int j = 0; j < n; ++j) {
          std::swap(a(piv, j), a(col, j));
          std::swap(inv(piv, j), inv(col, j));
        }
      }
      const double d = 1.0 / a(col, col);
      for (int j = 0; j < n; ++j) {
        a(col, j) *= d;
        inv(col, j) *= d;
      }
      for (int r = 0; r < n; ++r) {
        if (r == col) continue;
        const double f = a(r, col);
        if (f == 0.0) continue;
        for (int j = 0; j < n; ++j) {
          a(r, j) -= f * a(col, j);
          inv(r, j) -= f * inv(col, j);
        }
      }
    }
    return inv;
  }

 private:
  int n_;
  std::vector<double> a_;
};

}  // namespace femto
