#include "dirac/mobius.hpp"

#include "lattice/blas.hpp"

namespace femto {

namespace {

/// a*I + b*Lambda as a FifthDimOp.
FifthDimOp affine_lambda(int l5, double mf, double a, double b) {
  SMat lp = lambda_plus(l5, mf).scaled(b);
  SMat lm = lambda_minus(l5, mf).scaled(b);
  const SMat id = SMat::identity(l5).scaled(a);
  return {id + lp, id + lm};
}

}  // namespace

template <typename T>
MobiusOperator<T>::MobiusOperator(std::shared_ptr<const GaugeField<T>> u,
                                  MobiusParams params, DslashTuning tune)
    : u_(std::move(u)),
      params_(params),
      tune_(tune),
      tmp_e_(u_->geom_ptr(), params.l5, Subset::Even),
      tmp_e2_(u_->geom_ptr(), params.l5, Subset::Even),
      tmp_o_(u_->geom_ptr(), params.l5, Subset::Odd),
      tmp_f_(u_->geom_ptr(), params.l5, Subset::Full),
      tmp_f2_(u_->geom_ptr(), params.l5, Subset::Full) {
  const int l5 = params_.l5;
  const double a = 4.0 + params_.m5;
  lambda_ = affine_lambda(l5, params_.mf, 0.0, 1.0);
  b_ = affine_lambda(l5, params_.mf, params_.b5, params_.c5);
  c_ = affine_lambda(l5, params_.mf, params_.b5 * a + 1.0,
                     params_.c5 * a - 1.0);
  cinv_ = c_.inverse();
  bcinv_ = b_ * cinv_;
  bt_ = b_.transpose();
  ct_ = c_.transpose();
  bcinvt_ = bcinv_.transpose();
}

template <typename T>
void MobiusOperator<T>::ensure_format() const {
  switch (tune_.format) {
    case GaugeFormat::kRecon12:
      if (!u_r12_) u_r12_ = std::make_unique<CompressedGaugeField<T>>(*u_);
      break;
    case GaugeFormat::kRecon8:
      if (!u_r8_) u_r8_ = std::make_unique<Recon8GaugeField<T>>(*u_);
      break;
    case GaugeFormat::kFixed12:
      if (!u_x12_) u_x12_ = std::make_unique<Fixed12GaugeField<T>>(*u_);
      break;
    case GaugeFormat::kFull18:
      break;
  }
}

template <typename T>
void MobiusOperator<T>::dslash_fmt(const SpinorView<T>& out,
                                   const SpinorView<const T>& in,
                                   int out_parity, bool dagger) const {
  ensure_format();
  switch (tune_.format) {
    case GaugeFormat::kRecon12:
      dslash<T>(out, *u_r12_, in, out_parity, dagger, tune_);
      break;
    case GaugeFormat::kRecon8:
      dslash<T>(out, *u_r8_, in, out_parity, dagger, tune_);
      break;
    case GaugeFormat::kFixed12:
      dslash<T>(out, *u_x12_, in, out_parity, dagger, tune_);
      break;
    case GaugeFormat::kFull18:
      dslash<T>(out, *u_, in, out_parity, dagger, tune_);
      break;
  }
}

template <typename T>
void MobiusOperator<T>::dslash_fmt_multi(
    std::span<const SpinorView<T>> out,
    std::span<const SpinorView<const T>> in, int out_parity,
    bool dagger) const {
  ensure_format();
  switch (tune_.format) {
    case GaugeFormat::kRecon12:
      dslash_multi<T>(out, *u_r12_, in, out_parity, dagger, tune_);
      break;
    case GaugeFormat::kRecon8:
      dslash_multi<T>(out, *u_r8_, in, out_parity, dagger, tune_);
      break;
    case GaugeFormat::kFixed12:
      dslash_multi<T>(out, *u_x12_, in, out_parity, dagger, tune_);
      break;
    case GaugeFormat::kFull18:
      dslash_multi<T>(out, *u_, in, out_parity, dagger, tune_);
      break;
  }
}

template <typename T>
void MobiusOperator<T>::wilson_op_fmt(SpinorField<T>& out,
                                      const SpinorField<T>& in,
                                      bool dagger) const {
  ensure_format();
  switch (tune_.format) {
    case GaugeFormat::kRecon12:
      wilson_op<T>(out, *u_r12_, in, params_.m5, dagger, tune_);
      break;
    case GaugeFormat::kRecon8:
      wilson_op<T>(out, *u_r8_, in, params_.m5, dagger, tune_);
      break;
    case GaugeFormat::kFixed12:
      wilson_op<T>(out, *u_x12_, in, params_.m5, dagger, tune_);
      break;
    case GaugeFormat::kFull18:
      wilson_op<T>(out, *u_, in, params_.m5, dagger, tune_);
      break;
  }
}

template <typename T>
void MobiusOperator<T>::apply_full(SpinorField<T>& out,
                                   const SpinorField<T>& in,
                                   bool dagger) const {
  assert(out.subset() == Subset::Full && in.subset() == Subset::Full);
  assert(out.l5() == params_.l5 && in.l5() == params_.l5);
  if (!dagger) {
    // out = D_W (B in) + (I - Lambda) in
    b_.apply<T>(view(tmp_f_), view(in));
    wilson_op_fmt(out, tmp_f_, false);
    lambda_.apply<T>(view(tmp_f_), view(in));
    blas::axpy<T>(-1.0, tmp_f_, out);
    blas::axpy<T>(1.0, in, out);
  } else {
    // out = B^T D_W^dag in + (I - Lambda)^T in
    wilson_op_fmt(tmp_f_, in, true);
    bt_.apply<T>(view(out), cview(tmp_f_));
    lambda_.transpose().apply<T>(view(tmp_f_), view(in));
    blas::axpy<T>(-1.0, tmp_f_, out);
    blas::axpy<T>(1.0, in, out);
  }
}

template <typename T>
void MobiusOperator<T>::apply_schur(SpinorField<T>& out,
                                    const SpinorField<T>& in,
                                    bool dagger) const {
  assert(out.subset() == Subset::Odd && in.subset() == Subset::Odd);
  if (!dagger) {
    // Mhat = C - 1/4 Dslash (B C^-1) Dslash B, applied right to left.
    b_.apply<T>(view(tmp_o_), view(in));
    dslash_fmt(view(tmp_e_), cview(tmp_o_), /*out_parity=*/0, false);
    bcinv_.apply<T>(view(tmp_e2_), cview(tmp_e_));
    dslash_fmt(view(out), cview(tmp_e2_), /*out_parity=*/1, false);
    // out = C in - 1/4 out
    c_.apply<T>(view(tmp_o_), view(in));
  } else {
    // Mhat^dag = C^T - 1/4 B^T Dslash^dag (B C^-1)^T Dslash^dag, applied
    // right to left; the dagger dslash kernel with out parity p computes
    // the (p, 1-p) block of Dslash^dag.
    dslash_fmt(view(tmp_e_), view(in), /*out_parity=*/0, true);
    bcinvt_.apply<T>(view(tmp_e2_), cview(tmp_e_));
    dslash_fmt(view(tmp_o_), cview(tmp_e2_), /*out_parity=*/1, true);
    bt_.apply<T>(view(out), cview(tmp_o_));
    ct_.apply<T>(view(tmp_o_), view(in));
  }
  blas::axpby<T>(1.0, tmp_o_, -0.25, out);
}

template <typename T>
void MobiusOperator<T>::apply_normal(SpinorField<T>& out,
                                     const SpinorField<T>& in) const {
  assert(out.subset() == Subset::Odd && in.subset() == Subset::Odd);
  SpinorField<T> mid(u_->geom_ptr(), params_.l5, Subset::Odd);
  apply_schur(mid, in, false);
  apply_schur(out, mid, true);
}

template <typename T>
void MobiusOperator<T>::ensure_multi(std::size_t n) const {
  while (mtmp_e_.size() < n) {
    mtmp_e_.emplace_back(u_->geom_ptr(), params_.l5, Subset::Even);
    mtmp_e2_.emplace_back(u_->geom_ptr(), params_.l5, Subset::Even);
    mtmp_o_.emplace_back(u_->geom_ptr(), params_.l5, Subset::Odd);
    mtmp_mid_.emplace_back(u_->geom_ptr(), params_.l5, Subset::Odd);
  }
}

template <typename T>
void MobiusOperator<T>::apply_schur_multi(
    std::span<SpinorField<T>* const> out,
    std::span<const SpinorField<T>* const> in, bool dagger) const {
  const std::size_t nb = out.size();
  assert(in.size() == nb);
  if (nb == 0) return;
  ensure_multi(nb);
  // Per-stage view batches over the RHS workspaces.
  std::vector<SpinorView<T>> ve, ve2, vo, vout;
  std::vector<SpinorView<const T>> cve, cve2, cvo, cvin;
  for (std::size_t r = 0; r < nb; ++r) {
    assert(out[r]->subset() == Subset::Odd && in[r]->subset() == Subset::Odd);
    ve.push_back(view(mtmp_e_[r]));
    ve2.push_back(view(mtmp_e2_[r]));
    vo.push_back(view(mtmp_o_[r]));
    vout.push_back(view(*out[r]));
    cve.push_back(cview(mtmp_e_[r]));
    cve2.push_back(cview(mtmp_e2_[r]));
    cvo.push_back(cview(mtmp_o_[r]));
    cvin.push_back(view(*in[r]));
  }
  if (!dagger) {
    // Mhat = C - 1/4 Dslash (B C^-1) Dslash B, stage by stage; the
    // site-diagonal fifth-dim matvecs stay per RHS (no cross-RHS reuse to
    // be had — they touch no gauge links), the two dslash stages batch.
    for (std::size_t r = 0; r < nb; ++r) b_.apply<T>(vo[r], cvin[r]);
    dslash_fmt_multi(ve, cvo, /*out_parity=*/0, false);
    for (std::size_t r = 0; r < nb; ++r) bcinv_.apply<T>(ve2[r], cve[r]);
    dslash_fmt_multi(vout, cve2, /*out_parity=*/1, false);
    for (std::size_t r = 0; r < nb; ++r) c_.apply<T>(vo[r], cvin[r]);
  } else {
    dslash_fmt_multi(ve, cvin, /*out_parity=*/0, true);
    for (std::size_t r = 0; r < nb; ++r) bcinvt_.apply<T>(ve2[r], cve[r]);
    dslash_fmt_multi(vo, cve2, /*out_parity=*/1, true);
    for (std::size_t r = 0; r < nb; ++r) {
      bt_.apply<T>(vout[r], cvo[r]);
      ct_.apply<T>(vo[r], cvin[r]);
    }
  }
  for (std::size_t r = 0; r < nb; ++r)
    blas::axpby<T>(1.0, mtmp_o_[r], -0.25, *out[r]);
}

template <typename T>
void MobiusOperator<T>::apply_normal_multi(
    std::span<SpinorField<T>* const> out,
    std::span<const SpinorField<T>* const> in) const {
  const std::size_t nb = out.size();
  assert(in.size() == nb);
  if (nb == 0) return;
  ensure_multi(nb);
  std::vector<SpinorField<T>*> mid;
  std::vector<const SpinorField<T>*> cmid;
  for (std::size_t r = 0; r < nb; ++r) {
    mid.push_back(&mtmp_mid_[r]);
    cmid.push_back(&mtmp_mid_[r]);
  }
  apply_schur_multi(mid, in, false);
  apply_schur_multi(out, cmid, true);
}

template <typename T>
void MobiusOperator<T>::prepare_source(SpinorField<T>& bhat_odd,
                                       const SpinorField<T>& b_full) const {
  assert(bhat_odd.subset() == Subset::Odd);
  assert(b_full.subset() == Subset::Full);
  // tmp_e = (B C^-1) b_e
  bcinv_.apply<T>(view(tmp_e_), parity_view(b_full, 0));
  // bhat = Dslash_oe tmp_e
  dslash_fmt(view(bhat_odd), cview(tmp_e_), /*out_parity=*/1, false);
  // bhat = b_o + 1/2 bhat
  // Copy the odd half of b into tmp_o_ first.
  const auto bo = parity_view(b_full, 1);
  const auto to = view(tmp_o_);
  for (int s = 0; s < params_.l5; ++s)
    for (std::int64_t i = 0; i < to.sites; ++i) to.store(s, i, bo.load(s, i));
  blas::axpby<T>(1.0, tmp_o_, 0.5, bhat_odd);
}

template <typename T>
void MobiusOperator<T>::reconstruct(SpinorField<T>& x_full,
                                    const SpinorField<T>& x_odd,
                                    const SpinorField<T>& b_full) const {
  assert(x_full.subset() == Subset::Full && x_odd.subset() == Subset::Odd);
  // tmp_o = B x_o ; tmp_e = Dslash_eo tmp_o
  b_.apply<T>(view(tmp_o_), view(x_odd));
  dslash_fmt(view(tmp_e_), cview(tmp_o_), /*out_parity=*/0, false);
  // tmp_e = b_e + 1/2 tmp_e
  const auto be = parity_view(b_full, 0);
  const auto te = view(tmp_e2_);
  for (int s = 0; s < params_.l5; ++s)
    for (std::int64_t i = 0; i < te.sites; ++i) te.store(s, i, be.load(s, i));
  blas::axpby<T>(1.0, tmp_e2_, 0.5, tmp_e_);
  // x_e = C^-1 tmp_e
  cinv_.apply<T>(parity_view(x_full, 0), cview(tmp_e_));
  // x_o = x_odd
  const auto xo = parity_view(x_full, 1);
  const auto xi = view(x_odd);
  for (int s = 0; s < params_.l5; ++s)
    for (std::int64_t i = 0; i < xo.sites; ++i) xo.store(s, i, xi.load(s, i));
}

template <typename T>
std::int64_t MobiusOperator<T>::flops_per_schur() const {
  const std::int64_t volh = u_->geom().half_volume();
  const std::int64_t sites5 = volh * params_.l5;
  // Two dslash passes + three fifth-dim matvecs (B, BC^-1, C) + the axpby.
  return 2 * flops::kWilsonDslashPerSite * sites5 +
         3 * flops::fifth_dim_per_site(params_.l5) * volh + 3 * sites5 * 24;
}

template class MobiusOperator<double>;
template class MobiusOperator<float>;

}  // namespace femto
