#include "dirac/distributed.hpp"

#include <cstring>

#include "lattice/flops.hpp"

namespace femto {

namespace {

Spinor<double> load_spinor(const double* p) {
  Spinor<double> s;
  for (int sp = 0; sp < kNs; ++sp)
    for (int c = 0; c < kNc; ++c) {
      s[sp][c] = {p[0], p[1]};
      p += 2;
    }
  return s;
}

void store_spinor(double* p, const Spinor<double>& s) {
  for (int sp = 0; sp < kNs; ++sp)
    for (int c = 0; c < kNc; ++c) {
      p[0] = s[sp][c].re;
      p[1] = s[sp][c].im;
      p += 2;
    }
}

ColorMat<double> load_link(const double* p) {
  ColorMat<double> u;
  for (int i = 0; i < kNc * kNc; ++i) {
    u.m[static_cast<std::size_t>(i)] = {p[0], p[1]};
    p += 2;
  }
  return u;
}

void store_link(double* p, const ColorMat<double>& u) {
  for (int i = 0; i < kNc * kNc; ++i) {
    p[0] = u.m[static_cast<std::size_t>(i)].re;
    p[1] = u.m[static_cast<std::size_t>(i)].im;
    p += 2;
  }
}

/// fixed12 wire slab: 12 int16 (24 B) + float scale (4 B) memcpy'd into 4
/// doubles; the 4 pad bytes are zeroed so wire contents are deterministic.
constexpr int kFixed12WireReals = 4;

int wire_link_reals(GaugeFormat f) {
  switch (f) {
    case GaugeFormat::kRecon12: return kCompressedLinkReals;
    case GaugeFormat::kRecon8: return kRecon8LinkReals;
    case GaugeFormat::kFixed12: return kFixed12WireReals;
    case GaugeFormat::kFull18: return kLinkReals;
  }
  return kLinkReals;
}

void encode_link_wire(GaugeFormat f, const ColorMat<double>& u, double* w) {
  switch (f) {
    case GaugeFormat::kRecon12:
      encode_recon12(u, w);
      break;
    case GaugeFormat::kRecon8:
      encode_recon8(u, w);
      break;
    case GaugeFormat::kFixed12: {
      std::int16_t q[kFixed12LinkInts];
      float s = 0.0f;
      encode_fixed12(u, q, &s);
      w[kFixed12WireReals - 1] = 0.0;  // zero the pad bytes
      std::memcpy(w, q, sizeof(q));
      // femtolint: allow(cast): byte-offset into the wire slab for the
      // trailing float scale; accessed only via memcpy, never aliased.
      std::memcpy(reinterpret_cast<char*>(w) + sizeof(q), &s, sizeof(s));
      break;
    }
    case GaugeFormat::kFull18:
      store_link(w, u);
      break;
  }
}

ColorMat<double> decode_link_wire(GaugeFormat f, const double* w) {
  switch (f) {
    case GaugeFormat::kRecon12:
      return decode_recon12(w);
    case GaugeFormat::kRecon8:
      return decode_recon8(w);
    case GaugeFormat::kFixed12: {
      std::int16_t q[kFixed12LinkInts];
      float s = 0.0f;
      std::memcpy(q, w, sizeof(q));
      // femtolint: allow(cast): byte-offset into the wire slab for the
      // trailing float scale; accessed only via memcpy, never aliased.
      std::memcpy(&s, reinterpret_cast<const char*>(w) + sizeof(q),
                  sizeof(s));
      return decode_fixed12<double>(q, s);
    }
    case GaugeFormat::kFull18:
      break;
  }
  return load_link(w);
}

}  // namespace

comm::HaloField scatter_spinor(const DistributedLattice& dl, int rank,
                               const SpinorField<double>& full) {
  const auto l = dl.local_extents();
  const auto o = dl.origin(rank);
  comm::HaloField f(l, kDistSpinorReals);
  const Geometry& g = full.geom();
  for (int t = 0; t < l[3]; ++t)
    for (int z = 0; z < l[2]; ++z)
      for (int y = 0; y < l[1]; ++y)
        for (int x = 0; x < l[0]; ++x) {
          const Coord gc{o[0] + x, o[1] + y, o[2] + z, o[3] + t};
          const auto s = full.load(0, g.index(gc));
          store_spinor(f.at(f.site(x, y, z, t)), s);
        }
  return f;
}

comm::HaloField scatter_gauge(const DistributedLattice& dl, int rank,
                              const GaugeField<double>& full) {
  const auto l = dl.local_extents();
  const auto o = dl.origin(rank);
  comm::HaloField f(l, kDistGaugeReals);
  const Geometry& g = full.geom();
  for (int t = 0; t < l[3]; ++t)
    for (int z = 0; z < l[2]; ++z)
      for (int y = 0; y < l[1]; ++y)
        for (int x = 0; x < l[0]; ++x) {
          const Coord gc{o[0] + x, o[1] + y, o[2] + z, o[3] + t};
          const auto site = g.index(gc);
          double* p = f.at(f.site(x, y, z, t));
          for (int mu = 0; mu < 4; ++mu) {
            const auto link = full.load(mu, site);
            for (int i = 0; i < kNc * kNc; ++i) {
              p[0] = link.m[static_cast<std::size_t>(i)].re;
              p[1] = link.m[static_cast<std::size_t>(i)].im;
              p += 2;
            }
          }
        }
  return f;
}

void gather_spinor(const DistributedLattice& dl, int rank,
                   const comm::HaloField& local, SpinorField<double>& full) {
  const auto l = dl.local_extents();
  const auto o = dl.origin(rank);
  const Geometry& g = full.geom();
  for (int t = 0; t < l[3]; ++t)
    for (int z = 0; z < l[2]; ++z)
      for (int y = 0; y < l[1]; ++y)
        for (int x = 0; x < l[0]; ++x) {
          const Coord gc{o[0] + x, o[1] + y, o[2] + z, o[3] + t};
          const auto s = load_spinor(local.at(local.site(x, y, z, t)));
          full.store(0, g.index(gc), s);
        }
}

std::int64_t gauge_wire_reals(GaugeFormat f) { return 4 * wire_link_reals(f); }

void exchange_gauge_halo(comm::RankHandle& h, const DistributedLattice& dl,
                         comm::HaloExchanger& ex, comm::HaloField& gauge,
                         GaugeFormat fmt, comm::HaloStats* stats) {
  if (fmt == GaugeFormat::kFull18) {
    // Bitwise-identical to the pre-tier path: no encode, no decode.
    ex.exchange(h, gauge, stats);
    return;
  }
  const auto l = dl.local_extents();
  const int wlr = wire_link_reals(fmt);
  comm::HaloField wire(l, static_cast<int>(gauge_wire_reals(fmt)));
  for (std::int64_t s = 0; s < gauge.volume(); ++s) {
    const double* g = gauge.at(s);
    double* w = wire.at(s);
    for (int mu = 0; mu < 4; ++mu)
      encode_link_wire(fmt, load_link(g + mu * kLinkReals), w + mu * wlr);
  }
  ex.exchange(h, wire, stats);
  // Decode every received face back into the 72-real ghost buffers the
  // stencil reads; interior links keep their full-precision storage.
  for (int mu = 0; mu < 4; ++mu) {
    for (std::int64_t f = 0; f < gauge.face_sites(mu); ++f) {
      for (int nu = 0; nu < 4; ++nu) {
        store_link(
            gauge.ghost_bwd(mu, f) + nu * kLinkReals,
            decode_link_wire(fmt, wire.ghost_bwd(mu, f) + nu * wlr));
        store_link(
            gauge.ghost_fwd(mu, f) + nu * kLinkReals,
            decode_link_wire(fmt, wire.ghost_fwd(mu, f) + nu * wlr));
      }
    }
  }
}

namespace {

/// Shared per-site stencil application for the distributed kernels.
struct Stencil {
  const DistributedLattice& dl;
  comm::HaloField& psi;
  const comm::HaloField& gauge;
  comm::HaloField& out;
  std::array<int, 4> l;
  std::array<int, 4> o;
  int fsign;

  Stencil(const DistributedLattice& dl_, comm::HaloField& psi_,
          const comm::HaloField& gauge_, comm::HaloField& out_, int rank,
          bool dagger)
      : dl(dl_),
        psi(psi_),
        gauge(gauge_),
        out(out_),
        l(dl_.local_extents()),
        o(dl_.origin(rank)),
        fsign(dagger ? -1 : +1) {}

  /// True when the site touches no distributed face (every neighbour is
  /// local): the INTERIOR the paper overlaps with communication.
  bool interior(const std::array<int, 4>& c) const {
    for (int mu = 0; mu < 4; ++mu) {
      if (dl.grid.dim(mu) == 1) continue;
      if (c[static_cast<std::size_t>(mu)] == 0 ||
          c[static_cast<std::size_t>(mu)] ==
              l[static_cast<std::size_t>(mu)] - 1)
        return false;
    }
    return true;
  }

  Spinor<double> psi_at(std::array<int, 4> c, int mu, int step) const {
    c[static_cast<std::size_t>(mu)] += step;
    if (c[static_cast<std::size_t>(mu)] < 0)
      return load_spinor(psi.ghost_bwd(mu, psi.face_index(mu, c)));
    if (c[static_cast<std::size_t>(mu)] >= l[static_cast<std::size_t>(mu)])
      return load_spinor(psi.ghost_fwd(mu, psi.face_index(mu, c)));
    return load_spinor(psi.at(psi.site(c[0], c[1], c[2], c[3])));
  }

  ColorMat<double> link_bwd(std::array<int, 4> c, int mu) const {
    c[static_cast<std::size_t>(mu)] -= 1;
    if (c[static_cast<std::size_t>(mu)] < 0)
      return load_link(gauge.ghost_bwd(mu, gauge.face_index(mu, c)) +
                       mu * kLinkReals);
    return load_link(gauge.at(gauge.site(c[0], c[1], c[2], c[3])) +
                     mu * kLinkReals);
  }

  void apply_site(const std::array<int, 4>& c) const {
    const int gt = o[3] + c[3];
    const int global_t = dl.global[3];
    const double* gp = gauge.at(gauge.site(c[0], c[1], c[2], c[3]));
    Spinor<double> acc;
    for (int mu = 0; mu < 4; ++mu) {
      {
        const auto nb = psi_at(c, mu, +1);
        auto hsp = project(mu, fsign, nb);
        hsp = mul(load_link(gp + mu * kLinkReals), hsp);
        if (mu == 3 && gt == global_t - 1) {
          hsp[0] *= -1.0;
          hsp[1] *= -1.0;
        }
        reconstruct_add(mu, fsign, hsp, acc);
      }
      {
        const auto nb = psi_at(c, mu, -1);
        auto hsp = project(mu, -fsign, nb);
        hsp = adj_mul(link_bwd(c, mu), hsp);
        if (mu == 3 && gt == 0) {
          hsp[0] *= -1.0;
          hsp[1] *= -1.0;
        }
        reconstruct_add(mu, -fsign, hsp, acc);
      }
    }
    store_spinor(out.at(out.site(c[0], c[1], c[2], c[3])), acc);
  }

  template <typename Pred>
  void apply_where(const Pred& pred) const {
    for (int t = 0; t < l[3]; ++t)
      for (int z = 0; z < l[2]; ++z)
        for (int y = 0; y < l[1]; ++y)
          for (int x = 0; x < l[0]; ++x) {
            const std::array<int, 4> c{x, y, z, t};
            if (pred(c)) apply_site(c);
          }
  }
};

}  // namespace

void distributed_dslash(comm::RankHandle& h, const DistributedLattice& dl,
                        comm::HaloExchanger& ex, comm::HaloField& psi,
                        const comm::HaloField& gauge,
                        comm::HaloField& out, bool dagger,
                        comm::HaloStats* stats) {
  // Steps 1-2: pack and communicate the spinor halo; steps 3-4 fused.
  ex.exchange(h, psi, stats);
  Stencil st(dl, psi, gauge, out, h.rank(), dagger);
  st.apply_where([](const std::array<int, 4>&) { return true; });
  flops::add(flops::kWilsonDslashPerSite * out.volume());
}

void distributed_dslash_overlapped(comm::RankHandle& h,
                                   const DistributedLattice& dl,
                                   comm::HaloExchanger& ex,
                                   comm::HaloField& psi,
                                   const comm::HaloField& gauge,
                                   comm::HaloField& out, bool dagger,
                                   comm::HaloStats* stats) {
  Stencil st(dl, psi, gauge, out, h.rank(), dagger);
  // Step 1: pack the halo into contiguous buffers and post it.
  ex.exchange_begin(h, psi, stats);
  // Step 3 (step 2, the communication, is in flight): interior stencil.
  st.apply_where(
      [&](const std::array<int, 4>& c) { return st.interior(c); });
  // Step 2 completes: receive and unpack the ghosts.
  ex.exchange_finish(h, psi, stats);
  // Step 4: complete the halo stencil.
  st.apply_where(
      [&](const std::array<int, 4>& c) { return !st.interior(c); });
  flops::add(flops::kWilsonDslashPerSite * out.volume());
}

}  // namespace femto
