#include "dirac/distributed.hpp"

#include <cstring>

#include "lattice/flops.hpp"

namespace femto {

namespace {

Spinor<double> load_spinor(const double* p) {
  Spinor<double> s;
  for (int sp = 0; sp < kNs; ++sp)
    for (int c = 0; c < kNc; ++c) {
      s[sp][c] = {p[0], p[1]};
      p += 2;
    }
  return s;
}

void store_spinor(double* p, const Spinor<double>& s) {
  for (int sp = 0; sp < kNs; ++sp)
    for (int c = 0; c < kNc; ++c) {
      p[0] = s[sp][c].re;
      p[1] = s[sp][c].im;
      p += 2;
    }
}

ColorMat<double> load_link(const double* p) {
  ColorMat<double> u;
  for (int i = 0; i < kNc * kNc; ++i) {
    u.m[static_cast<std::size_t>(i)] = {p[0], p[1]};
    p += 2;
  }
  return u;
}

}  // namespace

comm::HaloField scatter_spinor(const DistributedLattice& dl, int rank,
                               const SpinorField<double>& full) {
  const auto l = dl.local_extents();
  const auto o = dl.origin(rank);
  comm::HaloField f(l, kDistSpinorReals);
  const Geometry& g = full.geom();
  for (int t = 0; t < l[3]; ++t)
    for (int z = 0; z < l[2]; ++z)
      for (int y = 0; y < l[1]; ++y)
        for (int x = 0; x < l[0]; ++x) {
          const Coord gc{o[0] + x, o[1] + y, o[2] + z, o[3] + t};
          const auto s = full.load(0, g.index(gc));
          store_spinor(f.at(f.site(x, y, z, t)), s);
        }
  return f;
}

comm::HaloField scatter_gauge(const DistributedLattice& dl, int rank,
                              const GaugeField<double>& full) {
  const auto l = dl.local_extents();
  const auto o = dl.origin(rank);
  comm::HaloField f(l, kDistGaugeReals);
  const Geometry& g = full.geom();
  for (int t = 0; t < l[3]; ++t)
    for (int z = 0; z < l[2]; ++z)
      for (int y = 0; y < l[1]; ++y)
        for (int x = 0; x < l[0]; ++x) {
          const Coord gc{o[0] + x, o[1] + y, o[2] + z, o[3] + t};
          const auto site = g.index(gc);
          double* p = f.at(f.site(x, y, z, t));
          for (int mu = 0; mu < 4; ++mu) {
            const auto link = full.load(mu, site);
            for (int i = 0; i < kNc * kNc; ++i) {
              p[0] = link.m[static_cast<std::size_t>(i)].re;
              p[1] = link.m[static_cast<std::size_t>(i)].im;
              p += 2;
            }
          }
        }
  return f;
}

void gather_spinor(const DistributedLattice& dl, int rank,
                   const comm::HaloField& local, SpinorField<double>& full) {
  const auto l = dl.local_extents();
  const auto o = dl.origin(rank);
  const Geometry& g = full.geom();
  for (int t = 0; t < l[3]; ++t)
    for (int z = 0; z < l[2]; ++z)
      for (int y = 0; y < l[1]; ++y)
        for (int x = 0; x < l[0]; ++x) {
          const Coord gc{o[0] + x, o[1] + y, o[2] + z, o[3] + t};
          const auto s = load_spinor(local.at(local.site(x, y, z, t)));
          full.store(0, g.index(gc), s);
        }
}

namespace {

/// Shared per-site stencil application for the distributed kernels.
struct Stencil {
  const DistributedLattice& dl;
  comm::HaloField& psi;
  const comm::HaloField& gauge;
  comm::HaloField& out;
  std::array<int, 4> l;
  std::array<int, 4> o;
  int fsign;

  Stencil(const DistributedLattice& dl_, comm::HaloField& psi_,
          const comm::HaloField& gauge_, comm::HaloField& out_, int rank,
          bool dagger)
      : dl(dl_),
        psi(psi_),
        gauge(gauge_),
        out(out_),
        l(dl_.local_extents()),
        o(dl_.origin(rank)),
        fsign(dagger ? -1 : +1) {}

  /// True when the site touches no distributed face (every neighbour is
  /// local): the INTERIOR the paper overlaps with communication.
  bool interior(const std::array<int, 4>& c) const {
    for (int mu = 0; mu < 4; ++mu) {
      if (dl.grid.dim(mu) == 1) continue;
      if (c[static_cast<std::size_t>(mu)] == 0 ||
          c[static_cast<std::size_t>(mu)] ==
              l[static_cast<std::size_t>(mu)] - 1)
        return false;
    }
    return true;
  }

  Spinor<double> psi_at(std::array<int, 4> c, int mu, int step) const {
    c[static_cast<std::size_t>(mu)] += step;
    if (c[static_cast<std::size_t>(mu)] < 0)
      return load_spinor(psi.ghost_bwd(mu, psi.face_index(mu, c)));
    if (c[static_cast<std::size_t>(mu)] >= l[static_cast<std::size_t>(mu)])
      return load_spinor(psi.ghost_fwd(mu, psi.face_index(mu, c)));
    return load_spinor(psi.at(psi.site(c[0], c[1], c[2], c[3])));
  }

  ColorMat<double> link_bwd(std::array<int, 4> c, int mu) const {
    c[static_cast<std::size_t>(mu)] -= 1;
    if (c[static_cast<std::size_t>(mu)] < 0)
      return load_link(gauge.ghost_bwd(mu, gauge.face_index(mu, c)) +
                       mu * kLinkReals);
    return load_link(gauge.at(gauge.site(c[0], c[1], c[2], c[3])) +
                     mu * kLinkReals);
  }

  void apply_site(const std::array<int, 4>& c) const {
    const int gt = o[3] + c[3];
    const int global_t = dl.global[3];
    const double* gp = gauge.at(gauge.site(c[0], c[1], c[2], c[3]));
    Spinor<double> acc;
    for (int mu = 0; mu < 4; ++mu) {
      {
        const auto nb = psi_at(c, mu, +1);
        auto hsp = project(mu, fsign, nb);
        hsp = mul(load_link(gp + mu * kLinkReals), hsp);
        if (mu == 3 && gt == global_t - 1) {
          hsp[0] *= -1.0;
          hsp[1] *= -1.0;
        }
        reconstruct_add(mu, fsign, hsp, acc);
      }
      {
        const auto nb = psi_at(c, mu, -1);
        auto hsp = project(mu, -fsign, nb);
        hsp = adj_mul(link_bwd(c, mu), hsp);
        if (mu == 3 && gt == 0) {
          hsp[0] *= -1.0;
          hsp[1] *= -1.0;
        }
        reconstruct_add(mu, -fsign, hsp, acc);
      }
    }
    store_spinor(out.at(out.site(c[0], c[1], c[2], c[3])), acc);
  }

  template <typename Pred>
  void apply_where(const Pred& pred) const {
    for (int t = 0; t < l[3]; ++t)
      for (int z = 0; z < l[2]; ++z)
        for (int y = 0; y < l[1]; ++y)
          for (int x = 0; x < l[0]; ++x) {
            const std::array<int, 4> c{x, y, z, t};
            if (pred(c)) apply_site(c);
          }
  }
};

}  // namespace

void distributed_dslash(comm::RankHandle& h, const DistributedLattice& dl,
                        comm::HaloExchanger& ex, comm::HaloField& psi,
                        const comm::HaloField& gauge,
                        comm::HaloField& out, bool dagger,
                        comm::HaloStats* stats) {
  // Steps 1-2: pack and communicate the spinor halo; steps 3-4 fused.
  ex.exchange(h, psi, stats);
  Stencil st(dl, psi, gauge, out, h.rank(), dagger);
  st.apply_where([](const std::array<int, 4>&) { return true; });
  flops::add(flops::kWilsonDslashPerSite * out.volume());
}

void distributed_dslash_overlapped(comm::RankHandle& h,
                                   const DistributedLattice& dl,
                                   comm::HaloExchanger& ex,
                                   comm::HaloField& psi,
                                   const comm::HaloField& gauge,
                                   comm::HaloField& out, bool dagger,
                                   comm::HaloStats* stats) {
  Stencil st(dl, psi, gauge, out, h.rank(), dagger);
  // Step 1: pack the halo into contiguous buffers and post it.
  ex.exchange_begin(h, psi, stats);
  // Step 3 (step 2, the communication, is in flight): interior stencil.
  st.apply_where(
      [&](const std::array<int, 4>& c) { return st.interior(c); });
  // Step 2 completes: receive and unpack the ghosts.
  ex.exchange_finish(h, psi, stats);
  // Step 4: complete the halo stencil.
  st.apply_where(
      [&](const std::array<int, 4>& c) { return !st.interior(c); });
  flops::add(flops::kWilsonDslashPerSite * out.volume());
}

}  // namespace femto
