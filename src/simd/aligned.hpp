#pragma once
// 64-byte-aligned allocation for field, halo, and staging buffers.
//
// Vector loads that straddle a cache line cost two transactions; on a
// bandwidth-bound stencil that is pure waste.  Every bulk allocation in
// the hot path goes through aligned_vector<T> so a full AVX-512 register
// (64 bytes) — and therefore every narrower width — loads from one line.

#include <cstddef>
#include <new>
#include <vector>

namespace femto::simd {

/// One cache line / one AVX-512 register.
inline constexpr std::size_t kAlignment = 64;

/// Minimal std::allocator replacement that over-aligns to kAlignment.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlignment)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(kAlignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }
};

/// std::vector whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace femto::simd
