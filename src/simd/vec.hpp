#pragma once
// femtosimd: width-agnostic SIMD vectors for the lattice hot paths.
//
// The paper's solver kernels are emitted by QUDA as explicitly vectorized
// GPU code; our CPU substitution needs the same treatment or every flop is
// issued one complex at a time.  Vec<T, W> is a W-lane vector of T with the
// small algebra the kernels use (+, -, *, broadcast, lane-ordered
// reduction helpers).  Two backends share one interface:
//
//   * GCC/Clang vector extensions (the default): one portable source
//     compiles to AVX-512 / AVX2 / SSE / NEON depending on the target
//     flags, with the compiler splitting over-wide vectors.  No vendor
//     intrinsics appear anywhere (femtolint rule `raw-intrinsics` forbids
//     them outside this directory).
//   * a std::array fallback (FEMTO_SIMD=OFF or a non-GNU compiler): plain
//     loops with identical per-lane semantics, so every width still
//     compiles and the cross-width consistency tests run everywhere.
//
// Determinism contract: results may depend on the lane count W (a W-lane
// reduction sums per-lane partials in lane order), but for a fixed W they
// are bitwise reproducible across repeated runs and independent of the
// backend.  Reductions built on Vec must combine lanes with sum_ordered()
// so the combination order is a pure function of the element index.
//
// Widths wider than the hardware are legal (the compiler splits them);
// W must be a power of two.  Vec<T, 1> degenerates to scalar code that is
// bit-identical to the pre-SIMD kernels, which is what FEMTO_SIMD=OFF
// builds select.

#include <cstddef>
#include <cstring>

#if !defined(FEMTO_SIMD_OFF) && (defined(__GNUC__) || defined(__clang__))
#define FEMTO_SIMD_VEXT 1
#else
#define FEMTO_SIMD_VEXT 0
#include <array>
#endif

namespace femto::simd {

/// True when this build carries the vector-extension backend (the
/// FEMTO_SIMD=auto CMake default on GCC/Clang).
constexpr bool compiled_with_simd() { return FEMTO_SIMD_VEXT != 0; }

/// Widest vector register the target ISA offers, in bytes, and a short
/// name for reports and autotune cache keys.
#if !FEMTO_SIMD_VEXT
inline constexpr int kMaxVectorBytes = 8;  // scalar: one double
inline constexpr const char* kIsaName = "scalar";
#elif defined(__AVX512F__)
inline constexpr int kMaxVectorBytes = 64;
inline constexpr const char* kIsaName = "avx512";
#elif defined(__AVX2__)
inline constexpr int kMaxVectorBytes = 32;
inline constexpr const char* kIsaName = "avx2";
#elif defined(__AVX__)
inline constexpr int kMaxVectorBytes = 32;
inline constexpr const char* kIsaName = "avx";
#elif defined(__SSE2__) || defined(__x86_64__)
inline constexpr int kMaxVectorBytes = 16;
inline constexpr const char* kIsaName = "sse2";
#elif defined(__ARM_NEON) || defined(__aarch64__)
inline constexpr int kMaxVectorBytes = 16;
inline constexpr const char* kIsaName = "neon";
#else
// Unknown target: vector extensions still compile (to scalar ops), so a
// modest width keeps the code shape without pretending to know the ISA.
inline constexpr int kMaxVectorBytes = 16;
inline constexpr const char* kIsaName = "generic";
#endif

/// Preferred lane count for element type T on this build: fills the widest
/// register when SIMD is on, 1 (scalar) otherwise.
template <typename T>
inline constexpr int kWidth =
    compiled_with_simd() ? kMaxVectorBytes / static_cast<int>(sizeof(T)) : 1;

/// A W-lane vector of T.  Trivially copyable; zero-initialised by default.
template <typename T, int W>
struct Vec {
  static_assert(W >= 1 && (W & (W - 1)) == 0,
                "lane count must be a power of two");

#if FEMTO_SIMD_VEXT
  typedef T Native __attribute__((vector_size(W * sizeof(T))));
  Native v{};
#else
  std::array<T, W> v{};
#endif

  Vec() = default;

  /// Broadcast.
  explicit Vec(T s) {
    for (int i = 0; i < W; ++i) v[i] = s;
  }

  T operator[](int i) const { return v[i]; }
  void set(int i, T x) { v[i] = x; }

  /// Unaligned full-width load/store (memcpy compiles to vector moves).
  static Vec load(const T* p) {
    Vec r;
    std::memcpy(&r.v, p, W * sizeof(T));
    return r;
  }
  void store(T* p) const { std::memcpy(p, &v, W * sizeof(T)); }

  /// Peeled-tail load: lanes [0, n) from @p p, the rest zero.
  static Vec load_partial(const T* p, int n) {
    Vec r;
    for (int i = 0; i < n; ++i) r.v[i] = p[i];
    return r;
  }
  /// Peeled-tail store: lanes [0, n) to @p p.
  void store_partial(T* p, int n) const {
    for (int i = 0; i < n; ++i) p[i] = v[i];
  }

  Vec& operator+=(const Vec& o) {
#if FEMTO_SIMD_VEXT
    v += o.v;
#else
    for (int i = 0; i < W; ++i) v[i] += o.v[i];
#endif
    return *this;
  }
  Vec& operator-=(const Vec& o) {
#if FEMTO_SIMD_VEXT
    v -= o.v;
#else
    for (int i = 0; i < W; ++i) v[i] -= o.v[i];
#endif
    return *this;
  }
  Vec& operator*=(const Vec& o) {
#if FEMTO_SIMD_VEXT
    v *= o.v;
#else
    for (int i = 0; i < W; ++i) v[i] *= o.v[i];
#endif
    return *this;
  }
  Vec& operator*=(T s) { return *this *= Vec(s); }

  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(Vec a, const Vec& b) { return a *= b; }
  friend Vec operator*(T s, Vec a) { return a *= s; }
  friend Vec operator*(Vec a, T s) { return a *= s; }
  friend Vec operator-(const Vec& a) {
    Vec r;
#if FEMTO_SIMD_VEXT
    r.v = -a.v;
#else
    for (int i = 0; i < W; ++i) r.v[i] = -a.v[i];
#endif
    return r;
  }
};

/// Lane-wise max (the half-precision max-norm scan).
template <typename T, int W>
inline Vec<T, W> max(const Vec<T, W>& a, const Vec<T, W>& b) {
  Vec<T, W> r;
#if FEMTO_SIMD_VEXT
  r.v = a.v > b.v ? a.v : b.v;
#else
  for (int i = 0; i < W; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
#endif
  return r;
}

/// Lane-wise conversion (float <-> double widening, int16 -> float
/// dequantise).  Lane count is preserved.
template <typename U, typename T, int W>
inline Vec<U, W> convert(const Vec<T, W>& a) {
  Vec<U, W> r;
#if FEMTO_SIMD_VEXT
  r.v = __builtin_convertvector(a.v, typename Vec<U, W>::Native);
#else
  for (int i = 0; i < W; ++i) r.v[i] = static_cast<U>(a.v[i]);
#endif
  return r;
}

/// Swap adjacent lane pairs: [a0,a1,a2,a3,...] -> [a1,a0,a3,a2,...].  The
/// complex-pair kernels use it to line re against im (requires W >= 2).
template <typename T, int W>
inline Vec<T, W> swap_pairs(const Vec<T, W>& a) {
  static_assert(W >= 2, "pair swap needs at least two lanes");
  Vec<T, W> r;
  for (int i = 0; i < W; i += 2) {
    r.v[i] = a.v[i + 1];
    r.v[i + 1] = a.v[i];
  }
  return r;
}

/// Broadcast an alternating pair: [a, b, a, b, ...].
template <typename T, int W>
inline Vec<T, W> interleave(T a, T b) {
  static_assert(W >= 2, "pair interleave needs at least two lanes");
  Vec<T, W> r;
  for (int i = 0; i < W; i += 2) {
    r.v[i] = a;
    r.v[i + 1] = b;
  }
  return r;
}

/// Sum the lanes in lane order — THE deterministic combination step every
/// Vec-based reduction must use (see the determinism contract above).
template <typename T, int W>
inline T sum_ordered(const Vec<T, W>& a) {
  T s{};
  for (int i = 0; i < W; ++i) s += a.v[i];
  return s;
}

/// Max over lanes (order-independent; max is associative and exact).
template <typename T, int W>
inline T max_lanes(const Vec<T, W>& a) {
  T m = a.v[0];
  for (int i = 1; i < W; ++i) m = a.v[i] > m ? a.v[i] : m;
  return m;
}

}  // namespace femto::simd
