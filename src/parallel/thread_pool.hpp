#pragma once
// femtopar: a small persistent thread pool used as the execution engine for
// every lattice kernel in the library.
//
// The paper offloads its stencil and BLAS kernels to GPUs via CUDA; our
// substitution (see DESIGN.md) runs the identical numerics on CPU threads.
// The pool exposes the two primitives the kernels need:
//
//   * parallel_for(begin, end, body)   -- static partition of an index range
//   * parallel_reduce(begin, end, ...) -- per-chunk partials combined in a
//     fixed order over a decomposition that depends only on the range, so
//     reductions are bitwise identical for ANY worker count (mirroring
//     QUDA's deterministic double-precision reductions, which the
//     mixed-precision solver relies on; see DESIGN.md §13).
//
// Worker threads park on a condition variable between kernels.  A kernel
// launch costs roughly one mutex round-trip per worker; the autotuner
// (src/autotune) measures and hides this the same way QUDA hides CUDA launch
// latency, by tuning the work-per-thread ("block") granularity.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/check.hpp"

namespace femto::par {

/// Number of workers to use when the caller does not specify: the value of
/// the FEMTO_THREADS environment variable when set to a positive integer,
/// otherwise the hardware concurrency, with a floor of 1.
std::size_t default_thread_count();

/// A persistent pool of worker threads executing range-based kernels.
///
/// The pool is not copyable or movable; it owns its threads for its whole
/// lifetime (RAII: the destructor joins all workers).
class ThreadPool {
 public:
  /// Create a pool with @p n_threads workers (0 = default_thread_count()).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (always >= 1; the calling thread participates).
  std::size_t size() const { return n_threads_; }

  /// Execute @p body(i) for every i in [begin, end).  The range is split
  /// into `size()` contiguous chunks.  Blocks until all iterations finish.
  ///
  /// @p grain: minimum iterations per worker; below it the pool shrinks the
  /// number of participating workers to keep per-thread work above the
  /// launch overhead (this is the knob the autotuner sweeps).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Like parallel_for but the body receives the chunk [chunk_begin,
  /// chunk_end) instead of a single index, avoiding a std::function call
  /// per iteration for tight kernels.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t grain = 1);

  /// Deterministic reduction: runs @p body over each chunk accumulating a
  /// per-chunk double partial, then sums partials in chunk order.  The
  /// result is independent of thread scheduling.
  double parallel_reduce(
      std::size_t begin, std::size_t end,
      const std::function<double(std::size_t, std::size_t)>& chunk_body,
      std::size_t grain = 1);

  /// Two-component deterministic reduction (e.g. complex dot products).
  std::pair<double, double> parallel_reduce2(
      std::size_t begin, std::size_t end,
      const std::function<std::pair<double, double>(std::size_t, std::size_t)>&
          chunk_body,
      std::size_t grain = 1);

  /// Generic N-component deterministic reduction.  @p chunk_body receives a
  /// chunk [lo, hi) and a pointer to its @p ncomp-slot partial accumulator
  /// (zero-initialised); the @p ncomp sums over chunks, taken in chunk
  /// order, are written to @p out.
  ///
  /// Unlike parallel_reduce, the body is free to MUTATE the data it walks:
  /// chunks are disjoint and each is visited by exactly one worker, so a
  /// fused update+reduce kernel (y += a*x accumulating ||y||^2) is race-free
  /// and, with the thread-count-independent decomposition and the fixed
  /// combination order, bitwise deterministic for any worker count.  This
  /// is the primitive behind the fused BLAS kernels in lattice/blas.hpp.
  void parallel_reduce_n(
      std::size_t begin, std::size_t end, std::size_t ncomp,
      const std::function<void(std::size_t, std::size_t, double*)>& chunk_body,
      double* out, std::size_t grain = 1);

  /// The process-wide pool most kernels use.  Constructed on first use.
  static ThreadPool& global();

 private:
  struct Task {
    // Chunked task: workers pull chunk ids and run body over their range.
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t n_chunks = 0;
    std::uint64_t epoch = 0;
  };

  void worker_loop(std::size_t worker_id);
  void run_chunks(const Task& task, std::size_t worker_id);
  static std::pair<std::size_t, std::size_t> chunk_range(std::size_t begin,
                                                         std::size_t end,
                                                         std::size_t n_chunks,
                                                         std::size_t chunk);

  const std::size_t n_threads_;  // fixed at construction
  std::vector<std::thread> workers_;

  // Serialises concurrent launches from different caller threads; a launch
  // from inside one of this pool's own workers runs inline instead (see
  // .cpp), so re-entrant use cannot deadlock.  Lock order (DESIGN.md
  // §14): launch_mu_ -> mu_, always in that direction.
  std::mutex launch_mu_;

  // Kernel hand-off state, shared between the launcher and every worker.
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_ FEMTO_GUARDED_BY(mu_);
  std::uint64_t epoch_ FEMTO_GUARDED_BY(mu_) = 0;
  std::size_t n_running_ FEMTO_GUARDED_BY(mu_) = 0;
  bool stop_ FEMTO_GUARDED_BY(mu_) = false;
};

/// Convenience wrappers over ThreadPool::global().
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain = 1);

double parallel_reduce(
    std::size_t begin, std::size_t end,
    const std::function<double(std::size_t, std::size_t)>& chunk_body,
    std::size_t grain = 1);

void parallel_reduce_n(
    std::size_t begin, std::size_t end, std::size_t ncomp,
    const std::function<void(std::size_t, std::size_t, double*)>& chunk_body,
    double* out, std::size_t grain = 1);

}  // namespace femto::par
