#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace femto::par {

namespace {
// The pool (if any) whose worker is executing on this thread.  Used to run
// re-entrant launches inline rather than deadlocking on the launch mutex.
thread_local const ThreadPool* t_current_pool = nullptr;

// Upper bound on reduction partials.  The reduce decomposition must be a
// pure function of the range (never of the worker count) for sums to be
// bitwise identical across thread counts; the cap keeps the partial buffer
// and the serial combination loop small on huge ranges.
constexpr std::size_t kReduceChunks = 64;
}  // namespace

std::size_t default_thread_count() {
  // FEMTO_THREADS pins the worker count: the knob CI and the
  // cross-thread-count determinism test turn (they re-run the same solve
  // under FEMTO_THREADS=1/2/7 and demand identical bits).
  if (const char* e = std::getenv("FEMTO_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(e, &end, 10);
    if (end != e && *end == '\0' && v >= 1)
      return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t n_threads)
    : n_threads_(n_threads == 0 ? default_thread_count() : n_threads) {
  // The calling thread acts as worker 0; we spawn n_threads_-1 helpers.
  workers_.reserve(n_threads_ - 1);
  for (std::size_t i = 1; i < n_threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  obs::gauge("pool.threads").set(static_cast<double>(n_threads_));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_range(
    std::size_t begin, std::size_t end, std::size_t n_chunks,
    std::size_t chunk) {
  const std::size_t n = end - begin;
  const std::size_t base = n / n_chunks;
  const std::size_t rem = n % n_chunks;
  const std::size_t lo = begin + chunk * base + std::min(chunk, rem);
  const std::size_t hi = lo + base + (chunk < rem ? 1 : 0);
  return {lo, hi};
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk,
                     [&] { return stop_ || task_.epoch > seen_epoch; });
      if (stop_) return;
      task = task_;
      seen_epoch = task.epoch;
    }
    t_current_pool = this;
    run_chunks(task, worker_id);
    t_current_pool = nullptr;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--n_running_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(const Task& task, std::size_t worker_id) {
  // Static schedule: worker w owns chunk w.  One chunk per participating
  // worker keeps the reduction order fixed.
  if (worker_id >= task.n_chunks) return;
  auto [lo, hi] = chunk_range(task.begin, task.end, task.n_chunks, worker_id);
  if (lo < hi) (*task.body)(lo, hi);
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  std::size_t n_chunks = std::min(n_threads_, (n + grain - 1) / grain);
  n_chunks = std::max<std::size_t>(n_chunks, 1);

  // Metric objects are resolved once; the per-launch cost is one relaxed
  // atomic add (references stay valid: the registry never erases).
  static obs::Counter& obs_inline = obs::counter("pool.inline_runs");
  static obs::Counter& obs_launches = obs::counter("pool.launches");
  static obs::Histogram& obs_depth = obs::histogram("pool.queue_depth");

  // Re-entrant launch from one of our own workers: run inline.
  if (n_chunks == 1 || n_threads_ == 1 || t_current_pool == this) {
    obs_inline.add();
    body(begin, end);
    return;
  }

  obs_launches.add();
  obs_depth.observe(static_cast<std::int64_t>(n_chunks));

  std::lock_guard<std::mutex> launch_lk(launch_mu_);

  Task task;
  task.body = &body;
  task.begin = begin;
  task.end = end;
  task.n_chunks = n_chunks;
  {
    std::lock_guard<std::mutex> lk(mu_);
    task.epoch = ++epoch_;
    task_ = task;
    n_running_ = n_threads_ - 1;
  }
  cv_start_.notify_all();

  // The calling thread is worker 0.
  const ThreadPool* prev = t_current_pool;
  t_current_pool = this;
  run_chunks(task, 0);
  t_current_pool = prev;

  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return n_running_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

void ThreadPool::parallel_reduce_n(
    std::size_t begin, std::size_t end, std::size_t ncomp,
    const std::function<void(std::size_t, std::size_t, double*)>& chunk_body,
    double* out, std::size_t grain) {
  assert(ncomp >= 1);
  for (std::size_t c = 0; c < ncomp; ++c) out[c] = 0.0;
  if (begin >= end) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  // Decomposition depends on (n, grain) only -- NOT on n_threads_ -- so
  // the partial boundaries, and with them every bit of the sum, are the
  // same whether the pool has 1 worker or 64.  Scheduling still adapts to
  // the pool through the inner parallel_for_chunked over chunk ids.
  std::size_t n_chunks = std::min(kReduceChunks, (n + grain - 1) / grain);
  n_chunks = std::max<std::size_t>(n_chunks, 1);

  std::vector<double> partials(n_chunks * ncomp, 0.0);
  parallel_for_chunked(
      0, n_chunks,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          auto [a, b] = chunk_range(begin, end, n_chunks, c);
          chunk_body(a, b, partials.data() + c * ncomp);
        }
      },
      1);

  // Fixed chunk order => deterministic for any thread count.
  for (std::size_t c = 0; c < n_chunks; ++c)
    for (std::size_t k = 0; k < ncomp; ++k) out[k] += partials[c * ncomp + k];
}

double ThreadPool::parallel_reduce(
    std::size_t begin, std::size_t end,
    const std::function<double(std::size_t, std::size_t)>& chunk_body,
    std::size_t grain) {
  double sum = 0.0;
  parallel_reduce_n(
      begin, end, 1,
      [&chunk_body](std::size_t lo, std::size_t hi, double* acc) {
        acc[0] = chunk_body(lo, hi);
      },
      &sum, grain);
  return sum;
}

std::pair<double, double> ThreadPool::parallel_reduce2(
    std::size_t begin, std::size_t end,
    const std::function<std::pair<double, double>(std::size_t, std::size_t)>&
        chunk_body,
    std::size_t grain) {
  double sums[2] = {0.0, 0.0};
  parallel_reduce_n(
      begin, end, 2,
      [&chunk_body](std::size_t lo, std::size_t hi, double* acc) {
        auto [re, im] = chunk_body(lo, hi);
        acc[0] = re;
        acc[1] = im;
      },
      sums, grain);
  return {sums[0], sums[1]};
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  ThreadPool::global().parallel_for(begin, end, body, grain);
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  ThreadPool::global().parallel_for_chunked(begin, end, body, grain);
}

double parallel_reduce(
    std::size_t begin, std::size_t end,
    const std::function<double(std::size_t, std::size_t)>& chunk_body,
    std::size_t grain) {
  return ThreadPool::global().parallel_reduce(begin, end, chunk_body, grain);
}

void parallel_reduce_n(
    std::size_t begin, std::size_t end, std::size_t ncomp,
    const std::function<void(std::size_t, std::size_t, double*)>& chunk_body,
    double* out, std::size_t grain) {
  ThreadPool::global().parallel_reduce_n(begin, end, ncomp, chunk_body, out,
                                         grain);
}

}  // namespace femto::par
