// Thread-count sweep stress test for the deterministic reductions.
//
// The fused BLAS kernels (lattice/blas.hpp) lean on a strong promise from
// parallel_reduce_n: repeated runs produce bitwise-identical results FOR
// ANY WORKER COUNT, because the chunk decomposition is a pure function of
// the range (never of the pool size), chunks are disjoint, each chunk is
// visited by exactly one worker, and the per-chunk partials are combined
// in chunk order regardless of which worker finished first.  A scheduling
// race (chunk visited twice, partial combined out of order, worker count
// leaking into chunk boundaries) shows up here as a bit flip long before
// it is visible in solver residuals.

#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "simd/vec.hpp"

namespace femto::par {
namespace {

std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

/// Deterministic pseudo-random fill (no std::rand: order-independent).
std::vector<double> test_data(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  for (std::size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    // Mixed magnitudes so the summation order actually matters: any
    // combination-order wobble changes the rounded result.
    v[i] = (static_cast<double>(s % 2000001) - 1000000.0) *
           std::pow(10.0, static_cast<int>(s % 7) - 3);
  }
  return v;
}

const std::size_t kSweep[] = {1, 2, 7, 0};  // 0 = default_thread_count()

constexpr std::size_t kN = 10007;  // prime: uneven chunk boundaries
constexpr int kRepeats = 5;

TEST(ReduceSweep, ParallelReduceBitwiseStableAcrossThreadCounts) {
  const std::vector<double> x = test_data(kN, 42);
  std::uint64_t first = 0;
  bool have_first = false;
  for (std::size_t nt : kSweep) {
    ThreadPool pool(nt);
    for (int rep = 0; rep < kRepeats; ++rep) {
      const double sum = pool.parallel_reduce(
          0, kN,
          [&](std::size_t lo, std::size_t hi) {
            double acc = 0.0;
            for (std::size_t i = lo; i < hi; ++i) acc += x[i] * x[i];
            return acc;
          },
          1);
      if (!have_first) {
        first = bits(sum);
        have_first = true;
      } else {
        EXPECT_EQ(bits(sum), first)
            << "threads=" << pool.size() << " rep=" << rep;
      }
    }
  }
}

TEST(ReduceSweep, ParallelReduce2BitwiseStableAcrossThreadCounts) {
  const std::vector<double> x = test_data(kN, 7);
  const std::vector<double> y = test_data(kN, 11);
  std::uint64_t first_re = 0, first_im = 0;
  bool have_first = false;
  for (std::size_t nt : kSweep) {
    ThreadPool pool(nt);
    for (int rep = 0; rep < kRepeats; ++rep) {
      const auto [re, im] = pool.parallel_reduce2(
          0, kN,
          [&](std::size_t lo, std::size_t hi) {
            double a = 0.0, b = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
              a += x[i] * y[i];
              b += x[i] - y[i];
            }
            return std::make_pair(a, b);
          },
          1);
      if (!have_first) {
        first_re = bits(re);
        first_im = bits(im);
        have_first = true;
      } else {
        EXPECT_EQ(bits(re), first_re)
            << "threads=" << pool.size() << " rep=" << rep;
        EXPECT_EQ(bits(im), first_im)
            << "threads=" << pool.size() << " rep=" << rep;
      }
    }
  }
}

TEST(ReduceSweep, MutatingReduceNBitwiseStableAcrossThreadCounts) {
  // The fused-kernel shape: the body updates the data it walks (y += a*x)
  // while accumulating two reduction components, exactly like the fused
  // axpy_norm2 / caxpy_norm2 kernels in lattice/blas.hpp.
  const std::vector<double> x = test_data(kN, 3);
  const std::vector<double> y0 = test_data(kN, 5);
  std::vector<std::uint64_t> first_out;
  std::vector<std::uint64_t> first_y;
  for (std::size_t nt : kSweep) {
    ThreadPool pool(nt);
    for (int rep = 0; rep < kRepeats; ++rep) {
      std::vector<double> y = y0;  // fresh copy: the kernel mutates it
      double out[2] = {0.0, 0.0};
      pool.parallel_reduce_n(
          0, kN, 2,
          [&](std::size_t lo, std::size_t hi, double* partial) {
            for (std::size_t i = lo; i < hi; ++i) {
              y[i] += 0.625 * x[i];
              partial[0] += y[i] * y[i];
              partial[1] += y[i] * x[i];
            }
          },
          out, 1);
      if (first_out.empty()) {
        first_out = {bits(out[0]), bits(out[1])};
        first_y.reserve(kN);
        for (double v : y) first_y.push_back(bits(v));
      } else {
        EXPECT_EQ(bits(out[0]), first_out[0])
            << "threads=" << pool.size() << " rep=" << rep;
        EXPECT_EQ(bits(out[1]), first_out[1])
            << "threads=" << pool.size() << " rep=" << rep;
        // The mutated field must be bitwise stable too, not just the sums.
        for (std::size_t i = 0; i < kN; ++i)
          ASSERT_EQ(bits(y[i]), first_y[i])
              << "threads=" << pool.size() << " rep=" << rep << " i=" << i;
      }
    }
  }
}

TEST(ReduceSweep, LaneStripedChunkBodyBitwiseStableAcrossThreadCounts) {
  // The vectorized norm2_chunk shape from lattice/blas.hpp: a W-lane
  // accumulator combined with sum_ordered() plus a scalar tail.  The
  // determinism promise must survive the lanes: for a fixed width,
  // repeats are bitwise identical whatever the pool size.
  constexpr int W = 4;
  const std::vector<double> x = test_data(kN, 21);
  std::uint64_t first = 0;
  bool have_first = false;
  for (std::size_t nt : kSweep) {
    ThreadPool pool(nt);
    for (int rep = 0; rep < kRepeats; ++rep) {
      const double sum = pool.parallel_reduce(
          0, kN,
          [&](std::size_t lo, std::size_t hi) {
            simd::Vec<double, W> acc;
            std::size_t i = lo;
            for (; i + W <= hi; i += W) {
              const auto v = simd::Vec<double, W>::load(x.data() + i);
              acc += v * v;
            }
            double s = simd::sum_ordered(acc);
            for (; i < hi; ++i) s += x[i] * x[i];
            return s;
          },
          1);
      if (!have_first) {
        first = bits(sum);
        have_first = true;
      } else {
        EXPECT_EQ(bits(sum), first)
            << "threads=" << pool.size() << " rep=" << rep;
      }
    }
  }
}

TEST(ReduceSweep, ReduceNMatchesSerialSumUpToRounding) {
  // The chunked sum is not the serial sum (64 partials vs. one running
  // accumulator), but every pool size must agree with it to rounding.
  const std::vector<double> x = test_data(kN, 13);
  long double serial = 0.0L;
  for (double v : x) serial += static_cast<long double>(v) * v;
  for (std::size_t nt : kSweep) {
    ThreadPool pool(nt);
    double out[1] = {0.0};
    pool.parallel_reduce_n(
        0, kN, 1,
        [&](std::size_t lo, std::size_t hi, double* partial) {
          for (std::size_t i = lo; i < hi; ++i) partial[0] += x[i] * x[i];
        },
        out, 1);
    EXPECT_NEAR(out[0] / static_cast<double>(serial), 1.0, 1e-12)
        << "threads=" << pool.size();
  }
}

}  // namespace
}  // namespace femto::par
