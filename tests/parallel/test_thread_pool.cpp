#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

namespace femto::par {
namespace {

TEST(ThreadPool, SizeIsAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  ThreadPool pool3(3);
  EXPECT_EQ(pool3.size(), 3u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  int count = 0;
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ChunkedCoversRangeWithoutOverlap) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(977);  // prime-ish size, uneven chunks
  pool.parallel_for_chunked(0, hits.size(),
                            [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i) hits[i]++;
                            });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GrainLimitsParallelism) {
  ThreadPool pool(8);
  // With grain = range size, only one chunk should run.
  std::atomic<int> chunks{0};
  pool.parallel_for_chunked(
      0, 100, [&](std::size_t, std::size_t) { chunks++; }, 100);
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPool, ReduceMatchesSerialSum) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  const double got = pool.parallel_reduce(0, n, [](std::size_t lo,
                                                   std::size_t hi) {
    double s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += static_cast<double>(i);
    return s;
  });
  EXPECT_DOUBLE_EQ(got, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ThreadPool, ReduceIsDeterministicAcrossRepeats) {
  ThreadPool pool(4);
  std::vector<double> vals(50000);
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = 1.0 / static_cast<double>(i + 1);
  auto run = [&] {
    return pool.parallel_reduce(0, vals.size(),
                                [&](std::size_t lo, std::size_t hi) {
                                  double s = 0;
                                  for (std::size_t i = lo; i < hi; ++i)
                                    s += vals[i];
                                  return s;
                                });
  };
  const double first = run();
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(run(), first);
}

TEST(ThreadPool, Reduce2SumsBothComponents) {
  ThreadPool pool(2);
  auto [a, b] = pool.parallel_reduce2(
      0, 100, [](std::size_t lo, std::size_t hi) {
        double s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += 1.0;
        return std::make_pair(s, 2.0 * s);
      });
  EXPECT_DOUBLE_EQ(a, 100.0);
  EXPECT_DOUBLE_EQ(b, 200.0);
}

TEST(ThreadPool, NestedUseOfDifferentPools) {
  // A kernel running on one pool may use another pool internally.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> total{0};
  outer.parallel_for(0, 4, [&](std::size_t) {
    inner.parallel_for(0, 4, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, ManySequentialLaunches) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int rep = 0; rep < 200; ++rep)
    pool.parallel_for(0, 64, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 200 * 64);
}

TEST(ThreadPool, ReduceNMatchesSerialComponents) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  double out[3] = {-1.0, -1.0, -1.0};
  pool.parallel_reduce_n(
      0, n, 3,
      [](std::size_t lo, std::size_t hi, double* acc) {
        double s0 = 0, s1 = 0, s2 = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const double v = static_cast<double>(i);
          s0 += 1.0;
          s1 += v;
          s2 += v * v;
        }
        acc[0] = s0;
        acc[1] = s1;
        acc[2] = s2;
      },
      out);
  EXPECT_DOUBLE_EQ(out[0], static_cast<double>(n));
  EXPECT_DOUBLE_EQ(out[1], static_cast<double>(n) * (n - 1) / 2.0);
  double s2 = 0;
  for (std::size_t i = 0; i < n; ++i)
    s2 += static_cast<double>(i) * static_cast<double>(i);
  EXPECT_DOUBLE_EQ(out[2], s2);
}

TEST(ThreadPool, ReduceNZeroesOutputOnEmptyRange) {
  ThreadPool pool(4);
  double out[2] = {99.0, 99.0};
  pool.parallel_reduce_n(
      5, 5, 2, [](std::size_t, std::size_t, double*) { FAIL(); }, out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(ThreadPool, ReduceNBodyMayMutateData) {
  // The fused-kernel contract: chunk bodies update the data they walk while
  // accumulating.  Chunks are disjoint so this is race-free; every element
  // must end up updated exactly once and the sum must match.
  ThreadPool pool(4);
  std::vector<double> vals(9973, 1.0);
  double sum = 0.0;
  pool.parallel_reduce_n(
      0, vals.size(), 1,
      [&](std::size_t lo, std::size_t hi, double* acc) {
        double s = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          vals[i] += 2.0;
          s += vals[i];
        }
        acc[0] = s;
      },
      &sum);
  EXPECT_DOUBLE_EQ(sum, 3.0 * static_cast<double>(vals.size()));
  for (const double v : vals) ASSERT_EQ(v, 3.0);
}

TEST(ThreadPool, ReduceNDeterministicAcrossThreadCountSweep) {
  // Repeated runs are bit-identical, and -- because the chunk
  // decomposition depends only on the range -- so are runs under
  // different worker counts.
  std::vector<double> vals(50000);
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = 1.0 / static_cast<double>(i + 1);
  auto run = [&](ThreadPool& pool) {
    double out[2] = {0.0, 0.0};
    pool.parallel_reduce_n(
        0, vals.size(), 2,
        [&](std::size_t lo, std::size_t hi, double* acc) {
          double s = 0, q = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            s += vals[i];
            q += vals[i] * vals[i];
          }
          acc[0] = s;
          acc[1] = q;
        },
        out);
    return std::make_pair(out[0], out[1]);
  };
  const std::size_t counts[] = {1, 2, 3, 4, 8};
  double ref_s = 0.0, ref_q = 0.0;
  {
    ThreadPool serial(1);
    const auto ref = run(serial);
    ref_s = ref.first;
    ref_q = ref.second;
  }
  for (const std::size_t nt : counts) {
    ThreadPool pool(nt);
    const auto first = run(pool);
    for (int rep = 0; rep < 3; ++rep) {
      const auto again = run(pool);
      EXPECT_EQ(again.first, first.first) << "threads=" << nt;
      EXPECT_EQ(again.second, first.second) << "threads=" << nt;
    }
    EXPECT_EQ(first.first, ref_s) << "threads=" << nt;
    EXPECT_EQ(first.second, ref_q) << "threads=" << nt;
  }
}

TEST(ThreadPool, DefaultThreadCountReadsFemtoThreads) {
  // FEMTO_THREADS pins the default worker count (the cross-thread-count
  // golden determinism test re-execs itself under it); garbage or zero
  // falls back to the hardware concurrency.
  const char* saved = std::getenv("FEMTO_THREADS");
  const std::string restore = saved ? saved : "";
  setenv("FEMTO_THREADS", "5", 1);
  EXPECT_EQ(default_thread_count(), 5u);
  setenv("FEMTO_THREADS", "0", 1);
  EXPECT_GE(default_thread_count(), 1u);
  setenv("FEMTO_THREADS", "banana", 1);
  EXPECT_GE(default_thread_count(), 1u);
  if (saved)
    setenv("FEMTO_THREADS", restore.c_str(), 1);
  else
    unsetenv("FEMTO_THREADS");
}

TEST(GlobalHelpers, ParallelForAndReduce) {
  std::atomic<int> n{0};
  parallel_for(0, 10, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 10);
  const double s = parallel_reduce(0, 10, [](std::size_t lo, std::size_t hi) {
    return static_cast<double>(hi - lo);
  });
  EXPECT_DOUBLE_EQ(s, 10.0);
}

}  // namespace
}  // namespace femto::par
