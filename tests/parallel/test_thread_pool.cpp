#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace femto::par {
namespace {

TEST(ThreadPool, SizeIsAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  ThreadPool pool3(3);
  EXPECT_EQ(pool3.size(), 3u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  int count = 0;
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ChunkedCoversRangeWithoutOverlap) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(977);  // prime-ish size, uneven chunks
  pool.parallel_for_chunked(0, hits.size(),
                            [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i) hits[i]++;
                            });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GrainLimitsParallelism) {
  ThreadPool pool(8);
  // With grain = range size, only one chunk should run.
  std::atomic<int> chunks{0};
  pool.parallel_for_chunked(
      0, 100, [&](std::size_t, std::size_t) { chunks++; }, 100);
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPool, ReduceMatchesSerialSum) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  const double got = pool.parallel_reduce(0, n, [](std::size_t lo,
                                                   std::size_t hi) {
    double s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += static_cast<double>(i);
    return s;
  });
  EXPECT_DOUBLE_EQ(got, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ThreadPool, ReduceIsDeterministicAcrossRepeats) {
  ThreadPool pool(4);
  std::vector<double> vals(50000);
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = 1.0 / static_cast<double>(i + 1);
  auto run = [&] {
    return pool.parallel_reduce(0, vals.size(),
                                [&](std::size_t lo, std::size_t hi) {
                                  double s = 0;
                                  for (std::size_t i = lo; i < hi; ++i)
                                    s += vals[i];
                                  return s;
                                });
  };
  const double first = run();
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(run(), first);
}

TEST(ThreadPool, Reduce2SumsBothComponents) {
  ThreadPool pool(2);
  auto [a, b] = pool.parallel_reduce2(
      0, 100, [](std::size_t lo, std::size_t hi) {
        double s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += 1.0;
        return std::make_pair(s, 2.0 * s);
      });
  EXPECT_DOUBLE_EQ(a, 100.0);
  EXPECT_DOUBLE_EQ(b, 200.0);
}

TEST(ThreadPool, NestedUseOfDifferentPools) {
  // A kernel running on one pool may use another pool internally.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> total{0};
  outer.parallel_for(0, 4, [&](std::size_t) {
    inner.parallel_for(0, 4, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, ManySequentialLaunches) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int rep = 0; rep < 200; ++rep)
    pool.parallel_for(0, 64, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 200 * 64);
}

TEST(GlobalHelpers, ParallelForAndReduce) {
  std::atomic<int> n{0};
  parallel_for(0, 10, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 10);
  const double s = parallel_reduce(0, 10, [](std::size_t lo, std::size_t hi) {
    return static_cast<double>(hi - lo);
  });
  EXPECT_DOUBLE_EQ(s, 10.0);
}

}  // namespace
}  // namespace femto::par
