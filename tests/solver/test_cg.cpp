#include "solver/cg.hpp"

#include <gtest/gtest.h>

#include "dirac/mobius.hpp"
#include "lattice/gauge.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

const MobiusParams kParams{6, -1.8, 1.5, 0.5, 0.1};

struct Fixture {
  std::shared_ptr<const GaugeField<double>> u;
  std::unique_ptr<MobiusOperator<double>> op;
  Fixture() {
    auto ug = std::make_shared<GaugeField<double>>(geom44());
    weak_gauge(*ug, 111, 0.25);
    u = ug;
    op = std::make_unique<MobiusOperator<double>>(u, kParams);
  }
};

TEST(Cg, SolvesIdentityInOneIteration) {
  auto g = geom44();
  SpinorField<double> b(g, 2, Subset::Odd), x(g, 2, Subset::Odd);
  b.gaussian(112);
  ApplyFn<double> identity = [](SpinorField<double>& out,
                                const SpinorField<double>& in) {
    out = in;
  };
  auto res = cg<double>(identity, x, b, 1e-12, 10);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 1);
  blas::axpy(-1.0, b, x);
  EXPECT_LT(blas::norm2(x), 1e-24 * blas::norm2(b));
}

TEST(Cg, SolvesDiagonalOperator) {
  auto g = geom44();
  SpinorField<double> b(g, 1, Subset::Even), x(g, 1, Subset::Even);
  b.gaussian(113);
  ApplyFn<double> diag = [](SpinorField<double>& out,
                            const SpinorField<double>& in) {
    out = in;
    blas::scal(4.0, out);
  };
  auto res = cg<double>(diag, x, b, 1e-12, 10);
  EXPECT_TRUE(res.converged);
  blas::scal(4.0, x);
  blas::axpy(-1.0, b, x);
  EXPECT_LT(blas::norm2(x), 1e-20 * blas::norm2(b));
}

TEST(Cg, SolvesMobiusNormalEquations) {
  Fixture s;
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      x(g, kParams.l5, Subset::Odd), check(g, kParams.l5, Subset::Odd);
  b.gaussian(114);
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  auto res = cg<double>(normal, x, b, 1e-10, 2000);
  ASSERT_TRUE(res.converged) << res.summary();
  s.op->apply_normal(check, x);
  blas::axpy(-1.0, b, check);
  EXPECT_LT(std::sqrt(blas::norm2(check) / blas::norm2(b)), 1e-9);
}

TEST(Cg, WarmStartReducesIterations) {
  Fixture s;
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      x(g, kParams.l5, Subset::Odd);
  b.gaussian(115);
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  auto cold = cg<double>(normal, x, b, 1e-8, 2000);
  ASSERT_TRUE(cold.converged);
  // Re-solve to a tighter tolerance starting from the converged solution.
  auto warm = cg<double>(normal, x, b, 1e-10, 2000);
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(Cg, ReportsResidualAndFlops) {
  Fixture s;
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      x(g, kParams.l5, Subset::Odd);
  b.gaussian(116);
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  auto res = cg<double>(normal, x, b, 1e-8, 2000);
  ASSERT_TRUE(res.converged);
  EXPECT_LE(res.final_rel_residual, 1e-8);
  EXPECT_GT(res.flop_count, 0);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_GT(res.gflops(), 0.0);
  EXPECT_NE(res.summary().find("converged"), std::string::npos);
}

TEST(Cg, RespectsMaxIter) {
  Fixture s;
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      x(g, kParams.l5, Subset::Odd);
  b.gaussian(117);
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  auto res = cg<double>(normal, x, b, 1e-14, 3);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3);
}

class MixedCgTest : public ::testing::TestWithParam<Precision> {};

TEST_P(MixedCgTest, ConvergesToDoublePrecisionTolerance) {
  Fixture s;
  auto uf = std::make_shared<GaugeField<float>>(s.u->convert<float>());
  MobiusOperator<float> opf(uf, kParams);
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      x(g, kParams.l5, Subset::Odd), check(g, kParams.l5, Subset::Odd);
  b.gaussian(118);

  ApplyFn<double> ad = [&](SpinorField<double>& out,
                           const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  ApplyFn<float> af = [&](SpinorField<float>& out,
                          const SpinorField<float>& in) {
    opf.apply_normal(out, in);
  };

  SolverParams params;
  params.tol = 1e-10;
  params.sloppy = GetParam();
  auto res = mixed_cg(ad, af, x, b, params);
  ASSERT_TRUE(res.converged) << res.summary();
  EXPECT_GT(res.reliable_updates, 0);

  // Verify against the TRUE double operator, independent of the solver's
  // own residual bookkeeping.
  s.op->apply_normal(check, x);
  blas::axpy(-1.0, b, check);
  EXPECT_LT(std::sqrt(blas::norm2(check) / blas::norm2(b)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Precisions, MixedCgTest,
                         ::testing::Values(Precision::Single,
                                           Precision::Half),
                         [](const ::testing::TestParamInfo<Precision>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(MixedCg, MatchesPureDoubleSolution) {
  Fixture s;
  auto uf = std::make_shared<GaugeField<float>>(s.u->convert<float>());
  MobiusOperator<float> opf(uf, kParams);
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      xd(g, kParams.l5, Subset::Odd), xm(g, kParams.l5, Subset::Odd);
  b.gaussian(119);

  ApplyFn<double> ad = [&](SpinorField<double>& out,
                           const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  ApplyFn<float> af = [&](SpinorField<float>& out,
                          const SpinorField<float>& in) {
    opf.apply_normal(out, in);
  };

  auto r1 = cg<double>(ad, xd, b, 1e-10, 5000);
  SolverParams params;
  params.tol = 1e-10;
  params.sloppy = Precision::Half;
  auto r2 = mixed_cg(ad, af, xm, b, params);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  blas::axpy(-1.0, xd, xm);
  EXPECT_LT(std::sqrt(blas::norm2(xm) / blas::norm2(xd)), 1e-7);
}

}  // namespace
}  // namespace femto
