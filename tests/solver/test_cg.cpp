#include "solver/cg.hpp"

#include <gtest/gtest.h>

#include "dirac/mobius.hpp"
#include "lattice/flops.hpp"
#include "lattice/gauge.hpp"
#include "solver/half.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

const MobiusParams kParams{6, -1.8, 1.5, 0.5, 0.1};

struct Fixture {
  std::shared_ptr<const GaugeField<double>> u;
  std::unique_ptr<MobiusOperator<double>> op;
  Fixture() {
    auto ug = std::make_shared<GaugeField<double>>(geom44());
    weak_gauge(*ug, 111, 0.25);
    u = ug;
    op = std::make_unique<MobiusOperator<double>>(u, kParams);
  }
};

TEST(Cg, SolvesIdentityInOneIteration) {
  auto g = geom44();
  SpinorField<double> b(g, 2, Subset::Odd), x(g, 2, Subset::Odd);
  b.gaussian(112);
  ApplyFn<double> identity = [](SpinorField<double>& out,
                                const SpinorField<double>& in) {
    out = in;
  };
  auto res = cg<double>(identity, x, b, 1e-12, 10);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 1);
  blas::axpy(-1.0, b, x);
  EXPECT_LT(blas::norm2(x), 1e-24 * blas::norm2(b));
}

TEST(Cg, SolvesDiagonalOperator) {
  auto g = geom44();
  SpinorField<double> b(g, 1, Subset::Even), x(g, 1, Subset::Even);
  b.gaussian(113);
  ApplyFn<double> diag = [](SpinorField<double>& out,
                            const SpinorField<double>& in) {
    out = in;
    blas::scal(4.0, out);
  };
  auto res = cg<double>(diag, x, b, 1e-12, 10);
  EXPECT_TRUE(res.converged);
  blas::scal(4.0, x);
  blas::axpy(-1.0, b, x);
  EXPECT_LT(blas::norm2(x), 1e-20 * blas::norm2(b));
}

TEST(Cg, SolvesMobiusNormalEquations) {
  Fixture s;
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      x(g, kParams.l5, Subset::Odd), check(g, kParams.l5, Subset::Odd);
  b.gaussian(114);
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  auto res = cg<double>(normal, x, b, 1e-10, 2000);
  ASSERT_TRUE(res.converged) << res.summary();
  s.op->apply_normal(check, x);
  blas::axpy(-1.0, b, check);
  EXPECT_LT(std::sqrt(blas::norm2(check) / blas::norm2(b)), 1e-9);
}

TEST(Cg, WarmStartReducesIterations) {
  Fixture s;
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      x(g, kParams.l5, Subset::Odd);
  b.gaussian(115);
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  auto cold = cg<double>(normal, x, b, 1e-8, 2000);
  ASSERT_TRUE(cold.converged);
  // Re-solve to a tighter tolerance starting from the converged solution.
  auto warm = cg<double>(normal, x, b, 1e-10, 2000);
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(Cg, ReportsResidualAndFlops) {
  Fixture s;
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      x(g, kParams.l5, Subset::Odd);
  b.gaussian(116);
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  auto res = cg<double>(normal, x, b, 1e-8, 2000);
  ASSERT_TRUE(res.converged);
  EXPECT_LE(res.final_rel_residual, 1e-8);
  EXPECT_GT(res.flop_count, 0);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_GT(res.gflops(), 0.0);
  EXPECT_NE(res.summary().find("converged"), std::string::npos);
}

TEST(Cg, RespectsMaxIter) {
  Fixture s;
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      x(g, kParams.l5, Subset::Odd);
  b.gaussian(117);
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  auto res = cg<double>(normal, x, b, 1e-14, 3);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3);
}

class MixedCgTest : public ::testing::TestWithParam<Precision> {};

TEST_P(MixedCgTest, ConvergesToDoublePrecisionTolerance) {
  Fixture s;
  auto uf = std::make_shared<GaugeField<float>>(s.u->convert<float>());
  MobiusOperator<float> opf(uf, kParams);
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      x(g, kParams.l5, Subset::Odd), check(g, kParams.l5, Subset::Odd);
  b.gaussian(118);

  ApplyFn<double> ad = [&](SpinorField<double>& out,
                           const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  ApplyFn<float> af = [&](SpinorField<float>& out,
                          const SpinorField<float>& in) {
    opf.apply_normal(out, in);
  };

  SolverParams params;
  params.tol = 1e-10;
  params.sloppy = GetParam();
  auto res = mixed_cg(ad, af, x, b, params);
  ASSERT_TRUE(res.converged) << res.summary();
  EXPECT_GT(res.reliable_updates, 0);

  // Verify against the TRUE double operator, independent of the solver's
  // own residual bookkeeping.
  s.op->apply_normal(check, x);
  blas::axpy(-1.0, b, check);
  EXPECT_LT(std::sqrt(blas::norm2(check) / blas::norm2(b)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Precisions, MixedCgTest,
                         ::testing::Values(Precision::Single,
                                           Precision::Half),
                         [](const ::testing::TestParamInfo<Precision>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(MixedCg, MatchesPureDoubleSolution) {
  Fixture s;
  auto uf = std::make_shared<GaugeField<float>>(s.u->convert<float>());
  MobiusOperator<float> opf(uf, kParams);
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      xd(g, kParams.l5, Subset::Odd), xm(g, kParams.l5, Subset::Odd);
  b.gaussian(119);

  ApplyFn<double> ad = [&](SpinorField<double>& out,
                           const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  ApplyFn<float> af = [&](SpinorField<float>& out,
                          const SpinorField<float>& in) {
    opf.apply_normal(out, in);
  };

  auto r1 = cg<double>(ad, xd, b, 1e-10, 5000);
  SolverParams params;
  params.tol = 1e-10;
  params.sloppy = Precision::Half;
  auto r2 = mixed_cg(ad, af, xm, b, params);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  blas::axpy(-1.0, xd, xm);
  EXPECT_LT(std::sqrt(blas::norm2(xm) / blas::norm2(xd)), 1e-7);
}

TEST(Cg, FusedIterationTrafficMatchesModel) {
  // Solve a diagonal system with a hand-rolled apply that charges no bytes,
  // so flops::bytes() isolates the solver's own BLAS traffic.  The fused
  // iteration makes 10 field-passes beyond the matvec (redot 2,
  // axpy_norm2 3, axpy_zpbx 5); the seed's unfused body made 12.
  auto g = geom44();
  SpinorField<double> b(g, 2, Subset::Even), x(g, 2, Subset::Even);
  b.gaussian(120);
  ApplyFn<double> diag = [](SpinorField<double>& out,
                            const SpinorField<double>& in) {
    const double* id = in.data();
    double* od = out.data();
    for (std::int64_t k = 0; k < in.reals(); ++k) od[k] = 4.0 * id[k];
  };
  flops::reset();
  auto res = cg<double>(diag, x, b, 1e-12, 10);
  const std::int64_t measured = flops::bytes();
  ASSERT_TRUE(res.converged);
  const std::int64_t nb = b.reals() * static_cast<std::int64_t>(
                                          sizeof(double));
  // Setup: norm2(b) + norm2(x) = 2 passes (cold start skips norm2(r)).
  const std::int64_t fused_model = (2 + 10 * res.iterations) * nb;
  const std::int64_t seed_model = (3 + 12 * res.iterations) * nb;
  EXPECT_EQ(measured, fused_model);
  EXPECT_LT(measured, seed_model);
}

TEST(MixedCg, FusedHalfIterationCutsTrafficByQuarter) {
  // One inner half-precision iteration's BLAS+quantise work, seed sequence
  // vs fused, measured via the byte counter (acceptance: >= 25% less).
  auto g = geom44();
  SpinorField<float> p(g, 4, Subset::Odd), ap(g, 4, Subset::Odd),
      xs(g, 4, Subset::Odd), r(g, 4, Subset::Odd);
  p.gaussian(121);
  ap.gaussian(122);
  xs.gaussian(123);
  r.gaussian(124);
  HalfSpinorField store(g, 4, Subset::Odd);

  flops::reset();
  // Seed: redot, axpy x2, quantize x2 (4 sweeps each), norm2, xpay,
  // quantize.
  blas::redot(p, ap);
  blas::axpy<float>(0.5, p, xs);
  blas::axpy<float>(-0.5, ap, r);
  store.encode(xs);
  store.decode(xs);
  store.encode(r);
  store.decode(r);
  blas::norm2(r);
  blas::xpay<float>(r, 0.25, p);
  store.encode(p);
  store.decode(p);
  const std::int64_t unfused = flops::bytes();

  flops::reset();
  blas::redot(p, ap);
  store.axpy_roundtrip(0.5, p, xs);
  store.axpy_roundtrip_norm2(-0.5, ap, r);
  store.xpay_roundtrip(r, 0.25, p);
  const std::int64_t fused = flops::bytes();

  EXPECT_LE(4 * fused, 3 * unfused)
      << "fused=" << fused << " unfused=" << unfused;
}

TEST(Cg, BlasGrainDoesNotChangeConvergence) {
  Fixture s;
  const auto g = s.u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Odd),
      x1(g, kParams.l5, Subset::Odd), x2(g, kParams.l5, Subset::Odd);
  b.gaussian(125);
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    s.op->apply_normal(out, in);
  };
  auto r1 = cg<double>(normal, x1, b, 1e-10, 2000);
  auto r2 = cg<double>(normal, x2, b, 1e-10, 2000, /*blas_grain=*/1024);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  // The grain only reorders reduction partials; iteration counts must be
  // equal or within the usual last-iteration wobble.
  EXPECT_NEAR(r1.iterations, r2.iterations, 1);
  blas::axpy(-1.0, x1, x2);
  EXPECT_LT(std::sqrt(blas::norm2(x2) / blas::norm2(x1)), 1e-8);
}

}  // namespace
}  // namespace femto
