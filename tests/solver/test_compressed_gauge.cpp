// QUDA's reconstruct-12 gauge compression: 12 stored reals per link, third
// row rebuilt from unitarity on load — exact for SU(3) links.

#include "lattice/compressed_gauge.hpp"

#include <gtest/gtest.h>

#include "dirac/wilson.hpp"
#include "lattice/gauge.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom448() {
  return std::make_shared<Geometry>(4, 4, 4, 8);
}

TEST(CompressedGauge, ReconstructionIsExactForSu3) {
  GaugeField<double> u(geom448());
  hot_gauge(u, 1601);
  CompressedGaugeField<double> c(u);
  for (int mu = 0; mu < 4; ++mu)
    for (std::int64_t s = 0; s < u.geom().volume(); s += 13) {
      const auto full = u.load(mu, s);
      const auto rec = c.load(mu, s);
      EXPECT_LT(dist2(full, rec), 1e-24) << mu << " " << s;
    }
}

TEST(CompressedGauge, StorageIsTwoThirds) {
  GaugeField<double> u(geom448());
  unit_gauge(u);
  CompressedGaugeField<double> c(u);
  EXPECT_EQ(c.bytes() * 3, u.bytes() * 2);
}

TEST(CompressedGauge, DecompressRoundTrip) {
  GaugeField<double> u(geom448());
  weak_gauge(u, 1602, 0.3);
  CompressedGaugeField<double> c(u);
  const auto back = c.decompress();
  for (std::int64_t k = 0; k < u.bytes() / 8; k += 29)
    EXPECT_NEAR(back.data()[k], u.data()[k], 1e-14);
}

TEST(CompressedGauge, DslashThroughDecompressedMatches) {
  // A dslash on the decompressed field equals the original: compression
  // is exact on unitary links, so the physics cannot change.
  auto g = geom448();
  GaugeField<double> u(g);
  hot_gauge(u, 1603);
  CompressedGaugeField<double> c(u);
  const auto u2 = c.decompress();

  SpinorField<double> in(g, 2, Subset::Odd), a(g, 2, Subset::Even),
      b(g, 2, Subset::Even);
  in.gaussian(1604);
  dslash<double>(view(a), u, cview(in), 0, false, {});
  dslash<double>(view(b), u2, cview(in), 0, false, {});
  for (std::int64_t k = 0; k < a.reals(); ++k)
    ASSERT_NEAR(a.data()[k], b.data()[k], 1e-12);
}

TEST(CompressedGauge, ReconstructThirdRowProperty) {
  // For any SU(3) matrix, the reconstructed third row equals the
  // original; for a NON-unitary matrix it generally does not (the
  // compression is only valid on the group).
  Xoshiro256 rng(1605);
  ColorMat<double> m;
  for (auto& e : m.m) e = {rng.gaussian(), rng.gaussian()};
  const auto su3 = project_su3(m);
  ColorMat<double> rec = su3;
  reconstruct_third_row(rec);
  EXPECT_LT(dist2(rec, su3), 1e-24);

  ColorMat<double> nonunitary = m;
  reconstruct_third_row(nonunitary);
  EXPECT_GT(dist2(nonunitary, m), 1e-6);
}

TEST(CompressedGauge, FloatPrecisionReconstruction) {
  GaugeField<double> ud(geom448());
  hot_gauge(ud, 1606);
  const auto uf = ud.convert<float>();
  CompressedGaugeField<float> c(uf);
  for (std::int64_t s = 0; s < ud.geom().volume(); s += 37) {
    const auto full = uf.load(1, s);
    const auto rec = c.load(1, s);
    EXPECT_LT(dist2(full, rec), 1e-10f);
  }
}

}  // namespace
}  // namespace femto

namespace femto {
namespace {

TEST(CompressedGauge, CompressedDslashMatchesFull) {
  // The kernel reading 12-real links must match the 18-real kernel.
  auto g = std::make_shared<Geometry>(4, 4, 4, 8);
  GaugeField<double> u(g);
  hot_gauge(u, 1607);
  CompressedGaugeField<double> c(u);
  SpinorField<double> in(g, 4, Subset::Odd), a(g, 4, Subset::Even),
      b(g, 4, Subset::Even);
  in.gaussian(1608);
  for (bool dagger : {false, true}) {
    dslash<double>(view(a), u, cview(in), 0, dagger, {});
    dslash_compressed<double>(view(b), c, cview(in), 0, dagger, {});
    for (std::int64_t k = 0; k < a.reals(); ++k)
      ASSERT_NEAR(a.data()[k], b.data()[k], 1e-12) << dagger;
  }
}

}  // namespace
}  // namespace femto

// ---------------------------------------------------------------------------
// The deeper tiers (DESIGN.md §16): recon8 exact-for-SU(3), fixed12
// quantised, plus the storage/traffic/determinism contracts shared by all
// three containers.
// ---------------------------------------------------------------------------

#include "lattice/flops.hpp"

namespace femto {
namespace {

TEST(Recon8Gauge, RoundTripOnHotGauge) {
  GaugeField<double> u(geom448());
  hot_gauge(u, 1609);
  Recon8GaugeField<double> c(u);
  for (int mu = 0; mu < 4; ++mu)
    for (std::int64_t s = 0; s < u.geom().volume(); s += 11) {
      const auto full = u.load(mu, s);
      const auto rec = c.load(mu, s);
      // atan2/sin/cos/sqrt in the codec cost a few ulp more than recon12.
      EXPECT_LT(dist2(full, rec), 1e-20) << mu << " " << s;
    }
}

TEST(Recon8Gauge, StorageIsFourNinths) {
  GaugeField<double> u(geom448());
  hot_gauge(u, 1610);
  Recon8GaugeField<double> c(u);
  EXPECT_EQ(c.bytes() * 9, u.bytes() * 4);
}

TEST(Fixed12Gauge, RoundTripWithinQuantisationBound) {
  GaugeField<double> u(geom448());
  hot_gauge(u, 1611);
  Fixed12GaugeField<double> c(u);
  for (int mu = 0; mu < 4; ++mu)
    for (std::int64_t s = 0; s < u.geom().volume(); s += 11) {
      const auto full = u.load(mu, s);
      const auto rec = c.load(mu, s);
      // 16-bit mantissa: ~1.5e-5 absolute per real on |entry| <= 1 links,
      // squared and summed over 18 reals (third row amplifies by ~2x).
      EXPECT_LT(dist2(full, rec), 1e-6) << mu << " " << s;
      EXPECT_GT(dist2(full, rec), 0.0) << mu << " " << s;  // really lossy
    }
}

TEST(Fixed12Gauge, StorageIs28BytesPerLink) {
  GaugeField<double> u(geom448());
  hot_gauge(u, 1612);
  Fixed12GaugeField<double> c(u);
  EXPECT_EQ(c.bytes(),
            4 * u.geom().volume() *
                (12 * static_cast<std::int64_t>(sizeof(std::int16_t)) +
                 static_cast<std::int64_t>(sizeof(float))));
}

TEST(Fixed12Gauge, QuantisedStorageIsDeterministic) {
  // The parallel compression ctor writes disjoint links and the quantise
  // loop is scalar lrintf, so two builds of the same field must agree
  // bit-for-bit regardless of pool chunking or SIMD width.
  GaugeField<double> u(geom448());
  hot_gauge(u, 1613);
  Fixed12GaugeField<double> a(u), b(u);
  ASSERT_EQ(a.quantised(), b.quantised());
  ASSERT_EQ(a.scales(), b.scales());
}

TEST(CompressedGauge, ParallelCompressionIsDeterministic) {
  GaugeField<double> u(geom448());
  hot_gauge(u, 1614);
  CompressedGaugeField<double> a(u), b(u);
  const auto da = a.decompress(), db = b.decompress();
  for (std::int64_t k = 0; k < da.bytes() / 8; ++k)
    ASSERT_EQ(da.data()[k], db.data()[k]) << k;
}

TEST(CompressedGauge, CompressionChargesTrueTraffic) {
  // The ctor streams the full field in and the stored tier out; bytes()
  // must report the stored size so femtoscope's GB/s stays honest.
  GaugeField<double> u(geom448());
  hot_gauge(u, 1615);
  flops::reset();
  CompressedGaugeField<double> c(u);
  EXPECT_EQ(flops::bytes(), u.bytes() + c.bytes());
  flops::reset();
  Fixed12GaugeField<double> f(u);
  EXPECT_EQ(flops::bytes(), u.bytes() + f.bytes());
}

#if FEMTO_CHECKED_ENABLED
TEST(CompressedGaugeDeathTest, CheckedStoreRejectsNonUnitaryLinks) {
  // Reconstruction silently fabricates a wrong third row on non-unitary
  // input; checked builds must refuse instead.
  GaugeField<double> u(geom448());
  hot_gauge(u, 1616);
  CompressedGaugeField<double> c(u);
  ColorMat<double> bad = u.load(0, 0);
  bad(0, 0).re += 0.5;  // breaks row normalisation
  EXPECT_DEATH(c.store(0, 0, bad), "SU");
}
#endif

}  // namespace
}  // namespace femto
