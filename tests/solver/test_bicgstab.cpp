#include "solver/bicgstab.hpp"

#include <gtest/gtest.h>

#include "dirac/mobius.hpp"
#include "dirac/wilson_eo.hpp"
#include "lattice/gauge.hpp"

namespace femto {
namespace {

std::shared_ptr<const GaugeField<double>> make_gauge(std::uint64_t seed) {
  auto g = std::make_shared<Geometry>(4, 4, 4, 8);
  auto u = std::make_shared<GaugeField<double>>(g);
  weak_gauge(*u, seed, 0.25);
  return u;
}

TEST(BiCGStab, SolvesNonHermitianWilsonSchur) {
  auto u = make_gauge(911);
  WilsonEoOperator<double> op(u, 0.1);
  const auto g = u->geom_ptr();
  SpinorField<double> b(g, 1, Subset::Odd), x(g, 1, Subset::Odd),
      check(g, 1, Subset::Odd);
  b.gaussian(912);
  ApplyFn<double> a = [&](SpinorField<double>& out,
                          const SpinorField<double>& in) {
    op.apply_schur(out, in);
  };
  const auto res = bicgstab<double>(a, x, b, 1e-10, 5000);
  ASSERT_TRUE(res.converged) << res.summary();
  op.apply_schur(check, x);
  blas::axpy(-1.0, b, check);
  EXPECT_LT(std::sqrt(blas::norm2(check) / blas::norm2(b)), 1e-9);
}

TEST(BiCGStab, DomainWallSchurDefeatsBiCGStab) {
  // A REAL and well-documented phenomenon this library reproduces: the
  // domain-wall / Mobius operator is so non-normal that BiCGStab stalls
  // or diverges on it — which is exactly why the paper's production
  // solver is CG on the NORMAL equations rather than BiCGStab (S IV:
  // "the state-of-the art technique is to utilize conjugate gradient on
  // the normal equations").
  auto u = make_gauge(913);
  MobiusOperator<double> op(u, {6, -1.8, 1.5, 0.5, 0.1});
  const auto g = u->geom_ptr();
  SpinorField<double> b(g, 6, Subset::Odd), x(g, 6, Subset::Odd);
  b.gaussian(914);
  ApplyFn<double> a = [&](SpinorField<double>& out,
                          const SpinorField<double>& in) {
    op.apply_schur(out, in);
  };
  const auto res = bicgstab<double>(a, x, b, 1e-10, 400);
  EXPECT_FALSE(res.converged);

  // ...while CGNE on the same system converges without drama.
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    op.apply_normal(out, in);
  };
  SpinorField<double> rhs(g, 6, Subset::Odd), y(g, 6, Subset::Odd);
  op.apply_schur(rhs, b, true);
  const auto rc = cg<double>(normal, y, rhs, 1e-10, 5000);
  EXPECT_TRUE(rc.converged) << rc.summary();
}

TEST(BiCGStab, MatchesCgneSolution) {
  auto u = make_gauge(915);
  WilsonEoOperator<double> op(u, 0.15);
  const auto g = u->geom_ptr();
  SpinorField<double> b(g, 1, Subset::Odd), xb(g, 1, Subset::Odd),
      xc(g, 1, Subset::Odd), rhs(g, 1, Subset::Odd);
  b.gaussian(916);

  ApplyFn<double> schur = [&](SpinorField<double>& out,
                              const SpinorField<double>& in) {
    op.apply_schur(out, in);
  };
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    op.apply_normal(out, in);
  };
  const auto rb = bicgstab<double>(schur, xb, b, 1e-11, 5000);
  op.apply_schur(rhs, b, true);
  const auto rc = cg<double>(normal, xc, rhs, 1e-12, 5000);
  ASSERT_TRUE(rb.converged);
  ASSERT_TRUE(rc.converged);
  blas::axpy(-1.0, xb, xc);
  EXPECT_LT(std::sqrt(blas::norm2(xc) / blas::norm2(xb)), 1e-7);
}

TEST(BiCGStab, FewerMatvecsThanCgneOnWellConditioned) {
  // On the (normal-enough) Wilson system BiCGStab's matvecs on Mhat beat
  // CGNE's matvecs on the SQUARED system.
  auto u = make_gauge(917);
  WilsonEoOperator<double> op(u, 0.3);
  const auto g = u->geom_ptr();
  SpinorField<double> b(g, 1, Subset::Odd), x(g, 1, Subset::Odd),
      rhs(g, 1, Subset::Odd);
  b.gaussian(918);
  ApplyFn<double> schur = [&](SpinorField<double>& out,
                              const SpinorField<double>& in) {
    op.apply_schur(out, in);
  };
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    op.apply_normal(out, in);
  };
  const auto rb = bicgstab<double>(schur, x, b, 1e-8, 5000);
  x.zero();
  op.apply_schur(rhs, b, true);
  const auto rc = cg<double>(normal, x, rhs, 1e-8, 5000);
  ASSERT_TRUE(rb.converged);
  ASSERT_TRUE(rc.converged);
  // Schur applications: BiCGStab counts each matvec; CGNE does 2/iter.
  EXPECT_LT(rb.iterations, 2 * rc.iterations);
}

TEST(BiCGStab, RespectsMaxIter) {
  auto u = make_gauge(919);
  WilsonEoOperator<double> op(u, 0.05);
  const auto g = u->geom_ptr();
  SpinorField<double> b(g, 1, Subset::Odd), x(g, 1, Subset::Odd);
  b.gaussian(920);
  ApplyFn<double> a = [&](SpinorField<double>& out,
                          const SpinorField<double>& in) {
    op.apply_schur(out, in);
  };
  const auto res = bicgstab<double>(a, x, b, 1e-15, 4);
  EXPECT_FALSE(res.converged);
  EXPECT_LE(res.iterations, 5);
}

}  // namespace
}  // namespace femto
