// Golden-determinism probe: runs one small mixed-precision CG solve on the
// GLOBAL thread pool (so FEMTO_THREADS controls the worker count) and
// prints a bitwise fingerprint of the outcome on one line:
//
//   fnv=<16-hex FNV-1a over the solution doubles> iters=<n> converged=<0|1>
//
// test_determinism.cpp re-execs this binary under FEMTO_THREADS=1/2/7 and
// the inherited default and compares the lines verbatim: the femtoverse
// reproducibility contract (DESIGN.md §13) says the bits may not depend on
// how many workers happened to run the kernels.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "lattice/gauge.hpp"
#include "solver/dwf_solve.hpp"

namespace {

std::uint64_t fnv1a(const double* d, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, d + i, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

int main() {
  using namespace femto;
  auto geom = std::make_shared<Geometry>(4, 4, 4, 4);
  const MobiusParams params{6, -1.8, 1.5, 0.5, 0.1};

  auto u = std::make_shared<GaugeField<double>>(geom);
  weak_gauge(*u, 2027, 0.25);

  SpinorField<double> b(geom, params.l5, Subset::Full);
  b.gaussian(4091);
  SpinorField<double> x(geom, params.l5, Subset::Full);

  SolverParams sp;
  sp.tol = 1e-10;
  DwfSolver solver(u, params, sp);
  const SolveResult res = solver.solve(x, b);

  std::printf("fnv=%016" PRIx64 " iters=%d converged=%d\n",
              fnv1a(x.data(), static_cast<std::size_t>(x.reals())),
              res.iterations, res.converged ? 1 : 0);
  return 0;
}
