#include "dirac/wilson_eo.hpp"

#include <gtest/gtest.h>

#include "lattice/blas.hpp"
#include "lattice/gauge.hpp"
#include "solver/cg.hpp"

namespace femto {
namespace {

std::shared_ptr<const GaugeField<double>> make_gauge(std::uint64_t seed) {
  auto g = std::make_shared<Geometry>(4, 4, 4, 8);
  auto u = std::make_shared<GaugeField<double>>(g);
  weak_gauge(*u, seed, 0.25);
  return u;
}

TEST(WilsonEo, SchurSolvesFullSystem) {
  auto u = make_gauge(901);
  WilsonEoOperator<double> op(u, 0.1);
  const auto g = u->geom_ptr();
  SpinorField<double> x(g, 1, Subset::Full), b(g, 1, Subset::Full);
  x.gaussian(902);
  op.apply_full(b, x);

  SpinorField<double> xo(g, 1, Subset::Odd);
  const auto xov = parity_view(const_cast<const SpinorField<double>&>(x), 1);
  for (std::int64_t i = 0; i < xo.sites(); ++i)
    xo.store(0, i, xov.load(0, i));

  SpinorField<double> bhat(g, 1, Subset::Odd), mx(g, 1, Subset::Odd);
  op.prepare_source(bhat, b);
  op.apply_schur(mx, xo);
  blas::axpy(-1.0, bhat, mx);
  EXPECT_LT(blas::norm2(mx), 1e-18 * blas::norm2(bhat));

  SpinorField<double> xr(g, 1, Subset::Full);
  op.reconstruct(xr, xo, b);
  blas::axpy(-1.0, x, xr);
  EXPECT_LT(blas::norm2(xr), 1e-18 * blas::norm2(x));
}

TEST(WilsonEo, SchurDaggerAdjointness) {
  auto u = make_gauge(903);
  WilsonEoOperator<double> op(u, 0.05);
  const auto g = u->geom_ptr();
  SpinorField<double> x(g, 1, Subset::Odd), y(g, 1, Subset::Odd),
      mx(g, 1, Subset::Odd), mdy(g, 1, Subset::Odd);
  x.gaussian(904);
  y.gaussian(905);
  op.apply_schur(mx, x, false);
  op.apply_schur(mdy, y, true);
  const auto lhs = blas::cdot(y, mx);
  const auto rhs = blas::cdot(mdy, x);
  EXPECT_NEAR(lhs.re, rhs.re, 1e-9 * (std::abs(lhs.re) + 1));
  EXPECT_NEAR(lhs.im, rhs.im, 1e-9 * (std::abs(lhs.re) + 1));
}

TEST(WilsonEo, CgneSolveEndToEnd) {
  auto u = make_gauge(906);
  WilsonEoOperator<double> op(u, 0.2);
  const auto g = u->geom_ptr();
  SpinorField<double> b(g, 1, Subset::Full), bhat(g, 1, Subset::Odd),
      rhs(g, 1, Subset::Odd), y(g, 1, Subset::Odd),
      x(g, 1, Subset::Full), check(g, 1, Subset::Full);
  b.gaussian(907);
  op.prepare_source(bhat, b);
  op.apply_schur(rhs, bhat, true);
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    op.apply_normal(out, in);
  };
  const auto res = cg<double>(normal, y, rhs, 1e-10, 5000);
  ASSERT_TRUE(res.converged) << res.summary();
  op.reconstruct(x, y, b);
  op.apply_full(check, x);
  blas::axpy(-1.0, b, check);
  EXPECT_LT(std::sqrt(blas::norm2(check) / blas::norm2(b)), 1e-8);
}

TEST(WilsonEo, MassShiftsSpectrum) {
  // Heavier mass -> better conditioned -> fewer CG iterations.
  auto u = make_gauge(908);
  const auto g = u->geom_ptr();
  auto iterations = [&](double mass) {
    WilsonEoOperator<double> op(u, mass);
    SpinorField<double> b(g, 1, Subset::Odd), x(g, 1, Subset::Odd);
    b.gaussian(909);
    ApplyFn<double> normal = [&](SpinorField<double>& out,
                                 const SpinorField<double>& in) {
      op.apply_normal(out, in);
    };
    const auto res = cg<double>(normal, x, b, 1e-8, 5000);
    EXPECT_TRUE(res.converged);
    return res.iterations;
  };
  EXPECT_LT(iterations(0.5), iterations(0.02));
}

}  // namespace
}  // namespace femto
