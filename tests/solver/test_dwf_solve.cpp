// End-to-end propagator solve: prepare -> CGNE -> reconstruct must satisfy
// the FULL (unpreconditioned) Mobius equation, in every precision mode.

#include "solver/dwf_solve.hpp"

#include <gtest/gtest.h>

#include "lattice/gauge.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

const MobiusParams kParams{6, -1.8, 1.5, 0.5, 0.1};

std::shared_ptr<const GaugeField<double>> make_gauge(std::uint64_t seed) {
  auto u = std::make_shared<GaugeField<double>>(geom44());
  weak_gauge(*u, seed, 0.25);
  return u;
}

double full_residual(const MobiusOperator<double>& op,
                     const SpinorField<double>& x,
                     const SpinorField<double>& b) {
  SpinorField<double> check(b.geom_ptr(), b.l5(), Subset::Full);
  op.apply_full(check, x);
  blas::axpy(-1.0, b, check);
  return std::sqrt(blas::norm2(check) / blas::norm2(b));
}

TEST(DwfSolver, MixedPrecisionSolvesFullSystem) {
  auto u = make_gauge(121);
  SolverParams sp;
  sp.tol = 1e-10;
  DwfSolver solver(u, kParams, sp);
  SpinorField<double> b(u->geom_ptr(), kParams.l5, Subset::Full),
      x(u->geom_ptr(), kParams.l5, Subset::Full);
  b.gaussian(122);
  auto res = solver.solve(x, b);
  ASSERT_TRUE(res.converged) << res.summary();
  EXPECT_LT(full_residual(solver.op(), x, b), 1e-8);
}

TEST(DwfSolver, DoubleSolveMatchesMixed) {
  auto u = make_gauge(123);
  SolverParams sp;
  sp.tol = 1e-10;
  DwfSolver solver(u, kParams, sp);
  SpinorField<double> b(u->geom_ptr(), kParams.l5, Subset::Full),
      xd(u->geom_ptr(), kParams.l5, Subset::Full),
      xm(u->geom_ptr(), kParams.l5, Subset::Full);
  b.gaussian(124);
  auto rd = solver.solve_double(xd, b);
  auto rm = solver.solve(xm, b);
  ASSERT_TRUE(rd.converged);
  ASSERT_TRUE(rm.converged);
  blas::axpy(-1.0, xd, xm);
  EXPECT_LT(std::sqrt(blas::norm2(xm) / blas::norm2(xd)), 1e-6);
}

TEST(DwfSolver, PointSourceSolve) {
  // A delta-function source (the building block of propagators) must give
  // a solution whose residual is small and which is nonzero away from the
  // source (the quark propagates).
  auto u = make_gauge(125);
  SolverParams sp;
  sp.tol = 1e-8;
  DwfSolver solver(u, kParams, sp);
  const auto g = u->geom_ptr();
  SpinorField<double> b(g, kParams.l5, Subset::Full),
      x(g, kParams.l5, Subset::Full);
  b.zero();
  // Unit source at origin, spin 0, color 0, s5 = 0.
  Spinor<double> src;
  src[0][0] = {1.0, 0.0};
  b.store(0, g->index({0, 0, 0, 0}), src);

  auto res = solver.solve(x, b);
  ASSERT_TRUE(res.converged) << res.summary();
  EXPECT_LT(full_residual(solver.op(), x, b), 1e-6);
  // Solution spreads beyond the source site.
  const auto far = x.load(kParams.l5 - 1, g->index({2, 2, 2, 2}));
  double far_norm = 0;
  for (int s = 0; s < kNs; ++s) far_norm += norm2(far[s]);
  EXPECT_GT(far_norm, 0.0);
}

TEST(DwfSolver, TighterToleranceCostsMoreIterations) {
  auto u = make_gauge(126);
  SolverParams loose;
  loose.tol = 1e-6;
  SolverParams tight;
  tight.tol = 1e-12;
  DwfSolver s1(u, kParams, loose), s2(u, kParams, tight);
  SpinorField<double> b(u->geom_ptr(), kParams.l5, Subset::Full),
      x1(u->geom_ptr(), kParams.l5, Subset::Full),
      x2(u->geom_ptr(), kParams.l5, Subset::Full);
  b.gaussian(127);
  auto r1 = s1.solve(x1, b);
  auto r2 = s2.solve(x2, b);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r1.iterations, r2.iterations);
}

TEST(DwfSolver, HeavierQuarkConvergesFaster) {
  // Condition number grows as the quark mass drops: the physics reason the
  // paper's solves are expensive.
  auto u = make_gauge(128);
  MobiusParams heavy = kParams;
  heavy.mf = 0.5;
  MobiusParams light = kParams;
  light.mf = 0.01;
  SolverParams sp;
  sp.tol = 1e-8;
  DwfSolver sh(u, heavy, sp), sl(u, light, sp);
  SpinorField<double> b(u->geom_ptr(), kParams.l5, Subset::Full),
      x(u->geom_ptr(), kParams.l5, Subset::Full);
  b.gaussian(129);
  auto rh = sh.solve(x, b);
  x.zero();
  auto rl = sl.solve(x, b);
  ASSERT_TRUE(rh.converged);
  ASSERT_TRUE(rl.converged);
  EXPECT_LT(rh.iterations, rl.iterations);
}

TEST(DwfSolver, WorksOnQuenchedEnsembleConfig) {
  // The full pipeline on a real Monte Carlo configuration (not just weak
  // field): heatbath-generated gauge, mixed-precision solve.
  auto u = std::make_shared<GaugeField<double>>(
      quenched_config(geom44(), 6.0, 10, 130));
  SolverParams sp;
  sp.tol = 1e-8;
  sp.max_iter = 20000;
  DwfSolver solver(u, kParams, sp);
  SpinorField<double> b(u->geom_ptr(), kParams.l5, Subset::Full),
      x(u->geom_ptr(), kParams.l5, Subset::Full);
  b.gaussian(131);
  auto res = solver.solve(x, b);
  ASSERT_TRUE(res.converged) << res.summary();
  EXPECT_LT(full_residual(solver.op(), x, b), 1e-6);
}

}  // namespace
}  // namespace femto

namespace femto {
namespace {

TEST(DwfSolver, AutotuneThenSolve) {
  auto g = std::make_shared<Geometry>(4, 4, 4, 4);
  auto ug = std::make_shared<GaugeField<double>>(g);
  weak_gauge(*ug, 131, 0.2);
  SolverParams sp;
  sp.tol = 1e-8;
  DwfSolver solver(ug, MobiusParams{4, -1.8, 1.5, 0.5, 0.2}, sp);
  solver.autotune();  // picks cached launch grains for both precisions
  SpinorField<double> b(g, 4, Subset::Full), x(g, 4, Subset::Full);
  b.gaussian(132);
  const auto res = solver.solve(x, b);
  EXPECT_TRUE(res.converged) << res.summary();
}

}  // namespace
}  // namespace femto

namespace femto {
namespace {

TEST(DwfSolver, CompressedInnerLinksReachSameAnswer) {
  // The accuracy contract of DESIGN.md §16: the sloppy operator may read
  // any storage tier — recon12 exactly, recon8/fixed12 approximately,
  // i.e. exactly where half-precision spinors already live — because the
  // reliable updates recompute the TRUE residual on full-18 double links.
  // Mixed CG must therefore reach the same double residual, and the
  // answer must match the full18 solve within reliable-update tolerance.
  auto u = make_gauge(133);
  SolverParams sp;
  sp.tol = 1e-10;
  DwfSolver ref_solver(u, kParams, sp);
  SpinorField<double> b(u->geom_ptr(), kParams.l5, Subset::Full),
      x_ref(u->geom_ptr(), kParams.l5, Subset::Full),
      x(u->geom_ptr(), kParams.l5, Subset::Full);
  b.gaussian(134);
  const auto r_ref = ref_solver.solve(x_ref, b);
  ASSERT_TRUE(r_ref.converged) << r_ref.summary();

  for (GaugeFormat fmt : {GaugeFormat::kRecon12, GaugeFormat::kRecon8,
                          GaugeFormat::kFixed12}) {
    SolverParams spc = sp;
    spc.gauge_format = fmt;
    DwfSolver solver(u, kParams, spc);
    x.zero();
    const auto res = solver.solve(x, b);
    ASSERT_TRUE(res.converged)
        << gauge_format_name(fmt) << ": " << res.summary();
    // Same double residual: the convergence test is the full18 one.
    EXPECT_LT(full_residual(solver.op(), x, b), 1e-8)
        << gauge_format_name(fmt);
    // Same answer, to the tolerance the reliable updates guarantee.
    SpinorField<double> d(u->geom_ptr(), kParams.l5, Subset::Full);
    blas::copy(d, x);
    blas::axpy(-1.0, x_ref, d);
    EXPECT_LT(std::sqrt(blas::norm2(d) / blas::norm2(x_ref)), 1e-6)
        << gauge_format_name(fmt);
  }
}

}  // namespace
}  // namespace femto
