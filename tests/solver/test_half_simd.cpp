// Cross-width consistency for the 16-bit fixed-point storage.
//
// The encoder's guarantee: the max-abs scan uses only exact operations
// (max, negate), so the per-block scale — and therefore the quantised
// int16 contents — are bitwise identical at every vector width.  Only the
// norm reductions returned by the fused round-trip kernels may differ
// across widths, and then only to rounding.

#include "solver/half.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "lattice/blas.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

constexpr int kL5 = 3;

SpinorField<float> make_field(std::uint64_t seed) {
  SpinorField<float> f(geom(), kL5, Subset::Odd);
  f.gaussian(seed);
  return f;
}

TEST(HalfSimd, QuantisedContentsBitwiseWidthIndependent) {
  auto f1 = make_field(5);
  auto fw = f1;
  HalfSpinorField h1(geom(), kL5, Subset::Odd);
  HalfSpinorField hw(geom(), kL5, Subset::Odd);

  // Drive the block encoder at W = 1 and at the native width through the
  // fused round-trip; the decoded fields must match bit for bit.
  const double n1 = h1.roundtrip_norm2<1>(f1);
  const double nw = hw.roundtrip_norm2<simd::kWidth<float>>(fw);
  for (std::int64_t k = 0; k < f1.reals(); ++k)
    ASSERT_EQ(f1.data()[k], fw.data()[k]) << "k=" << k;
  EXPECT_NEAR(nw / n1, 1.0, 1e-12);
}

TEST(HalfSimd, FusedUpdatesAgreeAcrossWidths) {
  const auto x = make_field(7);
  auto y1 = make_field(9);
  auto yw = y1;
  HalfSpinorField h1(geom(), kL5, Subset::Odd);
  HalfSpinorField hw(geom(), kL5, Subset::Odd);

  h1.axpy_roundtrip<1>(0.25, x, y1);
  hw.axpy_roundtrip<simd::kWidth<float>>(0.25, x, yw);
  // axpy is elementwise (bitwise width-independent) and the round-trip
  // quantisation is bitwise width-independent, so the composition is too.
  for (std::int64_t k = 0; k < y1.reals(); ++k)
    ASSERT_EQ(y1.data()[k], yw.data()[k]) << "axpy k=" << k;

  h1.xpay_roundtrip<1>(x, -0.5, y1);
  hw.xpay_roundtrip<simd::kWidth<float>>(x, -0.5, yw);
  for (std::int64_t k = 0; k < y1.reals(); ++k)
    ASSERT_EQ(y1.data()[k], yw.data()[k]) << "xpay k=" << k;
}

TEST(HalfSimd, RoundTripMatchesEncodeDecode) {
  // The fused one-pass round-trip must produce exactly what the two-pass
  // whole-field encode(); decode() produces.
  auto f = make_field(11);
  auto g2 = f;
  HalfSpinorField h(geom(), kL5, Subset::Odd);
  HalfSpinorField h2(geom(), kL5, Subset::Odd);

  h.roundtrip_norm2(f);
  h2.encode(g2);
  h2.decode(g2);
  for (std::int64_t k = 0; k < f.reals(); ++k)
    ASSERT_EQ(f.data()[k], g2.data()[k]) << "k=" << k;
}

}  // namespace
}  // namespace femto
