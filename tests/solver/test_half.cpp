#include "solver/half.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lattice/blas.hpp"
#include "lattice/flops.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

TEST(HalfStorage, RoundTripErrorBounded) {
  auto g = geom44();
  SpinorField<float> f(g, 4, Subset::Odd), back(g, 4, Subset::Odd);
  f.gaussian(101);
  HalfSpinorField h(g, 4, Subset::Odd);
  h.encode(f);
  h.decode(back);
  // Fixed point with per-block max-norm scale: error per component is at
  // most scale / 2 / 32767.
  for (std::int64_t b = 0; b < h.blocks(); ++b) {
    float amax = 0;
    for (int k = 0; k < kSpinorReals; ++k)
      amax = std::max(amax, std::fabs(f.data()[b * kSpinorReals + k]));
    for (int k = 0; k < kSpinorReals; ++k) {
      const float err = std::fabs(back.data()[b * kSpinorReals + k] -
                                  f.data()[b * kSpinorReals + k]);
      EXPECT_LE(err, amax / 32767.0f * 0.51f);
    }
  }
}

TEST(HalfStorage, MaxComponentIsExact) {
  auto g = geom44();
  SpinorField<float> f(g, 1, Subset::Even), back(g, 1, Subset::Even);
  f.gaussian(102);
  HalfSpinorField h(g, 1, Subset::Even);
  h.encode(f);
  h.decode(back);
  // The per-block max maps to +-32767 exactly, so it round-trips to within
  // one part in 32767 of itself.
  for (std::int64_t b = 0; b < h.blocks(); ++b) {
    int arg = 0;
    float amax = 0;
    for (int k = 0; k < kSpinorReals; ++k) {
      const float a = std::fabs(f.data()[b * kSpinorReals + k]);
      if (a > amax) {
        amax = a;
        arg = k;
      }
    }
    EXPECT_NEAR(back.data()[b * kSpinorReals + arg],
                f.data()[b * kSpinorReals + arg], amax * 1e-4f);
  }
}

TEST(HalfStorage, ZeroBlockStaysZero) {
  auto g = geom44();
  SpinorField<float> f(g, 1, Subset::Even), back(g, 1, Subset::Even);
  f.zero();
  HalfSpinorField h(g, 1, Subset::Even);
  h.encode(f);
  h.decode(back);
  for (std::int64_t k = 0; k < f.reals(); ++k)
    EXPECT_EQ(back.data()[k], 0.0f);
}

TEST(HalfStorage, ScaleAdaptsPerBlock) {
  // A field with wildly different magnitudes per site must preserve
  // RELATIVE precision per site (per-site scales, not a global scale).
  auto g = geom44();
  SpinorField<float> f(g, 1, Subset::Even), back(g, 1, Subset::Even);
  for (std::int64_t b = 0; b < f.sites(); ++b) {
    const float mag = std::pow(10.0f, static_cast<float>(b % 9) - 4.0f);
    for (int k = 0; k < kSpinorReals; ++k)
      f.data()[b * kSpinorReals + k] =
          mag * (0.5f + 0.4f * static_cast<float>(k) / kSpinorReals);
  }
  HalfSpinorField h(g, 1, Subset::Even);
  h.encode(f);
  h.decode(back);
  for (std::int64_t k = 0; k < f.reals(); ++k) {
    const float rel =
        std::fabs(back.data()[k] - f.data()[k]) / std::fabs(f.data()[k]);
    EXPECT_LT(rel, 1e-4f);
  }
}

TEST(HalfStorage, BytesAreHalfOfFloat) {
  auto g = geom44();
  SpinorField<float> f(g, 8, Subset::Odd);
  HalfSpinorField h(g, 8, Subset::Odd);
  // 2 bytes per component + 4-byte norm per 24-component block.
  EXPECT_LT(h.bytes(), f.bytes() * 6 / 10);
}

// --- fused round-trips ------------------------------------------------------

TEST(HalfStorage, RoundtripNorm2MatchesEncodeDecode) {
  auto g = geom44();
  SpinorField<float> f(g, 4, Subset::Odd), want(g, 4, Subset::Odd);
  f.gaussian(103);
  want = f;
  HalfSpinorField h(g, 4, Subset::Odd);
  h.encode(want);
  h.decode(want);
  double want_n2 = 0;
  for (std::int64_t k = 0; k < want.reals(); ++k)
    want_n2 += static_cast<double>(want.data()[k]) *
               static_cast<double>(want.data()[k]);

  HalfSpinorField h2(g, 4, Subset::Odd);
  const double got_n2 = h2.roundtrip_norm2(f);
  for (std::int64_t k = 0; k < f.reals(); ++k)
    ASSERT_EQ(f.data()[k], want.data()[k]) << "k=" << k;
  EXPECT_NEAR(got_n2, want_n2, 1e-10 * want_n2);
}

TEST(HalfStorage, AxpyRoundtripMatchesUnfusedSequence) {
  auto g = geom44();
  SpinorField<float> x(g, 2, Subset::Odd), y1(g, 2, Subset::Odd);
  x.gaussian(104);
  y1.gaussian(105);
  SpinorField<float> y2 = y1;

  // Seed sequence: axpy then a full encode/decode quantise.
  const float a = 0.375f;
  for (std::int64_t k = 0; k < y1.reals(); ++k)
    y1.data()[k] += a * x.data()[k];
  HalfSpinorField h1(g, 2, Subset::Odd);
  h1.encode(y1);
  h1.decode(y1);

  HalfSpinorField h2(g, 2, Subset::Odd);
  h2.axpy_roundtrip(0.375, x, y2);
  for (std::int64_t k = 0; k < y1.reals(); ++k)
    ASSERT_EQ(y2.data()[k], y1.data()[k]) << "k=" << k;

  // And the norm-fused variant returns the quantised norm.
  SpinorField<float> y3(g, 2, Subset::Odd);
  y3.gaussian(105);
  HalfSpinorField h3(g, 2, Subset::Odd);
  const double n2 = h3.axpy_roundtrip_norm2(0.375, x, y3);
  double want = 0;
  for (std::int64_t k = 0; k < y3.reals(); ++k)
    want += static_cast<double>(y3.data()[k]) *
            static_cast<double>(y3.data()[k]);
  EXPECT_NEAR(n2, want, 1e-10 * want);
}

TEST(HalfStorage, XpayRoundtripMatchesUnfusedSequence) {
  auto g = geom44();
  SpinorField<float> x(g, 2, Subset::Odd), y1(g, 2, Subset::Odd);
  x.gaussian(106);
  y1.gaussian(107);
  SpinorField<float> y2 = y1;

  const float b = -0.625f;
  for (std::int64_t k = 0; k < y1.reals(); ++k)
    y1.data()[k] = x.data()[k] + b * y1.data()[k];
  HalfSpinorField h1(g, 2, Subset::Odd);
  h1.encode(y1);
  h1.decode(y1);

  HalfSpinorField h2(g, 2, Subset::Odd);
  h2.xpay_roundtrip(x, -0.625, y2);
  for (std::int64_t k = 0; k < y1.reals(); ++k)
    ASSERT_EQ(y2.data()[k], y1.data()[k]) << "k=" << k;
}

TEST(HalfStorage, FusedRoundtripChargesFewerBytes) {
  auto g = geom44();
  SpinorField<float> x(g, 4, Subset::Odd), y(g, 4, Subset::Odd);
  x.gaussian(108);
  y.gaussian(109);
  HalfSpinorField h(g, 4, Subset::Odd);
  flops::reset();
  // Seed: 3-pass axpy + 4-sweep quantise.
  blas::axpy<float>(0.5, x, y);
  h.encode(y);
  h.decode(y);
  const std::int64_t unfused = flops::bytes();
  flops::reset();
  h.axpy_roundtrip(0.5, x, y);
  const std::int64_t fused = flops::bytes();
  EXPECT_LT(fused, unfused);
}

}  // namespace
}  // namespace femto
