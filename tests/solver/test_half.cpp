#include "solver/half.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

TEST(HalfStorage, RoundTripErrorBounded) {
  auto g = geom44();
  SpinorField<float> f(g, 4, Subset::Odd), back(g, 4, Subset::Odd);
  f.gaussian(101);
  HalfSpinorField h(g, 4, Subset::Odd);
  h.encode(f);
  h.decode(back);
  // Fixed point with per-block max-norm scale: error per component is at
  // most scale / 2 / 32767.
  for (std::int64_t b = 0; b < h.blocks(); ++b) {
    float amax = 0;
    for (int k = 0; k < kSpinorReals; ++k)
      amax = std::max(amax, std::fabs(f.data()[b * kSpinorReals + k]));
    for (int k = 0; k < kSpinorReals; ++k) {
      const float err = std::fabs(back.data()[b * kSpinorReals + k] -
                                  f.data()[b * kSpinorReals + k]);
      EXPECT_LE(err, amax / 32767.0f * 0.51f);
    }
  }
}

TEST(HalfStorage, MaxComponentIsExact) {
  auto g = geom44();
  SpinorField<float> f(g, 1, Subset::Even), back(g, 1, Subset::Even);
  f.gaussian(102);
  HalfSpinorField h(g, 1, Subset::Even);
  h.encode(f);
  h.decode(back);
  // The per-block max maps to +-32767 exactly, so it round-trips to within
  // one part in 32767 of itself.
  for (std::int64_t b = 0; b < h.blocks(); ++b) {
    int arg = 0;
    float amax = 0;
    for (int k = 0; k < kSpinorReals; ++k) {
      const float a = std::fabs(f.data()[b * kSpinorReals + k]);
      if (a > amax) {
        amax = a;
        arg = k;
      }
    }
    EXPECT_NEAR(back.data()[b * kSpinorReals + arg],
                f.data()[b * kSpinorReals + arg], amax * 1e-4f);
  }
}

TEST(HalfStorage, ZeroBlockStaysZero) {
  auto g = geom44();
  SpinorField<float> f(g, 1, Subset::Even), back(g, 1, Subset::Even);
  f.zero();
  HalfSpinorField h(g, 1, Subset::Even);
  h.encode(f);
  h.decode(back);
  for (std::int64_t k = 0; k < f.reals(); ++k)
    EXPECT_EQ(back.data()[k], 0.0f);
}

TEST(HalfStorage, ScaleAdaptsPerBlock) {
  // A field with wildly different magnitudes per site must preserve
  // RELATIVE precision per site (per-site scales, not a global scale).
  auto g = geom44();
  SpinorField<float> f(g, 1, Subset::Even), back(g, 1, Subset::Even);
  for (std::int64_t b = 0; b < f.sites(); ++b) {
    const float mag = std::pow(10.0f, static_cast<float>(b % 9) - 4.0f);
    for (int k = 0; k < kSpinorReals; ++k)
      f.data()[b * kSpinorReals + k] =
          mag * (0.5f + 0.4f * static_cast<float>(k) / kSpinorReals);
  }
  HalfSpinorField h(g, 1, Subset::Even);
  h.encode(f);
  h.decode(back);
  for (std::int64_t k = 0; k < f.reals(); ++k) {
    const float rel =
        std::fabs(back.data()[k] - f.data()[k]) / std::fabs(f.data()[k]);
    EXPECT_LT(rel, 1e-4f);
  }
}

TEST(HalfStorage, BytesAreHalfOfFloat) {
  auto g = geom44();
  SpinorField<float> f(g, 8, Subset::Odd);
  HalfSpinorField h(g, 8, Subset::Odd);
  // 2 bytes per component + 4-byte norm per 24-component block.
  EXPECT_LT(h.bytes(), f.bytes() * 6 / 10);
}

}  // namespace
}  // namespace femto
