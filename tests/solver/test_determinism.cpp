// Cross-thread-count golden determinism (DESIGN.md §13): the same solve
// must produce the same bits however many pool workers run it.  The
// worker count is fixed at global-pool construction, so each count needs
// a fresh process: this test re-execs the golden_probe binary (see
// golden_probe.cpp) under FEMTO_THREADS=1/2/7 and under the inherited
// default, and requires the four fingerprint lines to match verbatim --
// solution checksum, iteration count, and convergence flag.
//
// Everything on the solve path is covered at once: counter-based RNG
// fills, the dslash stencils, the fused BLAS reductions (thread-count-
// independent chunk decomposition), half-precision compression, and the
// reliable-update control flow that consumes the reduced residuals.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#ifndef GOLDEN_PROBE_PATH
#error "build must define GOLDEN_PROBE_PATH"
#endif

namespace {

// Runs `env_prefix golden_probe`, capturing stdout; "" on failure.
std::string run_probe(const std::string& env_prefix) {
  const std::string cmd = env_prefix + " " + GOLDEN_PROBE_PATH + " 2>&1";
  FILE* p = popen(cmd.c_str(), "r");
  if (p == nullptr) return "";
  std::string out;
  char buf[256];
  while (fgets(buf, sizeof buf, p) != nullptr) out += buf;
  const int rc = pclose(p);
  if (rc != 0) return "";
  return out;
}

TEST(GoldenDeterminism, SolveBitsIdenticalAcrossThreadCounts) {
  const std::string ref = run_probe("FEMTO_THREADS=1");
  ASSERT_NE(ref.find("fnv="), std::string::npos) << "probe output: " << ref;
  ASSERT_NE(ref.find("converged=1"), std::string::npos)
      << "probe output: " << ref;

  EXPECT_EQ(run_probe("FEMTO_THREADS=2"), ref);
  EXPECT_EQ(run_probe("FEMTO_THREADS=7"), ref);
  // Inherited environment: hardware-concurrency default (or whatever
  // FEMTO_THREADS the invoking shell exported).
  EXPECT_EQ(run_probe("env"), ref);
}

}  // namespace
