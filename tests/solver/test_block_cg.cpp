// Block solver contract: solving B right-hand sides together must give,
// for every RHS, the SAME iterates the single-RHS solver produces — same
// iteration count, same residual history, bitwise-identical solution.
// Batching is a bandwidth optimisation, never a numerics change; this is
// what makes the solve service deterministic under any queue timing.

#include "solver/block_cg.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "dirac/mobius.hpp"
#include "lattice/gauge.hpp"
#include "solver/cg.hpp"
#include "solver/dwf_solve.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

const MobiusParams kParams{6, -1.8, 1.5, 0.5, 0.1};

std::shared_ptr<const GaugeField<double>> make_gauge(std::uint64_t seed) {
  auto u = std::make_shared<GaugeField<double>>(geom44());
  weak_gauge(*u, seed, 0.25);
  return u;
}

TEST(BlockCg, PerRhsMatchesSingleRhsCgBitwise) {
  auto u = make_gauge(211);
  MobiusOperator<double> op(u, kParams);

  const std::size_t nrhs = 3;
  std::vector<SpinorField<double>> b, xs, xb;
  for (std::size_t r = 0; r < nrhs; ++r) {
    b.emplace_back(u->geom_ptr(), kParams.l5, Subset::Odd);
    xs.emplace_back(u->geom_ptr(), kParams.l5, Subset::Odd);
    xb.emplace_back(u->geom_ptr(), kParams.l5, Subset::Odd);
    // Different scales per RHS so iteration counts can differ and the
    // shrinking active set is exercised.
    b.back().gaussian(300 + static_cast<std::uint64_t>(r));
    if (r == 1) blas::scal(1e-3, b.back());
  }

  ApplyFn<double> a1 = [&](SpinorField<double>& out,
                           const SpinorField<double>& in) {
    op.apply_normal(out, in);
  };
  MultiApplyFn<double> am =
      [&](std::span<SpinorField<double>* const> out,
          std::span<const SpinorField<double>* const> in) {
        op.apply_normal_multi(out, in);
      };

  std::vector<SolveResult> single;
  for (std::size_t r = 0; r < nrhs; ++r)
    single.push_back(cg<double>(a1, xs[r], b[r], 1e-8, 400));

  std::vector<SpinorField<double>*> xp;
  std::vector<const SpinorField<double>*> bp;
  for (std::size_t r = 0; r < nrhs; ++r) {
    xp.push_back(&xb[r]);
    bp.push_back(&b[r]);
  }
  std::vector<SolveResult> block = block_cg<double>(am, xp, bp, 1e-8, 400);

  ASSERT_EQ(block.size(), nrhs);
  for (std::size_t r = 0; r < nrhs; ++r) {
    EXPECT_TRUE(block[r].converged) << "r=" << r;
    EXPECT_EQ(block[r].iterations, single[r].iterations) << "r=" << r;
    EXPECT_EQ(block[r].final_rel_residual, single[r].final_rel_residual)
        << "r=" << r;
    for (std::int64_t k = 0; k < b[r].reals(); ++k)
      ASSERT_EQ(xb[r].data()[k], xs[r].data()[k]) << "r=" << r << " k=" << k;
  }
}

TEST(BlockCg, IndependentOfBatchComposition) {
  // Solving b0 alone and solving it inside a batch of three must give the
  // same trajectory: batch-mates must not perturb each other.
  auto u = make_gauge(212);
  MobiusOperator<double> op(u, kParams);
  MultiApplyFn<double> am =
      [&](std::span<SpinorField<double>* const> out,
          std::span<const SpinorField<double>* const> in) {
        op.apply_normal_multi(out, in);
      };

  std::vector<SpinorField<double>> b, x3, x1;
  for (std::size_t r = 0; r < 3; ++r) {
    b.emplace_back(u->geom_ptr(), kParams.l5, Subset::Odd);
    x3.emplace_back(u->geom_ptr(), kParams.l5, Subset::Odd);
    b.back().gaussian(310 + static_cast<std::uint64_t>(r));
  }
  x1.emplace_back(u->geom_ptr(), kParams.l5, Subset::Odd);

  std::vector<SpinorField<double>*> xp3;
  std::vector<const SpinorField<double>*> bp3;
  for (std::size_t r = 0; r < 3; ++r) {
    xp3.push_back(&x3[r]);
    bp3.push_back(&b[r]);
  }
  auto res3 = block_cg<double>(am, xp3, bp3, 1e-8, 400);

  SpinorField<double>* xp1[] = {&x1[0]};
  const SpinorField<double>* bp1[] = {&b[0]};
  auto res1 = block_cg<double>(am, xp1, bp1, 1e-8, 400);

  EXPECT_EQ(res3[0].iterations, res1[0].iterations);
  EXPECT_EQ(res3[0].final_rel_residual, res1[0].final_rel_residual);
  for (std::int64_t k = 0; k < b[0].reals(); ++k)
    ASSERT_EQ(x3[0].data()[k], x1[0].data()[k]) << "k=" << k;
}

TEST(BlockCg, WarmStartMatchesSingle) {
  auto u = make_gauge(213);
  MobiusOperator<double> op(u, kParams);
  ApplyFn<double> a1 = [&](SpinorField<double>& out,
                           const SpinorField<double>& in) {
    op.apply_normal(out, in);
  };
  MultiApplyFn<double> am =
      [&](std::span<SpinorField<double>* const> out,
          std::span<const SpinorField<double>* const> in) {
        op.apply_normal_multi(out, in);
      };
  SpinorField<double> b(u->geom_ptr(), kParams.l5, Subset::Odd),
      xs(u->geom_ptr(), kParams.l5, Subset::Odd),
      xb(u->geom_ptr(), kParams.l5, Subset::Odd);
  b.gaussian(321);
  xs.gaussian(322);  // warm start
  blas::copy(xb, xs);

  auto rs = cg<double>(a1, xs, b, 1e-8, 400);
  SpinorField<double>* xp[] = {&xb};
  const SpinorField<double>* bp[] = {&b};
  auto rb = block_cg<double>(am, xp, bp, 1e-8, 400);
  EXPECT_EQ(rb[0].iterations, rs.iterations);
  for (std::int64_t k = 0; k < b.reals(); ++k)
    ASSERT_EQ(xb.data()[k], xs.data()[k]) << "k=" << k;
}

TEST(BlockMixedCg, SolveMultiMatchesSolveExactly) {
  // The full pipeline: DwfSolver::solve_multi per-RHS must reproduce
  // DwfSolver::solve bitwise — reliable updates, half-precision round
  // trips and all.
  auto u = make_gauge(214);
  SolverParams sp;
  sp.tol = 1e-10;
  DwfSolver solver(u, kParams, sp);

  const std::size_t nrhs = 3;
  std::vector<SpinorField<double>> b, xs, xb;
  for (std::size_t r = 0; r < nrhs; ++r) {
    b.emplace_back(u->geom_ptr(), kParams.l5, Subset::Full);
    xs.emplace_back(u->geom_ptr(), kParams.l5, Subset::Full);
    xb.emplace_back(u->geom_ptr(), kParams.l5, Subset::Full);
    b.back().gaussian(330 + static_cast<std::uint64_t>(r));
  }

  std::vector<SolveResult> single;
  for (std::size_t r = 0; r < nrhs; ++r)
    single.push_back(solver.solve(xs[r], b[r]));

  std::vector<SpinorField<double>*> xp;
  std::vector<const SpinorField<double>*> bp;
  for (std::size_t r = 0; r < nrhs; ++r) {
    xp.push_back(&xb[r]);
    bp.push_back(&b[r]);
  }
  std::vector<SolveResult> block = solver.solve_multi(xp, bp);

  for (std::size_t r = 0; r < nrhs; ++r) {
    ASSERT_TRUE(block[r].converged) << "r=" << r;
    EXPECT_EQ(block[r].iterations, single[r].iterations) << "r=" << r;
    EXPECT_EQ(block[r].reliable_updates, single[r].reliable_updates)
        << "r=" << r;
    EXPECT_EQ(block[r].final_rel_residual, single[r].final_rel_residual)
        << "r=" << r;
    for (std::int64_t k = 0; k < b[r].reals(); ++k)
      ASSERT_EQ(xb[r].data()[k], xs[r].data()[k]) << "r=" << r << " k=" << k;
  }
}

TEST(BlockMixedCg, SolveMultiDoubleMatchesSolveDouble) {
  auto u = make_gauge(215);
  SolverParams sp;
  sp.tol = 1e-10;
  DwfSolver solver(u, kParams, sp);

  SpinorField<double> b(u->geom_ptr(), kParams.l5, Subset::Full),
      xs(u->geom_ptr(), kParams.l5, Subset::Full),
      xb(u->geom_ptr(), kParams.l5, Subset::Full);
  b.gaussian(340);

  auto rs = solver.solve_double(xs, b);
  SpinorField<double>* xp[] = {&xb};
  const SpinorField<double>* bp[] = {&b};
  auto rb = solver.solve_multi_double(xp, bp);
  ASSERT_TRUE(rb[0].converged);
  EXPECT_EQ(rb[0].iterations, rs.iterations);
  for (std::int64_t k = 0; k < b.reals(); ++k)
    ASSERT_EQ(xb.data()[k], xs.data()[k]) << "k=" << k;
}

}  // namespace
}  // namespace femto
