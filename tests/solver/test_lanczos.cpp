#include "solver/lanczos.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dirac/mobius.hpp"
#include "lattice/gauge.hpp"

namespace femto {
namespace {

TEST(SymmetricEigen, DiagonalMatrix) {
  std::vector<double> a{3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0};
  std::vector<double> evals, evecs;
  symmetric_eigen(a, 3, &evals, &evecs);
  EXPECT_NEAR(evals[0], 1.0, 1e-12);
  EXPECT_NEAR(evals[1], 2.0, 1e-12);
  EXPECT_NEAR(evals[2], 3.0, 1e-12);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] -> eigenvalues 1 and 3, vectors (1,-1) and (1,1)/sqrt2.
  std::vector<double> a{2.0, 1.0, 1.0, 2.0};
  std::vector<double> evals, evecs;
  symmetric_eigen(a, 2, &evals, &evecs);
  EXPECT_NEAR(evals[0], 1.0, 1e-12);
  EXPECT_NEAR(evals[1], 3.0, 1e-12);
  EXPECT_NEAR(std::abs(evecs[0 * 2 + 0]), 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(evecs[0 * 2 + 0] * evecs[1 * 2 + 0], -0.5, 1e-10);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  Xoshiro256 rng(81);
  const std::size_t n = 7;
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.gaussian();
      a[i * n + j] = v;
      a[j * n + i] = v;
    }
  std::vector<double> evals, evecs;
  symmetric_eigen(a, n, &evals, &evecs);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0;
      for (std::size_t k = 0; k < n; ++k)
        s += evecs[i * n + k] * evals[k] * evecs[j * n + k];
      EXPECT_NEAR(s, a[i * n + j], 1e-9);
    }
}

// --- synthetic operator with a KNOWN spectrum: a per-component diagonal
// operator.  Eight tiny isolated modes below a [1, 2] bulk — the
// structure deflation exists for, with exact expected answers.
struct SyntheticOp {
  std::shared_ptr<const Geometry> g =
      std::make_shared<Geometry>(4, 4, 4, 4);
  std::vector<double> lambda;

  SyntheticOp() {
    SpinorField<double> proto(g, 1, Subset::Odd);
    const auto n = static_cast<std::size_t>(proto.reals() / 2);
    lambda.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      if (k < 8)
        lambda[k] = 1e-3 * static_cast<double>(k + 1);  // light modes
      else
        lambda[k] = 1.0 + static_cast<double>(k % 997) / 997.0;  // bulk
    }
  }

  ApplyFn<double> fn() const {
    return [this](SpinorField<double>& out, const SpinorField<double>& in) {
      for (std::size_t k = 0; k < lambda.size(); ++k) {
        out.data()[2 * k] = lambda[k] * in.data()[2 * k];
        out.data()[2 * k + 1] = lambda[k] * in.data()[2 * k + 1];
      }
    };
  }

  SpinorField<double> proto() const {
    return SpinorField<double>(g, 1, Subset::Odd);
  }

  static SyntheticOp& get() {
    static SyntheticOp op;
    return op;
  }
};

TEST(Lanczos, FindsKnownLowestEigenvalues) {
  auto& s = SyntheticOp::get();
  LanczosParams lp;
  lp.n_eigen = 6;
  lp.tol = 1e-9;
  lp.max_basis = 200;
  const auto res = lanczos_lowest(s.fn(), s.proto(), lp);
  ASSERT_TRUE(res.converged) << "basis " << res.iterations;
  for (int k = 0; k < 6; ++k)
    EXPECT_NEAR(res.values[static_cast<std::size_t>(k)],
                1e-3 * (k + 1), 1e-8)
        << k;
}

TEST(Lanczos, RitzPairsSatisfyEigenEquation) {
  auto& s = SyntheticOp::get();
  LanczosParams lp;
  lp.n_eigen = 6;
  lp.tol = 1e-9;
  lp.max_basis = 200;
  const auto res = lanczos_lowest(s.fn(), s.proto(), lp);
  ASSERT_TRUE(res.converged);
  auto op = s.fn();
  auto av = s.proto();
  for (std::size_t k = 0; k < res.values.size(); ++k) {
    op(av, res.vectors[k]);
    blas::axpy(-res.values[k], res.vectors[k], av);
    EXPECT_LT(std::sqrt(blas::norm2(av)), 1e-7) << k;
  }
  for (std::size_t k = 1; k < res.values.size(); ++k)
    EXPECT_GE(res.values[k], res.values[k - 1]);
}

TEST(Lanczos, VectorsOrthonormal) {
  auto& s = SyntheticOp::get();
  LanczosParams lp;
  lp.n_eigen = 5;
  lp.max_basis = 200;
  lp.tol = 1e-9;
  const auto res = lanczos_lowest(s.fn(), s.proto(), lp);
  for (std::size_t i = 0; i < res.vectors.size(); ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const auto d = blas::cdot(res.vectors[i], res.vectors[j]);
      EXPECT_NEAR(d.re, i == j ? 1.0 : 0.0, 1e-7) << i << "," << j;
      EXPECT_NEAR(d.im, 0.0, 1e-7);
    }
}

TEST(DeflatedCg, MassiveIterationReductionOnSplitSpectrum) {
  // Deflating the 8 tiny modes drops the effective condition number from
  // ~2e3 to ~2: CG iterations collapse.
  auto& s = SyntheticOp::get();
  LanczosParams lp;
  lp.n_eigen = 8;
  lp.tol = 1e-9;
  lp.max_basis = 200;
  const auto eig = lanczos_lowest(s.fn(), s.proto(), lp);
  ASSERT_TRUE(eig.converged);

  auto b = s.proto();
  auto x0 = s.proto();
  auto x1 = s.proto();
  b.gaussian(1703);
  const auto plain = cg<double>(s.fn(), x0, b, 1e-9, 20000);
  const auto defl =
      deflated_cg(s.fn(), eig.values, eig.vectors, x1, b, 1e-9, 20000);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(defl.converged);
  EXPECT_LT(defl.iterations, plain.iterations / 3);

  blas::axpy(-1.0, x0, x1);
  EXPECT_LT(std::sqrt(blas::norm2(x1) / blas::norm2(x0)), 1e-6);
}

TEST(Lanczos, MobiusNormalOperatorIntegration) {
  // On the real operator the lowest Ritz pairs must be genuine
  // eigenpair approximations (small residual vs the O(1) spectral scale)
  // and positive; full tol-convergence of a dense low-edge cluster is
  // not demanded in a unit test.
  auto g = std::make_shared<Geometry>(4, 4, 4, 4);
  auto u = std::make_shared<GaugeField<double>>(g);
  hot_gauge(*u, 1701);
  MobiusOperator<double> op(u, MobiusParams{4, -1.8, 1.5, 0.5, 0.05});
  ApplyFn<double> normal = [&](SpinorField<double>& out,
                               const SpinorField<double>& in) {
    op.apply_normal(out, in);
  };
  SpinorField<double> proto(g, 4, Subset::Odd);
  LanczosParams lp;
  lp.n_eigen = 3;
  lp.tol = 1e-6;
  lp.max_basis = 300;
  const auto res = lanczos_lowest(normal, proto, lp);
  SpinorField<double> av(g, 4, Subset::Odd);
  for (std::size_t k = 0; k < res.values.size(); ++k) {
    EXPECT_GT(res.values[k], 0.0);
    normal(av, res.vectors[k]);
    blas::axpy(-res.values[k], res.vectors[k], av);
    EXPECT_LT(std::sqrt(blas::norm2(av)), 1e-2) << k;
  }
  // Lowest Ritz value below the Rayleigh quotient of a random vector.
  SpinorField<double> r(g, 4, Subset::Odd), ar(g, 4, Subset::Odd);
  r.gaussian(1702);
  normal(ar, r);
  EXPECT_LT(res.values[0], blas::redot(r, ar) / blas::norm2(r));
}

}  // namespace
}  // namespace femto
