#include "stats/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace femto::stats {
namespace {

TEST(Basic, MeanVarianceKnownValues) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(x), 3.0);
  EXPECT_DOUBLE_EQ(variance(x), 2.5);
  EXPECT_DOUBLE_EQ(stddev(x), std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(std_error(x), std::sqrt(2.5 / 5.0));
}

TEST(Basic, CovarianceOfLinearlyRelated) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + 1.0);
  }
  EXPECT_NEAR(covariance(x, y), 2.0 * variance(x), 1e-9);
  EXPECT_NEAR(covariance(x, x), variance(x), 1e-12);
}

TEST(BootstrapTest, ReproducibleIndices) {
  Bootstrap a(50, 20, 99), b(50, 20, 99);
  for (int r = 0; r < 20; ++r) EXPECT_EQ(a.indices(r), b.indices(r));
  Bootstrap c(50, 20, 100);
  EXPECT_NE(a.indices(0), c.indices(0));
}

TEST(BootstrapTest, IndicesInRange) {
  Bootstrap boot(10, 100, 1);
  for (int b = 0; b < 100; ++b) {
    EXPECT_EQ(boot.indices(b).size(), 10u);
    for (int i : boot.indices(b)) {
      EXPECT_GE(i, 0);
      EXPECT_LT(i, 10);
    }
  }
}

TEST(BootstrapTest, ErrorMatchesStdErrorOfMean) {
  // For the sample mean, the bootstrap error must approximate the
  // classical standard error.
  Xoshiro256 rng(5);
  std::vector<std::vector<double>> data;
  std::vector<double> flat;
  for (int i = 0; i < 400; ++i) {
    const double v = rng.gaussian();
    data.push_back({v});
    flat.push_back(v);
  }
  Bootstrap boot(400, 500, 7);
  auto [center, err] =
      boot.estimate(data, [](const std::vector<double>& m) { return m[0]; });
  EXPECT_NEAR(center, mean(flat), 3.0 * std_error(flat));
  EXPECT_NEAR(err, std_error(flat), 0.25 * std_error(flat));
}

TEST(BootstrapTest, NonlinearEstimator) {
  std::vector<std::vector<double>> data;
  Xoshiro256 rng(6);
  for (int i = 0; i < 200; ++i)
    data.push_back({2.0 + 0.1 * rng.gaussian(), 1.0 + 0.1 * rng.gaussian()});
  Bootstrap boot(200, 300, 8);
  auto [ratio, err] = boot.estimate(
      data, [](const std::vector<double>& m) { return m[0] / m[1]; });
  EXPECT_NEAR(ratio, 2.0, 0.05);
  EXPECT_GT(err, 0.0);
  EXPECT_LT(err, 0.05);
}

TEST(JackknifeTest, LeaveOneOutMeans) {
  std::vector<std::vector<double>> data{{1.0}, {2.0}, {3.0}};
  Jackknife jk(3);
  const auto means = jk.resampled_means(data);
  ASSERT_EQ(means.size(), 3u);
  EXPECT_DOUBLE_EQ(means[0][0], 2.5);  // leave out 1.0
  EXPECT_DOUBLE_EQ(means[1][0], 2.0);
  EXPECT_DOUBLE_EQ(means[2][0], 1.5);
}

TEST(JackknifeTest, ErrorMatchesStdErrorForMean) {
  Xoshiro256 rng(7);
  std::vector<std::vector<double>> data;
  std::vector<double> flat;
  for (int i = 0; i < 300; ++i) {
    const double v = 5.0 + rng.gaussian();
    data.push_back({v});
    flat.push_back(v);
  }
  Jackknife jk(300);
  auto [center, err] =
      jk.estimate(data, [](const std::vector<double>& m) { return m[0]; });
  EXPECT_NEAR(center, mean(flat), 1e-9);
  // For the mean, jackknife error == standard error exactly.
  EXPECT_NEAR(err, std_error(flat), 1e-9);
}

TEST(JackknifeTest, AgreesWithBootstrapOnSmoothEstimator) {
  Xoshiro256 rng(8);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 250; ++i)
    data.push_back({3.0 + 0.2 * rng.gaussian()});
  auto est = [](const std::vector<double>& m) { return m[0] * m[0]; };
  Jackknife jk(250);
  Bootstrap boot(250, 400, 9);
  const auto [jc, je] = jk.estimate(data, est);
  const auto [bc, be] = boot.estimate(data, est);
  EXPECT_NEAR(jc, bc, 3.0 * je);
  EXPECT_NEAR(je, be, 0.3 * je);
}

}  // namespace
}  // namespace femto::stats
