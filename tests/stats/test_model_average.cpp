#include "stats/model_average.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lattice/rng.hpp"

namespace femto::stats {
namespace {

TEST(ModelAverage, SingleWindowEqualsPlainFit) {
  Model line = [](const std::vector<double>& p, double t) {
    return p[0] + p[1] * t;
  };
  std::vector<double> x, y, s;
  Xoshiro256 rng(61);
  for (int t = 0; t < 12; ++t) {
    x.push_back(t);
    y.push_back(2.0 + 0.3 * t + 0.05 * rng.gaussian());
    s.push_back(0.05);
  }
  const auto avg =
      model_average(line, x, y, s, {1.0, 0.0}, {{0, 11}});
  const auto plain = levmar(line, x, y, s, {1.0, 0.0});
  EXPECT_NEAR(avg.value, plain.params[0], 1e-10);
  EXPECT_NEAR(avg.stat_error, plain.errors[0], 1e-10);
  EXPECT_NEAR(avg.model_error, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(avg.windows[0].weight, 1.0);
}

TEST(ModelAverage, DownweightsContaminatedWindows) {
  // Truth: constant 1.27 for t >= 4 but a large un-modelled bump at
  // small t.  Fitting a CONSTANT over windows starting at t_min =
  // 1..6, the AIC weights must concentrate on windows that exclude
  // the contamination, and the average must land near 1.27.
  Model constm = [](const std::vector<double>& p, double) { return p[0]; };
  std::vector<double> x, y, s;
  Xoshiro256 rng(62);
  for (int t = 1; t <= 12; ++t) {
    x.push_back(t);
    const double bump = 0.8 * std::exp(-1.2 * t);  // dies by t ~ 4
    y.push_back(1.27 + bump + 0.004 * rng.gaussian());
    s.push_back(0.004);
  }
  std::vector<FitWindow> windows;
  for (int tmin = 1; tmin <= 6; ++tmin) windows.push_back({tmin, 12});
  const auto avg = model_average(constm, x, y, s, {1.2}, windows);

  EXPECT_NEAR(avg.value, 1.27, 0.01);
  // Early windows (t_min 1, 2) carry negligible weight.
  EXPECT_LT(avg.windows[0].weight, 1e-3);
  EXPECT_LT(avg.windows[1].weight, 0.05);
  // The best window starts after the bump has died.
  EXPECT_GE(avg.best().window.t_min, 3);
}

TEST(ModelAverage, WeightsNormalised) {
  Model constm = [](const std::vector<double>& p, double) { return p[0]; };
  std::vector<double> x, y, s;
  for (int t = 0; t < 10; ++t) {
    x.push_back(t);
    y.push_back(5.0);
    s.push_back(0.1);
  }
  const auto avg = model_average(constm, x, y, s, {4.0},
                                 {{0, 9}, {2, 9}, {4, 9}});
  double sum = 0;
  for (const auto& w : avg.windows) sum += w.weight;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ModelAverage, ModelErrorCapturesWindowSpread) {
  // Data with a slow drift: different windows give different constants,
  // so the across-window (model) error must be nonzero.
  Model constm = [](const std::vector<double>& p, double) { return p[0]; };
  std::vector<double> x, y, s;
  for (int t = 0; t < 12; ++t) {
    x.push_back(t);
    y.push_back(1.0 + 0.02 * t);
    s.push_back(0.02);
  }
  const auto avg = model_average(constm, x, y, s, {1.0},
                                 {{0, 11}, {4, 11}, {8, 11}});
  EXPECT_GT(avg.model_error, 0.0);
  EXPECT_GE(avg.error, avg.stat_error);
}

TEST(ModelAverage, FailedWindowsGetZeroWeight) {
  Model constm = [](const std::vector<double>& p, double) { return p[0]; };
  std::vector<double> x{0, 1, 2, 3}, y{1, 1, 1, 1}, s{0.1, 0.1, 0.1, 0.1};
  // Second window has zero dof (1 point, 1 param) -> excluded.
  const auto avg =
      model_average(constm, x, y, s, {0.5}, {{0, 3}, {3, 3}});
  EXPECT_DOUBLE_EQ(avg.windows[1].weight, 0.0);
  EXPECT_NEAR(avg.windows[0].weight, 1.0, 1e-12);
}

TEST(ModelAverage, ThrowsWhenNothingFits) {
  Model constm = [](const std::vector<double>& p, double) { return p[0]; };
  std::vector<double> x{0, 1}, y{1, 1}, s{0.1, 0.1};
  EXPECT_THROW(model_average(constm, x, y, s, {0.5}, {{5, 9}}),
               std::runtime_error);
  EXPECT_THROW(model_average(constm, x, y, s, {0.5}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace femto::stats
