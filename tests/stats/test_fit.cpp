#include "stats/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lattice/rng.hpp"

namespace femto::stats {
namespace {

TEST(Levmar, RecoversLinearModel) {
  // y = 2x + 1 exactly: the fit must hit machine-accurate parameters.
  Model line = [](const std::vector<double>& p, double x) {
    return p[0] * x + p[1];
  };
  std::vector<double> x, y, s;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + 1.0);
    s.push_back(0.1);
  }
  const auto res = levmar(line, x, y, s, {0.5, 0.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.params[0], 2.0, 1e-6);
  EXPECT_NEAR(res.params[1], 1.0, 1e-6);
  EXPECT_LT(res.chisq, 1e-10);
  EXPECT_EQ(res.dof, 8);
}

TEST(Levmar, RecoversExponentialDecay) {
  Model decay = [](const std::vector<double>& p, double x) {
    return p[0] * std::exp(-p[1] * x);
  };
  std::vector<double> x, y, s;
  for (int i = 0; i < 16; ++i) {
    x.push_back(i);
    y.push_back(3.5 * std::exp(-0.4 * i));
    s.push_back(0.01 * y.back() + 1e-6);
  }
  const auto res = levmar(decay, x, y, s, {1.0, 0.1});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.params[0], 3.5, 1e-4);
  EXPECT_NEAR(res.params[1], 0.4, 1e-5);
}

TEST(Levmar, NoisyFitChisqPerDofNearOne) {
  Model line = [](const std::vector<double>& p, double x) {
    return p[0] * x + p[1];
  };
  Xoshiro256 rng(21);
  std::vector<double> x, y, s;
  for (int i = 0; i < 200; ++i) {
    x.push_back(0.1 * i);
    s.push_back(0.5);
    y.push_back(1.3 * x.back() - 0.7 + 0.5 * rng.gaussian());
  }
  const auto res = levmar(line, x, y, s, {0.0, 0.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.params[0], 1.3, 0.05);
  EXPECT_NEAR(res.chisq_per_dof(), 1.0, 0.3);
  // Errors should be the analytic least-squares errors (order sigma/sqrt N).
  EXPECT_GT(res.errors[0], 0.0);
  EXPECT_LT(res.errors[0], 0.05);
}

TEST(Levmar, ErrorsShrinkWithMoreData) {
  Model constm = [](const std::vector<double>& p, double) { return p[0]; };
  auto fit_n = [&](int n) {
    std::vector<double> x, y, s;
    for (int i = 0; i < n; ++i) {
      x.push_back(i);
      y.push_back(5.0);
      s.push_back(1.0);
    }
    return levmar(constm, x, y, s, {4.0}).errors[0];
  };
  const double e100 = fit_n(100);
  const double e400 = fit_n(400);
  EXPECT_NEAR(e400, e100 / 2.0, 0.05 * e100);  // 1/sqrt(N)
}

TEST(Levmar, InputSizeMismatchThrows) {
  Model m = [](const std::vector<double>& p, double) { return p[0]; };
  EXPECT_THROW(levmar(m, {1, 2}, {1}, {1, 1}, {0.0}),
               std::invalid_argument);
}

TEST(Models, TwoStateCorrelatorLimits) {
  const std::vector<double> p{2.0, 0.5, 0.3, 0.8};
  // At large t the excited state dies away.
  const double t = 20.0;
  EXPECT_NEAR(two_state_correlator(p, t), 2.0 * std::exp(-0.5 * t),
              1e-6 * two_state_correlator(p, t));
  // At t=0: A0 (1 + r).
  EXPECT_DOUBLE_EQ(two_state_correlator(p, 0.0), 2.0 * 1.3);
}

TEST(Models, FhEffectiveCouplingPlateau) {
  const std::vector<double> p{1.271, -0.3, 0.05, 0.5};
  EXPECT_NEAR(fh_effective_coupling(p, 30.0), 1.271, 1e-5);
  // Contamination is largest at small t.
  EXPECT_GT(std::abs(fh_effective_coupling(p, 1.0) - 1.271),
            std::abs(fh_effective_coupling(p, 5.0) - 1.271));
}

TEST(Models, TraditionalRatioApproachesFromBelow) {
  const std::vector<double> p{1.271, -0.3, 0.5};
  EXPECT_LT(traditional_ratio(p, 2.0), traditional_ratio(p, 10.0));
  EXPECT_NEAR(traditional_ratio(p, 40.0), 1.271, 1e-8);
}

TEST(Levmar, FitsFhModelFromItsOwnData) {
  const std::vector<double> truth{1.271, -0.34, 0.08, 0.5};
  std::vector<double> x, y, s;
  for (int t = 2; t <= 12; ++t) {
    x.push_back(t);
    y.push_back(fh_effective_coupling(truth, t));
    s.push_back(0.002);
  }
  const auto res =
      levmar(fh_effective_coupling, x, y, s, {1.2, -0.2, 0.05, 0.4});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.params[0], 1.271, 1e-3);
}

}  // namespace
}  // namespace femto::stats
