#include <gtest/gtest.h>

#include <cmath>

#include "lattice/rng.hpp"
#include "stats/fit.hpp"
#include "stats/stats.hpp"

namespace femto::stats {
namespace {

/// Correlated synthetic samples: y_i = truth_i + common * c_i + own_i,
/// where `common` is a shared fluctuation per sample — exactly the
/// structure correlator timeslices have.
std::vector<std::vector<double>> correlated_data(
    const std::vector<double>& truth, int n_samples, double common_scale,
    double own_scale, std::uint64_t seed) {
  std::vector<std::vector<double>> data;
  for (int s = 0; s < n_samples; ++s) {
    Xoshiro256 rng(seed, static_cast<std::uint64_t>(s), 0xC0F);
    const double common = rng.gaussian();
    std::vector<double> row;
    for (double v : truth)
      row.push_back(v + common_scale * common * v +
                    own_scale * rng.gaussian());
    data.push_back(row);
  }
  return data;
}

TEST(CovarianceOfMean, DiagonalMatchesStdError) {
  Xoshiro256 rng(41);
  std::vector<std::vector<double>> data;
  std::vector<double> flat;
  for (int s = 0; s < 500; ++s) {
    const double v = rng.gaussian();
    data.push_back({v});
    flat.push_back(v);
  }
  const auto cov = covariance_of_mean(data);
  EXPECT_NEAR(std::sqrt(cov[0]), std_error(flat), 1e-12);
}

TEST(CovarianceOfMean, OffDiagonalCapturesSharedFluctuations) {
  const std::vector<double> truth{1.0, 1.0};
  const auto data = correlated_data(truth, 2000, 0.1, 0.001, 42);
  const auto cov = covariance_of_mean(data);
  // Strong positive correlation between the two dimensions.
  const double corr = cov[1] / std::sqrt(cov[0] * cov[3]);
  EXPECT_GT(corr, 0.9);
}

TEST(CovarianceOfMean, ShrinkageScalesOffDiagonalOnly) {
  const auto data =
      correlated_data({1.0, 2.0}, 300, 0.1, 0.01, 43);
  const auto raw = covariance_of_mean(data, 0.0);
  const auto shrunk = covariance_of_mean(data, 0.5);
  EXPECT_DOUBLE_EQ(shrunk[0], raw[0]);
  EXPECT_DOUBLE_EQ(shrunk[3], raw[3]);
  EXPECT_NEAR(shrunk[1], 0.5 * raw[1], 1e-15);
}

TEST(CorrelatedFit, RecoversExponentialFromCorrelatedData) {
  Model decay = [](const std::vector<double>& p, double t) {
    return p[0] * std::exp(-p[1] * t);
  };
  std::vector<double> x, truth;
  for (int t = 1; t <= 8; ++t) {
    x.push_back(t);
    truth.push_back(3.0 * std::exp(-0.35 * t));
  }
  const auto data = correlated_data(truth, 800, 0.05, 1e-4, 44);
  const auto res = levmar_correlated(decay, x, data, {1.0, 0.2}, 0.05);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.params[0], 3.0, 0.1);
  EXPECT_NEAR(res.params[1], 0.35, 0.01);
  EXPECT_GT(res.errors[0], 0.0);
}

TEST(CorrelatedFit, ChisqHonestWhereDiagonalIsNot) {
  // With shared fluctuations of a scale comparable to the independent
  // noise, the diagonal chi^2/dof dips well below 1 (the diagonal sigmas
  // double-count the common mode the fit absorbs), while the correlated
  // chi^2/dof stays of order 1.
  Model constm = [](const std::vector<double>& p, double) { return p[0]; };
  const std::vector<double> truth(6, 2.0);
  std::vector<double> x{0, 1, 2, 3, 4, 5};
  // common shift ~ 0.03*2 = 0.06 absolute, own noise 0.02.
  const auto data = correlated_data(truth, 600, 0.03, 0.02, 45);

  const auto corr = levmar_correlated(constm, x, data, {1.5}, 0.01);
  EXPECT_TRUE(corr.converged);
  // Diagonal fit for comparison.
  std::vector<double> y(6, 0.0), sg(6, 0.0);
  for (const auto& row : data)
    for (int i = 0; i < 6; ++i) y[static_cast<std::size_t>(i)] += row[i];
  for (auto& v : y) v /= static_cast<double>(data.size());
  const auto cov = covariance_of_mean(data);
  for (int i = 0; i < 6; ++i)
    sg[static_cast<std::size_t>(i)] =
        std::sqrt(cov[static_cast<std::size_t>(i) * 6 + i]);
  const auto diag = levmar(constm, x, y, sg, {1.5});

  // Shared fluctuations make the diagonal fit look *too* good.
  EXPECT_LT(diag.chisq_per_dof(), 0.5);
  EXPECT_GT(corr.chisq_per_dof(), 2.0 * diag.chisq_per_dof());
  EXPECT_LT(corr.chisq_per_dof(), 4.0);
}

TEST(CorrelatedFit, ZeroShrinkageSingularCovarianceThrows) {
  // More points than samples: the raw covariance is singular; the fit
  // must say so rather than return garbage.
  Model constm = [](const std::vector<double>& p, double) { return p[0]; };
  const std::vector<double> truth(8, 1.0);
  std::vector<double> x{0, 1, 2, 3, 4, 5, 6, 7};
  const auto data = correlated_data(truth, 5, 0.0, 1e-3, 46);
  EXPECT_THROW(levmar_correlated(constm, x, data, {1.0}, 0.0),
               std::runtime_error);
  // Shrinkage regulates it.
  const auto res = levmar_correlated(constm, x, data, {1.0}, 0.5);
  EXPECT_TRUE(res.converged);
}

TEST(CorrelatedFit, SizeMismatchThrows) {
  Model constm = [](const std::vector<double>& p, double) { return p[0]; };
  EXPECT_THROW(
      levmar_correlated(constm, {0, 1}, {{1.0, 2.0, 3.0}}, {1.0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace femto::stats
