// The Fig. 1 claims, as tests:
//  * the FH analysis at short t recovers gA with ~1% precision,
//  * the traditional analysis needs an order of magnitude more samples to
//    approach the same error (exponentially worse signal-to-noise),
//  * the excited-state contamination is fit and subtracted, not ignored.

#include "core/ga_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace femto::core {
namespace {

GaEnsembleParams params() { return {}; }  // a09m310-like defaults

TEST(GaData, FhNoiseGrowsExponentially) {
  const auto d = generate_fh_dataset(params(), 600, 1);
  GaFitOutcome tmp;
  // Per-t std errors via the analysis helper path: use analyze_fh's
  // outputs.
  const auto out = analyze_fh(d, 2, 10, 50, 2);
  // Error at late time must exceed error at early times by roughly
  // exp(rate * dt).
  const std::size_t nt = d.t_values.size();
  const double early = out.data_err[1];   // t = 2
  const double late = out.data_err[nt - 1];
  EXPECT_GT(late / early, 5.0);
  (void)tmp;
}

TEST(GaData, DatasetsReproducible) {
  const auto a = generate_fh_dataset(params(), 10, 42);
  const auto b = generate_fh_dataset(params(), 10, 42);
  EXPECT_EQ(a.samples, b.samples);
  const auto c = generate_fh_dataset(params(), 10, 43);
  EXPECT_NE(a.samples, c.samples);
}

TEST(GaAnalysis, FhRecoversTruthWithinError) {
  const auto p = params();
  const auto d = generate_fh_dataset(p, 784, 11);
  const auto out = analyze_fh(d, 2, 10, 200, 12);
  EXPECT_TRUE(out.fit.converged);
  EXPECT_NEAR(out.ga, p.ga, 4.0 * out.err);
  // ~1% determination (paper: "an unprecedented 1% precision").
  EXPECT_LT(out.err / p.ga, 0.02);
  EXPECT_GT(out.err, 0.0);
}

TEST(GaAnalysis, FhFitsExcitedStateGap) {
  const auto p = params();
  const auto d = generate_fh_dataset(p, 2000, 13);
  const auto out = analyze_fh(d, 2, 10, 50, 14);
  // The fitted dE should be in the neighbourhood of the truth.
  EXPECT_NEAR(out.fit.params[3], p.delta_e, 0.35);
}

TEST(GaAnalysis, TraditionalWithTenfoldSamplesStillWorse) {
  // The headline Fig. 1 comparison: the FH grey band vs the traditional
  // band obtained with an order of magnitude more statistics.
  const auto p = params();
  const auto fh_data = generate_fh_dataset(p, 700, 15);
  const auto fh = analyze_fh(fh_data, 2, 10, 150, 16);

  const auto trad_data =
      generate_traditional_dataset(p, {8, 10, 12}, 7000, 17);
  const auto trad = analyze_traditional(trad_data, 150, 18);

  EXPECT_TRUE(trad.fit.converged);
  // Both central values consistent with truth...
  EXPECT_NEAR(fh.ga, p.ga, 5.0 * fh.err);
  EXPECT_NEAR(trad.ga, p.ga, 5.0 * trad.err);
  // ...but the FH error is smaller DESPITE 10x fewer samples.
  EXPECT_LT(fh.err, trad.err);
}

TEST(GaAnalysis, MoreSamplesShrinkFhError) {
  const auto p = params();
  const auto d1 = generate_fh_dataset(p, 200, 19);
  const auto d2 = generate_fh_dataset(p, 1800, 19);
  const auto o1 = analyze_fh(d1, 2, 10, 120, 20);
  const auto o2 = analyze_fh(d2, 2, 10, 120, 20);
  // 9x samples -> ~3x smaller error (1/sqrt(N)).
  EXPECT_LT(o2.err, 0.6 * o1.err);
}

TEST(GaAnalysis, ShortTimeWindowBeatsLateWindow) {
  // Using only late times (where noise exploded) must give a larger
  // bootstrap error than the short-time FH window: the core of the
  // signal-to-noise argument.
  const auto p = params();
  const auto d = generate_fh_dataset(p, 700, 21);
  const auto early = analyze_fh(d, 2, 8, 100, 22);
  const auto late = analyze_fh(d, 9, 14, 100, 23);
  EXPECT_LT(early.err, late.err);
}

TEST(GaData, TraditionalApproachesPlateauFromBelow) {
  const auto p = params();
  const auto d = generate_traditional_dataset(p, {4, 8, 12}, 20000, 24);
  GaFitOutcome out;
  const auto a = analyze_traditional(d, 10, 25);
  // Mean at tsep=4 well below mean at tsep=12 (contamination decays).
  EXPECT_LT(a.data_mean[0], a.data_mean[2]);
  (void)out;
}

}  // namespace
}  // namespace femto::core

namespace femto::core {
namespace {

TEST(GaAnalysis, CorrelatedFitAgreesWithDiagonalOnIndependentNoise) {
  // The synthetic ensemble has independent noise per t, so correlated and
  // diagonal analyses must agree in central value and error scale; the
  // correlated chi^2/dof stays of order one.
  const GaEnsembleParams p;
  const auto d = generate_fh_dataset(p, 700, 26);
  const auto diag = analyze_fh(d, 2, 10, 100, 27);
  const auto corr = analyze_fh_correlated(d, 2, 10, 100, 27, 0.1);
  EXPECT_TRUE(corr.fit.converged);
  EXPECT_NEAR(corr.ga, diag.ga, 3.0 * diag.err);
  EXPECT_GT(corr.err, 0.3 * diag.err);
  EXPECT_LT(corr.err, 3.0 * diag.err);
  EXPECT_GT(corr.fit.chisq_per_dof(), 0.2);
  EXPECT_LT(corr.fit.chisq_per_dof(), 3.0);
}

TEST(GaAnalysis, CorrelatedFitRecoversTruth) {
  const GaEnsembleParams p;
  const auto d = generate_fh_dataset(p, 900, 28);
  const auto corr = analyze_fh_correlated(d, 2, 10, 80, 29, 0.1);
  EXPECT_NEAR(corr.ga, p.ga, 5.0 * corr.err);
  EXPECT_LT(corr.err / p.ga, 0.02);
}

}  // namespace
}  // namespace femto::core
