// Z2 stochastic trace estimation validated against the exact trace on a
// tiny lattice (2^3 x 4: small enough that probing all 12V unit vectors
// is affordable).

#include "core/stochastic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lattice/gauge.hpp"

namespace femto::core {
namespace {

struct Fixture {
  std::shared_ptr<const Geometry> g;
  std::unique_ptr<DwfSolver> solver;
  Fixture() {
    g = std::make_shared<Geometry>(2, 2, 2, 4);
    auto u = std::make_shared<GaugeField<double>>(g);
    weak_gauge(*u, 1501, 0.2);
    SolverParams sp;
    sp.tol = 1e-9;
    solver = std::make_unique<DwfSolver>(
        u, MobiusParams{4, -1.8, 1.5, 0.5, 0.4}, sp);
  }
  static Fixture& get() {
    static Fixture f;
    return f;
  }
};

TEST(Z2Noise, ComponentsArePlusMinusOne) {
  auto& f = Fixture::get();
  SpinorField<double> eta(f.g, 1, Subset::Full);
  fill_z2_noise(eta, 7, 0);
  double sum = 0;
  for (std::int64_t k = 0; k < eta.reals(); k += 2) {
    EXPECT_EQ(std::abs(eta.data()[k]), 1.0);
    EXPECT_EQ(eta.data()[k + 1], 0.0);
    sum += eta.data()[k];
  }
  // Roughly balanced signs.
  EXPECT_LT(std::abs(sum), 0.3 * static_cast<double>(eta.reals() / 2));
}

TEST(Z2Noise, HitsAreIndependent) {
  auto& f = Fixture::get();
  SpinorField<double> a(f.g, 1, Subset::Full), b(f.g, 1, Subset::Full);
  fill_z2_noise(a, 7, 0);
  fill_z2_noise(b, 7, 1);
  int agree = 0, total = 0;
  for (std::int64_t k = 0; k < a.reals(); k += 2, ++total)
    if (a.data()[k] == b.data()[k]) ++agree;
  // ~50% agreement for independent signs.
  EXPECT_GT(agree, total / 3);
  EXPECT_LT(agree, 2 * total / 3);
}

TEST(StochasticTrace, UnbiasedAgainstExactTrace) {
  auto& f = Fixture::get();
  const SpinMat gamma = SpinMat::identity();
  const auto exact = exact_trace(*f.solver, gamma);
  const auto est = estimate_trace(*f.solver, gamma, 24, 11);
  // Within 4 standard errors of the exact value.
  EXPECT_NEAR(est.estimate.re, exact.re, 4.0 * est.error + 1e-8)
      << "exact " << exact.re << " est " << est.estimate.re << " +- "
      << est.error;
  EXPECT_GT(est.error, 0.0);
}

TEST(StochasticTrace, Gamma5TraceAlsoUnbiased) {
  auto& f = Fixture::get();
  const SpinMat g5 = SpinMat::gamma(4);
  const auto exact = exact_trace(*f.solver, g5);
  const auto est = estimate_trace(*f.solver, g5, 24, 13);
  EXPECT_NEAR(est.estimate.re, exact.re, 4.0 * est.error + 1e-8);
}

TEST(StochasticTrace, ErrorShrinksWithHits) {
  auto& f = Fixture::get();
  const SpinMat gamma = SpinMat::identity();
  const auto few = estimate_trace(*f.solver, gamma, 8, 17);
  const auto many = estimate_trace(*f.solver, gamma, 32, 17);
  // 4x hits -> ~2x smaller error (allow slack for sample noise).
  EXPECT_LT(many.error, 0.85 * few.error);
}

}  // namespace
}  // namespace femto::core
