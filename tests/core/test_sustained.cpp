#include "core/sustained.hpp"

#include <gtest/gtest.h>

#include "lattice/flops.hpp"

namespace femto::core {
namespace {

machine::LatticeProblem prob48() {
  machine::LatticeProblem p;
  p.extents = {48, 48, 48, 64};
  p.l5 = 12;
  return p;
}

TEST(Sustained, MinimalNodesNearTwentyPercent) {
  // Paper S VII: "a sustained performance of 20% on the minimal number of
  // nodes" once contractions are co-scheduled and I/O excluded.
  const auto s = sustained_performance(machine::sierra(), prob48(),
                                       /*n_gpus=*/4,
                                       /*jm_efficiency=*/1.0);
  EXPECT_GT(s.application_pct_peak, 14.0);
  EXPECT_LT(s.application_pct_peak, 26.0);
  // Co-scheduling makes solver and application numbers identical.
  EXPECT_NEAR(s.application_pct_peak, s.solver_pct_peak, 1e-9);
}

TEST(Sustained, UncoscheduledContractionsDilute) {
  ApplicationSplit split;
  split.contractions_coscheduled = false;
  const auto with = sustained_performance(machine::sierra(), prob48(), 4,
                                          1.0, 1.0, {});
  const auto without = sustained_performance(machine::sierra(), prob48(),
                                             4, 1.0, 1.0, split);
  EXPECT_LT(without.application_pct_peak, with.application_pct_peak);
  // ~3% contraction share costs ~3% of the rate.
  EXPECT_NEAR(without.application_pct_peak / with.application_pct_peak,
              0.965 / 0.995, 0.01);
}

TEST(Sustained, UntunedMvapichGivesFifteenPercentAtScale) {
  // The 15%-at-scale observation is the 20% solver number times the
  // MVAPICH2 rate factor the paper anticipates tuning away.
  const auto tuned = sustained_performance(machine::sierra(), prob48(), 4,
                                           1.0, 1.0);
  const auto at_scale = sustained_performance(machine::sierra(), prob48(),
                                              4, 1.0, 0.75);
  EXPECT_NEAR(at_scale.application_pct_peak,
              tuned.application_pct_peak * 0.75, 1e-9);
  EXPECT_GT(at_scale.application_pct_peak, 10.0);
  EXPECT_LT(at_scale.application_pct_peak, 20.0);
}

TEST(Sustained, JmEfficiencyScalesLinearly) {
  const auto full = sustained_performance(machine::sierra(), prob48(), 16,
                                          1.0);
  const auto partial = sustained_performance(machine::sierra(), prob48(),
                                             16, 0.8);
  EXPECT_NEAR(partial.pflops, full.pflops * 0.8, 1e-9);
}

TEST(Sustained, MachineToMachineSpeedupsMatchPaperScale) {
  // Paper S VII: "the machine-to-machine speed up of Sierra and Summit
  // over Titan ... is a factor of approximately 12 and 15".  Our model
  // reproduces the ORDERING and the large-multiple scale (it lands near
  // 5x / 8x: it credits Titan its calibrated best-point bandwidth
  // everywhere, where the real machine also suffered memory-capacity and
  // Gemini-era penalties).  See EXPERIMENTS.md for the recorded values.
  const auto prob = prob48();
  const double sierra_x = machine_speedup(machine::titan(),
                                          machine::sierra(), prob,
                                          /*gpus/job titan*/ 16,
                                          /*gpus/job sierra*/ 16);
  const double summit_x = machine_speedup(machine::titan(),
                                          machine::summit(), prob, 16, 24);
  EXPECT_GT(sierra_x, 4.0);
  EXPECT_LT(sierra_x, 25.0);
  EXPECT_GT(summit_x, sierra_x);  // Summit is the faster machine
  EXPECT_LT(summit_x, 35.0);
}

TEST(Sustained, DescriptionMentionsMachine) {
  const auto s = sustained_performance(machine::summit(), prob48(), 6, 1.0);
  EXPECT_NE(s.description.find("Summit"), std::string::npos);
}

TEST(Sustained, MeasuredArithmeticIntensityTracksCounters) {
  flops::reset();
  EXPECT_EQ(measured_arithmetic_intensity(), 0.0);  // no traffic recorded
  flops::add(1800);
  flops::add_bytes(1000);
  EXPECT_DOUBLE_EQ(measured_arithmetic_intensity(), 1.8);
  flops::reset();
}

}  // namespace
}  // namespace femto::core
