#include "core/ensemble.hpp"

#include "lattice/gauge.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace femto::core {
namespace {

EnsembleSpec tiny_spec() {
  EnsembleSpec s;
  s.name = "test-tiny";
  s.extents = {4, 4, 4, 8};
  s.beta = 6.0;
  s.mobius = {4, -1.8, 1.5, 0.5, 0.3};
  s.n_configs = 3;
  s.thermalization = 6;
  s.decorrelation = 2;
  s.seed = 3003;
  return s;
}

SolverParams quick_params() {
  SolverParams sp;
  sp.tol = 1e-7;
  sp.max_iter = 20000;
  return sp;
}

TEST(Ensemble, MarkovChainProducesDistinctConfigs) {
  auto g = std::make_shared<Geometry>(4, 4, 4, 4);
  const auto cfgs = quenched_ensemble(g, 6.0, 3, 6, 2, 41);
  ASSERT_EQ(cfgs.size(), 3u);
  // Consecutive configs differ but are all thermalised (similar plaquette).
  const double p0 = plaquette(cfgs[0]);
  const double p1 = plaquette(cfgs[1]);
  EXPECT_NE(p0, p1);
  EXPECT_NEAR(p0, p1, 0.1);
  bool differ = false;
  for (std::int64_t k = 0; k < cfgs[0].bytes() / 8; k += 101)
    if (cfgs[0].data()[k] != cfgs[2].data()[k]) differ = true;
  EXPECT_TRUE(differ);
}

TEST(Ensemble, CampaignProducesPerConfigObservables) {
  const auto res = run_ensemble(tiny_spec(), quick_params());
  EXPECT_TRUE(res.all_converged);
  EXPECT_EQ(res.n_configs, 3);
  ASSERT_EQ(res.c2pt.size(), 3u);
  EXPECT_EQ(res.c2pt[0].size(), 8u);
  EXPECT_EQ(res.geff[0].size(), 7u);
  ASSERT_EQ(res.plaquettes.size(), 3u);
  EXPECT_GT(res.plaquette_mean, 0.4);
  EXPECT_GT(res.plaquette_err, 0.0);
  // Jackknife effective mass populated with errors.
  ASSERT_EQ(res.meff_mean.size(), 7u);
  EXPECT_GT(res.meff_err[1], 0.0);
}

TEST(Ensemble, CorrelatorsVaryAcrossConfigs) {
  const auto res = run_ensemble(tiny_spec(), quick_params());
  // Monte Carlo: the same observable fluctuates configuration to
  // configuration.
  EXPECT_NE(res.c2pt[0][1], res.c2pt[1][1]);
  EXPECT_NE(res.c2pt[1][1], res.c2pt[2][1]);
}

TEST(Ensemble, ArchiveRoundTrip) {
  const std::string path = "/tmp/femto_ensemble_test.bin";
  fio::File archive;
  const auto res = run_ensemble(tiny_spec(), quick_params(), &archive);
  archive.save(path);

  const auto loaded_file = fio::File::load(path);
  const auto back = load_ensemble(loaded_file, "test-tiny");
  EXPECT_EQ(back.n_configs, res.n_configs);
  for (int cfg = 0; cfg < res.n_configs; ++cfg)
    for (std::size_t t = 0; t < res.c2pt[0].size(); ++t)
      EXPECT_EQ(back.c2pt[static_cast<std::size_t>(cfg)][t],
                res.c2pt[static_cast<std::size_t>(cfg)][t]);
  EXPECT_EQ(back.meff_mean.size(), res.meff_mean.size());
  for (std::size_t t = 0; t < res.meff_mean.size(); ++t)
    EXPECT_NEAR(back.meff_mean[t], res.meff_mean[t], 1e-12);
  std::remove(path.c_str());
}

TEST(Ensemble, ReproducibleEndToEnd) {
  const auto a = run_ensemble(tiny_spec(), quick_params());
  const auto b = run_ensemble(tiny_spec(), quick_params());
  for (std::size_t t = 0; t < a.c2pt[0].size(); ++t)
    EXPECT_EQ(a.c2pt[0][t], b.c2pt[0][t]);
}

}  // namespace
}  // namespace femto::core
