#include "core/spin_matrix.hpp"

#include <gtest/gtest.h>

#include "lattice/rng.hpp"

namespace femto {
namespace {

double dist2(const SpinMat& a, const SpinMat& b) {
  double d = 0;
  for (int i = 0; i < kNs; ++i)
    for (int j = 0; j < kNs; ++j) d += norm2(a(i, j) - b(i, j));
  return d;
}

TEST(SpinMatTest, GammaMatchesApplyGamma) {
  // The matrix form must act identically to the kernel's apply_gamma.
  Xoshiro256 rng(401);
  for (int mu = 0; mu <= 4; ++mu) {
    Spinor<double> p;
    for (int s = 0; s < kNs; ++s)
      for (int c = 0; c < kNc; ++c)
        p[s][c] = {rng.gaussian(), rng.gaussian()};
    const auto want = apply_gamma(mu, p);
    const SpinMat g = SpinMat::gamma(mu);
    for (int s = 0; s < kNs; ++s)
      for (int c = 0; c < kNc; ++c) {
        cdouble acc{};
        for (int k = 0; k < kNs; ++k) acc += g(s, k) * p[k][c];
        EXPECT_NEAR(acc.re, want[s][c].re, 1e-14);
        EXPECT_NEAR(acc.im, want[s][c].im, 1e-14);
      }
  }
}

TEST(SpinMatTest, GammasAreHermitianAndSquareToOne) {
  for (int mu = 0; mu <= 4; ++mu) {
    const SpinMat g = SpinMat::gamma(mu);
    // Hermitian: g(i,j) = conj(g(j,i)).
    for (int i = 0; i < kNs; ++i)
      for (int j = 0; j < kNs; ++j) {
        EXPECT_NEAR(g(i, j).re, g(j, i).re, 1e-14);
        EXPECT_NEAR(g(i, j).im, -g(j, i).im, 1e-14);
      }
    EXPECT_LT(dist2(g * g, SpinMat::identity()), 1e-24) << mu;
  }
}

TEST(SpinMatTest, ChargeConjugationProperty) {
  // C gamma_mu C^-1 = -gamma_mu^T for all four gammas.  Since C = gy gt
  // and gammas square to one, C^-1 = gt gy.
  const SpinMat c = charge_conjugation();
  const SpinMat cinv = SpinMat::gamma(kDirT) * SpinMat::gamma(kDirY);
  EXPECT_LT(dist2(c * cinv, SpinMat::identity()), 1e-24);
  for (int mu = 0; mu < 4; ++mu) {
    const SpinMat g = SpinMat::gamma(mu);
    const SpinMat lhs = c * g * cinv;
    const SpinMat rhs = g.transpose().scaled({-1.0, 0.0});
    EXPECT_LT(dist2(lhs, rhs), 1e-24) << "mu=" << mu;
  }
}

TEST(SpinMatTest, ProjectorsAreIdempotent) {
  const SpinMat p = parity_projector();
  EXPECT_LT(dist2(p * p, p), 1e-24);
  EXPECT_NEAR(p.trace().re, 2.0, 1e-12);  // rank 2

  const SpinMat pol = polarized_projector();
  EXPECT_LT(dist2(pol * pol, pol), 1e-24);
  EXPECT_NEAR(pol.trace().re, 1.0, 1e-12);  // rank 1: one spin state
}

TEST(SpinMatTest, Cgamma5Antisymmetric) {
  // (C g5)^T = -C g5, the property that makes the diquark coupling work.
  const SpinMat cg5 = cgamma5();
  EXPECT_LT(dist2(cg5.transpose(), cg5.scaled({-1.0, 0.0})), 1e-24);
}

TEST(SpinMatTest, AxialGammaAntiHermitianStructure) {
  // gz g5 is Hermitian (product of two anticommuting Hermitian matrices
  // times ... verify numerically whichever way it lands).
  const SpinMat a = axial_gamma();
  const SpinMat aa = a * a;
  // (gz g5)^2 = gz g5 gz g5 = -gz gz g5 g5 = -1.
  EXPECT_LT(dist2(aa, SpinMat::identity().scaled({-1.0, 0.0})), 1e-24);
}

TEST(SpinMatTest, TraceAndProducts) {
  const SpinMat g5 = SpinMat::gamma(4);
  EXPECT_NEAR(g5.trace().re, 0.0, 1e-14);
  for (int mu = 0; mu < 4; ++mu)
    EXPECT_NEAR(SpinMat::gamma(mu).trace().re, 0.0, 1e-14) << mu;
  // tr(g_mu g_nu) = 4 delta_mu_nu.
  for (int mu = 0; mu < 4; ++mu)
    for (int nu = 0; nu < 4; ++nu) {
      const auto t = (SpinMat::gamma(mu) * SpinMat::gamma(nu)).trace();
      EXPECT_NEAR(t.re, mu == nu ? 4.0 : 0.0, 1e-12);
      EXPECT_NEAR(t.im, 0.0, 1e-12);
    }
}

}  // namespace
}  // namespace femto
