// Pion correlator properties — the sharpest physics checks in the suite,
// because gamma_5 hermiticity makes C_pi(t) at zero momentum STRICTLY
// positive on every single configuration (no ensemble averaging needed).

#include <gtest/gtest.h>

#include "core/contractions.hpp"
#include "lattice/gauge.hpp"

namespace femto::core {
namespace {

struct Fixture {
  std::shared_ptr<const Geometry> g;
  std::unique_ptr<Propagator> quark;
  Fixture() {
    g = std::make_shared<Geometry>(4, 4, 4, 8);
    auto u = std::make_shared<GaugeField<double>>(g);
    weak_gauge(*u, 951, 0.25);
    SolverParams sp;
    sp.tol = 1e-8;
    DwfSolver solver(u, {6, -1.8, 1.5, 0.5, 0.2}, sp);
    quark = std::make_unique<Propagator>(
        compute_point_propagator(solver, {0, 0, 0, 0}));
  }
  static Fixture& get() {
    static Fixture f;
    return f;
  }
};

TEST(Pion, StrictlyPositiveAtZeroMomentum) {
  auto& f = Fixture::get();
  const auto c = pion_two_point(*f.quark, 0);
  ASSERT_EQ(c.size(), 8u);
  for (const auto& v : c) {
    EXPECT_GT(v.re, 0.0);
    EXPECT_EQ(v.im, 0.0);  // |S|^2 summed: exactly real
  }
}

TEST(Pion, DecaysAwayFromSource) {
  auto& f = Fixture::get();
  const auto c = pion_two_point(*f.quark, 0);
  // Monotone decay up to the time-reflection midpoint.
  for (int t = 0; t < 3; ++t)
    EXPECT_GT(c[static_cast<std::size_t>(t)].re,
              c[static_cast<std::size_t>(t + 1)].re)
        << t;
}

TEST(Pion, EffectiveMassPositiveBeforeMidpoint) {
  auto& f = Fixture::get();
  const auto c = pion_two_point(*f.quark, 0);
  const auto m = effective_mass(c);
  for (int t = 0; t < 3; ++t)
    EXPECT_GT(m[static_cast<std::size_t>(t)], 0.0) << t;
}

TEST(Pion, MomentumRaisesEffectiveEnergy) {
  // Dispersion: E(p) > E(0); compare effective energies in the decay
  // region.  (The lattice is tiny, so only the ordering is asserted.)
  auto& f = Fixture::get();
  const auto c0 = pion_two_point(*f.quark, 0, {0, 0, 0});
  const auto c1 = pion_two_point(*f.quark, 0, {1, 0, 0});
  const auto m0 = effective_mass(c0);
  // Momentum-projected correlators are complex; use the magnitude.
  std::vector<double> m1;
  for (std::size_t t = 0; t + 1 < c1.size(); ++t) {
    const double r = abs(c1[t]) / abs(c1[t + 1]);
    m1.push_back(std::log(r));
  }
  EXPECT_GT(m1[1], m0[1]);
  EXPECT_GT(m1[2], m0[2]);
}

TEST(Pion, MomentumProjectionIsConjugateSymmetric) {
  // C(-p) = conj(C(p)) holds configuration by configuration: the phase is
  // the only complex ingredient.
  auto& f = Fixture::get();
  const auto cp = pion_two_point(*f.quark, 0, {1, 0, 0});
  const auto cm = pion_two_point(*f.quark, 0, {-1, 0, 0});
  for (std::size_t t = 0; t < cp.size(); ++t) {
    EXPECT_NEAR(cp[t].re, cm[t].re, 1e-10 * (std::abs(cp[t].re) + 1e-10));
    EXPECT_NEAR(cp[t].im, -cm[t].im, 1e-10 * (std::abs(cp[t].im) + 1e-10));
  }
}

TEST(Pion, ZeroMomentumDominates) {
  // The p = 0 projection collects the full positive density; any nonzero
  // momentum must be smaller in magnitude.
  auto& f = Fixture::get();
  const auto c0 = pion_two_point(*f.quark, 0, {0, 0, 0});
  for (auto p : {std::array<int, 3>{1, 0, 0}, std::array<int, 3>{0, 1, 1},
                 std::array<int, 3>{2, 0, 0}}) {
    const auto cp = pion_two_point(*f.quark, 0, p);
    for (std::size_t t = 0; t < c0.size(); ++t)
      EXPECT_LT(abs(cp[t]), c0[t].re + 1e-12);
  }
}

TEST(NucleonMomentum, ZeroMomentumMatchesBaseContraction) {
  auto& f = Fixture::get();
  const auto a = nucleon_two_point(*f.quark, *f.quark,
                                   parity_projector(), 0);
  const auto b = nucleon_two_point_momentum(*f.quark, *f.quark,
                                            parity_projector(), 0,
                                            {0, 0, 0});
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].re, b[t].re);
    EXPECT_EQ(a[t].im, b[t].im);
  }
}

TEST(NucleonMomentum, NonzeroMomentumDiffers) {
  auto& f = Fixture::get();
  const auto a = nucleon_two_point(*f.quark, *f.quark,
                                   parity_projector(), 0);
  const auto b = nucleon_two_point_momentum(*f.quark, *f.quark,
                                            parity_projector(), 0,
                                            {1, 0, 0});
  bool differs = false;
  for (std::size_t t = 0; t < a.size(); ++t)
    if (std::abs(a[t].re - b[t].re) > 1e-12) differs = true;
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace femto::core
