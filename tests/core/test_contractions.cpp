#include "core/contractions.hpp"

#include <gtest/gtest.h>

#include "lattice/gauge.hpp"

namespace femto::core {
namespace {

struct Fixture {
  std::shared_ptr<const Geometry> g;
  std::shared_ptr<const GaugeField<double>> u;
  MobiusParams params{6, -1.8, 1.5, 0.5, 0.3};  // heavy quark: fast solves
  std::unique_ptr<DwfSolver> solver;
  Fixture(std::uint64_t seed = 601, double eps = 0.2) {
    g = std::make_shared<Geometry>(4, 4, 4, 8);
    auto ug = std::make_shared<GaugeField<double>>(g);
    weak_gauge(*ug, seed, eps);
    u = ug;
    SolverParams sp;
    sp.tol = 1e-8;
    sp.max_iter = 20000;
    solver = std::make_unique<DwfSolver>(u, params, sp);
  }
};

TEST(Contractions, TwoPointHasCorrectLengthAndDecays) {
  Fixture f;
  const auto up = compute_point_propagator(*f.solver, {0, 0, 0, 0});
  const auto c2 = nucleon_two_point(up, up, parity_projector(), 0);
  ASSERT_EQ(c2.size(), 8u);
  // The correlator decays away from the source (before backward-state
  // effects at the far end).
  EXPECT_GT(std::abs(c2[1].re), std::abs(c2[3].re));
  EXPECT_GT(std::abs(c2[0].re), std::abs(c2[2].re));
}

TEST(Contractions, TwoPointPositiveNearSource) {
  // With the positive-parity projector the nucleon correlator is positive
  // at small t (spectral positivity).
  Fixture f;
  const auto up = compute_point_propagator(*f.solver, {0, 0, 0, 0});
  const auto c2 = nucleon_two_point(up, up, parity_projector(), 0);
  EXPECT_GT(c2[0].re, 0.0);
  EXPECT_GT(c2[1].re, 0.0);
  EXPECT_GT(c2[2].re, 0.0);
  // And is predominantly real: imaginary part is noise-level relative to
  // the real part at the source.
  EXPECT_LT(std::abs(c2[1].im), std::abs(c2[1].re));
}

TEST(Contractions, SourceShiftCovariance) {
  // Shifting the source timeslice must shift the correlator (exactly, on
  // the same configuration, up to the antiperiodic sign structure which
  // cancels in the 3-quark correlator: 3 fermion lines -> odd sign^3 ...
  // the nucleon correlator picks up the boundary sign when the source-sink
  // pair straddles the boundary, so compare magnitudes).
  Fixture f;
  const auto p0 = compute_point_propagator(*f.solver, {0, 0, 0, 0});
  const auto p2 = compute_point_propagator(*f.solver, {0, 0, 0, 2});
  const auto c0 = nucleon_two_point(p0, p0, parity_projector(), 0);
  const auto c2 = nucleon_two_point(p2, p2, parity_projector(), 2);
  // Gauge field breaks exact translation invariance on one config, but
  // the source-relative decay pattern must be similar in scale.
  for (int t = 0; t < 3; ++t) {
    const double a = std::abs(c0[static_cast<std::size_t>(t)].re);
    const double b = std::abs(c2[static_cast<std::size_t>(t)].re);
    EXPECT_GT(b, 0.05 * a);
    EXPECT_LT(b, 20.0 * a);
  }
}

TEST(Contractions, FhThreePointDiffersFromTwoPoint) {
  Fixture f;
  const auto up = compute_point_propagator(*f.solver, {0, 0, 0, 0});
  const auto fh = compute_fh_propagator(*f.solver, up);
  const auto c2 = nucleon_two_point(up, up, polarized_projector(), 0);
  const auto c3 = nucleon_fh_three_point(up, fh, up,
                                         polarized_projector(), 0);
  ASSERT_EQ(c3.size(), c2.size());
  bool differs = false;
  for (std::size_t t = 0; t < c2.size(); ++t)
    if (std::abs(c3[t].re - c2[t].re) > 1e-12) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Contractions, EffectiveCouplingSeriesLength) {
  Correlator c2(8), c3(8);
  for (int t = 0; t < 8; ++t) {
    c2[static_cast<std::size_t>(t)] = {std::exp(-0.5 * t), 0.0};
    // R(t) = 1.27 * t  => finite difference = 1.27 everywhere.
    c3[static_cast<std::size_t>(t)] = {1.27 * t * std::exp(-0.5 * t), 0.0};
  }
  const auto g = fh_effective_coupling_series(c2, c3);
  ASSERT_EQ(g.size(), 7u);
  for (double v : g) EXPECT_NEAR(v, 1.27, 1e-10);
}

TEST(Contractions, EffectiveMassOfPureExponential) {
  Correlator c(10);
  for (int t = 0; t < 10; ++t)
    c[static_cast<std::size_t>(t)] = {5.0 * std::exp(-0.7 * t), 0.0};
  const auto m = effective_mass(c);
  for (double v : m) EXPECT_NEAR(v, 0.7, 1e-10);
}

TEST(Contractions, LinearityInSubstitutedLine) {
  // The FH contraction is bilinear in each line: scaling the substituted
  // propagator scales the correlator.
  Fixture f;
  const auto up = compute_point_propagator(*f.solver, {0, 0, 0, 0});
  auto fh = compute_fh_propagator(*f.solver, up);
  const auto c3 = nucleon_fh_three_point(up, fh, up,
                                         parity_projector(), 0);
  // Scale the FH propagator by 2.
  Propagator fh2(f.g);
  for (int s = 0; s < kNs; ++s)
    for (int c = 0; c < kNc; ++c) {
      fh2.column(s, c) = fh.column(s, c);
      for (std::int64_t k = 0; k < fh2.column(s, c).reals(); ++k)
        fh2.column(s, c).data()[k] *= 2.0;
    }
  const auto c3x2 = nucleon_fh_three_point(up, fh2, up,
                                           parity_projector(), 0);
  for (std::size_t t = 0; t < c3.size(); ++t) {
    EXPECT_NEAR(c3x2[t].re, 2.0 * c3[t].re,
                1e-9 * (std::abs(c3[t].re) + 1e-6));
  }
}

}  // namespace
}  // namespace femto::core
