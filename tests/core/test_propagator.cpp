#include "core/propagator.hpp"

#include <gtest/gtest.h>

#include "lattice/blas.hpp"
#include "lattice/gauge.hpp"

namespace femto::core {
namespace {

struct Fixture {
  std::shared_ptr<const Geometry> g;
  std::shared_ptr<const GaugeField<double>> u;
  MobiusParams params{6, -1.8, 1.5, 0.5, 0.2};
  std::unique_ptr<DwfSolver> solver;

  Fixture() {
    g = std::make_shared<Geometry>(4, 4, 4, 8);
    auto ug = std::make_shared<GaugeField<double>>(g);
    weak_gauge(*ug, 501, 0.2);
    u = ug;
    SolverParams sp;
    sp.tol = 1e-8;
    sp.max_iter = 20000;
    solver = std::make_unique<DwfSolver>(u, params, sp);
  }
};

TEST(PropagatorTest, PointSourceStructure) {
  auto g = std::make_shared<Geometry>(4, 4, 4, 8);
  const auto b = make_dwf_point_source(g, 6, {1, 2, 3, 4}, 1, 2);
  // Spin 1 is in the P+ pair: lives at s = 0 only.
  const auto site = g->index({1, 2, 3, 4});
  const auto s0 = b.load(0, site);
  EXPECT_EQ(s0[1][2].re, 1.0);
  const auto sl = b.load(5, site);
  EXPECT_EQ(sl[1][2].re, 0.0);  // P- projection kills spin 1 at s=L5-1
  // Spin 3 (P- pair) would live at s = L5-1 instead.
  const auto b2 = make_dwf_point_source(g, 6, {1, 2, 3, 4}, 3, 0);
  EXPECT_EQ(b2.load(5, site)[3][0].re, 1.0);
  EXPECT_EQ(b2.load(0, site)[3][0].re, 0.0);
  // Everything else zero.
  EXPECT_DOUBLE_EQ(blas::norm2(b), 1.0);
}

TEST(PropagatorTest, Project4dCombinesBoundaries) {
  auto g = std::make_shared<Geometry>(4, 4, 4, 8);
  SpinorField<double> psi(g, 6, Subset::Full);
  psi.gaussian(502);
  SpinorField<double> q(g, 1, Subset::Full);
  project_4d(psi, q);
  for (std::int64_t i = 0; i < q.sites(); i += 37) {
    const auto qq = q.load(0, i);
    const auto lo = psi.load(0, i);
    const auto hi = psi.load(5, i);
    for (int c = 0; c < kNc; ++c) {
      // Spins 0,1 (P+) from s = L5-1; spins 2,3 (P-) from s = 0.
      EXPECT_EQ(qq[0][c].re, hi[0][c].re);
      EXPECT_EQ(qq[1][c].im, hi[1][c].im);
      EXPECT_EQ(qq[2][c].re, lo[2][c].re);
      EXPECT_EQ(qq[3][c].im, lo[3][c].im);
    }
  }
}

TEST(PropagatorTest, PointPropagatorSolvesConverge) {
  Fixture f;
  PropagatorSolveStats stats;
  const auto prop = compute_point_propagator(*f.solver, {0, 0, 0, 0},
                                             &stats);
  EXPECT_TRUE(stats.all_converged);
  EXPECT_LT(stats.worst_residual, 1e-7);
  EXPECT_EQ(stats.total_iterations > 0, true);
  // Propagator is nonzero away from the source.
  double far = 0;
  const auto site = f.g->index({2, 2, 2, 4});
  for (int s = 0; s < kNs; ++s)
    for (int c = 0; c < kNc; ++c)
      far += norm2(prop.column(s, c).load(0, site));
  EXPECT_GT(far, 0.0);
}

TEST(PropagatorTest, SiteMatrixMatchesColumns) {
  Fixture f;
  const auto prop = compute_point_propagator(*f.solver, {0, 0, 0, 0});
  const auto site = f.g->index({1, 1, 1, 2});
  const auto m = prop.site_matrix(site);
  for (int ss = 0; ss < kNs; ++ss)
    for (int sc = 0; sc < kNc; ++sc) {
      const auto col = prop.column(ss, sc).load(0, site);
      for (int s = 0; s < kNs; ++s)
        for (int c = 0; c < kNc; ++c) {
          EXPECT_EQ(m[s][c][ss][sc].re, col[s][c].re);
          EXPECT_EQ(m[s][c][ss][sc].im, col[s][c].im);
        }
    }
}

TEST(PropagatorTest, FhPropagatorConvergesAndDiffers) {
  Fixture f;
  const auto base = compute_point_propagator(*f.solver, {0, 0, 0, 0});
  PropagatorSolveStats stats;
  const auto fh = compute_fh_propagator(*f.solver, base, &stats);
  EXPECT_TRUE(stats.all_converged);
  // The FH propagator is a genuinely different field.
  double diff = 0, norm = 0;
  for (int s = 0; s < kNs; ++s)
    for (int c = 0; c < kNc; ++c) {
      const auto& a = base.column(s, c);
      const auto& b = fh.column(s, c);
      norm += blas::norm2(a);
      SpinorField<double> d = a;
      blas::axpy(-1.0, b, d);
      diff += blas::norm2(d);
    }
  EXPECT_GT(diff, 1e-6 * norm);
}

TEST(PropagatorTest, PropagatorDecaysWithDistanceFromSource) {
  Fixture f;
  const auto prop = compute_point_propagator(*f.solver, {0, 0, 0, 0});
  auto strength_at_t = [&](int t) {
    double s2 = 0;
    // Sum over the timeslice.
    for (std::int64_t i = 0; i < f.g->volume(); ++i) {
      if (f.g->coord(i)[3] != t) continue;
      for (int s = 0; s < kNs; ++s)
        for (int c = 0; c < kNc; ++c)
          s2 += norm2(prop.column(s, c).load(0, i));
    }
    return s2;
  };
  // Midpoint of the time extent is strictly weaker than near the source.
  EXPECT_GT(strength_at_t(1), strength_at_t(4));
}

}  // namespace
}  // namespace femto::core
