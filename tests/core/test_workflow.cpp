#include "core/workflow.hpp"

#include "fio/propagator_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace femto::core {
namespace {

WorkflowOptions tiny() {
  WorkflowOptions o;
  o.extents = {4, 4, 4, 8};
  o.mobius = {4, -1.8, 1.5, 0.5, 0.3};  // small L5, heavy quark: fast
  o.solver_tol = 1e-7;
  o.n_configs = 1;
  o.thermalization = 4;
  o.scratch_dir = "/tmp";
  o.seed = 31337;
  return o;
}

void cleanup() {
  std::remove("/tmp/prop_cfg0.femto");
  std::remove("/tmp/corr_cfg0.femto");
}

TEST(Workflow, RunsEndToEnd) {
  const auto rep = run_workflow(tiny());
  EXPECT_TRUE(rep.all_converged);
  EXPECT_EQ(rep.propagator_solves, 24);  // 12 point + 12 FH
  EXPECT_GT(rep.solver_iterations, 0);
  ASSERT_EQ(rep.c2pt.size(), 1u);
  EXPECT_EQ(rep.c2pt[0].size(), 8u);
  ASSERT_EQ(rep.geff.size(), 1u);
  EXPECT_EQ(rep.geff[0].size(), 7u);
  cleanup();
}

TEST(Workflow, PropagatorsDominateTheBudget) {
  // The paper's split: ~97% propagators, ~3% contractions, ~0.5% I/O.
  // On our small lattices the same ordering must hold.
  const auto rep = run_workflow(tiny());
  EXPECT_GT(rep.fraction_propagators(), 0.5);
  EXPECT_GT(rep.fraction_propagators(), rep.fraction_contractions());
  EXPECT_GT(rep.fraction_propagators(), rep.fraction_io());
  cleanup();
}

TEST(Workflow, SummaryMentionsStages) {
  const auto rep = run_workflow(tiny());
  const auto s = rep.summary();
  EXPECT_NE(s.find("propagators"), std::string::npos);
  EXPECT_NE(s.find("contractions"), std::string::npos);
  EXPECT_NE(s.find("I/O"), std::string::npos);
  cleanup();
}

TEST(Workflow, WithoutFhHalvesTheSolves) {
  auto o = tiny();
  o.with_fh = false;
  const auto rep = run_workflow(o);
  EXPECT_EQ(rep.propagator_solves, 12);
  EXPECT_TRUE(rep.geff.empty());
  cleanup();
}

TEST(Workflow, CorrelatorFilesLandOnDisk) {
  run_workflow(tiny());
  const auto f = fio::File::load("/tmp/corr_cfg0.femto");
  const auto c = fio::read_correlator(f, "nucleon_2pt_cfg0");
  EXPECT_EQ(c.size(), 8u);
  cleanup();
}

}  // namespace
}  // namespace femto::core
