// The central identity of the paper's algorithm, verified with REAL
// solves: the Feynman-Hellmann propagator (ONE sequential solve with the
// current inserted at every timeslice) equals the SUM over insertion
// times of the traditional fixed-insertion propagators (T solves).
//
//   sum_tau D^{-1}(Gamma delta_{t,tau} q) == D^{-1}(Gamma q)
//
// "a new type of propagator which yields all the temporal distances for
// the cost of one temporal distance in the traditional method."

#include <gtest/gtest.h>

#include "core/contractions.hpp"
#include "lattice/blas.hpp"
#include "lattice/gauge.hpp"

namespace femto::core {
namespace {

struct Fixture {
  std::shared_ptr<const Geometry> g;
  std::unique_ptr<DwfSolver> solver;
  std::unique_ptr<Propagator> base;
  Fixture() {
    g = std::make_shared<Geometry>(4, 4, 4, 8);
    auto u = std::make_shared<GaugeField<double>>(g);
    weak_gauge(*u, 1201, 0.2);
    SolverParams sp;
    sp.tol = 1e-10;  // tight: the identity is checked to solver precision
    solver = std::make_unique<DwfSolver>(u, MobiusParams{4, -1.8, 1.5, 0.5,
                                                         0.3},
                                         sp);
    base = std::make_unique<Propagator>(
        compute_point_propagator(*solver, {0, 0, 0, 0}));
  }
  static Fixture& get() {
    static Fixture f;
    return f;
  }
};

TEST(FhIdentity, SumOfFixedInsertionsEqualsFhPropagator) {
  auto& f = Fixture::get();
  const auto fh = compute_fh_propagator(*f.solver, *f.base);

  // Accumulate the 8 traditional fixed-insertion propagators.
  Propagator sum(f.g);
  for (int tau = 0; tau < f.g->extent(3); ++tau) {
    const auto fixed =
        compute_fixed_insertion_propagator(*f.solver, *f.base, tau);
    for (int s = 0; s < kNs; ++s)
      for (int c = 0; c < kNc; ++c)
        blas::axpy(1.0, fixed.column(s, c), sum.column(s, c));
  }

  double num = 0, den = 0;
  for (int s = 0; s < kNs; ++s)
    for (int c = 0; c < kNc; ++c) {
      SpinorField<double> d = sum.column(s, c);
      blas::axpy(-1.0, fh.column(s, c), d);
      num += blas::norm2(d);
      den += blas::norm2(fh.column(s, c));
    }
  EXPECT_LT(std::sqrt(num / den), 1e-7);
}

TEST(FhIdentity, CostRatioIsTheTimeExtent) {
  // One FH solve set vs T fixed-insertion solve sets: the iteration cost
  // of the traditional coverage of all insertion times is ~T times the FH
  // cost (each solve is comparably hard).
  auto& f = Fixture::get();
  PropagatorSolveStats fh_stats;
  compute_fh_propagator(*f.solver, *f.base, &fh_stats);
  PropagatorSolveStats one_fixed;
  compute_fixed_insertion_propagator(*f.solver, *f.base, 2, &one_fixed);
  const int nt = f.g->extent(3);
  const double traditional_cost =
      static_cast<double>(one_fixed.total_iterations) * nt;
  const double ratio =
      traditional_cost / static_cast<double>(fh_stats.total_iterations);
  EXPECT_GT(ratio, 0.5 * nt);
  EXPECT_LT(ratio, 2.0 * nt);
}

TEST(FhIdentity, FixedInsertionOnlySourcesOneTimeslice) {
  // Structural check: the tau-restricted sequential solve must differ
  // between different tau values (each sees a different source slice).
  auto& f = Fixture::get();
  const auto a = compute_fixed_insertion_propagator(*f.solver, *f.base, 1);
  const auto b = compute_fixed_insertion_propagator(*f.solver, *f.base, 5);
  double diff = 0, norm = 0;
  for (int s = 0; s < kNs; ++s)
    for (int c = 0; c < kNc; ++c) {
      SpinorField<double> d = a.column(s, c);
      blas::axpy(-1.0, b.column(s, c), d);
      diff += blas::norm2(d);
      norm += blas::norm2(a.column(s, c));
    }
  EXPECT_GT(diff, 1e-3 * norm);
}

TEST(FhIdentity, CorrelatorLevelIdentity) {
  // The same identity at the contraction level: summing the fixed-tau FH
  // 3pt correlators over tau equals the FH correlator.
  auto& f = Fixture::get();
  const auto fh = compute_fh_propagator(*f.solver, *f.base);
  const SpinMat pol = polarized_projector();
  const auto c_fh = nucleon_fh_three_point(*f.base, fh, *f.base, pol, 0);

  Correlator c_sum(static_cast<std::size_t>(f.g->extent(3)), cdouble{});
  for (int tau = 0; tau < f.g->extent(3); ++tau) {
    const auto fixed =
        compute_fixed_insertion_propagator(*f.solver, *f.base, tau);
    const auto c_tau = nucleon_fh_three_point(*f.base, fixed, *f.base,
                                              pol, 0);
    for (std::size_t t = 0; t < c_sum.size(); ++t) c_sum[t] += c_tau[t];
  }
  for (std::size_t t = 0; t < c_sum.size(); ++t) {
    EXPECT_NEAR(c_sum[t].re, c_fh[t].re,
                1e-6 * (std::abs(c_fh[t].re) + 1e-8));
    EXPECT_NEAR(c_sum[t].im, c_fh[t].im,
                1e-6 * (std::abs(c_fh[t].re) + 1e-8));
  }
}

}  // namespace
}  // namespace femto::core
