#include "lattice/blas.hpp"

#include <gtest/gtest.h>

#include "lattice/flops.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

class BlasTest : public ::testing::Test {
 protected:
  BlasTest()
      : g(geom44()),
        x(g, 4, Subset::Odd),
        y(g, 4, Subset::Odd),
        z(g, 4, Subset::Odd) {
    x.gaussian(1);
    y.gaussian(2);
  }
  std::shared_ptr<const Geometry> g;
  SpinorField<double> x, y, z;
};

TEST_F(BlasTest, Norm2MatchesSerial) {
  double expect = 0;
  for (std::int64_t k = 0; k < x.reals(); ++k)
    expect += x.data()[k] * x.data()[k];
  EXPECT_NEAR(blas::norm2(x), expect, 1e-9 * expect);
}

TEST_F(BlasTest, AxpyMatchesSerial) {
  z = y;
  blas::axpy(0.75, x, z);
  for (std::int64_t k = 0; k < z.reals(); k += 29)
    EXPECT_DOUBLE_EQ(z.data()[k], y.data()[k] + 0.75 * x.data()[k]);
}

TEST_F(BlasTest, XpayMatchesSerial) {
  z = y;
  blas::xpay(x, -0.5, z);
  for (std::int64_t k = 0; k < z.reals(); k += 31)
    EXPECT_DOUBLE_EQ(z.data()[k], x.data()[k] - 0.5 * y.data()[k]);
}

TEST_F(BlasTest, AxpbyMatchesSerial) {
  z = y;
  blas::axpby(2.0, x, -1.0, z);
  for (std::int64_t k = 0; k < z.reals(); k += 37)
    EXPECT_DOUBLE_EQ(z.data()[k], 2.0 * x.data()[k] - y.data()[k]);
}

TEST_F(BlasTest, CaxpyMatchesComplexArithmetic) {
  z = y;
  const Cplx<double> a{0.3, -0.8};
  blas::caxpy(a, x, z);
  for (std::int64_t k = 0; k < z.reals() / 2; k += 41) {
    const Cplx<double> xv{x.data()[2 * k], x.data()[2 * k + 1]};
    const Cplx<double> yv{y.data()[2 * k], y.data()[2 * k + 1]};
    const auto want = yv + a * xv;
    EXPECT_NEAR(z.data()[2 * k], want.re, 1e-14);
    EXPECT_NEAR(z.data()[2 * k + 1], want.im, 1e-14);
  }
}

TEST_F(BlasTest, CdotHermitian) {
  const auto xy = blas::cdot(x, y);
  const auto yx = blas::cdot(y, x);
  EXPECT_NEAR(xy.re, yx.re, 1e-9);
  EXPECT_NEAR(xy.im, -yx.im, 1e-9);
  const auto xx = blas::cdot(x, x);
  EXPECT_NEAR(xx.im, 0.0, 1e-10);
  EXPECT_NEAR(xx.re, blas::norm2(x), 1e-9);
}

TEST_F(BlasTest, RedotIsRealPartOfCdot) {
  EXPECT_NEAR(blas::redot(x, y), blas::cdot(x, y).re, 1e-9);
}

TEST_F(BlasTest, ScalScalesNorm) {
  const double n0 = blas::norm2(x);
  blas::scal(2.0, x);
  EXPECT_NEAR(blas::norm2(x), 4.0 * n0, 1e-9 * n0);
}

TEST_F(BlasTest, CopyAcrossPrecision) {
  SpinorField<float> f(g, 4, Subset::Odd);
  blas::copy(f, x);
  SpinorField<double> back(g, 4, Subset::Odd);
  blas::copy(back, f);
  // float round trip: relative error at the float epsilon scale
  for (std::int64_t k = 0; k < x.reals(); k += 43)
    EXPECT_NEAR(back.data()[k], x.data()[k],
                2e-7 * std::abs(x.data()[k]) + 1e-30);
}

TEST_F(BlasTest, FlopCounterAdvances) {
  flops::reset();
  blas::axpy(1.0, x, y);
  EXPECT_EQ(flops::get(), 2 * x.reals());
  blas::norm2(x);
  EXPECT_EQ(flops::get(), 4 * x.reals());
}

TEST_F(BlasTest, ReductionsDeterministic) {
  const double a = blas::norm2(x);
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(blas::norm2(x), a);
}

// --- fused single-pass kernels ---------------------------------------------

TEST_F(BlasTest, AxpyNorm2MatchesUnfusedBitwise) {
  // Same per-element arithmetic and same chunk partition as the separate
  // axpy + norm2 at equal grain, so the fusion must be bitwise identical.
  z = y;
  blas::axpy(0.75, x, z);
  const double want = blas::norm2(z);
  SpinorField<double> w = y;
  const double got = blas::axpy_norm2(0.75, x, w);
  EXPECT_EQ(got, want);
  for (std::int64_t k = 0; k < w.reals(); k += 29)
    EXPECT_EQ(w.data()[k], z.data()[k]);
}

TEST_F(BlasTest, XpayRedotMatchesUnfused) {
  z = y;
  blas::xpay(x, -0.5, z);
  const double want = blas::redot(x, z);
  SpinorField<double> w = y;
  const double got = blas::xpay_redot(x, -0.5, w);
  EXPECT_EQ(got, want);
  for (std::int64_t k = 0; k < w.reals(); k += 31)
    EXPECT_EQ(w.data()[k], z.data()[k]);
}

TEST_F(BlasTest, AxpbyNorm2MatchesUnfused) {
  z = y;
  blas::axpby(2.0, x, -1.0, z);
  const double want = blas::norm2(z);
  SpinorField<double> w = y;
  const double got = blas::axpby_norm2(2.0, x, -1.0, w);
  EXPECT_EQ(got, want);
}

TEST_F(BlasTest, TripleCgUpdateMatchesUnfusedBitwise) {
  // Seed iteration body: x += alpha p; r -= alpha ap; rsq = norm2(r).
  SpinorField<double> p(g, 4, Subset::Odd), ap(g, 4, Subset::Odd);
  p.gaussian(7);
  ap.gaussian(8);
  const double alpha = 0.375;
  SpinorField<double> x1 = x, r1 = y;
  blas::axpy(alpha, p, x1);
  blas::axpy(-alpha, ap, r1);
  const double want = blas::norm2(r1);
  SpinorField<double> x2 = x, r2 = y;
  const double got = blas::triple_cg_update(alpha, p, ap, x2, r2);
  EXPECT_EQ(got, want);
  for (std::int64_t k = 0; k < r2.reals(); k += 37) {
    EXPECT_EQ(x2.data()[k], x1.data()[k]);
    EXPECT_EQ(r2.data()[k], r1.data()[k]);
  }
}

TEST_F(BlasTest, AxpyZpbxMatchesUnfusedBitwise) {
  // Seed: x += alpha p (axpy), then p = z + beta p (xpay).
  SpinorField<double> zz(g, 4, Subset::Odd);
  zz.gaussian(9);
  const double alpha = 0.25, beta = 0.6;
  SpinorField<double> x1 = x, p1 = y;
  blas::axpy(alpha, p1, x1);
  blas::xpay(zz, beta, p1);
  SpinorField<double> x2 = x, p2 = y;
  blas::axpy_zpbx(alpha, p2, x2, zz, beta);
  for (std::int64_t k = 0; k < p2.reals(); k += 29) {
    EXPECT_EQ(x2.data()[k], x1.data()[k]);
    EXPECT_EQ(p2.data()[k], p1.data()[k]);
  }
}

TEST_F(BlasTest, CaxpyNorm2MatchesUnfused) {
  const Cplx<double> a{0.3, -0.8};
  z = y;
  blas::caxpy(a, x, z);
  const double want = blas::norm2(z);
  SpinorField<double> w = y;
  const double got = blas::caxpy_norm2(a, x, w);
  EXPECT_NEAR(got, want, 1e-12 * want);
  for (std::int64_t k = 0; k < w.reals(); k += 41)
    EXPECT_EQ(w.data()[k], z.data()[k]);
}

TEST_F(BlasTest, CdotNorm2MatchesUnfused) {
  const auto [dot, n2] = blas::cdot_norm2(x, y);
  const auto want_dot = blas::cdot(x, y);
  const double want_n2 = blas::norm2(x);
  EXPECT_NEAR(dot.re, want_dot.re, 1e-10 * std::abs(want_dot.re) + 1e-12);
  EXPECT_NEAR(dot.im, want_dot.im, 1e-10 * std::abs(want_dot.im) + 1e-12);
  EXPECT_NEAR(n2, want_n2, 1e-12 * want_n2);
}

TEST_F(BlasTest, FusedReductionsBitIdenticalAcrossRuns) {
  SpinorField<double> p(g, 4, Subset::Odd), ap(g, 4, Subset::Odd);
  p.gaussian(7);
  ap.gaussian(8);
  double first_axpy = 0.0, first_triple = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    SpinorField<double> w = y, x2 = x, r2 = y;
    const double a = blas::axpy_norm2(0.75, x, w);
    const double t = blas::triple_cg_update(0.375, p, ap, x2, r2);
    if (rep == 0) {
      first_axpy = a;
      first_triple = t;
    } else {
      EXPECT_EQ(a, first_axpy);
      EXPECT_EQ(t, first_triple);
    }
  }
}

TEST_F(BlasTest, FusedAgreesAcrossGrains) {
  // Different grains change the summation order, not the update: fields
  // must stay bitwise equal and the reductions equal to rounding.
  SpinorField<double> w1 = y, w2 = y;
  const double n1 = blas::axpy_norm2(0.75, x, w1, 512);
  const double n2 = blas::axpy_norm2(0.75, x, w2, 64);
  EXPECT_NEAR(n1, n2, 1e-12 * n1);
  for (std::int64_t k = 0; k < w1.reals(); k += 17)
    EXPECT_EQ(w1.data()[k], w2.data()[k]);
}

TEST_F(BlasTest, ByteCounterModelsTraffic) {
  const std::int64_t n = x.reals();
  const auto e = static_cast<std::int64_t>(sizeof(double));
  flops::reset();
  blas::axpy(1.0, x, y);
  EXPECT_EQ(flops::bytes(), 3 * n * e);  // read x, read+write y
  flops::reset();
  blas::norm2(x);
  EXPECT_EQ(flops::bytes(), n * e);  // read x
  flops::reset();
  blas::axpy_norm2(1.0, x, y);
  EXPECT_EQ(flops::bytes(), 3 * n * e);  // fused: no extra pass for the norm
  flops::reset();
  SpinorField<double> p(g, 4, Subset::Odd), ap(g, 4, Subset::Odd);
  p.gaussian(7);
  ap.gaussian(8);
  blas::triple_cg_update(0.5, p, ap, x, y);
  EXPECT_EQ(flops::bytes(), 6 * n * e);  // read p, ap; read+write x, r
}

TEST_F(BlasTest, FusedIterationMovesFewerBytes) {
  // The CG iteration body beyond the matvec: seed's 5-kernel sequence vs
  // the fused 3-kernel sequence, same arithmetic.
  SpinorField<double> p(g, 4, Subset::Odd), ap(g, 4, Subset::Odd);
  p.gaussian(7);
  ap.gaussian(8);
  flops::reset();
  blas::redot(p, ap);
  blas::axpy(0.5, p, x);
  blas::axpy(-0.5, ap, y);
  blas::norm2(y);
  blas::xpay(y, 0.25, p);
  const std::int64_t unfused = flops::bytes();
  flops::reset();
  blas::redot(p, ap);
  blas::axpy_norm2(-0.5, ap, y);
  blas::axpy_zpbx(0.5, p, x, y, 0.25);
  const std::int64_t fused = flops::bytes();
  EXPECT_LT(fused, unfused);
  // 10 field-passes instead of 12.
  EXPECT_EQ(fused * 12, unfused * 10);
}

}  // namespace
}  // namespace femto
