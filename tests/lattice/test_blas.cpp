#include "lattice/blas.hpp"

#include <gtest/gtest.h>

#include "lattice/flops.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

class BlasTest : public ::testing::Test {
 protected:
  BlasTest()
      : g(geom44()),
        x(g, 4, Subset::Odd),
        y(g, 4, Subset::Odd),
        z(g, 4, Subset::Odd) {
    x.gaussian(1);
    y.gaussian(2);
  }
  std::shared_ptr<const Geometry> g;
  SpinorField<double> x, y, z;
};

TEST_F(BlasTest, Norm2MatchesSerial) {
  double expect = 0;
  for (std::int64_t k = 0; k < x.reals(); ++k)
    expect += x.data()[k] * x.data()[k];
  EXPECT_NEAR(blas::norm2(x), expect, 1e-9 * expect);
}

TEST_F(BlasTest, AxpyMatchesSerial) {
  z = y;
  blas::axpy(0.75, x, z);
  for (std::int64_t k = 0; k < z.reals(); k += 29)
    EXPECT_DOUBLE_EQ(z.data()[k], y.data()[k] + 0.75 * x.data()[k]);
}

TEST_F(BlasTest, XpayMatchesSerial) {
  z = y;
  blas::xpay(x, -0.5, z);
  for (std::int64_t k = 0; k < z.reals(); k += 31)
    EXPECT_DOUBLE_EQ(z.data()[k], x.data()[k] - 0.5 * y.data()[k]);
}

TEST_F(BlasTest, AxpbyMatchesSerial) {
  z = y;
  blas::axpby(2.0, x, -1.0, z);
  for (std::int64_t k = 0; k < z.reals(); k += 37)
    EXPECT_DOUBLE_EQ(z.data()[k], 2.0 * x.data()[k] - y.data()[k]);
}

TEST_F(BlasTest, CaxpyMatchesComplexArithmetic) {
  z = y;
  const Cplx<double> a{0.3, -0.8};
  blas::caxpy(a, x, z);
  for (std::int64_t k = 0; k < z.reals() / 2; k += 41) {
    const Cplx<double> xv{x.data()[2 * k], x.data()[2 * k + 1]};
    const Cplx<double> yv{y.data()[2 * k], y.data()[2 * k + 1]};
    const auto want = yv + a * xv;
    EXPECT_NEAR(z.data()[2 * k], want.re, 1e-14);
    EXPECT_NEAR(z.data()[2 * k + 1], want.im, 1e-14);
  }
}

TEST_F(BlasTest, CdotHermitian) {
  const auto xy = blas::cdot(x, y);
  const auto yx = blas::cdot(y, x);
  EXPECT_NEAR(xy.re, yx.re, 1e-9);
  EXPECT_NEAR(xy.im, -yx.im, 1e-9);
  const auto xx = blas::cdot(x, x);
  EXPECT_NEAR(xx.im, 0.0, 1e-10);
  EXPECT_NEAR(xx.re, blas::norm2(x), 1e-9);
}

TEST_F(BlasTest, RedotIsRealPartOfCdot) {
  EXPECT_NEAR(blas::redot(x, y), blas::cdot(x, y).re, 1e-9);
}

TEST_F(BlasTest, ScalScalesNorm) {
  const double n0 = blas::norm2(x);
  blas::scal(2.0, x);
  EXPECT_NEAR(blas::norm2(x), 4.0 * n0, 1e-9 * n0);
}

TEST_F(BlasTest, CopyAcrossPrecision) {
  SpinorField<float> f(g, 4, Subset::Odd);
  blas::copy(f, x);
  SpinorField<double> back(g, 4, Subset::Odd);
  blas::copy(back, f);
  // float round trip: relative error at the float epsilon scale
  for (std::int64_t k = 0; k < x.reals(); k += 43)
    EXPECT_NEAR(back.data()[k], x.data()[k],
                2e-7 * std::abs(x.data()[k]) + 1e-30);
}

TEST_F(BlasTest, FlopCounterAdvances) {
  flops::reset();
  blas::axpy(1.0, x, y);
  EXPECT_EQ(flops::get(), 2 * x.reals());
  blas::norm2(x);
  EXPECT_EQ(flops::get(), 4 * x.reals());
}

TEST_F(BlasTest, ReductionsDeterministic) {
  const double a = blas::norm2(x);
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(blas::norm2(x), a);
}

}  // namespace
}  // namespace femto
