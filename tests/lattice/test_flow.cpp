#include "lattice/flow.hpp"

#include <gtest/gtest.h>

#include "lattice/gauge.hpp"
#include "lattice/observables.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

TEST(Su3Exp, ZeroGivesIdentity) {
  ColorMat<double> z;
  EXPECT_LT(dist2(su3_exp(z), ColorMat<double>::identity()), 1e-28);
}

TEST(Su3Exp, ResultIsUnitary) {
  Xoshiro256 rng(71);
  ColorMat<double> m;
  for (auto& e : m.m) e = {0.2 * rng.gaussian(), 0.2 * rng.gaussian()};
  const auto a = project_antihermitian_traceless(m);
  const auto e = su3_exp(a);
  EXPECT_LT(dist2(e * adj(e), ColorMat<double>::identity()), 1e-20);
  EXPECT_NEAR(det(e).re, 1.0, 1e-10);
}

TEST(Su3Exp, InverseOfNegativeArgument) {
  Xoshiro256 rng(72);
  ColorMat<double> m;
  for (auto& e : m.m) e = {0.1 * rng.gaussian(), 0.1 * rng.gaussian()};
  const auto a = project_antihermitian_traceless(m);
  ColorMat<double> minus_a = a;
  minus_a *= -1.0;
  const auto prod = su3_exp(a) * su3_exp(minus_a);
  EXPECT_LT(dist2(prod, ColorMat<double>::identity()), 1e-18);
}

TEST(ProjectAntihermitian, Properties) {
  Xoshiro256 rng(73);
  ColorMat<double> m;
  for (auto& e : m.m) e = {rng.gaussian(), rng.gaussian()};
  const auto a = project_antihermitian_traceless(m);
  // Antihermitian: a^dag = -a.
  ColorMat<double> sum = adj(a) + a;
  EXPECT_LT(norm2(sum), 1e-24);
  // Traceless.
  EXPECT_NEAR(trace(a).re, 0.0, 1e-13);
  EXPECT_NEAR(trace(a).im, 0.0, 1e-13);
  // Idempotent on its image.
  EXPECT_LT(dist2(project_antihermitian_traceless(a), a), 1e-24);
}

TEST(WilsonFlow, FreeFieldIsFixedPoint) {
  GaugeField<double> u(geom44());
  unit_gauge(u);
  wilson_flow_step(u, 0.02);
  for (std::int64_t s = 0; s < u.geom().volume(); s += 17)
    EXPECT_LT(dist2(u.load(2, s), ColorMat<double>::identity()), 1e-20);
}

TEST(WilsonFlow, LinksStaySu3) {
  GaugeField<double> u = quenched_config(geom44(), 6.0, 10, 74);
  wilson_flow_step(u, 0.02);
  for (std::int64_t s = 0; s < u.geom().volume(); s += 13) {
    const auto link = u.load(1, s);
    EXPECT_LT(dist2(link * adj(link), ColorMat<double>::identity()),
              1e-18);
  }
}

TEST(WilsonFlow, ActionDecreasesMonotonically) {
  // The defining property of gradient flow.
  GaugeField<double> u = quenched_config(geom44(), 6.0, 10, 75);
  double prev = action_density(u);
  for (int k = 0; k < 5; ++k) {
    wilson_flow_step(u, 0.02);
    const double now = action_density(u);
    EXPECT_LT(now, prev) << "step " << k;
    prev = now;
  }
}

TEST(WilsonFlow, PlaquetteApproachesOne) {
  GaugeField<double> u = quenched_config(geom44(), 6.0, 10, 76);
  const double p0 = plaquette(u);
  FlowParams fp;
  fp.epsilon = 0.02;
  fp.steps = 15;
  wilson_flow(u, fp);
  const double p1 = plaquette(u);
  EXPECT_GT(p1, p0);
  EXPECT_GT(p1, 0.9);  // strongly smoothed
}

TEST(WilsonFlow, T2ECurveReturned) {
  GaugeField<double> u = quenched_config(geom44(), 6.0, 10, 77);
  FlowParams fp;
  fp.epsilon = 0.02;
  fp.steps = 8;
  const auto t2e = wilson_flow(u, fp);
  ASSERT_EQ(t2e.size(), 8u);
  for (double v : t2e) EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace femto
