#include "lattice/su3.hpp"

#include <gtest/gtest.h>

#include "lattice/rng.hpp"

namespace femto {
namespace {

ColorMat<double> random_mat(Xoshiro256& rng) {
  ColorMat<double> m;
  for (auto& e : m.m) e = {rng.gaussian(), rng.gaussian()};
  return m;
}

ColorVec<double> random_vec(Xoshiro256& rng) {
  ColorVec<double> v;
  for (int i = 0; i < kNc; ++i) v[i] = {rng.gaussian(), rng.gaussian()};
  return v;
}

TEST(Su3, IdentityActsTrivially) {
  Xoshiro256 rng(1);
  const auto id = ColorMat<double>::identity();
  const auto v = random_vec(rng);
  const auto w = id * v;
  for (int i = 0; i < kNc; ++i) {
    EXPECT_DOUBLE_EQ(w[i].re, v[i].re);
    EXPECT_DOUBLE_EQ(w[i].im, v[i].im);
  }
}

TEST(Su3, MatVecMatchesExplicitSum) {
  Xoshiro256 rng(2);
  const auto m = random_mat(rng);
  const auto v = random_vec(rng);
  const auto w = m * v;
  for (int i = 0; i < kNc; ++i) {
    cdouble s{};
    for (int k = 0; k < kNc; ++k) s += m(i, k) * v[k];
    EXPECT_DOUBLE_EQ(w[i].re, s.re);
    EXPECT_DOUBLE_EQ(w[i].im, s.im);
  }
}

TEST(Su3, AdjMulMatchesAdjointTimesVec) {
  Xoshiro256 rng(3);
  const auto m = random_mat(rng);
  const auto v = random_vec(rng);
  const auto lhs = adj_mul(m, v);
  const auto rhs = adj(m) * v;
  for (int i = 0; i < kNc; ++i) {
    EXPECT_NEAR(lhs[i].re, rhs[i].re, 1e-13);
    EXPECT_NEAR(lhs[i].im, rhs[i].im, 1e-13);
  }
}

TEST(Su3, ProjectProducesUnitaryDetOne) {
  Xoshiro256 rng(4);
  for (int rep = 0; rep < 20; ++rep) {
    const auto u = project_su3(random_mat(rng));
    // U U^dag = 1
    const auto prod = u * adj(u);
    EXPECT_LT(dist2(prod, ColorMat<double>::identity()), 1e-24);
    // det U = 1
    const auto d = det(u);
    EXPECT_NEAR(d.re, 1.0, 1e-12);
    EXPECT_NEAR(d.im, 0.0, 1e-12);
  }
}

TEST(Su3, ProjectIsIdempotentOnSu3) {
  Xoshiro256 rng(5);
  const auto u = project_su3(random_mat(rng));
  const auto u2 = project_su3(u);
  EXPECT_LT(dist2(u, u2), 1e-24);
}

TEST(Su3, UnitaryPreservesNorm) {
  Xoshiro256 rng(6);
  const auto u = project_su3(random_mat(rng));
  const auto v = random_vec(rng);
  EXPECT_NEAR(norm2(u * v), norm2(v), 1e-12 * norm2(v));
}

TEST(Su3, TraceOfProduct) {
  Xoshiro256 rng(7);
  const auto a = random_mat(rng);
  const auto b = random_mat(rng);
  // tr(ab) = tr(ba)
  const auto t1 = trace(a * b);
  const auto t2 = trace(b * a);
  EXPECT_NEAR(t1.re, t2.re, 1e-12);
  EXPECT_NEAR(t1.im, t2.im, 1e-12);
}

TEST(Su3, DotIsSesquilinear) {
  Xoshiro256 rng(8);
  const auto a = random_vec(rng);
  const auto b = random_vec(rng);
  const cdouble alpha{0.7, -1.3};
  // <a, alpha b> = alpha <a, b>
  ColorVec<double> ab = alpha * b;
  const auto lhs = dot(a, ab);
  const auto rhs = alpha * dot(a, b);
  EXPECT_NEAR(lhs.re, rhs.re, 1e-12);
  EXPECT_NEAR(lhs.im, rhs.im, 1e-12);
  // <a, a> = ||a||^2 real
  const auto aa = dot(a, a);
  EXPECT_NEAR(aa.im, 0.0, 1e-14);
  EXPECT_NEAR(aa.re, norm2(a), 1e-12);
}

TEST(Su3, MatrixProductAssociativity) {
  Xoshiro256 rng(9);
  const auto a = random_mat(rng), b = random_mat(rng), c = random_mat(rng);
  const auto lhs = (a * b) * c;
  const auto rhs = a * (b * c);
  EXPECT_LT(dist2(lhs, rhs), 1e-20 * norm2(lhs));
}

TEST(Su3, AdjOfProduct) {
  Xoshiro256 rng(10);
  const auto a = random_mat(rng), b = random_mat(rng);
  const auto lhs = adj(a * b);
  const auto rhs = adj(b) * adj(a);
  EXPECT_LT(dist2(lhs, rhs), 1e-20 * norm2(lhs));
}

}  // namespace
}  // namespace femto
