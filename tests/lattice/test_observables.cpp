#include "lattice/observables.hpp"

#include <gtest/gtest.h>

#include "lattice/gauge.hpp"
#include "lattice/smear.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom448() {
  return std::make_shared<Geometry>(4, 4, 4, 8);
}

TEST(WilsonLoops, UnitGaugeGivesOne) {
  GaugeField<double> u(geom448());
  unit_gauge(u);
  EXPECT_NEAR(wilson_loop(u, 1, 1), 1.0, 1e-13);
  EXPECT_NEAR(wilson_loop(u, 2, 3), 1.0, 1e-13);
}

TEST(WilsonLoops, OneByOneIsThePlaquette) {
  GaugeField<double> u(geom448());
  weak_gauge(u, 1401, 0.25);
  EXPECT_NEAR(wilson_loop(u, 1, 1), plaquette(u), 1e-12);
}

TEST(WilsonLoops, LargerLoopsAreSmaller) {
  // On a thermalised configuration, W(R,T) decays with loop area.
  GaugeField<double> u = quenched_config(geom448(), 5.8, 15, 1402);
  const double w11 = wilson_loop(u, 1, 1);
  const double w12 = wilson_loop(u, 1, 2);
  const double w22 = wilson_loop(u, 2, 2);
  EXPECT_GT(w11, w12);
  EXPECT_GT(w12, w22);
  EXPECT_GT(w22, 0.0);  // still positive in this regime
}

TEST(WilsonLoops, CreutzRatioPositiveWhenConfined) {
  GaugeField<double> u = quenched_config(geom448(), 5.8, 15, 1403);
  // chi(2,2) approximates the string tension: positive in the confined
  // phase.
  EXPECT_GT(creutz_ratio(u, 2, 2), 0.0);
}

TEST(Polyakov, UnitGaugeIsOne) {
  GaugeField<double> u(geom448());
  unit_gauge(u);
  const auto p = polyakov_loop(u);
  EXPECT_NEAR(p.re, 1.0, 1e-13);
  EXPECT_NEAR(p.im, 0.0, 1e-13);
}

TEST(Polyakov, SmallInConfinedPhase) {
  // A strongly-coupled quenched configuration: |<P>| near zero (center
  // symmetry approximately intact), FAR below the free-field value 1.
  GaugeField<double> u = quenched_config(geom448(), 5.0, 15, 1404);
  const auto p = polyakov_loop(u);
  EXPECT_LT(std::sqrt(p.re * p.re + p.im * p.im), 0.5);
}

TEST(CloverFieldStrength, VanishesOnFreeField) {
  GaugeField<double> u(geom448());
  unit_gauge(u);
  const auto f = clover_field_strength(u, 7, 0, 1);
  EXPECT_LT(norm2(f), 1e-24);
  EXPECT_NEAR(action_density(u), 0.0, 1e-20);
}

TEST(CloverFieldStrength, AntihermitianTraceless) {
  GaugeField<double> u(geom448());
  weak_gauge(u, 1405, 0.3);
  for (std::int64_t s = 0; s < 20; ++s) {
    const auto f = clover_field_strength(u, s * 7, 1, 3);
    // F^dag = -F
    ColorMat<double> sum = adj(f) + f;
    EXPECT_LT(norm2(sum), 1e-22);
    const auto tr = trace(f);
    EXPECT_NEAR(tr.re, 0.0, 1e-12);
    EXPECT_NEAR(tr.im, 0.0, 1e-12);
  }
}

TEST(ActionDensity, PositiveAndReducedBySmearing) {
  GaugeField<double> u = quenched_config(geom448(), 6.0, 12, 1406);
  const double rough = action_density(u);
  EXPECT_GT(rough, 0.0);
  const auto smooth = ape_smear(u, {0.5, 3});
  const double smoothed = action_density(smooth);
  EXPECT_LT(smoothed, rough);  // smearing removes UV roughness
}

TEST(ActionDensity, GrowsWithDisorder) {
  GaugeField<double> mild(geom448()), wild(geom448());
  weak_gauge(mild, 1407, 0.05);
  weak_gauge(wild, 1407, 0.3);
  EXPECT_LT(action_density(mild), action_density(wild));
}

}  // namespace
}  // namespace femto
