// Cross-width consistency for the vectorized BLAS kernels.
//
// The W template parameter on every lattice/blas.hpp kernel exists so a
// scalar instantiation (W = 1, what FEMTO_SIMD=OFF builds run) can be
// compared against the build's native width and a double-wide width in one
// binary.  The contracts split in two:
//
//   * elementwise kernels (axpy, xpay, axpby, scal): identical IEEE
//     operations per element at every width, no reassociation anywhere, so
//     results must be BITWISE identical across widths (the target has no
//     FMA contraction in either path);
//   * reductions (norm2, redot, cdot, the fused *_norm2 kernels): the
//     lane-striped accumulation reassociates the sum, so widths agree only
//     to rounding — but each width must stay bitwise reproducible
//     run-to-run (covered by RepeatStability below).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "lattice/blas.hpp"
#include "lattice/field.hpp"

namespace femto::blas {
namespace {

std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

std::shared_ptr<const Geometry> geom() {
  return std::make_shared<Geometry>(4, 4, 4, 6);
}

constexpr int kL5 = 5;  // odd so vector widths see ragged tails

template <typename T>
SpinorField<T> make_field(std::uint64_t seed) {
  SpinorField<T> f(geom(), kL5, Subset::Even);
  f.gaussian(seed);
  return f;
}

template <typename T>
void expect_fields_equal(const SpinorField<T>& a, const SpinorField<T>& b,
                         const char* what) {
  for (std::int64_t k = 0; k < a.reals(); ++k)
    ASSERT_EQ(a.data()[k], b.data()[k]) << what << " k=" << k;
}

using Widths = ::testing::Types<float, double>;

template <typename T>
class BlasCrossWidth : public ::testing::Test {};
TYPED_TEST_SUITE(BlasCrossWidth, Widths);

TYPED_TEST(BlasCrossWidth, ElementwiseKernelsBitwiseAcrossWidths) {
  using T = TypeParam;
  constexpr int kNative = simd::kWidth<T>;
  const auto x = make_field<T>(11);
  auto y1 = make_field<T>(22);
  auto yn = y1;
  auto yw = y1;

  axpy<T, 1>(0.375, x, y1);
  axpy<T, kNative>(0.375, x, yn);
  axpy<T, 2 * kNative>(0.375, x, yw);
  expect_fields_equal(y1, yn, "axpy native");
  expect_fields_equal(y1, yw, "axpy wide");

  xpay<T, 1>(x, -1.25, y1);
  xpay<T, kNative>(x, -1.25, yn);
  expect_fields_equal(y1, yn, "xpay");

  axpby<T, 1>(1.5, x, -0.5, y1);
  axpby<T, kNative>(1.5, x, -0.5, yn);
  expect_fields_equal(y1, yn, "axpby");

  scal<T, 1>(0.8125, y1);
  scal<T, kNative>(0.8125, yn);
  expect_fields_equal(y1, yn, "scal");
}

TYPED_TEST(BlasCrossWidth, ComplexKernelsAgreeAcrossWidths) {
  using T = TypeParam;
  constexpr int kNative = simd::kWidth<T>;
  const Cplx<double> a{0.6, -0.8};
  const auto x = make_field<T>(33);
  auto y1 = make_field<T>(44);
  auto yn = y1;

  caxpy<T, 1>(a, x, y1);
  caxpy<T, kNative>(a, x, yn);
  // The pairwise vector form computes yr + (ar*xr + (-ai)*xi); the scalar
  // form is free to associate differently, so compare to rounding.
  const double tol = sizeof(T) == 4 ? 1e-5 : 1e-13;
  for (std::int64_t k = 0; k < y1.reals(); ++k)
    ASSERT_NEAR(y1.data()[k], yn.data()[k],
                tol * (1.0 + std::fabs(static_cast<double>(y1.data()[k]))))
        << "caxpy k=" << k;

  cxpay<T, 1>(x, a, y1);
  cxpay<T, kNative>(x, a, yn);
  for (std::int64_t k = 0; k < y1.reals(); ++k)
    ASSERT_NEAR(y1.data()[k], yn.data()[k],
                tol * (1.0 + std::fabs(static_cast<double>(y1.data()[k]))))
        << "cxpay k=" << k;
}

TYPED_TEST(BlasCrossWidth, ReductionsAgreeToRoundingAcrossWidths) {
  using T = TypeParam;
  constexpr int kNative = simd::kWidth<T>;
  const auto x = make_field<T>(55);
  const auto y = make_field<T>(66);

  const double n1 = norm2<T, 1>(x);
  const double nn = norm2<T, kNative>(x);
  const double nw = norm2<T, 2 * kNative>(x);
  EXPECT_NEAR(nn / n1, 1.0, 1e-12);
  EXPECT_NEAR(nw / n1, 1.0, 1e-12);

  const double r1 = redot<T, 1>(x, y);
  const double rn = redot<T, kNative>(x, y);
  EXPECT_NEAR(rn, r1, 1e-10 * (1.0 + std::fabs(r1)));

  const auto [c1, m1] = cdot_norm2<T, 1>(x, y);
  const auto [cn, mn] = cdot_norm2<T, kNative>(x, y);
  EXPECT_NEAR(cn.re, c1.re, 1e-10 * (1.0 + std::fabs(c1.re)));
  EXPECT_NEAR(cn.im, c1.im, 1e-10 * (1.0 + std::fabs(c1.im)));
  EXPECT_NEAR(mn / m1, 1.0, 1e-12);
}

TYPED_TEST(BlasCrossWidth, FusedKernelsMatchUnfusedAtEveryWidth) {
  // The fused == unfused bitwise contract of tests/lattice/test_blas.cpp
  // holds at the NATIVE width (both sides share one chunk body); check it
  // survives explicit instantiation at other widths too.
  using T = TypeParam;
  constexpr int kNative = simd::kWidth<T>;
  const auto x = make_field<T>(77);

  auto y_fused = make_field<T>(88);
  auto y_plain = y_fused;
  const double nf = axpy_norm2<T, kNative>(0.5, x, y_fused);
  axpy<T, kNative>(0.5, x, y_plain);
  const double np = norm2<T, kNative>(y_plain);
  expect_fields_equal(y_fused, y_plain, "axpy_norm2 field");
  EXPECT_EQ(bits(nf), bits(np));

  auto z_fused = make_field<T>(99);
  auto z_plain = z_fused;
  const double mf = axpy_norm2<T, 1>(0.5, x, z_fused);
  axpy<T, 1>(0.5, x, z_plain);
  const double mp = norm2<T, 1>(z_plain);
  expect_fields_equal(z_fused, z_plain, "axpy_norm2 field W=1");
  EXPECT_EQ(bits(mf), bits(mp));
}

TYPED_TEST(BlasCrossWidth, RepeatStabilityPerWidth) {
  // For a fixed width and thread count, every kernel is bitwise
  // reproducible across repeated runs.
  using T = TypeParam;
  constexpr int kNative = simd::kWidth<T>;
  const auto p = make_field<T>(123);
  const auto ap = make_field<T>(321);
  const auto x0 = make_field<T>(456);
  const auto r0 = make_field<T>(654);

  std::uint64_t first_n = 0, first_t = 0;
  std::vector<std::uint64_t> first_r;
  for (int rep = 0; rep < 3; ++rep) {
    auto x = x0;
    auto r = r0;
    const double n = norm2<T, kNative>(r);
    const double t = triple_cg_update<T, kNative>(0.375, p, ap, x, r);
    if (rep == 0) {
      first_n = bits(n);
      first_t = bits(t);
      for (std::int64_t k = 0; k < r.reals(); ++k)
        first_r.push_back(bits(static_cast<double>(r.data()[k])));
    } else {
      EXPECT_EQ(bits(n), first_n) << "rep=" << rep;
      EXPECT_EQ(bits(t), first_t) << "rep=" << rep;
      for (std::int64_t k = 0; k < r.reals(); ++k)
        ASSERT_EQ(bits(static_cast<double>(r.data()[k])),
                  first_r[static_cast<std::size_t>(k)])
            << "rep=" << rep << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace femto::blas
