#include "lattice/smear.hpp"

#include <gtest/gtest.h>

#include "lattice/gauge.hpp"

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom448() {
  return std::make_shared<Geometry>(4, 4, 4, 8);
}

TEST(ApeSmear, UnitGaugeIsFixedPoint) {
  GaugeField<double> u(geom448());
  unit_gauge(u);
  const auto s = ape_smear(u, {0.5, 3});
  for (int mu = 0; mu < 4; ++mu)
    for (std::int64_t i = 0; i < u.geom().volume(); i += 23)
      EXPECT_LT(dist2(s.load(mu, i), ColorMat<double>::identity()), 1e-20);
}

TEST(ApeSmear, LinksStaySu3) {
  GaugeField<double> u(geom448());
  hot_gauge(u, 881);
  const auto s = ape_smear(u, {0.5, 2});
  for (int mu = 0; mu < 4; ++mu)
    for (std::int64_t i = 0; i < u.geom().volume(); i += 17) {
      const auto link = s.load(mu, i);
      EXPECT_LT(dist2(link * adj(link), ColorMat<double>::identity()),
                1e-18);
      EXPECT_NEAR(det(link).re, 1.0, 1e-9);
    }
}

TEST(ApeSmear, PlaquetteIncreasesMonotonically) {
  GaugeField<double> u = quenched_config(geom448(), 5.8, 12, 882);
  double p = plaquette(u);
  for (int it = 0; it < 4; ++it) {
    ape_smear_step(u, 0.5);
    const double p2 = plaquette(u);
    EXPECT_GT(p2, p) << "iteration " << it;
    p = p2;
  }
  EXPECT_GT(p, 0.8);  // strongly smoothed
}

TEST(ApeSmear, ZeroAlphaIsIdentity) {
  GaugeField<double> u(geom448());
  weak_gauge(u, 883, 0.2);
  const auto s = ape_smear(u, {0.0, 3});
  for (std::int64_t k = 0; k < u.bytes() / 8; k += 31)
    EXPECT_NEAR(s.data()[k], u.data()[k], 1e-12);
}

TEST(Wuppertal, ConstantFieldFixedPointOnUnitGauge) {
  auto g = geom448();
  GaugeField<double> u(g);
  unit_gauge(u);
  SpinorField<double> psi(g, 1, Subset::Full);
  for (std::int64_t k = 0; k < psi.reals(); ++k) psi.data()[k] = 1.0;
  wuppertal_smear(psi, u, {0.25, 5});
  for (std::int64_t k = 0; k < psi.reals(); k += 41)
    EXPECT_NEAR(psi.data()[k], 1.0, 1e-12);
}

TEST(Wuppertal, PointSourceSpreads) {
  auto g = geom448();
  GaugeField<double> u(g);
  unit_gauge(u);
  SpinorField<double> psi(g, 1, Subset::Full);
  psi.zero();
  Spinor<double> unit;
  unit[0][0] = {1.0, 0.0};
  const Coord c{2, 2, 2, 3};
  psi.store(0, g->index(c), unit);

  const double r0 = smearing_radius(psi, c);
  EXPECT_EQ(r0, 0.0);
  wuppertal_smear(psi, u, {0.25, 4});
  const double r4 = smearing_radius(psi, c);
  EXPECT_GT(r4, 0.5);
  wuppertal_smear(psi, u, {0.25, 6});
  const double r10 = smearing_radius(psi, c);
  EXPECT_GT(r10, r4);  // more iterations, wider source
}

TEST(Wuppertal, TimeSlicesDoNotMix) {
  auto g = geom448();
  GaugeField<double> u(g);
  hot_gauge(u, 884);
  SpinorField<double> psi(g, 1, Subset::Full);
  psi.zero();
  Spinor<double> unit;
  unit[1][2] = {1.0, 0.0};
  psi.store(0, g->index({1, 1, 1, 4}), unit);
  wuppertal_smear(psi, u, {0.3, 6});
  // Everything stays on timeslice 4.
  for (std::int64_t s = 0; s < g->volume(); ++s) {
    if (g->coord(s)[3] == 4) continue;
    const auto p = psi.load(0, s);
    for (int sp = 0; sp < kNs; ++sp) EXPECT_EQ(norm2(p[sp]), 0.0);
  }
}

TEST(Wuppertal, GaugeCovariantHopMatchesNaive) {
  // spatial_hop against a direct loop on a random gauge field.
  auto g = geom448();
  GaugeField<double> u(g);
  weak_gauge(u, 885, 0.3);
  SpinorField<double> in(g, 1, Subset::Full), out(g, 1, Subset::Full);
  in.gaussian(886);
  spatial_hop(out, u, in);
  for (std::int64_t s = 0; s < g->volume(); s += 11) {
    Spinor<double> want;
    for (int i = 0; i < 3; ++i) {
      const auto f = g->site_fwd(s, i);
      const auto b = g->site_bwd(s, i);
      const auto pf = in.load(0, f);
      const auto pb = in.load(0, b);
      const auto uf = u.load(i, s);
      const auto ub = u.load(i, b);
      for (int sp = 0; sp < kNs; ++sp) {
        want[sp] += uf * pf[sp];
        want[sp] += adj_mul(ub, pb[sp]);
      }
    }
    const auto got = out.load(0, s);
    for (int sp = 0; sp < kNs; ++sp)
      for (int c = 0; c < kNc; ++c) {
        EXPECT_NEAR(got[sp][c].re, want[sp][c].re, 1e-12);
        EXPECT_NEAR(got[sp][c].im, want[sp][c].im, 1e-12);
      }
  }
}

}  // namespace
}  // namespace femto
