#include "lattice/gauge.hpp"

#include <gtest/gtest.h>

namespace femto {
namespace {

std::shared_ptr<const Geometry> geom44() {
  return std::make_shared<Geometry>(4, 4, 4, 4);
}

TEST(Gauge, UnitGaugePlaquetteIsOne) {
  GaugeField<double> u(geom44());
  unit_gauge(u);
  EXPECT_NEAR(plaquette(u), 1.0, 1e-14);
}

TEST(Gauge, HotGaugeLinksAreUnitary) {
  GaugeField<double> u(geom44());
  hot_gauge(u, 11);
  for (int mu = 0; mu < 4; ++mu)
    for (std::int64_t s = 0; s < u.geom().volume(); s += 17) {
      const auto link = u.load(mu, s);
      EXPECT_LT(dist2(link * adj(link), ColorMat<double>::identity()),
                1e-20);
      EXPECT_NEAR(det(link).re, 1.0, 1e-10);
    }
}

TEST(Gauge, HotGaugePlaquetteNearZero) {
  GaugeField<double> u(geom44());
  hot_gauge(u, 12);
  // Random links: <Re tr P>/3 averages to ~0 (within statistical noise of
  // a 4^4 lattice).
  EXPECT_LT(std::abs(plaquette(u)), 0.1);
}

TEST(Gauge, HotGaugeReproducible) {
  GaugeField<double> a(geom44()), b(geom44());
  hot_gauge(a, 13);
  hot_gauge(b, 13);
  for (std::int64_t k = 0; k < a.bytes() / 8; k += 97)
    EXPECT_EQ(a.data()[k], b.data()[k]);
}

TEST(Gauge, WeakGaugePlaquetteNearOne) {
  GaugeField<double> u(geom44());
  weak_gauge(u, 14, 0.05);
  const double p = plaquette(u);
  EXPECT_GT(p, 0.95);
  EXPECT_LT(p, 1.0 + 1e-12);
}

TEST(Gauge, WeakGaugeEpsControlsDisorder) {
  GaugeField<double> a(geom44()), b(geom44());
  weak_gauge(a, 15, 0.05);
  weak_gauge(b, 15, 0.3);
  EXPECT_GT(plaquette(a), plaquette(b));
}

TEST(Gauge, StapleMatchesPlaquetteSum) {
  // Each plaquette contains 4 links and appears once in each of their
  // staple sums, so summing Re tr(U_mu(x) staple_mu(x)) over all (x, mu)
  // counts every plaquette exactly 4 times.
  GaugeField<double> u(geom44());
  weak_gauge(u, 16, 0.2);
  const auto& geom = u.geom();
  double plaq_sum = 0.0;
  for (std::int64_t s = 0; s < geom.volume(); ++s)
    for (int mu = 0; mu < 4; ++mu)
      for (int nu = mu + 1; nu < 4; ++nu) {
        const auto xpm = geom.site_fwd(s, mu);
        const auto xpn = geom.site_fwd(s, nu);
        plaq_sum += trace(u.load(mu, s) * u.load(nu, xpm) *
                          adj(u.load(nu, s) * u.load(mu, xpn)))
                        .re;
      }
  double staple_sum = 0.0;
  for (std::int64_t s = 0; s < geom.volume(); ++s)
    for (int mu = 0; mu < 4; ++mu)
      staple_sum += trace(u.load(mu, s) * staple(u, mu, s)).re;
  EXPECT_NEAR(staple_sum, 4.0 * plaq_sum, 1e-8 * std::abs(plaq_sum));
}

TEST(Gauge, HeatbathKeepsLinksInSu3) {
  GaugeField<double> u(geom44());
  hot_gauge(u, 17);
  heatbath_sweep(u, 5.5, 18, 0);
  for (int mu = 0; mu < 4; ++mu)
    for (std::int64_t s = 0; s < u.geom().volume(); s += 13) {
      const auto link = u.load(mu, s);
      EXPECT_LT(dist2(link * adj(link), ColorMat<double>::identity()),
                1e-18);
      EXPECT_NEAR(det(link).re, 1.0, 1e-9);
    }
}

TEST(Gauge, HeatbathIncreasesPlaquetteFromHotStart) {
  GaugeField<double> u(geom44());
  hot_gauge(u, 19);
  const double p0 = plaquette(u);
  for (int sweep = 0; sweep < 5; ++sweep) heatbath_sweep(u, 6.0, 20, sweep);
  EXPECT_GT(plaquette(u), p0 + 0.2);
}

TEST(Gauge, HeatbathPlaquetteOrderedInBeta) {
  // Stronger coupling (larger beta) must equilibrate to larger plaquette.
  auto run = [&](double beta) {
    GaugeField<double> u(geom44());
    hot_gauge(u, 21);
    for (int sweep = 0; sweep < 20; ++sweep)
      heatbath_sweep(u, beta, 22, sweep);
    return plaquette(u);
  };
  const double p_weak = run(1.0);
  const double p_mid = run(5.0);
  const double p_strong = run(9.0);
  EXPECT_LT(p_weak, p_mid);
  EXPECT_LT(p_mid, p_strong);
}

TEST(Gauge, QuenchedConfigNearLiteratureValue) {
  // Quenched Wilson beta = 6.0: plaquette ~ 0.59 in the infinite-volume
  // literature; a thermalised 4^4 lattice lands nearby.
  auto u = quenched_config(geom44(), 6.0, 30, 23);
  const double p = plaquette(u);
  EXPECT_GT(p, 0.52);
  EXPECT_LT(p, 0.68);
}

}  // namespace
}  // namespace femto
